// Extension bench (paper §5, future work): quality on BAliBASE-like and
// SABmark-like suites.
//
// The paper's conclusions name BAliBASE, SMART and SABmark as the
// benchmarks to evaluate next, noting that "these benchmarks are not
// designed to access the quality of the alignments produced in a
// distributed manner". This bench implements that evaluation with the
// library's simulated suites (DESIGN.md §2):
//   - BAliBASE-like: five structural categories (RV1-RV5 analogues), scored
//     on core blocks (Q and TC restricted to the core-column mask);
//   - SABmark-like: superfamily + twilight tiers, scored on full
//     references.
// Expected shape: every method degrades from RV1 toward RV4/RV5 and from
// superfamily to twilight; Sample-Align-D tracks its sequential aligner
// within a modest gap (the distributed glue costs quality on small sets,
// as the paper's own PREFAB observation says).

#include <cstdio>
#include <functional>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/sample_align_d.hpp"
#include "msa/clustalw_like.hpp"
#include "msa/muscle_like.hpp"
#include "msa/probcons_like.hpp"
#include "msa/scoring.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/balibase.hpp"
#include "workload/sabmark.hpp"

int main() {
  using namespace salign;
  const double factor = bench::scale(1.0);
  bench::banner("Quality on BAliBASE-like and SABmark-like suites",
                "Saeed & Khokhar 2008, §5 (future work: BAliBASE/SABmark)",
                factor);

  using AlignFn =
      std::function<msa::Alignment(std::span<const bio::Sequence>)>;
  struct Method {
    const char* label;
    AlignFn fn;
  };

  msa::MuscleOptions refined;
  refined.refine_passes = 2;
  core::SampleAlignDConfig sad_cfg;
  sad_cfg.num_procs = 4;
  core::SampleAlignDConfig sad_polish = sad_cfg;
  sad_polish.polish_divergent = true;
  sad_polish.polish.passes = 2;

  const std::vector<Method> methods{
      {"Sample-Align-D (p=4)",
       [&](std::span<const bio::Sequence> s) {
         return core::SampleAlignD(sad_cfg).align(s);
       }},
      {"Sample-Align-D+polish",
       [&](std::span<const bio::Sequence> s) {
         return core::SampleAlignD(sad_polish).align(s);
       }},
      {"MUSCLE",
       [&](std::span<const bio::Sequence> s) {
         return msa::MuscleAligner(refined).align(s);
       }},
      {"CLUSTALW",
       [&](std::span<const bio::Sequence> s) {
         return msa::ClustalWAligner().align(s);
       }},
      {"ProbCons",
       [&](std::span<const bio::Sequence> s) {
         return msa::ProbConsAligner().align(s);
       }},
  };

  // ---- BAliBASE-like: per-category core-block scores ----------------------
  workload::BalibaseParams bp;
  bp.cases_per_category =
      std::max<std::size_t>(2, static_cast<std::size_t>(3 * factor));
  bp.root_length = bench::scaled(180, factor, 80);
  const auto cases = workload::balibase_cases(bp);
  std::printf("BAliBASE-like: %zu cases (%zu per category), core-block "
              "scoring\n\n",
              cases.size(), bp.cases_per_category);

  util::Table bt({"method", "RV1 Q", "RV2 Q", "RV3 Q", "RV4 Q", "RV5 Q",
                  "mean TC(core)"});
  std::map<std::string, std::map<workload::BalibaseCategory, double>> bb_q;
  for (const Method& m : methods) {
    std::map<workload::BalibaseCategory, util::RunningStats> per_cat;
    util::RunningStats tc_all;
    for (const auto& c : cases) {
      const msa::Alignment a = m.fn(c.sequences);
      per_cat[c.category].add(msa::q_score(a, c.reference, c.core_columns));
      tc_all.add(msa::tc_score(a, c.reference, c.core_columns));
    }
    for (auto& [cat, stats] : per_cat) bb_q[m.label][cat] = stats.mean();
    bt.add_row(
        {m.label,
         util::fmt("%.3f", per_cat[workload::BalibaseCategory::Equidistant]
                               .mean()),
         util::fmt("%.3f",
                   per_cat[workload::BalibaseCategory::Orphan].mean()),
         util::fmt("%.3f",
                   per_cat[workload::BalibaseCategory::Subfamilies].mean()),
         util::fmt("%.3f",
                   per_cat[workload::BalibaseCategory::Extensions].mean()),
         util::fmt("%.3f",
                   per_cat[workload::BalibaseCategory::Insertions].mean()),
         util::fmt("%.3f", tc_all.mean())});
    std::printf("%-22s done\n", m.label);
  }
  std::printf("\n%s\n", bt.to_string().c_str());

  // ---- SABmark-like: per-tier scores --------------------------------------
  workload::SabmarkParams sp;
  sp.groups_per_tier =
      std::max<std::size_t>(3, static_cast<std::size_t>(6 * factor));
  const auto groups = workload::sabmark_groups(sp);
  std::printf("SABmark-like: %zu groups (%zu per tier)\n\n", groups.size(),
              sp.groups_per_tier);

  util::Table st({"method", "superfamily Q", "twilight Q"});
  std::map<std::string, std::pair<double, double>> sb_q;
  for (const Method& m : methods) {
    util::RunningStats super;
    util::RunningStats twilight;
    for (const auto& g : groups) {
      const msa::Alignment a = m.fn(g.sequences);
      (g.tier == workload::SabmarkTier::Superfamily ? super : twilight)
          .add(msa::q_score(a, g.reference));
    }
    sb_q[m.label] = {super.mean(), twilight.mean()};
    st.add_row({m.label, util::fmt("%.3f", super.mean()),
                util::fmt("%.3f", twilight.mean())});
  }
  std::printf("%s\n", st.to_string().c_str());

  std::printf("shape checks:\n");
  bool harder_categories_degrade = true;
  for (const auto& [label, per_cat] : bb_q) {
    const double rv1 = per_cat.at(workload::BalibaseCategory::Equidistant);
    const double rv3 = per_cat.at(workload::BalibaseCategory::Subfamilies);
    if (rv3 > rv1 + 0.1) harder_categories_degrade = false;
  }
  std::printf("  RV3 (subfamilies) never beats RV1 by >0.1: %s\n",
              harder_categories_degrade ? "yes" : "NO");
  bool twilight_harder = true;
  for (const auto& [label, qs] : sb_q)
    if (qs.second > qs.first + 0.05) twilight_harder = false;
  std::printf("  twilight tier scores below superfamily for every method: "
              "%s\n",
              twilight_harder ? "yes" : "NO");
  const bool polish_helps =
      bb_q["Sample-Align-D+polish"]
          .at(workload::BalibaseCategory::Subfamilies) >=
      bb_q["Sample-Align-D (p=4)"]
              .at(workload::BalibaseCategory::Subfamilies) -
          0.02;
  std::printf("  divergent polish does not hurt the hardest category: %s\n",
              polish_helps ? "yes" : "NO");
  return 0;
}
