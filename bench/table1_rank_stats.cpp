// Reproduces paper Table 1: statistical comparison of the k-mer rank
// computed on a globalized (sample-based) system vs the centralized system,
// for 5000 sequences.
//
// Paper values: central (max, min) = (1.44827, 0.0), mean 0.722962;
// globalized (max, min) = (1.46207, 0.0), mean 1.11302; stddev of the two
// rank sets w.r.t. each other 0.576377. The shape claims to reproduce:
// globalized mean exceeds centralized mean, maxima nearly coincide, and the
// per-sequence deviation is a sizable fraction of the rank range.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "kmer/kmer_rank.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/rose.hpp"

int main() {
  using namespace salign;
  const double factor = bench::scale(0.2);
  const std::size_t n = bench::scaled(5000, factor);
  bench::banner("Table 1: globalized vs centralized k-mer rank statistics",
                "Saeed & Khokhar 2008, Table 1 (5000 sequences)", factor);

  const auto seqs = workload::rose_sequences(
      {.num_sequences = n, .average_length = 300, .relatedness = 800,
       .seed = 5000});

  const int p = 16;
  const std::size_t chunk = (n + p - 1) / p;
  std::vector<bio::Sequence> samples;
  for (int r = 0; r < p; ++r) {
    const std::size_t b = std::min(n, static_cast<std::size_t>(r) * chunk);
    const std::size_t e = std::min(n, b + chunk);
    const std::size_t w = e - b;
    if (w == 0) continue;
    for (std::size_t i = 0; i < static_cast<std::size_t>(p - 1) && i < w; ++i)
      samples.push_back(seqs[b + std::min(w - 1, (i + 1) * w / p)]);
  }

  const std::vector<double> central = kmer::centralized_ranks(seqs, {});
  const std::vector<double> global = kmer::globalized_ranks(seqs, samples, {});

  const auto sc = util::summarize(central);
  const auto sg = util::summarize(global);
  util::RunningStats dev;  // per-sequence deviation globalized - centralized
  for (std::size_t i = 0; i < central.size(); ++i)
    dev.add(global[i] - central[i]);
  double var_wrt_central = 0.0;
  for (std::size_t i = 0; i < central.size(); ++i)
    var_wrt_central += (global[i] - central[i]) * (global[i] - central[i]);
  var_wrt_central /= static_cast<double>(central.size());

  util::Table t({"quantity", "paper", "measured"});
  t.add_row({"(max, min) central", "(1.44827, 0.0)",
             "(" + util::fmt("%.5f", sc.max()) + ", " +
                 util::fmt("%.5f", sc.min()) + ")"});
  t.add_row({"average centralized", "0.722962", util::fmt("%.6f", sc.mean())});
  t.add_row({"(max, min) globalized", "(1.46207, 0.0)",
             "(" + util::fmt("%.5f", sg.max()) + ", " +
                 util::fmt("%.5f", sg.min()) + ")"});
  t.add_row({"average globalized", "1.11302", util::fmt("%.6f", sg.mean())});
  t.add_row({"variance w.r.t. centralized", "0.33190",
             util::fmt("%.5f", var_wrt_central)});
  t.add_row({"stddev w.r.t. centralized", "0.576377",
             util::fmt("%.6f", std::sqrt(var_wrt_central))});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("shape checks (see EXPERIMENTS.md):\n");
  std::printf("  globalized mean > centralized mean: %s\n",
              sg.mean() > sc.mean() ? "yes (matches paper)" : "NO");
  std::printf("  maxima within 10%% of each other:    %s\n",
              std::abs(sg.max() - sc.max()) < 0.1 * sc.max()
                  ? "yes (matches paper)"
                  : "NO");
  return 0;
}
