#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace salign::bench {

/// Global scale knob of the figure/table benches.
///
/// The paper's experiments run at N up to 20000 on a 16-node cluster; a CI
/// container cannot re-run those sizes in minutes, so every bench scales the
/// paper's N by `SALIGN_BENCH_SCALE` (default: the per-bench value chosen so
/// the binary finishes in about a minute on two cores). Shapes — speedup
/// curves, rank distributions, quality orderings — are scale-stable, which
/// is what EXPERIMENTS.md compares against the paper.
inline double scale(double default_scale) {
  if (const char* env = std::getenv("SALIGN_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return default_scale;
}

/// Applies the scale to a paper-sized N with a sane floor.
inline std::size_t scaled(std::size_t paper_n, double factor,
                          std::size_t floor_n = 16) {
  const auto n = static_cast<std::size_t>(static_cast<double>(paper_n) *
                                          factor);
  return std::max(floor_n, n);
}

inline void banner(const char* title, const char* paper_ref, double factor) {
  std::printf("=== %s ===\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale: %.4f of the paper's N (override with "
              "SALIGN_BENCH_SCALE)\n\n",
              factor);
}

/// Projects the paper's §3 cost model onto a measured bucket distribution.
///
/// The paper charges step 7 (per-bucket MUSCLE) as O(w^4 + w L^2); that
/// w^4 term is where its *superlinear* Fig. 5/6 speedups come from — split
/// N sequences p ways and the dominant cost falls by p^4. Our MiniMuscle
/// implements the efficient O(w^2 + w L^2) pipeline instead, so measured
/// speedups are bounded by ~p^2 in the quadratic-dominated regime; this
/// projection applies the paper's own exponents to our measured max bucket
/// (which includes the real redistribution imbalance), reproducing the
/// published shape from the same run (see EXPERIMENTS.md, Figs. 4-6).
inline double paper_model_speedup(std::size_t n, std::size_t max_bucket,
                                  double avg_len) {
  const auto fn = [avg_len](double w) {
    return w * w * w * w + w * avg_len * avg_len;
  };
  const double t1 = fn(static_cast<double>(n));
  const double tp = fn(static_cast<double>(std::max<std::size_t>(
      max_bucket, 1)));
  return tp > 0.0 ? t1 / tp : 0.0;
}

}  // namespace salign::bench
