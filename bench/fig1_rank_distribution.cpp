// Reproduces paper Fig. 1: distribution of k-mer ranks for 500 sequences,
// computed centrally (each sequence vs all N) and with the globalized
// (sample-based) scheme the distributed pipeline uses.
//
// The paper's claim: the two distributions have the same shape, with the
// globalized ranks shifted slightly upward (each sequence is compared
// against a small sample, so the average similarity D is smaller and the
// rank -ln(0.1 + D) larger). Both statements are checked below.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "kmer/kmer_rank.hpp"
#include "util/stats.hpp"
#include "workload/rose.hpp"

int main() {
  using namespace salign;
  const double factor = bench::scale(1.0);  // paper size runs fine
  const std::size_t n = bench::scaled(500, factor);
  bench::banner("Fig 1: centralized vs globalized k-mer rank distribution",
                "Saeed & Khokhar 2008, Fig. 1 (500 sequences)", factor);

  const auto seqs = workload::rose_sequences(
      {.num_sequences = n, .average_length = 300, .relatedness = 800,
       .seed = 500});

  // Globalized: p = 8 processors each contribute p-1 samples, evenly spaced
  // in local rank order — exactly the pipeline's sample-exchange round.
  const int p = 8;
  const std::size_t chunk = (n + p - 1) / p;
  std::vector<bio::Sequence> samples;
  for (int r = 0; r < p; ++r) {
    const std::size_t b = std::min(n, static_cast<std::size_t>(r) * chunk);
    const std::size_t e = std::min(n, b + chunk);
    const std::size_t w = e - b;
    if (w == 0) continue;
    for (std::size_t i = 0; i < static_cast<std::size_t>(p - 1) && i < w; ++i)
      samples.push_back(seqs[b + std::min(w - 1, (i + 1) * w / p)]);
  }

  const std::vector<double> central = kmer::centralized_ranks(seqs, {});
  const std::vector<double> global = kmer::globalized_ranks(seqs, samples, {});

  util::Histogram hc(-0.1, 2.31, 24);
  util::Histogram hg(-0.1, 2.31, 24);
  hc.add_all(central);
  hg.add_all(global);

  std::printf("centralized ranks (N=%zu, every sequence vs all):\n%s\n",
              n, hc.ascii(48).c_str());
  std::printf("globalized ranks (vs %zu samples from p=%d procs):\n%s\n",
              samples.size(), p, hg.ascii(48).c_str());

  const auto sc = util::summarize(central);
  const auto sg = util::summarize(global);
  std::printf("centralized: mean %.4f  min %.4f  max %.4f\n", sc.mean(),
              sc.min(), sc.max());
  std::printf("globalized : mean %.4f  min %.4f  max %.4f\n", sg.mean(),
              sg.min(), sg.max());
  std::printf("paper shape check: globalized mean >= centralized mean? %s\n",
              sg.mean() >= sc.mean() ? "yes (matches paper)" : "NO");
  return 0;
}
