// Micro-benchmarks (google-benchmark) for the kernels behind the paper's
// §3 cost table: k-mer rank computation, pairwise DP, profile alignment,
// guide-tree construction, and the communication runtime. These back the
// per-stage constants of the cluster cost model.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "align/banded.hpp"
#include "align/distance.hpp"
#include "align/engine/batch.hpp"
#include "align/engine/engine.hpp"
#include "align/engine/pair_batch.hpp"
#include "align/global.hpp"
#include "align/local.hpp"
#include "core/partition.hpp"
#include "kmer/kmer_rank.hpp"
#include "msa/guide_tree.hpp"
#include "msa/muscle_like.hpp"
#include "msa/profile.hpp"
#include "msa/profile_align.hpp"
#include "msa/progressive.hpp"
#include "par/cluster.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"
#include "workload/rose.hpp"

namespace {

using namespace salign;

std::vector<bio::Sequence> seqs_cache(std::size_t n, std::size_t len) {
  static std::map<std::pair<std::size_t, std::size_t>,
                  std::vector<bio::Sequence>>
      cache;
  auto& slot = cache[{n, len}];
  if (slot.empty())
    slot = workload::rose_sequences(
        {.num_sequences = n, .average_length = len, .relatedness = 700,
         .seed = 1});
  return slot;
}

void BM_KmerProfileBuild(benchmark::State& state) {
  const auto seqs = seqs_cache(64, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (const auto& s : seqs)
      benchmark::DoNotOptimize(
          kmer::KmerProfile::from_sequence(s, kmer::KmerParams{}));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_KmerProfileBuild)->Arg(100)->Arg(300)->Arg(1000);

void BM_KmerRankCentralized(benchmark::State& state) {
  const auto seqs = seqs_cache(static_cast<std::size_t>(state.range(0)), 300);
  for (auto _ : state)
    benchmark::DoNotOptimize(kmer::centralized_ranks(seqs, {}));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KmerRankCentralized)->Arg(32)->Arg(64)->Arg(128)->Complexity();

/// Reports DP throughput for a pairwise kernel: google-benchmark divides the
/// accumulated cell count by elapsed time, so BENCH JSON entries carry a
/// directly comparable "cells_per_second" figure.
void set_cells_per_second(benchmark::State& state, std::size_t cells_per_iter) {
  state.counters["cells_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cells_per_iter),
      benchmark::Counter::kIsRate);
}

void BM_GlobalAlign(benchmark::State& state) {
  const auto seqs = seqs_cache(2, static_cast<std::size_t>(state.range(0)));
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        align::global_align(seqs[0].codes(), seqs[1].codes(), m, {}));
  set_cells_per_second(state, seqs[0].codes().size() * seqs[1].codes().size());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GlobalAlign)->Arg(100)->Arg(200)->Arg(400)->Complexity();

// The engine's two kernel instantiations, benchmarked side by side so the
// vector-vs-scalar ratio is part of every baseline (score-only pass and full
// checkpointed alignment). The score benches pin the FLOAT tier so these
// rows stay comparable with the pre-integer baselines; the striped integer
// tiers have their own benches below.
void engine_global_score_bench(benchmark::State& state,
                               align::engine::Backend backend) {
  const auto seqs = seqs_cache(2, static_cast<std::size_t>(state.range(0)));
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (auto _ : state)
    benchmark::DoNotOptimize(align::engine::global_score(
        seqs[0].codes(), seqs[1].codes(), m, {}, backend, nullptr,
        align::engine::ScoreTier::kFloat));
  set_cells_per_second(state, seqs[0].codes().size() * seqs[1].codes().size());
}
void BM_EngineGlobalScoreVector(benchmark::State& state) {
  engine_global_score_bench(state, align::engine::Backend::kVector);
}
BENCHMARK(BM_EngineGlobalScoreVector)->Arg(400)->Arg(1000);
void BM_EngineGlobalScoreScalar(benchmark::State& state) {
  engine_global_score_bench(state, align::engine::Backend::kScalar);
}
BENCHMARK(BM_EngineGlobalScoreScalar)->Arg(400)->Arg(1000);

// ---- striped integer score tiers ----------------------------------------------
//
// ScoreBatch reuses one striped query profile across counterparts, exactly
// as the distance-matrix drivers do. The int8 bench runs in the tier's
// honest regime: pairs short enough for the int8 rails (the boundary gap
// run bounds the viable length to ~100 residues) and divergent enough not
// to saturate the ceiling — i.e. distance-matrix pairs. A "promotions"
// counter reports if the regime drifts into saturation.

/// ~20% identity mutants of a random protein query: scores stay inside the
/// int8 rails while the pair remains alignment-worthy.
std::vector<std::vector<std::uint8_t>> mutant_pairs(std::size_t len,
                                                    std::size_t count,
                                                    std::uint64_t seed,
                                                    std::vector<std::uint8_t>&
                                                        query) {
  util::Rng rng(seed);
  query.resize(len);
  for (auto& c : query) c = static_cast<std::uint8_t>(rng.below(20));
  std::vector<std::vector<std::uint8_t>> others(count, query);
  for (auto& o : others)
    for (auto& c : o)
      if (rng.chance(0.8)) c = static_cast<std::uint8_t>(rng.below(20));
  return others;
}

void engine_striped_bench(benchmark::State& state, std::size_t len,
                          align::engine::ScoreTier tier) {
  std::vector<std::uint8_t> query;
  const auto others = mutant_pairs(len, 16, 99, query);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const bio::GapPenalties gaps{10.0F, 1.0F};
  align::engine::ScoreBatch batch(query, m, gaps,
                                  align::engine::default_backend(), tier);
  for (auto _ : state)
    for (const auto& o : others) benchmark::DoNotOptimize(batch.score(o));
  set_cells_per_second(state, others.size() * len * len);
  state.counters["promotions"] =
      static_cast<double>(batch.stats().promotions);
}
void BM_EngineScoreStripedInt8(benchmark::State& state) {
  engine_striped_bench(state, static_cast<std::size_t>(state.range(0)),
                       align::engine::ScoreTier::kInt8);
}
BENCHMARK(BM_EngineScoreStripedInt8)->Arg(94);
void BM_EngineScoreStripedInt16(benchmark::State& state) {
  engine_striped_bench(state, static_cast<std::size_t>(state.range(0)),
                       align::engine::ScoreTier::kInt16);
}
BENCHMARK(BM_EngineScoreStripedInt16)->Arg(400)->Arg(1000);
void BM_EngineScoreBatchAuto(benchmark::State& state) {
  engine_striped_bench(state, static_cast<std::size_t>(state.range(0)),
                       align::engine::ScoreTier::kAuto);
}
BENCHMARK(BM_EngineScoreBatchAuto)->Arg(400);

// ---- distance-matrix drivers ---------------------------------------------------

std::size_t pair_cells(std::span<const bio::Sequence> seqs) {
  std::size_t cells = 0;
  for (std::size_t i = 0; i < seqs.size(); ++i)
    for (std::size_t j = 0; j < i; ++j)
      cells += seqs[i].size() * seqs[j].size();
  return cells;
}

void distance_matrix_score_bench(benchmark::State& state,
                                 align::engine::ScoreTier tier) {
  const auto seqs = seqs_cache(static_cast<std::size_t>(state.range(0)), 300);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  align::ScoreDistanceOptions opt;
  opt.first_tier = tier;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        align::score_distance_matrix(seqs, m, m.default_gaps(), opt));
  set_cells_per_second(state, pair_cells(seqs));
}
void BM_DistanceMatrixScore(benchmark::State& state) {
  distance_matrix_score_bench(state, align::engine::ScoreTier::kAuto);
}
BENCHMARK(BM_DistanceMatrixScore)->Arg(24);
void BM_DistanceMatrixScoreFloat(benchmark::State& state) {
  distance_matrix_score_bench(state, align::engine::ScoreTier::kFloat);
}
BENCHMARK(BM_DistanceMatrixScoreFloat)->Arg(24);

void BM_DistanceMatrixKimura(benchmark::State& state) {
  const auto seqs = seqs_cache(static_cast<std::size_t>(state.range(0)), 200);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        align::alignment_distance_matrix(seqs, m, m.default_gaps()));
  set_cells_per_second(state, pair_cells(seqs));
}
BENCHMARK(BM_DistanceMatrixKimura)->Arg(12);

// ---- ALIGNED (identity/Kimura) distance matrix: tier comparison ---------------
//
// The end-to-end acceptance pair of the integer-traceback PR: the same
// full-alignment distance pass once through the tier ladder (striped
// int8/int16 traceback + batched int8 pair lanes) and once pinned to
// kFloat — the pre-integer-traceback behavior. The short-sequence variant
// sits in the inter-pair batch kernel's regime.

/// Divergent family (~20-25% pairwise identity) of short sequences: the
/// honest regime of the int8 tiers — distance-matrix pairs dissimilar
/// enough not to blow the ceiling, the workload the guide-tree distance
/// stage actually sees on remote homologs and short reads.
std::vector<bio::Sequence> divergent_family(std::size_t n, std::size_t len,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> root(len);
  for (auto& c : root) c = static_cast<std::uint8_t>(rng.below(20));
  std::vector<bio::Sequence> seqs;
  for (std::size_t s = 0; s < n; ++s) {
    auto codes = root;
    codes.resize(len - 5 + rng.below(11), 0);
    for (auto& c : codes)
      if (rng.chance(0.8)) c = static_cast<std::uint8_t>(rng.below(20));
    seqs.emplace_back(util::indexed_name("d", s), std::move(codes),
                      bio::AlphabetKind::AminoAcid);
  }
  return seqs;
}

void distance_matrix_aligned_bench(benchmark::State& state,
                                   std::span<const bio::Sequence> seqs,
                                   align::engine::ScoreTier tier) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  align::PairDistanceOptions opt;
  opt.first_tier = tier;
  align::PairDistanceStats stats;
  opt.stats = &stats;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        align::alignment_distance_matrix(seqs, m, m.default_gaps(), opt));
  set_cells_per_second(state, pair_cells(seqs));
  state.counters["batched_int8"] = static_cast<double>(stats.batched_int8);
  state.counters["int8_runs"] = static_cast<double>(stats.ladder.int8_runs);
  state.counters["int16_runs"] = static_cast<double>(stats.ladder.int16_runs);
  state.counters["float_runs"] = static_cast<double>(stats.ladder.float_runs);
}
void BM_DistanceMatrixAligned(benchmark::State& state) {
  const auto seqs = seqs_cache(static_cast<std::size_t>(state.range(0)), 200);
  distance_matrix_aligned_bench(state, seqs, align::engine::ScoreTier::kAuto);
}
BENCHMARK(BM_DistanceMatrixAligned)->Arg(16);
void BM_DistanceMatrixAlignedFloat(benchmark::State& state) {
  const auto seqs = seqs_cache(static_cast<std::size_t>(state.range(0)), 200);
  distance_matrix_aligned_bench(state, seqs,
                                align::engine::ScoreTier::kFloat);
}
BENCHMARK(BM_DistanceMatrixAlignedFloat)->Arg(16);
void BM_DistanceMatrixAlignedShort(benchmark::State& state) {
  const auto seqs =
      divergent_family(static_cast<std::size_t>(state.range(0)), 80, 11);
  distance_matrix_aligned_bench(state, seqs, align::engine::ScoreTier::kAuto);
}
BENCHMARK(BM_DistanceMatrixAlignedShort)->Arg(32);
void BM_DistanceMatrixAlignedShortFloat(benchmark::State& state) {
  const auto seqs =
      divergent_family(static_cast<std::size_t>(state.range(0)), 80, 11);
  distance_matrix_aligned_bench(state, seqs,
                                align::engine::ScoreTier::kFloat);
}
BENCHMARK(BM_DistanceMatrixAlignedShortFloat)->Arg(32);

// Pinned to the float tier so these rows keep measuring the float
// checkpointed kernel (comparable with the pre-integer baselines); the
// striped traceback tiers have their own benches below.
void engine_global_align_bench(benchmark::State& state,
                               align::engine::Backend backend) {
  const auto seqs = seqs_cache(2, static_cast<std::size_t>(state.range(0)));
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (auto _ : state)
    benchmark::DoNotOptimize(align::engine::global_align(
        seqs[0].codes(), seqs[1].codes(), m, {}, backend,
        align::engine::ScoreTier::kFloat));
  set_cells_per_second(state, seqs[0].codes().size() * seqs[1].codes().size());
}
void BM_EngineGlobalAlignVector(benchmark::State& state) {
  engine_global_align_bench(state, align::engine::Backend::kVector);
}
BENCHMARK(BM_EngineGlobalAlignVector)->Arg(400)->Arg(1000);
void BM_EngineGlobalAlignScalar(benchmark::State& state) {
  engine_global_align_bench(state, align::engine::Backend::kScalar);
}
BENCHMARK(BM_EngineGlobalAlignScalar)->Arg(400)->Arg(1000);

// ---- striped integer FULL-alignment tiers --------------------------------------
//
// AlignBatch reuses one striped profile + workspace across counterparts,
// exactly as the identity/Kimura distance drivers do. Same honest-regime
// workload as the score benches (divergent mutants inside the rails); the
// "promotions" counter reports regime drift.

void engine_align_striped_bench(benchmark::State& state, std::size_t len,
                                align::engine::ScoreTier tier) {
  std::vector<std::uint8_t> query;
  const auto others = mutant_pairs(len, 16, 99, query);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const bio::GapPenalties gaps{10.0F, 1.0F};
  align::engine::AlignBatch batch(query, m, gaps,
                                  align::engine::default_backend(), tier);
  for (auto _ : state)
    for (const auto& o : others) benchmark::DoNotOptimize(batch.align(o));
  set_cells_per_second(state, others.size() * len * len);
  state.counters["promotions"] =
      static_cast<double>(batch.stats().promotions);
}
void BM_EngineAlignStripedInt8(benchmark::State& state) {
  engine_align_striped_bench(state, static_cast<std::size_t>(state.range(0)),
                             align::engine::ScoreTier::kInt8);
}
BENCHMARK(BM_EngineAlignStripedInt8)->Arg(94);
void BM_EngineAlignStripedInt16(benchmark::State& state) {
  engine_align_striped_bench(state, static_cast<std::size_t>(state.range(0)),
                             align::engine::ScoreTier::kInt16);
}
BENCHMARK(BM_EngineAlignStripedInt16)->Arg(400)->Arg(1000);

// One lane per pair: 16 short pairwise alignments per kernel pass, the
// short-read regime of the distance stage.
void BM_EnginePairBatchAlign8(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const bio::GapPenalties gaps{10.0F, 1.0F};
  align::engine::PairBatch pb(m, gaps);
  std::vector<std::uint8_t> query;
  const auto others = mutant_pairs(len, 2 * pb.lanes(), 7, query);
  std::vector<align::engine::PairBatch::Pair> pairs;
  for (std::size_t l = 0; l < pb.lanes(); ++l)
    pairs.push_back({others[2 * l], others[2 * l + 1]});
  std::vector<align::PairwiseAlignment> outs(pairs.size());
  std::size_t retried = 0;
  for (auto _ : state) {
    const std::unique_ptr<bool[]> okp(new bool[pairs.size()]());
    pb.align(pairs, outs.data(), okp.get());
    for (std::size_t l = 0; l < pairs.size(); ++l)
      if (!okp[l]) ++retried;
    benchmark::DoNotOptimize(outs.data());
  }
  set_cells_per_second(state, pairs.size() * len * len);
  // Saturated lanes PER PASS (the workload is fixed, so every iteration
  // flags the same lanes — divide the accumulation back out).
  state.counters["saturated_lanes"] =
      state.iterations() > 0
          ? static_cast<double>(retried) /
                static_cast<double>(state.iterations())
          : 0.0;
}
BENCHMARK(BM_EnginePairBatchAlign8)->Arg(64)->Arg(90);

void BM_BandedAlign(benchmark::State& state) {
  const auto seqs = seqs_cache(2, 400);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const auto band = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(align::banded_global_align(
        seqs[0].codes(), seqs[1].codes(), m, {}, band));
  // Approximate banded cell count: rows x (2 * band + 1), clipped.
  const std::size_t width =
      std::min(seqs[1].codes().size(), 2 * band + 1);
  set_cells_per_second(state, seqs[0].codes().size() * width);
}
BENCHMARK(BM_BandedAlign)->Arg(8)->Arg(32)->Arg(128);

void BM_LocalAlign(benchmark::State& state) {
  const auto seqs = seqs_cache(2, static_cast<std::size_t>(state.range(0)));
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        align::local_align(seqs[0].codes(), seqs[1].codes(), m, {}));
  set_cells_per_second(state, seqs[0].codes().size() * seqs[1].codes().size());
}
BENCHMARK(BM_LocalAlign)->Arg(100)->Arg(300);

// ---- PSP profile-DP kernel (vectorized wavefront vs scalar reference) ----------
//
// Two ~L-column profiles from rose halves, full DP. BM_ProfileDp runs the
// blocked anti-diagonal wavefront kernel (the default), BM_ProfileDpScalar
// the retained row-major reference — the pair makes the kernel speedup part
// of every baseline, like the engine's vector/scalar benches above.

void profile_dp_bench(benchmark::State& state,
                      align::engine::Backend backend) {
  const auto seqs = seqs_cache(16, static_cast<std::size_t>(state.range(0)));
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const std::size_t half = seqs.size() / 2;
  const msa::MuscleAligner aligner;
  const msa::Alignment left =
      aligner.align(std::span<const bio::Sequence>(seqs.data(), half));
  const msa::Alignment right = aligner.align(
      std::span<const bio::Sequence>(seqs.data() + half, seqs.size() - half));
  const msa::Profile pl(left, m);
  const msa::Profile pr(right, m);
  msa::ProfileAlignOptions po;
  po.gaps = m.default_gaps();
  po.backend = backend;
  for (auto _ : state)
    benchmark::DoNotOptimize(msa::align_profiles(pl, pr, po));
  set_cells_per_second(state, pl.num_cols() * pr.num_cols());
}
void BM_ProfileDp(benchmark::State& state) {
  profile_dp_bench(state, align::engine::Backend::kVector);
}
BENCHMARK(BM_ProfileDp)->Arg(400)->Arg(1000);
void BM_ProfileDpScalar(benchmark::State& state) {
  profile_dp_bench(state, align::engine::Backend::kScalar);
}
BENCHMARK(BM_ProfileDpScalar)->Arg(400)->Arg(1000);

// ---- task-parallel progressive alignment ---------------------------------------
//
// One guide-tree progressive pass over a 256-sequence rose family, at 1 and
// 4 workers. cells_per_second is computed against wall time measured here
// (google-benchmark rate counters divide by the bench thread's CPU time,
// which is blind to pool workers), so the /1-vs-/4 ratio in the committed
// baselines IS the task-scheduler speedup. The merge cell count comes from
// a one-off instrumented pass through the band-provider hook.

void BM_ProgressiveAlign(benchmark::State& state) {
  const auto seqs = seqs_cache(256, 200);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const msa::GuideTree tree =
      msa::GuideTree::upgma(kmer::distance_matrix(seqs, {}));
  msa::ProgressiveOptions po;
  po.gaps = m.default_gaps();
  po.weights = tree.leaf_weights();

  static std::size_t cells = 0;  // same tree every arg: count once
  if (cells == 0) {
    msa::ProgressiveOptions counting = po;
    counting.band_provider = [](const msa::Alignment& a,
                                const msa::Alignment& b) {
      cells += a.num_cols() * b.num_cols();
      return std::size_t{0};
    };
    (void)msa::progressive_align(seqs, tree, m, counting);
  }

  po.threads = static_cast<unsigned>(state.range(0));
  double wall = 0.0;
  for (auto _ : state) {
    const util::Stopwatch watch;
    benchmark::DoNotOptimize(msa::progressive_align(seqs, tree, m, po));
    wall += watch.seconds();
  }
  state.counters["cells_per_second"] =
      wall > 0.0 ? static_cast<double>(state.iterations() * cells) / wall
                 : 0.0;
  state.counters["threads"] = static_cast<double>(po.threads);
}
BENCHMARK(BM_ProgressiveAlign)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ProfileAlign(benchmark::State& state) {
  const auto seqs = seqs_cache(static_cast<std::size_t>(state.range(0)), 200);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const std::size_t half = seqs.size() / 2;
  const msa::MuscleAligner aligner;
  const msa::Alignment left = aligner.align(
      std::span<const bio::Sequence>(seqs.data(), half));
  const msa::Alignment right = aligner.align(
      std::span<const bio::Sequence>(seqs.data() + half, seqs.size() - half));
  const msa::Profile pl(left, m);
  const msa::Profile pr(right, m);
  for (auto _ : state)
    benchmark::DoNotOptimize(msa::align_profiles(pl, pr));
  set_cells_per_second(state, pl.num_cols() * pr.num_cols());
}
BENCHMARK(BM_ProfileAlign)->Arg(8)->Arg(16)->Arg(32);

void BM_UpgmaBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  util::SymmetricMatrix<double> d(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) d(i, j) = rng.uniform(0.01, 2.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(msa::GuideTree::upgma(d));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UpgmaBuild)->Arg(64)->Arg(256)->Arg(1024)->Complexity();

void BM_MiniMuscleEndToEnd(benchmark::State& state) {
  const auto seqs = seqs_cache(static_cast<std::size_t>(state.range(0)), 150);
  const msa::MuscleAligner aligner;
  for (auto _ : state) benchmark::DoNotOptimize(aligner.align(seqs));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MiniMuscleEndToEnd)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_CommAllToAll(benchmark::State& state) {
  const int p = 8;
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    par::Cluster cluster(p);
    cluster.run([&](par::Communicator& comm) {
      std::vector<par::Bytes> out(p, par::Bytes(bytes, 0x5A));
      benchmark::DoNotOptimize(comm.all_to_all(std::move(out)));
    });
  }
  state.SetBytesProcessed(state.iterations() * p * (p - 1) * bytes);
}
BENCHMARK(BM_CommAllToAll)->Arg(1024)->Arg(65536);

void BM_CommBroadcast(benchmark::State& state) {
  const int p = 8;
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    par::Cluster cluster(p);
    cluster.run([&](par::Communicator& comm) {
      par::Bytes payload;
      if (comm.rank() == 0) payload.assign(bytes, 0x5A);
      benchmark::DoNotOptimize(comm.broadcast(0, std::move(payload)));
    });
  }
}
BENCHMARK(BM_CommBroadcast)->Arg(1024)->Arg(65536);

void BM_PsrsPartition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  std::vector<double> keys(n);
  for (auto& k : keys) k = rng.uniform(0, 1);
  std::vector<double> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  for (auto _ : state) {
    const auto samples = core::regular_samples(sorted, 15);
    auto pivots = core::choose_pivots(
        std::vector<double>(samples.begin(), samples.end()), 16);
    benchmark::DoNotOptimize(core::bucket_histogram(keys, pivots));
  }
}
BENCHMARK(BM_PsrsPartition)->Arg(10000)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  using salign::align::engine::Backend;
  benchmark::AddCustomContext(
      "salign_engine_default",
      salign::align::engine::backend_name(
          salign::align::engine::default_backend()));
  benchmark::AddCustomContext(
      "salign_engine_vector_lanes",
      std::to_string(
          salign::align::engine::backend_lanes(Backend::kVector)));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
