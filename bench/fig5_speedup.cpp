// Reproduces paper Fig. 5: speedup of Sample-Align-D vs number of
// processors for N = 5000, 10000, 20000. The paper observes *superlinear*
// speedup — the sequential MSA cost falls as O((N/p)^2 ... (N/p)^4), so
// p-fold partitioning removes more than p-fold work — with a knee at p=16
// for the smaller data sets (per-bucket granularity becomes too fine).
//
// Speedups here are computed from the modeled dedicated-cluster makespan
// (see fig4_scalability.cpp for why); the superlinearity check is
// speedup(p) > p for the mid-size sweep.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/sample_align_d.hpp"
#include "util/table.hpp"
#include "workload/rose.hpp"

int main() {
  using namespace salign;
  const double factor = bench::scale(0.1);
  bench::banner("Fig 5: speedup vs processors (superlinear)",
                "Saeed & Khokhar 2008, Fig. 5", factor);

  const std::vector<std::size_t> paper_ns{5000, 10000, 20000};
  const std::vector<int> procs{1, 4, 8, 12, 16};

  util::Table t({"paper N", "run N", "p", "modeled s", "speedup (measured)",
                 "speedup (paper w^4 model)", "superlinear (model)?"});
  for (std::size_t paper_n : paper_ns) {
    const std::size_t n = bench::scaled(paper_n, factor, 32);
    const auto seqs = workload::rose_sequences(
        {.num_sequences = n, .average_length = 300, .relatedness = 800,
         .seed = paper_n + 1});
    double t1 = 0.0;
    for (int p : procs) {
      core::SampleAlignDConfig cfg;
      cfg.num_procs = p;
      core::PipelineStats stats;
      (void)core::SampleAlignD(cfg).align(seqs, &stats);
      const double tp = stats.modeled_seconds();
      if (p == 1) t1 = tp;
      const double speedup = tp > 0.0 ? t1 / tp : 0.0;
      std::size_t max_bucket = 0;
      for (std::size_t b : stats.bucket_sizes)
        max_bucket = std::max(max_bucket, b);
      const double projected =
          bench::paper_model_speedup(n, max_bucket, 300.0);
      t.add_row({std::to_string(paper_n), std::to_string(n),
                 std::to_string(p), util::fmt("%.3f", tp),
                 util::fmt("%.2f", speedup), util::fmt("%.1f", projected),
                 p == 1 ? "-" : (projected > p ? "yes" : "no")});
      std::printf("N=%zu p=%2d modeled %.3f s (speedup %.2f, paper-model "
                  "%.1f)\n",
                  n, p, tp, speedup, projected);
    }
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf(
      "paper claim: superlinear speedup; curves dip at p=16 for N<=10000.\n"
      "reading the two speedup columns (EXPERIMENTS.md, Fig. 5):\n"
      " - measured: our MiniMuscle is the efficient O(w^2 + wL^2) pipeline,\n"
      "   so speedup is bounded by ~p^2 in the quadratic regime and grows\n"
      "   with N (granularity knee at p>=12 for the small sets);\n"
      " - paper w^4 model: the paper's own step-7 cost model applied to our\n"
      "   measured bucket sizes (unit constants, no communication) — the\n"
      "   upper envelope that makes the published curves superlinear; the\n"
      "   paper's measured ~45x at p=16 sits between the two columns.\n");
  return 0;
}
