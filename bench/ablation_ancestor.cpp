// Ablation B (DESIGN.md §4): what does the global-ancestor tweak buy?
//
// The paper's Fig. 2 argues the ancestor-constrained profile alignment is
// what turns p independent bucket alignments into one coherent global MSA.
// This bench runs the pipeline with and without the ancestor stage (the
// fallback is block-diagonal concatenation) and reports SP score, Q-score
// against the evolver's exact reference, and the number of columns.

#include <cstdio>

#include "bench_common.hpp"
#include "core/sample_align_d.hpp"
#include "msa/scoring.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/prefab.hpp"

int main() {
  using namespace salign;
  const double factor = bench::scale(0.4);
  bench::banner("Ablation B: effect of the global-ancestor tweak",
                "paper §2.3.3 / Fig. 2 (ancestor-constrained glue)", factor);

  workload::PrefabParams pp;
  pp.num_cases = std::max<std::size_t>(4, static_cast<std::size_t>(16 * factor));
  pp.min_length = 100;
  pp.max_length = 220;
  const auto cases = workload::prefab_cases(pp);

  const auto& b62 = bio::SubstitutionMatrix::blosum62();
  const auto gaps = b62.default_gaps();

  util::Table t({"configuration", "mean Q", "mean SP", "mean columns"});
  for (const bool with_ancestor : {true, false}) {
    core::SampleAlignDConfig cfg;
    cfg.num_procs = 4;
    cfg.ancestor_refinement = with_ancestor;
    util::RunningStats q;
    util::RunningStats sp;
    util::RunningStats cols;
    for (const auto& c : cases) {
      const msa::Alignment a = core::SampleAlignD(cfg).align(c.sequences);
      q.add(msa::q_score(a, c.reference));
      sp.add(msa::sp_score(a, b62, gaps));
      cols.add(static_cast<double>(a.num_cols()));
    }
    t.add_row({with_ancestor ? "with global ancestor (paper)"
                             : "no ancestor (block-diagonal glue)",
               util::fmt("%.3f", q.mean()), util::fmt("%.0f", sp.mean()),
               util::fmt("%.0f", cols.mean())});
    std::printf("%s done\n",
                with_ancestor ? "ancestor on" : "ancestor off");
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("expected: the ancestor configuration dominates on all three "
              "columns — cross-bucket residues only align through the "
              "shared ancestor coordinate system.\n");
  return 0;
}
