// Reproduces paper Fig. 6: execution time on 2000 randomly selected protein
// sequences from the Methanosarcina acetivorans genome (mean length 316)
// vs number of processors. Paper landmark: sequential MUSCLE took ~23 h on
// one cluster node; Sample-Align-D took 9.82 min on 16 — a 142x speedup.
//
// The genome is synthetic here (GenomeSimulator; DESIGN.md §2): same N,
// length distribution and gene-family structure as the real proteome, which
// are the drivers of alignment cost and k-mer rank structure.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/sample_align_d.hpp"
#include "msa/muscle_like.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/genome.hpp"

int main() {
  using namespace salign;
  const double factor = bench::scale(0.5);
  const std::size_t n = bench::scaled(2000, factor, 32);
  bench::banner("Fig 6: 2000 genome sequences, time vs processors",
                "Saeed & Khokhar 2008, Fig. 6 (M. acetivorans, 142x at p=16)",
                factor);

  workload::GenomeParams gp;
  gp.num_families = std::max<std::size_t>(
      8, static_cast<std::size_t>(220 * factor));
  gp.num_orphans = std::max<std::size_t>(
      8, static_cast<std::size_t>(900 * factor));
  const workload::GenomeSimulator sim(gp);
  const auto seqs = sim.sample(std::min(n, sim.pool().size()), 2000);
  std::printf("pool %zu sequences, sampled %zu (mean length target 316)\n\n",
              sim.pool().size(), seqs.size());

  // Sequential MUSCLE baseline (the paper's 23-hour column, scaled down).
  util::ThreadCpuTimer seq_cpu;
  (void)msa::MuscleAligner().align(seqs);
  const double muscle_seq = seq_cpu.seconds();
  std::printf("sequential MiniMuscle on one node: %.3f s (CPU)\n\n",
              muscle_seq);

  util::Table t({"p", "wall s", "modeled s", "speedup vs seq MUSCLE",
                 "speedup (paper w^4 model)"});
  for (int p : {1, 4, 8, 16}) {
    core::SampleAlignDConfig cfg;
    cfg.num_procs = p;
    core::PipelineStats stats;
    (void)core::SampleAlignD(cfg).align(seqs, &stats);
    const double modeled = stats.modeled_seconds();
    std::size_t max_bucket = 0;
    for (std::size_t b : stats.bucket_sizes)
      max_bucket = std::max(max_bucket, b);
    const double projected =
        bench::paper_model_speedup(seqs.size(), max_bucket, 316.0);
    t.add_row({std::to_string(p), util::fmt("%.3f", stats.wall_seconds),
               util::fmt("%.3f", modeled),
               util::fmt("%.1fx", modeled > 0 ? muscle_seq / modeled : 0.0),
               util::fmt("%.0fx", projected)});
    std::printf("p=%2d done (modeled %.3f s)\n", p, modeled);
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf(
      "paper reference: 23 h sequential vs 9.82 min at p=16 — a 142x\n"
      "speedup. The two columns bracket it: the measured one uses our\n"
      "efficient O(w^2 + wL^2) MiniMuscle (honest, ~p^2-bounded gains); the\n"
      "last column is the *upper envelope* of the paper's O(w^4) per-bucket\n"
      "cost model applied to our measured buckets (unit constants, no\n"
      "communication — the published 142x lies between the two, exactly as\n"
      "the paper's own measured Fig. 5 curves sit far below its w^4 model).\n"
      "Shape check: both columns grow monotonically to p=16 at this N.\n");
  return 0;
}
