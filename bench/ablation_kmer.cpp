// Ablation C (DESIGN.md §4): sensitivity to the k-mer size and the sample
// count k' (the paper's k, default p-1).
//
// The paper fixes k-mer parameters implicitly (via MUSCLE's distance) and
// uses k' = p-1 samples per processor. This bench sweeps both knobs and
// reports (a) how well sample-based ranks preserve the centralized rank
// ordering and (b) the pipeline's load factor — the two quantities the
// sampling scheme exists to serve.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/sample_align_d.hpp"
#include "kmer/kmer_rank.hpp"
#include "util/table.hpp"
#include "workload/rose.hpp"

namespace {

/// Pairwise order agreement between two rank vectors (1.0 = same ordering).
double order_agreement(const std::vector<double>& a,
                       const std::vector<double>& b) {
  std::size_t agree = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      if (a[i] == a[j]) continue;
      ++total;
      if ((a[i] < a[j]) == (b[i] < b[j])) ++agree;
    }
  return total ? static_cast<double>(agree) / static_cast<double>(total) : 1.0;
}

}  // namespace

int main() {
  using namespace salign;
  const double factor = bench::scale(0.1);
  const std::size_t n = bench::scaled(5000, factor, 64);
  bench::banner("Ablation C: k-mer size and sample-count sensitivity",
                "paper §2 (k-mer rank) and §2.3.2 (k = p-1 samples)", factor);

  const auto seqs = workload::rose_sequences(
      {.num_sequences = n, .average_length = 200, .relatedness = 800,
       .seed = 31337});
  const int p = 8;

  // (a) k-mer size sweep: ordering fidelity of sample-based ranks.
  std::printf("--- k-mer size sweep (p=%d, k'=p-1 samples/proc) ---\n", p);
  util::Table tk({"k", "compressed", "order agreement vs centralized"});
  std::vector<bio::Sequence> sample;
  for (std::size_t i = 0; i < static_cast<std::size_t>(p * (p - 1)); ++i)
    sample.push_back(seqs[(i * seqs.size()) / (p * (p - 1))]);
  for (const bool compressed : {true, false}) {
    for (int k : {2, 3, 4, 5}) {
      const kmer::KmerParams params{k, compressed};
      const auto central = kmer::centralized_ranks(seqs, params);
      const auto global = kmer::globalized_ranks(seqs, sample, params);
      tk.add_row({std::to_string(k), compressed ? "yes" : "no",
                  util::fmt("%.3f", order_agreement(central, global))});
    }
  }
  std::printf("%s\n", tk.to_string().c_str());

  // (b) sample count sweep: pipeline load factor.
  std::printf("--- sample count sweep (pipeline, p=%d) ---\n", p);
  util::Table ts({"samples/proc", "load factor", "modeled s"});
  for (int k : {1, 3, 7, 15, 31}) {
    core::SampleAlignDConfig cfg;
    cfg.num_procs = p;
    cfg.samples_per_proc = k;
    core::PipelineStats stats;
    (void)core::SampleAlignD(cfg).align(seqs, &stats);
    ts.add_row({std::to_string(k), util::fmt("%.2f", stats.load_factor()),
                util::fmt("%.3f", stats.modeled_seconds())});
    std::printf("k'=%d done\n", k);
  }
  std::printf("\n%s\n", ts.to_string().c_str());
  std::printf("expected: agreement grows with k then saturates; more "
              "samples tighten the load factor toward 1.0 at slightly "
              "higher sample-exchange cost (paper's default k'=p-1=%d).\n",
              p - 1);
  return 0;
}
