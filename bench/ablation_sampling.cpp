// Ablation A (DESIGN.md §4): why regular sampling?
//
// The paper justifies regular sampling over alternatives (e.g. Huang &
// Chow) with three arguments: distribution independence, ~equal ordered
// buckets, and the 2N/p worst-case bound. This bench compares the pivot
// strategies head-to-head on uniform, skewed and clustered rank
// distributions, reporting the load factor max_bucket / (N/p).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/partition.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using salign::core::bucket_histogram;
using salign::core::choose_pivots;
using salign::core::regular_samples;

/// PSRS pivots: per-block local sort + regular samples + pooled selection.
std::vector<double> psrs_pivots(const std::vector<double>& keys, int p) {
  const std::size_t n = keys.size();
  const std::size_t chunk = (n + static_cast<std::size_t>(p) - 1) /
                            static_cast<std::size_t>(p);
  std::vector<double> pooled;
  for (int r = 0; r < p; ++r) {
    const std::size_t b = std::min(n, static_cast<std::size_t>(r) * chunk);
    const std::size_t e = std::min(n, b + chunk);
    std::vector<double> local(keys.begin() + static_cast<long>(b),
                              keys.begin() + static_cast<long>(e));
    std::sort(local.begin(), local.end());
    const auto s = regular_samples(local, static_cast<std::size_t>(p - 1));
    pooled.insert(pooled.end(), s.begin(), s.end());
  }
  return choose_pivots(std::move(pooled), p);
}

/// Naive alternative: p-1 uniformly random keys as pivots (the strategy
/// regular sampling replaces).
std::vector<double> random_pivots(const std::vector<double>& keys, int p,
                                  salign::util::Rng& rng) {
  std::vector<double> piv;
  for (int i = 0; i < p - 1; ++i)
    piv.push_back(keys[rng.below(keys.size())]);
  std::sort(piv.begin(), piv.end());
  return piv;
}

/// Range-split alternative: pivots evenly spaced in *value* space (assumes
/// uniformity; Huang-Chow-style distribution sensitivity).
std::vector<double> range_pivots(const std::vector<double>& keys, int p) {
  const auto [lo_it, hi_it] = std::minmax_element(keys.begin(), keys.end());
  std::vector<double> piv;
  for (int i = 1; i < p; ++i)
    piv.push_back(*lo_it + (*hi_it - *lo_it) * i / p);
  return piv;
}

double load_factor(const std::vector<double>& keys,
                   const std::vector<double>& pivots, int p) {
  const auto h = bucket_histogram(keys, pivots);
  std::size_t mx = 0;
  for (std::size_t c : h) mx = std::max(mx, c);
  return static_cast<double>(mx) /
         (static_cast<double>(keys.size()) / static_cast<double>(p));
}

}  // namespace

int main() {
  using namespace salign;
  const double factor = bench::scale(1.0);
  const std::size_t n = bench::scaled(20000, factor, 1000);
  bench::banner("Ablation A: regular sampling vs alternative pivot schemes",
                "paper §3 justification of regular sampling [26]", factor);

  util::Rng rng(77);
  struct Dist {
    const char* name;
    std::vector<double> keys;
  };
  std::vector<Dist> dists;
  {
    std::vector<double> uniform(n);
    for (auto& k : uniform) k = rng.uniform(0, 1);
    dists.push_back({"uniform", std::move(uniform)});

    std::vector<double> skewed(n);  // quadratic pile-up at the low end
    for (auto& k : skewed) {
      const double u = rng.uniform();
      k = u * u;
    }
    dists.push_back({"skewed", std::move(skewed)});

    std::vector<double> clustered(n);  // two tight families of ranks
    for (auto& k : clustered)
      k = rng.chance(0.7) ? rng.uniform(0.20, 0.25) : rng.uniform(0.8, 0.9);
    dists.push_back({"clustered", std::move(clustered)});
  }

  util::Table t({"distribution", "p", "regular (PSRS)", "random pivots",
                 "range split", "2N/p bound holds (PSRS)"});
  for (const auto& d : dists) {
    for (int p : {4, 8, 16}) {
      const double lf_psrs = load_factor(d.keys, psrs_pivots(d.keys, p), p);
      const double lf_rand =
          load_factor(d.keys, random_pivots(d.keys, p, rng), p);
      const double lf_range = load_factor(d.keys, range_pivots(d.keys, p), p);
      t.add_row({d.name, std::to_string(p), util::fmt("%.2f", lf_psrs),
                 util::fmt("%.2f", lf_rand), util::fmt("%.2f", lf_range),
                 lf_psrs <= 2.0 + 1e-9 ? "yes" : "NO (duplicate keys)"});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("load factor = max bucket / (N/p); 1.0 is perfect, PSRS "
              "guarantees <= 2.0 for distinct keys.\n"
              "Range splitting collapses on skewed/clustered ranks — the "
              "paper's reason for choosing regular sampling.\n");
  return 0;
}
