// Reproduces paper Fig. 4: execution time of Sample-Align-D vs number of
// processors for N = 5000, 10000, 20000 (ROSE, length 300, relatedness
// 800). The paper reports times dropping sharply with p (e.g. 20000
// sequences in ~25 s on 16 processors).
//
// Substitution note (DESIGN.md §2): the container has 2 cores, not 16
// nodes, so two times are reported per cell:
//   wall    — host wall-clock with p runtime threads (oversubscribed);
//   modeled — per-stage max rank CPU time + Beowulf/GigE wire model, i.e.
//             the dedicated-cluster makespan the paper measures.
// The modeled column is the one whose *shape* (sharp drop, diminishing
// returns by p=16 on small N) must match Fig. 4.

#include <cstdio>
#include <vector>

#include <string>

#include "bench_common.hpp"
#include "core/sample_align_d.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/rose.hpp"

int main() {
  using namespace salign;
  const double factor = bench::scale(0.1);
  bench::banner("Fig 4: execution time vs processors",
                "Saeed & Khokhar 2008, Fig. 4 (N=5000/10000/20000)", factor);

  const std::vector<std::size_t> paper_ns{5000, 10000, 20000};
  const std::vector<int> procs{1, 4, 8, 12, 16};

  util::Table t({"paper N", "run N", "p", "wall s", "modeled s",
                 "max bucket", "bytes"});
  for (std::size_t paper_n : paper_ns) {
    const std::size_t n = bench::scaled(paper_n, factor, 32);
    const auto seqs = workload::rose_sequences(
        {.num_sequences = n, .average_length = 300, .relatedness = 800,
         .seed = paper_n});
    for (int p : procs) {
      core::SampleAlignDConfig cfg;
      cfg.num_procs = p;
      core::PipelineStats stats;
      (void)core::SampleAlignD(cfg).align(seqs, &stats);
      std::size_t max_bucket = 0;
      for (std::size_t b : stats.bucket_sizes)
        max_bucket = std::max(max_bucket, b);
      t.add_row({std::to_string(paper_n), std::to_string(n),
                 std::to_string(p), util::fmt("%.3f", stats.wall_seconds),
                 util::fmt("%.3f", stats.modeled_seconds()),
                 std::to_string(max_bucket),
                 std::to_string(stats.total_bytes())});
      std::printf("N=%zu p=%2d done (modeled %.3f s)\n", n, p,
                  stats.modeled_seconds());
    }
  }
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("paper reference points: 20000 seqs aligned in ~25 s on 16 "
              "procs; execution time decreases sharply with p.\n");

  // Per-stage thread speedup from the PR 4 wall/CPU instrumentation: the
  // same input once with threads=1 and once with the auto thread count,
  // per-stage max wall seconds side by side. On a single-CPU container the
  // ratio degenerates to ~1 (the correctness half — thread invariance — is
  // test-pinned); on multi-core hosts this is the per-stage scaling table.
  {
    const std::size_t n = bench::scaled(5000, factor, 32);
    const auto seqs = workload::rose_sequences(
        {.num_sequences = n, .average_length = 300, .relatedness = 800,
         .seed = 5000});
    const unsigned auto_threads = util::default_threads();
    core::PipelineStats serial;
    core::PipelineStats threaded;
    {
      core::SampleAlignDConfig cfg;
      cfg.num_procs = 4;
      cfg.threads = 1;
      (void)core::SampleAlignD(cfg).align(seqs, &serial);
    }
    {
      core::SampleAlignDConfig cfg;
      cfg.num_procs = 4;
      cfg.threads = auto_threads;
      (void)core::SampleAlignD(cfg).align(seqs, &threaded);
    }
    util::Table st({"stage", "wall s (1 thr)",
                    "wall s (" + std::to_string(auto_threads) + " thr)",
                    "speedup"});
    for (std::size_t s = 0; s < serial.stages.size() &&
                            s < threaded.stages.size();
         ++s) {
      const double w1 = serial.stages[s].max_wall_seconds();
      const double wt = threaded.stages[s].max_wall_seconds();
      st.add_row({serial.stages[s].name, util::fmt("%.4f", w1),
                  util::fmt("%.4f", wt),
                  wt > 0.0 ? util::fmt("%.2f", w1 / wt) : "-"});
    }
    std::printf("\nper-stage thread speedup (N=%zu, p=4, %u threads):\n%s\n",
                n, auto_threads, st.to_string().c_str());
  }
  return 0;
}
