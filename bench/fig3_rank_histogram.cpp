// Reproduces paper Fig. 3: the k-mer rank distribution of the synthetic
// (ROSE, relatedness 800) experiment input, N = 5000 — the paper verifies
// the ranks are "in general evenly distributed" before running the
// scalability experiments, because regular sampling's load balance feeds on
// rank spread.

#include <cstdio>

#include "bench_common.hpp"
#include "kmer/kmer_rank.hpp"
#include "util/stats.hpp"
#include "workload/rose.hpp"

int main() {
  using namespace salign;
  const double factor = bench::scale(0.2);
  const std::size_t n = bench::scaled(5000, factor);
  bench::banner("Fig 3: k-mer rank distribution of the experiment input",
                "Saeed & Khokhar 2008, Fig. 3 (N=5000, rose relatedness 800)",
                factor);

  const auto seqs = workload::rose_sequences(
      {.num_sequences = n, .average_length = 300, .relatedness = 800,
       .seed = 42});
  const auto ranks = kmer::centralized_ranks(seqs, {});

  util::Histogram h(-0.1, 2.31, 28);
  h.add_all(ranks);
  std::printf("%s\n", h.ascii(48).c_str());

  const auto s = util::summarize(ranks);
  std::printf("N=%zu  mean %.4f  stddev %.4f  min %.4f  max %.4f\n", n,
              s.mean(), s.stddev(), s.min(), s.max());

  // "Evenly distributed" check the paper relies on: the middle half of the
  // rank range should hold a substantial share of the mass.
  std::size_t mid = 0;
  const double lo = s.min() + 0.25 * (s.max() - s.min());
  const double hi = s.min() + 0.75 * (s.max() - s.min());
  for (double r : ranks)
    if (r >= lo && r <= hi) ++mid;
  std::printf("mass in middle half of the range: %.1f%% (broad spread -> "
              "balanced buckets)\n",
              100.0 * static_cast<double>(mid) / static_cast<double>(n));
  return 0;
}
