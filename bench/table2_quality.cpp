// Reproduces paper Table 2: PREFAB Q-scores for Sample-Align-D (run on a
// 4-processor system) against the sequential comparators.
//
// Paper values:
//   Sample-Align-D 0.544, MUSCLE 0.645, MUSCLE-p 0.634, T-Coffee 0.615,
//   NWNSI 0.615, FFTNSI 0.591, CLUSTALW 0.563.
//
// PREFAB itself ships structure-derived references; we substitute
// exact-history references from the evolver (DESIGN.md §2). The shape to
// reproduce: refined MUSCLE at the top, consistency/iterative methods in the
// middle band, CLUSTALW below them, and Sample-Align-D comparable to
// CLUSTALW — the paper's own observation that domain decomposition on sets
// of 20-30 sequences over 4 processors is "too fine grain" and costs some
// quality versus the sequential aligner it wraps.

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/sample_align_d.hpp"
#include "msa/clustalw_like.hpp"
#include "msa/mafft_like.hpp"
#include "msa/muscle_like.hpp"
#include "msa/probcons_like.hpp"
#include "msa/scoring.hpp"
#include "msa/tcoffee_like.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/prefab.hpp"

int main() {
  using namespace salign;
  const double factor = bench::scale(0.4);
  bench::banner("Table 2: PREFAB-style Q-scores per method",
                "Saeed & Khokhar 2008, Table 2", factor);

  workload::PrefabParams pp;
  pp.num_cases = std::max<std::size_t>(4, static_cast<std::size_t>(24 * factor));
  pp.min_length = 100;
  pp.max_length = 260;
  const auto cases = workload::prefab_cases(pp);
  std::printf("%zu PREFAB-style cases, 20-30 sequences each, divergence "
              "%.2f..%.2f\n\n",
              cases.size(), pp.min_divergence, pp.max_divergence);

  using AlignFn =
      std::function<msa::Alignment(std::span<const bio::Sequence>)>;
  struct Method {
    const char* label;
    const char* paper_q;
    AlignFn fn;
  };

  msa::MuscleOptions refined;
  refined.refine_passes = 2;
  msa::MafftOptions nw;
  nw.use_fft = false;
  msa::MafftOptions fft;
  fft.use_fft = true;
  core::SampleAlignDConfig sad_cfg;
  sad_cfg.num_procs = 4;  // the paper runs Table 2 on a 4-processor system

  const std::vector<Method> methods{
      {"Sample-Align-D (p=4)", "0.544",
       [&](std::span<const bio::Sequence> s) {
         return core::SampleAlignD(sad_cfg).align(s);
       }},
      {"MUSCLE", "0.645",
       [&](std::span<const bio::Sequence> s) {
         return msa::MuscleAligner(refined).align(s);
       }},
      {"MUSCLE-p", "0.634",
       [&](std::span<const bio::Sequence> s) {
         return msa::MuscleAligner().align(s);  // progressive only
       }},
      {"T-Coffee", "0.615",
       [&](std::span<const bio::Sequence> s) {
         return msa::TCoffeeAligner().align(s);
       }},
      {"NWNSI", "0.615",
       [&](std::span<const bio::Sequence> s) {
         return msa::MafftAligner(nw).align(s);
       }},
      {"FFTNSI", "0.591",
       [&](std::span<const bio::Sequence> s) {
         return msa::MafftAligner(fft).align(s);
       }},
      {"CLUSTALW", "0.563",
       [&](std::span<const bio::Sequence> s) {
         return msa::ClustalWAligner().align(s);
       }},
      // Not in the paper's table; the intro cites ProbCons among the
      // dominant heuristics, so the library ships it as an extension row.
      {"ProbCons (ext.)", "-",
       [&](std::span<const bio::Sequence> s) {
         return msa::ProbConsAligner().align(s);
       }},
  };

  util::Table t({"method", "paper Q", "measured Q", "measured TC"});
  std::map<std::string, double> measured;
  for (const Method& m : methods) {
    util::RunningStats q;
    util::RunningStats tc;
    for (const auto& c : cases) {
      const msa::Alignment a = m.fn(c.sequences);
      q.add(msa::q_score(a, c.reference));
      tc.add(msa::tc_score(a, c.reference));
    }
    measured[m.label] = q.mean();
    t.add_row({m.label, m.paper_q, util::fmt("%.3f", q.mean()),
               util::fmt("%.3f", tc.mean())});
    std::printf("%-22s Q=%.3f\n", m.label, q.mean());
  }
  std::printf("\n%s\n", t.to_string().c_str());

  std::printf("shape checks (paper Table 2 ordering):\n");
  std::printf("  refined MUSCLE >= progressive MUSCLE: %s\n",
              measured["MUSCLE"] >= measured["MUSCLE-p"] - 0.02 ? "yes" : "NO");
  std::printf("  Sample-Align-D within 0.1 of CLUSTALW: %s\n",
              std::abs(measured["Sample-Align-D (p=4)"] -
                       measured["CLUSTALW"]) < 0.1
                  ? "yes (paper: 0.544 vs 0.563)"
                  : "NO");
  std::printf("  Sample-Align-D below its sequential aligner: %s\n",
              measured["Sample-Align-D (p=4)"] <= measured["MUSCLE-p"] + 0.02
                  ? "yes (partitioning 20-30 seqs over 4 procs is too fine "
                    "grain — paper §4.1)"
                  : "NO");
  return 0;
}
