// Ablation D: globalized vs local-only k-mer rank (paper §2.3.1).
//
// The predecessor system Sample-Align [34] ranked every sequence only
// against its own processor's block, which is valid when the input is
// phylogenetically homogeneous. Sample-Align-D's contribution is the
// sample-exchange round that re-ranks every sequence against a global
// k·p-sequence sample. This bench reproduces the motivating comparison:
// on homogeneous input the two modes behave alike; on phylogenetically
// diverse input (several well-separated families interleaved across
// blocks) local-only ranks live on inconsistent scales, so buckets stop
// grouping similar sequences and the final alignment quality drops while
// load imbalance grows.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/sample_align_d.hpp"
#include "msa/scoring.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "workload/rose.hpp"

namespace {

using salign::bio::Sequence;

/// Interleaves f families of n/f sequences each, divergence ladder across
/// families, so that every contiguous block mixes all families.
std::vector<Sequence> diverse_input(std::size_t n, std::size_t families,
                                    std::uint64_t seed) {
  std::vector<std::vector<Sequence>> fams;
  for (std::size_t f = 0; f < families; ++f) {
    const double relatedness = 150.0 + 700.0 * static_cast<double>(f);
    fams.push_back(salign::workload::rose_sequences(
        {.num_sequences = n / families,
         .average_length = 60,
         .relatedness = relatedness,
         .seed = seed + f}));
  }
  std::vector<Sequence> out;
  for (std::size_t i = 0; i < n / families; ++i)
    for (std::size_t f = 0; f < families; ++f) {
      std::string name = salign::util::indexed_name("f", f);
      name += '_';
      name += std::to_string(i);
      out.emplace_back(std::move(name),
                       std::vector<std::uint8_t>(fams[f][i].codes().begin(),
                                                 fams[f][i].codes().end()),
                       salign::bio::AlphabetKind::AminoAcid);
    }
  return out;
}

}  // namespace

int main() {
  using namespace salign;
  const double factor = bench::scale(1.0);
  const std::size_t n = bench::scaled(256, factor, 64);
  bench::banner(
      "Ablation D: globalized re-rank (Sample-Align-D) vs local-only rank "
      "(predecessor Sample-Align [34])",
      "paper §2.3.1 (globalized k-mer rank)", factor);

  struct Workload {
    const char* name;
    std::vector<Sequence> seqs;
  };
  std::vector<Workload> workloads;
  workloads.push_back(
      {"homogeneous (1 family)",
       workload::rose_sequences(
           {.num_sequences = n, .average_length = 60, .relatedness = 400,
            .seed = 11})});
  workloads.push_back({"diverse (4 families interleaved)",
                       diverse_input(n, 4, 17)});

  const auto& matrix = bio::SubstitutionMatrix::blosum62();
  const auto gaps = matrix.default_gaps();

  util::Table t({"workload", "rank mode", "load factor", "SP score",
                 "sample-exchange bytes"});
  for (const auto& w : workloads) {
    for (const core::RankMode mode :
         {core::RankMode::Globalized, core::RankMode::LocalOnly}) {
      core::SampleAlignDConfig cfg;
      cfg.num_procs = 8;
      cfg.samples_per_proc = 8;
      cfg.rank_mode = mode;
      core::PipelineStats stats;
      const msa::Alignment a = core::SampleAlignD(cfg).align(w.seqs, &stats);
      std::uint64_t exchange_bytes = 0;
      for (const auto& s : stats.stages)
        if (s.name == std::string("sample exchange"))
          exchange_bytes = s.total_bytes;
      t.add_row({w.name,
                 mode == core::RankMode::Globalized ? "globalized (paper)"
                                                    : "local-only [34]",
                 util::fmt("%.2f", stats.load_factor()),
                 util::fmt("%.0f", msa::sp_score(a, matrix, gaps, 2000)),
                 std::to_string(exchange_bytes)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "expected shape: on the homogeneous family both modes bucket "
      "similarly;\non the diverse input the local-only mode loses the "
      "2N/p balance guarantee\nand its SP score falls behind the "
      "globalized mode — the paper's case for\nthe sample-exchange "
      "round it adds over [34].\n");
  return 0;
}
