# Compares the kernel_cells_per_second summary of a freshly produced
# BENCH_baseline.json against the committed per-PR baseline and WARNS (never
# fails) on regressions beyond the threshold — CI runners are noisy, so this
# is a tripwire for reviewers, not a gate. Every benchmark that exports a
# cells_per_second counter is covered automatically (the pairwise/striped
# engine kernels, the distance-matrix drivers, and since PR 4 the
# profile-DP kernels BM_ProfileDp* and the task-parallel progressive pass
# BM_ProgressiveAlign/<threads> — whose counter is measured against wall
# time, so the 1-vs-4-thread entries carry the scheduler speedup). A kernel
# present in the committed baseline but absent from the current run also
# warns: a silently dropped or renamed bench must not pass as green.
# Invoked as:
#   cmake -DBASELINE=BENCH_pr4.json -DCURRENT=build/BENCH_baseline.json
#         [-DTHRESHOLD_PERCENT=80] -P cmake/bench_compare.cmake

if(NOT BASELINE OR NOT CURRENT)
  message(FATAL_ERROR "bench_compare: BASELINE and CURRENT are required")
endif()
if(NOT THRESHOLD_PERCENT)
  set(THRESHOLD_PERCENT 80)  # warn below 80% of baseline (>20% regression)
endif()

# Converts a JSON number (possibly scientific notation, e.g. "3.08e+09")
# into a plain integer (truncated). CMake's math() is int64-only, so the
# ratio test below runs on integers scaled by THRESHOLD_PERCENT.
function(sci_to_int value out_var)
  if(NOT value MATCHES "^([0-9]+)(\\.([0-9]*))?([eE]\\+?(-?[0-9]+))?$")
    set(${out_var} "" PARENT_SCOPE)
    return()
  endif()
  set(int_part "${CMAKE_MATCH_1}")
  set(frac "${CMAKE_MATCH_3}")
  set(exp "${CMAKE_MATCH_5}")
  if(exp STREQUAL "")
    set(exp 0)
  endif()
  string(LENGTH "${frac}" frac_len)
  math(EXPR shift "${exp} - ${frac_len}")
  set(digits "${int_part}${frac}")
  if(shift GREATER 0)
    foreach(_ RANGE 1 ${shift})
      set(digits "${digits}0")
    endforeach()
  elseif(shift LESS 0)
    math(EXPR keep "0 - ${shift}")
    string(LENGTH "${digits}" dlen)
    if(dlen LESS_EQUAL keep)
      set(digits 0)
    else()
      math(EXPR dlen "${dlen} - ${keep}")
      string(SUBSTRING "${digits}" 0 ${dlen} digits)
    endif()
  endif()
  # Strip leading zeros so math() does not read octal.
  string(REGEX REPLACE "^0+([0-9])" "\\1" digits "${digits}")
  set(${out_var} "${digits}" PARENT_SCOPE)
endfunction()

file(READ "${BASELINE}" baseline_json)
file(READ "${CURRENT}" current_json)

# Schema 3 context block (hardware_concurrency + preset). Schema 2
# baselines predate it; report "unknown" rather than failing so old
# committed baselines keep comparing.
function(describe_context json out_var)
  string(JSON ctx ERROR_VARIABLE ctx_err GET "${json}" context)
  if(ctx_err)
    set(${out_var} "unknown (schema 2)" PARENT_SCOPE)
    return()
  endif()
  string(JSON cores ERROR_VARIABLE e1 GET "${ctx}" hardware_concurrency)
  string(JSON preset ERROR_VARIABLE e2 GET "${ctx}" preset)
  set(${out_var} "${cores} cores, preset '${preset}'" PARENT_SCOPE)
endfunction()
describe_context("${baseline_json}" baseline_ctx)
describe_context("${current_json}" current_ctx)
set(context_note
    " [baseline: ${baseline_ctx}; current: ${current_ctx}]")

# name -> cells_per_second of the committed baseline.
string(JSON base_entries GET "${baseline_json}" kernel_cells_per_second entries)
string(JSON base_len LENGTH "${base_entries}")
math(EXPR base_last "${base_len} - 1")
set(base_names "")
foreach(i RANGE 0 ${base_last})
  string(JSON name GET "${base_entries}" ${i} name)
  string(JSON cps GET "${base_entries}" ${i} cells_per_second)
  string(MAKE_C_IDENTIFIER "${name}" key)
  sci_to_int("${cps}" base_${key})
  list(APPEND base_names "${name}")
endforeach()

string(JSON cur_entries GET "${current_json}" kernel_cells_per_second entries)
string(JSON cur_len LENGTH "${cur_entries}")
math(EXPR cur_last "${cur_len} - 1")
set(compared 0)
set(regressed 0)
foreach(i RANGE 0 ${cur_last})
  string(JSON name GET "${cur_entries}" ${i} name)
  string(JSON cps GET "${cur_entries}" ${i} cells_per_second)
  string(MAKE_C_IDENTIFIER "${name}" key)
  list(REMOVE_ITEM base_names "${name}")
  if(NOT DEFINED base_${key} OR base_${key} STREQUAL "" OR
     base_${key} EQUAL 0)
    message(STATUS "bench_compare: ${name}: no baseline entry (new bench)")
    continue()
  endif()
  sci_to_int("${cps}" cur_int)
  if(cur_int STREQUAL "")
    continue()
  endif()
  math(EXPR compared "${compared} + 1")
  math(EXPR lhs "${cur_int} * 100")
  math(EXPR rhs "${base_${key}} * ${THRESHOLD_PERCENT}")
  if(lhs LESS rhs)
    math(EXPR regressed "${regressed} + 1")
    message(WARNING "bench_compare: ${name} regressed: ${cps} cells/s vs "
                    "baseline ${base_${key}} (below ${THRESHOLD_PERCENT}%)"
                    "${context_note}")
  endif()
endforeach()

# Baseline kernels the current run did not report at all.
foreach(name IN LISTS base_names)
  message(WARNING "bench_compare: ${name} is in ${BASELINE} but missing "
                  "from the current run (bench dropped or renamed?)"
                  "${context_note}")
endforeach()

message(STATUS "bench_compare: ${compared} kernels compared against "
               "${BASELINE}; ${regressed} below ${THRESHOLD_PERCENT}%"
               "${context_note}")
