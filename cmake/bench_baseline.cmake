# Runs the two anchor benches (micro_kernels, fig5_speedup) and writes a
# machine-readable BENCH_baseline.json for later performance PRs to diff
# against. Invoked by the `bench_baseline` custom target as:
#   cmake -DMICRO_KERNELS=<path> -DFIG5_SPEEDUP=<path> -DOUT_JSON=<path>
#         [-DPRESET_NAME=<name>] -P bench_baseline.cmake
#
# Schema 3 adds a "context" block (logical core count of the machine that
# produced the numbers + configure-preset name) so cross-machine comparisons
# are at least flagged: bench_compare prints both contexts next to any
# regression warning.

if(NOT MICRO_KERNELS OR NOT FIG5_SPEEDUP OR NOT OUT_JSON)
  message(FATAL_ERROR
    "bench_baseline: MICRO_KERNELS, FIG5_SPEEDUP and OUT_JSON are required")
endif()

get_filename_component(out_dir "${OUT_JSON}" DIRECTORY)
set(micro_json "${out_dir}/micro_kernels.json")

message(STATUS "bench_baseline: running micro_kernels ...")
execute_process(
  COMMAND "${MICRO_KERNELS}"
          --benchmark_out=${micro_json} --benchmark_out_format=json
          --benchmark_min_time=0.05
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE micro_out
  ERROR_VARIABLE micro_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "micro_kernels failed (${rc}):\n${micro_out}\n${micro_err}")
endif()

message(STATUS "bench_baseline: running fig5_speedup ...")
execute_process(
  COMMAND "${FIG5_SPEEDUP}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE fig5_out
  ERROR_VARIABLE fig5_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fig5_speedup failed (${rc}):\n${fig5_out}\n${fig5_err}")
endif()

# Pull the per-(N, p) modeled-seconds/speedup lines out of the fig5 log:
#   N=500 p= 4 modeled 0.123 s (speedup 4.56, paper-model 7.8)
set(fig5_entries "")
string(REGEX MATCHALL
  "N=[0-9]+ p=[ ]*[0-9]+ modeled [0-9.eE+-]+ s \\(speedup [0-9.eE+-]+, paper-model [0-9.eE+-]+\\)"
  fig5_lines "${fig5_out}")
if(NOT fig5_lines)
  message(FATAL_ERROR
    "bench_baseline: no 'N=... p=... modeled ...' lines matched in the "
    "fig5_speedup output — its print format drifted; update the regex "
    "above.\nOutput was:\n${fig5_out}")
endif()
foreach(line IN LISTS fig5_lines)
  string(REGEX REPLACE
    "N=([0-9]+) p=[ ]*([0-9]+) modeled ([0-9.eE+-]+) s \\(speedup ([0-9.eE+-]+), paper-model ([0-9.eE+-]+)\\)"
    "{\"n\": \\1, \"p\": \\2, \"modeled_seconds\": \\3, \"speedup\": \\4, \"paper_model_speedup\": \\5}"
    entry "${line}")
  list(APPEND fig5_entries "${entry}")
endforeach()
list(JOIN fig5_entries ",\n      " fig5_array)

file(READ "${micro_json}" micro_content)
string(TIMESTAMP now UTC)

cmake_host_system_information(RESULT host_cores QUERY NUMBER_OF_LOGICAL_CORES)
if(NOT PRESET_NAME)
  set(PRESET_NAME "none")
endif()

# Pull every benchmark's cells_per_second counter (added by the alignment
# engine benches) into a flat summary so perf PRs can diff kernel throughput
# without walking the full google-benchmark JSON.
# The name class admits ':' and '.' for suffixed benchmark names like
# BM_ProgressiveAlign/4/real_time or future threads:N arg labels.
set(kernel_entries "")
string(REGEX MATCHALL
  "\"name\": \"([A-Za-z0-9_/:.]+)\",[^}]*\"cells_per_second\": ([0-9.e+-]+)"
  kernel_lines "${micro_content}")
foreach(line IN LISTS kernel_lines)
  string(REGEX REPLACE
    "\"name\": \"([A-Za-z0-9_/:.]+)\",[^}]*\"cells_per_second\": ([0-9.e+-]+)"
    "{\"name\": \"\\1\", \"cells_per_second\": \\2}"
    entry "${line}")
  list(APPEND kernel_entries "${entry}")
endforeach()
list(JOIN kernel_entries ",\n      " kernel_array)

file(WRITE "${OUT_JSON}" "{
  \"schema\": 3,
  \"generated_utc\": \"${now}\",
  \"context\": {
    \"hardware_concurrency\": ${host_cores},
    \"preset\": \"${PRESET_NAME}\"
  },
  \"description\": \"Baseline perf numbers: google-benchmark micro kernels + Fig.5 modeled speedup sweep. Regenerate with the bench_baseline target.\",
  \"kernel_cells_per_second\": {
    \"entries\": [
      ${kernel_array}
    ]
  },
  \"fig5_speedup\": {
    \"entries\": [
      ${fig5_array}
    ]
  },
  \"micro_kernels\": ${micro_content}
}
")

message(STATUS "bench_baseline: wrote ${OUT_JSON}")
