# salign_lint self-test: the checker must (a) pass on a pristine copy of
# the tree and (b) fail with nonzero exit when a violation of each rule is
# seeded into the copy. A linter that cannot fail is decoration; this test
# is what keeps it honest.
#
# Inputs: -DSALIGN_LINT=<binary> -DSOURCE_DIR=<repo> -DWORK_DIR=<scratch>

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# The linter reads src/, tests/, cmake/, README.md.
file(COPY "${SOURCE_DIR}/src" "${SOURCE_DIR}/tests" "${SOURCE_DIR}/cmake"
     DESTINATION "${WORK_DIR}")
file(COPY "${SOURCE_DIR}/README.md" DESTINATION "${WORK_DIR}")

function(run_lint expect_rc label)
  execute_process(
    COMMAND "${SALIGN_LINT}" "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(expect_rc STREQUAL "zero" AND NOT rc EQUAL 0)
    message(FATAL_ERROR "lint self-test '${label}': expected clean, got rc=${rc}\n${out}\n${err}")
  endif()
  if(expect_rc STREQUAL "nonzero" AND rc EQUAL 0)
    message(FATAL_ERROR "lint self-test '${label}': seeded violation was NOT detected (rc=0)")
  endif()
  if(expect_rc STREQUAL "nonzero" AND NOT rc EQUAL 1)
    message(FATAL_ERROR "lint self-test '${label}': expected rc=1 (violations), got rc=${rc}\n${err}")
  endif()
  message(STATUS "lint self-test '${label}': ok (rc=${rc})")
endfunction()

# Pristine copy must be clean.
run_lint(zero "pristine tree")

set(victim "${WORK_DIR}/src/cli/cmd_score.cpp")
file(READ "${victim}" pristine)

# durable-io: a naked ofstream write.
file(APPEND "${victim}"
  "\nnamespace { void seeded_violation() { std::ofstream f(\"x\"); (void)f; } }\n")
run_lint(nonzero "seeded durable-io")
file(WRITE "${victim}" "${pristine}")

# exit-code-taxonomy: a nonzero literal return in src/cli/.
file(APPEND "${victim}"
  "\nnamespace { int seeded_violation() { return 42; } }\n")
run_lint(nonzero "seeded exit-code-taxonomy")
file(WRITE "${victim}" "${pristine}")

# fault-site-registry: a maybe_fail() site that exists nowhere else.
file(APPEND "${victim}"
  "\nnamespace { void seeded_violation() { salign::util::FaultInjector::instance().maybe_fail(\"seeded.unregistered.site\"); } }\n")
run_lint(nonzero "seeded fault-site-registry")
file(WRITE "${victim}" "${pristine}")

# include-hygiene: std::mutex without #include <mutex> (cmd_score.cpp does
# not include it).
file(APPEND "${victim}"
  "\nnamespace { void seeded_violation() { static std::mutex m; (void)m; } }\n")
run_lint(nonzero "seeded include-hygiene")
file(WRITE "${victim}" "${pristine}")

# codec-coverage: a new write/read codec pair nobody tests.
file(READ "${WORK_DIR}/src/core/stage/artifacts.hpp" artifacts)
file(APPEND "${WORK_DIR}/src/core/stage/artifacts.hpp"
  "\nnamespace salign::core::stage { void write_seeded_codec(par::ByteWriter&, int); int read_seeded_codec(par::ByteReader&); }\n")
run_lint(nonzero "seeded codec-coverage")
file(WRITE "${WORK_DIR}/src/core/stage/artifacts.hpp" "${artifacts}")

# A suppressed violation must NOT fail: same durable-io seed with an inline
# allow() carrying a reason.
file(APPEND "${victim}"
  "\nnamespace { void seeded_violation() { std::ofstream f(\"x\"); (void)f; } }  // salign-lint: allow(durable-io) -- self-test\n")
run_lint(zero "suppressed durable-io")
file(WRITE "${victim}" "${pristine}")

# Final sanity: restored tree is clean again.
run_lint(zero "restored tree")
message(STATUS "lint self-test passed")
