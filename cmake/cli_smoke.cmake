# CTest script: round-trips a tiny synthetic FASTA through the salign CLI.
# Invoked as:
#   cmake -DSALIGN_CLI=<path> -DWORK_DIR=<dir> -P cli_smoke.cmake
# Fails (FATAL_ERROR) on any non-zero exit or empty/malformed output.

if(NOT SALIGN_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "cli_smoke: SALIGN_CLI and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(in_fasta "${WORK_DIR}/tiny.fasta")
set(out_fasta "${WORK_DIR}/aligned.fasta")

execute_process(
  COMMAND "${SALIGN_CLI}" generate --kind rose --out "${in_fasta}"
          --n 8 --length 60 --seed 7
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "salign generate failed (${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS "${in_fasta}")
  message(FATAL_ERROR "salign generate did not write ${in_fasta}")
endif()

execute_process(
  COMMAND "${SALIGN_CLI}" align --in "${in_fasta}" --out "${out_fasta}"
          --procs 2
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "salign align failed (${rc}):\n${out}\n${err}")
endif()

file(READ "${out_fasta}" aligned)
string(REGEX MATCHALL ">" headers "${aligned}")
list(LENGTH headers num_records)
if(NOT num_records EQUAL 8)
  message(FATAL_ERROR
    "expected 8 FASTA records in ${out_fasta}, found ${num_records}")
endif()

# The alignment must preserve every input sequence once gaps are stripped;
# `salign score` against the input would need a reference alignment, so the
# cheap invariant here is record count + non-empty rows.
string(REGEX REPLACE "\n+$" "" aligned "${aligned}")
if(aligned STREQUAL "")
  message(FATAL_ERROR "aligned output is empty")
endif()

message(STATUS "cli_smoke: generate -> align round-trip OK (8 records)")
