# CTest script: end-to-end checkpoint/resume smoke through the salign CLI.
#   1. generate a synthetic family,
#   2. align it with --checkpoint-dir and --stats,
#   3. verify the checkpoint with `salign stages --verify`,
#   4. delete the output and re-run with --resume,
#   5. require byte-identical output and a fully-resumed stage report.
# Invoked as:
#   cmake -DSALIGN_CLI=<path> -DWORK_DIR=<dir> -P checkpoint_smoke.cmake
# The --stats reports of both runs are left in WORK_DIR (stage_stats_*.txt)
# so CI can upload them as an artifact.

if(NOT SALIGN_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "checkpoint_smoke: SALIGN_CLI and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(in_fasta "${WORK_DIR}/family.fasta")
set(fresh_fasta "${WORK_DIR}/fresh.fasta")
set(resumed_fasta "${WORK_DIR}/resumed.fasta")
set(ckpt_dir "${WORK_DIR}/checkpoint")

execute_process(
  COMMAND "${SALIGN_CLI}" generate --kind rose --out "${in_fasta}"
          --n 24 --length 60 --seed 11
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "salign generate failed (${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${SALIGN_CLI}" align --in "${in_fasta}" --out "${fresh_fasta}"
          --procs 4 --checkpoint-dir "${ckpt_dir}" --stats
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE stats_fresh)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fresh align failed (${rc}):\n${out}\n${stats_fresh}")
endif()
file(WRITE "${WORK_DIR}/stage_stats_fresh.txt" "${stats_fresh}")
if(NOT EXISTS "${ckpt_dir}/manifest.tsv")
  message(FATAL_ERROR "no manifest.tsv written in ${ckpt_dir}")
endif()

execute_process(
  COMMAND "${SALIGN_CLI}" stages --dir "${ckpt_dir}" --verify
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stages_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "salign stages --verify failed (${rc}):\n${stages_out}\n${err}")
endif()
if(NOT stages_out MATCHES "all artifacts verified")
  message(FATAL_ERROR "stages --verify did not verify:\n${stages_out}")
endif()

# Kill the "process state" (the output), keep the checkpoint, resume.
file(REMOVE "${fresh_fasta}")
execute_process(
  COMMAND "${SALIGN_CLI}" align --in "${in_fasta}" --out "${resumed_fasta}"
          --procs 4 --checkpoint-dir "${ckpt_dir}" --resume --stats
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE stats_resumed)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed align failed (${rc}):\n${out}\n${stats_resumed}")
endif()
file(WRITE "${WORK_DIR}/stage_stats_resumed.txt" "${stats_resumed}")
if(NOT stats_resumed MATCHES "([0-9]+) of ([0-9]+) stages resumed")
  message(FATAL_ERROR "no resume report in --stats:\n${stats_resumed}")
endif()
if(CMAKE_MATCH_1 EQUAL 0 OR NOT CMAKE_MATCH_1 EQUAL CMAKE_MATCH_2)
  message(FATAL_ERROR
    "expected every stage resumed, got ${CMAKE_MATCH_1}/${CMAKE_MATCH_2}:\n"
    "${stats_resumed}")
endif()

# The resumed run must be bit-identical to the fresh one. The fresh output
# was deleted above, so regenerate it from scratch (no checkpoint) and diff.
execute_process(
  COMMAND "${SALIGN_CLI}" align --in "${in_fasta}" --out "${fresh_fasta}"
          --procs 4
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "re-run align failed (${rc}):\n${out}\n${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${fresh_fasta}" "${resumed_fasta}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "resumed output differs from fresh output "
    "(${fresh_fasta} vs ${resumed_fasta})")
endif()

message(STATUS
  "checkpoint_smoke: checkpoint -> verify -> resume bit-identical "
  "(${CMAKE_MATCH_2} stages)")
