# CTest script: fault-matrix smoke through the salign CLI binary, driven
# entirely by the SALIGN_FAULTS environment variable (no rebuild, no test
# hooks — exactly what an operator would do to drill a failure).
#   1. generate a synthetic family and take a clean reference alignment,
#   2. kill a checkpointed run with an injected hard fault at a stage
#      boundary (checkpoint.write from the 2nd write on) — expect the
#      documented runtime exit code 1,
#   3. `salign stages --verify` the surviving checkpoint prefix,
#   4. --resume with faults disarmed and byte-diff against the reference,
#   5. same drill with a wall-clock deadline — expect exit code 4,
#   6. a malformed fault spec must be a usage error (exit 2).
# Invoked as:
#   cmake -DSALIGN_CLI=<path> -DWORK_DIR=<dir> -P fault_smoke.cmake
# Every run's stderr is kept in WORK_DIR (fault_*.log) for CI upload.

if(NOT SALIGN_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "fault_smoke: SALIGN_CLI and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(in_fasta "${WORK_DIR}/family.fasta")
set(ref_fasta "${WORK_DIR}/reference.fasta")

execute_process(
  COMMAND "${SALIGN_CLI}" generate --kind rose --out "${in_fasta}"
          --n 20 --length 50 --seed 23
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "salign generate failed (${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${SALIGN_CLI}" align --in "${in_fasta}" --out "${ref_fasta}"
          --procs 4
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference align failed (${rc}):\n${out}\n${err}")
endif()

# Drill one scenario: run `align` under `spec`, require `want_rc`, then
# stages --verify + disarmed --resume must reproduce the reference bytes.
function(drill name spec want_rc extra_flag)
  set(ckpt "${WORK_DIR}/ckpt_${name}")
  set(out_fasta "${WORK_DIR}/out_${name}.fasta")
  set(cmd "${SALIGN_CLI}" align --in "${in_fasta}" --out "${out_fasta}"
          --procs 4 --checkpoint-dir "${ckpt}")
  if(extra_flag)
    list(APPEND cmd ${extra_flag})
  endif()
  if(spec)
    set(launcher ${CMAKE_COMMAND} -E env "SALIGN_FAULTS=${spec}")
  else()
    set(launcher ${CMAKE_COMMAND} -E env --unset=SALIGN_FAULTS)
  endif()
  execute_process(
    COMMAND ${launcher} ${cmd}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  file(WRITE "${WORK_DIR}/fault_${name}.log" "exit: ${rc}\n${out}\n${err}")
  if(NOT rc EQUAL ${want_rc})
    message(FATAL_ERROR
      "${name}: expected exit ${want_rc}, got ${rc}:\n${err}")
  endif()

  execute_process(
    COMMAND "${SALIGN_CLI}" stages --dir "${ckpt}" --verify
    RESULT_VARIABLE rc OUTPUT_VARIABLE stages_out ERROR_VARIABLE err)
  file(APPEND "${WORK_DIR}/fault_${name}.log"
       "\n--- stages --verify (exit ${rc}) ---\n${stages_out}${err}")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${name}: interrupted checkpoint failed verification:\n"
      "${stages_out}\n${err}")
  endif()

  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env --unset=SALIGN_FAULTS
            "${SALIGN_CLI}" align --in "${in_fasta}" --out "${out_fasta}"
            --procs 4 --checkpoint-dir "${ckpt}" --resume
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  file(APPEND "${WORK_DIR}/fault_${name}.log"
       "\n--- resume (exit ${rc}) ---\n${out}${err}")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${name}: resume failed (${rc}):\n${err}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${ref_fasta}" "${out_fasta}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${name}: resumed output differs from the clean reference")
  endif()
  message(STATUS "fault_smoke: ${name} -> exit ${want_rc}, verify clean, "
                 "resume bit-identical")
endfunction()

# Hard injected fault at a stage boundary: the 2nd checkpoint write and every
# later one fails even after retries.
drill(write_fault "checkpoint.write:2:*!" 1 "")

# Wall-clock deadline: cooperative stop with its own exit code.
drill(deadline "" 4 "--deadline=0.000001")

# A malformed spec must be rejected before any work starts (usage error).
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "SALIGN_FAULTS=not-a-spec"
          "${SALIGN_CLI}" align --in "${in_fasta}" --procs 2
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
file(WRITE "${WORK_DIR}/fault_badspec.log" "exit: ${rc}\n${out}\n${err}")
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "malformed SALIGN_FAULTS: expected exit 2, got ${rc}")
endif()

message(STATUS "fault_smoke: all scenarios passed")
