# CTest script: the serve daemon's kill -9 crash drill, through the real
# CLI binary and a real process kill — the recovery path an operator hits.
#   1. generate one long-running family and two quick ones, plus clean
#      reference alignments for all three,
#   2. start `salign serve`, submit all three jobs (the long one first so
#      it is running while the others queue),
#   3. kill -9 the daemon mid-job — the journal must show the job torn
#      mid-`running`, and its checkpoint prefix must `stages --verify`,
#   4. restart the daemon on the same socket (stale-socket reclaim) and
#      journal — the replay must resume every job to completion,
#   5. byte-compare all three outputs against the fresh references,
#   6. `salign serve --stop` must drain and unlink the socket.
# Invoked as:
#   cmake -DSALIGN_CLI=<path> -DWORK_DIR=<dir> -P serve_smoke.cmake
# Every run's output is kept in WORK_DIR (serve_*.log) for CI upload.

if(NOT SALIGN_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "serve_smoke: SALIGN_CLI and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(sock "${WORK_DIR}/d.sock")
set(journal "${WORK_DIR}/journal")
set(pid_file "${WORK_DIR}/daemon.pid")

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

function(run_cli log_name want_rc)
  execute_process(
    COMMAND "${SALIGN_CLI}" ${ARGN}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  file(APPEND "${WORK_DIR}/serve_${log_name}.log"
       "$ salign ${ARGN}\nexit: ${rc}\n${out}${err}\n")
  if(NOT rc EQUAL ${want_rc})
    message(FATAL_ERROR
      "serve_smoke[${log_name}]: salign ${ARGN}\n"
      "expected exit ${want_rc}, got ${rc}:\n${out}\n${err}")
  endif()
  set(cli_out "${out}" PARENT_SCOPE)
endfunction()

# Polls `file` (up to timeout_s) until it contains `needle`.
function(wait_for_content file needle timeout_s what)
  math(EXPR tries "${timeout_s} * 5")
  foreach(i RANGE ${tries})
    if(EXISTS "${file}")
      file(READ "${file}" content)
      string(FIND "${content}" "${needle}" pos)
      if(NOT pos EQUAL -1)
        return()
      endif()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
  endforeach()
  message(FATAL_ERROR
    "serve_smoke: timed out (${timeout_s}s) waiting for ${what} "
    "(${needle} in ${file})")
endfunction()

function(start_daemon log_name)
  execute_process(
    COMMAND sh -c "'${SALIGN_CLI}' serve --socket '${sock}' \
--journal-dir '${journal}' --queue-limit 8 \
> '${WORK_DIR}/serve_${log_name}.log' 2>&1 & echo $! > '${pid_file}'"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "serve_smoke: could not launch the daemon (${rc})")
  endif()
  # The daemon logs this line right after the socket is bound.
  wait_for_content("${WORK_DIR}/serve_${log_name}.log" "serving on" 30
                   "daemon startup")
endfunction()

function(wait_daemon_dead timeout_s)
  file(READ "${pid_file}" pid)
  string(STRIP "${pid}" pid)
  math(EXPR tries "${timeout_s} * 5")
  foreach(i RANGE ${tries})
    execute_process(COMMAND sh -c "kill -0 ${pid} 2>/dev/null"
                    RESULT_VARIABLE alive)
    if(NOT alive EQUAL 0)
      return()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
  endforeach()
  message(FATAL_ERROR "serve_smoke: daemon pid ${pid} did not exit")
endfunction()

# ---------------------------------------------------------------------------
# 1. inputs and clean references
# ---------------------------------------------------------------------------

# Sized so the first job runs for seconds (release build) — long enough
# that the kill below lands mid-run, never so marginal that a fast machine
# finishes first. Sanitizer presets only widen the window.
run_cli(setup 0 generate --kind rose --n 500 --length 600 --relatedness 300
        --seed 7 --out "${WORK_DIR}/big.fasta")
run_cli(setup 0 generate --kind rose --n 30 --length 80 --seed 8
        --out "${WORK_DIR}/fam2.fasta")
run_cli(setup 0 generate --kind rose --n 24 --length 90 --seed 9
        --out "${WORK_DIR}/fam3.fasta")

run_cli(setup 0 align --in "${WORK_DIR}/big.fasta"
        --out "${WORK_DIR}/ref1.afa" --procs 8)
run_cli(setup 0 align --in "${WORK_DIR}/fam2.fasta"
        --out "${WORK_DIR}/ref2.afa" --procs 4)
run_cli(setup 0 align --in "${WORK_DIR}/fam3.fasta"
        --out "${WORK_DIR}/ref3.afa" --procs 4)

# ---------------------------------------------------------------------------
# 2. serve + submit three jobs
# ---------------------------------------------------------------------------

start_daemon(run1)

run_cli(submit 0 submit --socket "${sock}" --in "${WORK_DIR}/big.fasta"
        --out "${WORK_DIR}/job1.afa" --procs 8)
run_cli(submit 0 submit --socket "${sock}" --in "${WORK_DIR}/fam2.fasta"
        --out "${WORK_DIR}/job2.afa" --procs 4)
run_cli(submit 0 submit --socket "${sock}" --in "${WORK_DIR}/fam3.fasta"
        --out "${WORK_DIR}/job3.afa" --procs 4)
run_cli(submit 0 jobs --socket "${sock}")

# ---------------------------------------------------------------------------
# 3. kill -9 mid-job
# ---------------------------------------------------------------------------

wait_for_content("${journal}/jobs/j000001.json" "\"state\":\"running\"" 60
                 "job 1 to start")
# Give it a beat to get into the pipeline, then kill without mercy.
execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.3)
execute_process(COMMAND sh -c "kill -9 $(cat '${pid_file}')"
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve_smoke: kill -9 failed (${rc})")
endif()
wait_daemon_dead(30)

# The journal must be torn exactly mid-`running` — the durable ack means
# the interrupted job and both queued jobs survived the kill.
file(READ "${journal}/jobs/j000001.json" job1)
string(FIND "${job1}" "\"state\":\"running\"" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR
    "serve_smoke: expected job 1 journaled 'running' at the kill, got:\n"
    "${job1}")
endif()
if(NOT EXISTS "${sock}")
  message(FATAL_ERROR "serve_smoke: kill -9 should leave the stale socket")
endif()

# Whatever checkpoint prefix the kill left must verify clean.
if(EXISTS "${journal}/ckpt/j000001/manifest.tsv")
  run_cli(verify 0 stages --dir "${journal}/ckpt/j000001" --verify)
endif()

# ---------------------------------------------------------------------------
# 4. restart: replay resumes all three jobs
# ---------------------------------------------------------------------------

start_daemon(run2)
wait_for_content("${WORK_DIR}/serve_run2.log" "re-queued for resume" 10
                 "journal replay of the interrupted job")

wait_for_content("${journal}/jobs/j000001.json" "\"state\":\"done\"" 240
                 "job 1 to resume and finish")
wait_for_content("${journal}/jobs/j000002.json" "\"state\":\"done\"" 120
                 "job 2 to finish")
wait_for_content("${journal}/jobs/j000003.json" "\"state\":\"done\"" 120
                 "job 3 to finish")
run_cli(jobs_after 0 jobs --socket "${sock}")

# ---------------------------------------------------------------------------
# 5. byte-compare against the fresh references
# ---------------------------------------------------------------------------

foreach(i RANGE 1 3)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/ref${i}.afa" "${WORK_DIR}/job${i}.afa"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "serve_smoke: job ${i} output differs from a fresh run — the resume "
      "was not bit-identical")
  endif()
endforeach()

# ---------------------------------------------------------------------------
# 6. graceful stop
# ---------------------------------------------------------------------------

run_cli(stop 0 serve --socket "${sock}" --stop)
wait_daemon_dead(30)
if(EXISTS "${sock}")
  message(FATAL_ERROR "serve_smoke: clean shutdown must unlink the socket")
endif()

message(STATUS "serve_smoke: kill -9 drill passed — journal replayed, "
               "3/3 jobs resumed bit-identical, clean stop")
