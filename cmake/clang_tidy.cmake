# Runs clang-tidy over every first-party translation unit using the
# compile_commands.json exported at configure time. Checks and the
# warnings-as-errors policy live in .clang-tidy at the repo root; this
# script only enumerates files and fails the build/test on any diagnostic.
#
# Inputs: -DCLANG_TIDY=<binary> -DBUILD_DIR=<build tree> -DSOURCE_DIR=<repo>
# Usage:  cmake --build <dir> --target lint    (or ctest -R lint_clang_tidy)

if(NOT EXISTS "${BUILD_DIR}/compile_commands.json")
  message(FATAL_ERROR "no compile_commands.json in ${BUILD_DIR}; configure "
                      "first (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default)")
endif()

file(GLOB_RECURSE TIDY_SOURCES
  "${SOURCE_DIR}/src/*.cpp"
  "${SOURCE_DIR}/tools/*.cpp")
list(SORT TIDY_SOURCES)
list(LENGTH TIDY_SOURCES NUM_SOURCES)
message(STATUS "clang-tidy (${CLANG_TIDY}) over ${NUM_SOURCES} files")

# Batch the files into a handful of invocations: one process per file pays
# ~1s of clang-tidy startup each, one process for everything serializes a
# multi-core machine. 8 batches keeps both costs negligible.
set(NUM_BATCHES 8)
set(FAILED_FILES "")
math(EXPR LAST_BATCH "${NUM_BATCHES} - 1")
foreach(batch RANGE ${LAST_BATCH})
  set(BATCH_FILES "")
  set(idx 0)
  foreach(src IN LISTS TIDY_SOURCES)
    math(EXPR mod "${idx} % ${NUM_BATCHES}")
    if(mod EQUAL batch)
      list(APPEND BATCH_FILES "${src}")
    endif()
    math(EXPR idx "${idx} + 1")
  endforeach()
  if(BATCH_FILES STREQUAL "")
    continue()
  endif()
  execute_process(
    COMMAND "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet ${BATCH_FILES}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(STATUS "${out}")
    message(STATUS "${err}")
    list(APPEND FAILED_FILES "batch ${batch}")
  endif()
endforeach()

if(FAILED_FILES)
  message(FATAL_ERROR "clang-tidy reported diagnostics (see above)")
endif()
message(STATUS "clang-tidy clean")
