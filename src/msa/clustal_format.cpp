#include "msa/clustal_format.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace salign::msa {

namespace {

// The ClustalX conservation groups (Thompson et al.; shipped unchanged in
// every ClustalX release). A column scores ':' when all its residues fall
// in one strong group, '.' when in one weak group.
constexpr std::array<std::string_view, 9> kStrongGroups{
    "STA", "NEQK", "NHQK", "NDEQ", "QHRK", "MILV", "MILF", "HY", "FYW"};
constexpr std::array<std::string_view, 11> kWeakGroups{
    "CSA",    "ATV",    "SAG",    "STNK", "STPA", "SGND",
    "SNDEQK", "NDEQHK", "NEQHRK", "FVLIM", "HFY"};

template <std::size_t N>
bool column_in_one_group(const std::array<std::string_view, N>& groups,
                         std::string_view residues) {
  return std::any_of(groups.begin(), groups.end(), [&](std::string_view g) {
    return std::all_of(residues.begin(), residues.end(), [&](char r) {
      return g.find(r) != std::string_view::npos;
    });
  });
}

}  // namespace

std::string conservation_symbols(const Alignment& aln) {
  const bio::Alphabet& alpha = aln.alphabet();
  std::string symbols(aln.num_cols(), ' ');
  std::string residues;
  for (std::size_t c = 0; c < aln.num_cols(); ++c) {
    residues.clear();
    bool has_gap = false;
    for (std::size_t r = 0; r < aln.num_rows(); ++r) {
      if (aln.is_gap(r, c)) {
        has_gap = true;
        break;
      }
      residues.push_back(alpha.decode(aln.cell(r, c)));
    }
    if (has_gap || residues.empty()) continue;
    if (std::all_of(residues.begin(), residues.end(),
                    [&](char ch) { return ch == residues.front(); })) {
      symbols[c] = '*';
    } else if (column_in_one_group(kStrongGroups, residues)) {
      symbols[c] = ':';
    } else if (column_in_one_group(kWeakGroups, residues)) {
      symbols[c] = '.';
    }
  }
  return symbols;
}

void write_clustal(std::ostream& out, const Alignment& aln,
                   const ClustalWriteOptions& opts) {
  if (opts.block_width == 0)
    throw std::invalid_argument("write_clustal: block_width must be > 0");
  out << "CLUSTAL multiple sequence alignment (salign)\n\n";
  if (aln.empty()) return;

  std::size_t name_width = 0;
  for (const auto& row : aln.rows())
    name_width = std::max(name_width, row.id.size());

  std::vector<std::string> texts;
  texts.reserve(aln.num_rows());
  for (std::size_t r = 0; r < aln.num_rows(); ++r)
    texts.push_back(aln.row_text(r));
  const std::string symbols =
      opts.conservation_line ? conservation_symbols(aln) : std::string();

  for (std::size_t c0 = 0; c0 < aln.num_cols(); c0 += opts.block_width) {
    const std::size_t len = std::min(opts.block_width, aln.num_cols() - c0);
    for (std::size_t r = 0; r < aln.num_rows(); ++r)
      out << aln.row(r).id
          << std::string(name_width - aln.row(r).id.size() + 3, ' ')
          << texts[r].substr(c0, len) << "\n";
    if (opts.conservation_line)
      out << std::string(name_width + 3, ' ') << symbols.substr(c0, len)
          << "\n";
    out << "\n";
  }
}

Alignment read_clustal(std::istream& in, bio::AlphabetKind kind) {
  std::string line;
  if (!std::getline(in, line) || line.rfind("CLUSTAL", 0) != 0)
    throw std::runtime_error(
        "read_clustal: missing CLUSTAL header line");

  std::vector<std::pair<std::string, std::string>> rows;
  std::unordered_map<std::string, std::size_t> index;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Conservation footers are indented past the name column.
    if (std::isspace(static_cast<unsigned char>(line.front()))) continue;
    std::istringstream fields(line);
    std::string name;
    std::string fragment;
    fields >> name >> fragment;
    if (fragment.empty())
      throw std::runtime_error("read_clustal: malformed row: " + line);
    // Optional trailing cumulative residue count (ClustalW's -OUTPUT flag).
    std::string tail;
    if (fields >> tail &&
        !std::all_of(tail.begin(), tail.end(), [](char ch) {
          return std::isdigit(static_cast<unsigned char>(ch));
        }))
      throw std::runtime_error("read_clustal: malformed row: " + line);
    const auto [it, inserted] = index.emplace(name, rows.size());
    if (inserted) rows.emplace_back(name, "");
    rows[it->second].second += fragment;
  }
  return Alignment::from_texts(rows, kind);
}

}  // namespace salign::msa
