#pragma once

#include <string>

#include "bio/sequence.hpp"
#include "msa/alignment.hpp"

namespace salign::msa {

/// Options for ancestor/consensus extraction.
struct ConsensusOptions {
  /// Columns whose gap fraction exceeds this threshold are dropped from the
  /// consensus (they represent insertions private to few sequences and
  /// should not constrain other buckets).
  double max_gap_fraction = 0.5;
};

/// Extracts the majority-residue consensus of an alignment — the "local
/// ancestor" of the Sample-Align-D pipeline (the paper's step "Broadcast the
/// Local Ancestor to the root processor"). Treating the consensus of a
/// locally aligned bucket as an estimate of the subset's ancestral sequence
/// follows the root-profile idea of MUSCLE [12] / PSI-BLAST [19] that the
/// paper invokes.
///
/// Ties are broken toward the lower residue code (deterministic).
[[nodiscard]] bio::Sequence consensus_sequence(
    const Alignment& aln, const std::string& id,
    const ConsensusOptions& opts = {});

}  // namespace salign::msa
