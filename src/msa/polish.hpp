#pragma once

#include <cstddef>
#include <vector>

#include "bio/substitution_matrix.hpp"
#include "msa/alignment.hpp"

namespace salign::msa {

/// Options of the divergent-row polish pass.
struct PolishOptions {
  /// Fraction of rows (the lowest-scoring ones) considered divergent and
  /// re-aligned each pass.
  double fraction = 0.15;
  /// Hard cap on re-aligned rows per pass; 0 = no cap. Large glued
  /// alignments set this to bound the polish cost at O(max_rows · L²).
  std::size_t max_rows = 0;
  /// Sweeps over the divergent set.
  int passes = 1;
  /// Gap penalties of the row-vs-profile re-alignment.
  bio::GapPenalties gaps;
  /// Minimum PSP objective gain to accept a re-alignment (guards churn and
  /// float noise).
  float min_gain = 1e-4F;
};

/// Per-row fit diagnostic: the occupancy-weighted mean PSP score of the
/// row's residues against the profile of the full alignment, normalized per
/// residue. Low values flag rows the alignment places poorly — the
/// "most divergent families" the paper's §5 says need extra refinement.
[[nodiscard]] std::vector<double> row_profile_scores(
    const Alignment& aln, const bio::SubstitutionMatrix& matrix);

/// Post-alignment refinement for divergent rows (the paper's future-work
/// heuristic, §5): each pass ranks rows by row_profile_scores, takes the
/// worst `fraction` (capped by `max_rows`), and re-aligns each such row
/// against the profile of the remaining rows; a re-alignment is kept only
/// when the PSP objective of the (row vs rest) split improves by at least
/// `min_gain`. Row order and degapped row contents are preserved.
///
/// Returns the number of accepted re-alignments across all passes.
std::size_t polish_divergent_rows(Alignment& aln,
                                  const bio::SubstitutionMatrix& matrix,
                                  const PolishOptions& opts = {});

}  // namespace salign::msa
