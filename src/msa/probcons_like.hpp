#pragma once

#include <cstdint>

#include "bio/substitution_matrix.hpp"
#include "msa/msa_algorithm.hpp"
#include "msa/pairhmm.hpp"

namespace salign::msa {

/// Configuration of the ProbCons-style aligner.
struct ProbConsOptions {
  /// Posterior storage is O(N² L); inputs larger than this are rejected.
  /// The PREFAB-style sets (20-30 sequences) fit comfortably.
  std::size_t max_sequences = 64;
  /// Rounds of the probabilistic consistency transform
  /// P'(x,y) = (1/N) Σ_z P(x,z)·P(z,y). ProbCons defaults to 2.
  int consistency_reps = 2;
  /// Random-bipartition iterative-refinement passes over the final
  /// alignment (ProbCons stage 4); each pass re-aligns a random row split
  /// under the posterior objective and accepts unconditionally.
  int refine_passes = 2;
  /// Seed of the deterministic bipartition choice.
  std::uint64_t refine_seed = 11;
  /// Pair-HMM parameters (transitions, emission temperature, sparsity).
  PairHmmParams hmm{};
  /// Worker threads of the stage-1 posterior/distance pass and of the
  /// stage-4 progressive MEA merge schedule (1 = serial). Each pair's
  /// posterior is independent and each merge is a pure function of its
  /// children, so any value produces bit-identical alignments.
  unsigned threads = 1;
};

/// "MiniProbCons": a from-scratch reimplementation of the ProbCons pipeline
/// (Do, Mahabhashyam, Brudno & Batzoglou, Genome Res. 2005), the
/// probabilistic-consistency family the paper's introduction cites among
/// the dominant MSA heuristics:
///
///   1. pair-HMM posterior match probabilities for every pair
///      (forward-backward, sparsified);
///   2. expected-accuracy distances -> UPGMA guide tree;
///   3. probabilistic consistency transform (sparse matrix products),
///      `consistency_reps` rounds;
///   4. progressive alignment maximizing the sum of matched posteriors
///      (gap moves are free — the maximum-expected-accuracy objective);
///   5. random-bipartition iterative refinement under the same objective.
///
/// This is an extension beyond the paper's Table 2 set: it exercises the
/// Sample-Align-D pipeline with a consistency-based local aligner and
/// provides the strongest sequential quality baseline in the library.
class ProbConsAligner final : public MsaAlgorithm {
 public:
  explicit ProbConsAligner(ProbConsOptions options = {},
                           const bio::SubstitutionMatrix& matrix =
                               bio::SubstitutionMatrix::blosum62());

  [[nodiscard]] Alignment align(
      std::span<const bio::Sequence> seqs) const override;

  [[nodiscard]] std::string name() const override { return "MiniProbCons"; }

  [[nodiscard]] const ProbConsOptions& options() const { return options_; }

 private:
  ProbConsOptions options_;
  const bio::SubstitutionMatrix* matrix_;
};

}  // namespace salign::msa
