#include "msa/tree_schedule.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "util/budget.hpp"
#include "util/thread_pool.hpp"

namespace salign::msa {

void schedule_tree(const GuideTree& tree, unsigned threads,
                   const std::function<void(int)>& node_fn) {
  const std::size_t num_nodes = tree.num_nodes();
  if (num_nodes == 0) return;
  if (threads <= 1) {
    for (int id : tree.postorder()) {
      util::poll_budget("tree schedule node");
      node_fn(id);
    }
    return;
  }

  // Dependency-counting work queue. Leaves seed the ready queue in
  // postorder order so a single consumer reproduces the serial schedule;
  // each completed child decrements its parent's count and the second one
  // releases the parent.
  std::mutex mu;
  std::condition_variable ready_cv;
  std::deque<int> ready;
  std::vector<int> pending(num_nodes, 0);
  for (std::size_t i = 0; i < num_nodes; ++i)
    if (!tree.is_leaf(i)) pending[i] = 2;
  for (int id : tree.postorder())
    if (tree.is_leaf(static_cast<std::size_t>(id))) ready.push_back(id);

  std::size_t remaining = num_nodes;  // not yet completed
  std::exception_ptr error;
  bool abort = false;

  util::ThreadPool::shared().run(threads - 1, [&] {
    std::unique_lock lock(mu);
    for (;;) {
      ready_cv.wait(lock, [&] {
        return abort || remaining == 0 || !ready.empty();
      });
      if (abort || remaining == 0) return;
      const int id = ready.front();
      ready.pop_front();
      lock.unlock();

      try {
        // Node boundary doubles as the cancellation boundary: on deadline
        // or cancel no new merge starts; running merges finish, the drain
        // below completes, and the budget exception is rethrown.
        util::poll_budget("tree schedule node");
        node_fn(id);
      } catch (...) {
        lock.lock();
        if (!error) error = std::current_exception();
        abort = true;
        ready_cv.notify_all();
        return;
      }

      lock.lock();
      --remaining;
      const int parent = tree.node(static_cast<std::size_t>(id)).parent;
      if (parent >= 0 && --pending[static_cast<std::size_t>(parent)] == 0)
        ready.push_back(parent);
      // Wake peers: a new task may be ready, or the schedule may be done.
      if (remaining == 0 || !ready.empty()) ready_cv.notify_all();
    }
  });

  if (error) std::rethrow_exception(error);
}

}  // namespace salign::msa
