#pragma once

#include <span>
#include <vector>

#include "bio/substitution_matrix.hpp"
#include "msa/alignment.hpp"
#include "msa/guide_tree.hpp"

namespace salign::msa {

/// Options for tree-bipartition iterative refinement (MUSCLE stage 3 /
/// MAFFT's "-i" step).
struct RefineOptions {
  /// Full sweeps over all internal edges.
  int passes = 1;
  bio::GapPenalties gaps;
  /// Minimum score improvement to accept a re-alignment (guards float
  /// noise / churn).
  float min_gain = 1e-4F;
  /// Gate acceptance on the true cross-group sum-of-pairs delta in
  /// addition to the PSP objective (the profile DP still *proposes* the
  /// re-alignment; this check rejects PSP wins that lose SP — MUSCLE's own
  /// refinement accepts on SP). Costs O(|A|·|B|·cols) per candidate, so
  /// very large alignments may prefer to disable it.
  bool sp_gate = true;
};

/// Refines `aln` by repeatedly deleting a guide-tree edge, splitting the
/// rows into the two leaf sets, degapping each side and re-aligning the two
/// profiles; the re-alignment is kept only when its PSP objective improves
/// on the incumbent path's score. Row order of `aln` is preserved.
///
/// `tree` must be the guide tree over the same sequences; `row_of_leaf[l]`
/// maps the tree's leaf index `l` to the alignment row carrying that
/// sequence. `weights` are per-row sequence weights (empty = uniform).
/// Returns the number of accepted re-alignments.
std::size_t refine(Alignment& aln, const GuideTree& tree,
                   std::span<const std::size_t> row_of_leaf,
                   const bio::SubstitutionMatrix& matrix,
                   const RefineOptions& opts,
                   std::span<const double> weights = {});

}  // namespace salign::msa
