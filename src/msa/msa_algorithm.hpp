#pragma once

#include <memory>
#include <span>
#include <string>

#include "bio/sequence.hpp"
#include "msa/alignment.hpp"
#include "util/stable_hash.hpp"

namespace salign::msa {

/// Abstract sequential multiple-sequence aligner.
///
/// The Sample-Align-D pipeline is parameterized over this interface — the
/// paper's step "Align sequences in each processor using any sequential
/// multiple alignment system". Implementations in this library:
/// MuscleAligner (the paper's choice), ClustalWAligner, TCoffeeAligner and
/// MafftAligner (Table 2 comparators).
///
/// Contract: align() returns an Alignment whose rows degap to exactly the
/// input sequences, in input order, and must be deterministic.
class MsaAlgorithm {
 public:
  virtual ~MsaAlgorithm() = default;

  [[nodiscard]] virtual Alignment align(
      std::span<const bio::Sequence> seqs) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Folds everything that determines this aligner's output for a given
  /// input — algorithm, parameters, scoring matrix — into `h`. Checkpoint
  /// and cache keys derive from it, so two configurations that could produce
  /// different alignments must hash differently. Worker-thread counts never
  /// change output and must never be folded in. The default covers aligners
  /// whose name() already encodes their full configuration; aligners with
  /// free parameters (MuscleAligner) override it.
  virtual void hash_config(util::StableHash& h) const { h.str(name()); }
};

/// The default sequential aligner used by the pipeline (MiniMuscle with the
/// paper's configuration: k-mer distances, UPGMA, PSP progressive pass,
/// no refinement — matching the MUSCLE timings the paper quotes, which are
/// "without refinement"). `threads` is the worker count of its parallel
/// passes (distance matrices, progressive merge schedule); any value
/// produces bit-identical alignments.
[[nodiscard]] std::shared_ptr<const MsaAlgorithm> make_default_aligner(
    unsigned threads = 1);

}  // namespace salign::msa
