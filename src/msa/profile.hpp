#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/substitution_matrix.hpp"
#include "msa/alignment.hpp"
#include "util/matrix.hpp"

namespace salign::msa {

/// Column-frequency profile of an alignment, the operand of profile-profile
/// alignment (MUSCLE's PSP scoring function; Edgar BMC Bioinf. 2004).
///
/// For column c, `freq(c, a)` is the (sequence-weight normalized) fraction of
/// rows carrying residue `a`; frequencies over residues sum to the column
/// occupancy (1 - gap fraction), so gappy columns contribute proportionally
/// less match score — the standard PSP behaviour.
class Profile {
 public:
  /// `weights` are per-row sequence weights (empty = uniform). They are
  /// normalized internally so total weight is 1 per column.
  Profile(const Alignment& aln, const bio::SubstitutionMatrix& matrix,
          std::span<const double> weights = {});

  [[nodiscard]] std::size_t num_cols() const { return cols_; }
  [[nodiscard]] int alphabet_size() const { return alpha_size_; }
  [[nodiscard]] const bio::SubstitutionMatrix& matrix() const {
    return *matrix_;
  }

  [[nodiscard]] float freq(std::size_t col, std::uint8_t residue) const {
    return freqs_(col, residue);
  }
  /// 1 - gap fraction of the column (weighted).
  [[nodiscard]] float occupancy(std::size_t col) const { return occ_[col]; }

  /// PSP match score between column `ca` of this profile and column `cb` of
  /// `other`: sum_{a,b} f_a(ca) g_b(cb) S(a, b).
  [[nodiscard]] float psp(const Profile& other, std::size_t ca,
                          std::size_t cb) const;

 private:
  const bio::SubstitutionMatrix* matrix_;
  std::size_t cols_ = 0;
  int alpha_size_ = 0;
  util::Matrix<float> freqs_;  // cols x alphabet_size
  std::vector<float> occ_;
};

}  // namespace salign::msa
