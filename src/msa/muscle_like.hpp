#pragma once

#include "bio/substitution_matrix.hpp"
#include "kmer/kmer_profile.hpp"
#include "msa/msa_algorithm.hpp"
#include "msa/phase_stats.hpp"

namespace salign::msa {

/// Configuration of the MUSCLE-style aligner.
struct MuscleOptions {
  /// Stage-1 guide-tree distance source.
  enum class GuideTree : std::uint8_t {
    /// k-mer profile distances (MUSCLE's choice; the historical default).
    kKmer,
    /// Score-only global-alignment distances through the striped integer
    /// engine (align::score_distance_matrix) — the "fast guide-tree mode":
    /// O(N^2 L^2) work but no tracebacks and 3-4x kernel throughput, giving
    /// alignment-quality trees on inputs where k-mer distances wash out.
    /// Changes guide trees (and thus alignments); thread counts still
    /// never do.
    kScore,
  };
  GuideTree stage1_distance = GuideTree::kKmer;
  /// k-mer parameters of the stage-1 distance estimate (kKmer mode).
  kmer::KmerParams kmer{};
  /// Second progressive iteration with Kimura distances recomputed from the
  /// stage-1 alignment (MUSCLE's "improved progressive" stage 2).
  bool reestimate_tree = true;
  /// Tree-bipartition refinement sweeps (MUSCLE stage 3); 0 disables.
  /// The paper's large-N timings quote MUSCLE "without refinement", so the
  /// pipeline default keeps this at 0 and the quality benches turn it on.
  int refine_passes = 0;
  /// Worker threads (1 = serial) of every parallel pass: the stage-1 score
  /// distances (kScore mode), the stage-2 induced-Kimura distance matrix,
  /// and both progressive merge schedules. Any value produces bit-identical
  /// alignments.
  unsigned threads = 1;
  /// Serve/store per-phase artifacts (distance matrices, guide trees, both
  /// progressive alignments) through util::ArtifactCache::process_cache(),
  /// keyed by the content hash of (options, matrix, input sequences). Off by
  /// default: repeated-alignment workloads opt in (`salign align --cache`).
  /// Hits decode through the same codecs a cold run's artifacts were encoded
  /// with, so cached and fresh runs are bit-identical.
  bool use_artifact_cache = false;
  /// Optional per-phase wall-time / cache-hit recorder (not owned; must
  /// outlive the aligner). Never affects output.
  AlignerPhaseStats* phase_stats = nullptr;
  /// Full-traceback cell budget of every profile-profile merge (see
  /// ProfileAlignOptions::max_trace_cells); 0 = the engine default. The
  /// memory-pressure degradation lever: `--max-memory` shrinks this so big
  /// merges switch to checkpointed traceback earlier. Both traceback paths
  /// produce identical alignments, so — like threads — this is excluded
  /// from hash_config and never invalidates checkpoints or cache entries.
  std::size_t max_trace_cells = 0;
};

/// "MiniMuscle": a from-scratch reimplementation of the MUSCLE pipeline
/// (Edgar, NAR 2004 & BMC Bioinf. 2004) — the sequential MSA system the
/// paper runs inside every processor and benchmarks against:
///
///   stage 1: k-mer distance matrix (compressed alphabet) -> UPGMA ->
///            progressive PSP alignment;
///   stage 2: Kimura distances from the induced pairwise identities ->
///            rebuilt UPGMA tree -> re-aligned progressively;
///   stage 3: optional tree-bipartition refinement.
///
/// Asymptotics match the paper's cost table: O(N^2) distance terms plus
/// O(N L^2) profile alignments per progressive pass.
class MuscleAligner final : public MsaAlgorithm {
 public:
  explicit MuscleAligner(MuscleOptions options = {},
                         const bio::SubstitutionMatrix& matrix =
                             bio::SubstitutionMatrix::blosum62());

  [[nodiscard]] Alignment align(
      std::span<const bio::Sequence> seqs) const override;

  [[nodiscard]] std::string name() const override;

  /// Full output-determining identity: algorithm tag, stage-1 mode, k-mer
  /// params, stage-2/3 switches and the scoring matrix. threads,
  /// use_artifact_cache and phase_stats are excluded — they never change
  /// output.
  void hash_config(util::StableHash& h) const override;

  [[nodiscard]] const MuscleOptions& options() const { return options_; }

 private:
  MuscleOptions options_;
  const bio::SubstitutionMatrix* matrix_;
};

}  // namespace salign::msa
