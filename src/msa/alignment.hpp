#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "bio/sequence.hpp"

namespace salign::msa {

/// One row of a multiple alignment: a sequence id plus gapped residue codes.
struct AlignedRow {
  std::string id;
  std::vector<std::uint8_t> cells;  ///< alphabet codes or Alignment::kGap
};

/// A multiple sequence alignment: equal-length gapped rows over one
/// alphabet. This is the output type of every aligner in the library and
/// the unit that flows through the Sample-Align-D pipeline (local
/// alignments, ancestor alignments, and the final glued result are all
/// Alignment values).
class Alignment {
 public:
  static constexpr std::uint8_t kGap = 0xFF;

  Alignment() : kind_(bio::AlphabetKind::AminoAcid) {}
  Alignment(std::vector<AlignedRow> rows, bio::AlphabetKind kind);

  /// Single-sequence alignment (a leaf in progressive alignment).
  static Alignment from_sequence(const bio::Sequence& seq);

  /// Builds from (id, gapped text) pairs; '-' and '.' are gaps. Test helper
  /// and aligned-FASTA reader backend.
  static Alignment from_texts(
      std::span<const std::pair<std::string, std::string>> rows,
      bio::AlphabetKind kind = bio::AlphabetKind::AminoAcid);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const {
    return rows_.empty() ? 0 : rows_.front().cells.size();
  }
  [[nodiscard]] bool empty() const { return rows_.empty(); }
  [[nodiscard]] bio::AlphabetKind alphabet_kind() const { return kind_; }
  [[nodiscard]] const bio::Alphabet& alphabet() const {
    return bio::Alphabet::get(kind_);
  }

  [[nodiscard]] const AlignedRow& row(std::size_t r) const { return rows_[r]; }
  [[nodiscard]] std::span<const AlignedRow> rows() const { return rows_; }
  [[nodiscard]] std::uint8_t cell(std::size_t r, std::size_t c) const {
    return rows_[r].cells[c];
  }
  [[nodiscard]] bool is_gap(std::size_t r, std::size_t c) const {
    return cell(r, c) == kGap;
  }

  /// Gapped text of a row ('-' for gaps).
  [[nodiscard]] std::string row_text(std::size_t r) const;

  /// The ungapped sequence of a row (id preserved).
  [[nodiscard]] bio::Sequence degapped(std::size_t r) const;

  /// Number of non-gap cells in a row.
  [[nodiscard]] std::size_t residue_count(std::size_t r) const;

  /// Sub-alignment of the given rows (columns untouched).
  [[nodiscard]] Alignment subset(std::span<const std::size_t> row_indices) const;

  /// Removes columns that are gaps in every row; returns how many were cut.
  std::size_t strip_all_gap_columns();

  /// Inserts gap columns *before* the given current-coordinate positions
  /// (position == num_cols() appends). Positions may repeat for multi-column
  /// inserts and must be sorted ascending.
  void insert_gap_columns(std::span<const std::size_t> positions);

  /// Appends the rows of `other` (same alphabet, same column count).
  void append_rows(const Alignment& other);

  /// Throws std::logic_error if rows have unequal lengths, codes are out of
  /// range, or ids are empty. All mutating APIs keep these invariants; this
  /// is the externally-checkable contract used by the tests.
  void validate() const;

 private:
  std::vector<AlignedRow> rows_;
  bio::AlphabetKind kind_;
};

/// Reads aligned FASTA ('-'/'.' are gaps); all records must have equal
/// lengths.
[[nodiscard]] Alignment read_aligned_fasta(
    std::istream& in, bio::AlphabetKind kind = bio::AlphabetKind::AminoAcid);

/// Writes aligned FASTA wrapping at `width`.
void write_aligned_fasta(std::ostream& out, const Alignment& aln,
                         std::size_t width = 60);

}  // namespace salign::msa
