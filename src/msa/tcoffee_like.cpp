#include "msa/tcoffee_like.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "align/distance.hpp"
#include "msa/guide_tree.hpp"
#include "msa/profile.hpp"
#include "msa/profile_align.hpp"
#include "msa/tree_schedule.hpp"
#include "util/matrix.hpp"

namespace salign::msa {

namespace {

/// One library edge: residue x of sequence s is supported as homologous to
/// residue `pos` of sequence `seq` with weight `w`.
struct LibEdge {
  std::uint16_t seq;
  std::uint16_t pos;
  float w;
};

/// Adjacency form of the (extended) library: edges[s][x] lists support for
/// residue x of sequence s. Symmetric (each link stored on both endpoints).
using Library = std::vector<std::vector<std::vector<LibEdge>>>;

void add_edge(Library& lib, std::size_t s, std::size_t x, std::size_t t,
              std::size_t y, float w) {
  auto& vec = lib[s][x];
  for (auto& e : vec) {
    if (e.seq == t && e.pos == y) {
      e.w += w;
      return;
    }
  }
  vec.push_back({static_cast<std::uint16_t>(t),
                 static_cast<std::uint16_t>(y), w});
}

void add_pair_alignment(Library& lib, std::size_t i, std::size_t j,
                        std::span<const std::uint8_t> a,
                        std::span<const std::uint8_t> b,
                        std::span<const align::EditOp> ops,
                        std::size_t a_begin, std::size_t b_begin) {
  const double identity = align::fractional_identity(
      a.subspan(a_begin), b.subspan(b_begin), ops);
  const auto w = static_cast<float>(100.0 * identity);
  if (w <= 0.0F) return;
  std::size_t x = a_begin;
  std::size_t y = b_begin;
  for (align::EditOp op : ops) {
    switch (op) {
      case align::EditOp::Match:
        add_edge(lib, i, x, j, y, w);
        add_edge(lib, j, y, i, x, w);
        ++x;
        ++y;
        break;
      case align::EditOp::GapInA: ++y; break;
      case align::EditOp::GapInB: ++x; break;
    }
  }
}

/// Triplet extension: for every two-edge path s/x -> k/z -> t/y (s != t),
/// support (s/x, t/y) with min of the two edge weights.
Library extend_library(const Library& primary) {
  const std::size_t n = primary.size();
  Library ext = primary;  // extension adds to the primary weights
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t x = 0; x < primary[s].size(); ++x) {
      const auto& via = primary[s][x];
      for (std::size_t e1 = 0; e1 < via.size(); ++e1) {
        const LibEdge& k = via[e1];
        const auto& onward = primary[k.seq][k.pos];
        for (const LibEdge& t : onward) {
          if (t.seq == s) continue;
          add_edge(ext, s, x, t.seq, t.pos, std::min(k.w, t.w));
        }
      }
    }
  }
  return ext;
}

/// Per-row maps of a sub-alignment: column -> residue ordinal and
/// residue ordinal -> column.
struct RowIndex {
  std::vector<std::int32_t> col_of_residue;  // ordinal -> column
};

std::vector<RowIndex> index_rows(const Alignment& aln) {
  std::vector<RowIndex> idx(aln.num_rows());
  for (std::size_t r = 0; r < aln.num_rows(); ++r) {
    idx[r].col_of_residue.reserve(aln.num_cols());
    for (std::size_t c = 0; c < aln.num_cols(); ++c)
      if (!aln.is_gap(r, c))
        idx[r].col_of_residue.push_back(static_cast<std::int32_t>(c));
  }
  return idx;
}

}  // namespace

TCoffeeAligner::TCoffeeAligner(TCoffeeOptions options,
                               const bio::SubstitutionMatrix& matrix)
    : options_(options), matrix_(&matrix) {}

Alignment TCoffeeAligner::align(std::span<const bio::Sequence> seqs) const {
  if (seqs.empty()) throw std::invalid_argument("TCoffeeAligner: no sequences");
  if (seqs.size() == 1) return Alignment::from_sequence(seqs[0]);
  if (seqs.size() > options_.max_sequences)
    throw std::invalid_argument(
        "TCoffeeAligner: input exceeds max_sequences (consistency library "
        "is quadratic; raise TCoffeeOptions::max_sequences explicitly)");
  if (seqs.size() > 0xFFFF || [&] {
        for (const auto& s : seqs)
          if (s.size() > 0xFFFF) return true;
        return false;
      }())
    throw std::invalid_argument("TCoffeeAligner: index overflow");

  const std::size_t n = seqs.size();
  const bio::GapPenalties gaps = matrix_->default_gaps();

  // 1. Primary library + pairwise distances for the guide tree, through
  // the batched all-pairs driver: pair alignments compute in parallel, the
  // library is assembled by the serial visitor in deterministic pair order
  // (identical to the historical nested loop).
  Library primary(n);
  for (std::size_t i = 0; i < n; ++i) primary[i].resize(seqs[i].size());
  align::PairDistanceOptions pdo;
  pdo.threads = options_.threads;
  pdo.with_local = options_.add_local_library;
  const util::SymmetricMatrix<double> dist = align::alignment_distance_matrix(
      seqs, *matrix_, gaps, pdo,
      [&](std::size_t i, std::size_t j, const align::PairAlignments& pair) {
        add_pair_alignment(primary, i, j, seqs[i].codes(), seqs[j].codes(),
                           pair.global.ops, 0, 0);
        if (options_.add_local_library && !pair.local.ops.empty())
          add_pair_alignment(primary, i, j, seqs[i].codes(), seqs[j].codes(),
                             pair.local.ops, pair.local.a_begin,
                             pair.local.b_begin);
      });

  // 2. Extension.
  const Library ext = extend_library(primary);

  // 3. Progressive alignment under the consistency objective.
  const GuideTree tree = GuideTree::neighbor_joining(dist);
  std::vector<Alignment> partial(tree.num_nodes());
  // Sequence indices of the rows of each partial alignment.
  std::vector<std::vector<std::size_t>> members(tree.num_nodes());

  // Merges of independent subtrees run concurrently (the library is
  // read-only by now); each task writes only its own node's slots, so the
  // result is bit-identical for every thread count.
  schedule_tree(tree, options_.threads, [&](int id) {
    const TreeNode& nd = tree.node(static_cast<std::size_t>(id));
    if (tree.is_leaf(static_cast<std::size_t>(id))) {
      partial[static_cast<std::size_t>(id)] = Alignment::from_sequence(
          seqs[static_cast<std::size_t>(nd.leaf_index)]);
      members[static_cast<std::size_t>(id)] = {
          static_cast<std::size_t>(nd.leaf_index)};
      return;
    }
    Alignment& left = partial[static_cast<std::size_t>(nd.left)];
    Alignment& right = partial[static_cast<std::size_t>(nd.right)];
    auto& ml = members[static_cast<std::size_t>(nd.left)];
    auto& mr = members[static_cast<std::size_t>(nd.right)];

    // Consistency score matrix between left columns and right columns:
    // every extended-library edge crossing the two groups votes for one
    // (column, column) cell — O(edges), not O(cells * rows^2).
    const std::vector<RowIndex> il = index_rows(left);
    const std::vector<RowIndex> ir = index_rows(right);
    std::vector<std::int32_t> group_of(n, -1);  // -1: elsewhere
    std::vector<std::size_t> row_in_group(n, 0);
    for (std::size_t r = 0; r < ml.size(); ++r) {
      group_of[ml[r]] = 0;
      row_in_group[ml[r]] = r;
    }
    for (std::size_t r = 0; r < mr.size(); ++r) {
      group_of[mr[r]] = 1;
      row_in_group[mr[r]] = r;
    }

    util::Matrix<float> score(left.num_cols(), right.num_cols(), 0.0F);
    for (std::size_t r = 0; r < ml.size(); ++r) {
      const std::size_t s = ml[r];
      for (std::size_t x = 0; x < ext[s].size(); ++x) {
        const std::int32_t ca = il[r].col_of_residue[x];
        for (const LibEdge& e : ext[s][x]) {
          if (group_of[e.seq] != 1) continue;
          const std::size_t rr = row_in_group[e.seq];
          const std::int32_t cb = ir[rr].col_of_residue[e.pos];
          score(static_cast<std::size_t>(ca), static_cast<std::size_t>(cb)) +=
              e.w;
        }
      }
    }
    const float norm =
        1.0F / static_cast<float>(ml.size()) / static_cast<float>(mr.size());

    const Profile pl(left, *matrix_);
    const Profile pr(right, *matrix_);
    std::vector<float> occ_a(left.num_cols());
    std::vector<float> occ_b(right.num_cols());
    for (std::size_t c = 0; c < left.num_cols(); ++c) occ_a[c] = pl.occupancy(c);
    for (std::size_t c = 0; c < right.num_cols(); ++c)
      occ_b[c] = pr.occupancy(c);

    ProfileAlignOptions po;
    po.gaps = bio::GapPenalties{options_.gap_open, options_.gap_extend};
    const ProfileAlignResult res = detail::profile_dp(
        left.num_cols(), right.num_cols(),
        [&](std::size_t ca, std::size_t cb) { return score(ca, cb) * norm; },
        occ_a, occ_b, po);

    partial[static_cast<std::size_t>(id)] =
        merge_alignments(left, right, res.ops);
    auto& m = members[static_cast<std::size_t>(id)];
    m.reserve(ml.size() + mr.size());
    m.insert(m.end(), ml.begin(), ml.end());
    m.insert(m.end(), mr.begin(), mr.end());
    left = Alignment{};
    right = Alignment{};
  });

  // Restore input order.
  Alignment aln = partial[static_cast<std::size_t>(tree.root())];
  std::unordered_map<std::string, std::size_t> row_by_id;
  for (std::size_t r = 0; r < aln.num_rows(); ++r)
    row_by_id.emplace(aln.row(r).id, r);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (const auto& s : seqs) order.push_back(row_by_id.at(s.id()));
  aln = aln.subset(order);
  aln.validate();
  return aln;
}

}  // namespace salign::msa
