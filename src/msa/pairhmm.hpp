#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/sequence.hpp"
#include "bio/substitution_matrix.hpp"

namespace salign::msa {

/// Parameters of the three-state pair hidden Markov model (match M plus the
/// two insert states X/Y) used by the ProbCons-style aligner.
///
/// The transition structure is ProbCons's (Do et al., Genome Res. 2005):
/// start distribution (1-2δ, δ, δ), M→X = M→Y = δ, X→X = Y→Y = ε,
/// X→M = Y→M = 1-ε, no direct X↔Y transitions. Emissions are derived from
/// the substitution matrix by a Boltzmann transform (see PairHmm).
struct PairHmmParams {
  /// δ — probability of opening a gap from the match state.
  double gap_open = 0.019;
  /// ε — probability of extending an open gap.
  double gap_extend = 0.79;
  /// Temperature of the score → joint-probability transform
  /// p(a,b) ∝ q(a) q(b) exp(S(a,b)/T). Larger T flattens the emissions.
  double temperature = 2.0;
  /// Posterior entries below this are dropped when sparsifying; ProbCons
  /// uses the same cutoff to keep the consistency transform near-linear.
  double posterior_cutoff = 0.01;
  /// Forward-matrix cell budget: pairs with (|a|+1)*(|b|+1) cells at or
  /// below this keep the full forward M matrix; larger ones checkpoint
  /// every ~sqrt(|a|)-th forward row and recompute one row block at a time
  /// while the backward sweep emits posterior rows — O((|a|/K + K)|b|)
  /// doubles instead of O(|a|*|b|). 0 = default (2M cells = 16 MB).
  /// Posteriors are bit-identical on both paths.
  std::size_t max_forward_cells = 0;
};

/// Sparse row-major posterior match-probability matrix P(a_i ~ b_j) for one
/// ordered sequence pair (a, b). Rows are residue indices of `a`; each row
/// stores only the entries that survived the posterior cutoff, in ascending
/// column order.
class SparsePosterior {
 public:
  struct Entry {
    std::uint32_t col = 0;
    float prob = 0.0F;
  };

  SparsePosterior() = default;
  SparsePosterior(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nonzeros() const { return entries_.size(); }

  /// Entries of row `i`; rows not yet filled by append_row are empty.
  [[nodiscard]] std::span<const Entry> row(std::size_t i) const {
    if (i + 1 >= row_start_.size()) return {};
    return {entries_.data() + row_start_[i],
            row_start_[i + 1] - row_start_[i]};
  }

  /// P(i ~ j), 0 when the entry was cut. O(log row length).
  [[nodiscard]] float at(std::size_t i, std::size_t j) const;

  /// Sum of all stored probabilities (diagnostic; bounded by min(rows, cols)).
  [[nodiscard]] double total() const;

  /// Transposed copy: P^T(j, i) = P(i, j). The pair (b, a) reuses the (a, b)
  /// computation through this.
  [[nodiscard]] SparsePosterior transposed() const;

  /// Row-wise builder: rows must be appended in order 0..rows-1, entries
  /// within a row in ascending column order, probabilities in [0, 1].
  void append_row(std::span<const Entry> entries);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_start_{0};
  std::vector<Entry> entries_;
};

/// Result of the maximum-expected-accuracy decode of a posterior matrix.
struct MeaResult {
  /// Sum of posterior probabilities over the matched pairs of the path.
  double expected_correct = 0.0;
  /// expected_correct / min(rows, cols) — ProbCons's expected-accuracy
  /// similarity in [0, 1]; the guide-tree distance is 1 minus this.
  double expected_accuracy = 0.0;
  /// Matched residue pairs (i, j) of the optimal path, ascending.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> matches;
};

/// Three-state pair HMM over one substitution matrix.
///
/// `posterior(a, b)` runs forward-backward in log space and returns the
/// sparsified posterior match probabilities P(a_i ~ b_j | a, b) — the
/// building block of ProbCons's consistency transform. Joint emission
/// probabilities come from the Boltzmann transform of the matrix scores with
/// uniform letter backgrounds, the standard reconstruction of the log-odds
/// derivation (Altschul, JMB 1991).
class PairHmm {
 public:
  explicit PairHmm(const bio::SubstitutionMatrix& matrix =
                       bio::SubstitutionMatrix::blosum62(),
                   PairHmmParams params = {});

  [[nodiscard]] const PairHmmParams& params() const { return params_; }

  /// Posterior match probabilities for the ordered pair (a, b). Sequences
  /// must be non-empty and use the matrix's alphabet.
  [[nodiscard]] SparsePosterior posterior(const bio::Sequence& a,
                                          const bio::Sequence& b) const;

  /// Maximum-expected-accuracy alignment of a posterior matrix: the global
  /// path maximizing the sum of matched posteriors (gap moves score 0).
  [[nodiscard]] static MeaResult mea_align(const SparsePosterior& posterior);

 private:
  [[nodiscard]] double emit_match(std::uint8_t a, std::uint8_t b) const;

  const bio::SubstitutionMatrix* matrix_;
  PairHmmParams params_;
  // Precomputed log emission tables: log p(a, b) for M, log q(a) for X/Y.
  std::vector<double> log_match_;  // size x size, row-major
  std::vector<double> log_bg_;     // size
  int size_ = 0;
};

}  // namespace salign::msa
