#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace salign::msa {

/// Node of a rooted binary guide tree. Leaves are nodes [0, num_leaves);
/// internal nodes follow in creation order; the last node is the root.
struct TreeNode {
  int left = -1;          ///< child index, -1 for leaves
  int right = -1;
  int parent = -1;
  double left_length = 0.0;   ///< branch length to left child
  double right_length = 0.0;
  double height = 0.0;        ///< ultrametric height (UPGMA) or 0 (NJ)
  int leaf_index = -1;        ///< original sequence index for leaves
};

/// Rooted binary guide tree for progressive alignment.
///
/// Two standard constructions are provided:
///  - UPGMA (used by the MUSCLE-style aligner; Edgar 2004 builds its trees
///    from k-mer distances with UPGMA),
///  - Neighbor-joining re-rooted at the midpoint of the last join (used by
///    the CLUSTALW-style baseline; Thompson et al. 1994).
/// Tie-breaks are deterministic (lowest index pair), so every aligner built
/// on top is reproducible.
class GuideTree {
 public:
  static GuideTree upgma(const util::SymmetricMatrix<double>& distances);
  static GuideTree neighbor_joining(
      const util::SymmetricMatrix<double>& distances);

  /// Reassembles a tree from its node array (the msa_serialize codec's
  /// counterpart of node()/num_leaves()/root()). Throws std::invalid_argument
  /// on inconsistent shape.
  static GuideTree from_nodes(std::vector<TreeNode> nodes,
                              std::size_t num_leaves, int root);

  [[nodiscard]] std::size_t num_leaves() const { return num_leaves_; }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] int root() const { return root_; }
  [[nodiscard]] const TreeNode& node(std::size_t i) const { return nodes_[i]; }
  [[nodiscard]] bool is_leaf(std::size_t i) const {
    return nodes_[i].left < 0;
  }

  /// Children-before-parents order (leaves included), ending at the root.
  [[nodiscard]] std::vector<int> postorder() const;

  /// Leaf indices (original sequence indices) under node `i`.
  [[nodiscard]] std::vector<int> leaves_under(int i) const;

  /// CLUSTALW-style sequence weights: each leaf accumulates, over the edges
  /// on its path to the root, edge_length / number_of_leaves_below_edge.
  /// Weights are normalized to mean 1; degenerate trees fall back to
  /// uniform.
  [[nodiscard]] std::vector<double> leaf_weights() const;

  /// Newick rendering with the given leaf names (diagnostics/examples).
  [[nodiscard]] std::string newick(std::span<const std::string> names) const;

 private:
  std::vector<TreeNode> nodes_;
  std::size_t num_leaves_ = 0;
  int root_ = -1;
};

}  // namespace salign::msa
