#include "msa/probcons_like.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "align/distance.hpp"
#include "msa/guide_tree.hpp"
#include "msa/profile_align.hpp"
#include "msa/tree_schedule.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace salign::msa {

namespace {

using align::EditOp;
using bio::Sequence;

/// Ordered-pair table of sparse posteriors: post(x, y) has |x| rows and
/// |y| columns; the diagonal is unused.
class PosteriorTable {
 public:
  explicit PosteriorTable(std::size_t n) : n_(n), table_(n * n) {}

  [[nodiscard]] const SparsePosterior& at(std::size_t x, std::size_t y) const {
    return table_[x * n_ + y];
  }
  SparsePosterior& at(std::size_t x, std::size_t y) {
    return table_[x * n_ + y];
  }

  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  std::size_t n_;
  std::vector<SparsePosterior> table_;
};

/// One round of ProbCons's probabilistic consistency transform:
/// P'(x,y) = (1/N) [ 2 P(x,y) + Σ_{z≠x,y} P(x,z)·P(z,y) ]   (P(x,x) = I).
PosteriorTable relax(const PosteriorTable& in, double cutoff) {
  const std::size_t n = in.size();
  PosteriorTable out(n);
  std::vector<float> acc;
  std::vector<std::uint32_t> touched;
  std::vector<SparsePosterior::Entry> row;

  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = x + 1; y < n; ++y) {
      const SparsePosterior& pxy = in.at(x, y);
      SparsePosterior fresh(pxy.rows(), pxy.cols());
      acc.assign(pxy.cols(), 0.0F);
      const auto inv_n = static_cast<float>(1.0 / static_cast<double>(n));

      for (std::size_t i = 0; i < pxy.rows(); ++i) {
        touched.clear();
        // z == x and z == y each contribute the identity product P(x,y).
        for (const auto& e : pxy.row(i)) {
          if (acc[e.col] == 0.0F) touched.push_back(e.col);
          acc[e.col] += 2.0F * e.prob;
        }
        // Intermediate sequences.
        for (std::size_t z = 0; z < n; ++z) {
          if (z == x || z == y) continue;
          const SparsePosterior& pxz = in.at(x, z);
          const SparsePosterior& pzy = in.at(z, y);
          for (const auto& exz : pxz.row(i)) {
            for (const auto& ezy : pzy.row(exz.col)) {
              if (acc[ezy.col] == 0.0F) touched.push_back(ezy.col);
              acc[ezy.col] += exz.prob * ezy.prob;
            }
          }
        }
        std::sort(touched.begin(), touched.end());
        row.clear();
        for (std::uint32_t c : touched) {
          const float p = acc[c] * inv_n;
          if (p > static_cast<float>(cutoff))
            row.push_back(SparsePosterior::Entry{c, std::min(p, 1.0F)});
          acc[c] = 0.0F;
        }
        fresh.append_row(row);
      }
      out.at(y, x) = fresh.transposed();
      out.at(x, y) = std::move(fresh);
    }
  }
  return out;
}

/// column -> residue index of each row (SIZE_MAX on gap columns).
std::vector<std::vector<std::size_t>> residue_maps(const Alignment& aln) {
  std::vector<std::vector<std::size_t>> maps(aln.num_rows());
  for (std::size_t r = 0; r < aln.num_rows(); ++r) {
    maps[r].assign(aln.num_cols(), static_cast<std::size_t>(-1));
    std::size_t next = 0;
    for (std::size_t c = 0; c < aln.num_cols(); ++c)
      if (!aln.is_gap(r, c)) maps[r][c] = next++;
  }
  return maps;
}

/// Aligns two group alignments by the maximum-expected-accuracy objective:
/// the column-pair score is the sum of posteriors between the residues the
/// columns carry, and gap moves are free.
std::vector<EditOp> mea_merge_path(const Alignment& a, const Alignment& b,
                                   std::span<const std::size_t> rows_a,
                                   std::span<const std::size_t> rows_b,
                                   const PosteriorTable& post) {
  const std::size_t m = a.num_cols();
  const std::size_t n = b.num_cols();
  const auto maps_a = residue_maps(a);
  const auto maps_b = residue_maps(b);

  // Residue index -> column of its group alignment.
  auto col_of = [](const std::vector<std::size_t>& map, std::size_t cols) {
    std::vector<std::uint32_t> inv;
    inv.reserve(cols);
    for (std::size_t c = 0; c < cols; ++c)
      if (map[c] != static_cast<std::size_t>(-1))
        inv.push_back(static_cast<std::uint32_t>(c));
    return inv;
  };

  util::Matrix<float> score(m, n, 0.0F);
  for (std::size_t ra = 0; ra < rows_a.size(); ++ra) {
    const std::vector<std::uint32_t> ca = col_of(maps_a[ra], m);
    for (std::size_t rb = 0; rb < rows_b.size(); ++rb) {
      const std::vector<std::uint32_t> cb = col_of(maps_b[rb], n);
      const SparsePosterior& p = post.at(rows_a[ra], rows_b[rb]);
      for (std::size_t i = 0; i < ca.size(); ++i)
        for (const auto& e : p.row(i)) score(ca[i], cb[e.col]) += e.prob;
    }
  }

  // Max-sum DP with free gaps (the MEA objective).
  util::Matrix<float> dp(m + 1, n + 1, 0.0F);
  util::Matrix<std::uint8_t> from(m + 1, n + 1, 0);  // 0=diag 1=up 2=left
  for (std::size_t i = 1; i <= m; ++i)
    from(i, 0) = 1;
  for (std::size_t j = 1; j <= n; ++j)
    from(0, j) = 2;
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      float best = dp(i - 1, j - 1) + score(i - 1, j - 1);
      std::uint8_t dir = 0;
      if (dp(i - 1, j) > best) {
        best = dp(i - 1, j);
        dir = 1;
      }
      if (dp(i, j - 1) > best) {
        best = dp(i, j - 1);
        dir = 2;
      }
      dp(i, j) = best;
      from(i, j) = dir;
    }
  }

  std::vector<EditOp> ops;
  std::size_t i = m;
  std::size_t j = n;
  while (i > 0 || j > 0) {
    switch (from(i, j)) {
      case 0:
        ops.push_back(EditOp::Match);
        --i;
        --j;
        break;
      case 1:
        ops.push_back(EditOp::GapInB);
        --i;
        break;
      default:
        ops.push_back(EditOp::GapInA);
        --j;
        break;
    }
  }
  std::reverse(ops.begin(), ops.end());
  return ops;
}

}  // namespace

ProbConsAligner::ProbConsAligner(ProbConsOptions options,
                                 const bio::SubstitutionMatrix& matrix)
    : options_(std::move(options)), matrix_(&matrix) {
  if (options_.max_sequences < 2)
    throw std::invalid_argument("ProbConsAligner: max_sequences must be >= 2");
  if (options_.consistency_reps < 0 || options_.refine_passes < 0)
    throw std::invalid_argument("ProbConsAligner: negative repetition count");
}

Alignment ProbConsAligner::align(std::span<const Sequence> seqs) const {
  if (seqs.empty())
    throw std::invalid_argument("ProbConsAligner: no sequences");
  if (seqs.size() > options_.max_sequences)
    throw std::invalid_argument(
        "ProbConsAligner: input exceeds max_sequences (" +
        std::to_string(options_.max_sequences) + ")");
  for (const Sequence& s : seqs)
    if (s.empty())
      throw std::invalid_argument("ProbConsAligner: empty sequence " + s.id());
  if (seqs.size() == 1) return Alignment::from_sequence(seqs[0]);

  const std::size_t n = seqs.size();
  const PairHmm hmm(*matrix_, options_.hmm);

  // Stage 1: pairwise posteriors (and expected-accuracy distances) — the
  // heavy O(N^2 L^2) distance pass, threaded through the shared all-pairs
  // driver. Every pair writes only its own (preallocated) posterior slots
  // and distance cell, so the result is bit-identical for any thread
  // count.
  PosteriorTable post(n);
  const util::SymmetricMatrix<double> dist = align::pairwise_distance_matrix(
      n, options_.threads, [&](std::size_t y, std::size_t x) {  // x < y
        SparsePosterior p = hmm.posterior(seqs[x], seqs[y]);
        const MeaResult mea = PairHmm::mea_align(p);
        post.at(y, x) = p.transposed();
        post.at(x, y) = std::move(p);
        return 1.0 - mea.expected_accuracy;
      });

  // Stage 2: guide tree from expected-accuracy distances.
  const GuideTree tree = GuideTree::upgma(dist);

  // Stage 3: consistency transform.
  for (int rep = 0; rep < options_.consistency_reps; ++rep)
    post = relax(post, options_.hmm.posterior_cutoff);

  // Stage 4: progressive MEA alignment along the tree. Merges of
  // independent subtrees run concurrently (the posterior table is read-only
  // by now); each task writes only its own node's slots, so the result is
  // bit-identical for every thread count.
  std::vector<Alignment> node_aln(tree.num_nodes());
  std::vector<std::vector<std::size_t>> node_rows(tree.num_nodes());
  schedule_tree(tree, options_.threads, [&](int idx) {
    const auto u = static_cast<std::size_t>(idx);
    const TreeNode& node = tree.node(u);
    if (tree.is_leaf(u)) {
      node_aln[u] = Alignment::from_sequence(
          seqs[static_cast<std::size_t>(node.leaf_index)]);
      node_rows[u] = {static_cast<std::size_t>(node.leaf_index)};
      return;
    }
    const auto l = static_cast<std::size_t>(node.left);
    const auto r = static_cast<std::size_t>(node.right);
    const std::vector<EditOp> ops = mea_merge_path(
        node_aln[l], node_aln[r], node_rows[l], node_rows[r], post);
    node_aln[u] = merge_alignments(node_aln[l], node_aln[r], ops);
    node_rows[u] = node_rows[l];
    node_rows[u].insert(node_rows[u].end(), node_rows[r].begin(),
                        node_rows[r].end());
    node_aln[l] = Alignment();
    node_aln[r] = Alignment();
  });
  Alignment aln = std::move(node_aln[static_cast<std::size_t>(tree.root())]);
  std::vector<std::size_t> row_seq = node_rows[static_cast<std::size_t>(
      tree.root())];  // row r carries sequence row_seq[r]

  // Stage 5: random-bipartition iterative refinement (accepted
  // unconditionally, as in ProbCons).
  util::Rng rng(options_.refine_seed);
  for (int pass = 0; pass < options_.refine_passes; ++pass) {
    std::vector<std::size_t> ga;
    std::vector<std::size_t> gb;
    for (std::size_t r = 0; r < aln.num_rows(); ++r)
      (rng.chance(0.5) ? ga : gb).push_back(r);
    if (ga.empty() || gb.empty()) continue;

    Alignment part_a = aln.subset(ga);
    Alignment part_b = aln.subset(gb);
    part_a.strip_all_gap_columns();
    part_b.strip_all_gap_columns();
    std::vector<std::size_t> rows_a;
    std::vector<std::size_t> rows_b;
    for (std::size_t r : ga) rows_a.push_back(row_seq[r]);
    for (std::size_t r : gb) rows_b.push_back(row_seq[r]);

    const std::vector<EditOp> ops =
        mea_merge_path(part_a, part_b, rows_a, rows_b, post);
    aln = merge_alignments(part_a, part_b, ops);
    std::vector<std::size_t> new_row_seq = rows_a;
    new_row_seq.insert(new_row_seq.end(), rows_b.begin(), rows_b.end());
    row_seq = std::move(new_row_seq);
  }

  // Restore input row order.
  std::vector<std::size_t> perm(aln.num_rows());
  for (std::size_t r = 0; r < aln.num_rows(); ++r) perm[row_seq[r]] = r;
  Alignment out = aln.subset(perm);
  out.strip_all_gap_columns();
  out.validate();
  return out;
}

}  // namespace salign::msa
