#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "msa/alignment.hpp"

namespace salign::msa {

/// Options of the Clustal writer.
struct ClustalWriteOptions {
  /// Residues per block (Clustal tools conventionally use 60).
  std::size_t block_width = 60;
  /// Emit the per-block conservation footer ('*', ':', '.', ' ').
  bool conservation_line = true;
};

/// ClustalX-style per-column conservation symbols, one char per column:
/// '*' fully conserved residue (no gaps), ':' all residues share a "strong"
/// group, '.' a "weak" group, ' ' otherwise (gap-containing columns are
/// never marked). Uses the standard ClustalX strong/weak amino-acid groups.
[[nodiscard]] std::string conservation_symbols(const Alignment& aln);

/// Writes the alignment in CLUSTAL interchange format — the output format
/// of the CLUSTALW baseline the paper compares against (Table 2), and the
/// lingua franca of MSA viewers of that era. Blocked layout: id column,
/// `block_width` residues per line, optional conservation footer.
void write_clustal(std::ostream& out, const Alignment& aln,
                   const ClustalWriteOptions& opts = {});

/// Reads CLUSTAL format (header line starting with "CLUSTAL", per-block
/// "name fragment [count]" rows; conservation/blank lines skipped).
/// Fragments accumulate per name in first-appearance order. Throws
/// std::runtime_error on a missing header, ragged rows, or inconsistent
/// block structure.
[[nodiscard]] Alignment read_clustal(
    std::istream& in, bio::AlphabetKind kind = bio::AlphabetKind::AminoAcid);

}  // namespace salign::msa
