#pragma once

#include <functional>

#include "msa/guide_tree.hpp"

namespace salign::msa {

/// Executes `node_fn(id)` once for every node of `tree` — leaves included —
/// with every node's children completed before the node itself runs, on the
/// calling thread plus up to `threads - 1` workers from the shared
/// util::ThreadPool.
///
/// This is the task engine of the parallel progressive pass: each internal
/// node is a task with a dependency count of two that fires when both
/// children are merged, so independent subtrees align concurrently and the
/// only serialization left is the tree's critical path. With threads <= 1
/// the nodes run in exactly GuideTree::postorder() order.
///
/// Determinism contract: `node_fn` may touch only state owned by its own
/// node and by its two children — the children are complete, no other task
/// will ever read or write them again, and the scheduler's queue mutex
/// orders their writes before the parent runs, so the parent may freely
/// consume and even clear their slots (the progressive consumers do, to
/// free merged partials eagerly). Under that contract the final per-node
/// results are identical
/// for every `threads` value, because each node's result is a pure function
/// of its children's results regardless of execution order. All consumers
/// in this library (PSP progressive, T-Coffee consistency, ProbCons MEA)
/// are pinned bit-identical across thread counts by the
/// tests/msa_parallel_test.cpp invariance suite.
///
/// If any `node_fn` throws, the schedule drains (running nodes finish, no
/// new node starts) and one of the exceptions is rethrown.
void schedule_tree(const GuideTree& tree, unsigned threads,
                   const std::function<void(int)>& node_fn);

}  // namespace salign::msa
