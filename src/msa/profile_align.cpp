#include "msa/profile_align.hpp"

#include <limits>
#include <stdexcept>

namespace salign::msa {

namespace {

std::vector<float> occupancies(const Profile& p) {
  std::vector<float> occ(p.num_cols());
  for (std::size_t c = 0; c < p.num_cols(); ++c) occ[c] = p.occupancy(c);
  return occ;
}

}  // namespace

ProfileAlignResult align_profiles(const Profile& a, const Profile& b,
                                  const ProfileAlignOptions& opts) {
  const std::vector<float> occ_a = occupancies(a);
  const std::vector<float> occ_b = occupancies(b);

  // PSP evaluated naively is O(|alphabet|^2) per DP cell. Precomputing, for
  // every column of B, the score vector svT[x][cb] = sum_y g_y(cb) S(x, y)
  // and, for every column of A, its nonzero frequencies, drops the cell
  // cost to O(nnz(A column)) — the same factorization MUSCLE uses. svT is
  // laid out residue-major so that, per DP row, the whole score row over cb
  // builds with nnz contiguous saxpy sweeps the compiler can vectorize,
  // instead of a strided gather per cell.
  const bio::SubstitutionMatrix& m = a.matrix();
  const auto alpha = static_cast<std::size_t>(a.alphabet_size());
  const std::size_t nb = b.num_cols();
  util::Matrix<float> svt(alpha, nb, 0.0F);
  for (std::size_t cb = 0; cb < nb; ++cb) {
    for (std::size_t y = 0; y < alpha; ++y) {
      const float gy = b.freq(cb, static_cast<std::uint8_t>(y));
      if (gy == 0.0F) continue;
      for (std::size_t x = 0; x < alpha; ++x)
        svt(x, cb) += gy * m.score(static_cast<std::uint8_t>(x),
                                   static_cast<std::uint8_t>(y));
    }
  }
  std::vector<std::vector<std::pair<std::uint8_t, float>>> sparse_a(
      a.num_cols());
  for (std::size_t ca = 0; ca < a.num_cols(); ++ca)
    for (std::size_t x = 0; x < alpha; ++x) {
      const float fx = a.freq(ca, static_cast<std::uint8_t>(x));
      if (fx != 0.0F)
        sparse_a[ca].emplace_back(static_cast<std::uint8_t>(x), fx);
    }

  // profile_dp announces each DP row via prepare_row, so one dense saxpy
  // sweep per A column serves every cell of that row and the per-cell call
  // is a plain array read (no stores inside the DP inner loop). Term order
  // per cell matches the historical per-cell sparse dot exactly (same
  // partial-sum sequence), so scores are bit-identical.
  const detail::PspRowScorer scorer{&svt, &sparse_a,
                                    std::vector<float>(nb, 0.0F)};
  return detail::profile_dp(a.num_cols(), b.num_cols(), scorer, occ_a, occ_b,
                            opts);
}

float score_profile_path(const Profile& a, const Profile& b,
                         std::span<const align::EditOp> ops,
                         const ProfileAlignOptions& opts) {
  using align::EditOp;
  float score = 0.0F;
  std::size_t i = 0;
  std::size_t j = 0;
  EditOp prev = EditOp::Match;
  bool first = true;
  for (EditOp op : ops) {
    switch (op) {
      case EditOp::Match:
        if (i >= a.num_cols() || j >= b.num_cols())
          throw std::invalid_argument("score_profile_path: path overruns");
        score += a.psp(b, i, j);
        ++i;
        ++j;
        break;
      case EditOp::GapInA: {
        if (j >= b.num_cols())
          throw std::invalid_argument("score_profile_path: path overruns B");
        const bool extend = !first && prev == EditOp::GapInA;
        score -= (extend ? opts.gaps.extend : opts.gaps.open) * b.occupancy(j);
        ++j;
        break;
      }
      case EditOp::GapInB: {
        if (i >= a.num_cols())
          throw std::invalid_argument("score_profile_path: path overruns A");
        const bool extend = !first && prev == EditOp::GapInB;
        score -= (extend ? opts.gaps.extend : opts.gaps.open) * a.occupancy(i);
        ++i;
        break;
      }
    }
    prev = op;
    first = false;
  }
  if (i != a.num_cols() || j != b.num_cols())
    throw std::invalid_argument("score_profile_path: path incomplete");
  return score;
}

Alignment merge_alignments(const Alignment& a, const Alignment& b,
                           std::span<const align::EditOp> ops) {
  using align::EditOp;
  if (a.alphabet_kind() != b.alphabet_kind())
    throw std::invalid_argument("merge_alignments: alphabet mismatch");

  std::vector<AlignedRow> rows(a.num_rows() + b.num_rows());
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    rows[r].id = a.row(r).id;
    rows[r].cells.reserve(ops.size());
  }
  for (std::size_t r = 0; r < b.num_rows(); ++r) {
    rows[a.num_rows() + r].id = b.row(r).id;
    rows[a.num_rows() + r].cells.reserve(ops.size());
  }

  std::size_t ca = 0;
  std::size_t cb = 0;
  for (EditOp op : ops) {
    const bool use_a = op != EditOp::GapInA;
    const bool use_b = op != EditOp::GapInB;
    if (use_a && ca >= a.num_cols())
      throw std::invalid_argument("merge_alignments: path overruns A");
    if (use_b && cb >= b.num_cols())
      throw std::invalid_argument("merge_alignments: path overruns B");
    for (std::size_t r = 0; r < a.num_rows(); ++r)
      rows[r].cells.push_back(use_a ? a.cell(r, ca) : Alignment::kGap);
    for (std::size_t r = 0; r < b.num_rows(); ++r)
      rows[a.num_rows() + r].cells.push_back(use_b ? b.cell(r, cb)
                                                   : Alignment::kGap);
    if (use_a) ++ca;
    if (use_b) ++cb;
  }
  if (ca != a.num_cols() || cb != b.num_cols())
    throw std::invalid_argument("merge_alignments: path incomplete");
  return Alignment(std::move(rows), a.alphabet_kind());
}

std::vector<align::EditOp> implied_path(const Alignment& aln,
                                        std::span<const std::size_t> group_a,
                                        std::span<const std::size_t> group_b) {
  using align::EditOp;
  std::vector<EditOp> ops;
  ops.reserve(aln.num_cols());
  for (std::size_t c = 0; c < aln.num_cols(); ++c) {
    bool in_a = false;
    bool in_b = false;
    for (std::size_t r : group_a)
      if (!aln.is_gap(r, c)) {
        in_a = true;
        break;
      }
    for (std::size_t r : group_b)
      if (!aln.is_gap(r, c)) {
        in_b = true;
        break;
      }
    if (in_a && in_b)
      ops.push_back(EditOp::Match);
    else if (in_a)
      ops.push_back(EditOp::GapInB);
    else if (in_b)
      ops.push_back(EditOp::GapInA);
    // column empty in both groups: dropped
  }
  return ops;
}

}  // namespace salign::msa
