#include "msa/muscle_like.hpp"

#include <stdexcept>
#include <unordered_map>

#include "align/distance.hpp"
#include "kmer/kmer_rank.hpp"
#include "msa/guide_tree.hpp"
#include "msa/progressive.hpp"
#include "msa/refinement.hpp"

namespace salign::msa {

namespace {

/// Kimura distances from the identities induced by an existing alignment —
/// much cheaper than re-aligning pairs, and exactly MUSCLE's stage-2 trick.
/// An O(N^2 L) distance-matrix pass, so it rides the threaded all-pairs
/// driver (bit-identical output for any thread count).
util::SymmetricMatrix<double> induced_kimura_distances(const Alignment& aln,
                                                       unsigned threads) {
  return align::pairwise_distance_matrix(
      aln.num_rows(), threads, [&](std::size_t i, std::size_t j) {
        const auto& a = aln.row(i).cells;
        const auto& b = aln.row(j).cells;
        std::size_t cols = 0;
        std::size_t matches = 0;
        for (std::size_t c = 0; c < a.size(); ++c) {
          if (a[c] == Alignment::kGap || b[c] == Alignment::kGap) continue;
          ++cols;
          if (a[c] == b[c]) ++matches;
        }
        const double identity =
            cols == 0
                ? 0.0
                : static_cast<double>(matches) / static_cast<double>(cols);
        return align::kimura_distance(identity);
      });
}

/// Restores input order: progressive emits rows in tree leaf order.
Alignment reorder_to_input(const Alignment& aln,
                           std::span<const bio::Sequence> seqs) {
  std::unordered_map<std::string, std::size_t> row_by_id;
  for (std::size_t r = 0; r < aln.num_rows(); ++r)
    row_by_id.emplace(aln.row(r).id, r);
  std::vector<std::size_t> order;
  order.reserve(seqs.size());
  for (const auto& s : seqs) {
    const auto it = row_by_id.find(s.id());
    if (it == row_by_id.end())
      throw std::logic_error("MuscleAligner: lost sequence " + s.id());
    order.push_back(it->second);
  }
  return aln.subset(order);
}

/// row_of_leaf map for refinement after reordering to input order: leaf i of
/// the tree is sequence i, which is row i.
std::vector<std::size_t> identity_rows(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

}  // namespace

MuscleAligner::MuscleAligner(MuscleOptions options,
                             const bio::SubstitutionMatrix& matrix)
    : options_(options), matrix_(&matrix) {}

std::string MuscleAligner::name() const {
  std::string n = "MiniMuscle";
  if (options_.stage1_distance == MuscleOptions::GuideTree::kScore)
    n += "+score-tree";
  if (options_.refine_passes > 0) n += "+refine";
  return n;
}

Alignment MuscleAligner::align(std::span<const bio::Sequence> seqs) const {
  if (seqs.empty()) throw std::invalid_argument("MuscleAligner: no sequences");
  if (seqs.size() == 1) return Alignment::from_sequence(seqs[0]);

  {
    std::unordered_map<std::string, int> ids;
    for (const auto& s : seqs)
      if (++ids[s.id()] > 1)
        throw std::invalid_argument("MuscleAligner: duplicate id " + s.id());
  }

  // Stage 1: k-mer (or engine score) distances -> UPGMA -> progressive.
  const util::SymmetricMatrix<double> kd = [&] {
    if (options_.stage1_distance == MuscleOptions::GuideTree::kScore) {
      align::ScoreDistanceOptions sdo;
      sdo.threads = options_.threads;
      return align::score_distance_matrix(seqs, *matrix_,
                                          matrix_->default_gaps(), sdo);
    }
    return kmer::distance_matrix(seqs, options_.kmer);
  }();
  GuideTree tree = GuideTree::upgma(kd);
  ProgressiveOptions po;
  po.gaps = matrix_->default_gaps();
  po.weights = tree.leaf_weights();
  po.threads = options_.threads;
  Alignment aln = progressive_align(seqs, tree, *matrix_, po);

  // Stage 2: Kimura distances from the stage-1 alignment, rebuilt tree,
  // re-aligned.
  if (options_.reestimate_tree) {
    aln = reorder_to_input(aln, seqs);
    const util::SymmetricMatrix<double> kim =
        induced_kimura_distances(aln, options_.threads);
    tree = GuideTree::upgma(kim);
    po.weights = tree.leaf_weights();
    aln = progressive_align(seqs, tree, *matrix_, po);
  }

  aln = reorder_to_input(aln, seqs);

  // Stage 3: optional refinement (rows are in input order == leaf order).
  if (options_.refine_passes > 0) {
    RefineOptions ro;
    ro.passes = options_.refine_passes;
    ro.gaps = matrix_->default_gaps();
    const auto rows = identity_rows(seqs.size());
    std::vector<double> weights = tree.leaf_weights();
    refine(aln, tree, rows, *matrix_, ro, weights);
  }

  aln.validate();
  return aln;
}

std::shared_ptr<const MsaAlgorithm> make_default_aligner(unsigned threads) {
  MuscleOptions o;
  o.threads = threads;
  return std::make_shared<MuscleAligner>(o);
}

}  // namespace salign::msa
