#include "msa/muscle_like.hpp"

#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "align/distance.hpp"
#include "bio/content_hash.hpp"
#include "kmer/kmer_rank.hpp"
#include "msa/guide_tree.hpp"
#include "msa/msa_serialize.hpp"
#include "msa/progressive.hpp"
#include "msa/refinement.hpp"
#include "par/serialize.hpp"
#include "util/artifact_cache.hpp"

namespace salign::msa {

namespace {

/// Kimura distances from the identities induced by an existing alignment —
/// much cheaper than re-aligning pairs, and exactly MUSCLE's stage-2 trick.
/// An O(N^2 L) distance-matrix pass, so it rides the threaded all-pairs
/// driver (bit-identical output for any thread count).
util::SymmetricMatrix<double> induced_kimura_distances(const Alignment& aln,
                                                       unsigned threads) {
  return align::pairwise_distance_matrix(
      aln.num_rows(), threads, [&](std::size_t i, std::size_t j) {
        const auto& a = aln.row(i).cells;
        const auto& b = aln.row(j).cells;
        std::size_t cols = 0;
        std::size_t matches = 0;
        for (std::size_t c = 0; c < a.size(); ++c) {
          if (a[c] == Alignment::kGap || b[c] == Alignment::kGap) continue;
          ++cols;
          if (a[c] == b[c]) ++matches;
        }
        const double identity =
            cols == 0
                ? 0.0
                : static_cast<double>(matches) / static_cast<double>(cols);
        return align::kimura_distance(identity);
      });
}

/// Restores input order: progressive emits rows in tree leaf order.
Alignment reorder_to_input(const Alignment& aln,
                           std::span<const bio::Sequence> seqs) {
  std::unordered_map<std::string, std::size_t> row_by_id;
  for (std::size_t r = 0; r < aln.num_rows(); ++r)
    row_by_id.emplace(aln.row(r).id, r);
  std::vector<std::size_t> order;
  order.reserve(seqs.size());
  for (const auto& s : seqs) {
    const auto it = row_by_id.find(s.id());
    if (it == row_by_id.end())
      throw std::logic_error("MuscleAligner: lost sequence " + s.id());
    order.push_back(it->second);
  }
  return aln.subset(order);
}

/// row_of_leaf map for refinement after reordering to input order: leaf i of
/// the tree is sequence i, which is row i.
std::vector<std::size_t> identity_rows(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

/// Artifact-cache plumbing of one aligner run: phase keys derive from the
/// run's base digest (aligner config + matrix + input set), so intermediate
/// artifacts of runs over the same bucket are shared process-wide while runs
/// that could differ in any output-relevant way never collide.
struct PhaseCache {
  bool enabled = false;
  util::Digest128 base{};
  util::ArtifactCache* cache = nullptr;

  [[nodiscard]] util::Digest128 key(std::string_view tag) const {
    util::StableHash h;
    h.u64(base.hi);
    h.u64(base.lo);
    h.str(tag);
    return h.digest128();
  }

  /// Serves `tag` from the cache (decoding with `read`) or computes, encodes
  /// with `write` and stores. Cache hits decode the exact bytes a cold run
  /// stored, so both paths yield bit-identical values.
  ///
  /// The cache is an optimization, never a correctness input, so every
  /// cache failure degrades instead of propagating: a lookup failure (or a
  /// blob that won't decode) is a miss and the phase recomputes; an insert
  /// failure just means the value isn't shared. Only compute() errors
  /// escape. The fault-matrix tests drive this via the cache.lookup /
  /// cache.insert injection sites.
  template <typename Compute, typename Write, typename Read>
  auto get(AlignerPhaseStats* stats, const char* tag, Compute&& compute,
           Write&& write, Read&& read) const -> decltype(compute()) {
    ScopedPhase phase(stats, tag);
    if (!enabled) return compute();
    const util::Digest128 k = key(tag);
    try {
      if (const util::ArtifactCache::Blob blob = cache->get(k)) {
        par::ByteReader r{std::span<const std::uint8_t>(*blob)};
        auto value = read(r);
        phase.hit();
        return value;
      }
    } catch (const std::exception&) {
      // fall through: recompute
    }
    auto value = compute();
    par::ByteWriter w;
    write(w, value);
    try {
      cache->put(k, w.take());
    } catch (const std::exception&) {
      // not cached this time; the computed value is still correct
    }
    return value;
  }
};

}  // namespace

MuscleAligner::MuscleAligner(MuscleOptions options,
                             const bio::SubstitutionMatrix& matrix)
    : options_(options), matrix_(&matrix) {}

std::string MuscleAligner::name() const {
  std::string n = "MiniMuscle";
  if (options_.stage1_distance == MuscleOptions::GuideTree::kScore)
    n += "+score-tree";
  if (options_.refine_passes > 0) n += "+refine";
  return n;
}

void MuscleAligner::hash_config(util::StableHash& h) const {
  h.str("salign.muscle.v1");
  h.u8(static_cast<std::uint8_t>(options_.stage1_distance));
  h.u32(static_cast<std::uint32_t>(options_.kmer.k));
  h.u8(options_.kmer.compressed ? 1 : 0);
  h.u8(options_.reestimate_tree ? 1 : 0);
  h.u32(static_cast<std::uint32_t>(options_.refine_passes));
  bio::hash_matrix(h, *matrix_);
}

Alignment MuscleAligner::align(std::span<const bio::Sequence> seqs) const {
  if (seqs.empty()) throw std::invalid_argument("MuscleAligner: no sequences");
  if (seqs.size() == 1) return Alignment::from_sequence(seqs[0]);

  {
    std::unordered_map<std::string, int> ids;
    for (const auto& s : seqs)
      if (++ids[s.id()] > 1)
        throw std::invalid_argument("MuscleAligner: duplicate id " + s.id());
  }

  PhaseCache pc;
  pc.enabled = options_.use_artifact_cache;
  if (pc.enabled) {
    util::StableHash h;
    hash_config(h);
    const util::Digest128 in = bio::sequence_set_hash(seqs);
    h.u64(in.hi);
    h.u64(in.lo);
    pc.base = h.digest128();
    pc.cache = &util::ArtifactCache::process_cache();
  }
  AlignerPhaseStats* ps = options_.phase_stats;

  // Stage 1: k-mer (or engine score) distances -> UPGMA -> progressive.
  const util::SymmetricMatrix<double> kd = pc.get(
      ps, "stage1 distance matrix",
      [&] {
        if (options_.stage1_distance == MuscleOptions::GuideTree::kScore) {
          align::ScoreDistanceOptions sdo;
          sdo.threads = options_.threads;
          return align::score_distance_matrix(seqs, *matrix_,
                                              matrix_->default_gaps(), sdo);
        }
        return kmer::distance_matrix(seqs, options_.kmer);
      },
      write_distance_matrix, read_distance_matrix);
  GuideTree tree =
      pc.get(ps, "stage1 guide tree", [&] { return GuideTree::upgma(kd); },
             write_guide_tree, read_guide_tree);
  ProgressiveOptions po;
  po.gaps = matrix_->default_gaps();
  po.weights = tree.leaf_weights();
  po.threads = options_.threads;
  po.max_trace_cells = options_.max_trace_cells;
  Alignment aln = [&] {
    ScopedPhase phase(ps, "stage1 progressive");
    return progressive_align(seqs, tree, *matrix_, po);
  }();

  // Stage 2: Kimura distances from the stage-1 alignment, rebuilt tree,
  // re-aligned.
  if (options_.reestimate_tree) {
    aln = reorder_to_input(aln, seqs);
    const util::SymmetricMatrix<double> kim = pc.get(
        ps, "stage2 distance matrix",
        [&] { return induced_kimura_distances(aln, options_.threads); },
        write_distance_matrix, read_distance_matrix);
    tree =
        pc.get(ps, "stage2 guide tree", [&] { return GuideTree::upgma(kim); },
               write_guide_tree, read_guide_tree);
    po.weights = tree.leaf_weights();
    {
      ScopedPhase phase(ps, "stage2 progressive");
      aln = progressive_align(seqs, tree, *matrix_, po);
    }
  }

  aln = reorder_to_input(aln, seqs);

  // Stage 3: optional refinement (rows are in input order == leaf order).
  if (options_.refine_passes > 0) {
    ScopedPhase phase(ps, "refine");
    RefineOptions ro;
    ro.passes = options_.refine_passes;
    ro.gaps = matrix_->default_gaps();
    const auto rows = identity_rows(seqs.size());
    std::vector<double> weights = tree.leaf_weights();
    refine(aln, tree, rows, *matrix_, ro, weights);
  }

  aln.validate();
  return aln;
}

std::shared_ptr<const MsaAlgorithm> make_default_aligner(unsigned threads) {
  MuscleOptions o;
  o.threads = threads;
  return std::make_shared<MuscleAligner>(o);
}

}  // namespace salign::msa
