#pragma once

#include "bio/substitution_matrix.hpp"
#include "kmer/kmer_profile.hpp"
#include "msa/msa_algorithm.hpp"

namespace salign::msa {

/// Configuration of the MAFFT-style aligner.
struct MafftOptions {
  /// FFT anchoring on (FFT-NS-i) or off (NW-NS-i). With anchoring on, each
  /// progressive merge correlates residue-property signals (volume and
  /// polarity channels, Katoh et al. 2002) of the two group consensus
  /// profiles via FFT; a sharp correlation peak near the main diagonal
  /// permits a narrow DP band, cutting the merge cost from O(L^2) to
  /// O(L * band).
  bool use_fft = true;
  /// Iterative refinement sweeps (the "-i" suffix in FFTNSI/NWNSI).
  int refine_passes = 2;
  /// Base DP band half-width when FFT anchoring is active.
  std::size_t base_band = 24;
  /// k-mer distance parameters of the guide-tree stage (MAFFT counts
  /// 6-mers; on our compressed alphabet k = 4 gives a comparable space).
  kmer::KmerParams kmer{};
  /// Worker threads of the progressive merge schedule (1 = serial; the FFT
  /// band provider is pure, so concurrent merges are safe). Any value
  /// produces bit-identical alignments.
  unsigned threads = 1;
};

/// "MiniMafft": a from-scratch MAFFT-style aligner (Katoh, Misawa, Kuma &
/// Miyata, NAR 2002), providing the Table 2 comparators FFTNSI (use_fft =
/// true) and NWNSI (use_fft = false): k-mer distances -> UPGMA ->
/// progressive alignment (FFT-banded or full DP) -> iterative refinement.
class MafftAligner final : public MsaAlgorithm {
 public:
  explicit MafftAligner(MafftOptions options = {},
                        const bio::SubstitutionMatrix& matrix =
                            bio::SubstitutionMatrix::blosum62());

  [[nodiscard]] Alignment align(
      std::span<const bio::Sequence> seqs) const override;

  /// "FFTNSI" / "NWNSI" (trailing I dropped when refine_passes == 0),
  /// matching the paper's Table 2 row labels.
  [[nodiscard]] std::string name() const override;

 private:
  MafftOptions options_;
  const bio::SubstitutionMatrix* matrix_;
};

}  // namespace salign::msa
