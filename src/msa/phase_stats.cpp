#include "msa/phase_stats.hpp"

#include <mutex>

namespace salign::msa {

void AlignerPhaseStats::record(std::string_view name, double wall_seconds,
                               bool cache_hit) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (Phase& p : phases_) {
    if (p.name == name) {
      p.wall_seconds += wall_seconds;
      ++p.runs;
      if (cache_hit) ++p.cache_hits;
      return;
    }
  }
  Phase p;
  p.name = std::string(name);
  p.wall_seconds = wall_seconds;
  p.runs = 1;
  p.cache_hits = cache_hit ? 1 : 0;
  phases_.push_back(std::move(p));
}

std::vector<AlignerPhaseStats::Phase> AlignerPhaseStats::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return phases_;
}

void AlignerPhaseStats::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  phases_.clear();
}

}  // namespace salign::msa
