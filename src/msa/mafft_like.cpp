#include "msa/mafft_like.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "kmer/kmer_rank.hpp"
#include "msa/guide_tree.hpp"
#include "msa/progressive.hpp"
#include "msa/refinement.hpp"
#include "util/fft.hpp"

namespace salign::msa {

namespace {

// Grantham (Science 1974) side-chain volume and polarity, indexed by the
// amino-acid alphabet order A R N D C Q E G H I L K M F P S T W Y V; the
// wildcard X gets the mean. Katoh et al. correlate exactly these two
// channels (normalized) to find homologous segments.
constexpr double kVolume[21] = {31,  124, 56,  54,   55, 85,  83,
                                3,   96,  111, 111,  119, 105, 132,
                                32.5, 32,  61,  170, 136, 84,  84.0};
constexpr double kPolarity[21] = {8.1, 10.5, 11.6, 13.0, 5.5, 10.5, 12.3,
                                  9.0, 10.4, 5.2,  4.9,  11.3, 5.7, 5.2,
                                  8.0, 9.2,  8.6,  5.4,  6.2,  5.9, 8.3};

/// Normalizes a channel to zero mean / unit variance so the correlation
/// peak reflects shape, not absolute magnitude.
void normalize(std::vector<double>& v) {
  if (v.empty()) return;
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0.0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  const double sd = std::sqrt(var);
  if (sd < 1e-12) {
    std::fill(v.begin(), v.end(), 0.0);
    return;
  }
  for (double& x : v) x = (x - mean) / sd;
}

/// Column-averaged property signal of an alignment (gap cells contribute 0).
std::vector<double> property_signal(const Alignment& aln,
                                    const double* table) {
  std::vector<double> sig(aln.num_cols(), 0.0);
  for (std::size_t c = 0; c < aln.num_cols(); ++c) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t r = 0; r < aln.num_rows(); ++r) {
      const std::uint8_t code = aln.cell(r, c);
      if (code == Alignment::kGap) continue;
      sum += table[code];
      ++count;
    }
    sig[c] = count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  normalize(sig);
  return sig;
}

/// FFT anchor: correlation peak offset between the two groups' property
/// signals. Returns the band half-width to use for the merge.
std::size_t fft_band(const Alignment& a, const Alignment& b,
                     std::size_t base_band) {
  if (a.num_cols() < 8 || b.num_cols() < 8) return 0;  // full DP for tiny
  const std::vector<double> av = property_signal(a, kVolume);
  const std::vector<double> ap = property_signal(a, kPolarity);
  const std::vector<double> bv = property_signal(b, kVolume);
  const std::vector<double> bp = property_signal(b, kPolarity);

  const std::vector<double> cv = util::cross_correlation(av, bv);
  const std::vector<double> cp = util::cross_correlation(ap, bp);
  double best = -1e300;
  std::size_t arg = 0;
  for (std::size_t k = 0; k < cv.size(); ++k) {
    const double v = cv[k] + cp[k];
    if (v > best) {
      best = v;
      arg = k;
    }
  }
  // Lag (b_len - 1) is zero shift; the band must cover the peak offset.
  const auto zero = static_cast<long>(b.num_cols()) - 1;
  const long delta = static_cast<long>(arg) - zero;
  return base_band + static_cast<std::size_t>(std::labs(delta));
}

}  // namespace

MafftAligner::MafftAligner(MafftOptions options,
                           const bio::SubstitutionMatrix& matrix)
    : options_(options), matrix_(&matrix) {}

std::string MafftAligner::name() const {
  std::string n = options_.use_fft ? "FFTNS" : "NWNS";
  if (options_.refine_passes > 0) n += "I";
  return n;
}

Alignment MafftAligner::align(std::span<const bio::Sequence> seqs) const {
  if (seqs.empty()) throw std::invalid_argument("MafftAligner: no sequences");
  if (seqs.size() == 1) return Alignment::from_sequence(seqs[0]);

  const util::SymmetricMatrix<double> kd =
      kmer::distance_matrix(seqs, options_.kmer);
  const GuideTree tree = GuideTree::upgma(kd);

  ProgressiveOptions po;
  po.gaps = matrix_->default_gaps();
  po.weights = tree.leaf_weights();
  po.threads = options_.threads;
  if (options_.use_fft) {
    const std::size_t base = options_.base_band;
    po.band_provider = [base](const Alignment& a, const Alignment& b) {
      return fft_band(a, b, base);
    };
  }
  Alignment aln = progressive_align(seqs, tree, *matrix_, po);

  // Restore input order (leaf i == sequence i == row i afterwards).
  std::unordered_map<std::string, std::size_t> row_by_id;
  for (std::size_t r = 0; r < aln.num_rows(); ++r)
    row_by_id.emplace(aln.row(r).id, r);
  std::vector<std::size_t> order;
  order.reserve(seqs.size());
  for (const auto& s : seqs) order.push_back(row_by_id.at(s.id()));
  aln = aln.subset(order);

  if (options_.refine_passes > 0) {
    RefineOptions ro;
    ro.passes = options_.refine_passes;
    ro.gaps = matrix_->default_gaps();
    std::vector<std::size_t> rows(seqs.size());
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
    const std::vector<double> weights = tree.leaf_weights();
    refine(aln, tree, rows, *matrix_, ro, weights);
  }

  aln.validate();
  return aln;
}

}  // namespace salign::msa
