#pragma once

#include "msa/guide_tree.hpp"
#include "par/serialize.hpp"
#include "util/matrix.hpp"

namespace salign::msa {

/// Stable binary codecs for the sequential aligners' intermediate artifacts
/// (distance matrices, guide trees), shared by the process-wide artifact
/// cache and the checkpoint layer. Like the par:: codecs, a round trip is
/// bit-exact: decode(encode(x)) reproduces x field by field, which is what
/// lets cache hits substitute for recomputation without changing output.

void write_distance_matrix(par::ByteWriter& w,
                           const util::SymmetricMatrix<double>& m);
[[nodiscard]] util::SymmetricMatrix<double> read_distance_matrix(
    par::ByteReader& r);

void write_guide_tree(par::ByteWriter& w, const GuideTree& t);
[[nodiscard]] GuideTree read_guide_tree(par::ByteReader& r);

}  // namespace salign::msa
