#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.hpp"

namespace salign::msa {

/// Thread-safe recorder of a sequential aligner's internal phases (distance
/// matrix, guide tree, progressive pass, refinement). The Sample-Align-D
/// pipeline hands one recorder to its per-bucket aligner, so a `--stats` run
/// reports where the sequential time went and which phases were served from
/// the process-wide artifact cache instead of recomputed.
///
/// Phases are aggregated by name across calls (all p buckets of a pipeline
/// run fold into one row per phase) and reported in first-seen order.
class AlignerPhaseStats {
 public:
  struct Phase {
    std::string name;
    double wall_seconds = 0.0;  ///< summed across runs (cache hits included)
    std::uint64_t runs = 0;
    std::uint64_t cache_hits = 0;
  };

  void record(std::string_view name, double wall_seconds, bool cache_hit);
  [[nodiscard]] std::vector<Phase> snapshot() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<Phase> phases_;
};

/// RAII phase timer: records on destruction; call hit() when the phase's
/// value came from the artifact cache. A null recorder makes it a no-op.
class ScopedPhase {
 public:
  ScopedPhase(AlignerPhaseStats* stats, std::string_view name)
      : stats_(stats), name_(name) {}
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() {
    if (stats_ != nullptr) stats_->record(name_, watch_.seconds(), hit_);
  }

  void hit() { hit_ = true; }

 private:
  AlignerPhaseStats* stats_;
  std::string name_;
  util::Stopwatch watch_;
  bool hit_ = false;
};

}  // namespace salign::msa
