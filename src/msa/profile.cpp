#include "msa/profile.hpp"

#include <numeric>
#include <stdexcept>

namespace salign::msa {

Profile::Profile(const Alignment& aln, const bio::SubstitutionMatrix& matrix,
                 std::span<const double> weights)
    : matrix_(&matrix),
      cols_(aln.num_cols()),
      alpha_size_(aln.alphabet().size()) {
  if (aln.empty()) throw std::invalid_argument("Profile: empty alignment");
  if (matrix.alphabet_kind() != aln.alphabet_kind())
    throw std::invalid_argument("Profile: matrix/alignment alphabet mismatch");
  if (!weights.empty() && weights.size() != aln.num_rows())
    throw std::invalid_argument("Profile: weight count != row count");

  const std::size_t rows = aln.num_rows();
  std::vector<double> w(rows, 1.0);
  if (!weights.empty()) w.assign(weights.begin(), weights.end());
  for (double x : w)
    if (x < 0.0) throw std::invalid_argument("Profile: negative weight");
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("Profile: non-positive weights");
  for (double& x : w) x /= total;

  freqs_ = util::Matrix<float>(cols_, static_cast<std::size_t>(alpha_size_));
  occ_.assign(cols_, 0.0F);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto& cells = aln.row(r).cells;
    const auto wr = static_cast<float>(w[r]);
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::uint8_t code = cells[c];
      if (code == Alignment::kGap) continue;
      freqs_(c, code) += wr;
      occ_[c] += wr;
    }
  }
}

float Profile::psp(const Profile& other, std::size_t ca, std::size_t cb) const {
  if (alpha_size_ != other.alpha_size_)
    throw std::invalid_argument("Profile::psp: alphabet mismatch");
  float s = 0.0F;
  for (int a = 0; a < alpha_size_; ++a) {
    const float fa = freqs_(ca, static_cast<std::size_t>(a));
    if (fa == 0.0F) continue;
    float inner = 0.0F;
    for (int b = 0; b < alpha_size_; ++b) {
      const float gb = other.freqs_(cb, static_cast<std::size_t>(b));
      if (gb == 0.0F) continue;
      inner += gb * matrix_->score(static_cast<std::uint8_t>(a),
                                   static_cast<std::uint8_t>(b));
    }
    s += fa * inner;
  }
  return s;
}

}  // namespace salign::msa
