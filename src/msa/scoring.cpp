#include "msa/scoring.hpp"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/rng.hpp"

namespace salign::msa {

double induced_pair_score(const Alignment& aln, std::size_t r1,
                          std::size_t r2,
                          const bio::SubstitutionMatrix& matrix,
                          bio::GapPenalties gaps) {
  const auto& a = aln.row(r1).cells;
  const auto& b = aln.row(r2).cells;
  double score = 0.0;
  // 0: none, 1: gap in a, 2: gap in b.
  int gap_state = 0;
  for (std::size_t c = 0; c < a.size(); ++c) {
    const bool ga = a[c] == Alignment::kGap;
    const bool gb = b[c] == Alignment::kGap;
    if (ga && gb) continue;  // double gap: invisible to this pair
    if (!ga && !gb) {
      score += matrix.score(a[c], b[c]);
      gap_state = 0;
    } else if (ga) {
      score -= gap_state == 1 ? gaps.extend : gaps.open;
      gap_state = 1;
    } else {
      score -= gap_state == 2 ? gaps.extend : gaps.open;
      gap_state = 2;
    }
  }
  return score;
}

namespace {

/// For each row: column index -> 0-based residue ordinal (or -1 for gaps).
std::vector<std::vector<std::int32_t>> residue_ordinals(const Alignment& aln) {
  std::vector<std::vector<std::int32_t>> ord(aln.num_rows());
  for (std::size_t r = 0; r < aln.num_rows(); ++r) {
    ord[r].resize(aln.num_cols());
    std::int32_t k = 0;
    for (std::size_t c = 0; c < aln.num_cols(); ++c)
      ord[r][c] = aln.is_gap(r, c) ? -1 : k++;
  }
  return ord;
}

/// Maps reference row index -> test row index by id.
std::vector<std::size_t> match_rows(const Alignment& test,
                                    const Alignment& reference) {
  std::unordered_map<std::string, std::size_t> by_id;
  for (std::size_t r = 0; r < test.num_rows(); ++r) {
    if (!by_id.emplace(test.row(r).id, r).second)
      throw std::invalid_argument("q_score: duplicate id in test: " +
                                  test.row(r).id);
  }
  std::vector<std::size_t> map(reference.num_rows());
  for (std::size_t r = 0; r < reference.num_rows(); ++r) {
    const auto it = by_id.find(reference.row(r).id);
    if (it == by_id.end())
      throw std::invalid_argument("q_score: reference row missing in test: " +
                                  reference.row(r).id);
    map[r] = it->second;
  }
  return map;
}

}  // namespace

double sp_score(const Alignment& aln, const bio::SubstitutionMatrix& matrix,
                bio::GapPenalties gaps, std::size_t max_pairs,
                std::uint64_t seed) {
  const std::size_t rows = aln.num_rows();
  if (rows < 2) return 0.0;
  const std::size_t total_pairs = rows * (rows - 1) / 2;

  if (max_pairs == 0 || max_pairs >= total_pairs) {
    double s = 0.0;
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = i + 1; j < rows; ++j)
        s += induced_pair_score(aln, i, j, matrix, gaps);
    return s;
  }

  // Deterministic sampled estimate, scaled to the full pair count.
  util::Rng rng(seed);
  double s = 0.0;
  for (std::size_t k = 0; k < max_pairs; ++k) {
    const std::size_t i = rng.below(rows);
    std::size_t j = rng.below(rows - 1);
    if (j >= i) ++j;
    s += induced_pair_score(aln, i, j, matrix, gaps);
  }
  return s * static_cast<double>(total_pairs) / static_cast<double>(max_pairs);
}

double q_score(const Alignment& test, const Alignment& reference) {
  return q_score(test, reference, {});
}

double q_score(const Alignment& test, const Alignment& reference,
               const std::vector<bool>& column_mask) {
  if (reference.num_rows() > 0xFFFF)
    throw std::invalid_argument("q_score: too many rows");
  if (!column_mask.empty() && column_mask.size() != reference.num_cols())
    throw std::invalid_argument("q_score: mask size != reference columns");
  const auto row_map = match_rows(test, reference);
  const auto ref_ord = residue_ordinals(reference);
  const auto test_ord = residue_ordinals(test);

  // Residue ordinal -> test column, per reference row.
  std::vector<std::vector<std::int32_t>> test_col_of(reference.num_rows());
  for (std::size_t r = 0; r < reference.num_rows(); ++r) {
    const std::size_t tr = row_map[r];
    test_col_of[r].assign(test.residue_count(tr), -1);
    for (std::size_t c = 0; c < test.num_cols(); ++c) {
      const std::int32_t k = test_ord[tr][c];
      if (k >= 0) test_col_of[r][static_cast<std::size_t>(k)] =
          static_cast<std::int32_t>(c);
    }
  }

  std::uint64_t ref_pairs = 0;
  std::uint64_t hit_pairs = 0;
  std::vector<std::pair<std::size_t, std::int32_t>> present;
  for (std::size_t c = 0; c < reference.num_cols(); ++c) {
    if (!column_mask.empty() && !column_mask[c]) continue;
    present.clear();
    for (std::size_t r = 0; r < reference.num_rows(); ++r)
      if (ref_ord[r][c] >= 0) present.emplace_back(r, ref_ord[r][c]);
    for (std::size_t x = 0; x < present.size(); ++x)
      for (std::size_t y = x + 1; y < present.size(); ++y) {
        ++ref_pairs;
        const auto [rx, kx] = present[x];
        const auto [ry, ky] = present[y];
        if (test_col_of[rx][static_cast<std::size_t>(kx)] ==
            test_col_of[ry][static_cast<std::size_t>(ky)])
          ++hit_pairs;
      }
  }
  if (ref_pairs == 0) return 0.0;
  return static_cast<double>(hit_pairs) / static_cast<double>(ref_pairs);
}

double tc_score(const Alignment& test, const Alignment& reference) {
  return tc_score(test, reference, {});
}

double tc_score(const Alignment& test, const Alignment& reference,
                const std::vector<bool>& column_mask) {
  if (!column_mask.empty() && column_mask.size() != reference.num_cols())
    throw std::invalid_argument("tc_score: mask size != reference columns");
  const auto row_map = match_rows(test, reference);
  const auto ref_ord = residue_ordinals(reference);
  const auto test_ord = residue_ordinals(test);

  std::vector<std::vector<std::int32_t>> test_col_of(reference.num_rows());
  for (std::size_t r = 0; r < reference.num_rows(); ++r) {
    const std::size_t tr = row_map[r];
    test_col_of[r].assign(test.residue_count(tr), -1);
    for (std::size_t c = 0; c < test.num_cols(); ++c) {
      const std::int32_t k = test_ord[tr][c];
      if (k >= 0) test_col_of[r][static_cast<std::size_t>(k)] =
          static_cast<std::int32_t>(c);
    }
  }

  std::size_t scored_cols = 0;
  std::size_t hit_cols = 0;
  for (std::size_t c = 0; c < reference.num_cols(); ++c) {
    if (!column_mask.empty() && !column_mask[c]) continue;
    std::int32_t target = -2;  // -2: unset
    bool ok = true;
    std::size_t residues = 0;
    for (std::size_t r = 0; r < reference.num_rows(); ++r) {
      const std::int32_t k = ref_ord[r][c];
      if (k < 0) continue;
      ++residues;
      const std::int32_t col = test_col_of[r][static_cast<std::size_t>(k)];
      if (target == -2)
        target = col;
      else if (col != target)
        ok = false;
    }
    if (residues < 2) continue;  // single-residue columns carry no constraint
    ++scored_cols;
    if (ok) ++hit_cols;
  }
  if (scored_cols == 0) return 0.0;
  return static_cast<double>(hit_cols) / static_cast<double>(scored_cols);
}

}  // namespace salign::msa
