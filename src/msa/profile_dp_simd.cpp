// Blocked anti-diagonal (wavefront) PSP profile DP.
//
// The scalar profile_dp's inner loop carries a dependency through the
// gap-in-A state (cx[j] reads cx[j-1] of the same row), so rows cannot be
// vectorized directly, and the occupancy-scaled gap penalties rule out the
// closed-form carry scans the striped integer kernels use (float rounding
// would differ from the sequential subtraction chain). On an anti-diagonal,
// however, all three states read only the two previous diagonals, so a
// whole diagonal updates with element-wise vector max/add — the same layout
// as the engine's pairwise Gotoh kernel (align/engine/gotoh.cpp), with two
// adaptations:
//
//  * scores come from dense PspRowScorer rows, materialized one row block
//    (kRowBlock rows) at a time with the scorer's own saxpy sweeps, and
//    gathered per diagonal — O(block * n) scratch, never O(m * n);
//  * the gap penalties are position-dependent (open/extend scaled by the
//    occupancy of the consumed column), so they are precomputed as gap
//    vectors: forward along A for gap-in-B moves (contiguous in the
//    diagonal's row index), reversed along B for gap-in-A moves (a reversed
//    copy makes the j-indexed factor contiguous in the row index too).
//
// Exactness: every cell performs the same IEEE single-precision multiplies,
// subtractions, adds and maxes as the scalar kernel's per-cell chains, and
// unreachable cells hold exactly align::kNegInf in both (subtracting any
// realistic penalty from the sentinel is absorbed by rounding, and the
// scalar path's `best > kNegInf / 2` clamp only ever fires on exact
// sentinels, where `best + sub` rounds back to the sentinel anyway) — so
// scores are bit-identical and traceback decisions, re-derived from stored
// state values with the scalar kernel's comparison chains, are identical
// too. The randomized differential suite in tests/msa_parallel_test.cpp
// pins this against the retained scalar path.
//
// Memory: forward pass keeps three diagonals, one score block and one
// checkpoint row every K ~ sqrt(m) rows; traceback recomputes one block of
// rows at a time, storing its state values diagonal-major.

#include <algorithm>
#include <cmath>
#include <vector>

#include "align/engine/simd.hpp"
#include "msa/profile_align.hpp"
#include "util/matrix.hpp"

namespace salign::msa::detail {

namespace {

constexpr float kNegInf = align::kNegInf;
using V = align::engine::VecF;
constexpr std::size_t kW = static_cast<std::size_t>(V::kLanes);

/// Forward-pass score-block height. Diagonals inside a block are at most
/// this long, so the wavefront ramp-up costs ~kRowBlock/n of the cells —
/// negligible for the wide DPs this kernel exists for — while the dense
/// score scratch stays at kRowBlock * n floats.
constexpr std::size_t kRowBlock = 32;

/// Checkpoint interval: ~sqrt(m) rounded up to a whole number of score
/// blocks so checkpoint rows coincide with block-final rows. The 1024 cap
/// bounds the traceback block recompute's value storage (three floats per
/// cell, diagonal-major) on extreme inputs.
std::size_t checkpoint_interval(std::size_t m) {
  const auto root = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(m))));
  const std::size_t blocks = (root + kRowBlock - 1) / kRowBlock;
  return std::clamp<std::size_t>(blocks * kRowBlock, kRowBlock, 1024);
}

/// Shared problem description: band geometry (the scalar kernel's formulas,
/// verbatim) plus the precomputed occupancy-scaled gap vectors and the
/// accumulated column-0 / row-0 boundary runs.
struct Geometry {
  std::size_t m = 0, n = 0;
  float open = 0.0F, ext = 0.0F;
  bool banded = false;
  std::vector<std::size_t> lo, hi;  // per row 0..m
  // Gap vectors, padded by kW so diagonal-end vector loads stay in bounds:
  // open_a[i] = open * occ_a[i] (gap-in-B penalties, contiguous in the
  // diagonal row index), rev_open_b[t] = open * occ_b[n-1-t] (gap-in-A
  // penalties; on diagonal d the j-indexed factor lives at (n + i) - d,
  // ascending in the row index i).
  std::vector<float> open_a, ext_a, rev_open_b, rev_ext_b;
  std::vector<float> yborder;  // column-0 gap run per row 0..m
  std::vector<float> seed0_m, seed0_x, seed0_y;  // row-0 boundary

  Geometry(std::size_t m_, std::size_t n_, std::span<const float> occ_a,
           std::span<const float> occ_b, const ProfileAlignOptions& opts)
      : m(m_), n(n_), open(opts.gaps.open), ext(opts.gaps.extend),
        banded(opts.band > 0) {
    const std::size_t diff = m > n ? m - n : n - m;
    const std::size_t eff_band =
        banded ? std::max<std::size_t>(opts.band, 1) + diff : n;
    lo.assign(m + 1, 0);
    hi.assign(m + 1, n);
    if (banded) {
      for (std::size_t i = 0; i <= m; ++i) {
        const auto center = static_cast<std::size_t>(
            static_cast<double>(i) * static_cast<double>(n) /
            static_cast<double>(m));
        lo[i] = center > eff_band ? center - eff_band : 0;
        hi[i] = std::min(n, center + eff_band);
      }
    }
    open_a.assign(m + kW, 0.0F);
    ext_a.assign(m + kW, 0.0F);
    for (std::size_t i = 0; i < m; ++i) {
      open_a[i] = open * occ_a[i];
      ext_a[i] = ext * occ_a[i];
    }
    rev_open_b.assign(n + kW, 0.0F);
    rev_ext_b.assign(n + kW, 0.0F);
    for (std::size_t t = 0; t < n; ++t) {
      rev_open_b[t] = open * occ_b[n - 1 - t];
      rev_ext_b[t] = ext * occ_b[n - 1 - t];
    }
    yborder.assign(m + 1, 0.0F);
    {
      float acc = 0.0F;
      for (std::size_t i = 1; i <= m; ++i) {
        acc -= (i == 1 ? open : ext) * occ_a[i - 1];
        yborder[i] = acc;
      }
    }
    seed0_m.assign(n + 1, kNegInf);
    seed0_x.assign(n + 1, kNegInf);
    seed0_y.assign(n + 1, kNegInf);
    seed0_m[0] = 0.0F;
    {
      float acc = 0.0F;
      for (std::size_t j = 1; j <= hi[0]; ++j) {
        acc -= (j == 1 ? open : ext) * occ_b[j - 1];
        seed0_x[j] = acc;
      }
    }
  }
};

/// Dense scorer rows of one row block: local row r (1-based, absolute row
/// r0 + r) covers B columns cb in [0, n), filled only on the row's in-band
/// range with the scorer's exact saxpy order.
struct ScoreBlock {
  std::size_t stride = 0;
  std::vector<float> buf;

  void fill(const PspRowScorer& scorer, const Geometry& g, std::size_t r0,
            std::size_t rows, std::size_t jcap) {
    stride = g.n;
    buf.resize(rows * stride);
    for (std::size_t r = 1; r <= rows; ++r) {
      const std::size_t i = r0 + r;
      const std::size_t js = std::max<std::size_t>(g.lo[i], 1);
      const std::size_t je = std::min(g.hi[i], jcap);
      if (js > je) continue;
      const std::size_t cb_lo = js - 1;
      const std::size_t len = je - js + 1;
      float* out = buf.data() + (r - 1) * stride;
      psp_fill_row(*scorer.svt, (*scorer.sparse_a)[i - 1], cb_lo, len,
                   out + cb_lo);
    }
  }

  [[nodiscard]] float at(std::size_t r, std::size_t cb) const {
    return buf[(r - 1) * stride + cb];
  }
};

/// Reusable diagonal workspace: 9 state diagonals + score scratch, padded
/// so vector loads/stores at range ends stay inside the allocation.
struct DiagWorkspace {
  std::vector<float> buf;
  std::size_t padded = 0;

  void init(std::size_t rows) {
    padded = rows + 2 + kW;
    buf.assign(10 * padded, kNegInf);
    std::fill_n(buf.begin() + static_cast<std::ptrdiff_t>(9 * padded), padded,
                0.0F);
  }
  [[nodiscard]] float* lane(std::size_t idx) {
    return buf.data() + idx * padded;
  }
};

/// All three state values of a traceback row block [r0, r0 + rows),
/// diagonal-major (cell (local diag d, local row r) at d * stride + r) so
/// the kernel's per-diagonal outputs land with contiguous copies.
struct Block {
  std::size_t r0 = 0;
  std::size_t rows = 0;    // includes the seed row r0
  std::size_t stride = 0;  // == rows
  std::vector<float> m, x, y;

  void init(std::size_t seed_row, std::size_t row_count, std::size_t jcap,
            bool fill) {
    r0 = seed_row;
    rows = row_count;
    stride = row_count;
    const std::size_t need = (row_count + jcap) * stride;
    if (fill) {
      m.assign(need, kNegInf);
      x.assign(need, kNegInf);
      y.assign(need, kNegInf);
    } else {
      m.resize(need);
      x.resize(need);
      y.resize(need);
    }
  }
  [[nodiscard]] std::size_t at(std::size_t i, std::size_t j) const {
    const std::size_t r = i - r0;
    return (r + j) * stride + r;
  }
  [[nodiscard]] float M(std::size_t i, std::size_t j) const {
    return m[at(i, j)];
  }
  [[nodiscard]] float X(std::size_t i, std::size_t j) const {
    return x[at(i, j)];
  }
  [[nodiscard]] float Y(std::size_t i, std::size_t j) const {
    return y[at(i, j)];
  }
};

/// Forward sink: captures the block's final row (the next block's seed and,
/// on checkpoint rows, the checkpoint).
struct LastRowSink {
  std::size_t rows;  // block-local index of the final row
  float* nm;
  float* nx;
  float* ny;

  void diagonal(std::size_t d, bool /*has_b0*/, std::size_t ilo,
                std::size_t ihi, bool has_bd, const float* m0,
                const float* x0, const float* y0) const {
    if (has_bd && d == rows) {
      nm[0] = m0[d];
      nx[0] = x0[d];
      ny[0] = y0[d];
    }
    if (ilo <= rows && rows <= ihi) {
      const std::size_t j = d - rows;
      nm[j] = m0[rows];
      nx[j] = x0[rows];
      ny[j] = y0[rows];
    }
  }
};

/// Short inline copy: block diagonals are a few dozen floats, where an
/// out-of-line memmove call costs more than the copy itself.
inline void copy_floats(const float* src, float* dst, std::size_t len) {
  for (std::size_t t = 0; t < len; ++t) dst[t] = src[t];
}

/// Traceback sink: stores every state value of the block, diagonal-major.
/// Seed-row cells (has_b0) are filled by the caller before the run.
struct BlockSink {
  Block* blk;

  void diagonal(std::size_t d, bool /*has_b0*/, std::size_t ilo,
                std::size_t ihi, bool has_bd, const float* m0,
                const float* x0, const float* y0) const {
    const std::size_t base = d * blk->stride;
    if (ilo <= ihi) {
      const std::size_t len = ihi - ilo + 1;
      copy_floats(m0 + ilo, blk->m.data() + base + ilo, len);
      copy_floats(x0 + ilo, blk->x.data() + base + ilo, len);
      copy_floats(y0 + ilo, blk->y.data() + base + ilo, len);
    }
    if (has_bd) {  // column-0 cell; always above the interior range
      blk->m[base + d] = m0[d];
      blk->x[base + d] = x0[d];
      blk->y[base + d] = y0[d];
    }
  }
};

/// Runs rows [r0+1, r0+rows] x cols [0, jcap] over anti-diagonals, seeded
/// with row r0's state values (seed_* index by column). Invokes
/// sink.diagonal() after every diagonal.
template <typename Sink>
void run_block(const Geometry& g, const ScoreBlock& sb, std::size_t r0,
               std::size_t rows, std::size_t jcap, const float* seed_m,
               const float* seed_x, const float* seed_y, DiagWorkspace& ws,
               Sink&& sink) {
  ws.init(rows);
  float* m2 = ws.lane(0);
  float* x2 = ws.lane(1);
  float* y2 = ws.lane(2);
  float* m1 = ws.lane(3);
  float* x1 = ws.lane(4);
  float* y1 = ws.lane(5);
  float* m0 = ws.lane(6);
  float* x0 = ws.lane(7);
  float* y0 = ws.lane(8);
  float* sub = ws.lane(9);

  const V vneg = V::splat(kNegInf);

  // Monotone band pointers over block-local rows (absolute row r0 + i).
  std::size_t pmin = 1;
  std::size_t pmax = 0;
  auto eff_hi = [&](std::size_t i) { return std::min(g.hi[r0 + i], jcap); };

  const std::size_t last = rows + jcap;
  for (std::size_t d = 0; d <= last; ++d) {
    // Interior cells: i in [1, rows], j = d - i in [1, jcap], inside band.
    std::size_t ilo = 1;
    std::size_t ihi = 0;
    if (d >= 2) {
      ilo = d > jcap ? d - jcap : 1;
      ihi = std::min(rows, d - 1);
      while (pmin <= rows && pmin + eff_hi(pmin) < d) ++pmin;
      while (pmax + 1 <= rows && (pmax + 1) + g.lo[r0 + pmax + 1] <= d)
        ++pmax;
      ilo = std::max(ilo, pmin);
      ihi = std::min(ihi, pmax);
    }

    if (ilo <= ihi) {
      for (std::size_t i = ilo; i <= ihi; ++i)
        sub[i] = sb.at(i, d - i - 1);
      const float* gb_open = g.rev_open_b.data() + ((g.n + ilo) - d);
      const float* gb_ext = g.rev_ext_b.data() + ((g.n + ilo) - d);
      const float* ga_open = g.open_a.data() + (r0 + ilo - 1);
      const float* ga_ext = g.ext_a.data() + (r0 + ilo - 1);
      for (std::size_t i = ilo; i <= ihi; i += kW) {
        const std::size_t off = i - ilo;
        // M from the up-left diagonal; the scalar clamp is a no-op on the
        // exact-sentinel values both paths propagate (see file comment).
        const V mv = align::engine::max3(V::load(m2 + i - 1),
                                         V::load(x2 + i - 1),
                                         V::load(y2 + i - 1)) +
                     V::load(sub + i);
        // Gap in A consuming B's column j-1: left neighbor, B-scaled gaps.
        const V gbo = V::load(gb_open + off);
        const V gbe = V::load(gb_ext + off);
        const V xv = align::engine::max3(V::load(m1 + i) - gbo,
                                         V::load(x1 + i) - gbe,
                                         V::load(y1 + i) - gbo);
        // Gap in B consuming A's column i-1: up neighbor, A-scaled gaps.
        const V gao = V::load(ga_open + off);
        const V gae = V::load(ga_ext + off);
        const V yv = align::engine::max3(V::load(m1 + i - 1) - gao,
                                         V::load(y1 + i - 1) - gae,
                                         V::load(x1 + i - 1) - gao);
        mv.store(m0 + i);
        xv.store(x0 + i);
        yv.store(y0 + i);
      }
      // Neutralize tail-lane overrun and mark the range edges for the next
      // two diagonals (ranges shift by at most one per diagonal).
      vneg.store(m0 + ihi + 1);
      vneg.store(x0 + ihi + 1);
      vneg.store(y0 + ihi + 1);
      m0[ilo - 1] = kNegInf;
      x0[ilo - 1] = kNegInf;
      y0[ilo - 1] = kNegInf;
    }

    // Border cells: row r0 comes from the seed, column 0 from the
    // accumulated leading-gap run (exactly the scalar boundary values).
    const bool has_b0 = d <= jcap;
    if (has_b0) {
      m0[0] = seed_m[d];
      x0[0] = seed_x[d];
      y0[0] = seed_y[d];
    }
    const bool has_bd = d >= 1 && d <= rows;
    if (has_bd) {
      const std::size_t abs_row = r0 + d;
      m0[d] = kNegInf;
      x0[d] = kNegInf;
      y0[d] = g.lo[abs_row] == 0 ? g.yborder[abs_row] : kNegInf;
    }

    sink.diagonal(d, has_b0, ilo, ihi, has_bd, m0, x0, y0);

    // Rotate: current becomes d-1, d-1 becomes d-2, d-2 is recycled.
    std::swap(m2, m1);
    std::swap(x2, x1);
    std::swap(y2, y1);
    std::swap(m1, m0);
    std::swap(x1, x0);
    std::swap(y1, y0);
  }
}

}  // namespace

ProfileAlignResult profile_dp_wavefront(std::size_t m, std::size_t n,
                                        const PspRowScorer& scorer,
                                        std::span<const float> occ_a,
                                        std::span<const float> occ_b,
                                        const ProfileAlignOptions& opts) {
  const Geometry g(m, n, occ_a, occ_b, opts);
  const std::size_t ckpt_k = checkpoint_interval(m);

  // Forward pass: row blocks of kRowBlock, each seeded by its predecessor's
  // final row; every ckpt_k-th row (block-aligned by construction) is kept
  // as a checkpoint for the traceback recompute.
  util::Matrix<float> ck_m(m / ckpt_k + 1, n + 1, kNegInf);
  util::Matrix<float> ck_x(m / ckpt_k + 1, n + 1, kNegInf);
  util::Matrix<float> ck_y(m / ckpt_k + 1, n + 1, kNegInf);
  for (std::size_t j = 0; j <= n; ++j) {
    ck_m(0, j) = g.seed0_m[j];
    ck_x(0, j) = g.seed0_x[j];
    ck_y(0, j) = g.seed0_y[j];
  }

  std::vector<float> cur_m = g.seed0_m, cur_x = g.seed0_x, cur_y = g.seed0_y;
  std::vector<float> next_m(n + 1), next_x(n + 1), next_y(n + 1);
  ScoreBlock sb;
  DiagWorkspace ws;
  for (std::size_t r0 = 0; r0 < m; r0 += kRowBlock) {
    const std::size_t rows = std::min(kRowBlock, m - r0);
    sb.fill(scorer, g, r0, rows, n);
    std::fill(next_m.begin(), next_m.end(), kNegInf);
    std::fill(next_x.begin(), next_x.end(), kNegInf);
    std::fill(next_y.begin(), next_y.end(), kNegInf);
    run_block(g, sb, r0, rows, n, cur_m.data(), cur_x.data(), cur_y.data(),
              ws, LastRowSink{rows, next_m.data(), next_x.data(),
                              next_y.data()});
    cur_m.swap(next_m);
    cur_x.swap(next_x);
    cur_y.swap(next_y);
    const std::size_t row = r0 + rows;
    if (row % ckpt_k == 0) {
      const std::size_t r = row / ckpt_k;
      for (std::size_t j = 0; j <= n; ++j) {
        ck_m(r, j) = cur_m[j];
        ck_x(r, j) = cur_x[j];
        ck_y(r, j) = cur_y[j];
      }
    }
  }

  ProfileAlignResult out;
  std::uint8_t state = kPdM;
  {
    float best = cur_m[n];
    if (cur_x[n] > best) {
      best = cur_x[n];
      state = kPdX;
    }
    if (cur_y[n] > best) {
      best = cur_y[n];
      state = kPdY;
    }
    out.score = best;
  }

  // Traceback: recompute one block of rows (r0, top] at a time from the
  // checkpoint at r0, storing state values; decisions are re-derived from
  // the values with the scalar kernel's exact comparison chains.
  Block blk;
  bool blk_valid = false;
  auto load_block = [&](std::size_t top, std::size_t jcap) {
    const std::size_t r0 = (top - 1) / ckpt_k * ckpt_k;
    const std::size_t r = r0 / ckpt_k;
    blk.init(r0, top - r0 + 1, jcap, g.banded);
    for (std::size_t j = 0; j <= jcap; ++j) {
      const std::size_t at = j * blk.stride;  // seed row: local row 0
      blk.m[at] = ck_m(r, j);
      blk.x[at] = ck_x(r, j);
      blk.y[at] = ck_y(r, j);
    }
    sb.fill(scorer, g, r0, top - r0, jcap);
    run_block(g, sb, r0, top - r0, jcap, &ck_m(r, 0), &ck_x(r, 0),
              &ck_y(r, 0), ws, BlockSink{&blk});
    blk_valid = true;
  };

  const float open = g.open;
  const float ext = g.ext;
  auto came_from_at = [&](std::size_t i, std::size_t j) -> std::uint8_t {
    // Boundary cells mirror the scalar path's preset decisions.
    if (i == 0) return state == kPdX ? kPdX : kPdM;
    if (j == 0) return state == kPdY && g.lo[i] == 0 ? kPdY : kPdM;
    if (!blk_valid || i <= blk.r0) load_block(i, j);
    switch (state) {
      case kPdM: {
        const float pm = blk.M(i - 1, j - 1);
        const float px = blk.X(i - 1, j - 1);
        const float py = blk.Y(i - 1, j - 1);
        float best = pm;
        std::uint8_t from = kPdM;
        if (px > best) {
          best = px;
          from = kPdX;
        }
        if (py > best) from = kPdY;
        return from;
      }
      case kPdX: {
        const float gx_open = open * occ_b[j - 1];
        const float gx_ext = ext * occ_b[j - 1];
        const float open_x = blk.M(i, j - 1) - gx_open;
        const float ext_x = blk.X(i, j - 1) - gx_ext;
        const float via_y = blk.Y(i, j - 1) - gx_open;
        if (ext_x >= open_x && ext_x >= via_y) return kPdX;
        return open_x >= via_y ? kPdM : kPdY;
      }
      default: {
        const float gy_open = open * occ_a[i - 1];
        const float gy_ext = ext * occ_a[i - 1];
        const float open_y = blk.M(i - 1, j) - gy_open;
        const float ext_y = blk.Y(i - 1, j) - gy_ext;
        const float via_x = blk.X(i - 1, j) - gy_open;
        if (ext_y >= open_y && ext_y >= via_x) return kPdY;
        return open_y >= via_x ? kPdM : kPdX;
      }
    }
  };

  std::size_t i = m;
  std::size_t j = n;
  while (i > 0 || j > 0) {
    const std::uint8_t from = came_from_at(i, j);
    switch (state) {
      case kPdM:
        out.ops.push_back(align::EditOp::Match);
        --i;
        --j;
        break;
      case kPdX:
        out.ops.push_back(align::EditOp::GapInA);
        --j;
        break;
      case kPdY:
        out.ops.push_back(align::EditOp::GapInB);
        --i;
        break;
      default: break;
    }
    state = from;
  }
  std::reverse(out.ops.begin(), out.ops.end());
  return out;
}

}  // namespace salign::msa::detail
