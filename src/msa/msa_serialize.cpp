#include "msa/msa_serialize.hpp"

namespace salign::msa {

void write_distance_matrix(par::ByteWriter& w,
                           const util::SymmetricMatrix<double>& m) {
  const std::size_t n = m.size();
  w.u64(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) w.f64(m(i, j));
}

util::SymmetricMatrix<double> read_distance_matrix(par::ByteReader& r) {
  const std::uint64_t n = r.u64();
  // The matrix holds n(n+1)/2 doubles; validate the *triangular* size
  // against the bytes actually present so a bit-flipped n throws a clean
  // underrun instead of asking the allocator for gigabytes. (count() can't
  // express the quadratic growth, hence the explicit check.)
  if (n > (std::uint64_t{1} << 31) ||
      n * (n + 1) / 2 > r.remaining() / sizeof(double))
    throw std::runtime_error("ByteReader: payload underrun");
  util::SymmetricMatrix<double> m(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) m(i, j) = r.f64();
  return m;
}

void write_guide_tree(par::ByteWriter& w, const GuideTree& t) {
  w.u64(t.num_nodes());
  w.u64(t.num_leaves());
  w.u32(static_cast<std::uint32_t>(t.root()));
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    const TreeNode& n = t.node(i);
    w.u32(static_cast<std::uint32_t>(n.left));
    w.u32(static_cast<std::uint32_t>(n.right));
    w.u32(static_cast<std::uint32_t>(n.parent));
    w.f64(n.left_length);
    w.f64(n.right_length);
    w.f64(n.height);
    w.u32(static_cast<std::uint32_t>(n.leaf_index));
  }
}

GuideTree read_guide_tree(par::ByteReader& r) {
  const std::size_t num_nodes = r.count64(40);  // serialized TreeNode bytes
  const std::size_t num_leaves = r.u64();
  const auto root = static_cast<int>(r.u32());
  std::vector<TreeNode> nodes;
  nodes.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    TreeNode n;
    n.left = static_cast<int>(r.u32());
    n.right = static_cast<int>(r.u32());
    n.parent = static_cast<int>(r.u32());
    n.left_length = r.f64();
    n.right_length = r.f64();
    n.height = r.f64();
    n.leaf_index = static_cast<int>(r.u32());
    nodes.push_back(n);
  }
  return GuideTree::from_nodes(std::move(nodes), num_leaves, root);
}

}  // namespace salign::msa
