#include "msa/pairhmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/matrix.hpp"

namespace salign::msa {

namespace {

constexpr double kLogZero = -std::numeric_limits<double>::infinity();

/// Default PairHmmParams::max_forward_cells: 2M cells = 16 MB of doubles.
constexpr std::size_t kDefaultForwardCells = std::size_t{1} << 21;

/// log(exp(x) + exp(y)) without overflow; tolerates -inf operands.
double log_add(double x, double y) {
  if (x == kLogZero) return y;
  if (y == kLogZero) return x;
  const double hi = std::max(x, y);
  const double lo = std::min(x, y);
  return hi + std::log1p(std::exp(lo - hi));
}

double log_add3(double x, double y, double z) {
  return log_add(log_add(x, y), z);
}

}  // namespace

// ---- SparsePosterior -------------------------------------------------------

SparsePosterior::SparsePosterior(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  row_start_.reserve(rows + 1);
}

float SparsePosterior::at(std::size_t i, std::size_t j) const {
  const std::span<const Entry> r = row(i);
  const auto it = std::lower_bound(
      r.begin(), r.end(), j,
      [](const Entry& e, std::size_t col) { return e.col < col; });
  if (it != r.end() && it->col == j) return it->prob;
  return 0.0F;
}

double SparsePosterior::total() const {
  double sum = 0.0;
  for (const Entry& e : entries_) sum += e.prob;
  return sum;
}

SparsePosterior SparsePosterior::transposed() const {
  SparsePosterior out(cols_, rows());
  // Counting sort by column: stable, keeps ascending row order per column.
  std::vector<std::size_t> counts(cols_ + 1, 0);
  for (const Entry& e : entries_) ++counts[e.col + 1];
  for (std::size_t c = 0; c < cols_; ++c) counts[c + 1] += counts[c];
  out.entries_.resize(entries_.size());
  for (std::size_t i = 0; i < rows(); ++i)
    for (const Entry& e : row(i))
      out.entries_[counts[e.col]++] =
          Entry{static_cast<std::uint32_t>(i), e.prob};
  // counts[c] now holds the end of column c's run == start of c+1.
  out.row_start_.assign(cols_ + 1, 0);
  for (std::size_t c = 0; c < cols_; ++c) out.row_start_[c + 1] = counts[c];
  return out;
}

void SparsePosterior::append_row(std::span<const Entry> entries) {
  if (row_start_.size() > rows_)
    throw std::logic_error("SparsePosterior: all rows already appended");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].col >= cols_)
      throw std::out_of_range("SparsePosterior: column out of range");
    if (i > 0 && entries[i].col <= entries[i - 1].col)
      throw std::invalid_argument("SparsePosterior: row not ascending");
  }
  entries_.insert(entries_.end(), entries.begin(), entries.end());
  row_start_.push_back(entries_.size());
}

// ---- PairHmm ---------------------------------------------------------------

PairHmm::PairHmm(const bio::SubstitutionMatrix& matrix, PairHmmParams params)
    : matrix_(&matrix), params_(params) {
  if (params_.gap_open <= 0.0 || params_.gap_open >= 0.5)
    throw std::invalid_argument("PairHmm: gap_open must be in (0, 0.5)");
  if (params_.gap_extend <= 0.0 || params_.gap_extend >= 1.0)
    throw std::invalid_argument("PairHmm: gap_extend must be in (0, 1)");
  if (params_.temperature <= 0.0)
    throw std::invalid_argument("PairHmm: temperature must be positive");

  const bio::Alphabet& alpha = bio::Alphabet::get(matrix.alphabet_kind());
  size_ = alpha.size();
  const auto n = static_cast<std::size_t>(size_);

  // Joint emission p(a, b) ∝ q(a) q(b) exp(S(a,b) / T) with uniform q over
  // the real letters; the wildcard shares the letters' background weight.
  const double q = 1.0 / static_cast<double>(alpha.letters());
  log_bg_.assign(n, std::log(q));
  std::vector<double> joint(n * n);
  double z = 0.0;
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b) {
      const double s = matrix.score(static_cast<std::uint8_t>(a),
                                    static_cast<std::uint8_t>(b));
      joint[a * n + b] = q * q * std::exp(s / params_.temperature);
      z += joint[a * n + b];
    }
  log_match_.resize(n * n);
  for (std::size_t i = 0; i < n * n; ++i)
    log_match_[i] = std::log(joint[i] / z);
}

double PairHmm::emit_match(std::uint8_t a, std::uint8_t b) const {
  return log_match_[static_cast<std::size_t>(a) *
                        static_cast<std::size_t>(size_) +
                    b];
}

SparsePosterior PairHmm::posterior(const bio::Sequence& a,
                                   const bio::Sequence& b) const {
  if (a.empty() || b.empty())
    throw std::invalid_argument("PairHmm::posterior: empty sequence");
  if (a.alphabet_kind() != matrix_->alphabet_kind() ||
      b.alphabet_kind() != matrix_->alphabet_kind())
    throw std::invalid_argument("PairHmm::posterior: alphabet mismatch");

  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const double t_mm = std::log(1.0 - 2.0 * params_.gap_open);
  const double t_mg = std::log(params_.gap_open);        // M -> X or Y
  const double t_gg = std::log(params_.gap_extend);      // X->X / Y->Y
  const double t_gm = std::log(1.0 - params_.gap_extend); // X->M / Y->M

  // Forward. X and Y always use rolling rows; the M rows the posterior
  // needs are either kept whole (small pairs) or checkpointed every K-th
  // row and recomputed one row block at a time while the backward sweep
  // descends — the same row-checkpoint + block-recompute scheme as the
  // engine and profile-DP tracebacks, so no pair ever materializes an
  // O(m·n) forward matrix. Both paths run the identical row recurrence, so
  // posteriors are bit-identical. Cell (i, j) covers prefixes a[0..i) and
  // b[0..j).
  const double s_m = std::log(1.0 - 2.0 * params_.gap_open);
  const double s_g = std::log(params_.gap_open);

  auto trans_into_m = [&](double from_m, double from_x, double from_y,
                          bool from_origin) {
    if (from_origin) return from_m + s_m;  // start -> M
    return log_add3(from_m + t_mm, from_x + t_gm, from_y + t_gm);
  };

  // One forward row: reads M row i-1 (`pm`) and the X/Y rows of i-1, writes
  // M row i (`cm`) and the X/Y rows of i. The single source of the
  // recurrence — the main pass and the block recompute both run it.
  auto forward_row = [&](std::size_t i, const double* pm, double* cm,
                         const double* fxp, double* fxc, const double* fyp,
                         double* fyc) {
    std::fill_n(fxc, n + 1, kLogZero);
    std::fill_n(fyc, n + 1, kLogZero);
    cm[0] = kLogZero;
    {
      const double open = pm[0] + (i == 1 ? s_g : kLogZero);
      const double ext = fyp[0] + t_gg;
      fyc[0] = log_add(open, ext) + log_bg_[a.code(i - 1)];
    }
    for (std::size_t j = 1; j <= n; ++j) {
      cm[j] = trans_into_m(pm[j - 1], fxp[j - 1], fyp[j - 1],
                           i == 1 && j == 1) +
              emit_match(a.code(i - 1), b.code(j - 1));
      // X consumes b[j-1] (gap in a).
      fxc[j] = log_add(cm[j - 1] + t_mg, fxc[j - 1] + t_gg) +
               log_bg_[b.code(j - 1)];
      // Y consumes a[i-1] (gap in b).
      fyc[j] = log_add(pm[j] + t_mg, fyp[j] + t_gg) +
               log_bg_[a.code(i - 1)];
    }
  };

  const std::size_t budget = params_.max_forward_cells != 0
                                 ? params_.max_forward_cells
                                 : kDefaultForwardCells;
  const bool full = (m + 1) * (n + 1) <= budget;
  const std::size_t ckpt_k = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(m)))),
      16, 4096);

  util::Matrix<double> fwd_m;                // full path: every M row
  util::Matrix<double> ck_m, ck_x, ck_y;     // checkpoint path: K-th rows
  std::vector<double> m_prev(n + 1, kLogZero), m_cur(n + 1, kLogZero);
  std::vector<double> fx_prev(n + 1, kLogZero), fx_cur(n + 1, kLogZero);
  std::vector<double> fy_prev(n + 1, kLogZero), fy_cur(n + 1, kLogZero);
  // Virtual start: the start distribution is folded into the first real
  // transition by seeding M(0,0) with log 1 and treating moves out of (0,0)
  // with start probabilities rather than transition probabilities.
  m_prev[0] = 0.0;
  for (std::size_t j = 1; j <= n; ++j) {
    const double open = m_prev[j - 1] + (j == 1 ? s_g : kLogZero);
    const double ext = fx_prev[j - 1] + t_gg;
    fx_prev[j] = log_add(open, ext) + log_bg_[b.code(j - 1)];
  }

  if (full) {
    fwd_m = util::Matrix<double>(m + 1, n + 1, kLogZero);
    for (std::size_t j = 0; j <= n; ++j) fwd_m(0, j) = m_prev[j];
    for (std::size_t i = 1; i <= m; ++i) {
      forward_row(i, &fwd_m(i - 1, 0), &fwd_m(i, 0), fx_prev.data(),
                  fx_cur.data(), fy_prev.data(), fy_cur.data());
      std::swap(fx_prev, fx_cur);
      std::swap(fy_prev, fy_cur);
    }
    for (std::size_t j = 0; j <= n; ++j) m_prev[j] = fwd_m(m, j);
  } else {
    const std::size_t rows = m / ckpt_k + 1;
    ck_m = util::Matrix<double>(rows, n + 1, kLogZero);
    ck_x = util::Matrix<double>(rows, n + 1, kLogZero);
    ck_y = util::Matrix<double>(rows, n + 1, kLogZero);
    for (std::size_t j = 0; j <= n; ++j) {
      ck_m(0, j) = m_prev[j];
      ck_x(0, j) = fx_prev[j];
      ck_y(0, j) = fy_prev[j];
    }
    for (std::size_t i = 1; i <= m; ++i) {
      forward_row(i, m_prev.data(), m_cur.data(), fx_prev.data(),
                  fx_cur.data(), fy_prev.data(), fy_cur.data());
      std::swap(m_prev, m_cur);
      std::swap(fx_prev, fx_cur);
      std::swap(fy_prev, fy_cur);
      if (i % ckpt_k == 0) {
        const std::size_t r = i / ckpt_k;
        for (std::size_t j = 0; j <= n; ++j) {
          ck_m(r, j) = m_prev[j];
          ck_x(r, j) = fx_prev[j];
          ck_y(r, j) = fy_prev[j];
        }
      }
    }
  }
  const double log_z = log_add3(m_prev[n], fx_prev[n], fy_prev[n]);

  // Forward M row accessor for the backward sweep (rows are requested in
  // descending order). The checkpointed path recomputes blocks of rows
  // (r0, r0 + K] seeded from checkpoint r0.
  util::Matrix<double> blk;
  std::vector<double> rx_prev, rx_cur, ry_prev, ry_cur;
  std::size_t blk_r0 = 0;
  bool blk_valid = false;
  auto fwd_row = [&](std::size_t row) -> const double* {
    if (full) return &fwd_m(row, 0);
    if (!blk_valid || row < blk_r0) {
      const std::size_t r0 = (row - 1) / ckpt_k * ckpt_k;
      const std::size_t top = std::min(m, r0 + ckpt_k);
      const std::size_t cr = r0 / ckpt_k;
      if (blk.rows() == 0) {
        blk = util::Matrix<double>(ckpt_k + 1, n + 1, kLogZero);
        rx_prev.resize(n + 1);
        rx_cur.resize(n + 1);
        ry_prev.resize(n + 1);
        ry_cur.resize(n + 1);
      }
      for (std::size_t j = 0; j <= n; ++j) {
        blk(0, j) = ck_m(cr, j);
        rx_prev[j] = ck_x(cr, j);
        ry_prev[j] = ck_y(cr, j);
      }
      for (std::size_t i = r0 + 1; i <= top; ++i) {
        forward_row(i, &blk(i - 1 - r0, 0), &blk(i - r0, 0), rx_prev.data(),
                    rx_cur.data(), ry_prev.data(), ry_cur.data());
        std::swap(rx_prev, rx_cur);
        std::swap(ry_prev, ry_cur);
      }
      blk_r0 = r0;
      blk_valid = true;
    }
    return &blk(row - blk_r0, 0);
  };

  // Backward: B_state(i, j) = P(suffix | state at (i, j)). All three states
  // may end, so B(m, n) = 0 for each. The posterior only ever reads the
  // backward M row directly below the row being computed, so B_M rolls like
  // X and Y and posterior rows are emitted (in reverse) as the sweep runs —
  // the second full (m+1)x(n+1) matrix of the historical implementation is
  // gone and only the forward M matrix remains.
  std::vector<double> bm_next(n + 1, kLogZero), bm_cur(n + 1, kLogZero);
  std::vector<double> bx_next(n + 1, kLogZero), bx_cur(n + 1, kLogZero);
  std::vector<double> by_next(n + 1, kLogZero), by_cur(n + 1, kLogZero);

  // Posterior(i, j) = F_M(i+1, j+1) + B_M(i+1, j+1) - log Z, sparsified.
  // `bwd_row` holds B_M(i+1, 0..n); the forward M row comes through
  // fwd_row(i+1) (stored or block-recomputed).
  std::vector<std::vector<SparsePosterior::Entry>> rows(m);
  const double log_cutoff = std::log(params_.posterior_cutoff);
  auto emit_posterior_row = [&](std::size_t i,
                                const std::vector<double>& bwd_row) {
    const double* fm = fwd_row(i + 1);
    std::vector<SparsePosterior::Entry>& row = rows[i];
    for (std::size_t j = 0; j < n; ++j) {
      const double lp = fm[j + 1] + bwd_row[j + 1] - log_z;
      if (lp > log_cutoff) {
        const double p = std::min(1.0, std::exp(lp));
        row.push_back(SparsePosterior::Entry{static_cast<std::uint32_t>(j),
                                             static_cast<float>(p)});
      }
    }
  };

  bm_next[n] = 0.0;  // B_M(m, n)
  bx_next[n] = 0.0;
  by_next[n] = 0.0;
  for (std::size_t j = n; j-- > 0;) {
    const double e = log_bg_[b.code(j)];
    bx_next[j] = bx_next[j + 1] + t_gg + e;
    bm_next[j] = bx_next[j + 1] + t_mg + e;
    by_next[j] = kLogZero;
  }
  emit_posterior_row(m - 1, bm_next);

  for (std::size_t i = m - 1; i >= 1; --i) {
    std::fill(bx_cur.begin(), bx_cur.end(), kLogZero);
    std::fill(by_cur.begin(), by_cur.end(), kLogZero);
    {
      // j == n column: only Y moves (consume a[i]) are possible.
      const double e = log_bg_[a.code(i)];
      by_cur[n] = by_next[n] + t_gg + e;
      bm_cur[n] = by_next[n] + t_mg + e;
    }
    for (std::size_t j = n; j-- > 0;) {
      const double em = emit_match(a.code(i), b.code(j)) + bm_next[j + 1];
      const double ex = log_bg_[b.code(j)] + bx_cur[j + 1];
      const double ey = log_bg_[a.code(i)] + by_next[j];
      bm_cur[j] = log_add3(em + t_mm, ex + t_mg, ey + t_mg);
      bx_cur[j] = log_add(em + t_gm, ex + t_gg);
      by_cur[j] = log_add(em + t_gm, ey + t_gg);
    }
    emit_posterior_row(i - 1, bm_cur);
    std::swap(bm_next, bm_cur);
    std::swap(bx_next, bx_cur);
    std::swap(by_next, by_cur);
  }

  SparsePosterior out(m, n);
  for (std::size_t i = 0; i < m; ++i) out.append_row(rows[i]);
  return out;
}

MeaResult PairHmm::mea_align(const SparsePosterior& posterior) {
  const std::size_t m = posterior.rows();
  const std::size_t n = posterior.cols();
  MeaResult res;
  if (m == 0 || n == 0) return res;

  // NW maximizing the sum of matched posteriors; gap moves are free. The
  // sparse rows keep this O(m n) with tiny constants.
  util::Matrix<float> dp(m + 1, n + 1, 0.0F);
  util::Matrix<std::uint8_t> from(m + 1, n + 1, 0);  // 0=diag 1=up 2=left
  for (std::size_t i = 1; i <= m; ++i) {
    const std::span<const SparsePosterior::Entry> row = posterior.row(i - 1);
    std::size_t next = 0;
    for (std::size_t j = 1; j <= n; ++j) {
      float match = 0.0F;
      while (next < row.size() && row[next].col + 1 < j) ++next;
      if (next < row.size() && row[next].col + 1 == j) match = row[next].prob;
      float best = dp(i - 1, j - 1) + match;
      std::uint8_t dir = 0;
      if (dp(i - 1, j) > best) {
        best = dp(i - 1, j);
        dir = 1;
      }
      if (dp(i, j - 1) > best) {
        best = dp(i, j - 1);
        dir = 2;
      }
      dp(i, j) = best;
      from(i, j) = dir;
    }
  }
  res.expected_correct = dp(m, n);
  res.expected_accuracy =
      dp(m, n) / static_cast<double>(std::min(m, n));

  std::size_t i = m;
  std::size_t j = n;
  while (i > 0 && j > 0) {
    switch (from(i, j)) {
      case 0:
        res.matches.emplace_back(static_cast<std::uint32_t>(i - 1),
                                 static_cast<std::uint32_t>(j - 1));
        --i;
        --j;
        break;
      case 1: --i; break;
      default: --j; break;
    }
  }
  std::reverse(res.matches.begin(), res.matches.end());
  return res;
}

}  // namespace salign::msa
