#include "msa/refinement.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "msa/profile.hpp"
#include "msa/profile_align.hpp"
#include "msa/scoring.hpp"

namespace salign::msa {

namespace {

std::vector<double> gather_weights(std::span<const double> weights,
                                   std::span<const std::size_t> rows) {
  std::vector<double> out;
  if (weights.empty()) return out;
  out.reserve(rows.size());
  for (std::size_t r : rows) out.push_back(weights[r]);
  return out;
}

}  // namespace

std::size_t refine(Alignment& aln, const GuideTree& tree,
                   std::span<const std::size_t> row_of_leaf,
                   const bio::SubstitutionMatrix& matrix,
                   const RefineOptions& opts,
                   std::span<const double> weights) {
  if (row_of_leaf.size() != tree.num_leaves())
    throw std::invalid_argument("refine: row_of_leaf size mismatch");
  if (!weights.empty() && weights.size() != aln.num_rows())
    throw std::invalid_argument("refine: weights size mismatch");
  if (aln.num_rows() < 2 || tree.num_leaves() < 2) return 0;

  const std::size_t all_rows = aln.num_rows();
  std::size_t accepted = 0;

  for (int pass = 0; pass < opts.passes; ++pass) {
    bool any_accept = false;
    for (int id : tree.postorder()) {
      if (id == tree.root()) continue;

      // Bipartition rows by the edge above node `id`.
      std::vector<std::size_t> group_a;
      for (int leaf : tree.leaves_under(id))
        group_a.push_back(row_of_leaf[static_cast<std::size_t>(leaf)]);
      std::sort(group_a.begin(), group_a.end());
      if (group_a.empty() || group_a.size() == all_rows) continue;

      std::vector<std::size_t> group_b;
      group_b.reserve(all_rows - group_a.size());
      {
        std::size_t ai = 0;
        for (std::size_t r = 0; r < all_rows; ++r) {
          if (ai < group_a.size() && group_a[ai] == r)
            ++ai;
          else
            group_b.push_back(r);
        }
      }

      // Degapped sub-alignments and their profiles.
      Alignment sub_a = aln.subset(group_a);
      Alignment sub_b = aln.subset(group_b);
      sub_a.strip_all_gap_columns();
      sub_b.strip_all_gap_columns();
      const std::vector<double> wa = gather_weights(weights, group_a);
      const std::vector<double> wb = gather_weights(weights, group_b);
      const Profile pa(sub_a, matrix, wa);
      const Profile pb(sub_b, matrix, wb);

      ProfileAlignOptions po;
      po.gaps = opts.gaps;

      const std::vector<align::EditOp> current =
          implied_path(aln, group_a, group_b);
      const float current_score = score_profile_path(pa, pb, current, po);
      const ProfileAlignResult fresh = align_profiles(pa, pb, po);
      if (fresh.score <= current_score + opts.min_gain) continue;

      // Candidate alignment in the original row order.
      const Alignment merged = merge_alignments(sub_a, sub_b, fresh.ops);
      std::vector<AlignedRow> rows(all_rows);
      for (std::size_t x = 0; x < group_a.size(); ++x)
        rows[group_a[x]] = merged.row(x);
      for (std::size_t x = 0; x < group_b.size(); ++x)
        rows[group_b[x]] = merged.row(group_a.size() + x);
      Alignment candidate(std::move(rows), aln.alphabet_kind());

      if (opts.sp_gate) {
        // Only cross-group pairs change under a bipartition re-alignment
        // (within-group columns are carried over verbatim), so the SP
        // delta needs |A|*|B| induced pair scores, not all pairs.
        double delta = 0.0;
        for (const std::size_t ra : group_a)
          for (const std::size_t rb : group_b)
            delta += induced_pair_score(candidate, ra, rb, matrix,
                                        opts.gaps) -
                     induced_pair_score(aln, ra, rb, matrix, opts.gaps);
        if (delta <= opts.min_gain) continue;
      }

      aln = std::move(candidate);
      ++accepted;
      any_accept = true;
    }
    if (!any_accept) break;  // converged
  }
  return accepted;
}

}  // namespace salign::msa
