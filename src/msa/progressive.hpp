#pragma once

#include <functional>
#include <span>
#include <vector>

#include "bio/sequence.hpp"
#include "bio/substitution_matrix.hpp"
#include "msa/alignment.hpp"
#include "msa/guide_tree.hpp"
#include "msa/profile_align.hpp"

namespace salign::msa {

/// Options of the progressive driver.
struct ProgressiveOptions {
  bio::GapPenalties gaps;
  /// Per-sequence weights (CLUSTALW-style); empty = uniform.
  std::vector<double> weights;
  /// Band half-width for the profile DP; 0 = full. A band provider (below)
  /// takes precedence when set.
  std::size_t band = 0;
  /// Optional per-merge band chooser: given the two sub-alignments about to
  /// be merged, returns the band half-width (0 = full DP). The MAFFT-style
  /// aligner plugs its FFT anchor detection in here. Must be thread-safe
  /// when threads > 1 (merges of independent subtrees call it
  /// concurrently).
  std::function<std::size_t(const Alignment&, const Alignment&)> band_provider;
  /// Worker threads of the guide-tree task schedule (1 = the historical
  /// serial postorder walk). Independent subtree merges run concurrently on
  /// the shared util::ThreadPool; the output is bit-identical for every
  /// value — each merge is a pure function of its children.
  unsigned threads = 1;
  /// Per-merge full-traceback cell budget (ProfileAlignOptions::
  /// max_trace_cells); 0 = the engine default. Output-invariant: merges
  /// over budget checkpoint their traceback instead of materializing it.
  std::size_t max_trace_cells = 0;
};

/// Aligns `seqs` progressively along `tree` (leaves index into `seqs`),
/// merging children profiles bottom-up with PSP profile-profile alignment.
/// The resulting row order is the tree's left-to-right leaf order.
[[nodiscard]] Alignment progressive_align(std::span<const bio::Sequence> seqs,
                                          const GuideTree& tree,
                                          const bio::SubstitutionMatrix& matrix,
                                          const ProgressiveOptions& opts = {});

}  // namespace salign::msa
