#include "msa/polish.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "msa/profile.hpp"
#include "msa/profile_align.hpp"
#include "msa/scoring.hpp"

namespace salign::msa {

namespace {

using align::EditOp;

/// Re-inserts row `row_index`'s re-aligned version into `rest` (the
/// alignment of all other rows, in their original relative order) and
/// restores the original row order.
Alignment reassemble(const Alignment& rest, const Alignment& row_aln,
                     std::span<const EditOp> ops, std::size_t row_index) {
  const Alignment merged = merge_alignments(rest, row_aln, ops);
  // merged rows: rest rows in order, then the polished row last.
  std::vector<std::size_t> order;
  order.reserve(merged.num_rows());
  for (std::size_t r = 0; r < row_index; ++r) order.push_back(r);
  order.push_back(merged.num_rows() - 1);
  for (std::size_t r = row_index; r + 1 < merged.num_rows(); ++r)
    order.push_back(r);
  return merged.subset(order);
}

}  // namespace

std::vector<double> row_profile_scores(const Alignment& aln,
                                       const bio::SubstitutionMatrix& matrix) {
  if (aln.empty()) return {};
  const Profile prof(aln, matrix);
  std::vector<double> scores(aln.num_rows(), 0.0);
  for (std::size_t r = 0; r < aln.num_rows(); ++r) {
    double total = 0.0;
    std::size_t residues = 0;
    for (std::size_t c = 0; c < aln.num_cols(); ++c) {
      const std::uint8_t code = aln.cell(r, c);
      if (code == Alignment::kGap) continue;
      ++residues;
      // Mean substitution score of this residue against the column's
      // residue distribution (the row's own mass included; the bias is
      // uniform across rows, which is all ranking needs).
      double col = 0.0;
      for (int a = 0; a < prof.alphabet_size(); ++a) {
        const float f = prof.freq(c, static_cast<std::uint8_t>(a));
        if (f > 0.0F)
          col += static_cast<double>(f) *
                 matrix.score(code, static_cast<std::uint8_t>(a));
      }
      total += col;
    }
    scores[r] = residues > 0 ? total / static_cast<double>(residues)
                             : -std::numeric_limits<double>::infinity();
  }
  return scores;
}

std::size_t polish_divergent_rows(Alignment& aln,
                                  const bio::SubstitutionMatrix& matrix,
                                  const PolishOptions& opts) {
  if (opts.fraction < 0.0 || opts.fraction > 1.0)
    throw std::invalid_argument("polish: fraction must be in [0, 1]");
  if (opts.passes < 0)
    throw std::invalid_argument("polish: passes must be >= 0");
  if (aln.num_rows() < 3) return 0;  // leave-one-out needs a meaningful rest

  std::size_t accepted = 0;
  for (int pass = 0; pass < opts.passes; ++pass) {
    const std::vector<double> scores = row_profile_scores(aln, matrix);
    std::vector<std::size_t> order(aln.num_rows());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (scores[a] != scores[b]) return scores[a] < scores[b];
      return a < b;
    });

    std::size_t take = static_cast<std::size_t>(
        opts.fraction * static_cast<double>(aln.num_rows()));
    take = std::max<std::size_t>(take, 1);
    if (opts.max_rows > 0) take = std::min(take, opts.max_rows);
    order.resize(take);
    std::sort(order.begin(), order.end());  // deterministic sweep order

    std::size_t accepted_this_pass = 0;
    for (const std::size_t r : order) {
      // Split: row r vs the rest (original relative order preserved).
      std::vector<std::size_t> rest_rows;
      rest_rows.reserve(aln.num_rows() - 1);
      for (std::size_t i = 0; i < aln.num_rows(); ++i)
        if (i != r) rest_rows.push_back(i);

      Alignment rest = aln.subset(rest_rows);
      rest.strip_all_gap_columns();
      Alignment row_aln = aln.subset(std::vector<std::size_t>{r});
      row_aln.strip_all_gap_columns();
      if (row_aln.num_cols() == 0) continue;

      const Profile prest(rest, matrix);
      const Profile prow(row_aln, matrix);
      ProfileAlignOptions po;
      po.gaps = opts.gaps;

      // Propose a new placement with the PSP aligner, but gate acceptance
      // on the alignment's real objective — the sum-of-pairs score ("score
      // of the global map", paper §2.2). Only the pairs touching row r
      // change: reassembly inserts identical gap columns into every rest
      // row, which is invisible to their induced pairwise alignments.
      const ProfileAlignResult fresh = align_profiles(prest, prow, po);

      double old_contrib = 0.0;
      for (std::size_t o = 0; o < aln.num_rows(); ++o)
        if (o != r)
          old_contrib += induced_pair_score(aln, r, o, matrix, opts.gaps);

      Alignment candidate = reassemble(rest, row_aln, fresh.ops, r);
      candidate.strip_all_gap_columns();
      double new_contrib = 0.0;
      for (std::size_t o = 0; o < candidate.num_rows(); ++o)
        if (o != r)
          new_contrib +=
              induced_pair_score(candidate, r, o, matrix, opts.gaps);

      if (new_contrib > old_contrib + opts.min_gain) {
        aln = std::move(candidate);
        ++accepted;
        ++accepted_this_pass;
      }
    }
    if (accepted_this_pass == 0) break;  // converged
  }
  return accepted;
}

}  // namespace salign::msa
