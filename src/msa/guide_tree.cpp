#include "msa/guide_tree.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace salign::msa {

namespace {

void check_input(const util::SymmetricMatrix<double>& d) {
  if (d.size() == 0) throw std::invalid_argument("GuideTree: empty matrix");
}

}  // namespace

GuideTree GuideTree::upgma(const util::SymmetricMatrix<double>& distances) {
  check_input(distances);
  const std::size_t n = distances.size();
  GuideTree tree;
  tree.num_leaves_ = n;
  tree.nodes_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    tree.nodes_[i].leaf_index = static_cast<int>(i);
  if (n == 1) {
    tree.root_ = 0;
    return tree;
  }

  // Slot-reuse storage: slot s holds an active cluster whose node id is
  // slot_node[s]; a merge writes the new cluster into the lower slot and
  // retires the higher one. Nearest-neighbour caching makes the whole
  // construction ~O(n^2) in practice (Murtagh 1984), which matters because
  // every Sample-Align-D bucket builds one of these trees.
  util::Matrix<float> d(n, n, 0.0F);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) {
      const auto v = static_cast<float>(distances(i, j));
      d(i, j) = v;
      d(j, i) = v;
    }

  std::vector<int> slot_node(n);
  for (std::size_t s = 0; s < n; ++s) slot_node[s] = static_cast<int>(s);
  std::vector<bool> active(n, true);
  std::vector<double> csize(n, 1.0);
  std::vector<std::size_t> nn(n, 0);
  std::vector<float> nnd(n, 0.0F);

  auto recompute_nn = [&](std::size_t s) {
    float best = std::numeric_limits<float>::infinity();
    std::size_t arg = s;
    for (std::size_t t = 0; t < n; ++t) {
      if (t == s || !active[t]) continue;
      if (d(s, t) < best) {
        best = d(s, t);
        arg = t;
      }
    }
    nn[s] = arg;
    nnd[s] = best;
  };
  for (std::size_t s = 0; s < n; ++s) recompute_nn(s);

  std::size_t remaining = n;
  while (remaining > 1) {
    // Global arg-min over cached nearest neighbours (lowest slot on ties).
    float best = std::numeric_limits<float>::infinity();
    std::size_t sa = 0;
    for (std::size_t s = 0; s < n; ++s)
      if (active[s] && nnd[s] < best) {
        best = nnd[s];
        sa = s;
      }
    std::size_t sb = nn[sa];
    if (sb < sa) std::swap(sa, sb);

    const int a = slot_node[sa];
    const int b = slot_node[sb];
    const double na = csize[sa];
    const double nb = csize[sb];

    TreeNode parent;
    parent.left = a;
    parent.right = b;
    parent.height = static_cast<double>(d(sa, sb)) / 2.0;
    parent.left_length = std::max(
        0.0, parent.height - tree.nodes_[static_cast<std::size_t>(a)].height);
    parent.right_length = std::max(
        0.0, parent.height - tree.nodes_[static_cast<std::size_t>(b)].height);
    const int pid = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(parent);
    tree.nodes_[static_cast<std::size_t>(a)].parent = pid;
    tree.nodes_[static_cast<std::size_t>(b)].parent = pid;

    // Average-linkage distances for the merged cluster, written into sa.
    active[sb] = false;
    --remaining;
    for (std::size_t t = 0; t < n; ++t) {
      if (!active[t] || t == sa) continue;
      const auto v = static_cast<float>(
          (na * static_cast<double>(d(sa, t)) +
           nb * static_cast<double>(d(sb, t))) /
          (na + nb));
      d(sa, t) = v;
      d(t, sa) = v;
    }
    slot_node[sa] = pid;
    csize[sa] = na + nb;

    if (remaining == 1) {
      tree.root_ = pid;
      break;
    }

    // Refresh caches: the merged slot from scratch; any slot whose cached
    // neighbour was sa or sb from scratch; others only improve via sa.
    recompute_nn(sa);
    for (std::size_t t = 0; t < n; ++t) {
      if (!active[t] || t == sa) continue;
      if (nn[t] == sa || nn[t] == sb) {
        recompute_nn(t);
      } else if (d(t, sa) < nnd[t]) {
        nn[t] = sa;
        nnd[t] = d(t, sa);
      }
    }
  }

  return tree;
}

GuideTree GuideTree::from_nodes(std::vector<TreeNode> nodes,
                                std::size_t num_leaves, int root) {
  if (nodes.empty() || num_leaves == 0 || num_leaves > nodes.size())
    throw std::invalid_argument("GuideTree::from_nodes: bad shape");
  if (root < 0 || static_cast<std::size_t>(root) >= nodes.size())
    throw std::invalid_argument("GuideTree::from_nodes: bad root");
  const auto n = static_cast<int>(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const TreeNode& node = nodes[i];
    if (node.left >= n || node.right >= n || node.parent >= n)
      throw std::invalid_argument("GuideTree::from_nodes: bad child index");
    const bool leaf = node.left < 0;
    if (leaf != (i < num_leaves) || (leaf && node.leaf_index < 0))
      throw std::invalid_argument("GuideTree::from_nodes: bad leaf layout");
  }
  GuideTree tree;
  tree.nodes_ = std::move(nodes);
  tree.num_leaves_ = num_leaves;
  tree.root_ = root;
  return tree;
}

GuideTree GuideTree::neighbor_joining(
    const util::SymmetricMatrix<double>& distances) {
  check_input(distances);
  const std::size_t n = distances.size();
  GuideTree tree;
  tree.num_leaves_ = n;
  tree.nodes_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    tree.nodes_[i].leaf_index = static_cast<int>(i);
  if (n == 1) {
    tree.root_ = 0;
    return tree;
  }

  util::Matrix<double> d(2 * n - 1, 2 * n - 1, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) d(i, j) = d(j, i) = distances(i, j);

  std::vector<int> active;
  for (std::size_t i = 0; i < n; ++i) active.push_back(static_cast<int>(i));

  while (active.size() > 2) {
    const auto r = active.size();
    // Row sums over active set.
    std::vector<double> rowsum(r, 0.0);
    for (std::size_t x = 0; x < r; ++x)
      for (std::size_t y = 0; y < r; ++y)
        if (x != y)
          rowsum[x] += d(static_cast<std::size_t>(active[x]),
                         static_cast<std::size_t>(active[y]));

    // Minimize the NJ Q criterion, deterministic tie-break.
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0;
    std::size_t bj = 1;
    for (std::size_t x = 0; x < r; ++x)
      for (std::size_t y = x + 1; y < r; ++y) {
        const double q = (static_cast<double>(r) - 2.0) *
                             d(static_cast<std::size_t>(active[x]),
                               static_cast<std::size_t>(active[y])) -
                         rowsum[x] - rowsum[y];
        if (q < best) {
          best = q;
          bi = x;
          bj = y;
        }
      }

    const int a = active[bi];
    const int b = active[bj];
    const double dab = d(static_cast<std::size_t>(a), static_cast<std::size_t>(b));
    const double delta =
        (rowsum[bi] - rowsum[bj]) / (static_cast<double>(r) - 2.0);
    double la = 0.5 * (dab + delta);
    double lb = 0.5 * (dab - delta);
    la = std::max(0.0, la);
    lb = std::max(0.0, lb);

    TreeNode parent;
    parent.left = a;
    parent.right = b;
    parent.left_length = la;
    parent.right_length = lb;
    const int pid = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(parent);
    tree.nodes_[static_cast<std::size_t>(a)].parent = pid;
    tree.nodes_[static_cast<std::size_t>(b)].parent = pid;

    for (int c : active) {
      if (c == a || c == b) continue;
      const double v = 0.5 * (d(static_cast<std::size_t>(a),
                                static_cast<std::size_t>(c)) +
                              d(static_cast<std::size_t>(b),
                                static_cast<std::size_t>(c)) -
                              dab);
      d(static_cast<std::size_t>(pid), static_cast<std::size_t>(c)) =
          std::max(0.0, v);
      d(static_cast<std::size_t>(c), static_cast<std::size_t>(pid)) =
          std::max(0.0, v);
    }

    active.erase(active.begin() + static_cast<long>(bj));
    active.erase(active.begin() + static_cast<long>(bi));
    active.push_back(pid);
    std::sort(active.begin(), active.end());
  }

  // Join the final two clusters under the root, splitting the remaining
  // distance at the midpoint.
  const int a = active[0];
  const int b = active[1];
  const double dab =
      std::max(0.0, d(static_cast<std::size_t>(a), static_cast<std::size_t>(b)));
  TreeNode root;
  root.left = a;
  root.right = b;
  root.left_length = dab / 2.0;
  root.right_length = dab / 2.0;
  const int pid = static_cast<int>(tree.nodes_.size());
  tree.nodes_.push_back(root);
  tree.nodes_[static_cast<std::size_t>(a)].parent = pid;
  tree.nodes_[static_cast<std::size_t>(b)].parent = pid;
  tree.root_ = pid;
  return tree;
}

std::vector<int> GuideTree::postorder() const {
  std::vector<int> order;
  order.reserve(nodes_.size());
  // Iterative post-order to survive deep (caterpillar) trees.
  std::vector<std::pair<int, bool>> stack;
  stack.emplace_back(root_, false);
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    if (id < 0) continue;
    const TreeNode& nd = nodes_[static_cast<std::size_t>(id)];
    if (expanded || nd.left < 0) {
      order.push_back(id);
    } else {
      stack.emplace_back(id, true);
      stack.emplace_back(nd.right, false);
      stack.emplace_back(nd.left, false);
    }
  }
  return order;
}

std::vector<int> GuideTree::leaves_under(int i) const {
  std::vector<int> out;
  std::vector<int> stack{i};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    const TreeNode& nd = nodes_[static_cast<std::size_t>(id)];
    if (nd.left < 0) {
      out.push_back(nd.leaf_index);
    } else {
      stack.push_back(nd.right);
      stack.push_back(nd.left);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> GuideTree::leaf_weights() const {
  std::vector<double> weights(num_leaves_, 0.0);
  // Count leaves below every node once.
  std::vector<std::size_t> leaves_below(nodes_.size(), 0);
  for (int id : postorder()) {
    const TreeNode& nd = nodes_[static_cast<std::size_t>(id)];
    if (nd.left < 0)
      leaves_below[static_cast<std::size_t>(id)] = 1;
    else
      leaves_below[static_cast<std::size_t>(id)] =
          leaves_below[static_cast<std::size_t>(nd.left)] +
          leaves_below[static_cast<std::size_t>(nd.right)];
  }
  for (std::size_t leaf = 0; leaf < num_leaves_; ++leaf) {
    int id = static_cast<int>(leaf);
    double w = 0.0;
    while (nodes_[static_cast<std::size_t>(id)].parent >= 0) {
      const int pid = nodes_[static_cast<std::size_t>(id)].parent;
      const TreeNode& p = nodes_[static_cast<std::size_t>(pid)];
      // NJ can emit negative branch lengths on near-degenerate distance
      // matrices; CLUSTALW clamps them to zero for weighting, and so do we
      // (a negative leaf weight would corrupt profile frequencies).
      const double len =
          std::max(0.0, p.left == id ? p.left_length : p.right_length);
      w += len / static_cast<double>(leaves_below[static_cast<std::size_t>(id)]);
      id = pid;
    }
    weights[static_cast<std::size_t>(
        nodes_[leaf].leaf_index)] = w;
  }
  // Normalize to mean 1; uniform fallback when all weights vanish
  // (e.g. star-like trees with zero branch lengths).
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return std::vector<double>(num_leaves_, 1.0);
  const double scale = static_cast<double>(num_leaves_) / total;
  for (double& w : weights) w *= scale;
  // Floor: identical duplicates sit on zero-length branches and would get
  // weight 0, which breaks profile subgroups made entirely of duplicates.
  for (double& w : weights) w = std::max(w, 1e-3);
  return weights;
}

std::string GuideTree::newick(std::span<const std::string> names) const {
  if (names.size() != num_leaves_)
    throw std::invalid_argument("newick: name count != leaf count");
  std::ostringstream os;
  // Iterative rendering via explicit stack of (node, child-phase).
  struct Frame {
    int id;
    int phase;  // 0: open, 1: between children, 2: close
    double length;
    bool has_length;
  };
  std::vector<Frame> stack{{root_, 0, 0.0, false}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const TreeNode& nd = nodes_[static_cast<std::size_t>(f.id)];
    if (nd.left < 0) {
      os << names[static_cast<std::size_t>(nd.leaf_index)];
      if (f.has_length) os << ':' << f.length;
      continue;
    }
    switch (f.phase) {
      case 0:
        os << '(';
        stack.push_back({f.id, 1, f.length, f.has_length});
        stack.push_back({nd.left, 0, nd.left_length, true});
        break;
      case 1:
        os << ',';
        stack.push_back({f.id, 2, f.length, f.has_length});
        stack.push_back({nd.right, 0, nd.right_length, true});
        break;
      case 2:
        os << ')';
        if (f.has_length) os << ':' << f.length;
        break;
      default: break;
    }
  }
  os << ';';
  return os.str();
}

}  // namespace salign::msa
