#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bio/substitution_matrix.hpp"
#include "msa/alignment.hpp"

namespace salign::msa {

/// Sum-of-pairs score of an alignment: for every row pair, the affine-gap
/// score of the induced pairwise alignment (columns gapped in both rows are
/// skipped, per the standard SP definition). This is the "score of the
/// global map" the paper's algorithm statement maximizes.
///
/// Exact SP is O(rows^2 * cols); for large alignments pass `max_pairs` to
/// score a deterministic uniform sample of row pairs and scale up the
/// estimate (the figure benches use this on the 2000-sequence glue).
[[nodiscard]] double sp_score(const Alignment& aln,
                              const bio::SubstitutionMatrix& matrix,
                              bio::GapPenalties gaps,
                              std::size_t max_pairs = 0,
                              std::uint64_t seed = 7);

/// Affine-gap score of the pairwise alignment induced by rows r1 and r2
/// (double-gap columns skipped) — one term of sp_score. Exposed for
/// incremental SP updates: edits that touch a single row change only that
/// row's terms.
[[nodiscard]] double induced_pair_score(const Alignment& aln, std::size_t r1,
                                        std::size_t r2,
                                        const bio::SubstitutionMatrix& matrix,
                                        bio::GapPenalties gaps);

/// Q accuracy (Edgar 2004, the PREFAB measure): the fraction of residue
/// pairs aligned in `reference` that are also aligned in `test`. Rows are
/// matched by id; reference rows absent from `test` are an error. Returns 1
/// for reference-vs-itself, and 0 when the reference has no aligned pairs.
[[nodiscard]] double q_score(const Alignment& test, const Alignment& reference);

/// Q restricted to the reference columns where `column_mask` is true — the
/// BAliBASE convention of scoring only the annotated core blocks. An empty
/// mask scores every column; a non-empty mask must have one entry per
/// reference column.
[[nodiscard]] double q_score(const Alignment& test, const Alignment& reference,
                             const std::vector<bool>& column_mask);

/// TC (total column) score: fraction of reference columns whose complete
/// residue set is reproduced as one column of `test`.
[[nodiscard]] double tc_score(const Alignment& test,
                              const Alignment& reference);

/// TC restricted to masked (core) reference columns, as in q_score.
[[nodiscard]] double tc_score(const Alignment& test,
                              const Alignment& reference,
                              const std::vector<bool>& column_mask);

}  // namespace salign::msa
