#pragma once

#include "bio/substitution_matrix.hpp"
#include "msa/msa_algorithm.hpp"

namespace salign::msa {

/// Configuration of the T-Coffee-style aligner.
struct TCoffeeOptions {
  /// Consistency scoring is O(N^2 L) in memory for the extended library;
  /// inputs larger than this are rejected. PREFAB-style sets (20-30
  /// sequences) — the regime the paper evaluates T-Coffee in — fit easily.
  std::size_t max_sequences = 64;
  /// Include one local (Smith–Waterman) alignment per pair in the primary
  /// library alongside the global one (T-Coffee mixes ClustalW + Lalign
  /// sources; we use our own kernels).
  bool add_local_library = true;
  /// Gap penalties of the consistency DP. T-Coffee relies on the extended
  /// library to place gaps and uses a small opening penalty on its
  /// 0-100 identity-weighted scores.
  float gap_open = 50.0F;
  float gap_extend = 1.0F;
  /// Worker threads of the stage-1 pairwise library/distance pass and of
  /// the stage-3 progressive merge schedule (1 = serial). The library is
  /// assembled serially in deterministic pair order and each merge is a
  /// pure function of its children, so any value produces bit-identical
  /// alignments.
  unsigned threads = 1;
};

/// "MiniCoffee": a from-scratch consistency-based aligner following
/// T-Coffee (Notredame, Higgins & Heringa, JMB 2000), a Table 2 comparator:
///
///   1. primary library: every pair globally (and optionally locally)
///      aligned; each aligned residue pair enters the library weighted by
///      the alignment's percent identity;
///   2. library extension through intermediate sequences
///      (min-of-two-weights triplet rule);
///   3. progressive alignment maximizing extended-library consistency
///      instead of substitution scores.
class TCoffeeAligner final : public MsaAlgorithm {
 public:
  explicit TCoffeeAligner(TCoffeeOptions options = {},
                          const bio::SubstitutionMatrix& matrix =
                              bio::SubstitutionMatrix::blosum62());

  [[nodiscard]] Alignment align(
      std::span<const bio::Sequence> seqs) const override;

  [[nodiscard]] std::string name() const override { return "MiniCoffee"; }

 private:
  TCoffeeOptions options_;
  const bio::SubstitutionMatrix* matrix_;
};

}  // namespace salign::msa
