#include "msa/clustalw_like.hpp"

#include <stdexcept>
#include <unordered_map>

#include "align/distance.hpp"
#include "msa/guide_tree.hpp"
#include "msa/progressive.hpp"
#include "util/matrix.hpp"

namespace salign::msa {

ClustalWAligner::ClustalWAligner(ClustalWOptions options,
                                 const bio::SubstitutionMatrix& matrix)
    : options_(options), matrix_(&matrix) {}

Alignment ClustalWAligner::align(std::span<const bio::Sequence> seqs) const {
  if (seqs.empty())
    throw std::invalid_argument("ClustalWAligner: no sequences");
  if (seqs.size() == 1) return Alignment::from_sequence(seqs[0]);

  const std::size_t n = seqs.size();
  const bio::GapPenalties gaps = matrix_->default_gaps();

  // Stage 1: all-pairs distances through the batched drivers.
  util::SymmetricMatrix<double> d(0);
  if (options_.distance == ClustalWOptions::Distance::kScore) {
    align::ScoreDistanceOptions sdo;
    sdo.threads = options_.threads;
    d = align::score_distance_matrix(seqs, *matrix_, gaps, sdo);
  } else {
    align::PairDistanceOptions pdo;
    pdo.band = options_.pairwise_band;
    pdo.threads = options_.threads;
    d = align::alignment_distance_matrix(seqs, *matrix_, gaps, pdo);
  }

  // Stage 2 + 3: NJ tree and branch-proportional weights.
  const GuideTree tree = GuideTree::neighbor_joining(d);
  ProgressiveOptions po;
  po.gaps = gaps;
  po.weights = tree.leaf_weights();
  po.threads = options_.threads;

  // Stage 4: progressive alignment, rows restored to input order.
  Alignment aln = progressive_align(seqs, tree, *matrix_, po);
  std::unordered_map<std::string, std::size_t> row_by_id;
  for (std::size_t r = 0; r < aln.num_rows(); ++r)
    row_by_id.emplace(aln.row(r).id, r);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (const auto& s : seqs) order.push_back(row_by_id.at(s.id()));
  aln = aln.subset(order);
  aln.validate();
  return aln;
}

}  // namespace salign::msa
