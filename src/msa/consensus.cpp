#include "msa/consensus.hpp"

#include <stdexcept>
#include <vector>

namespace salign::msa {

bio::Sequence consensus_sequence(const Alignment& aln, const std::string& id,
                                 const ConsensusOptions& opts) {
  if (aln.empty()) throw std::invalid_argument("consensus: empty alignment");
  const std::size_t rows = aln.num_rows();
  const std::size_t cols = aln.num_cols();
  const int alpha_size = aln.alphabet().size();

  std::vector<std::uint8_t> out;
  out.reserve(cols);
  std::vector<std::size_t> counts(static_cast<std::size_t>(alpha_size));
  for (std::size_t c = 0; c < cols; ++c) {
    std::fill(counts.begin(), counts.end(), 0);
    std::size_t gaps = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      const std::uint8_t code = aln.cell(r, c);
      if (code == Alignment::kGap)
        ++gaps;
      else
        ++counts[code];
    }
    if (static_cast<double>(gaps) >
        opts.max_gap_fraction * static_cast<double>(rows))
      continue;
    std::size_t best = 0;
    for (std::size_t a = 1; a < counts.size(); ++a)
      if (counts[a] > counts[best]) best = a;
    out.push_back(static_cast<std::uint8_t>(best));
  }
  return bio::Sequence(id, std::move(out), aln.alphabet_kind());
}

}  // namespace salign::msa
