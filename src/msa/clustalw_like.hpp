#pragma once

#include "bio/substitution_matrix.hpp"
#include "msa/msa_algorithm.hpp"

namespace salign::msa {

/// Configuration of the CLUSTALW-style aligner.
struct ClustalWOptions {
  /// Band half-width for the O(L^2) pairwise distance pass (0 = full DP).
  /// A modest band accelerates the N^2 pairwise stage with negligible
  /// distance error on homologous inputs.
  std::size_t pairwise_band = 0;
  /// Worker threads of the stage-1 distance matrix and of the stage-4
  /// progressive merge schedule (1 = serial). Any value produces
  /// bit-identical alignments — both passes are deterministic.
  unsigned threads = 1;
  /// Distance source of the guide tree.
  enum class Distance : std::uint8_t {
    /// Classic CLUSTALW: full pairwise alignments -> fractional identity ->
    /// Kimura correction. The default; matches the historical output
    /// exactly.
    kKimura,
    /// Score-only distances through the striped integer engine
    /// (align::score_distance_matrix): no tracebacks, one query profile
    /// per row — several times faster, slightly different guide trees.
    kScore,
  };
  Distance distance = Distance::kKimura;
};

/// "MiniClustal": a from-scratch CLUSTALW-style progressive aligner
/// (Thompson, Higgins & Gibson 1994) — the classic baseline of the paper's
/// Table 2 and of its running-time comparisons:
///
///   1. all-pairs global alignment -> fractional identity -> Kimura
///      distances (the expensive O(N^2 L^2) stage the paper contrasts with
///      k-mer ranking);
///   2. neighbor-joining guide tree;
///   3. sequence weighting (Thompson et al. branch-proportional weights);
///   4. progressive profile alignment.
class ClustalWAligner final : public MsaAlgorithm {
 public:
  explicit ClustalWAligner(ClustalWOptions options = {},
                           const bio::SubstitutionMatrix& matrix =
                               bio::SubstitutionMatrix::blosum62());

  [[nodiscard]] Alignment align(
      std::span<const bio::Sequence> seqs) const override;

  [[nodiscard]] std::string name() const override { return "MiniClustal"; }

 private:
  ClustalWOptions options_;
  const bio::SubstitutionMatrix* matrix_;
};

}  // namespace salign::msa
