#include "msa/progressive.hpp"

#include <stdexcept>

#include "msa/tree_schedule.hpp"

namespace salign::msa {

Alignment progressive_align(std::span<const bio::Sequence> seqs,
                            const GuideTree& tree,
                            const bio::SubstitutionMatrix& matrix,
                            const ProgressiveOptions& opts) {
  if (seqs.empty())
    throw std::invalid_argument("progressive_align: no sequences");
  if (tree.num_leaves() != seqs.size())
    throw std::invalid_argument("progressive_align: tree/sequence mismatch");
  if (!opts.weights.empty() && opts.weights.size() != seqs.size())
    throw std::invalid_argument("progressive_align: weight count mismatch");

  // Partial alignments per tree node, freed as soon as they are merged.
  std::vector<Alignment> partial(tree.num_nodes());
  // Per-node row weights aligned with each partial alignment's row order.
  std::vector<std::vector<double>> row_weights(tree.num_nodes());

  auto weight_of = [&](int leaf) -> double {
    return opts.weights.empty()
               ? 1.0
               : opts.weights[static_cast<std::size_t>(leaf)];
  };

  // Each node is one task of the dependency-counting schedule: leaves are
  // trivial conversions, internal nodes merge their two (completed)
  // children. A task touches only its own node's slots and reads its
  // children's, so results are bit-identical for every thread count — the
  // merge at a node is a pure function of the children's alignments, which
  // never depend on execution order.
  schedule_tree(tree, opts.threads, [&](int id) {
    const TreeNode& nd = tree.node(static_cast<std::size_t>(id));
    auto& slot = partial[static_cast<std::size_t>(id)];
    if (tree.is_leaf(static_cast<std::size_t>(id))) {
      slot = Alignment::from_sequence(
          seqs[static_cast<std::size_t>(nd.leaf_index)]);
      row_weights[static_cast<std::size_t>(id)] = {weight_of(nd.leaf_index)};
      return;
    }

    Alignment& left = partial[static_cast<std::size_t>(nd.left)];
    Alignment& right = partial[static_cast<std::size_t>(nd.right)];
    auto& wl = row_weights[static_cast<std::size_t>(nd.left)];
    auto& wr = row_weights[static_cast<std::size_t>(nd.right)];

    ProfileAlignOptions po;
    po.gaps = opts.gaps;
    po.band = opts.band_provider ? opts.band_provider(left, right) : opts.band;
    po.max_trace_cells = opts.max_trace_cells;

    const Profile pl(left, matrix, wl);
    const Profile pr(right, matrix, wr);
    const ProfileAlignResult res = align_profiles(pl, pr, po);
    slot = merge_alignments(left, right, res.ops);

    auto& w = row_weights[static_cast<std::size_t>(id)];
    w.reserve(wl.size() + wr.size());
    w.insert(w.end(), wl.begin(), wl.end());
    w.insert(w.end(), wr.begin(), wr.end());

    // Free children eagerly; large runs hold O(live frontier) partials only.
    left = Alignment{};
    right = Alignment{};
    wl.clear();
    wr.clear();
  });

  return partial[static_cast<std::size_t>(tree.root())];
}

}  // namespace salign::msa
