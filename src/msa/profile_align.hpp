#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "align/pairwise.hpp"
#include "msa/alignment.hpp"
#include "msa/profile.hpp"
#include "util/matrix.hpp"

namespace salign::msa {

/// Options for profile-profile alignment.
struct ProfileAlignOptions {
  bio::GapPenalties gaps;
  /// Diagonal band half-width; 0 means full DP. The MAFFT-style aligner
  /// passes FFT-derived bands here.
  std::size_t band = 0;
};

struct ProfileAlignResult {
  float score = 0.0F;
  std::vector<align::EditOp> ops;
};

namespace detail {

/// Generic three-state (Gotoh) profile DP over column indices.
///
/// `scorer(ca, cb)` returns the match score of aligning column ca of A with
/// column cb of B. Gap penalties are scaled by the occupancy of the column
/// being consumed, so gaps preferentially stack where the other profile is
/// already gappy (standard PSP treatment). Shared by the PSP aligner and the
/// T-Coffee consistency aligner.
template <typename Scorer>
ProfileAlignResult profile_dp(std::size_t m, std::size_t n,
                              const Scorer& scorer,
                              std::span<const float> occ_a,
                              std::span<const float> occ_b,
                              const ProfileAlignOptions& opts) {
  constexpr float kNegInf = -0.25F * std::numeric_limits<float>::max();
  enum State : std::uint8_t { kM = 0, kX = 1, kY = 2 };
  struct Cell {
    std::uint8_t came_from[3] = {kM, kM, kM};
  };
  const float open = opts.gaps.open;
  const float ext = opts.gaps.extend;

  ProfileAlignResult out;
  if (m == 0 && n == 0) return out;
  if (m == 0) {
    out.ops.assign(n, align::EditOp::GapInA);
    for (std::size_t j = 0; j < n; ++j)
      out.score -= (j == 0 ? open : ext) * occ_b[j];
    return out;
  }
  if (n == 0) {
    out.ops.assign(m, align::EditOp::GapInB);
    for (std::size_t i = 0; i < m; ++i)
      out.score -= (i == 0 ? open : ext) * occ_a[i];
    return out;
  }

  const std::size_t diff = m > n ? m - n : n - m;
  const bool banded = opts.band > 0;
  const std::size_t eff_band =
      banded ? std::max<std::size_t>(opts.band, 1) + diff : n;
  auto j_lo = [&](std::size_t i) -> std::size_t {
    if (!banded) return 0;
    const auto center = static_cast<std::size_t>(
        static_cast<double>(i) * static_cast<double>(n) /
        static_cast<double>(m));
    return center > eff_band ? center - eff_band : 0;
  };
  auto j_hi = [&](std::size_t i) -> std::size_t {
    if (!banded) return n;
    const auto center = static_cast<std::size_t>(
        static_cast<double>(i) * static_cast<double>(n) /
        static_cast<double>(m));
    return std::min(n, center + eff_band);
  };

  std::vector<float> prev_m(n + 1, kNegInf), prev_x(n + 1, kNegInf),
      prev_y(n + 1, kNegInf);
  std::vector<float> cur_m(n + 1, kNegInf), cur_x(n + 1, kNegInf),
      cur_y(n + 1, kNegInf);
  util::Matrix<Cell> trace(m + 1, n + 1);

  prev_m[0] = 0.0F;
  {
    float acc = 0.0F;
    for (std::size_t j = 1; j <= j_hi(0); ++j) {
      acc -= (j == 1 ? open : ext) * occ_b[j - 1];
      prev_x[j] = acc;
      trace(0, j).came_from[kX] = kX;
    }
  }

  float y_border = 0.0F;
  for (std::size_t i = 1; i <= m; ++i) {
    const std::size_t lo = j_lo(i);
    const std::size_t hi = j_hi(i);
    if (banded) {
      std::fill(cur_m.begin(), cur_m.end(), kNegInf);
      std::fill(cur_x.begin(), cur_x.end(), kNegInf);
      std::fill(cur_y.begin(), cur_y.end(), kNegInf);
    }
    cur_m[0] = kNegInf;
    cur_x[0] = kNegInf;
    y_border -= (i == 1 ? open : ext) * occ_a[i - 1];
    cur_y[0] = lo == 0 ? y_border : kNegInf;
    if (lo == 0) trace(i, 0).came_from[kY] = kY;

    for (std::size_t j = std::max<std::size_t>(lo, 1); j <= hi; ++j) {
      Cell& t = trace(i, j);

      const float sub = scorer(i - 1, j - 1);
      float best = prev_m[j - 1];
      std::uint8_t from = kM;
      if (prev_x[j - 1] > best) {
        best = prev_x[j - 1];
        from = kX;
      }
      if (prev_y[j - 1] > best) {
        best = prev_y[j - 1];
        from = kY;
      }
      cur_m[j] = best > kNegInf / 2 ? best + sub : kNegInf;
      t.came_from[kM] = from;

      // Gap in A consuming B's column j-1.
      const float gx_open = open * occ_b[j - 1];
      const float gx_ext = ext * occ_b[j - 1];
      const float open_x = cur_m[j - 1] - gx_open;
      const float ext_x = cur_x[j - 1] - gx_ext;
      const float via_y = cur_y[j - 1] - gx_open;
      if (ext_x >= open_x && ext_x >= via_y) {
        cur_x[j] = ext_x;
        t.came_from[kX] = kX;
      } else if (open_x >= via_y) {
        cur_x[j] = open_x;
        t.came_from[kX] = kM;
      } else {
        cur_x[j] = via_y;
        t.came_from[kX] = kY;
      }

      // Gap in B consuming A's column i-1.
      const float gy_open = open * occ_a[i - 1];
      const float gy_ext = ext * occ_a[i - 1];
      const float open_y = prev_m[j] - gy_open;
      const float ext_y = prev_y[j] - gy_ext;
      const float via_x = prev_x[j] - gy_open;
      if (ext_y >= open_y && ext_y >= via_x) {
        cur_y[j] = ext_y;
        t.came_from[kY] = kY;
      } else if (open_y >= via_x) {
        cur_y[j] = open_y;
        t.came_from[kY] = kM;
      } else {
        cur_y[j] = via_x;
        t.came_from[kY] = kX;
      }
    }
    std::swap(prev_m, cur_m);
    std::swap(prev_x, cur_x);
    std::swap(prev_y, cur_y);
  }

  std::uint8_t state = kM;
  float best = prev_m[n];
  if (prev_x[n] > best) {
    best = prev_x[n];
    state = kX;
  }
  if (prev_y[n] > best) {
    best = prev_y[n];
    state = kY;
  }
  out.score = best;

  std::size_t i = m;
  std::size_t j = n;
  while (i > 0 || j > 0) {
    const std::uint8_t from = trace(i, j).came_from[state];
    switch (state) {
      case kM:
        out.ops.push_back(align::EditOp::Match);
        --i;
        --j;
        break;
      case kX:
        out.ops.push_back(align::EditOp::GapInA);
        --j;
        break;
      case kY:
        out.ops.push_back(align::EditOp::GapInB);
        --i;
        break;
      default: break;
    }
    state = from;
  }
  std::reverse(out.ops.begin(), out.ops.end());
  return out;
}

}  // namespace detail

/// Aligns two profiles with the PSP objective; the result path is in column
/// space (Match consumes one column of each).
[[nodiscard]] ProfileAlignResult align_profiles(
    const Profile& a, const Profile& b, const ProfileAlignOptions& opts = {});

/// Scores an existing column path under the same PSP + scaled-affine-gap
/// objective as align_profiles; used by refinement to accept/reject
/// re-alignments against the incumbent.
[[nodiscard]] float score_profile_path(const Profile& a, const Profile& b,
                                       std::span<const align::EditOp> ops,
                                       const ProfileAlignOptions& opts = {});

/// Merges two alignments into one by a column path over (A columns, B
/// columns). Row order: all A rows, then all B rows.
[[nodiscard]] Alignment merge_alignments(const Alignment& a,
                                         const Alignment& b,
                                         std::span<const align::EditOp> ops);

/// Derives the implied column path of a combined alignment split into two
/// row groups: a column with residues only in group A maps to GapInB, only
/// in B to GapInA, in both to Match. Columns empty in both groups are
/// dropped. Inverse of merge_alignments up to all-gap columns.
[[nodiscard]] std::vector<align::EditOp> implied_path(
    const Alignment& aln, std::span<const std::size_t> group_a,
    std::span<const std::size_t> group_b);

}  // namespace salign::msa
