#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "align/engine/engine.hpp"
#include "align/pairwise.hpp"
#include "msa/alignment.hpp"
#include "msa/profile.hpp"
#include "util/matrix.hpp"

namespace salign::msa {

/// Options for profile-profile alignment.
struct ProfileAlignOptions {
  bio::GapPenalties gaps;
  /// Diagonal band half-width; 0 means full DP. The MAFFT-style aligner
  /// passes FFT-derived bands here.
  std::size_t band = 0;
  /// Full-traceback cell budget: DPs with (m+1)*(n+1) cells at or below this
  /// keep the whole traceback matrix; larger ones switch to checkpointed
  /// traceback (row checkpoints every ~sqrt(m) rows + block recompute), so
  /// big-bucket merges never materialize an O(m·n) trace. 0 = default
  /// (4M cells ≈ 12 MB of trace). Results are identical on both paths.
  /// Applies to the scalar kernel; the vectorized kernel always checkpoints.
  std::size_t max_trace_cells = 0;
  /// Kernel selection for the PSP scorer: kVector runs the blocked
  /// anti-diagonal wavefront kernel (profile_dp_simd.cpp), kScalar the
  /// retained row-major reference below — the differential oracle. Scores,
  /// paths and tie-breaks are bit-identical on both. Scorers without dense
  /// row preparation (e.g. the T-Coffee consistency scorer) always take the
  /// reference path.
  align::engine::Backend backend = align::engine::default_backend();
};

struct ProfileAlignResult {
  float score = 0.0F;
  std::vector<align::EditOp> ops;
};

namespace detail {

inline constexpr std::size_t kDefaultProfileTraceCells = std::size_t{1} << 22;

/// Fills `out[0..len)` with the dense PSP scores of one A column against B
/// columns [cb_lo, cb_lo + len): sum over the column's nonzero residues of
/// f * svt(code, cb), as contiguous vectorizable sweeps. The single source
/// of this accumulation — PspRowScorer::prepare_row (the scalar DP) and
/// the wavefront kernel's block fill (profile_dp_simd.cpp) both call it,
/// and its exact operation order is part of their bit-identity contract.
inline void psp_fill_row(
    const util::Matrix<float>& svt,
    const std::vector<std::pair<std::uint8_t, float>>& col_a,
    std::size_t cb_lo, std::size_t len, float* out) {
  std::fill_n(out, len, 0.0F);
  for (const auto& [code, f] : col_a) {
    const float* sv_row = &svt(code, cb_lo);
    for (std::size_t c = 0; c < len; ++c) out[c] += f * sv_row[c];
  }
}

/// PSP scorer with a per-row dense buffer: profile_dp announces each DP row
/// as prepare_row(ca, cb_lo, cb_hi), which builds row[cb] = sum over
/// A-column ca's nonzero residues of f * svt(code, cb) for the B columns the
/// row will actually read (the full width, or just the band) with
/// contiguous, vectorizable sweeps; the per-cell call is then a single
/// array read.
struct PspRowScorer {
  const util::Matrix<float>* svt;  // residue-major B column scores
  const std::vector<std::vector<std::pair<std::uint8_t, float>>>* sparse_a;
  mutable std::vector<float> row;

  void prepare_row(std::size_t ca, std::size_t cb_lo,
                   std::size_t cb_hi) const {
    if (cb_lo > cb_hi) return;
    psp_fill_row(*svt, (*sparse_a)[ca], cb_lo, cb_hi - cb_lo + 1,
                 row.data() + cb_lo);
  }
  float operator()(std::size_t, std::size_t cb) const { return row[cb]; }
};

/// Blocked anti-diagonal (wavefront) PSP profile DP over engine::simd
/// vectors (profile_dp_simd.cpp). Materializes dense scorer rows one row
/// block at a time, sweeps each block's anti-diagonals with element-wise
/// vector ops (the occupancy-scaled gap penalties become precomputed gap
/// vectors: forward along A for gaps-in-B, reversed along B for gaps-in-A),
/// and checkpoints every ~sqrt(m)-th row so traceback re-derives decisions
/// from recomputed state values — never an O(m·n) trace. Scores, paths and
/// tie-breaks are bit-identical to the scalar profile_dp below (pinned by
/// tests/msa_parallel_test.cpp). Requires m >= 1 and n >= 1.
[[nodiscard]] ProfileAlignResult profile_dp_wavefront(
    std::size_t m, std::size_t n, const PspRowScorer& scorer,
    std::span<const float> occ_a, std::span<const float> occ_b,
    const ProfileAlignOptions& opts);

/// Invokes scorer.prepare_row(ca, cb_lo, cb_hi) when the scorer provides it
/// (row-major scorers with per-row precomputation); plain callables need
/// nothing. [cb_lo, cb_hi] is the inclusive B-column range the DP row will
/// query; empty ranges are announced as cb_lo > cb_hi.
template <typename Scorer>
inline void scorer_prepare_row(const Scorer& scorer, std::size_t ca,
                               std::size_t cb_lo, std::size_t cb_hi) {
  if constexpr (requires { scorer.prepare_row(ca, cb_lo, cb_hi); })
    scorer.prepare_row(ca, cb_lo, cb_hi);
}

enum ProfileDpState : std::uint8_t { kPdM = 0, kPdX = 1, kPdY = 2 };

struct ProfileDpCell {
  std::uint8_t came_from[3] = {kPdM, kPdM, kPdM};
};

/// One DP row of the three-state occupancy-scaled Gotoh recurrence, shared
/// by the full-trace pass, the score-only forward pass and the traceback
/// block recompute (kTrace selects whether came_from nibbles are stored).
/// The float operations and tie-break chains are the historical ones — all
/// paths produce bit-identical rows.
template <bool kTrace, typename Scorer>
inline void profile_dp_row(std::size_t i, std::size_t lo, std::size_t hi,
                           const Scorer& scorer, std::span<const float> occ_a,
                           std::span<const float> occ_b, float open, float ext,
                           const float* pm, const float* px, const float* py,
                           float* cm, float* cx, float* cy,
                           ProfileDpCell* trow) {
  constexpr float kNegInf = align::kNegInf;
  for (std::size_t j = std::max<std::size_t>(lo, 1); j <= hi; ++j) {
    const float sub = scorer(i - 1, j - 1);
    float best = pm[j - 1];
    std::uint8_t from = kPdM;
    if (px[j - 1] > best) {
      best = px[j - 1];
      from = kPdX;
    }
    if (py[j - 1] > best) {
      best = py[j - 1];
      from = kPdY;
    }
    cm[j] = best > kNegInf / 2 ? best + sub : kNegInf;
    if constexpr (kTrace) trow[j].came_from[kPdM] = from;

    // Gap in A consuming B's column j-1.
    const float gx_open = open * occ_b[j - 1];
    const float gx_ext = ext * occ_b[j - 1];
    const float open_x = cm[j - 1] - gx_open;
    const float ext_x = cx[j - 1] - gx_ext;
    const float via_y = cy[j - 1] - gx_open;
    std::uint8_t from_x;
    if (ext_x >= open_x && ext_x >= via_y) {
      cx[j] = ext_x;
      from_x = kPdX;
    } else if (open_x >= via_y) {
      cx[j] = open_x;
      from_x = kPdM;
    } else {
      cx[j] = via_y;
      from_x = kPdY;
    }
    if constexpr (kTrace) trow[j].came_from[kPdX] = from_x;

    // Gap in B consuming A's column i-1.
    const float gy_open = open * occ_a[i - 1];
    const float gy_ext = ext * occ_a[i - 1];
    const float open_y = pm[j] - gy_open;
    const float ext_y = py[j] - gy_ext;
    const float via_x = px[j] - gy_open;
    std::uint8_t from_y;
    if (ext_y >= open_y && ext_y >= via_x) {
      cy[j] = ext_y;
      from_y = kPdY;
    } else if (open_y >= via_x) {
      cy[j] = open_y;
      from_y = kPdM;
    } else {
      cy[j] = via_x;
      from_y = kPdX;
    }
    if constexpr (kTrace) trow[j].came_from[kPdY] = from_y;
  }
}

/// Generic three-state (Gotoh) profile DP over column indices.
///
/// `scorer(ca, cb)` returns the match score of aligning column ca of A with
/// column cb of B; it is invoked row-major (ca outer, cb inner), so scorers
/// may cache per-row state. Gap penalties are scaled by the occupancy of the
/// column being consumed, so gaps preferentially stack where the other
/// profile is already gappy (standard PSP treatment). Shared by the PSP
/// aligner and the T-Coffee consistency aligner.
///
/// Memory: small problems keep a full traceback matrix; above
/// ProfileAlignOptions::max_trace_cells the pass checkpoints every ~sqrt(m)
/// rows and recomputes one row block at a time during traceback.
template <typename Scorer>
ProfileAlignResult profile_dp(std::size_t m, std::size_t n,
                              const Scorer& scorer,
                              std::span<const float> occ_a,
                              std::span<const float> occ_b,
                              const ProfileAlignOptions& opts) {
  constexpr float kNegInf = align::kNegInf;
  const float open = opts.gaps.open;
  const float ext = opts.gaps.extend;

  ProfileAlignResult out;
  if (m == 0 && n == 0) return out;
  if (m == 0) {
    out.ops.assign(n, align::EditOp::GapInA);
    for (std::size_t j = 0; j < n; ++j)
      out.score -= (j == 0 ? open : ext) * occ_b[j];
    return out;
  }
  if (n == 0) {
    out.ops.assign(m, align::EditOp::GapInB);
    for (std::size_t i = 0; i < m; ++i)
      out.score -= (i == 0 ? open : ext) * occ_a[i];
    return out;
  }

  // Dense-row scorers take the vectorized wavefront kernel unless the
  // scalar reference path is requested; results are bit-identical.
  if constexpr (std::is_same_v<Scorer, PspRowScorer>) {
    if (opts.backend == align::engine::Backend::kVector)
      return profile_dp_wavefront(m, n, scorer, occ_a, occ_b, opts);
  }

  const std::size_t diff = m > n ? m - n : n - m;
  const bool banded = opts.band > 0;
  const std::size_t eff_band =
      banded ? std::max<std::size_t>(opts.band, 1) + diff : n;
  auto j_lo = [&](std::size_t i) -> std::size_t {
    if (!banded) return 0;
    const auto center = static_cast<std::size_t>(
        static_cast<double>(i) * static_cast<double>(n) /
        static_cast<double>(m));
    return center > eff_band ? center - eff_band : 0;
  };
  auto j_hi = [&](std::size_t i) -> std::size_t {
    if (!banded) return n;
    const auto center = static_cast<std::size_t>(
        static_cast<double>(i) * static_cast<double>(n) /
        static_cast<double>(m));
    return std::min(n, center + eff_band);
  };

  std::vector<float> prev_m(n + 1, kNegInf), prev_x(n + 1, kNegInf),
      prev_y(n + 1, kNegInf);
  std::vector<float> cur_m(n + 1, kNegInf), cur_x(n + 1, kNegInf),
      cur_y(n + 1, kNegInf);

  // Row-0 boundary: a leading gap run in A.
  prev_m[0] = 0.0F;
  {
    float acc = 0.0F;
    for (std::size_t j = 1; j <= j_hi(0); ++j) {
      acc -= (j == 1 ? open : ext) * occ_b[j - 1];
      prev_x[j] = acc;
    }
  }

  const std::size_t budget =
      opts.max_trace_cells != 0 ? opts.max_trace_cells
                                : kDefaultProfileTraceCells;
  const bool full_trace = (m + 1) * (n + 1) <= budget;

  // Checkpoint state (only allocated on the checkpointed path): every K-th
  // row of (M, X, Y) plus the accumulated column-0 gap score.
  //
  // This mirrors the engine's row-checkpoint + block-recompute traceback
  // (align/engine/gotoh.cpp) but deliberately does not share code with it:
  // the engine kernel is built around QueryProfile score rows and constant
  // gap penalties (vectorizable along anti-diagonals), while this DP calls
  // an arbitrary scorer and scales gaps by column occupancy, so blocks here
  // are recomputed row-major with trace nibbles instead of re-deriving
  // decisions from stored values. The checkpoint interval clamps also
  // differ on purpose: scorer calls dominate this DP's cell cost, so a
  // smaller minimum K (16 vs the engine's 32) trades checkpoint memory for
  // less block recompute.
  const std::size_t ckpt_k = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(m)))),
      16, 4096);
  util::Matrix<float> ck_m, ck_x, ck_y;
  std::vector<float> ck_yborder;
  util::Matrix<ProfileDpCell> trace;
  if (full_trace) {
    trace = util::Matrix<ProfileDpCell>(m + 1, n + 1);
    for (std::size_t j = 1; j <= j_hi(0); ++j)
      trace(0, j).came_from[kPdX] = kPdX;
  } else {
    const std::size_t rows = m / ckpt_k + 1;
    ck_m = util::Matrix<float>(rows, n + 1, kNegInf);
    ck_x = util::Matrix<float>(rows, n + 1, kNegInf);
    ck_y = util::Matrix<float>(rows, n + 1, kNegInf);
    ck_yborder.assign(rows, 0.0F);
    for (std::size_t j = 0; j <= n; ++j) {
      ck_m(0, j) = prev_m[j];
      ck_x(0, j) = prev_x[j];
      ck_y(0, j) = prev_y[j];
    }
  }

  float y_border = 0.0F;
  for (std::size_t i = 1; i <= m; ++i) {
    const std::size_t lo = j_lo(i);
    const std::size_t hi = j_hi(i);
    if (banded) {
      std::fill(cur_m.begin(), cur_m.end(), kNegInf);
      std::fill(cur_x.begin(), cur_x.end(), kNegInf);
      std::fill(cur_y.begin(), cur_y.end(), kNegInf);
    }
    cur_m[0] = kNegInf;
    cur_x[0] = kNegInf;
    y_border -= (i == 1 ? open : ext) * occ_a[i - 1];
    cur_y[0] = lo == 0 ? y_border : kNegInf;

    if (const std::size_t js = std::max<std::size_t>(lo, 1); js <= hi)
      scorer_prepare_row(scorer, i - 1, js - 1, hi - 1);
    if (full_trace) {
      if (lo == 0) trace(i, 0).came_from[kPdY] = kPdY;
      profile_dp_row<true>(i, lo, hi, scorer, occ_a, occ_b, open, ext,
                           prev_m.data(), prev_x.data(), prev_y.data(),
                           cur_m.data(), cur_x.data(), cur_y.data(),
                           &trace(i, 0));
    } else {
      profile_dp_row<false>(i, lo, hi, scorer, occ_a, occ_b, open, ext,
                            prev_m.data(), prev_x.data(), prev_y.data(),
                            cur_m.data(), cur_x.data(), cur_y.data(), nullptr);
      if (i % ckpt_k == 0) {
        const std::size_t r = i / ckpt_k;
        for (std::size_t j = 0; j <= n; ++j) {
          ck_m(r, j) = cur_m[j];
          ck_x(r, j) = cur_x[j];
          ck_y(r, j) = cur_y[j];
        }
        ck_yborder[r] = y_border;
      }
    }
    std::swap(prev_m, cur_m);
    std::swap(prev_x, cur_x);
    std::swap(prev_y, cur_y);
  }

  std::uint8_t state = kPdM;
  float best = prev_m[n];
  if (prev_x[n] > best) {
    best = prev_x[n];
    state = kPdX;
  }
  if (prev_y[n] > best) {
    best = prev_y[n];
    state = kPdY;
  }
  out.score = best;

  // Traceback. The checkpointed path recomputes one block of rows
  // (r0, top] with trace nibbles at a time, seeded from checkpoint row r0.
  util::Matrix<ProfileDpCell> blk;
  std::size_t blk_r0 = 0;
  bool blk_valid = false;
  auto load_block = [&](std::size_t top, std::size_t jcap) {
    blk_r0 = (top - 1) / ckpt_k * ckpt_k;
    const std::size_t r = blk_r0 / ckpt_k;
    if (blk.rows() == 0) blk = util::Matrix<ProfileDpCell>(ckpt_k + 1, n + 1);
    for (std::size_t j = 0; j <= jcap; ++j) {
      prev_m[j] = ck_m(r, j);
      prev_x[j] = ck_x(r, j);
      prev_y[j] = ck_y(r, j);
    }
    float yb = ck_yborder[r];
    for (std::size_t i = blk_r0 + 1; i <= top; ++i) {
      const std::size_t lo = j_lo(i);
      const std::size_t hi = std::min(j_hi(i), jcap);
      std::fill(cur_m.begin(), cur_m.begin() + static_cast<std::ptrdiff_t>(
                                                   jcap + 1), kNegInf);
      std::fill(cur_x.begin(), cur_x.begin() + static_cast<std::ptrdiff_t>(
                                                   jcap + 1), kNegInf);
      std::fill(cur_y.begin(), cur_y.begin() + static_cast<std::ptrdiff_t>(
                                                   jcap + 1), kNegInf);
      yb -= (i == 1 ? open : ext) * occ_a[i - 1];
      cur_y[0] = lo == 0 ? yb : kNegInf;
      ProfileDpCell* trow = &blk(i - blk_r0, 0);
      if (lo == 0) trow[0].came_from[kPdY] = kPdY;
      if (const std::size_t js = std::max<std::size_t>(lo, 1); js <= hi)
        scorer_prepare_row(scorer, i - 1, js - 1, hi - 1);
      profile_dp_row<true>(i, lo, hi, scorer, occ_a, occ_b, open, ext,
                           prev_m.data(), prev_x.data(), prev_y.data(),
                           cur_m.data(), cur_x.data(), cur_y.data(), trow);
      std::swap(prev_m, cur_m);
      std::swap(prev_x, cur_x);
      std::swap(prev_y, cur_y);
    }
    blk_valid = true;
  };

  auto came_from_at = [&](std::size_t i, std::size_t j) -> std::uint8_t {
    if (full_trace) return trace(i, j).came_from[state];
    // Boundary cells mirror the full-trace matrix's preset entries.
    if (i == 0) return state == kPdX ? kPdX : kPdM;
    if (j == 0) return state == kPdY && j_lo(i) == 0 ? kPdY : kPdM;
    if (!blk_valid || i <= blk_r0) load_block(i, j);
    return blk(i - blk_r0, j).came_from[state];
  };

  std::size_t i = m;
  std::size_t j = n;
  while (i > 0 || j > 0) {
    const std::uint8_t from = came_from_at(i, j);
    switch (state) {
      case kPdM:
        out.ops.push_back(align::EditOp::Match);
        --i;
        --j;
        break;
      case kPdX:
        out.ops.push_back(align::EditOp::GapInA);
        --j;
        break;
      case kPdY:
        out.ops.push_back(align::EditOp::GapInB);
        --i;
        break;
      default: break;
    }
    state = from;
  }
  std::reverse(out.ops.begin(), out.ops.end());
  return out;
}

}  // namespace detail

/// Aligns two profiles with the PSP objective; the result path is in column
/// space (Match consumes one column of each).
[[nodiscard]] ProfileAlignResult align_profiles(
    const Profile& a, const Profile& b, const ProfileAlignOptions& opts = {});

/// Scores an existing column path under the same PSP + scaled-affine-gap
/// objective as align_profiles; used by refinement to accept/reject
/// re-alignments against the incumbent.
[[nodiscard]] float score_profile_path(const Profile& a, const Profile& b,
                                       std::span<const align::EditOp> ops,
                                       const ProfileAlignOptions& opts = {});

/// Merges two alignments into one by a column path over (A columns, B
/// columns). Row order: all A rows, then all B rows.
[[nodiscard]] Alignment merge_alignments(const Alignment& a,
                                         const Alignment& b,
                                         std::span<const align::EditOp> ops);

/// Derives the implied column path of a combined alignment split into two
/// row groups: a column with residues only in group A maps to GapInB, only
/// in B to GapInA, in both to Match. Columns empty in both groups are
/// dropped. Inverse of merge_alignments up to all-gap columns.
[[nodiscard]] std::vector<align::EditOp> implied_path(
    const Alignment& aln, std::span<const std::size_t> group_a,
    std::span<const std::size_t> group_b);

}  // namespace salign::msa
