#include "msa/alignment.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace salign::msa {

Alignment::Alignment(std::vector<AlignedRow> rows, bio::AlphabetKind kind)
    : rows_(std::move(rows)), kind_(kind) {
  validate();
}

Alignment Alignment::from_sequence(const bio::Sequence& seq) {
  AlignedRow row;
  row.id = seq.id();
  row.cells.assign(seq.codes().begin(), seq.codes().end());
  std::vector<AlignedRow> rows;
  rows.push_back(std::move(row));
  return Alignment(std::move(rows), seq.alphabet_kind());
}

Alignment Alignment::from_texts(
    std::span<const std::pair<std::string, std::string>> rows,
    bio::AlphabetKind kind) {
  const bio::Alphabet& alpha = bio::Alphabet::get(kind);
  std::vector<AlignedRow> out;
  out.reserve(rows.size());
  for (const auto& [id, text] : rows) {
    AlignedRow row;
    row.id = id;
    row.cells.reserve(text.size());
    for (char c : text)
      row.cells.push_back(c == '-' || c == '.' ? kGap : alpha.encode(c));
    out.push_back(std::move(row));
  }
  return Alignment(std::move(out), kind);
}

std::string Alignment::row_text(std::size_t r) const {
  const bio::Alphabet& alpha = alphabet();
  std::string s;
  s.reserve(num_cols());
  for (std::uint8_t c : rows_[r].cells)
    s.push_back(c == kGap ? '-' : alpha.decode(c));
  return s;
}

bio::Sequence Alignment::degapped(std::size_t r) const {
  std::vector<std::uint8_t> codes;
  codes.reserve(num_cols());
  for (std::uint8_t c : rows_[r].cells)
    if (c != kGap) codes.push_back(c);
  return bio::Sequence(rows_[r].id, std::move(codes), kind_);
}

std::size_t Alignment::residue_count(std::size_t r) const {
  return static_cast<std::size_t>(
      std::count_if(rows_[r].cells.begin(), rows_[r].cells.end(),
                    [](std::uint8_t c) { return c != kGap; }));
}

Alignment Alignment::subset(std::span<const std::size_t> row_indices) const {
  std::vector<AlignedRow> rows;
  rows.reserve(row_indices.size());
  for (std::size_t r : row_indices) {
    if (r >= rows_.size()) throw std::out_of_range("Alignment::subset row");
    rows.push_back(rows_[r]);
  }
  return Alignment(std::move(rows), kind_);
}

std::size_t Alignment::strip_all_gap_columns() {
  const std::size_t cols = num_cols();
  std::vector<bool> keep(cols, false);
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < cols; ++c)
      if (row.cells[c] != kGap) keep[c] = true;

  std::size_t removed = 0;
  for (auto& row : rows_) {
    std::size_t w = 0;
    for (std::size_t c = 0; c < cols; ++c)
      if (keep[c]) row.cells[w++] = row.cells[c];
    row.cells.resize(w);
  }
  for (std::size_t c = 0; c < cols; ++c)
    if (!keep[c]) ++removed;
  return removed;
}

void Alignment::insert_gap_columns(std::span<const std::size_t> positions) {
  if (positions.empty()) return;
  if (!std::is_sorted(positions.begin(), positions.end()))
    throw std::invalid_argument("insert_gap_columns: positions not sorted");
  const std::size_t cols = num_cols();
  if (!positions.empty() && positions.back() > cols)
    throw std::out_of_range("insert_gap_columns: position past end");

  for (auto& row : rows_) {
    std::vector<std::uint8_t> cells;
    cells.reserve(cols + positions.size());
    std::size_t pi = 0;
    for (std::size_t c = 0; c <= cols; ++c) {
      while (pi < positions.size() && positions[pi] == c) {
        cells.push_back(kGap);
        ++pi;
      }
      if (c < cols) cells.push_back(row.cells[c]);
    }
    row.cells = std::move(cells);
  }
}

void Alignment::append_rows(const Alignment& other) {
  if (other.empty()) return;
  if (kind_ != other.kind_)
    throw std::invalid_argument("append_rows: alphabet mismatch");
  if (!rows_.empty() && other.num_cols() != num_cols())
    throw std::invalid_argument("append_rows: column count mismatch");
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
}

void Alignment::validate() const {
  if (rows_.empty()) return;
  const std::size_t cols = rows_.front().cells.size();
  const auto alpha_size =
      static_cast<std::uint8_t>(bio::Alphabet::get(kind_).size());
  for (const auto& row : rows_) {
    if (row.id.empty()) throw std::logic_error("Alignment: empty row id");
    if (row.cells.size() != cols)
      throw std::logic_error("Alignment: ragged rows (row '" + row.id + "')");
    for (std::uint8_t c : row.cells)
      if (c != kGap && c >= alpha_size)
        throw std::logic_error("Alignment: code out of range in '" + row.id +
                               "'");
  }
}

Alignment read_aligned_fasta(std::istream& in, bio::AlphabetKind kind) {
  const bio::Alphabet& alpha = bio::Alphabet::get(kind);
  std::vector<AlignedRow> rows;
  std::string line;
  bool have_record = false;
  AlignedRow current;

  auto flush = [&] {
    if (have_record) rows.push_back(std::move(current));
    current = AlignedRow{};
  };

  while (std::getline(in, line)) {
    const std::string_view t = util::trim(line);
    if (t.empty()) continue;
    if (t.front() == '>') {
      flush();
      have_record = true;
      const std::string_view header = util::trim(t.substr(1));
      const std::size_t sp = header.find_first_of(" \t");
      current.id = std::string(sp == std::string_view::npos
                                   ? header
                                   : header.substr(0, sp));
    } else {
      if (!have_record)
        throw std::runtime_error("aligned FASTA: data before first header");
      for (char c : t)
        current.cells.push_back(c == '-' || c == '.' ? Alignment::kGap
                                                     : alpha.encode(c));
    }
  }
  flush();
  return Alignment(std::move(rows), kind);
}

void write_aligned_fasta(std::ostream& out, const Alignment& aln,
                         std::size_t width) {
  for (std::size_t r = 0; r < aln.num_rows(); ++r) {
    out << '>' << aln.row(r).id << '\n';
    const std::string text = aln.row_text(r);
    for (std::size_t i = 0; i < text.size(); i += width)
      out << text.substr(i, width) << '\n';
    if (text.empty()) out << '\n';
  }
}

}  // namespace salign::msa
