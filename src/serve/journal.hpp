#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace salign::serve {

/// Lifecycle of a submitted job. Transitions are journaled durably before
/// they take effect anywhere observable:
///
///   queued ──► running ──► done
///                 │    ├──► failed     (runtime/input error; exit_code 1/3)
///                 │    ├──► evicted    (deadline blown; checkpoint valid)
///                 │    └──► cancelled  (operator cancel; checkpoint valid)
///                 └──► queued          (daemon drained or crashed mid-run;
///                                       replay resumes from the checkpoint)
enum class JobState { kQueued, kRunning, kDone, kFailed, kEvicted, kCancelled };

[[nodiscard]] const char* to_string(JobState s);
/// Throws WireError on an unknown name (a journal file from the future).
[[nodiscard]] JobState job_state_from_string(const std::string& name);
[[nodiscard]] inline bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kEvicted || s == JobState::kCancelled;
}

/// What to align and how — the accepted subset of `salign align`'s surface.
/// Paths are absolute (the client resolves them; the daemon's cwd is its
/// own business).
struct JobSpec {
  std::string input;           ///< FASTA to align (absolute path)
  std::string output;          ///< where the result is durably written
  std::string format = "fasta";  ///< "fasta" or "clustal"
  std::string aligner = "muscle";
  int procs = 4;
  int threads = 1;
  double deadline_seconds = 0.0;   ///< per-attempt run budget; 0 = none
  std::uint64_t max_memory = 0;    ///< degradation bound in bytes; 0 = none

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static JobSpec from_json(const Json& j);  // throws WireError
};

/// One journaled job: the spec plus everything the daemon learned about it.
/// The on-disk unit of the journal — serialized as a single JSON line and
/// rewritten atomically (util::write_file_durable) on every transition, so
/// a crash at any instant leaves each job's file at exactly one valid
/// state; torn journals cannot exist.
struct JobRecord {
  std::string id;        ///< "j000001"... (monotonic per journal directory)
  std::uint64_t seq = 0;  ///< numeric part of id; orders replay
  JobState state = JobState::kQueued;
  JobSpec spec;
  int attempts = 0;       ///< times a run of this job started
  int exit_code = 0;      ///< CLI taxonomy code once terminal
  std::string error;      ///< diagnostic once failed/evicted/cancelled
  std::uint64_t submitted_ms = 0;  ///< wall clock (unix ms), informational
  std::uint64_t updated_ms = 0;    ///< last journaled transition

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static JobRecord from_json(const Json& j);  // throws WireError
};

/// The journal directory: `<dir>/jobs/<id>.json` records plus
/// `<dir>/ckpt/<id>/` per-job checkpoint directories (written by the
/// pipeline's own stage machinery, not this class).
///
/// Durability contract: record() returns only after the job file is on disk
/// (tmp → fsync → rename → dir fsync) — the daemon acknowledges a submit
/// only after record() returned, so an acknowledged job survives kill -9.
/// Injection sites: "serve.journal.write" (record) and "serve.journal.read"
/// (replay), both behind the standard transient-retry policy.
class Journal {
 public:
  /// Creates the directory layout. Throws ResourceError when it cannot be
  /// created or is not writable (probed with a marker write at startup so
  /// a misconfigured daemon fails fast with exit 5, not mid-job).
  explicit Journal(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Durably writes (or rewrites) the job's record file.
  void record(const JobRecord& rec);

  /// Reads every job record, in seq order. Unreadable or malformed files
  /// are quarantined (renamed `<file>.corrupt`) and reported in
  /// `quarantined` rather than failing the replay — a daemon must start on
  /// a damaged journal and keep what verifies.
  [[nodiscard]] std::vector<JobRecord> replay(
      std::vector<std::string>* quarantined = nullptr);

  /// Checkpoint directory of one job (created lazily by the pipeline).
  [[nodiscard]] std::string checkpoint_dir(const std::string& job_id) const;

 private:
  std::string dir_;
};

}  // namespace salign::serve
