#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/io.hpp"

namespace salign::serve {

/// A resource the daemon needs is unavailable or contested: the socket path
/// is already being served, the address cannot be bound, the journal
/// directory cannot be created or written. Mapped to its own CLI exit code
/// (5) — distinct from generic runtime failure — because the fix is
/// operational (free the port, pick another path, fix permissions), not a
/// bug or bad input, and init systems restart-loop on it differently.
class ResourceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One connected byte stream (a client connection or an accepted peer).
/// Lines are the protocol frame: read_line()/write_line() move exactly one
/// newline-terminated record. Both directions carry a timeout so a stalled
/// peer can never hang the daemon's control plane, and both consult the
/// fault injector ("serve.read" / "serve.write") so SALIGN_FAULTS can drill
/// every socket failure path deterministically.
class SocketStream {
 public:
  SocketStream() = default;
  explicit SocketStream(int fd) : fd_(fd) {}
  ~SocketStream();
  SocketStream(SocketStream&& other) noexcept;
  SocketStream& operator=(SocketStream&& other) noexcept;
  SocketStream(const SocketStream&) = delete;
  SocketStream& operator=(const SocketStream&) = delete;

  /// Connects to a listening Unix-domain socket. Throws IoError (transient)
  /// when nothing is listening — clients may retry while a daemon starts.
  [[nodiscard]] static SocketStream connect(const std::string& path);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Reads one '\n'-terminated line (the newline is stripped). Throws
  /// IoError on timeout, EOF mid-line, oversized lines (> max_bytes) or
  /// injected faults ("serve.read"). Returns nullopt on a clean EOF at a
  /// line boundary (peer closed after its last record).
  [[nodiscard]] std::optional<std::string> read_line(
      int timeout_ms = 5000, std::size_t max_bytes = 1 << 20);

  /// Writes `line` plus a newline, completely. Throws IoError on timeout or
  /// peer disconnect, or injected faults ("serve.write"). Never raises
  /// SIGPIPE.
  void write_line(std::string_view line, int timeout_ms = 5000);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

/// Listening Unix-domain socket with stale-file recovery: binding a path
/// whose previous daemon was killed (-9) succeeds by probing the socket —
/// if nothing answers a connect, the stale file is unlinked and rebound; if
/// something does, ResourceError ("already serving") is thrown. The socket
/// file is unlinked again on clean destruction.
class SocketListener {
 public:
  explicit SocketListener(std::string path, int backlog = 16);
  ~SocketListener();
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Waits up to timeout_ms for a connection. nullopt on timeout (poll the
  /// stop flag and call again); an accepted stream otherwise. Injection
  /// site "serve.accept" fires after the kernel accept — an armed fault
  /// drops that connection (the peer sees EOF) and throws InjectedFault for
  /// the caller to count and survive.
  [[nodiscard]] std::optional<SocketStream> accept(int timeout_ms);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace salign::serve
