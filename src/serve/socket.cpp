#include "serve/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "util/fault_injection.hpp"

namespace salign::serve {

namespace {

[[nodiscard]] std::string errno_text(const char* op) {
  return std::string(op) + ": " + std::strerror(errno);
}

/// Fills a sockaddr_un; rejects paths that don't fit sun_path (the classic
/// silent-truncation trap — better a clear ResourceError than a daemon
/// listening on a different path than the client dials).
sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw ResourceError("socket path '" + path + "' is empty or longer than " +
                        std::to_string(sizeof(addr.sun_path) - 1) + " bytes");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

int make_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw ResourceError(errno_text("socket"));
  return fd;
}

/// poll() one fd for readability/writability; false on timeout.
bool wait_io(int fd, short events, int timeout_ms) {
  pollfd p{fd, events, 0};
  while (true) {
    const int n = ::poll(&p, 1, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::IoError(errno_text("poll"), true);
    }
    return n > 0;
  }
}

}  // namespace

// ---- SocketStream ----------------------------------------------------------

SocketStream::~SocketStream() { close(); }

SocketStream::SocketStream(SocketStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

SocketStream& SocketStream::operator=(SocketStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void SocketStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

SocketStream SocketStream::connect(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  SocketStream s(make_socket());
  if (::connect(s.fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0)
    // Transient: "connection refused"/"no such file" usually means the
    // daemon is (re)starting — retry_io-style callers may ride it out.
    throw util::IoError("connect " + path + ": " + std::strerror(errno), true);
  return s;
}

std::optional<std::string> SocketStream::read_line(int timeout_ms,
                                                   std::size_t max_bytes) {
  util::FaultInjector::instance().maybe_fail("serve.read");
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    if (buffer_.size() > max_bytes)
      throw util::IoError("read: line exceeds " + std::to_string(max_bytes) +
                              " bytes",
                          false);
    if (!wait_io(fd_, POLLIN, timeout_ms))
      throw util::IoError("read: timed out after " +
                              std::to_string(timeout_ms) + "ms",
                          true);
    char chunk[4096];
    const ::ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::IoError(errno_text("recv"), true);
    }
    if (n == 0) {
      if (buffer_.empty()) return std::nullopt;  // clean EOF between lines
      throw util::IoError("read: peer closed mid-line", true);
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void SocketStream::write_line(std::string_view line, int timeout_ms) {
  util::FaultInjector::instance().maybe_fail("serve.write");
  std::string framed(line);
  framed.push_back('\n');
  const char* p = framed.data();
  std::size_t left = framed.size();
  while (left > 0) {
    if (!wait_io(fd_, POLLOUT, timeout_ms))
      throw util::IoError("write: timed out after " +
                              std::to_string(timeout_ms) + "ms",
                          true);
    // MSG_NOSIGNAL: a peer that vanished must surface as EPIPE, not kill
    // the daemon with SIGPIPE.
    const ::ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::IoError(errno_text("send"), true);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

// ---- SocketListener --------------------------------------------------------

SocketListener::SocketListener(std::string path, int backlog)
    : path_(std::move(path)) {
  const sockaddr_un addr = make_addr(path_);
  fd_ = make_socket();
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int bind_errno = errno;
    if (bind_errno == EADDRINUSE) {
      // A socket file exists. Probe it: a live daemon answers the connect
      // (=> genuinely in use), a kill -9 leftover refuses it (=> stale,
      // safe to unlink and rebind — the restart path of the crash drill).
      bool live = false;
      {
        const int probe = make_socket();
        live = ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof addr) == 0;
        ::close(probe);
      }
      if (!live) {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
        if (!ec && ::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof addr) == 0) {
          errno = 0;
        } else {
          ::close(fd_);
          fd_ = -1;
          throw ResourceError("bind " + path_ + ": stale socket could not " +
                              "be reclaimed: " + std::strerror(errno));
        }
      } else {
        ::close(fd_);
        fd_ = -1;
        throw ResourceError("bind " + path_ +
                            ": address in use (another daemon is serving)");
      }
    } else {
      ::close(fd_);
      fd_ = -1;
      throw ResourceError("bind " + path_ + ": " +
                          std::strerror(bind_errno));
    }
  }
  if (::listen(fd_, backlog) != 0) {
    const std::string what = errno_text("listen");
    ::close(fd_);
    fd_ = -1;
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    throw ResourceError(what);
  }
}

SocketListener::~SocketListener() {
  if (fd_ >= 0) ::close(fd_);
  std::error_code ec;
  std::filesystem::remove(path_, ec);
}

std::optional<SocketStream> SocketListener::accept(int timeout_ms) {
  if (!wait_io(fd_, POLLIN, timeout_ms)) return std::nullopt;
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return std::nullopt;
    throw util::IoError(errno_text("accept"), true);
  }
  SocketStream stream(conn);
  // Site fires after the kernel accept so a drilled fault drops a real
  // connection (the client observes EOF) instead of spinning on poll().
  util::FaultInjector::instance().maybe_fail("serve.accept");
  return stream;
}

}  // namespace salign::serve
