#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace salign::serve {

/// A request/response line violated the wire protocol (malformed JSON,
/// wrong type, missing field). Daemons answer it with a "bad_request"
/// response; clients surface it as a runtime failure.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Minimal JSON value for the serve wire protocol (docs/serve_protocol.md).
///
/// Deliberately tiny rather than general: objects keep sorted keys (so
/// dump() is deterministic — journal records are content-comparable and the
/// protocol is easy to golden-test), numbers are doubles (integers are exact
/// up to 2^53, which bounds every field the protocol carries and is stated
/// in the wire-format doc), and parse() accepts exactly the constructs
/// dump() emits plus insignificant whitespace.
class Json {
 public:
  using Object = std::map<std::string, Json>;
  using Array = std::vector<Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Object o) : value_(std::move(o)) {}
  Json(Array a) : value_(std::move(a)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(value_);
  }

  /// Typed accessors; throw WireError naming the expected type on mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] const Array& as_array() const;

  /// Object field lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Convenience typed field readers with defaults (absent => fallback;
  /// present-but-wrong-type => WireError naming the key).
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback = "") const;
  [[nodiscard]] double get_number(std::string_view key,
                                  double fallback = 0.0) const;
  [[nodiscard]] bool get_bool(std::string_view key,
                              bool fallback = false) const;

  /// Compact single-line serialization (no newline appended) — the unit the
  /// newline-delimited protocol frames.
  [[nodiscard]] std::string dump() const;

  /// Parses one JSON value; trailing non-whitespace is an error. Throws
  /// WireError with a byte offset on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Object, Array>
      value_;
};

/// Protocol version stamped into every request and response ("v" field).
/// Bumped only on incompatible changes; see docs/serve_protocol.md.
inline constexpr int kWireVersion = 1;

}  // namespace salign::serve
