#include "serve/journal.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <span>

#include "serve/socket.hpp"
#include "util/fault_injection.hpp"
#include "util/io.hpp"

namespace salign::serve {

namespace fs = std::filesystem;

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kEvicted: return "evicted";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

JobState job_state_from_string(const std::string& name) {
  for (const JobState s :
       {JobState::kQueued, JobState::kRunning, JobState::kDone,
        JobState::kFailed, JobState::kEvicted, JobState::kCancelled})
    if (name == to_string(s)) return s;
  throw WireError("unknown job state '" + name + "'");
}

Json JobSpec::to_json() const {
  Json::Object o;
  o.emplace("in", input);
  o.emplace("out", output);
  o.emplace("format", format);
  o.emplace("aligner", aligner);
  o.emplace("procs", procs);
  o.emplace("threads", threads);
  o.emplace("deadline", deadline_seconds);
  o.emplace("max_memory", max_memory);
  return Json(std::move(o));
}

JobSpec JobSpec::from_json(const Json& j) {
  JobSpec s;
  s.input = j.get_string("in");
  s.output = j.get_string("out");
  s.format = j.get_string("format", "fasta");
  s.aligner = j.get_string("aligner", "muscle");
  s.procs = static_cast<int>(j.get_number("procs", 4));
  s.threads = static_cast<int>(j.get_number("threads", 1));
  s.deadline_seconds = j.get_number("deadline", 0.0);
  s.max_memory = static_cast<std::uint64_t>(j.get_number("max_memory", 0.0));
  if (s.input.empty()) throw WireError("job spec: 'in' is required");
  if (s.procs < 1 || s.procs > 1024)
    throw WireError("job spec: 'procs' out of range [1,1024]");
  if (s.threads < 0 || s.threads > 1024)
    throw WireError("job spec: 'threads' out of range [0,1024]");
  if (s.deadline_seconds < 0.0)
    throw WireError("job spec: 'deadline' must be >= 0");
  if (s.format != "fasta" && s.format != "clustal")
    throw WireError("job spec: 'format' must be 'fasta' or 'clustal'");
  return s;
}

Json JobRecord::to_json() const {
  Json::Object o;
  o.emplace("v", kWireVersion);
  o.emplace("id", id);
  o.emplace("seq", seq);
  o.emplace("state", to_string(state));
  o.emplace("spec", spec.to_json());
  o.emplace("attempts", attempts);
  o.emplace("exit_code", exit_code);
  o.emplace("error", error);
  o.emplace("submitted_ms", submitted_ms);
  o.emplace("updated_ms", updated_ms);
  return Json(std::move(o));
}

JobRecord JobRecord::from_json(const Json& j) {
  JobRecord r;
  r.id = j.get_string("id");
  r.seq = static_cast<std::uint64_t>(j.get_number("seq", 0.0));
  r.state = job_state_from_string(j.get_string("state"));
  const Json* spec = j.find("spec");
  if (spec == nullptr) throw WireError("job record: 'spec' is required");
  r.spec = JobSpec::from_json(*spec);
  r.attempts = static_cast<int>(j.get_number("attempts", 0.0));
  r.exit_code = static_cast<int>(j.get_number("exit_code", 0.0));
  r.error = j.get_string("error");
  r.submitted_ms =
      static_cast<std::uint64_t>(j.get_number("submitted_ms", 0.0));
  r.updated_ms = static_cast<std::uint64_t>(j.get_number("updated_ms", 0.0));
  if (r.id.empty()) throw WireError("job record: 'id' is required");
  return r;
}

Journal::Journal(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / "jobs", ec);
  if (!ec) fs::create_directories(fs::path(dir_) / "ckpt", ec);
  if (ec)
    throw ResourceError("journal directory " + dir_ +
                        " cannot be created: " + ec.message());
  // Probe writability now: a daemon that could accept jobs but never
  // journal them would shed every submit — fail startup with exit 5
  // instead. Drillable as "serve.journal.probe"; deliberately un-retried
  // (boot either works or it doesn't — there is no retry loop to hide in).
  const fs::path probe = fs::path(dir_) / "jobs" / ".probe.tmp";
  try {
    static constexpr std::uint8_t kMark[] = {'o', 'k', '\n'};
    util::write_file_durable(probe, std::span<const std::uint8_t>(kMark),
                             "serve.journal.probe");
    fs::remove(probe, ec);
  } catch (const std::exception& e) {
    throw ResourceError("journal directory " + dir_ +
                        " is not writable: " + e.what());
  }
}

void Journal::record(const JobRecord& rec) {
  const std::string line = rec.to_json().dump() + "\n";
  const fs::path target = fs::path(dir_) / "jobs" / (rec.id + ".json");
  util::retry_io("serve.journal.write", [&] {
    util::write_file_durable(
        target,
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(line.data()), line.size()),
        "serve.journal.write");
  });
}

std::vector<JobRecord> Journal::replay(std::vector<std::string>* quarantined) {
  std::vector<JobRecord> out;
  const fs::path jobs_dir = fs::path(dir_) / "jobs";
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(jobs_dir)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    try {
      const std::string text = util::retry_io("serve.journal.read", [&] {
        return util::read_file(file, "serve.journal.read");
      });
      out.push_back(JobRecord::from_json(Json::parse(text)));
    } catch (const std::exception& e) {
      // Keep serving on a damaged journal: set the record aside (visible to
      // the operator, never silently deleted) and continue the replay.
      std::error_code ec;
      // salign-lint: allow(durable-io) -- quarantine rename: best-effort
      // set-aside of an already-corrupt record; durability adds nothing.
      fs::rename(file, fs::path(file.string() + ".corrupt"), ec);  // salign-lint: allow(durable-io) -- see above
      if (quarantined != nullptr)
        quarantined->push_back(file.filename().string() + ": " + e.what());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const JobRecord& a, const JobRecord& b) { return a.seq < b.seq; });
  return out;
}

std::string Journal::checkpoint_dir(const std::string& job_id) const {
  return (fs::path(dir_) / "ckpt" / job_id).string();
}

}  // namespace salign::serve
