#pragma once

#include <string>

#include "serve/wire.hpp"

namespace salign::serve {

/// One request/response round trip with a serving daemon: connects to
/// `socket_path` (retrying the connect briefly — daemons take a moment to
/// bind), sends `request` as one line, reads one response line.
///
/// Throws util::IoError when no daemon answers within `timeout_ms` or the
/// connection drops mid-exchange, and WireError when the response is not
/// valid JSON. Never interprets the response beyond parsing it — response
/// codes ("overloaded", "not_found", ...) are the caller's business.
[[nodiscard]] Json request(const std::string& socket_path, const Json& req,
                           int timeout_ms = 5000);

}  // namespace salign::serve
