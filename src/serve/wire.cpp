#include "serve/wire.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

namespace salign::serve {

namespace {

[[noreturn]] void type_error(const char* expected) {
  throw WireError(std::string("wire: expected ") + expected);
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) throw WireError("wire: non-finite number");
  // Integers within the exact double range print without a fraction so ids,
  // byte counts and exit codes round-trip as the integers they are.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw WireError("wire: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    // Depth guard: the protocol nests at most (object → array → object);
    // 64 is far above anything legitimate and bounds stack use on garbage.
    if (depth_ > 64) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    ++depth_;
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    ++depth_;
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control byte");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogates are rejected; the
          // protocol never emits them — dump() only escapes C0 controls).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate escape");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("bad number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) type_error("bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) type_error("number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("string");
  return std::get<std::string>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) type_error("object");
  return std::get<Object>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) type_error("array");
  return std::get<Array>(value_);
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<Object>(value_);
  const auto it = obj.find(std::string(key));
  return it == obj.end() ? nullptr : &it->second;
}

std::string Json::get_string(std::string_view key, std::string fallback) const {
  const Json* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_string())
    throw WireError("wire: field '" + std::string(key) + "' must be a string");
  return v->as_string();
}

double Json::get_number(std::string_view key, double fallback) const {
  const Json* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_number())
    throw WireError("wire: field '" + std::string(key) + "' must be a number");
  return v->as_number();
}

bool Json::get_bool(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_bool())
    throw WireError("wire: field '" + std::string(key) + "' must be a bool");
  return v->as_bool();
}

std::string Json::dump() const {
  std::string out;
  struct Visitor {
    std::string& out;
    void operator()(std::nullptr_t) const { out += "null"; }
    void operator()(bool b) const { out += b ? "true" : "false"; }
    void operator()(double d) const { append_number(out, d); }
    void operator()(const std::string& s) const { append_escaped(out, s); }
    void operator()(const Object& o) const {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : o) {
        if (!first) out.push_back(',');
        first = false;
        append_escaped(out, k);
        out.push_back(':');
        out += v.dump();
      }
      out.push_back('}');
    }
    void operator()(const Array& a) const {
      out.push_back('[');
      bool first = true;
      for (const auto& v : a) {
        if (!first) out.push_back(',');
        first = false;
        out += v.dump();
      }
      out.push_back(']');
    }
  };
  std::visit(Visitor{out}, value_);
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace salign::serve
