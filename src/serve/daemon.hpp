#pragma once

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "serve/journal.hpp"
#include "serve/socket.hpp"
#include "util/budget.hpp"

namespace salign::serve {

/// Tuning of one daemon instance (`salign serve` flags map 1:1).
struct DaemonOptions {
  std::string socket_path;   ///< Unix-domain socket to serve on (required)
  std::string journal_dir;   ///< job journal + per-job checkpoints (required)
  /// Admission bound: at most this many jobs may be queued (not counting
  /// the running one). Submits beyond it are shed with "overloaded" and a
  /// retry_after_ms hint — explicit load shedding, never silent queueing.
  int queue_limit = 64;
  /// SIGTERM/shutdown drain: how long a running job may keep running
  /// before its cancel token is pulled. The cancelled job checkpoints and
  /// is re-journaled queued, so the next start resumes it bit-identically.
  double drain_deadline_seconds = 10.0;
  /// Applied to jobs that don't set their own limits (0 = none).
  double default_deadline_seconds = 0.0;
  std::uint64_t default_max_memory = 0;
  /// Route repeated muscle phase work through the process-wide
  /// util::ArtifactCache — the daemon is the multi-tenant case the cache
  /// exists for. Never changes output.
  bool use_artifact_cache = true;
  /// Diagnostics sink (nullptr = silent). Written from both the accept
  /// loop and the executor thread; the daemon serializes access.
  std::ostream* log = nullptr;
  /// Async-signal-safe stop request: the accept loop polls this flag (set
  /// it from a SIGTERM/SIGINT handler) and begins the drain when nonzero.
  const volatile std::sig_atomic_t* stop_flag = nullptr;
};

/// The `salign serve` daemon: accepts alignment jobs over a local socket
/// (newline-delimited JSON, docs/serve_protocol.md), admission-controls
/// them into a bounded queue, and executes them one at a time on an
/// executor thread — each job under its own util::Budget (deadline +
/// memory bound) and util::CancelToken, with a per-job checkpoint
/// directory so every interruption (deadline, cancel, drain, kill -9) is
/// resumable bit-identically.
///
/// One job at a time is a correctness choice, not a simplification: the
/// pipeline's budget scope (util::ScopedBudget) is process-wide, and
/// per-job `threads` already parallelizes within a job — cross-job
/// concurrency would let one job's deadline evict another.
///
/// Crash tolerance: every state transition is journaled durably *before*
/// it is acknowledged or acted on (Journal). On startup the daemon
/// replays the journal: interrupted `running` jobs and still-`queued`
/// jobs re-enter the queue (their checkpoints make the rerun a resume),
/// terminal jobs stay visible to `salign jobs`.
class Daemon {
 public:
  /// Everything the daemon counts, exposed for tests and the ping op.
  struct Counters {
    std::uint64_t accepted = 0;        ///< submits journaled + acknowledged
    std::uint64_t shed = 0;            ///< submits rejected: queue full
    std::uint64_t bad_requests = 0;    ///< malformed/invalid requests
    std::uint64_t journal_errors = 0;  ///< submits rejected: journal write
    std::uint64_t dropped_connections = 0;  ///< socket IO failures survived
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t evicted = 0;    ///< deadline-blown, checkpoint kept
    std::uint64_t cancelled = 0;
    std::uint64_t requeued = 0;   ///< drain-interrupted, journaled queued
    std::uint64_t replayed = 0;   ///< jobs re-enqueued by startup replay
    std::uint64_t quarantined = 0;  ///< journal files set aside at replay
  };

  explicit Daemon(DaemonOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket, replays the journal, serves until a stop is
  /// requested (shutdown op, request_stop(), or options.stop_flag), then
  /// drains and returns. Throws ResourceError when the socket cannot be
  /// bound or the journal directory is unusable (CLI exit code 5).
  void run();

  /// Ask a running daemon to stop and drain; callable from any thread.
  void request_stop();

  /// Blocks until run() is accepting connections (or returns false after
  /// `timeout_seconds`). For embedding run() on a thread, as tests do.
  [[nodiscard]] bool wait_until_ready(double timeout_seconds);

  [[nodiscard]] Counters counters() const;

 private:
  struct Outcome {
    JobState state = JobState::kDone;
    int exit_code = 0;
    std::string error;
  };

  void handle_connection(SocketStream stream);
  [[nodiscard]] Json dispatch(const Json& request);
  [[nodiscard]] Json op_submit(const Json& request);
  [[nodiscard]] Json op_status(const Json& request);
  [[nodiscard]] Json op_jobs() const;
  [[nodiscard]] Json op_cancel(const Json& request);
  [[nodiscard]] Json op_ping() const;

  void replay_journal();
  void executor_loop();
  [[nodiscard]] Outcome run_job(const JobRecord& rec,
                                const std::shared_ptr<util::CancelToken>& tok);
  void drain();
  void log_line(const std::string& line);
  /// Journals `rec`; on journal failure logs and keeps the in-memory copy
  /// authoritative (the daemon soldiers on; the operator sees the log).
  void record_best_effort(const JobRecord& rec);
  [[nodiscard]] bool stop_requested() const;

  DaemonOptions options_;
  std::optional<Journal> journal_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<std::string> queue_;          ///< queued job ids, FIFO
  std::map<std::string, JobRecord> jobs_;  ///< every known job by id
  std::string running_id_;                 ///< empty when executor idle
  std::shared_ptr<util::CancelToken> running_cancel_;
  std::uint64_t next_seq_ = 1;
  Counters counters_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};  ///< drain watchdog pulled the token

  std::mutex ready_mu_;
  std::condition_variable ready_cv_;
  bool ready_ = false;

  std::mutex log_mu_;
};

}  // namespace salign::serve
