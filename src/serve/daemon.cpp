#include "serve/daemon.hpp"

#include <memory>
#include <mutex>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <span>
#include <sstream>
#include <thread>

#include "bio/fasta.hpp"
#include "cli/arg_parser.hpp"
#include "cli/commands.hpp"
#include "core/sample_align_d.hpp"
#include "msa/alignment.hpp"
#include "msa/clustal_format.hpp"
#include "util/io.hpp"
#include "util/thread_pool.hpp"

namespace salign::serve {

namespace fs = std::filesystem;

namespace {

[[nodiscard]] std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

[[nodiscard]] Json error_response(const std::string& code,
                                  const std::string& what) {
  Json::Object o;
  o.emplace("v", kWireVersion);
  o.emplace("ok", false);
  o.emplace("code", code);
  o.emplace("error", what);
  return Json(std::move(o));
}

[[nodiscard]] std::string job_id_for(std::uint64_t seq) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "j%06llu",
                static_cast<unsigned long long>(seq));
  return buf;
}

}  // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {}

Daemon::~Daemon() = default;

void Daemon::request_stop() {
  stop_.store(true);
  queue_cv_.notify_all();
}

bool Daemon::stop_requested() const {
  if (stop_.load()) return true;
  return options_.stop_flag != nullptr && *options_.stop_flag != 0;
}

bool Daemon::wait_until_ready(double timeout_seconds) {
  std::unique_lock lk(ready_mu_);
  return ready_cv_.wait_for(
      lk, std::chrono::duration<double>(timeout_seconds),
      [&] { return ready_; });
}

Daemon::Counters Daemon::counters() const {
  std::lock_guard lk(mu_);
  return counters_;
}

void Daemon::log_line(const std::string& line) {
  if (options_.log == nullptr) return;
  std::lock_guard lk(log_mu_);
  *options_.log << "[serve] " << line << "\n" << std::flush;
}

void Daemon::record_best_effort(const JobRecord& rec) {
  try {
    journal_->record(rec);
  } catch (const std::exception& e) {
    // The in-memory record stays authoritative; a dead journal is an
    // operator problem the log surfaces, not a reason to lose the daemon.
    log_line("journal write failed for " + rec.id + ": " + e.what());
  }
}

void Daemon::replay_journal() {
  std::vector<std::string> quarantined;
  std::vector<JobRecord> records = journal_->replay(&quarantined);
  std::lock_guard lk(mu_);
  counters_.quarantined += quarantined.size();
  for (const auto& q : quarantined) log_line("journal: quarantined " + q);
  for (JobRecord& rec : records) {
    next_seq_ = std::max(next_seq_, rec.seq + 1);
    if (rec.state == JobState::kRunning) {
      // Interrupted mid-run (crash or kill -9). Its checkpoint directory
      // holds every stage that completed; re-queueing makes the rerun a
      // bit-identical resume, so this transition loses no work.
      rec.state = JobState::kQueued;
      rec.updated_ms = now_ms();
      record_best_effort(rec);
      log_line("replay: " + rec.id + " was running; re-queued for resume");
    }
    if (rec.state == JobState::kQueued) {
      queue_.push_back(rec.id);
      ++counters_.replayed;
    }
    jobs_.emplace(rec.id, std::move(rec));
  }
  if (!jobs_.empty())
    log_line("replayed " + std::to_string(jobs_.size()) + " job(s), " +
             std::to_string(queue_.size()) + " queued");
}

void Daemon::run() {
  if (options_.socket_path.empty() || options_.journal_dir.empty())
    throw ResourceError("serve: --socket and --journal-dir are required");
  journal_.emplace(options_.journal_dir);  // ResourceError when unusable
  replay_journal();
  SocketListener listener(options_.socket_path);  // ResourceError on bind
  {
    std::lock_guard lk(ready_mu_);
    ready_ = true;
  }
  ready_cv_.notify_all();
  log_line("serving on " + options_.socket_path + " (journal " +
           options_.journal_dir + ", queue limit " +
           std::to_string(options_.queue_limit) + ")");

  std::thread executor([this] { executor_loop(); });
  try {
    while (!stop_requested()) {
      std::optional<SocketStream> conn;
      try {
        conn = listener.accept(200);
      } catch (const util::IoError& e) {
        // Includes injected "serve.accept" faults: the connection is
        // dropped (peer sees EOF), the daemon keeps serving.
        {
          std::lock_guard lk(mu_);
          ++counters_.dropped_connections;
        }
        log_line("accept failed: " + std::string(e.what()));
        continue;
      }
      if (conn.has_value()) handle_connection(std::move(*conn));
    }
  } catch (...) {
    request_stop();
    executor.join();
    throw;
  }
  request_stop();
  drain();
  executor.join();
  const Counters c = counters();
  log_line("stopped: accepted " + std::to_string(c.accepted) + ", done " +
           std::to_string(c.done) + ", failed " + std::to_string(c.failed) +
           ", evicted " + std::to_string(c.evicted) + ", cancelled " +
           std::to_string(c.cancelled) + ", requeued " +
           std::to_string(c.requeued) + ", shed " + std::to_string(c.shed));
}

void Daemon::drain() {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.drain_deadline_seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard lk(mu_);
      if (running_id_.empty()) return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::lock_guard lk(mu_);
  if (!running_id_.empty() && running_cancel_ != nullptr) {
    log_line("drain deadline passed; cancelling " + running_id_ +
             " (it will checkpoint and resume on next start)");
    draining_.store(true);
    running_cancel_->request();
  }
}

void Daemon::handle_connection(SocketStream stream) {
  try {
    while (std::optional<std::string> line = stream.read_line(5000)) {
      if (line->empty()) continue;
      Json response;
      try {
        response = dispatch(Json::parse(*line));
      } catch (const WireError& e) {
        {
          std::lock_guard lk(mu_);
          ++counters_.bad_requests;
        }
        response = error_response("bad_request", e.what());
      }
      stream.write_line(response.dump());
    }
  } catch (const util::IoError& e) {
    // Read/write faults (real or injected "serve.read"/"serve.write"):
    // the connection dies, the daemon does not.
    {
      std::lock_guard lk(mu_);
      ++counters_.dropped_connections;
    }
    log_line("connection dropped: " + std::string(e.what()));
  }
}

Json Daemon::dispatch(const Json& request) {
  const double v = request.get_number("v", kWireVersion);
  if (v != static_cast<double>(kWireVersion))
    return error_response("bad_request",
                          "unsupported protocol version " +
                              std::to_string(static_cast<int>(v)) +
                              " (this daemon speaks v" +
                              std::to_string(kWireVersion) + ")");
  const std::string op = request.get_string("op");
  if (op == "submit") return op_submit(request);
  if (op == "status") return op_status(request);
  if (op == "jobs") return op_jobs();
  if (op == "cancel") return op_cancel(request);
  if (op == "ping") return op_ping();
  if (op == "shutdown") {
    log_line("shutdown requested; draining");
    request_stop();
    Json::Object o;
    o.emplace("v", kWireVersion);
    o.emplace("ok", true);
    o.emplace("state", "draining");
    return Json(std::move(o));
  }
  {
    std::lock_guard lk(mu_);
    ++counters_.bad_requests;
  }
  return error_response("bad_request", "unknown op '" + op + "'");
}

Json Daemon::op_submit(const Json& request) {
  if (stop_requested())
    return error_response("shutting_down", "daemon is draining");
  JobSpec spec;
  try {
    spec = JobSpec::from_json(request);
    if (spec.output.empty()) throw WireError("job spec: 'out' is required");
    if (!fs::path(spec.input).is_absolute() ||
        !fs::path(spec.output).is_absolute())
      throw WireError("job spec: 'in' and 'out' must be absolute paths "
                      "(the daemon's cwd is not the client's)");
    if (!fs::exists(spec.input))
      throw WireError("job spec: input " + spec.input + " does not exist");
    if (spec.aligner != "muscle")
      (void)cli::make_aligner(spec.aligner, 1);  // UsageError on bad names
  } catch (const cli::UsageError& e) {
    std::lock_guard lk(mu_);
    ++counters_.bad_requests;
    return error_response("bad_request", e.what());
  } catch (const WireError& e) {
    std::lock_guard lk(mu_);
    ++counters_.bad_requests;
    return error_response("bad_request", e.what());
  }

  JobRecord rec;
  {
    std::lock_guard lk(mu_);
    if (queue_.size() >= static_cast<std::size_t>(options_.queue_limit)) {
      ++counters_.shed;
      // Load shedding, not silent queueing: the client gets an explicit
      // back-off hint that grows with the backlog.
      const std::uint64_t retry_ms = std::min<std::uint64_t>(
          5000, 100 * (queue_.size() + 1));
      Json resp = error_response("overloaded",
                                 "queue full (" +
                                     std::to_string(queue_.size()) + "/" +
                                     std::to_string(options_.queue_limit) +
                                     " jobs queued)");
      Json::Object o = resp.as_object();
      o.emplace("retry_after_ms", retry_ms);
      return Json(std::move(o));
    }
    rec.seq = next_seq_++;
    rec.id = job_id_for(rec.seq);
    rec.state = JobState::kQueued;
    rec.spec = std::move(spec);
    rec.submitted_ms = now_ms();
    rec.updated_ms = rec.submitted_ms;
  }
  // Durability before acknowledgment: the record must be on disk before
  // the client hears "queued" — an acknowledged job survives kill -9.
  try {
    journal_->record(rec);
  } catch (const std::exception& e) {
    std::lock_guard lk(mu_);
    ++counters_.journal_errors;
    return error_response("journal_error",
                          std::string("job not accepted: ") + e.what());
  }
  std::size_t depth = 0;
  {
    std::lock_guard lk(mu_);
    jobs_.emplace(rec.id, rec);
    queue_.push_back(rec.id);
    depth = queue_.size();
    ++counters_.accepted;
  }
  queue_cv_.notify_one();
  log_line("accepted " + rec.id + " (" + rec.spec.input + ", queue depth " +
           std::to_string(depth) + ")");
  Json::Object o;
  o.emplace("v", kWireVersion);
  o.emplace("ok", true);
  o.emplace("id", rec.id);
  o.emplace("state", to_string(rec.state));
  o.emplace("queue_depth", static_cast<std::uint64_t>(depth));
  return Json(std::move(o));
}

Json Daemon::op_status(const Json& request) {
  const std::string id = request.get_string("id");
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    return error_response("not_found", "no job '" + id + "'");
  Json::Object o;
  o.emplace("v", kWireVersion);
  o.emplace("ok", true);
  o.emplace("job", it->second.to_json());
  return Json(std::move(o));
}

Json Daemon::op_jobs() const {
  std::lock_guard lk(mu_);
  std::vector<const JobRecord*> ordered;
  ordered.reserve(jobs_.size());
  for (const auto& [_, rec] : jobs_) ordered.push_back(&rec);
  std::sort(ordered.begin(), ordered.end(),
            [](const JobRecord* a, const JobRecord* b) {
              return a->seq < b->seq;
            });
  Json::Array arr;
  for (const JobRecord* rec : ordered) arr.push_back(rec->to_json());
  Json::Object o;
  o.emplace("v", kWireVersion);
  o.emplace("ok", true);
  o.emplace("jobs", Json(std::move(arr)));
  return Json(std::move(o));
}

Json Daemon::op_cancel(const Json& request) {
  const std::string id = request.get_string("id");
  JobRecord terminal_copy;
  bool journal_it = false;
  Json response;
  {
    std::lock_guard lk(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
      return error_response("not_found", "no job '" + id + "'");
    JobRecord& rec = it->second;
    if (is_terminal(rec.state))
      return error_response("already_terminal",
                            "job " + id + " is already " +
                                to_string(rec.state));
    Json::Object o;
    o.emplace("v", kWireVersion);
    o.emplace("ok", true);
    o.emplace("id", id);
    if (rec.state == JobState::kQueued) {
      queue_.erase(std::remove(queue_.begin(), queue_.end(), id),
                   queue_.end());
      rec.state = JobState::kCancelled;
      rec.exit_code = 4;
      rec.error = "cancelled while queued";
      rec.updated_ms = now_ms();
      ++counters_.cancelled;
      terminal_copy = rec;
      journal_it = true;
      o.emplace("state", to_string(rec.state));
    } else {  // running: cooperative — the pipeline stops at a boundary
      if (running_cancel_ != nullptr) running_cancel_->request();
      o.emplace("state", "cancelling");
    }
    response = Json(std::move(o));
  }
  if (journal_it) record_best_effort(terminal_copy);
  return response;
}

Json Daemon::op_ping() const {
  std::lock_guard lk(mu_);
  Json::Object counts;
  counts.emplace("accepted", counters_.accepted);
  counts.emplace("shed", counters_.shed);
  counts.emplace("bad_requests", counters_.bad_requests);
  counts.emplace("journal_errors", counters_.journal_errors);
  counts.emplace("dropped_connections", counters_.dropped_connections);
  counts.emplace("done", counters_.done);
  counts.emplace("failed", counters_.failed);
  counts.emplace("evicted", counters_.evicted);
  counts.emplace("cancelled", counters_.cancelled);
  counts.emplace("requeued", counters_.requeued);
  counts.emplace("replayed", counters_.replayed);
  counts.emplace("quarantined", counters_.quarantined);
  Json::Object o;
  o.emplace("v", kWireVersion);
  o.emplace("ok", true);
  o.emplace("state", stop_.load() ? "draining" : "serving");
  o.emplace("pid", static_cast<std::int64_t>(::getpid()));
  o.emplace("queued", static_cast<std::uint64_t>(queue_.size()));
  o.emplace("running", running_id_);
  o.emplace("counters", Json(std::move(counts)));
  return Json(std::move(o));
}

void Daemon::executor_loop() {
  for (;;) {
    JobRecord rec;
    std::shared_ptr<util::CancelToken> tok;
    {
      std::unique_lock lk(mu_);
      queue_cv_.wait(lk, [&] { return stop_.load() || !queue_.empty(); });
      // Stop wins even with work queued: queued jobs are journaled and
      // re-enter the queue on the next start.
      if (stop_.load()) return;
      const std::string id = queue_.front();
      queue_.pop_front();
      const auto it = jobs_.find(id);
      if (it == jobs_.end() || it->second.state != JobState::kQueued)
        continue;  // cancelled between enqueue and dequeue
      it->second.state = JobState::kRunning;
      it->second.attempts += 1;
      it->second.updated_ms = now_ms();
      rec = it->second;
      tok = std::make_shared<util::CancelToken>();
      running_id_ = id;
      running_cancel_ = tok;
    }
    record_best_effort(rec);
    log_line("running " + rec.id + " (attempt " +
             std::to_string(rec.attempts) + ")");
    const Outcome out = run_job(rec, tok);
    {
      std::lock_guard lk(mu_);
      const auto it = jobs_.find(rec.id);
      if (it != jobs_.end()) {
        it->second.state = out.state;
        it->second.exit_code = out.exit_code;
        it->second.error = out.error;
        it->second.updated_ms = now_ms();
        rec = it->second;
      }
      switch (out.state) {
        case JobState::kDone: ++counters_.done; break;
        case JobState::kFailed: ++counters_.failed; break;
        case JobState::kEvicted: ++counters_.evicted; break;
        case JobState::kCancelled: ++counters_.cancelled; break;
        case JobState::kQueued:
          // Drain interrupted it: back on the queue (front — it resumes
          // first next start) with its checkpoint intact.
          queue_.push_front(rec.id);
          ++counters_.requeued;
          break;
        case JobState::kRunning: break;  // unreachable
      }
      running_id_.clear();
      running_cancel_.reset();
    }
    record_best_effort(rec);
    log_line(rec.id + " -> " + to_string(rec.state) +
             (rec.error.empty() ? "" : (": " + rec.error)));
  }
}

Daemon::Outcome Daemon::run_job(
    const JobRecord& rec, const std::shared_ptr<util::CancelToken>& tok) {
  const JobSpec& spec = rec.spec;
  try {
    const std::vector<bio::Sequence> seqs =
        bio::read_fasta_file(spec.input);
    core::SampleAlignDConfig cfg;
    cfg.num_procs = spec.procs;
    cfg.threads = spec.threads == 0 ? util::default_threads()
                                    : static_cast<unsigned>(spec.threads);
    if (spec.aligner != "muscle")
      cfg.local_aligner = cli::make_aligner(spec.aligner, cfg.threads);
    // Every job checkpoints into its own directory and always resumes:
    // on a fresh job the directory is empty and resume is a no-op; after
    // any interruption (deadline, cancel, drain, crash) the rerun loads
    // the completed stages back and is bit-identical to an uninterrupted
    // run — the recovery contract inherited from core/stage.
    cfg.checkpoint.dir = journal_->checkpoint_dir(rec.id);
    cfg.checkpoint.resume = true;
    cfg.use_artifact_cache =
        options_.use_artifact_cache && spec.aligner == "muscle";
    cfg.budget.deadline_seconds = spec.deadline_seconds > 0.0
                                      ? spec.deadline_seconds
                                      : options_.default_deadline_seconds;
    cfg.budget.max_memory_bytes =
        spec.max_memory > 0 ? spec.max_memory : options_.default_max_memory;
    cfg.cancel = tok;
    const msa::Alignment aln = core::SampleAlignD(cfg).align(seqs);
    std::ostringstream os;
    if (spec.format == "clustal") {
      msa::write_clustal(os, aln);
    } else {
      msa::write_aligned_fasta(os, aln);
    }
    const std::string text = os.str();
    util::retry_io("serve.result.write", [&] {
      util::write_file_durable(
          spec.output,
          std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(text.data()),
              text.size()),
          "serve.result.write");
    });
    return {JobState::kDone, 0, ""};
  } catch (const util::DeadlineExceeded& e) {
    // Deadline eviction: the stage machinery guarantees the checkpoint
    // left behind is verify-clean, so an operator (or a resubmit with a
    // bigger budget) resumes instead of restarting.
    return {JobState::kEvicted, 4, e.what()};
  } catch (const util::CancelledError& e) {
    if (draining_.load()) return {JobState::kQueued, 0, ""};
    return {JobState::kCancelled, 4, e.what()};
  } catch (const bio::InvalidInput& e) {
    return {JobState::kFailed, 3, e.what()};
  } catch (const std::invalid_argument& e) {
    return {JobState::kFailed, 3, e.what()};
  } catch (const std::exception& e) {
    return {JobState::kFailed, 1, e.what()};
  }
}

}  // namespace salign::serve
