#include "serve/client.hpp"

#include <chrono>
#include <thread>

#include "serve/socket.hpp"
#include "util/io.hpp"

namespace salign::serve {

Json request(const std::string& socket_path, const Json& req,
             int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  // The connect retries inline rather than through retry_io: the useful
  // horizon is the caller's timeout, not the disk-blip backoff schedule.
  SocketStream stream;
  for (;;) {
    try {
      stream = SocketStream::connect(socket_path);
      break;
    } catch (const util::IoError&) {
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  stream.write_line(req.dump(), timeout_ms);
  const auto line = stream.read_line(timeout_ms);
  if (!line.has_value())
    throw util::IoError("daemon closed the connection without answering",
                        true);
  return Json::parse(*line);
}

}  // namespace salign::serve
