#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "bio/sequence.hpp"

namespace salign::kmer {

/// Parameters of the k-mer similarity index.
///
/// The paper (following Edgar, NAR 2004) counts contiguous k-mers, optionally
/// over a compressed amino-acid alphabet, which keeps sensitivity for
/// divergent sequences while shrinking the k-mer space. k = 4 on the
/// 14-letter compressed alphabet is a good default for protein lengths
/// around 300 (the paper's regime).
struct KmerParams {
  int k = 4;
  /// Count over the SE-B(14)-style compressed alphabet (proteins only).
  bool compressed = true;
};

/// Bits per residue of the packed k-mer id encoding for `alpha`: 2 for DNA,
/// 4 for the compressed 14-letter alphabet, 5 for amino acids. A k-mer id
/// is the concatenation of its residues' packed codes (one shift-or per
/// window position), so k-mer spaces are powers of two and small ones count
/// into a dense table instead of being sorted.
[[nodiscard]] int packed_kmer_bits(const bio::Alphabet& alpha);

/// How from_sequence turns the rolled k-mer id stream into sorted counts.
/// kAuto picks kDense (one-level table for small id spaces, a two-level
/// lazily-allocated block table for large ones); kSort is the O(W log W)
/// sort-and-group fallback retained as the differential-testing oracle.
enum class KmerCountMode : std::uint8_t { kAuto, kDense, kSort };

/// Sparse k-mer count vector of one sequence: sorted (kmer-id, count) pairs
/// over bit-packed ids (see packed_kmer_bits).
///
/// Windows containing the alphabet wildcard are skipped. Profiles are the
/// unit of comparison for the k-mer fractional-identity measure
///   r(x, y) = sum_tau min(n_x(tau), n_y(tau)) / (min(|x|,|y|) - k + 1)
/// which is the exact formula in the paper's "k-mer Rank" definition.
class KmerProfile {
 public:
  KmerProfile() = default;

  static KmerProfile from_sequence(const bio::Sequence& seq,
                                   const KmerParams& params,
                                   KmerCountMode mode = KmerCountMode::kAuto);

  /// Fraction of common k-mers r(x, y) in [0, 1]. Sequences shorter than k
  /// yield 0 (no shared k-mer evidence).
  [[nodiscard]] double similarity(const KmerProfile& other) const;

  /// Residue length of the originating sequence.
  [[nodiscard]] std::size_t length() const { return length_; }
  [[nodiscard]] int k() const { return k_; }
  /// Number of distinct k-mers.
  [[nodiscard]] std::size_t distinct() const { return counts_.size(); }
  [[nodiscard]] std::span<const std::pair<std::uint32_t, std::uint32_t>>
  counts() const {
    return counts_;
  }

 private:
  std::vector<std::pair<std::uint32_t, std::uint32_t>> counts_;
  std::size_t length_ = 0;
  int k_ = 0;
};

/// Builds profiles for a whole set with shared parameters.
[[nodiscard]] std::vector<KmerProfile> build_profiles(
    std::span<const bio::Sequence> seqs, const KmerParams& params);

}  // namespace salign::kmer
