#include "kmer/kmer_profile.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace salign::kmer {

namespace {

/// One-level dense count tables are used while the packed k-mer space fits
/// in this many slots (256 Ki ids = 1 MiB of scratch).
constexpr std::uint64_t kDenseTableLimit = 1ULL << 18;

/// Larger spaces count through a two-level table: a top-level directory of
/// block handles over lazily-assigned blocks of 2^kBlockBits counts. Only
/// blocks that actually receive a k-mer are allocated (at most one per
/// window), so uncompressed amino-acid spaces up to 2^32 ids cost a few
/// megabytes of persistent directory plus O(windows) block scratch instead
/// of the sort fallback's O(W log W) time.
constexpr int kBlockBits = 12;  // 4096 counts (16 KiB) per block

/// Two-level scratch: persists thread-locally across calls like the
/// one-level table; only touched slots/blocks are reset between calls.
struct TwoLevelTable {
  std::vector<std::uint32_t> block_of;  // directory: 0 = unassigned
  std::vector<std::uint32_t> counts;    // block pool, grown on demand
  std::uint32_t used_blocks = 0;

  void count(std::span<const std::uint32_t> ids,
             std::vector<std::uint32_t>& touched, std::uint64_t space) {
    const std::size_t dirs =
        static_cast<std::size_t>((space + (1ULL << kBlockBits) - 1) >>
                                 kBlockBits);
    if (block_of.size() < dirs) block_of.resize(dirs, 0);
    for (const std::uint32_t id : ids) {
      const std::uint32_t dir = id >> kBlockBits;
      std::uint32_t blk = block_of[dir];
      if (blk == 0) {
        blk = ++used_blocks;  // handle 0 stays "unassigned"
        block_of[dir] = blk;
        const std::size_t need = static_cast<std::size_t>(blk)
                                 << kBlockBits;
        if (counts.size() < need) counts.resize(need, 0);
      }
      std::uint32_t& slot =
          counts[(static_cast<std::size_t>(blk - 1) << kBlockBits) +
                 (id & ((1U << kBlockBits) - 1))];
      if (slot == 0) touched.push_back(id);
      ++slot;
    }
  }

  [[nodiscard]] std::uint32_t take(std::uint32_t id) {
    const std::uint32_t blk = block_of[id >> kBlockBits];
    std::uint32_t& slot =
        counts[(static_cast<std::size_t>(blk - 1) << kBlockBits) +
               (id & ((1U << kBlockBits) - 1))];
    const std::uint32_t c = slot;
    slot = 0;
    return c;
  }

  void reset_blocks(std::span<const std::uint32_t> touched) {
    for (const std::uint32_t id : touched) block_of[id >> kBlockBits] = 0;
    used_blocks = 0;
    // The pool persists thread-locally for reuse, but a pathological call
    // (every window in its own block) must not pin tens of megabytes for
    // the thread's lifetime: release outsized pools.
    constexpr std::size_t kMaxRetainedCounts = 1U << 20;  // 4 MiB
    if (counts.size() > kMaxRetainedCounts) {
      counts.clear();
      counts.shrink_to_fit();
    }
  }
};

}  // namespace

int packed_kmer_bits(const bio::Alphabet& alpha) {
  const auto letters = static_cast<unsigned>(alpha.letters());
  return std::max(1, static_cast<int>(std::bit_width(letters - 1)));
}

KmerProfile KmerProfile::from_sequence(const bio::Sequence& seq,
                                      const KmerParams& params,
                                      KmerCountMode mode) {
  if (params.k <= 0) throw std::invalid_argument("KmerParams.k must be > 0");
  const bool compress = params.compressed &&
                        seq.alphabet_kind() == bio::AlphabetKind::AminoAcid;
  const bio::Alphabet& alpha =
      compress ? bio::Alphabet::compressed14() : seq.alphabet();
  const std::uint8_t wildcard = alpha.wildcard();

  // Pack residues at the alphabet's bit width (2 bits for DNA, 4 for the
  // compressed 14-letter alphabet, 5 for amino acids): a k-mer id is then a
  // single shift-or per window instead of k base-multiplications, and the
  // id space is a power of two so small spaces count into a dense table.
  // When the padded width overflows 32 bits but the exact base-|alphabet|
  // space still fits (e.g. uncompressed amino acids at k = 7), fall back to
  // rolling base-N ids so the historically accepted k range is preserved.
  const int bits = packed_kmer_bits(alpha);
  const auto k = static_cast<std::size_t>(params.k);
  const std::uint64_t id_bits =
      static_cast<std::uint64_t>(bits) * static_cast<std::uint64_t>(k);
  const auto base = static_cast<std::uint64_t>(alpha.size());
  std::uint64_t space;
  if (id_bits <= 32) {
    space = 1ULL << id_bits;
  } else {
    space = 1;
    for (std::size_t i = 0; i < k; ++i) {
      space *= base;
      if (space > (1ULL << 32))
        throw std::invalid_argument("KmerParams.k too large for alphabet");
    }
  }

  KmerProfile p;
  p.length_ = seq.size();
  p.k_ = params.k;
  if (seq.size() < k) return p;

  // Rolling window: shift (or multiply) in one code per position; a
  // wildcard resets the run so windows containing it are skipped. The
  // base-N roll drops the outgoing digit explicitly.
  std::vector<std::uint32_t> ids;
  ids.reserve(seq.size());
  const bool bit_packed = id_bits <= 32;
  const std::uint32_t mask =
      !bit_packed ? 0U
      : id_bits == 32
          ? 0xFFFFFFFFU
          : static_cast<std::uint32_t>((1ULL << id_bits) - 1);
  std::uint64_t high_digit = 1;  // base^(k-1), for the base-N roll
  for (std::size_t i = 0; i + 1 < k; ++i) high_digit *= base;
  std::uint64_t id = 0;
  std::size_t run = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    std::uint8_t c = seq.code(i);
    if (compress) c = alpha.compress_amino(c);
    if (c == wildcard) {
      run = 0;
      id = 0;
      continue;
    }
    if (bit_packed) {
      id = ((id << bits) | c) & mask;
    } else {
      if (run >= k) id %= high_digit;  // drop the window's oldest digit
      id = id * base + c;
    }
    if (++run >= k) ids.push_back(static_cast<std::uint32_t>(id));
  }
  // Scratch of a two-level count run is bounded by one 16 KiB block per
  // window; past this many windows on a huge id space the sort fallback is
  // the safer memory/time trade (only reachable for multi-thousand-residue
  // sequences on uncompressed amino alphabets with large k).
  constexpr std::size_t kTwoLevelWindowCap = 2048;

  if (space <= kDenseTableLimit && mode != KmerCountMode::kSort) {
    // One-level dense counting: O(windows) with one table slot per possible
    // id. The scratch table persists across calls and only touched slots
    // are cleared, so building a whole set's profiles stays
    // allocation-free.
    thread_local std::vector<std::uint32_t> table;
    if (table.size() < space) table.resize(space, 0);
    std::vector<std::uint32_t> touched;
    touched.reserve(ids.size());
    for (const std::uint32_t v : ids) {
      if (table[v] == 0) touched.push_back(v);
      ++table[v];
    }
    std::sort(touched.begin(), touched.end());
    p.counts_.reserve(touched.size());
    for (const std::uint32_t v : touched) {
      p.counts_.emplace_back(v, table[v]);
      table[v] = 0;
    }
  } else if (mode == KmerCountMode::kDense ||
             (mode == KmerCountMode::kAuto &&
              ids.size() <= kTwoLevelWindowCap)) {
    // Two-level dense counting for the big spaces (uncompressed amino
    // k >= 4): directory + lazily-assigned count blocks, still O(windows).
    thread_local TwoLevelTable table;
    std::vector<std::uint32_t> touched;
    touched.reserve(ids.size());
    table.count(ids, touched, space);
    std::sort(touched.begin(), touched.end());
    p.counts_.reserve(touched.size());
    for (const std::uint32_t v : touched)
      p.counts_.emplace_back(v, table.take(v));
    table.reset_blocks(touched);
  } else {
    std::sort(ids.begin(), ids.end());
    for (std::size_t i = 0; i < ids.size();) {
      std::size_t j = i;
      while (j < ids.size() && ids[j] == ids[i]) ++j;
      p.counts_.emplace_back(ids[i], static_cast<std::uint32_t>(j - i));
      i = j;
    }
  }
  return p;
}

double KmerProfile::similarity(const KmerProfile& other) const {
  if (k_ != other.k_)
    throw std::invalid_argument("KmerProfile: mismatched k");
  const std::size_t min_len = std::min(length_, other.length_);
  if (min_len < static_cast<std::size_t>(k_)) return 0.0;

  std::uint64_t shared = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < counts_.size() && j < other.counts_.size()) {
    if (counts_[i].first < other.counts_[j].first) {
      ++i;
    } else if (counts_[i].first > other.counts_[j].first) {
      ++j;
    } else {
      shared += std::min(counts_[i].second, other.counts_[j].second);
      ++i;
      ++j;
    }
  }
  const auto denom =
      static_cast<double>(min_len - static_cast<std::size_t>(k_) + 1);
  return static_cast<double>(shared) / denom;
}

std::vector<KmerProfile> build_profiles(std::span<const bio::Sequence> seqs,
                                        const KmerParams& params) {
  std::vector<KmerProfile> out;
  out.reserve(seqs.size());
  for (const auto& s : seqs) out.push_back(KmerProfile::from_sequence(s, params));
  return out;
}

}  // namespace salign::kmer
