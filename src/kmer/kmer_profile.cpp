#include "kmer/kmer_profile.hpp"

#include <algorithm>
#include <stdexcept>

namespace salign::kmer {

KmerProfile KmerProfile::from_sequence(const bio::Sequence& seq,
                                       const KmerParams& params) {
  if (params.k <= 0) throw std::invalid_argument("KmerParams.k must be > 0");
  const bool compress = params.compressed &&
                        seq.alphabet_kind() == bio::AlphabetKind::AminoAcid;
  const bio::Alphabet& alpha =
      compress ? bio::Alphabet::compressed14() : seq.alphabet();
  const auto base = static_cast<std::uint64_t>(alpha.size());
  const std::uint8_t wildcard = alpha.wildcard();

  // Guard against k-mer id overflow in 32 bits (base^k must fit).
  std::uint64_t space = 1;
  for (int i = 0; i < params.k; ++i) {
    space *= base;
    if (space > (1ULL << 32))
      throw std::invalid_argument("KmerParams.k too large for alphabet");
  }

  KmerProfile p;
  p.length_ = seq.size();
  p.k_ = params.k;
  if (seq.size() < static_cast<std::size_t>(params.k)) return p;

  std::vector<std::uint32_t> ids;
  ids.reserve(seq.size());
  const auto k = static_cast<std::size_t>(params.k);
  for (std::size_t i = 0; i + k <= seq.size(); ++i) {
    std::uint64_t id = 0;
    bool ok = true;
    for (std::size_t j = 0; j < k; ++j) {
      std::uint8_t c = seq.code(i + j);
      if (compress) c = alpha.compress_amino(c);
      if (c == wildcard) {
        ok = false;
        break;
      }
      id = id * base + c;
    }
    if (ok) ids.push_back(static_cast<std::uint32_t>(id));
  }

  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size();) {
    std::size_t j = i;
    while (j < ids.size() && ids[j] == ids[i]) ++j;
    p.counts_.emplace_back(ids[i], static_cast<std::uint32_t>(j - i));
    i = j;
  }
  return p;
}

double KmerProfile::similarity(const KmerProfile& other) const {
  if (k_ != other.k_)
    throw std::invalid_argument("KmerProfile: mismatched k");
  const std::size_t min_len = std::min(length_, other.length_);
  if (min_len < static_cast<std::size_t>(k_)) return 0.0;

  std::uint64_t shared = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < counts_.size() && j < other.counts_.size()) {
    if (counts_[i].first < other.counts_[j].first) {
      ++i;
    } else if (counts_[i].first > other.counts_[j].first) {
      ++j;
    } else {
      shared += std::min(counts_[i].second, other.counts_[j].second);
      ++i;
      ++j;
    }
  }
  const auto denom =
      static_cast<double>(min_len - static_cast<std::size_t>(k_) + 1);
  return static_cast<double>(shared) / denom;
}

std::vector<KmerProfile> build_profiles(std::span<const bio::Sequence> seqs,
                                        const KmerParams& params) {
  std::vector<KmerProfile> out;
  out.reserve(seqs.size());
  for (const auto& s : seqs) out.push_back(KmerProfile::from_sequence(s, params));
  return out;
}

}  // namespace salign::kmer
