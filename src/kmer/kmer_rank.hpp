#pragma once

#include <span>
#include <vector>

#include "kmer/kmer_profile.hpp"
#include "util/matrix.hpp"

namespace salign::kmer {

/// k-mer rank of a sequence given its mean similarity D to a reference set:
///
///   R = -ln(0.1 + D)
///
/// The paper prints "R = log(0.1 + D)", but its Table 1 statistics
/// (max 1.448, mean 0.72) only fit the negated natural log — which is exactly
/// Edgar's k-mer *distance* transform d = -ln(0.1 + F) (NAR 2004) that the
/// paper cites for the rank definition. We therefore implement the negated
/// form; see EXPERIMENTS.md ("Table 1") for the full justification.
/// R ranges in [-ln(1.1), -ln(0.1)] ~ [-0.0953, 2.3026]; low rank means
/// similar-to-everything, high rank means divergent.
[[nodiscard]] double rank_from_mean_similarity(double mean_similarity);

/// Mean k-mer similarity of `x` against every profile in `refs`
/// (self-comparisons included, as in the paper's D_i = (1/N) sum_j r_ij).
[[nodiscard]] double mean_similarity(const KmerProfile& x,
                                     std::span<const KmerProfile> refs);

/// Centralized ranks: every sequence ranked against the full set. This is
/// the O(N^2 L) reference the paper compares its sampling scheme to (Fig 1
/// "centralized").
[[nodiscard]] std::vector<double> centralized_ranks(
    std::span<const bio::Sequence> seqs, const KmerParams& params);

/// Globalized ranks: every sequence ranked against a (small) sample set that
/// stands in for the full population (Fig 1 "globalized"). This is the rank
/// the distributed pipeline computes after the sample-exchange round.
[[nodiscard]] std::vector<double> globalized_ranks(
    std::span<const bio::Sequence> seqs,
    std::span<const bio::Sequence> samples, const KmerParams& params);

/// Same, but with pre-built profiles (the pipeline reuses profiles across
/// phases to avoid recounting).
[[nodiscard]] std::vector<double> ranks_against(
    std::span<const KmerProfile> seqs, std::span<const KmerProfile> refs);

/// Pairwise k-mer distance matrix d = 1 - r, the guide-tree input used by
/// the MUSCLE-style aligner's first iteration.
[[nodiscard]] util::SymmetricMatrix<double> distance_matrix(
    std::span<const bio::Sequence> seqs, const KmerParams& params);

}  // namespace salign::kmer
