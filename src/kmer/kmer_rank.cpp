#include "kmer/kmer_rank.hpp"

#include <cmath>
#include <stdexcept>

namespace salign::kmer {

double rank_from_mean_similarity(double mean_similarity) {
  if (mean_similarity < 0.0 || mean_similarity > 1.0 + 1e-9)
    throw std::invalid_argument("mean similarity outside [0, 1]");
  return -std::log(0.1 + mean_similarity);
}

double mean_similarity(const KmerProfile& x,
                       std::span<const KmerProfile> refs) {
  if (refs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : refs) sum += x.similarity(r);
  return sum / static_cast<double>(refs.size());
}

std::vector<double> ranks_against(std::span<const KmerProfile> seqs,
                                  std::span<const KmerProfile> refs) {
  std::vector<double> out;
  out.reserve(seqs.size());
  for (const auto& p : seqs)
    out.push_back(rank_from_mean_similarity(mean_similarity(p, refs)));
  return out;
}

std::vector<double> centralized_ranks(std::span<const bio::Sequence> seqs,
                                      const KmerParams& params) {
  const std::vector<KmerProfile> profiles = build_profiles(seqs, params);
  return ranks_against(profiles, profiles);
}

std::vector<double> globalized_ranks(std::span<const bio::Sequence> seqs,
                                     std::span<const bio::Sequence> samples,
                                     const KmerParams& params) {
  const std::vector<KmerProfile> profiles = build_profiles(seqs, params);
  const std::vector<KmerProfile> refs = build_profiles(samples, params);
  return ranks_against(profiles, refs);
}

util::SymmetricMatrix<double> distance_matrix(
    std::span<const bio::Sequence> seqs, const KmerParams& params) {
  const std::vector<KmerProfile> profiles = build_profiles(seqs, params);
  util::SymmetricMatrix<double> d(seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    d(i, i) = 0.0;
    for (std::size_t j = 0; j < i; ++j)
      d(i, j) = 1.0 - profiles[i].similarity(profiles[j]);
  }
  return d;
}

}  // namespace salign::kmer
