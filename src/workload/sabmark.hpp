#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bio/sequence.hpp"
#include "msa/alignment.hpp"

namespace salign::workload {

/// SABmark's two difficulty tiers (Van Walle, Lasters & Wyns,
/// Bioinformatics 2005): "superfamily" groups share clear homology
/// (~25-50% identity); "twilight" groups sit at or below the twilight zone
/// (<25% identity), where alignment quality collapses for most tools. The
/// paper's §5 lists SABmark among the benchmarks to evaluate next; this
/// generator reproduces the two tiers with exact-history references.
enum class SabmarkTier {
  Superfamily,
  Twilight,
};

[[nodiscard]] std::string to_string(SabmarkTier tier);

/// One SABmark-style group: few sequences, high divergence, trusted
/// reference.
struct SabmarkGroup {
  SabmarkTier tier = SabmarkTier::Superfamily;
  std::vector<bio::Sequence> sequences;
  msa::Alignment reference;
  double divergence = 0.0;
  std::string name;
};

struct SabmarkParams {
  std::size_t groups_per_tier = 6;
  /// SABmark groups are small (the real benchmark averages ~8 sequences).
  std::size_t min_sequences = 3;
  std::size_t max_sequences = 8;
  std::size_t min_length = 80;
  std::size_t max_length = 240;
  /// Divergence bands per tier, calibrated against the evolver's
  /// coalescent-scaled branch lengths so that superfamily groups land at
  /// ~30-50% mean pairwise identity and twilight groups land below ~25%
  /// (the twilight zone), matching SABmark's construction.
  double superfamily_min = 0.7;
  double superfamily_max = 1.2;
  double twilight_min = 2.5;
  double twilight_max = 4.0;
  std::uint64_t seed = 9393;
};

/// Generates groups_per_tier groups for each tier, deterministic in seed.
[[nodiscard]] std::vector<SabmarkGroup> sabmark_groups(
    const SabmarkParams& params);

/// Mean fractional identity over all induced row pairs of a reference
/// alignment (diagnostic used to verify the tiers land in the intended
/// identity bands: superfamily above the twilight zone, twilight below).
[[nodiscard]] double mean_pairwise_identity(const msa::Alignment& reference);

}  // namespace salign::workload
