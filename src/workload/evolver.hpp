#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bio/sequence.hpp"
#include "msa/alignment.hpp"

namespace salign::workload {

/// Parameters of the tree-based sequence family evolver.
struct EvolveParams {
  std::size_t num_sequences = 20;
  /// Length of the ancestral (root) sequence.
  std::size_t root_length = 300;
  /// Expected substitutions per site per tree edge (F81 process: a site
  /// mutates with probability 1 - exp(-d) to a residue drawn from the
  /// background distribution).
  double mean_branch_distance = 0.3;
  /// Indel events per site per unit branch distance.
  double indel_rate = 0.03;
  /// Success probability of the geometric indel length (mean ~ 1/p).
  double indel_length_p = 0.45;
  /// Record the true alignment from the indel history (costs O(N * cols)
  /// memory; generators for very large N switch it off).
  bool record_reference = true;
  std::uint64_t seed = 1;
  std::string id_prefix = "seq";
};

/// A generated family: leaf sequences plus (optionally) the reference
/// alignment implied by the exact indel history.
struct Family {
  std::vector<bio::Sequence> sequences;
  msa::Alignment reference;  ///< empty when record_reference is false
};

/// Evolves a family along a random binary tree (ROSE's generative model;
/// Stoye, Evers & Meyer, Bioinformatics 1998). Homology is tracked exactly:
/// every residue belongs to a column in a global splice list; substitutions
/// keep the column, insertions splice fresh columns in place, deletions
/// drop the residue. The leaves' column memberships *are* the true MSA, so
/// the reference needs no inference step — insertions in different lineages
/// land in distinct columns, exactly as a correct reference requires.
[[nodiscard]] Family evolve_family(const EvolveParams& params);

/// A node of a caller-specified evolution tree for evolve_along(). A node
/// with no children is a leaf (one output sequence, in depth-first order).
/// Leaf decorations model the BAliBASE structural categories: terminal
/// extensions (RV4-like) and large internal insertions (RV5-like) are
/// appended as fresh homology columns after the branch process runs, so
/// they appear in the recorded reference as gaps in every other row.
struct EvolveNode {
  /// Branch distance from the parent (ignored at the root).
  double branch = 0.0;
  std::vector<EvolveNode> children;
  /// Novel residues prepended at the N-terminus of this leaf.
  std::size_t head_extension = 0;
  /// Novel residues appended at the C-terminus of this leaf.
  std::size_t tail_extension = 0;
  /// Novel residues inserted at a random interior point of this leaf.
  std::size_t internal_insertion = 0;

  [[nodiscard]] std::size_t leaf_count() const;
};

/// Evolves a family along the given tree spec instead of a random topology.
/// `params.num_sequences` is ignored (the spec's leaf count rules);
/// `params.mean_branch_distance` is ignored in favour of per-edge
/// `EvolveNode::branch` values. Everything else (indel process, reference
/// recording, seeding, id_prefix) behaves as in evolve_family().
[[nodiscard]] Family evolve_along(const EvolveNode& tree,
                                  const EvolveParams& params);

}  // namespace salign::workload
