#pragma once

#include <cstdint>
#include <vector>

#include "bio/sequence.hpp"

namespace salign::workload {

/// Parameters of the synthetic archaeal-genome protein pool.
///
/// Substitute for the Methanosarcina acetivorans proteome the paper samples
/// its real data set from (Galagan et al. 2002: ~4500 genes, the largest
/// known archaeal genome; the paper aligns 2000 randomly selected protein
/// sequences with average length 316). We reproduce the statistical shape
/// that drives alignment cost and rank structure: gene-family organization
/// (paralogs from duplication + divergence), a broad length distribution
/// around the same mean, and a fraction of orphan singletons.
struct GenomeParams {
  std::size_t num_families = 220;
  /// Geometric family-size distribution mean (M. acetivorans is notably
  /// paralog-rich).
  double mean_family_size = 14.0;
  std::size_t num_orphans = 900;
  std::size_t mean_length = 316;
  /// Divergence within a family, per tree edge (varies per family).
  double min_divergence = 0.1;
  double max_divergence = 1.2;
  std::uint64_t seed = 2002;
};

/// A generated proteome-like pool.
class GenomeSimulator {
 public:
  explicit GenomeSimulator(const GenomeParams& params = {});

  [[nodiscard]] const std::vector<bio::Sequence>& pool() const {
    return pool_;
  }

  /// Uniformly samples `n` distinct sequences from the pool — the paper's
  /// "randomly selected 2000 sequences from the Methanosarcina acetivorans
  /// genome".
  [[nodiscard]] std::vector<bio::Sequence> sample(std::size_t n,
                                                  std::uint64_t seed) const;

 private:
  std::vector<bio::Sequence> pool_;
};

}  // namespace salign::workload
