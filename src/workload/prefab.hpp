#pragma once

#include <cstdint>
#include <vector>

#include "bio/sequence.hpp"
#include "msa/alignment.hpp"

namespace salign::workload {

/// One PREFAB-style test case: a set of sequences plus a trusted reference
/// alignment to score against with the Q measure.
struct PrefabCase {
  std::vector<bio::Sequence> sequences;
  msa::Alignment reference;
  double divergence = 0.0;  ///< tree branch distance used for this set
};

/// Parameters of the PREFAB-like benchmark generator.
///
/// PREFAB (Edgar 2004) couples structure-alignment-derived references with
/// sets of ~20-50 sequences of varying divergence; the paper scores Q on it
/// (its Table 2). We substitute exact-history references from the evolver
/// (DESIGN.md §2): sets of 20-30 sequences spanning low to high divergence,
/// whose true alignments are recorded rather than inferred, so Q orderings
/// between methods are preserved without annotation noise.
struct PrefabParams {
  std::size_t num_cases = 24;
  std::size_t min_sequences = 20;
  std::size_t max_sequences = 30;
  std::size_t min_length = 120;
  std::size_t max_length = 400;
  /// Divergence ladder: case i uses min + (max-min) * i / (cases-1).
  double min_divergence = 0.15;
  double max_divergence = 1.1;
  std::uint64_t seed = 604;
};

/// Generates the benchmark suite (deterministic in the seed).
[[nodiscard]] std::vector<PrefabCase> prefab_cases(const PrefabParams& params);

}  // namespace salign::workload
