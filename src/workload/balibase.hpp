#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bio/sequence.hpp"
#include "msa/alignment.hpp"

namespace salign::workload {

/// The five BAliBASE 2/3 reference categories, reproduced structurally
/// (Thompson, Plewniak & Poch, Bioinformatics 1999). The paper's §5 names
/// BAliBASE as the next quality benchmark to evaluate on; no public copy is
/// bundled here, so the generator builds families with the same structural
/// stress patterns and exact-history references (DESIGN.md §2).
enum class BalibaseCategory {
  Equidistant,  ///< RV1x: roughly equidistant sequences, identity ladder
  Orphan,       ///< RV2: one tight family plus up to three distant orphans
  Subfamilies,  ///< RV3: 2-4 tight subfamilies separated by deep branches
  Extensions,   ///< RV4: some sequences carry long terminal extensions
  Insertions,   ///< RV5: some sequences carry large internal insertions
};

/// Display name ("RV1-like equidistant" etc.).
[[nodiscard]] std::string to_string(BalibaseCategory category);

/// One generated reference set.
struct BalibaseCase {
  BalibaseCategory category = BalibaseCategory::Equidistant;
  std::vector<bio::Sequence> sequences;
  msa::Alignment reference;
  /// Core-block mask over reference columns (BAliBASE scores only
  /// reliably-aligned blocks): true for columns inside a core block.
  std::vector<bool> core_columns;
  /// The divergence knob used for this case (category-specific meaning).
  double divergence = 0.0;
  std::string name;
};

/// Generator parameters.
struct BalibaseParams {
  /// Cases generated per category (ladder over the divergence range).
  std::size_t cases_per_category = 3;
  std::size_t min_sequences = 8;
  std::size_t max_sequences = 14;
  std::size_t root_length = 180;
  /// Within-family divergence ladder endpoints (RV1 identity bands).
  double min_divergence = 0.2;
  double max_divergence = 0.9;
  /// Deep-branch distance for orphans/subfamilies (RV2/RV3).
  double deep_distance = 1.6;
  /// Length of RV4 terminal extensions / RV5 internal insertions, as a
  /// fraction of root_length.
  double decoration_fraction = 0.4;
  /// Core-block detection: minimum run of full-occupancy columns.
  std::size_t core_min_run = 5;
  std::uint64_t seed = 4242;
};

/// Generates the full suite (cases_per_category cases for each of the five
/// categories), deterministic in the seed.
[[nodiscard]] std::vector<BalibaseCase> balibase_cases(
    const BalibaseParams& params);

/// Core-block mask of a reference alignment: columns where every row has a
/// residue, in runs of at least `min_run` consecutive such columns. This is
/// the structural analogue of BAliBASE's annotated core blocks (regions
/// where the reference is considered reliable).
[[nodiscard]] std::vector<bool> core_block_mask(const msa::Alignment& reference,
                                                std::size_t min_run);

}  // namespace salign::workload
