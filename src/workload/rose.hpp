#pragma once

#include <cstdint>
#include <vector>

#include "bio/sequence.hpp"

namespace salign::workload {

/// Parameters mirroring the ROSE generator invocation the paper describes
/// (§4: "three sets of sequences (N=5000, 10000, and 20000) ... average
/// sequence length 300 and the relatedness was set to be 800").
struct RoseParams {
  std::size_t num_sequences = 5000;
  std::size_t average_length = 300;
  /// ROSE's relatedness knob (expected evolutionary distance between
  /// related sequences, in ROSE's PAM-like units). The paper's value of 800
  /// yields families that are "in fact not very close to each other"; we
  /// calibrate relatedness/4500 as the tree's coalescent-scale divergence,
  /// which reproduces that regime (k-mer ranks spread toward the paper's
  /// Table 1 / Fig. 3 values).
  double relatedness = 800.0;
  std::uint64_t seed = 42;
};

/// Generates a ROSE-style synthetic protein family (no reference alignment
/// — the scalability experiments only need the sequences).
[[nodiscard]] std::vector<bio::Sequence> rose_sequences(
    const RoseParams& params);

}  // namespace salign::workload
