#include "workload/sabmark.hpp"

#include <stdexcept>
#include <utility>

#include "util/rng.hpp"
#include "workload/evolver.hpp"

namespace salign::workload {

std::string to_string(SabmarkTier tier) {
  switch (tier) {
    case SabmarkTier::Superfamily: return "superfamily";
    case SabmarkTier::Twilight: return "twilight";
  }
  return "unknown";
}

double mean_pairwise_identity(const msa::Alignment& reference) {
  const std::size_t rows = reference.num_rows();
  if (rows < 2) return 1.0;
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < rows; ++a) {
    for (std::size_t b = a + 1; b < rows; ++b) {
      std::size_t matches = 0;
      std::size_t aligned = 0;
      for (std::size_t c = 0; c < reference.num_cols(); ++c) {
        const bool ga = reference.is_gap(a, c);
        const bool gb = reference.is_gap(b, c);
        if (ga || gb) continue;
        ++aligned;
        if (reference.cell(a, c) == reference.cell(b, c)) ++matches;
      }
      total += aligned > 0
                   ? static_cast<double>(matches) /
                         static_cast<double>(aligned)
                   : 0.0;
      ++pairs;
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 1.0;
}

std::vector<SabmarkGroup> sabmark_groups(const SabmarkParams& params) {
  if (params.groups_per_tier == 0)
    throw std::invalid_argument("sabmark_groups: need at least one group");
  if (params.min_sequences < 2 || params.max_sequences < params.min_sequences)
    throw std::invalid_argument("sabmark_groups: bad sequence-count range");
  if (params.min_length == 0 || params.max_length < params.min_length)
    throw std::invalid_argument("sabmark_groups: bad length range");

  util::Rng rng(params.seed);
  std::vector<SabmarkGroup> groups;
  groups.reserve(2 * params.groups_per_tier);

  std::size_t group_id = 0;
  for (const SabmarkTier tier :
       {SabmarkTier::Superfamily, SabmarkTier::Twilight}) {
    const double lo = tier == SabmarkTier::Superfamily
                          ? params.superfamily_min
                          : params.twilight_min;
    const double hi = tier == SabmarkTier::Superfamily
                          ? params.superfamily_max
                          : params.twilight_max;
    for (std::size_t i = 0; i < params.groups_per_tier; ++i) {
      const double t = params.groups_per_tier <= 1
                           ? 0.0
                           : static_cast<double>(i) /
                                 static_cast<double>(params.groups_per_tier -
                                                     1);
      const double divergence = lo + (hi - lo) * t;

      EvolveParams ep;
      ep.num_sequences =
          params.min_sequences +
          rng.below(params.max_sequences - params.min_sequences + 1);
      ep.root_length =
          params.min_length +
          rng.below(params.max_length - params.min_length + 1);
      ep.mean_branch_distance = divergence;
      // Structure-based references pair distant folds whose loops shift
      // freely: a slightly elevated indel rate reproduces that.
      ep.indel_rate = 0.06;
      ep.record_reference = true;
      ep.seed = rng.next();
      ep.id_prefix = "sb" + std::to_string(group_id) + "_";

      Family fam = evolve_family(ep);
      SabmarkGroup g;
      g.tier = tier;
      g.sequences = std::move(fam.sequences);
      g.reference = std::move(fam.reference);
      g.divergence = divergence;
      g.name = to_string(tier) + " #" + std::to_string(i);
      groups.push_back(std::move(g));
      ++group_id;
    }
  }
  return groups;
}

}  // namespace salign::workload
