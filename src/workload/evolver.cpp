#include "workload/evolver.hpp"

#include <cmath>
#include <list>
#include <stdexcept>
#include <unordered_map>

#include "util/rng.hpp"

namespace salign::workload {

namespace {

// Robinson & Robinson background frequencies (same table the substitution
// matrices use for their expected-score baseline).
constexpr double kBackground[20] = {
    0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295,
    0.07377, 0.02199, 0.05142, 0.09019, 0.05744, 0.02243, 0.03856,
    0.05203, 0.07120, 0.05841, 0.01330, 0.03216, 0.06441};

std::uint8_t sample_residue(util::Rng& rng) {
  double u = rng.uniform();
  for (std::uint8_t a = 0; a < 20; ++a) {
    u -= kBackground[a];
    if (u <= 0.0) return a;
  }
  return 19;
}

/// One residue of a lineage: the global homology column it occupies plus
/// its current state.
struct Site {
  std::list<std::uint32_t>::iterator column;
  std::uint8_t residue;
};

using Lineage = std::vector<Site>;

struct Evolver {
  explicit Evolver(const EvolveParams& p) : params(p), rng(p.seed) {}

  const EvolveParams& params;
  util::Rng rng;
  /// Global homology columns in alignment order; splicing keeps insertions
  /// of any lineage adjacent to their parent columns.
  std::list<std::uint32_t> columns;
  std::uint32_t next_column_id = 0;
  std::vector<Lineage> leaves;

  Lineage make_root() {
    Lineage root;
    root.reserve(params.root_length);
    for (std::size_t i = 0; i < params.root_length; ++i) {
      columns.push_back(next_column_id);
      auto it = std::prev(columns.end());
      root.push_back(Site{it, sample_residue(rng)});
      ++next_column_id;
    }
    return root;
  }

  /// Applies one branch of length `dist` to a copy of the parent lineage.
  Lineage evolve_branch(const Lineage& parent, double dist) {
    const double p_sub = 1.0 - std::exp(-dist);
    const double p_indel = 1.0 - std::exp(-params.indel_rate * dist);

    Lineage child;
    child.reserve(parent.size() + 8);

    auto insert_run = [&](std::list<std::uint32_t>::iterator after_or_begin,
                          bool at_front) {
      const std::uint64_t len = 1 + rng.geometric(params.indel_length_p, 64);
      auto anchor = at_front ? columns.begin() : std::next(after_or_begin);
      for (std::uint64_t k = 0; k < len; ++k) {
        auto it = columns.insert(anchor, next_column_id++);
        child.push_back(Site{it, sample_residue(rng)});
      }
    };

    // Leading insertion.
    if (rng.chance(p_indel)) insert_run(columns.begin(), true);

    std::size_t i = 0;
    while (i < parent.size()) {
      // Deletion run starting here.
      if (rng.chance(p_indel)) {
        const std::uint64_t len = 1 + rng.geometric(params.indel_length_p, 64);
        i += static_cast<std::size_t>(len);
        continue;  // deleted sites simply don't enter the child
      }
      Site s = parent[i];
      if (rng.chance(p_sub)) s.residue = sample_residue(rng);
      child.push_back(s);
      // Insertion after this site.
      if (rng.chance(p_indel)) insert_run(s.column, false);
      ++i;
    }
    if (child.empty()) {
      // Pathological total deletion: re-seed one site so every leaf remains
      // a valid non-empty sequence.
      columns.push_back(next_column_id++);
      child.push_back(Site{std::prev(columns.end()), sample_residue(rng)});
    }
    return child;
  }

  /// Coalescent-style edge length: scaled by the share of leaves below the
  /// edge, so deep splits carry most of the divergence and root-to-leaf
  /// paths stay O(mean_branch_distance) regardless of tree depth. This is
  /// what gives k-mer ranks the broad spread the paper's Figs. 1/3 show:
  /// same-clade pairs stay similar while cross-clade pairs diverge.
  double branch_length(std::size_t child_leaves) {
    const double u = rng.uniform();
    const double expo = std::max(0.05, -std::log(1.0 - u));
    const double share = static_cast<double>(child_leaves) /
                         static_cast<double>(params.num_sequences);
    return params.mean_branch_distance * expo * (share + 0.02);
  }

  /// Top-down random topology: recursively split n leaves into two
  /// non-empty parts (explicit stack; random splits can be degenerate).
  void run() {
    struct Task {
      Lineage lineage;
      std::size_t leaves;
    };
    std::vector<Task> stack;
    stack.push_back(Task{make_root(), params.num_sequences});
    while (!stack.empty()) {
      Task t = std::move(stack.back());
      stack.pop_back();
      if (t.leaves == 1) {
        leaves.push_back(std::move(t.lineage));
        continue;
      }
      const std::size_t left = 1 + static_cast<std::size_t>(
                                       rng.below(t.leaves - 1));
      const std::size_t right = t.leaves - left;
      Lineage lc = evolve_branch(t.lineage, branch_length(left));
      Lineage rc = evolve_branch(t.lineage, branch_length(right));
      stack.push_back(Task{std::move(rc), right});
      stack.push_back(Task{std::move(lc), left});
    }
  }

  /// Splices `count` fresh homology columns before `anchor` and returns the
  /// corresponding sites (used by the leaf decorations).
  Lineage fresh_run(std::list<std::uint32_t>::iterator anchor,
                    std::size_t count) {
    Lineage run;
    run.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      auto it = columns.insert(anchor, next_column_id++);
      run.push_back(Site{it, sample_residue(rng)});
    }
    return run;
  }

  /// Applies a leaf's decorations (terminal extensions / internal
  /// insertion) as novel columns unique to this leaf.
  void decorate(Lineage& leaf, const EvolveNode& spec) {
    if (spec.head_extension > 0) {
      auto anchor = leaf.empty() ? columns.begin() : leaf.front().column;
      Lineage head = fresh_run(anchor, spec.head_extension);
      leaf.insert(leaf.begin(), head.begin(), head.end());
    }
    if (spec.tail_extension > 0) {
      auto anchor = leaf.empty() ? columns.end()
                                 : std::next(leaf.back().column);
      Lineage tail = fresh_run(anchor, spec.tail_extension);
      leaf.insert(leaf.end(), tail.begin(), tail.end());
    }
    if (spec.internal_insertion > 0 && leaf.size() >= 2) {
      // Middle-third anchor point, as BAliBASE RV5's long insertions sit
      // inside the domain rather than at its edges.
      const std::size_t third = std::max<std::size_t>(1, leaf.size() / 3);
      const std::size_t pos =
          std::min(leaf.size() - 1, third + rng.below(third));
      Lineage ins = fresh_run(std::next(leaf[pos].column),
                              spec.internal_insertion);
      leaf.insert(leaf.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                  ins.begin(), ins.end());
    }
  }

  /// Walks a caller-provided tree spec; leaves come out in depth-first
  /// order.
  void run_spec(const EvolveNode& root) {
    struct Task {
      const EvolveNode* node;
      Lineage lineage;
    };
    std::vector<Task> stack;
    stack.push_back(Task{&root, make_root()});
    while (!stack.empty()) {
      Task t = std::move(stack.back());
      stack.pop_back();
      if (t.node->children.empty()) {
        decorate(t.lineage, *t.node);
        leaves.push_back(std::move(t.lineage));
        continue;
      }
      // Push children in reverse so the leftmost is expanded first.
      for (auto it = t.node->children.rbegin(); it != t.node->children.rend();
           ++it)
        stack.push_back(Task{&*it, evolve_branch(t.lineage, it->branch)});
    }
  }
};

/// Shared leaf -> Family conversion (sequences + exact-history reference).
Family finalize(Evolver& ev, const EvolveParams& params) {
  Family fam;
  fam.sequences.reserve(ev.leaves.size());
  for (std::size_t l = 0; l < ev.leaves.size(); ++l) {
    std::vector<std::uint8_t> codes;
    codes.reserve(ev.leaves[l].size());
    for (const Site& s : ev.leaves[l]) codes.push_back(s.residue);
    fam.sequences.emplace_back(params.id_prefix + std::to_string(l),
                               std::move(codes), bio::AlphabetKind::AminoAcid);
  }

  if (params.record_reference) {
    // Column id -> final ordinal, in splice-list order; only columns that
    // survive in at least one leaf become reference columns.
    std::unordered_map<std::uint32_t, std::uint32_t> used;
    for (const Lineage& leaf : ev.leaves)
      for (const Site& s : leaf) used.emplace(*s.column, 0);
    std::uint32_t ordinal = 0;
    for (std::uint32_t id : ev.columns) {
      const auto it = used.find(id);
      if (it != used.end()) it->second = ordinal++;
    }
    const std::size_t cols = used.size();

    std::vector<msa::AlignedRow> rows(ev.leaves.size());
    for (std::size_t l = 0; l < ev.leaves.size(); ++l) {
      rows[l].id = fam.sequences[l].id();
      rows[l].cells.assign(cols, msa::Alignment::kGap);
      for (const Site& s : ev.leaves[l])
        rows[l].cells[used.at(*s.column)] = s.residue;
    }
    fam.reference =
        msa::Alignment(std::move(rows), bio::AlphabetKind::AminoAcid);
  }
  return fam;
}

}  // namespace

std::size_t EvolveNode::leaf_count() const {
  if (children.empty()) return 1;
  std::size_t n = 0;
  for (const EvolveNode& c : children) n += c.leaf_count();
  return n;
}

Family evolve_family(const EvolveParams& params) {
  if (params.num_sequences == 0)
    throw std::invalid_argument("evolve_family: need at least one sequence");
  if (params.root_length == 0)
    throw std::invalid_argument("evolve_family: root_length must be > 0");

  Evolver ev(params);
  ev.run();
  return finalize(ev, params);
}

Family evolve_along(const EvolveNode& tree, const EvolveParams& params) {
  if (params.root_length == 0)
    throw std::invalid_argument("evolve_along: root_length must be > 0");
  // Branch lengths must be non-negative everywhere in the spec.
  std::vector<const EvolveNode*> todo{&tree};
  while (!todo.empty()) {
    const EvolveNode* n = todo.back();
    todo.pop_back();
    if (n->branch < 0.0)
      throw std::invalid_argument("evolve_along: negative branch length");
    for (const EvolveNode& c : n->children) todo.push_back(&c);
  }

  Evolver ev(params);
  ev.run_spec(tree);
  return finalize(ev, params);
}

}  // namespace salign::workload
