#include "workload/balibase.hpp"

#include <stdexcept>
#include <utility>

#include "util/rng.hpp"
#include "workload/evolver.hpp"

namespace salign::workload {

namespace {

/// Balanced subtree over `leaves` leaves with per-edge distance `dist`.
EvolveNode balanced(std::size_t leaves, double dist) {
  EvolveNode node;
  node.branch = dist;
  if (leaves <= 1) return node;
  const std::size_t left = leaves / 2;
  node.children.push_back(balanced(left, dist));
  node.children.push_back(balanced(leaves - left, dist));
  return node;
}

std::size_t ceil_log2(std::size_t n) {
  std::size_t d = 0;
  std::size_t v = 1;
  while (v < n) {
    v <<= 1;
    ++d;
  }
  return d;
}

/// Balanced family whose *root-to-leaf* distance is `divergence` (per-edge
/// distances compound down the tree, so each edge gets divergence/depth);
/// this keeps the category ladder's meaning independent of family size.
EvolveNode family_tree(std::size_t leaves, double divergence) {
  const std::size_t depth = std::max<std::size_t>(1, ceil_log2(leaves));
  EvolveNode root = balanced(leaves, divergence /
                                         static_cast<double>(depth));
  root.branch = 0.0;
  return root;
}

EvolveNode equidistant_tree(std::size_t n, double divergence) {
  return family_tree(n, divergence);
}

EvolveNode orphan_tree(std::size_t n, double within, double deep,
                       std::size_t orphans) {
  // A tight family of n - orphans sequences plus `orphans` leaves hanging
  // off the root on deep branches.
  orphans = std::min(orphans, n > 4 ? n - 4 : 1);
  EvolveNode root;
  EvolveNode fam = family_tree(n - orphans, within);
  root.children.push_back(std::move(fam));
  for (std::size_t i = 0; i < orphans; ++i) {
    EvolveNode orphan;
    orphan.branch = deep;
    root.children.push_back(std::move(orphan));
  }
  return root;
}

EvolveNode subfamily_tree(std::size_t n, double within, double deep,
                          std::size_t groups) {
  EvolveNode root;
  const std::size_t base = n / groups;
  std::size_t remainder = n % groups;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t size = base + (g < remainder ? 1 : 0);
    EvolveNode sub = family_tree(std::max<std::size_t>(size, 1), within);
    sub.branch = deep;
    root.children.push_back(std::move(sub));
  }
  return root;
}

/// Marks decorations on every k-th leaf of the tree (depth-first order).
void decorate_leaves(EvolveNode& node, std::size_t& leaf_index,
                     std::size_t stride, std::size_t head, std::size_t tail,
                     std::size_t internal) {
  if (node.children.empty()) {
    if (leaf_index % stride == 0) {
      node.head_extension = head;
      node.tail_extension = tail;
      node.internal_insertion = internal;
    }
    ++leaf_index;
    return;
  }
  for (EvolveNode& c : node.children)
    decorate_leaves(c, leaf_index, stride, head, tail, internal);
}

}  // namespace

std::string to_string(BalibaseCategory category) {
  switch (category) {
    case BalibaseCategory::Equidistant: return "RV1-like equidistant";
    case BalibaseCategory::Orphan: return "RV2-like orphan";
    case BalibaseCategory::Subfamilies: return "RV3-like subfamilies";
    case BalibaseCategory::Extensions: return "RV4-like extensions";
    case BalibaseCategory::Insertions: return "RV5-like insertions";
  }
  return "unknown";
}

std::vector<bool> core_block_mask(const msa::Alignment& reference,
                                  std::size_t min_run) {
  std::vector<bool> full(reference.num_cols(), false);
  for (std::size_t c = 0; c < reference.num_cols(); ++c) {
    bool all = true;
    for (std::size_t r = 0; r < reference.num_rows() && all; ++r)
      all = !reference.is_gap(r, c);
    full[c] = all;
  }
  // Keep only runs of at least min_run full columns.
  std::vector<bool> mask(reference.num_cols(), false);
  std::size_t run_start = 0;
  for (std::size_t c = 0; c <= reference.num_cols(); ++c) {
    const bool in_run = c < reference.num_cols() && full[c];
    if (in_run) continue;
    const std::size_t run_len = c - run_start;
    if (run_len >= min_run)
      for (std::size_t k = run_start; k < c; ++k) mask[k] = true;
    run_start = c + 1;
  }
  return mask;
}

std::vector<BalibaseCase> balibase_cases(const BalibaseParams& params) {
  if (params.cases_per_category == 0)
    throw std::invalid_argument("balibase_cases: need at least one case");
  if (params.min_sequences < 4 || params.max_sequences < params.min_sequences)
    throw std::invalid_argument("balibase_cases: bad sequence-count range");

  util::Rng rng(params.seed);
  std::vector<BalibaseCase> cases;
  const BalibaseCategory categories[] = {
      BalibaseCategory::Equidistant, BalibaseCategory::Orphan,
      BalibaseCategory::Subfamilies, BalibaseCategory::Extensions,
      BalibaseCategory::Insertions};

  const auto decoration_len = static_cast<std::size_t>(
      params.decoration_fraction * static_cast<double>(params.root_length));

  std::size_t case_id = 0;
  for (const BalibaseCategory cat : categories) {
    for (std::size_t i = 0; i < params.cases_per_category; ++i) {
      const double t = params.cases_per_category <= 1
                           ? 0.0
                           : static_cast<double>(i) /
                                 static_cast<double>(
                                     params.cases_per_category - 1);
      const double divergence =
          params.min_divergence +
          (params.max_divergence - params.min_divergence) * t;
      const std::size_t n =
          params.min_sequences +
          rng.below(params.max_sequences - params.min_sequences + 1);

      EvolveNode tree;
      switch (cat) {
        case BalibaseCategory::Equidistant:
          tree = equidistant_tree(n, divergence);
          break;
        case BalibaseCategory::Orphan:
          tree = orphan_tree(n, divergence, params.deep_distance,
                             1 + rng.below(3));
          break;
        case BalibaseCategory::Subfamilies:
          tree = subfamily_tree(n, divergence, params.deep_distance,
                                2 + rng.below(3));
          break;
        case BalibaseCategory::Extensions: {
          tree = equidistant_tree(n, divergence);
          std::size_t leaf = 0;
          // Every third sequence gets a terminal extension, alternating
          // N/C side by case parity.
          decorate_leaves(tree, leaf, 3,
                          i % 2 == 0 ? decoration_len : 0,
                          i % 2 == 0 ? 0 : decoration_len, 0);
          break;
        }
        case BalibaseCategory::Insertions: {
          tree = equidistant_tree(n, divergence);
          std::size_t leaf = 0;
          decorate_leaves(tree, leaf, 3, 0, 0, decoration_len);
          break;
        }
      }

      EvolveParams ep;
      ep.root_length = params.root_length;
      ep.indel_rate = 0.04;
      ep.record_reference = true;
      ep.seed = rng.next();
      ep.id_prefix = "bb" + std::to_string(case_id) + "_";

      Family fam = evolve_along(tree, ep);
      BalibaseCase c;
      c.category = cat;
      c.sequences = std::move(fam.sequences);
      c.reference = std::move(fam.reference);
      c.core_columns = core_block_mask(c.reference, params.core_min_run);
      c.divergence = divergence;
      c.name = to_string(cat) + " #" + std::to_string(i);
      cases.push_back(std::move(c));
      ++case_id;
    }
  }
  return cases;
}

}  // namespace salign::workload
