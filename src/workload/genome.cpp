#include "workload/genome.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "workload/evolver.hpp"

namespace salign::workload {

GenomeSimulator::GenomeSimulator(const GenomeParams& params) {
  util::Rng rng(params.seed);

  for (std::size_t f = 0; f < params.num_families; ++f) {
    // Family size: geometric with the configured mean, at least 2.
    const double p = 1.0 / std::max(1.0, params.mean_family_size);
    const std::size_t size =
        2 + static_cast<std::size_t>(rng.geometric(p, 256));

    // Root length: lognormal-ish spread around the mean (protein length
    // distributions are right-skewed).
    const double spread = 0.35;
    const double z = (rng.uniform() + rng.uniform() + rng.uniform() - 1.5) * 2.0;
    const auto length = static_cast<std::size_t>(std::max(
        40.0, static_cast<double>(params.mean_length) * std::exp(spread * z) *
                  std::exp(-spread * spread / 2.0)));

    EvolveParams ep;
    ep.num_sequences = size;
    ep.root_length = length;
    ep.mean_branch_distance =
        rng.uniform(params.min_divergence, params.max_divergence);
    ep.indel_rate = 0.04;
    ep.record_reference = false;
    ep.seed = rng.next();
    ep.id_prefix = "MA_fam" + std::to_string(f) + "_";
    Family fam = evolve_family(ep);
    for (auto& s : fam.sequences) pool_.push_back(std::move(s));
  }

  // Orphans: singleton genes with no detectable paralogs.
  for (std::size_t o = 0; o < params.num_orphans; ++o) {
    EvolveParams ep;
    ep.num_sequences = 1;
    const double z = (rng.uniform() + rng.uniform() + rng.uniform() - 1.5) * 2.0;
    ep.root_length = static_cast<std::size_t>(std::max(
        40.0, static_cast<double>(params.mean_length) * std::exp(0.35 * z)));
    ep.record_reference = false;
    ep.seed = rng.next();
    ep.id_prefix = "MA_orphan" + std::to_string(o) + "_";
    Family fam = evolve_family(ep);
    pool_.push_back(std::move(fam.sequences.front()));
  }
}

std::vector<bio::Sequence> GenomeSimulator::sample(std::size_t n,
                                                   std::uint64_t seed) const {
  if (n > pool_.size())
    throw std::invalid_argument("GenomeSimulator::sample: n exceeds pool");
  util::Rng rng(seed);
  std::vector<std::size_t> idx(pool_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  // Partial Fisher-Yates.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + rng.below(idx.size() - i);
    std::swap(idx[i], idx[j]);
  }
  std::vector<bio::Sequence> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(pool_[idx[i]]);
  return out;
}

}  // namespace salign::workload
