#include "workload/prefab.hpp"

#include "util/rng.hpp"
#include "workload/evolver.hpp"

namespace salign::workload {

std::vector<PrefabCase> prefab_cases(const PrefabParams& params) {
  util::Rng rng(params.seed);
  std::vector<PrefabCase> cases;
  cases.reserve(params.num_cases);

  for (std::size_t i = 0; i < params.num_cases; ++i) {
    const double t =
        params.num_cases <= 1
            ? 0.0
            : static_cast<double>(i) /
                  static_cast<double>(params.num_cases - 1);
    const double divergence =
        params.min_divergence +
        (params.max_divergence - params.min_divergence) * t;

    EvolveParams ep;
    ep.num_sequences =
        params.min_sequences +
        rng.below(params.max_sequences - params.min_sequences + 1);
    ep.root_length =
        params.min_length + rng.below(params.max_length - params.min_length + 1);
    ep.mean_branch_distance = divergence;
    ep.indel_rate = 0.05;
    ep.record_reference = true;
    ep.seed = rng.next();
    ep.id_prefix = "pf" + std::to_string(i) + "_";

    Family fam = evolve_family(ep);
    PrefabCase c;
    c.sequences = std::move(fam.sequences);
    c.reference = std::move(fam.reference);
    c.divergence = divergence;
    cases.push_back(std::move(c));
  }
  return cases;
}

}  // namespace salign::workload
