#include "workload/rose.hpp"

#include "workload/evolver.hpp"

namespace salign::workload {

std::vector<bio::Sequence> rose_sequences(const RoseParams& params) {
  EvolveParams ep;
  ep.num_sequences = params.num_sequences;
  ep.root_length = params.average_length;
  // Calibration: relatedness 800 (the paper's setting) lands the k-mer rank
  // distribution in the paper's regime — mean ~0.9, max ~1.45 (Table 1 /
  // Fig. 3). See EXPERIMENTS.md, "workload calibration".
  ep.mean_branch_distance = params.relatedness / 4500.0;
  ep.indel_rate = 0.02;
  ep.record_reference = false;
  ep.seed = params.seed;
  ep.id_prefix = "rose_";
  return evolve_family(ep).sequences;
}

}  // namespace salign::workload
