#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace salign::bio {

/// Identifies the built-in alphabets; Sequence stores one of these so that
/// copies stay trivially cheap (no shared_ptr per sequence).
enum class AlphabetKind : std::uint8_t {
  AminoAcid,     ///< 20 standard residues + X (unknown), NCBI order.
  Dna,           ///< A C G T + N.
  Compressed14,  ///< SE-B(14)-style compressed amino-acid alphabet.
};

/// Immutable residue alphabet: maps characters to small integer codes and
/// back. Invalid characters map to the wildcard code (the last code).
///
/// The compressed 14-letter alphabet follows Edgar (NAR 2004, "Local homology
/// recognition ... using compressed amino acid alphabets"): k-mer counting on
/// a reduced alphabet keeps sensitivity while shrinking the k-mer space.
/// Groups: {A} {C} {D} {E,Q} {F,Y} {G} {H} {I,L,V} {K,R} {M} {N} {P} {S,T}
/// {W}; the wildcard X is code 14.
class Alphabet {
 public:
  static const Alphabet& amino_acid();
  static const Alphabet& dna();
  static const Alphabet& compressed14();
  static const Alphabet& get(AlphabetKind kind);

  /// Number of codes including the wildcard.
  [[nodiscard]] int size() const { return size_; }
  /// Number of "real" letters (wildcard excluded).
  [[nodiscard]] int letters() const { return size_ - 1; }
  [[nodiscard]] std::uint8_t wildcard() const {
    return static_cast<std::uint8_t>(size_ - 1);
  }
  [[nodiscard]] AlphabetKind kind() const { return kind_; }
  [[nodiscard]] std::string_view name() const { return name_; }

  /// Case-insensitive char -> code; unknown characters become the wildcard.
  [[nodiscard]] std::uint8_t encode(char c) const {
    return to_code_[static_cast<unsigned char>(c)];
  }
  /// code -> canonical (uppercase) character.
  [[nodiscard]] char decode(std::uint8_t code) const {
    return code < size_ ? from_code_[code] : '?';
  }
  /// True if `c` is a letter of this alphabet (wildcard counts as valid).
  [[nodiscard]] bool valid(char c) const {
    return valid_[static_cast<unsigned char>(c)];
  }

  /// Re-encodes an amino-acid code into the compressed14 alphabet.
  /// Precondition: this->kind() == AlphabetKind::Compressed14.
  [[nodiscard]] std::uint8_t compress_amino(std::uint8_t aa_code) const;

 private:
  Alphabet(AlphabetKind kind, std::string name, std::string_view letters_in_order);

  AlphabetKind kind_;
  std::string name_;
  int size_ = 0;
  std::array<std::uint8_t, 256> to_code_{};
  std::array<char, 32> from_code_{};
  std::array<bool, 256> valid_{};
  std::array<std::uint8_t, 32> amino_to_compressed_{};

  void add_alias(char alias, char canonical);
  void build_compression_map();
};

}  // namespace salign::bio
