#include "bio/content_hash.hpp"

#include "bio/alphabet.hpp"

namespace salign::bio {

void hash_sequence(util::StableHash& h, const Sequence& s) {
  h.u8(static_cast<std::uint8_t>(s.alphabet_kind()));
  h.str(s.id());
  h.u32(static_cast<std::uint32_t>(s.codes().size()));
  h.update(s.codes());
}

util::Digest128 sequence_set_hash(std::span<const Sequence> seqs) {
  util::StableHash h;
  h.str("salign.sequence_set.v1");
  h.u64(seqs.size());
  for (const Sequence& s : seqs) hash_sequence(h, s);
  return h.digest128();
}

void hash_matrix(util::StableHash& h, const SubstitutionMatrix& m) {
  h.str("salign.matrix.v1");
  h.str(m.name());
  h.u8(static_cast<std::uint8_t>(m.alphabet_kind()));
  const int n = Alphabet::get(m.alphabet_kind()).size();
  h.u32(static_cast<std::uint32_t>(n));
  for (int a = 0; a < n; ++a)
    for (int b = 0; b < n; ++b)
      h.f64(static_cast<double>(m.score(static_cast<std::uint8_t>(a),
                                        static_cast<std::uint8_t>(b))));
  hash_gaps(h, m.default_gaps());
  h.f64(static_cast<double>(m.expected_score()));
}

void hash_gaps(util::StableHash& h, const GapPenalties& g) {
  h.f64(static_cast<double>(g.open));
  h.f64(static_cast<double>(g.extend));
}

}  // namespace salign::bio
