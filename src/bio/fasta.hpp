#pragma once

#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bio/sequence.hpp"

namespace salign::bio {

/// Malformed user input: FASTA syntax errors, duplicate record ids,
/// NUL/control bytes, rejected residues. Distinct from IO failure (the file
/// was read fine; its *content* is wrong) — the CLI maps it, together with
/// std::invalid_argument, to its own invalid-input exit code.
class InvalidInput : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Reads all FASTA records from a stream. Header lines start with '>'; the
/// first whitespace-separated token becomes the id. Lines are concatenated;
/// gap characters ('-', '.') are rejected — aligned FASTA goes through
/// msa::read_aligned_fasta instead. Duplicate record ids and NUL/control
/// bytes (tab and CR excepted) are rejected. Every rejection throws
/// InvalidInput naming the offending 1-based line.
[[nodiscard]] std::vector<Sequence> read_fasta(
    std::istream& in, AlphabetKind kind = AlphabetKind::AminoAcid);

/// Convenience wrapper over a file path; throws util::IoError when the file
/// cannot be read (after bounded retry of transient failures) and
/// InvalidInput — prefixed with the path — on malformed content.
/// Fault-injection site: "fasta.read".
[[nodiscard]] std::vector<Sequence> read_fasta_file(
    const std::string& path, AlphabetKind kind = AlphabetKind::AminoAcid);

/// Parses FASTA from an in-memory string (test fixtures).
[[nodiscard]] std::vector<Sequence> parse_fasta(
    const std::string& text, AlphabetKind kind = AlphabetKind::AminoAcid);

/// Writes records wrapping residue lines at `width` columns.
void write_fasta(std::ostream& out, std::span<const Sequence> seqs,
                 std::size_t width = 60);

/// Writes `path` atomically and durably (tmp + fsync + rename), retrying
/// transient failures. Fault-injection site: "fasta.write".
void write_fasta_file(const std::string& path, std::span<const Sequence> seqs,
                      std::size_t width = 60);

}  // namespace salign::bio
