#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "bio/sequence.hpp"

namespace salign::bio {

/// Reads all FASTA records from a stream. Header lines start with '>'; the
/// first whitespace-separated token becomes the id. Lines are concatenated;
/// gap characters ('-', '.') are rejected — aligned FASTA goes through
/// msa::read_aligned_fasta instead.
[[nodiscard]] std::vector<Sequence> read_fasta(
    std::istream& in, AlphabetKind kind = AlphabetKind::AminoAcid);

/// Convenience wrapper over a file path; throws std::runtime_error when the
/// file cannot be opened.
[[nodiscard]] std::vector<Sequence> read_fasta_file(
    const std::string& path, AlphabetKind kind = AlphabetKind::AminoAcid);

/// Parses FASTA from an in-memory string (test fixtures).
[[nodiscard]] std::vector<Sequence> parse_fasta(
    const std::string& text, AlphabetKind kind = AlphabetKind::AminoAcid);

/// Writes records wrapping residue lines at `width` columns.
void write_fasta(std::ostream& out, std::span<const Sequence> seqs,
                 std::size_t width = 60);

void write_fasta_file(const std::string& path, std::span<const Sequence> seqs,
                      std::size_t width = 60);

}  // namespace salign::bio
