#pragma once

#include <span>

#include "bio/sequence.hpp"
#include "bio/substitution_matrix.hpp"
#include "util/stable_hash.hpp"

namespace salign::bio {

/// Folds one sequence (alphabet kind, id, residue codes) into `h`.
void hash_sequence(util::StableHash& h, const Sequence& s);

/// Deterministic content hash of a sequence set — the shared key of
/// checkpoint manifests and the process-wide artifact cache. Order-sensitive
/// by design: aligner output depends on input order, so two orderings of the
/// same set must not collide onto one cache entry.
[[nodiscard]] util::Digest128 sequence_set_hash(
    std::span<const Sequence> seqs);

/// Folds a scoring matrix (name, alphabet, every cell, default gap
/// penalties, expected score) into `h`, so cache keys derived from a config
/// cannot alias across matrices that share a name but not contents.
void hash_matrix(util::StableHash& h, const SubstitutionMatrix& m);

void hash_gaps(util::StableHash& h, const GapPenalties& g);

}  // namespace salign::bio
