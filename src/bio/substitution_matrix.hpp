#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "bio/alphabet.hpp"
#include "util/matrix.hpp"

namespace salign::bio {

/// Affine gap model: total penalty for a gap of length g is
/// open + extend * (g - 1). Penalties are stored positive and subtracted by
/// the aligners.
struct GapPenalties {
  float open = 11.0F;
  float extend = 1.0F;
};

/// Amino-acid substitution scoring matrix over the amino_acid() alphabet
/// (20 residues + X). Wildcard rows/columns score kWildcardScore.
///
/// Shipped matrices are the standard published ones: BLOSUM62
/// (Henikoff & Henikoff 1992; the MUSCLE/BLAST default) and PAM250
/// (Dayhoff 1978; classic for divergent sequences). A match/mismatch
/// matrix is provided for DNA.
class SubstitutionMatrix {
 public:
  static const SubstitutionMatrix& blosum62();
  static const SubstitutionMatrix& pam250();
  /// DNA: +5 match / -4 mismatch (BLAST megablast-style).
  static const SubstitutionMatrix& dna_default();

  [[nodiscard]] std::string_view name() const { return name_; }
  [[nodiscard]] AlphabetKind alphabet_kind() const { return kind_; }

  [[nodiscard]] float score(std::uint8_t a, std::uint8_t b) const {
    return scores_(a, b);
  }

  /// Expected score of two residues drawn from the background distribution;
  /// profile aligners use it as the gap-column baseline.
  [[nodiscard]] float expected_score() const { return expected_; }

  /// Default affine gap penalties tuned for this matrix.
  [[nodiscard]] GapPenalties default_gaps() const { return gaps_; }

  static constexpr float kWildcardScore = -1.0F;

 private:
  SubstitutionMatrix(std::string name, AlphabetKind kind,
                     const std::int8_t* packed, int letters, GapPenalties gaps);

  std::string name_;
  AlphabetKind kind_;
  util::Matrix<float> scores_;
  float expected_ = 0.0F;
  GapPenalties gaps_;
};

}  // namespace salign::bio
