#include "bio/fasta.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "util/io.hpp"
#include "util/string_util.hpp"

namespace salign::bio {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw InvalidInput("FASTA line " + std::to_string(line) + ": " + msg);
}

}  // namespace

std::vector<Sequence> read_fasta(std::istream& in, AlphabetKind kind) {
  std::vector<Sequence> out;
  std::unordered_set<std::string> ids;
  std::string line;
  std::string id;
  std::string residues;
  bool have_record = false;
  std::size_t lineno = 0;    // 1-based physical line
  std::size_t record_line = 0;  // header line of the open record

  const auto finish_record = [&] {
    if (!have_record) return;
    try {
      out.emplace_back(std::move(id), residues, kind);
    } catch (const std::exception& e) {
      fail(record_line, std::string("record rejected: ") + e.what());
    }
    id.clear();
    residues.clear();
  };

  while (std::getline(in, line)) {
    ++lineno;
    // NUL and control bytes are never legitimate FASTA; catching them here
    // (instead of silently encoding them as wildcard residues) turns a
    // corrupted/binary input into a precise diagnostic. Tab survives for
    // header fields, CR for CRLF files (trim strips it).
    for (char c : line)
      if (c == '\0' ||
          (static_cast<unsigned char>(c) < 0x20 && c != '\t' && c != '\r'))
        fail(lineno, "NUL/control byte in input");
    const std::string_view t = util::trim(line);
    if (t.empty()) continue;
    if (t.front() == '>') {
      finish_record();
      have_record = true;
      record_line = lineno;
      const std::string_view header = util::trim(t.substr(1));
      const std::size_t sp = header.find_first_of(" \t");
      id = std::string(sp == std::string_view::npos ? header
                                                    : header.substr(0, sp));
      if (id.empty()) fail(lineno, "record with empty id");
      if (!ids.insert(id).second)
        fail(lineno, "duplicate record id '" + id + "'");
    } else {
      if (!have_record) fail(lineno, "residue data before first header");
      for (char c : t) {
        if (c == '-' || c == '.')
          fail(lineno,
               "gap character in unaligned input (record '" + id + "')");
        residues.push_back(c);
      }
    }
  }
  finish_record();
  return out;
}

std::vector<Sequence> read_fasta_file(const std::string& path,
                                      AlphabetKind kind) {
  const std::string text = util::retry_io(
      "fasta.read", [&] { return util::read_file(path, "fasta.read"); });
  try {
    std::istringstream in(text);
    return read_fasta(in, kind);
  } catch (const InvalidInput& e) {
    throw InvalidInput(path + ": " + e.what());
  }
}

std::vector<Sequence> parse_fasta(const std::string& text, AlphabetKind kind) {
  std::istringstream in(text);
  return read_fasta(in, kind);
}

void write_fasta(std::ostream& out, std::span<const Sequence> seqs,
                 std::size_t width) {
  if (width == 0) throw std::invalid_argument("write_fasta: width must be > 0");
  for (const Sequence& s : seqs) {
    out << '>' << s.id() << '\n';
    const std::string text = s.text();
    for (std::size_t i = 0; i < text.size(); i += width)
      out << text.substr(i, width) << '\n';
    if (text.empty()) out << '\n';
  }
}

void write_fasta_file(const std::string& path, std::span<const Sequence> seqs,
                      std::size_t width) {
  std::ostringstream os;
  write_fasta(os, seqs, width);
  const std::string text = std::move(os).str();
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  util::retry_io("fasta.write", [&] {
    util::write_file_durable(path, bytes, "fasta.write");
  });
}

}  // namespace salign::bio
