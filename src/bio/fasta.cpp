#include "bio/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace salign::bio {

namespace {

void finish_record(std::vector<Sequence>& out, std::string& id,
                   std::string& residues, AlphabetKind kind, bool have_record) {
  if (!have_record) return;
  if (id.empty()) throw std::runtime_error("FASTA: record with empty id");
  out.emplace_back(std::move(id), residues, kind);
  id.clear();
  residues.clear();
}

}  // namespace

std::vector<Sequence> read_fasta(std::istream& in, AlphabetKind kind) {
  std::vector<Sequence> out;
  std::string line;
  std::string id;
  std::string residues;
  bool have_record = false;

  while (std::getline(in, line)) {
    const std::string_view t = util::trim(line);
    if (t.empty()) continue;
    if (t.front() == '>') {
      finish_record(out, id, residues, kind, have_record);
      have_record = true;
      const std::string_view header = util::trim(t.substr(1));
      const std::size_t sp = header.find_first_of(" \t");
      id = std::string(sp == std::string_view::npos ? header
                                                    : header.substr(0, sp));
    } else {
      if (!have_record)
        throw std::runtime_error("FASTA: residue data before first header");
      for (char c : t) {
        if (c == '-' || c == '.')
          throw std::runtime_error(
              "FASTA: gap character in unaligned input (record '" + id + "')");
        residues.push_back(c);
      }
    }
  }
  finish_record(out, id, residues, kind, have_record);
  return out;
}

std::vector<Sequence> read_fasta_file(const std::string& path,
                                      AlphabetKind kind) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open FASTA file: " + path);
  return read_fasta(in, kind);
}

std::vector<Sequence> parse_fasta(const std::string& text, AlphabetKind kind) {
  std::istringstream in(text);
  return read_fasta(in, kind);
}

void write_fasta(std::ostream& out, std::span<const Sequence> seqs,
                 std::size_t width) {
  if (width == 0) throw std::invalid_argument("write_fasta: width must be > 0");
  for (const Sequence& s : seqs) {
    out << '>' << s.id() << '\n';
    const std::string text = s.text();
    for (std::size_t i = 0; i < text.size(); i += width)
      out << text.substr(i, width) << '\n';
    if (text.empty()) out << '\n';
  }
}

void write_fasta_file(const std::string& path, std::span<const Sequence> seqs,
                      std::size_t width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open FASTA file for write: " + path);
  write_fasta(out, seqs, width);
}

}  // namespace salign::bio
