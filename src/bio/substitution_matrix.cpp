#include "bio/substitution_matrix.hpp"

#include <stdexcept>

namespace salign::bio {

namespace {

// Residue order matches Alphabet::amino_acid(): A R N D C Q E G H I L K M F
// P S T W Y V. Values are the published integer matrices.
// clang-format off
constexpr std::int8_t kBlosum62[20 * 20] = {
//  A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0,  // A
   -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3,  // R
   -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,  // N
   -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,  // D
    0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1,  // C
   -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,  // Q
   -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,  // E
    0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3,  // G
   -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,  // H
   -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3,  // I
   -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1,  // L
   -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2,  // K
   -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1,  // M
   -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1,  // F
   -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2,  // P
    1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,  // S
    0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0,  // T
   -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3,  // W
   -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1,  // Y
    0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4,  // V
};

constexpr std::int8_t kPam250[20 * 20] = {
//  A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    2, -2,  0,  0, -2,  0,  0,  1, -1, -1, -2, -1, -1, -3,  1,  1,  1, -6, -3,  0,  // A
   -2,  6,  0, -1, -4,  1, -1, -3,  2, -2, -3,  3,  0, -4,  0,  0, -1,  2, -4, -2,  // R
    0,  0,  2,  2, -4,  1,  1,  0,  2, -2, -3,  1, -2, -3,  0,  1,  0, -4, -2, -2,  // N
    0, -1,  2,  4, -5,  2,  3,  1,  1, -2, -4,  0, -3, -6, -1,  0,  0, -7, -4, -2,  // D
   -2, -4, -4, -5, 12, -5, -5, -3, -3, -2, -6, -5, -5, -4, -3,  0, -2, -8,  0, -2,  // C
    0,  1,  1,  2, -5,  4,  2, -1,  3, -2, -2,  1, -1, -5,  0, -1, -1, -5, -4, -2,  // Q
    0, -1,  1,  3, -5,  2,  4,  0,  1, -2, -3,  0, -2, -5, -1,  0,  0, -7, -4, -2,  // E
    1, -3,  0,  1, -3, -1,  0,  5, -2, -3, -4, -2, -3, -5,  0,  1,  0, -7, -5, -1,  // G
   -1,  2,  2,  1, -3,  3,  1, -2,  6, -2, -2,  0, -2, -2,  0, -1, -1, -3,  0, -2,  // H
   -1, -2, -2, -2, -2, -2, -2, -3, -2,  5,  2, -2,  2,  1, -2, -1,  0, -5, -1,  4,  // I
   -2, -3, -3, -4, -6, -2, -3, -4, -2,  2,  6, -3,  4,  2, -3, -3, -2, -2, -1,  2,  // L
   -1,  3,  1,  0, -5,  1,  0, -2,  0, -2, -3,  5,  0, -5, -1,  0,  0, -3, -4, -2,  // K
   -1,  0, -2, -3, -5, -1, -2, -3, -2,  2,  4,  0,  6,  0, -2, -2, -1, -4, -2,  2,  // M
   -3, -4, -3, -6, -4, -5, -5, -5, -2,  1,  2, -5,  0,  9, -5, -3, -3,  0,  7, -1,  // F
    1,  0,  0, -1, -3,  0, -1,  0,  0, -2, -3, -1, -2, -5,  6,  1,  0, -6, -5, -1,  // P
    1,  0,  1,  0,  0, -1,  0,  1, -1, -1, -3,  0, -2, -3,  1,  2,  1, -2, -3, -1,  // S
    1, -1,  0,  0, -2, -1,  0,  0, -1,  0, -2,  0, -1, -3,  0,  1,  3, -5, -3,  0,  // T
   -6,  2, -4, -7, -8, -5, -7, -7, -3, -5, -2, -3, -4,  0, -6, -2, -5, 17,  0, -6,  // W
   -3, -4, -2, -4,  0, -4, -4, -5,  0, -1, -1, -4, -2,  7, -5, -3, -3,  0, 10, -2,  // Y
    0, -2, -2, -2, -2, -2, -2, -1, -2,  4,  2, -2,  2, -1, -1, -1,  0, -6, -2,  4,  // V
};

constexpr std::int8_t kDna[5 * 5] = {
//  A   C   G   T  (N handled as wildcard)
    5, -4, -4, -4, -1,
   -4,  5, -4, -4, -1,
   -4, -4,  5, -4, -1,
   -4, -4, -4,  5, -1,
   -1, -1, -1, -1, -1,
};
// clang-format on

// Robinson & Robinson (1991) amino-acid background frequencies, the set
// MUSCLE uses for expected-score baselines; order matches the alphabet.
constexpr double kAminoBackground[20] = {
    0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295,
    0.07377, 0.02199, 0.05142, 0.09019, 0.05744, 0.02243, 0.03856,
    0.05203, 0.07120, 0.05841, 0.01330, 0.03216, 0.06441};

}  // namespace

SubstitutionMatrix::SubstitutionMatrix(std::string name, AlphabetKind kind,
                                       const std::int8_t* packed, int letters,
                                       GapPenalties gaps)
    : name_(std::move(name)), kind_(kind), gaps_(gaps) {
  const Alphabet& alpha = Alphabet::get(kind);
  const auto n = static_cast<std::size_t>(alpha.size());
  if (letters + 1 != alpha.size() && letters != alpha.size())
    throw std::logic_error("SubstitutionMatrix: size mismatch for " + name_);
  scores_ = util::Matrix<float>(n, n, kWildcardScore);
  for (int i = 0; i < letters; ++i)
    for (int j = 0; j < letters; ++j)
      scores_(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          static_cast<float>(packed[i * letters + j]);

  if (kind == AlphabetKind::AminoAcid) {
    double e = 0.0;
    for (int i = 0; i < 20; ++i)
      for (int j = 0; j < 20; ++j)
        e += kAminoBackground[i] * kAminoBackground[j] *
             static_cast<double>(packed[i * letters + j]);
    expected_ = static_cast<float>(e);
  } else {
    // Uniform background over the real letters.
    double e = 0.0;
    const int m = alpha.letters();
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < m; ++j)
        e += static_cast<double>(packed[i * letters + j]) / (m * m);
    expected_ = static_cast<float>(e);
  }
}

const SubstitutionMatrix& SubstitutionMatrix::blosum62() {
  static const SubstitutionMatrix m("BLOSUM62", AlphabetKind::AminoAcid,
                                    kBlosum62, 20,
                                    GapPenalties{11.0F, 1.0F});
  return m;
}

const SubstitutionMatrix& SubstitutionMatrix::pam250() {
  static const SubstitutionMatrix m("PAM250", AlphabetKind::AminoAcid,
                                    kPam250, 20, GapPenalties{10.0F, 1.0F});
  return m;
}

const SubstitutionMatrix& SubstitutionMatrix::dna_default() {
  static const SubstitutionMatrix m("DNA+5/-4", AlphabetKind::Dna, kDna, 5,
                                    GapPenalties{10.0F, 2.0F});
  return m;
}

}  // namespace salign::bio
