#include "bio/alphabet.hpp"

#include <cctype>
#include <stdexcept>

namespace salign::bio {

namespace {
// NCBI standard residue order; the matrices in substitution_matrix.cpp use
// this same order.
constexpr std::string_view kAminoLetters = "ARNDCQEGHILKMFPSTWYVX";
constexpr std::string_view kDnaLetters = "ACGTN";
// One canonical representative per compressed group, wildcard last.
// Groups: A C D (EQ) (FY) G H (ILV) (KR) M N P (ST) W  -> 14 letters + X.
constexpr std::string_view kCompressedLetters = "ACDEFGHIKMNPSWX";
}  // namespace

Alphabet::Alphabet(AlphabetKind kind, std::string name,
                   std::string_view letters_in_order)
    : kind_(kind), name_(std::move(name)) {
  size_ = static_cast<int>(letters_in_order.size());
  to_code_.fill(wildcard());
  valid_.fill(false);
  for (int i = 0; i < size_; ++i) {
    const char c = letters_in_order[static_cast<std::size_t>(i)];
    from_code_[static_cast<std::size_t>(i)] = c;
    to_code_[static_cast<unsigned char>(c)] = static_cast<std::uint8_t>(i);
    to_code_[static_cast<unsigned char>(
        std::tolower(static_cast<unsigned char>(c)))] =
        static_cast<std::uint8_t>(i);
    valid_[static_cast<unsigned char>(c)] = true;
    valid_[static_cast<unsigned char>(
        std::tolower(static_cast<unsigned char>(c)))] = true;
  }
}

void Alphabet::add_alias(char alias, char canonical) {
  const std::uint8_t code = to_code_[static_cast<unsigned char>(canonical)];
  to_code_[static_cast<unsigned char>(alias)] = code;
  to_code_[static_cast<unsigned char>(
      std::tolower(static_cast<unsigned char>(alias)))] = code;
  valid_[static_cast<unsigned char>(alias)] = true;
  valid_[static_cast<unsigned char>(
      std::tolower(static_cast<unsigned char>(alias)))] = true;
}

void Alphabet::build_compression_map() {
  const Alphabet& aa = amino_acid();
  auto group_of = [](char c) -> char {
    switch (c) {
      case 'Q': return 'E';
      case 'Y': return 'F';
      case 'L':
      case 'V': return 'I';
      case 'R': return 'K';
      case 'T': return 'S';
      default:  return c;
    }
  };
  for (int i = 0; i < aa.size(); ++i) {
    const char c = aa.decode(static_cast<std::uint8_t>(i));
    amino_to_compressed_[static_cast<std::size_t>(i)] =
        to_code_[static_cast<unsigned char>(group_of(c))];
  }
}

std::uint8_t Alphabet::compress_amino(std::uint8_t aa_code) const {
  if (kind_ != AlphabetKind::Compressed14)
    throw std::logic_error("compress_amino on non-compressed alphabet");
  return amino_to_compressed_[aa_code];
}

const Alphabet& Alphabet::amino_acid() {
  static const Alphabet a = [] {
    Alphabet x(AlphabetKind::AminoAcid, "amino-acid", kAminoLetters);
    // Common ambiguity/rare codes, mapped to their usual stand-ins.
    x.add_alias('B', 'D');  // Asx -> Asp
    x.add_alias('Z', 'E');  // Glx -> Glu
    x.add_alias('J', 'L');  // Xle -> Leu
    x.add_alias('U', 'C');  // Sec -> Cys
    x.add_alias('O', 'K');  // Pyl -> Lys
    x.add_alias('*', 'X');  // stop -> unknown
    return x;
  }();
  return a;
}

const Alphabet& Alphabet::dna() {
  static const Alphabet a = [] {
    Alphabet x(AlphabetKind::Dna, "dna", kDnaLetters);
    x.add_alias('U', 'T');
    return x;
  }();
  return a;
}

const Alphabet& Alphabet::compressed14() {
  static const Alphabet a = [] {
    Alphabet x(AlphabetKind::Compressed14, "compressed-14", kCompressedLetters);
    x.add_alias('Q', 'E');
    x.add_alias('Y', 'F');
    x.add_alias('L', 'I');
    x.add_alias('V', 'I');
    x.add_alias('R', 'K');
    x.add_alias('T', 'S');
    x.build_compression_map();
    return x;
  }();
  return a;
}

const Alphabet& Alphabet::get(AlphabetKind kind) {
  switch (kind) {
    case AlphabetKind::AminoAcid: return amino_acid();
    case AlphabetKind::Dna: return dna();
    case AlphabetKind::Compressed14: return compressed14();
  }
  throw std::logic_error("unknown AlphabetKind");
}

}  // namespace salign::bio
