#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bio/alphabet.hpp"

namespace salign::bio {

/// An unaligned biological sequence: identifier + encoded residues.
///
/// Residues are stored as alphabet codes (std::uint8_t); the original
/// character form is reproduced on demand via text(). All alignment, k-mer
/// and profile code operates on codes, never on characters.
class Sequence {
 public:
  Sequence() : kind_(AlphabetKind::AminoAcid) {}

  /// Encodes `residues` with the given alphabet; unknown characters become
  /// the alphabet wildcard. Whitespace is rejected.
  Sequence(std::string id, std::string_view residues,
           AlphabetKind kind = AlphabetKind::AminoAcid);

  /// Takes pre-encoded codes (used by generators and deserialization).
  Sequence(std::string id, std::vector<std::uint8_t> codes, AlphabetKind kind);

  [[nodiscard]] const std::string& id() const { return id_; }
  [[nodiscard]] AlphabetKind alphabet_kind() const { return kind_; }
  [[nodiscard]] const Alphabet& alphabet() const { return Alphabet::get(kind_); }

  [[nodiscard]] std::size_t size() const { return codes_.size(); }
  [[nodiscard]] bool empty() const { return codes_.empty(); }
  [[nodiscard]] std::uint8_t code(std::size_t i) const { return codes_[i]; }
  [[nodiscard]] std::span<const std::uint8_t> codes() const { return codes_; }

  /// Decoded character representation (always uppercase canonical letters).
  [[nodiscard]] std::string text() const;

  friend bool operator==(const Sequence& a, const Sequence& b) {
    return a.kind_ == b.kind_ && a.id_ == b.id_ && a.codes_ == b.codes_;
  }

 private:
  std::string id_;
  std::vector<std::uint8_t> codes_;
  AlphabetKind kind_;
};

}  // namespace salign::bio
