#include "bio/sequence.hpp"

#include <cctype>
#include <stdexcept>

namespace salign::bio {

Sequence::Sequence(std::string id, std::string_view residues,
                   AlphabetKind kind)
    : id_(std::move(id)), kind_(kind) {
  const Alphabet& a = alphabet();
  codes_.reserve(residues.size());
  for (char c : residues) {
    if (std::isspace(static_cast<unsigned char>(c)))
      throw std::invalid_argument("Sequence: whitespace in residues of '" +
                                  id_ + "'");
    codes_.push_back(a.encode(c));
  }
}

Sequence::Sequence(std::string id, std::vector<std::uint8_t> codes,
                   AlphabetKind kind)
    : id_(std::move(id)), codes_(std::move(codes)), kind_(kind) {
  const auto size = static_cast<std::uint8_t>(alphabet().size());
  for (std::uint8_t c : codes_)
    if (c >= size)
      throw std::invalid_argument("Sequence: code out of range in '" + id_ +
                                  "'");
}

std::string Sequence::text() const {
  const Alphabet& a = alphabet();
  std::string s;
  s.reserve(codes_.size());
  for (std::uint8_t c : codes_) s.push_back(a.decode(c));
  return s;
}

}  // namespace salign::bio
