#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/io.hpp"

namespace salign::util {

/// Thrown at an armed injection site. Derives from IoError so the
/// checkpoint/cache retry policy treats injected faults exactly like real
/// ones: transient injections are ridden out by retry_io, non-transient
/// (or persistent-window) injections kill the operation like a dead disk.
class InjectedFault : public IoError {
 public:
  InjectedFault(const std::string& site, std::uint64_t hit, bool transient)
      : IoError("injected fault at " + site + " (hit " + std::to_string(hit) +
                    ")",
                transient),
        site_(site) {}

  [[nodiscard]] const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Deterministic, site-keyed fault injector.
///
/// Every hardened I/O boundary in the library calls
/// `FaultInjector::instance().maybe_fail("<site>")`; the fault-matrix tests
/// arm a site to fail the k-th hit (or a seeded random subset of hits) and
/// prove the pipeline survives: transient faults are absorbed by the retry
/// layer, hard faults kill the run at a stage boundary from which --resume
/// continues bit-identically.
///
/// Sites wired in: checkpoint.write, checkpoint.read, manifest.store,
/// manifest.load, cache.insert, cache.lookup, fasta.read, fasta.write,
/// the durable-IO defaults file.write and file.read (util::io, the CLI
/// --out path), and the serve daemon's serve.accept, serve.read,
/// serve.write, serve.journal.write, serve.journal.read,
/// serve.journal.probe (boot-time writability check), serve.result.write
/// (tests/serve_test.cpp drills each at 1 and 3 worker threads).
///
/// tools/salign_lint keeps this list honest: every site literal compiled
/// into src/ must appear here, in README.md, and in a tests/ or cmake/
/// drill, or the lint_salign ctest fails.
///
/// Zero-cost when disarmed: maybe_fail() is one relaxed atomic load and a
/// predicted-not-taken branch — no locks, no string hashing — so leaving
/// the sites compiled into production code costs nothing measurable
/// (BENCH_pr7.json pins this).
///
/// Activation: programmatic (arm()/arm_site(), used by tests) or the
/// SALIGN_FAULTS environment variable (read by the CLI at startup), with
/// SALIGN_FAULT_SEED seeding the probabilistic mode. Spec grammar, comma
/// separated:
///
///   site:k        fail hit k (0-based), once, transient (retried)
///   site:k:n      fail hits [k, k+n)
///   site:k:*      fail every hit from k on (outlasts retries => hard)
///   ...!          '!' suffix: non-transient (never retried)
///   site:~p       fail each hit with probability p (seeded, per-site)
///
/// e.g. SALIGN_FAULTS="checkpoint.write:2:*!,cache.lookup:~0.25"
class FaultInjector {
 public:
  static constexpr std::uint64_t kAllHits = ~std::uint64_t{0};

  /// What an armed site does. Window mode (probability == 0): hits
  /// [first, first+count) throw. Probabilistic mode (probability > 0): each
  /// hit throws with `probability`, decided by a hash of (seed, site, hit
  /// index) — deterministic for a given seed and hit order.
  struct SitePlan {
    std::uint64_t first = 0;
    std::uint64_t count = 1;
    double probability = 0.0;
    bool transient = true;
  };

  struct SiteStats {
    std::uint64_t hits = 0;
    std::uint64_t failures = 0;
  };

  /// The process-wide injector every site consults.
  static FaultInjector& instance();

  /// Arms sites from a spec string (grammar above). Throws
  /// std::invalid_argument on malformed specs. Additive: call disarm()
  /// first for a clean slate.
  void arm(const std::string& spec);

  /// Arms one site programmatically.
  void arm_site(const std::string& site, SitePlan plan);

  /// Reads SALIGN_FAULTS (and SALIGN_FAULT_SEED); no-op when unset.
  void arm_from_env();

  /// Clears every plan and all counters; maybe_fail() returns to the
  /// zero-cost disabled path.
  void disarm();

  /// Seed of the probabilistic mode (default 0x5a11a11a).
  void seed(std::uint64_t s);

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// The injection-site entry point: no-op unless armed, else counts the
  /// hit and throws InjectedFault when the site's plan says this hit fails.
  void maybe_fail(std::string_view site) {
    if (!enabled()) [[likely]]
      return;
    maybe_fail_slow(site);
  }

  /// Hit/failure counters of one site since the last disarm().
  [[nodiscard]] SiteStats stats(const std::string& site) const;

  /// All sites seen since the last disarm(), in name order.
  [[nodiscard]] std::vector<std::pair<std::string, SiteStats>> all_stats()
      const;

 private:
  FaultInjector() = default;
  void maybe_fail_slow(std::string_view site);

  struct SiteState {
    SitePlan plan;
    bool armed = false;
    SiteStats stats;
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, SiteState, std::less<>> sites_;
  std::uint64_t seed_ = 0x5a11a11a;
};

}  // namespace salign::util
