#include "util/stable_hash.hpp"

#include <algorithm>

namespace salign::util {

namespace {

constexpr std::uint64_t kMulA = 0x87C37B91114253D5ULL;
constexpr std::uint64_t kMulB = 0x4CF5AD432745937FULL;

constexpr std::uint64_t rotl(std::uint64_t v, int s) {
  return (v << s) | (v >> (64 - s));
}

/// splitmix64-style avalanche finalizer.
constexpr std::uint64_t fmix(std::uint64_t v) {
  v ^= v >> 33;
  v *= 0xFF51AFD7ED558CCDULL;
  v ^= v >> 33;
  v *= 0xC4CEB9FE1A85EC53ULL;
  v ^= v >> 33;
  return v;
}

std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string Digest128::hex() const {
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const int byte = i % 8;
    const auto b =
        static_cast<std::uint8_t>(word >> (8 * (7 - byte)));
    out[static_cast<std::size_t>(2 * i)] = kHexDigits[b >> 4];
    out[static_cast<std::size_t>(2 * i + 1)] = kHexDigits[b & 0xF];
  }
  return out;
}

bool Digest128::parse(std::string_view text, Digest128& out) {
  if (text.size() != 32) return false;
  Digest128 d;
  for (int i = 0; i < 32; ++i) {
    const int v = hex_value(text[static_cast<std::size_t>(i)]);
    if (v < 0) return false;
    std::uint64_t& word = i < 16 ? d.hi : d.lo;
    word = (word << 4) | static_cast<std::uint64_t>(v);
  }
  out = d;
  return true;
}

void StableHash::mix_block(const std::uint8_t* block) {
  const std::uint64_t w0 = load_le64(block);
  const std::uint64_t w1 = load_le64(block + 8);
  a_ = rotl(a_ ^ (rotl(w0 * kMulA, 31) * kMulB), 27) * 5 + 0x52DCE729;
  b_ = rotl(b_ ^ (rotl(w1 * kMulB, 33) * kMulA), 31) * 5 + 0x38495AB5;
}

void StableHash::update(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  length_ += n;
  if (buffered_ > 0) {
    const std::size_t take = std::min(n, sizeof buf_ - buffered_);
    std::memcpy(buf_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == sizeof buf_) {
      mix_block(buf_);
      buffered_ = 0;
    }
  }
  while (n >= sizeof buf_) {
    mix_block(p);
    p += sizeof buf_;
    n -= sizeof buf_;
  }
  if (n > 0) {
    std::memcpy(buf_, p, n);
    buffered_ = n;
  }
}

Digest128 StableHash::digest128() const {
  // Finalize on a copy: pad the tail with a 0x80 marker + zeros so streams
  // that differ only by trailing zero bytes cannot collide via padding, then
  // fold in the total length and cross-mix the lanes (murmur3-128 style).
  StableHash tail(*this);
  const std::uint8_t marker = 0x80;
  tail.update(&marker, 1);
  while (tail.buffered_ != 0) {
    const std::uint8_t zero = 0;
    tail.update(&zero, 1);
  }
  std::uint64_t h1 = tail.a_ ^ length_;
  std::uint64_t h2 = tail.b_ ^ (length_ * kMulA);
  h1 += h2;
  h2 += h1;
  h1 = fmix(h1);
  h2 = fmix(h2);
  h1 += h2;
  h2 += h1;
  return Digest128{h1, h2};
}

Digest128 stable_hash128(std::span<const std::uint8_t> bytes) {
  StableHash h;
  h.update(bytes);
  return h.digest128();
}

std::uint64_t stable_hash64(std::span<const std::uint8_t> bytes) {
  return stable_hash128(bytes).hi;
}

}  // namespace salign::util
