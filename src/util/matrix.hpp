#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace salign::util {

/// Dense row-major 2-D array. Used for DP tables, distance matrices and
/// profile storage. Bounds are checked only via at(); operator() is unchecked
/// for inner-loop performance (Core Guidelines ES.103-style: validate at the
/// boundary, not per element).
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  T& at(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  void fill(const T& v) { data_.assign(data_.size(), v); }

  [[nodiscard]] const std::vector<T>& data() const { return data_; }

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_)
      throw std::out_of_range("Matrix index out of range");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Symmetric matrix stored as the strict lower triangle plus diagonal;
/// distance matrices over thousands of sequences halve their footprint.
template <typename T>
class SymmetricMatrix {
 public:
  SymmetricMatrix() = default;
  explicit SymmetricMatrix(std::size_t n, T fill = T{})
      : n_(n), data_(n * (n + 1) / 2, fill) {}

  [[nodiscard]] std::size_t size() const { return n_; }

  T& operator()(std::size_t i, std::size_t j) { return data_[index(i, j)]; }
  const T& operator()(std::size_t i, std::size_t j) const {
    return data_[index(i, j)];
  }

 private:
  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j) const {
    if (i < j) std::swap(i, j);
    return i * (i + 1) / 2 + j;
  }
  std::size_t n_ = 0;
  std::vector<T> data_;
};

}  // namespace salign::util
