#include "util/artifact_cache.hpp"

#include <memory>
#include <mutex>
#include <sstream>

#include "util/fault_injection.hpp"
#include "util/table.hpp"

namespace salign::util {

ArtifactCache::ArtifactCache(std::uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

ArtifactCache::Blob ArtifactCache::get(const Digest128& key) {
  FaultInjector::instance().maybe_fail("cache.lookup");
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  stats_.hit_bytes += it->second->blob->size();
  return it->second->blob;
}

ArtifactCache::Blob ArtifactCache::put(const Digest128& key,
                                       std::vector<std::uint8_t> bytes) {
  return put(key,
             std::make_shared<const std::vector<std::uint8_t>>(
                 std::move(bytes)));
}

ArtifactCache::Blob ArtifactCache::put(const Digest128& key, Blob blob) {
  if (!blob) return blob;
  FaultInjector::instance().maybe_fail("cache.insert");
  const std::lock_guard<std::mutex> lock(mu_);
  if (blob->size() > capacity_bytes_) return blob;  // never cacheable
  const auto it = index_.find(key);
  if (it != index_.end()) {
    stored_bytes_ -= it->second->blob->size();
    it->second->blob = blob;
    stored_bytes_ += blob->size();
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, blob});
    index_.emplace(key, lru_.begin());
    stored_bytes_ += blob->size();
    ++stats_.insertions;
  }
  evict_to_fit_locked();
  return blob;
}

void ArtifactCache::evict_to_fit_locked() {
  while (stored_bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stored_bytes_ -= victim.blob->size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ArtifactCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stored_bytes_ = 0;
}

void ArtifactCache::reset_stats() {
  const std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

void ArtifactCache::set_capacity(std::uint64_t capacity_bytes) {
  const std::lock_guard<std::mutex> lock(mu_);
  capacity_bytes_ = capacity_bytes;
  evict_to_fit_locked();
}

std::uint64_t ArtifactCache::capacity() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return capacity_bytes_;
}

ArtifactCache::Stats ArtifactCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.stored_bytes = stored_bytes_;
  s.entries = lru_.size();
  return s;
}

ArtifactCache& ArtifactCache::process_cache() {
  static ArtifactCache cache;
  return cache;
}

std::string cache_summary(const ArtifactCache::Stats& s,
                          std::uint64_t capacity_bytes) {
  const auto kib = [](std::uint64_t b) {
    return fmt("%.1f", static_cast<double>(b) / 1024.0);
  };
  std::ostringstream os;
  os << "artifact cache: " << s.hits << " hits / " << s.misses << " misses ("
     << kib(s.hit_bytes) << " KiB served), resident " << s.entries
     << " entries / " << kib(s.stored_bytes) << " KiB of "
     << kib(capacity_bytes) << " KiB";
  return os.str();
}

}  // namespace salign::util
