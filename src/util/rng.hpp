#pragma once

#include <cstdint>
#include <limits>

namespace salign::util {

/// SplitMix64 — used to expand a single user seed into stream seeds.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the project-wide deterministic RNG.
///
/// All stochastic components (workload generators, sampling, refinement
/// tie-breaks) draw from explicitly seeded instances so that every
/// experiment is reproducible bit-for-bit, including across thread counts:
/// each parallel rank derives an independent stream via `split()`.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless method with rejection for exactness.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      const auto lo = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(r) * n) & 0xFFFFFFFFFFFFFFFFULL);
      if (lo >= threshold)
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(r) * n) >> 64);
    }
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with success probability `p`.
  bool chance(double p) { return uniform() < p; }

  /// Geometric number of failures before first success, success prob `p`.
  /// Capped to avoid pathological lengths for tiny p.
  std::uint64_t geometric(double p, std::uint64_t cap = 1u << 20) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return cap;
    std::uint64_t k = 0;
    while (k < cap && !chance(p)) ++k;
    return k;
  }

  /// Derives an independent child stream (for per-rank determinism).
  [[nodiscard]] Rng split() {
    return Rng(next() ^ 0xA3C59AC2F0C3B9E1ULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace salign::util
