#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace salign::util {

/// The pipeline ran past its --deadline. Mapped to its own CLI exit code
/// (distinct from generic failure) because the run is *not* broken: the
/// checkpoint directory it leaves behind is valid and --resume completes
/// the alignment bit-identically.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

/// The run was cancelled via a CancelToken (operator stop, serve-daemon
/// job eviction). Same recovery contract as DeadlineExceeded.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Cooperative cancellation flag, shareable across threads. request()
/// never interrupts anything by itself — workers poll it at chunk/stage
/// boundaries via Budget::check().
class CancelToken {
 public:
  void request() { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// User-facing resource limits (from --deadline / --max-memory or the
/// config). Zero means "no limit" for both.
struct BudgetLimits {
  double deadline_seconds = 0.0;
  std::uint64_t max_memory_bytes = 0;
};

/// A wall-clock deadline plus cancellation token, polled cooperatively.
/// The deadline clock starts at construction. check()/poll() are cheap
/// enough for per-chunk polling: one relaxed atomic load when no limit is
/// set, one steady_clock read otherwise.
class Budget {
 public:
  Budget() = default;
  explicit Budget(BudgetLimits limits,
                  std::shared_ptr<CancelToken> cancel = nullptr)
      : limits_(limits),
        cancel_(std::move(cancel)),
        start_(std::chrono::steady_clock::now()),
        has_deadline_(limits.deadline_seconds > 0.0) {}

  /// True when the run must stop at the next boundary (deadline passed or
  /// cancellation requested). Never throws.
  [[nodiscard]] bool should_stop() const {
    if (cancel_ && cancel_->requested()) return true;
    return has_deadline_ && elapsed_seconds() >= limits_.deadline_seconds;
  }

  /// Throws DeadlineExceeded / CancelledError when the run must stop.
  /// `where` names the boundary for the diagnostic.
  void check(std::string_view where) const {
    if (cancel_ && cancel_->requested())
      throw CancelledError("cancelled at " + std::string(where));
    if (has_deadline_ && elapsed_seconds() >= limits_.deadline_seconds)
      throw DeadlineExceeded("deadline of " +
                             std::to_string(limits_.deadline_seconds) +
                             "s exceeded at " + std::string(where));
  }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  [[nodiscard]] const BudgetLimits& limits() const { return limits_; }

 private:
  BudgetLimits limits_;
  std::shared_ptr<CancelToken> cancel_;
  std::chrono::steady_clock::time_point start_{};
  bool has_deadline_ = false;
};

/// The budget of the currently running pipeline, if any. Worker loops
/// (par::parallel_for chunks, guide-tree merge scheduling) poll this so
/// cancellation crosses thread-pool threads without plumbing a parameter
/// through every call chain. Null when no budget is active — the common
/// case, one relaxed atomic load.
[[nodiscard]] const Budget* current_budget();

/// Installs `budget` as the process-current budget for its scope.
/// Scopes don't nest across threads — the pipeline driver owns exactly one.
class ScopedBudget {
 public:
  explicit ScopedBudget(const Budget* budget);
  ~ScopedBudget();
  ScopedBudget(const ScopedBudget&) = delete;
  ScopedBudget& operator=(const ScopedBudget&) = delete;

 private:
  const Budget* previous_;
};

/// Polls the current budget (if any) at a cooperative boundary; throws
/// DeadlineExceeded/CancelledError when the run must stop.
void poll_budget(std::string_view where);

/// Memory-pressure degradation helper: clamps a DP trace-cell budget so
/// the working set fits under `max_memory_bytes` (0 = no limit, returns
/// `cells` unchanged). `bytes_per_cell` is the codec's per-cell cost;
/// `reserve_fraction` is the share of the limit the traceback may claim.
/// Shrinking a checkpointed-traceback budget changes memory and speed but
/// never output — which is why this degrades instead of aborting.
[[nodiscard]] std::uint64_t clamp_trace_cells(std::uint64_t cells,
                                              std::uint64_t max_memory_bytes,
                                              std::uint64_t bytes_per_cell,
                                              double reserve_fraction = 0.25);

}  // namespace salign::util
