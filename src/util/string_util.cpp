#include "util/string_util.hpp"

#include <cctype>

namespace salign::util {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

std::string indexed_name(std::string_view prefix, std::size_t index) {
  std::string s(prefix);
  s += std::to_string(index);
  return s;
}

}  // namespace salign::util
