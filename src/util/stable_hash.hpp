#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

namespace salign::util {

/// 128-bit content digest. Comparable and hashable so it can key caches and
/// checkpoint manifests directly.
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest128&, const Digest128&) = default;

  /// 32 lowercase hex characters (hi then lo, big-endian digit order).
  [[nodiscard]] std::string hex() const;

  /// Parses the hex() form; returns false on malformed input.
  static bool parse(std::string_view text, Digest128& out);
};

/// Hash functor for unordered containers keyed by Digest128.
struct Digest128Hash {
  std::size_t operator()(const Digest128& d) const noexcept {
    return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9E3779B97F4A7C15ULL));
  }
};

/// Streaming, seedable, non-cryptographic 128-bit content hash.
///
/// Properties the stage/cache layers rely on:
///  - *stable*: the digest depends only on the byte stream (bytes are
///    consumed in order and multi-byte words are assembled little-endian),
///    never on platform, build, or chunking — update(a+b) == update(a),
///    update(b). Digests are pinned by unit tests so an accidental algorithm
///    change (which would silently invalidate every on-disk checkpoint and
///    cache key) fails loudly.
///  - *typed helpers*: u8/u32/u64/f64/str write fixed-width little-endian
///    encodings (strings are length-prefixed), mirroring par::ByteWriter, so
///    hashing a value and hashing its serialization agree field by field.
///
/// The construction is two 64-bit mixing lanes over 16-byte blocks with a
/// murmur3-style cross-lane finalizer — quality is ample for cache keys and
/// artifact integrity checks; it is NOT collision-resistant against an
/// adversary.
class StableHash {
 public:
  StableHash() = default;
  explicit StableHash(std::uint64_t seed) : a_(kLaneA ^ seed), b_(kLaneB ^ seed) {}

  void update(const void* data, std::size_t n);
  void update(std::span<const std::uint8_t> bytes) {
    update(bytes.data(), bytes.size());
  }

  void u8(std::uint8_t v) { update(&v, 1); }
  void u32(std::uint32_t v) { word(v, 4); }
  void u64(std::uint64_t v) { word(v, 8); }
  /// Hashes the IEEE-754 bit pattern (exactly what ByteWriter::f64 stores).
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    update(s.data(), s.size());
  }

  /// Finalizes a copy of the state; the hasher itself stays updatable.
  [[nodiscard]] Digest128 digest128() const;
  [[nodiscard]] std::uint64_t digest64() const { return digest128().hi; }

 private:
  static constexpr std::uint64_t kLaneA = 0x9368E53C2F6AF274ULL;
  static constexpr std::uint64_t kLaneB = 0xCA3D9DC7FEA00A18ULL;

  void word(std::uint64_t v, int bytes) {
    std::uint8_t buf[8];
    for (int i = 0; i < bytes; ++i)
      buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
    update(buf, static_cast<std::size_t>(bytes));
  }
  void mix_block(const std::uint8_t* block);

  std::uint64_t a_ = kLaneA;
  std::uint64_t b_ = kLaneB;
  std::uint64_t length_ = 0;
  std::uint8_t buf_[16] = {};
  std::size_t buffered_ = 0;
};

/// One-shot helpers.
[[nodiscard]] Digest128 stable_hash128(std::span<const std::uint8_t> bytes);
[[nodiscard]] std::uint64_t stable_hash64(std::span<const std::uint8_t> bytes);

}  // namespace salign::util
