#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace salign::util {

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on a delimiter character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Uppercases ASCII letters in place and returns the argument.
[[nodiscard]] std::string to_upper(std::string s);

/// Returns `prefix` + decimal `index` ("s", 7 -> "s7"). Built with append
/// rather than `prefix + std::to_string(i)`: GCC 12's -Wrestrict false
/// positive (PR105651) fires on the char*+string&& operator+ at -O2, which
/// -Werror turns fatal.
[[nodiscard]] std::string indexed_name(std::string_view prefix,
                                       std::size_t index);

}  // namespace salign::util
