#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace salign::util {

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on a delimiter character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Uppercases ASCII letters in place and returns the argument.
[[nodiscard]] std::string to_upper(std::string s);

}  // namespace salign::util
