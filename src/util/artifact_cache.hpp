#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/stable_hash.hpp"

namespace salign::util {

/// Byte-size-bounded, thread-safe LRU cache of serialized artifacts keyed by
/// content digest (util::Digest128 of the producing inputs + config + code
/// salt — see core/stage/stage.hpp for the key discipline).
///
/// Values are immutable serialized blobs: consumers deserialize on hit, so a
/// cached artifact can never leak shared mutable state between runs, and a
/// hit is exercised through exactly the same decode path a checkpoint resume
/// uses — bit-identity of cache-hit runs falls out of the codec round-trip
/// guarantees rather than needing separate reasoning.
///
/// A process-wide instance (process_cache()) lets repeated in-process runs
/// (the library embedding case, and the planned `salign serve`) reuse guide
/// trees, distance matrices, and finished profiles/alignments keyed by
/// sequence-set hash. It starts *disabled*; opting in is explicit
/// (SampleAlignDConfig::use_artifact_cache, MuscleOptions::use_artifact_cache,
/// `salign align --cache`).
class ArtifactCache {
 public:
  using Blob = std::shared_ptr<const std::vector<std::uint8_t>>;

  /// Counters are cumulative since construction/last reset_stats().
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t hit_bytes = 0;      ///< total size of returned blobs
    std::uint64_t stored_bytes = 0;   ///< current resident payload bytes
    std::uint64_t entries = 0;        ///< current resident entry count
  };

  explicit ArtifactCache(std::uint64_t capacity_bytes = kDefaultCapacity);

  /// nullptr on miss. A hit refreshes the entry's LRU position.
  [[nodiscard]] Blob get(const Digest128& key);

  /// Inserts (or refreshes) `bytes` under `key`, evicting least-recently
  /// used entries until the capacity bound holds. Oversized blobs (larger
  /// than the whole capacity) are not cached. Returns the stored blob.
  Blob put(const Digest128& key, std::vector<std::uint8_t> bytes);
  Blob put(const Digest128& key, Blob blob);

  void clear();
  void reset_stats();

  /// Evicts immediately when lowered below the resident size.
  void set_capacity(std::uint64_t capacity_bytes);
  [[nodiscard]] std::uint64_t capacity() const;

  [[nodiscard]] Stats stats() const;

  /// The process-wide cache (256 MiB bound). Never consulted unless a
  /// component was explicitly configured to use it.
  static ArtifactCache& process_cache();

  static constexpr std::uint64_t kDefaultCapacity = 256ULL << 20;

 private:
  struct Entry {
    Digest128 key;
    Blob blob;
  };

  void evict_to_fit_locked();

  mutable std::mutex mu_;
  std::uint64_t capacity_bytes_;
  std::uint64_t stored_bytes_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Digest128, std::list<Entry>::iterator, Digest128Hash>
      index_;
  Stats stats_;
};

/// One-line human-readable cache report ("hits 3/5 (12.4 KiB), resident 2
/// entries / 8.1 KiB of 256 MiB").
[[nodiscard]] std::string cache_summary(const ArtifactCache::Stats& s,
                                        std::uint64_t capacity_bytes);

}  // namespace salign::util
