#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace salign::util {

/// Minimal fixed-column console table used by the figure/table benches so
/// that every experiment prints the same row layout the paper reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment; also usable as CSV via to_csv().
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helper ("%.3f" etc.) returning std::string.
[[nodiscard]] std::string fmt(const char* spec, double value);

}  // namespace salign::util
