#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace salign::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  const double new_mean =
      mean_ + delta * static_cast<double>(other.n_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ = new_mean;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats summarize(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<long>(std::floor((x - lo_) / width));
  if (bin < 0) {
    bin = 0;
    ++clamped_;
  } else if (bin >= static_cast<long>(counts_.size())) {
    bin = static_cast<long>(counts_.size()) - 1;
    if (x > hi_) ++clamped_;
  }
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin + 1);
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[b]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    char line[64];
    std::snprintf(line, sizeof line, "[%8.3f,%8.3f) %6zu |", bin_lo(b),
                  bin_hi(b), counts_[b]);
    os << line << std::string(bar, '#') << '\n';
  }
  return os.str();
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<long>(mid),
                   values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    const double lower =
        *std::max_element(values.begin(), values.begin() + static_cast<long>(mid));
    m = (m + lower) / 2.0;
  }
  return m;
}

}  // namespace salign::util
