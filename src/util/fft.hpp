#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace salign::util {

/// In-place iterative radix-2 Cooley–Tukey FFT.
/// Precondition: data.size() is a power of two.
/// `inverse = true` computes the unscaled inverse transform; callers divide
/// by N themselves (the correlation helper below does).
void fft(std::span<std::complex<double>> data, bool inverse);

/// Rounds n up to the next power of two (n = 0 -> 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// Circular cross-correlation of two real signals via FFT, zero-padded to
/// avoid wrap-around: result[k] = sum_i a[i] * b[i - k + (b.size()-1)],
/// i.e. the full linear cross-correlation with lag index k in
/// [0, a.size() + b.size() - 2]. Lag (b.size()-1) corresponds to zero shift.
///
/// This is the kernel MAFFT's FFT mode uses to find candidate homologous
/// segment offsets between residue-property signals (Katoh et al. 2002);
/// our MafftAligner (FFTNSI mode) calls it per sequence pair.
[[nodiscard]] std::vector<double> cross_correlation(std::span<const double> a,
                                                    std::span<const double> b);

}  // namespace salign::util
