#include "util/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace salign::util {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if ((n & (n - 1)) != 0)
    throw std::invalid_argument("fft: size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * std::numbers::pi / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<double> cross_correlation(std::span<const double> a,
                                      std::span<const double> b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);

  std::vector<std::complex<double>> fa(n), fb(n);
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
  // Correlation = convolution with reversed b.
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[b.size() - 1 - i];

  fft(fa, false);
  fft(fb, false);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  fft(fa, true);

  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i)
    out[i] = fa[i].real() / static_cast<double>(n);
  return out;
}

}  // namespace salign::util
