#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace salign::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(const char* spec, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, value);
  return buf;
}

}  // namespace salign::util
