#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace salign::util {

/// Single-pass running mean/variance accumulator (Welford's algorithm).
///
/// Backs the rank-statistics experiments (paper Table 1) and the load-balance
/// accounting in the pipeline, where we need mean/min/max/stddev of streams
/// whose length is not known in advance.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (the paper reports population statistics).
  [[nodiscard]] double variance() const { return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0; }
  /// Sample variance (divides by n-1).
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

[[nodiscard]] RunningStats summarize(std::span<const double> values);

/// Fixed-bin histogram over a closed interval; used to reproduce the k-mer
/// rank distribution figures (paper Figs. 1 and 3).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> values);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Inclusive lower edge of a bin.
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  /// Out-of-range samples are clamped into the first/last bin; count kept
  /// separately for diagnostics.
  [[nodiscard]] std::size_t clamped() const { return clamped_; }

  /// Renders an ASCII bar chart (one line per bin), for the figure benches.
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t clamped_ = 0;
};

/// Median of a copy of `values` (empty input -> 0).
[[nodiscard]] double median(std::vector<double> values);

}  // namespace salign::util
