#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>

namespace salign::util {

/// An I/O failure. `transient()` failures (interrupted writes, injected
/// faults configured as transient) are worth retrying; permanent ones
/// (missing file, permission denied) are not — retry_io() below implements
/// exactly that policy, so every disk touch in the checkpoint/cache layer
/// distinguishes the two by construction.
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& what, bool transient)
      : std::runtime_error(what), transient_(transient) {}

  [[nodiscard]] bool transient() const { return transient_; }

 private:
  bool transient_;
};

/// Retry policy of retry_io(): bounded attempts with capped exponential
/// backoff. The defaults ride out a single transient failure in ~1 ms and
/// give up after 4 attempts (1 + 3 retries, ~7 ms of backoff total) — long
/// enough for injected/EINTR-class blips, short enough that a genuinely
/// broken disk fails the stage instead of hanging it.
struct RetryOptions {
  int attempts = 4;
  std::chrono::milliseconds initial_backoff{1};
  std::chrono::milliseconds max_backoff{16};
};

/// Runs `fn`, retrying when it throws a *transient* IoError, with
/// exponential backoff between attempts. Non-transient IoErrors and every
/// other exception type propagate immediately; when the attempt budget is
/// exhausted the last transient error propagates. `what` names the
/// operation in give-up diagnostics ("checkpoint.write: ...").
template <typename Fn>
auto retry_io(std::string_view what, Fn&& fn, RetryOptions opts = {})
    -> decltype(fn()) {
  std::chrono::milliseconds backoff = opts.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const IoError& e) {
      if (!e.transient() || attempt >= opts.attempts)
        throw IoError(std::string(what) + ": " + e.what() +
                          (e.transient() ? " (retries exhausted)" : ""),
                      e.transient());
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, opts.max_backoff);
    }
  }
}

/// Atomically and durably replaces `target` with `bytes`: writes a
/// temporary sibling, fsyncs it, renames it over `target`, and fsyncs the
/// containing directory. A crash at any point leaves either the old file or
/// the new one — never a torn mixture — and once this returns the bytes
/// survive power loss, which is the durability unit the checkpoint resume
/// contract is built on. Throws IoError (transient for write/sync
/// failures, so retry_io can ride out blips; non-transient when the
/// directory is unusable). Fault-injection site: "file.write" (keyed via
/// `site` when provided).
void write_file_durable(const std::filesystem::path& target,
                        std::span<const std::uint8_t> bytes,
                        std::string_view site = "file.write");

/// write_file_durable for text payloads — the CLI output path (`salign
/// align --out`, `tree --out`, `generate` reference alignments). Same
/// atomic tmp→fsync→rename→dir-fsync contract; exists so callers never
/// reach for a naked std::ofstream (salign-lint's durable-io rule bans
/// those in src/).
void write_text_file_durable(const std::filesystem::path& target,
                             std::string_view text,
                             std::string_view site = "file.write");

/// Reads a whole file. Throws IoError: non-transient when the file cannot
/// be opened, transient on short/failed reads. Fault-injection site `site`
/// (default "file.read") fires before the read.
[[nodiscard]] std::string read_file(const std::filesystem::path& path,
                                    std::string_view site = "file.read");

}  // namespace salign::util
