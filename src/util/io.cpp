#include "util/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <system_error>

#include "util/fault_injection.hpp"

namespace salign::util {

namespace fs = std::filesystem;

namespace {

std::string errno_text(const char* op, const fs::path& path) {
  return std::string(op) + " " + path.string() + ": " + std::strerror(errno);
}

/// RAII fd so error paths below can't leak descriptors.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

void fsync_path(const fs::path& path, int open_flags) {
  Fd f;
  f.fd = ::open(path.c_str(), open_flags);
  if (f.fd < 0) throw IoError(errno_text("open", path), false);
  if (::fsync(f.fd) != 0) throw IoError(errno_text("fsync", path), true);
}

}  // namespace

void write_file_durable(const fs::path& target,
                        std::span<const std::uint8_t> bytes,
                        std::string_view site) {
  FaultInjector::instance().maybe_fail(site);
  const fs::path tmp = target.string() + ".tmp";
  {
    Fd f;
    f.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (f.fd < 0) throw IoError(errno_text("open", tmp), false);
    const std::uint8_t* p = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
      const ::ssize_t n = ::write(f.fd, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw IoError(errno_text("write", tmp), true);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    if (::fsync(f.fd) != 0) throw IoError(errno_text("fsync", tmp), true);
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) throw IoError("rename " + tmp.string() + ": " + ec.message(), true);
  // Persist the rename itself: fsync the directory entry. Without this a
  // crash can roll back to the old file even though the data blocks of the
  // new one are on disk.
  const fs::path dir = target.has_parent_path() ? target.parent_path()
                                                : fs::path(".");
  fsync_path(dir, O_RDONLY | O_DIRECTORY);
}

void write_text_file_durable(const fs::path& target, std::string_view text,
                             std::string_view site) {
  write_file_durable(
      target,
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size()),
      site);
}

std::string read_file(const fs::path& path, std::string_view site) {
  FaultInjector::instance().maybe_fail(site);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("open " + path.string() + ": cannot open file", false);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad())
    throw IoError("read " + path.string() + ": stream failure", true);
  return std::move(buf).str();
}

}  // namespace salign::util
