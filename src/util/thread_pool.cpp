#include "util/thread_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace salign::util {

namespace {

/// Shared state of one run(): the pool copies and the caller synchronize on
/// it. Held by shared_ptr so a copy the pool dequeues after the caller
/// returned (already cancelled) still has valid state to look at.
struct JobState {
  std::mutex mu;
  std::condition_variable done_cv;  // caller waits: started == finished
  const std::function<void()>* fn = nullptr;  // valid until cancelled is set
  unsigned started = 0;
  unsigned finished = 0;
  bool cancelled = false;
  std::exception_ptr error;
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;
  std::deque<std::shared_ptr<JobState>> queue;  // one entry per copy
  std::vector<std::thread> threads;
  unsigned idle = 0;
  bool shutdown = false;

  void worker_loop() {
    std::unique_lock lock(mu);
    for (;;) {
      ++idle;
      work_cv.wait(lock, [&] { return shutdown || !queue.empty(); });
      --idle;
      if (shutdown && queue.empty()) return;
      const std::shared_ptr<JobState> job = std::move(queue.front());
      queue.pop_front();
      lock.unlock();

      const std::function<void()>* fn = nullptr;
      {
        std::lock_guard job_lock(job->mu);
        if (!job->cancelled) {
          ++job->started;
          fn = job->fn;
        }
      }
      if (fn != nullptr) {
        std::exception_ptr err;
        try {
          (*fn)();
        } catch (...) {
          err = std::current_exception();
        }
        std::lock_guard job_lock(job->mu);
        ++job->finished;
        if (err && !job->error) job->error = err;
        job->done_cv.notify_all();
      }
      lock.lock();
    }
  }
};

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max(1U, std::thread::hardware_concurrency()));
  return pool;
}

ThreadPool::ThreadPool(unsigned max_workers)
    : impl_(new Impl), max_workers_(max_workers) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

void ThreadPool::run(unsigned extra_workers,
                     const std::function<void()>& worker) {
  const unsigned extra = std::min(extra_workers, max_workers_);
  if (extra == 0) {
    worker();
    return;
  }

  auto job = std::make_shared<JobState>();
  job->fn = &worker;
  {
    std::lock_guard lock(impl_->mu);
    for (unsigned i = 0; i < extra; ++i) impl_->queue.push_back(job);
    // Lazily grow the pool: one thread per queued copy not served by an
    // idle worker, up to the cap.
    const std::size_t want =
        std::min<std::size_t>(max_workers_,
                              impl_->threads.size() +
                                  (impl_->queue.size() > impl_->idle
                                       ? impl_->queue.size() - impl_->idle
                                       : 0));
    while (impl_->threads.size() < want)
      impl_->threads.emplace_back([this] { impl_->worker_loop(); });
  }
  impl_->work_cv.notify_all();

  std::exception_ptr caller_error;
  try {
    worker();
  } catch (...) {
    caller_error = std::current_exception();
  }

  // The caller's share of the work is done (or failed): cancel copies the
  // pool has not started yet and wait out the ones it has.
  std::unique_lock job_lock(job->mu);
  job->cancelled = true;
  job->done_cv.wait(job_lock, [&] { return job->started == job->finished; });
  if (caller_error) std::rethrow_exception(caller_error);
  if (job->error) std::rethrow_exception(job->error);
}

unsigned default_threads() {
  return default_threads_for(std::thread::hardware_concurrency());
}

}  // namespace salign::util
