#include "util/budget.hpp"

#include <algorithm>
#include <atomic>

namespace salign::util {

namespace {
std::atomic<const Budget*> g_current_budget{nullptr};
}  // namespace

const Budget* current_budget() {
  return g_current_budget.load(std::memory_order_relaxed);
}

ScopedBudget::ScopedBudget(const Budget* budget)
    : previous_(g_current_budget.exchange(budget, std::memory_order_relaxed)) {}

ScopedBudget::~ScopedBudget() {
  g_current_budget.store(previous_, std::memory_order_relaxed);
}

void poll_budget(std::string_view where) {
  if (const Budget* b = current_budget()) b->check(where);
}

std::uint64_t clamp_trace_cells(std::uint64_t cells,
                                std::uint64_t max_memory_bytes,
                                std::uint64_t bytes_per_cell,
                                double reserve_fraction) {
  if (max_memory_bytes == 0 || bytes_per_cell == 0) return cells;
  const auto budget_bytes = static_cast<std::uint64_t>(
      static_cast<double>(max_memory_bytes) * reserve_fraction);
  // Floor of 64k cells: below that the block-recompute overhead dominates
  // and the limit was unsatisfiable anyway — better slow than broken.
  constexpr std::uint64_t kFloor = 64 * 1024;
  const std::uint64_t max_cells =
      std::max<std::uint64_t>(budget_bytes / bytes_per_cell, kFloor);
  return std::min(cells, max_cells);
}

}  // namespace salign::util
