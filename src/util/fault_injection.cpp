#include "util/fault_injection.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "util/string_util.hpp"

namespace salign::util {

namespace {

/// splitmix64: the per-hit coin of the probabilistic mode. Deterministic in
/// (seed, site, hit index), so a seeded run replays the same faults
/// regardless of wall-clock — and independent of call interleaving for any
/// site whose hits are serialized (all checkpoint/manifest sites are).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_site(std::string_view site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : site) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& spec) {
  for (const std::string& raw : split(spec, ',')) {
    std::string entry(trim(raw));
    if (entry.empty()) continue;
    SitePlan plan;
    if (!entry.empty() && entry.back() == '!') {
      plan.transient = false;
      entry.pop_back();
    }
    const std::vector<std::string> parts = split(entry, ':');
    if (parts.size() < 2 || parts.size() > 3 || parts[0].empty())
      throw std::invalid_argument("fault spec '" + raw +
                                  "': want site:k[:n], site:k:* or site:~p");
    try {
      if (parts.size() == 2 && !parts[1].empty() && parts[1][0] == '~') {
        plan.probability = std::stod(parts[1].substr(1));
        if (plan.probability <= 0.0 || plan.probability > 1.0)
          throw std::invalid_argument("probability out of (0, 1]");
      } else {
        plan.first = std::stoull(parts[1]);
        if (parts.size() == 3)
          plan.count = parts[2] == "*" ? kAllHits : std::stoull(parts[2]);
        if (plan.count == 0)
          throw std::invalid_argument("zero-hit fault window");
      }
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("fault spec '" + raw + "': malformed");
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("fault spec '" + raw + "': out of range");
    }
    arm_site(parts[0], plan);
  }
}

void FaultInjector::arm_site(const std::string& site, SitePlan plan) {
  const std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  state.plan = plan;
  state.armed = true;
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::arm_from_env() {
  if (const char* seed_env = std::getenv("SALIGN_FAULT_SEED"))
    seed(std::stoull(seed_env));
  if (const char* spec = std::getenv("SALIGN_FAULTS")) arm(spec);
}

void FaultInjector::disarm() {
  const std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

void FaultInjector::seed(std::uint64_t s) {
  const std::lock_guard<std::mutex> lock(mu_);
  seed_ = s;
}

void FaultInjector::maybe_fail_slow(std::string_view site) {
  std::uint64_t hit = 0;
  bool fail = false;
  bool transient = true;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    // Unarmed sites are still counted while the injector is enabled — the
    // fault-matrix tests read the hit counts to enumerate boundaries.
    SiteState& state =
        it != sites_.end() ? it->second : sites_[std::string(site)];
    hit = state.stats.hits++;
    if (state.armed) {
      const SitePlan& p = state.plan;
      if (p.probability > 0.0) {
        const std::uint64_t coin = mix64(seed_ ^ hash_site(site) ^ hit);
        fail = static_cast<double>(coin >> 11) *
                   (1.0 / 9007199254740992.0) <  // 2^-53
               p.probability;
      } else {
        fail = hit >= p.first &&
               (p.count == kAllHits || hit < p.first + p.count);
      }
      transient = p.transient;
      if (fail) ++state.stats.failures;
    }
  }
  if (fail) throw InjectedFault(std::string(site), hit, transient);
}

FaultInjector::SiteStats FaultInjector::stats(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it != sites_.end() ? it->second.stats : SiteStats{};
}

std::vector<std::pair<std::string, FaultInjector::SiteStats>>
FaultInjector::all_stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, SiteStats>> out;
  out.reserve(sites_.size());
  for (const auto& [name, state] : sites_) out.emplace_back(name, state.stats);
  return out;
}

}  // namespace salign::util
