#pragma once

#include <ctime>

#include <chrono>
#include <string>
#include <utility>

namespace salign::util {

/// Monotonic wall-clock stopwatch.
///
/// Used throughout the benchmark harness and the pipeline stage
/// instrumentation. The clock is `steady_clock`, so timings are immune to
/// system clock adjustments.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch and returns the elapsed time before the reset.
  double restart() {
    const double s = seconds();
    start_ = Clock::now();
    return s;
  }

  /// Elapsed seconds since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last restart().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID).
///
/// The cluster runtime oversubscribes host cores with one thread per
/// simulated rank; wall-clock per-rank timings would be inflated by
/// scheduler contention. CPU time measures the work a rank actually did,
/// which is what the cluster cost model charges as "dedicated node" compute
/// (see DESIGN.md §2).
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  /// CPU seconds consumed by the calling thread since construction/restart.
  [[nodiscard]] double seconds() const { return now() - start_; }

  double restart() {
    const double t = now();
    const double s = t - start_;
    start_ = t;
    return s;
  }

  static double now() {
    ::timespec ts{};
    ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }

 private:
  double start_;
};

/// Accumulates elapsed time into a `double` on destruction; convenient for
/// attributing scoped work to a per-stage accumulator.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& sink) : sink_(&sink) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { *sink_ += watch_.seconds(); }

 private:
  double* sink_;
  Stopwatch watch_;
};

}  // namespace salign::util
