#pragma once

#include <cstddef>
#include <functional>

namespace salign::util {

/// Process-wide shared worker pool.
///
/// Every thread-parallel pass in the library (the distance-matrix drivers,
/// the progressive-alignment task scheduler) draws workers from this one
/// pool instead of spawning threads per call, so concurrent passes —
/// several simulated cluster ranks each threading their own bucket — share
/// the machine instead of oversubscribing it. Workers are started lazily on
/// first use and live for the process.
///
/// The execution model is fork-join with caller participation: run()
/// invokes `worker` on the calling thread and hands up to `extra_workers`
/// copies to pool threads. Because the caller always participates, a run
/// completes even when every pool thread is busy elsewhere — callers can
/// never deadlock waiting for pool capacity, and nested run() calls (a
/// worker that itself runs a parallel pass) degrade to inline execution at
/// worst. Copies the pool has not started by the time the work is complete
/// are cancelled, never invoked.
class ThreadPool {
 public:
  /// The shared pool, sized to the host's hardware concurrency.
  static ThreadPool& shared();

  /// A pool with at most `max_workers` threads (0 = no pool threads; run()
  /// degrades to calling `worker` inline). Mostly for tests — production
  /// code uses shared().
  explicit ThreadPool(unsigned max_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs `worker` on the calling thread plus up to `extra_workers` pool
  /// threads concurrently and returns once every invocation that started
  /// has returned. `worker` must be safe to invoke concurrently from
  /// multiple threads (typically a work-stealing loop over a shared queue)
  /// and must not assume any copy beyond the caller's ever runs. If any
  /// invocation throws, one of the exceptions is rethrown here after all
  /// invocations have finished.
  void run(unsigned extra_workers, const std::function<void()>& worker);

  [[nodiscard]] unsigned max_workers() const { return max_workers_; }

 private:
  struct Impl;
  Impl* impl_;
  unsigned max_workers_;
};

/// Default worker count for "auto" thread knobs: the host's hardware
/// concurrency, capped at kDefaultThreadCap (beyond the cap the in-process
/// cluster ranks multiply against per-rank threads and memory-bandwidth-
/// bound DP passes stop scaling), and at least 1 — including when
/// hardware_concurrency() reports 0, which the standard permits and some
/// containers/cgroup setups actually do. A 0 here would flow into thread
/// knobs as "no workers" and silently serialize (or worse, size a pool at
/// zero), so the floor is load-bearing, not cosmetic.
inline constexpr unsigned kDefaultThreadCap = 16;
[[nodiscard]] unsigned default_threads();

/// The pure mapping behind default_threads(), taking the reported hardware
/// concurrency as an argument so the hardware_concurrency() == 0 contract
/// is unit-testable (tests/util_test.cpp pins it).
[[nodiscard]] constexpr unsigned default_threads_for(unsigned hardware) {
  if (hardware == 0) return 1;  // unknown concurrency: never degenerate to 0
  return hardware < kDefaultThreadCap ? hardware : kDefaultThreadCap;
}

}  // namespace salign::util
