#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "par/cost_model.hpp"

namespace salign::core {

/// Communication pattern of a pipeline stage (drives the cost model).
enum class CommPattern : std::uint8_t {
  None,       ///< pure computation
  Gather,     ///< all ranks -> root
  Broadcast,  ///< root -> all ranks
  AllGather,  ///< all ranks -> all ranks (same payload)
  AllToAll,   ///< personalized exchange
};

/// Timing/volume record of one pipeline stage.
struct StageStats {
  std::string name;
  CommPattern pattern = CommPattern::None;
  /// Per-rank CPU seconds the rank's own thread spent computing in this
  /// stage (shared-pool workers a threaded stage borrows are not included —
  /// wall time below is what shows their effect).
  std::vector<double> rank_seconds;
  /// Per-rank wall-clock seconds of the stage. For compute stages run with
  /// SampleAlignDConfig::threads > 1 this is what shrinks; the per-stage
  /// speedup of a threaded run is the ratio of this stage's max wall
  /// seconds between a threads=1 and a threads=t run of the same input
  /// (PipelineStats::threads records which one this is).
  std::vector<double> rank_wall_seconds;
  /// Communication volume: max bytes sent by any rank in this stage.
  std::uint64_t max_bytes_per_rank = 0;
  /// Total bytes sent by all ranks in this stage.
  std::uint64_t total_bytes = 0;

  [[nodiscard]] double max_seconds() const;
  [[nodiscard]] double max_wall_seconds() const;

  /// Modeled wire time of this stage's communication on the given
  /// interconnect.
  [[nodiscard]] double comm_seconds(const par::ClusterCostModel& model,
                                    int p) const;
};

/// End-to-end instrumentation of one pipeline run.
///
/// Two notions of time are reported (DESIGN.md §2):
///  - wall_seconds: host wall-clock of the run (threads oversubscribe the
///    host's cores, so this undersells large p on small machines);
///  - modeled_seconds(): per-stage max rank CPU time + modeled wire time,
///    i.e. the makespan on a dedicated p-node cluster — the quantity the
///    paper's Figs. 4-6 plot.
/// Checkpoint/cache provenance of one stage artifact (mirrors the
/// stage::ArtifactRecord the run produced, without the digests).
struct StageArtifactStats {
  std::string name;
  int paper_step = 0;
  std::uint64_t bytes = 0;   ///< serialized artifact size
  bool resumed = false;      ///< loaded from the checkpoint, not computed
  double seconds = 0.0;      ///< wall time to compute (or load) it
};

/// One sequential-aligner phase aggregated across all buckets of the run.
struct AlignerPhaseSummary {
  std::string name;
  double wall_seconds = 0.0;
  std::uint64_t runs = 0;
  std::uint64_t cache_hits = 0;
};

struct PipelineStats {
  int num_procs = 0;
  /// Worker threads each rank's local work was allowed to use
  /// (SampleAlignDConfig::threads). Per-stage rank_seconds are CPU seconds,
  /// so comparing a threads=1 and a threads=t run of the same input shows
  /// the per-stage parallel efficiency directly: wall speedup of a compute
  /// stage = serial max rank seconds / threaded stage wall.
  unsigned threads = 1;
  std::size_t num_sequences = 0;
  std::vector<StageStats> stages;
  /// Bucket sizes after redistribution (load-balance check vs the paper's
  /// 2N/p regular-sampling bound).
  std::vector<std::size_t> bucket_sizes;
  double wall_seconds = 0.0;

  /// Stage artifacts in execution order (filled when the run checkpointed
  /// or resumed; empty otherwise).
  std::vector<StageArtifactStats> artifacts;
  /// Number of stages served from the checkpoint instead of recomputed.
  std::uint64_t resumed_stages = 0;
  /// Per-phase breakdown of the sequential aligner runs (default aligner
  /// only; filled when the pipeline owns the phase recorder).
  std::vector<AlignerPhaseSummary> aligner_phases;
  /// One-line process-wide artifact-cache report ("" when caching is off).
  std::string cache_note;
  /// Checkpoint-robustness notes: artifacts/manifests quarantined (renamed
  /// to `*.corrupt` and recomputed) or otherwise ignored during this run.
  /// Empty on a healthy run.
  std::vector<std::string> quarantine_notes;

  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] double total_compute_seconds() const;
  [[nodiscard]] double modeled_seconds(const par::ClusterCostModel& model =
                                           par::ClusterCostModel{}) const;
  /// Largest bucket relative to the perfect share N/p (1.0 = perfectly
  /// balanced; regular sampling guarantees <= 2.0 for distinct keys).
  [[nodiscard]] double load_factor() const;

  /// Multi-line human-readable per-stage report.
  [[nodiscard]] std::string summary() const;
};

}  // namespace salign::core
