#pragma once

#include <memory>

#include "bio/substitution_matrix.hpp"
#include "core/stage/stage.hpp"
#include "kmer/kmer_profile.hpp"
#include "msa/consensus.hpp"
#include "msa/msa_algorithm.hpp"
#include "msa/phase_stats.hpp"
#include "msa/polish.hpp"
#include "util/budget.hpp"

namespace salign::core {

/// How sequences are ranked before the sample-sort redistribution.
enum class RankMode {
  /// Sample-Align-D (this paper): exchange k·p samples and re-rank every
  /// sequence against the global sample — correct for phylogenetically
  /// diverse inputs (§2.3.1).
  Globalized,
  /// The predecessor Sample-Align system [34]: each processor keeps its
  /// local-block rank. Valid only under the homogeneity assumption; kept as
  /// the ablation that shows why the globalized re-rank matters.
  LocalOnly,
};

/// Configuration of the Sample-Align-D pipeline.
struct SampleAlignDConfig {
  /// Number of logical processors p (the paper's cluster size knob).
  int num_procs = 4;

  /// k-mer rank parameters (paper §2, "k-mer Rank").
  kmer::KmerParams kmer{};

  /// Samples contributed per processor in the sample-exchange round
  /// (the paper's k, with k << N/p). 0 selects the paper's default k = p-1.
  int samples_per_proc = 0;

  /// Globalized (paper) vs local-only (predecessor [34]) ranking.
  RankMode rank_mode = RankMode::Globalized;

  /// Worker threads available to EACH rank's local work (1 = the
  /// historical serial behaviour). Flows into the default sequential
  /// aligner's parallel passes — the guide-tree distance matrices and the
  /// progressive merge schedule — which draw from the shared
  /// util::ThreadPool, so ranks×threads share the host instead of
  /// oversubscribing it. Any value produces bit-identical alignments. A
  /// caller-provided local_aligner configures its own thread count.
  unsigned threads = 1;

  /// The sequential MSA system run inside every processor (paper step
  /// "Align sequences in each processor using any sequential multiple
  /// alignment system"). Null selects MiniMuscle, the paper's choice,
  /// with `threads` workers.
  std::shared_ptr<const msa::MsaAlgorithm> local_aligner;

  /// Whether to run the global-ancestor profile-profile tweak (paper steps
  /// 12-16). Disabling it degrades the glue to block-diagonal concatenation
  /// — the ablation that shows why the ancestor constraint matters.
  bool ancestor_refinement = true;

  /// Local-ancestor extraction parameters.
  msa::ConsensusOptions consensus{};

  /// Root-side polish of the glued alignment: re-align the most divergent
  /// rows against the global profile (the paper's §5 future-work
  /// refinement). Disabled by default to match the published pipeline.
  bool polish_divergent = false;

  /// Polish parameters (used only when polish_divergent is set). max_rows
  /// defaults to 32 here to bound the root-side cost on large glues.
  msa::PolishOptions polish{.fraction = 0.15,
                            .max_rows = 32,
                            .passes = 1,
                            .gaps = {},
                            .min_gain = 1e-4F};

  /// Scoring matrix for profiles/consensus alignment.
  const bio::SubstitutionMatrix* matrix = &bio::SubstitutionMatrix::blosum62();

  /// Externalized-state options: checkpoint.dir enables per-stage artifact
  /// persistence, checkpoint.resume loads completed stages back. Resumed
  /// runs are bit-identical to fresh ones for any thread count (stage
  /// identity hashes cover everything output-relevant; threads are not).
  stage::CheckpointOptions checkpoint{};

  /// Serve repeated per-bucket aligner work (distance matrices, guide
  /// trees) from the process-wide util::ArtifactCache. Opt-in; never
  /// changes output. Only applies to the default aligner this config
  /// constructs — a caller-provided local_aligner manages its own caching.
  bool use_artifact_cache = false;

  /// Per-phase recorder handed to the default local aligner (not owned;
  /// must outlive the runs). Null = the pipeline allocates its own when it
  /// builds the default aligner, and reports it through PipelineStats.
  msa::AlignerPhaseStats* phase_stats = nullptr;

  /// Resource limits of a run (`--deadline` / `--max-memory`; 0 = none).
  /// The deadline is polled cooperatively at stage, chunk and merge
  /// boundaries: when it passes, the run stops at the next boundary with
  /// util::DeadlineExceeded, leaving a valid checkpoint `--resume` finishes
  /// bit-identically. A memory bound degrades gracefully instead of
  /// aborting: it shrinks the default aligner's full-traceback cell budget
  /// so large merges take the (output-identical) checkpointed-traceback
  /// path. Neither limit ever changes the alignment, so neither is part of
  /// the pipeline hash.
  util::BudgetLimits budget{};

  /// Optional cooperative cancellation token, polled at the same
  /// boundaries as the deadline (a cancel raises util::CancelledError with
  /// the same valid-checkpoint guarantee). The serve daemon's job-eviction
  /// hook.
  std::shared_ptr<util::CancelToken> cancel;
};

}  // namespace salign::core
