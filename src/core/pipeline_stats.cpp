#include "core/pipeline_stats.hpp"

#include <algorithm>
#include <sstream>

#include "align/engine/engine.hpp"
#include "util/table.hpp"

namespace salign::core {

double StageStats::max_seconds() const {
  double m = 0.0;
  for (double s : rank_seconds) m = std::max(m, s);
  return m;
}

double StageStats::max_wall_seconds() const {
  double m = 0.0;
  for (double s : rank_wall_seconds) m = std::max(m, s);
  return m;
}

double StageStats::comm_seconds(const par::ClusterCostModel& model,
                                int p) const {
  switch (pattern) {
    case CommPattern::None: return 0.0;
    case CommPattern::Gather: return model.gather(max_bytes_per_rank, p);
    case CommPattern::Broadcast: return model.broadcast(max_bytes_per_rank, p);
    case CommPattern::AllGather:
      // Every rank broadcasts its contribution: p concurrent flat trees,
      // charged as the slowest rank's outbound serialization.
      return model.broadcast(max_bytes_per_rank, p);
    case CommPattern::AllToAll: return model.all_to_all(max_bytes_per_rank, p);
  }
  return 0.0;
}

std::uint64_t PipelineStats::total_bytes() const {
  std::uint64_t t = 0;
  for (const auto& s : stages) t += s.total_bytes;
  return t;
}

double PipelineStats::total_compute_seconds() const {
  double t = 0.0;
  for (const auto& s : stages) t += s.max_seconds();
  return t;
}

double PipelineStats::modeled_seconds(const par::ClusterCostModel& model) const {
  double t = 0.0;
  for (const auto& s : stages)
    t += s.max_seconds() + s.comm_seconds(model, num_procs);
  return t;
}

double PipelineStats::load_factor() const {
  if (bucket_sizes.empty() || num_sequences == 0 || num_procs == 0) return 0.0;
  const std::size_t max_bucket =
      *std::max_element(bucket_sizes.begin(), bucket_sizes.end());
  const double share = static_cast<double>(num_sequences) /
                       static_cast<double>(num_procs);
  return share > 0.0 ? static_cast<double>(max_bucket) / share : 0.0;
}

std::string PipelineStats::summary() const {
  const par::ClusterCostModel model;
  util::Table table(
      {"stage", "max rank s", "max wall s", "comm s (model)", "bytes"});
  for (const auto& s : stages) {
    table.add_row({s.name, util::fmt("%.4f", s.max_seconds()),
                   util::fmt("%.4f", s.max_wall_seconds()),
                   util::fmt("%.6f", s.comm_seconds(model, num_procs)),
                   std::to_string(s.total_bytes)});
  }
  std::ostringstream os;
  os << "Sample-Align-D pipeline: N=" << num_sequences << " p=" << num_procs
     << " threads/rank=" << threads << '\n'
     << table.to_string() << "buckets:";
  for (std::size_t b : bucket_sizes) os << ' ' << b;
  os << "  (load factor " << util::fmt("%.2f", load_factor()) << ", bound 2.0)"
     << '\n'
     << "wall " << util::fmt("%.3f", wall_seconds) << " s; modeled cluster "
     << util::fmt("%.3f", modeled_seconds(model)) << " s; total "
     << total_bytes() << " bytes on the wire\n";
  if (!artifacts.empty()) {
    util::Table art({"stage artifact", "step", "bytes", "source", "s"});
    for (const auto& a : artifacts) {
      art.add_row({a.name, a.paper_step > 0 ? std::to_string(a.paper_step) : "-",
                   std::to_string(a.bytes), a.resumed ? "resumed" : "computed",
                   util::fmt("%.4f", a.seconds)});
    }
    os << art.to_string() << resumed_stages << " of " << artifacts.size()
       << " stages resumed from checkpoint\n";
  }
  if (!aligner_phases.empty()) {
    util::Table ph({"aligner phase", "wall s", "runs", "cache hits"});
    for (const auto& a : aligner_phases) {
      ph.add_row({a.name, util::fmt("%.4f", a.wall_seconds),
                  std::to_string(a.runs), std::to_string(a.cache_hits)});
    }
    os << ph.to_string();
  }
  if (!cache_note.empty()) os << cache_note << '\n';
  for (const std::string& note : quarantine_notes)
    os << "checkpoint: " << note << '\n';
  const align::engine::Backend backend = align::engine::default_backend();
  os << "alignment engine: " << align::engine::backend_name(backend) << " ("
     << align::engine::backend_lanes(backend) << " lanes)\n";
  return os.str();
}

}  // namespace salign::core
