#pragma once

#include <memory>
#include <span>

#include "core/config.hpp"
#include "core/pipeline_stats.hpp"
#include "msa/alignment.hpp"

namespace salign::core {

/// The Sample-Align-D distributed multiple sequence aligner
/// (Saeed & Khokhar, IPDPS 2008) — this library's primary contribution.
///
/// The pipeline follows the paper's algorithm statement step by step:
///
///   1.  deal the N input sequences into p blocks of w = N/p;
///   2.  per rank: k-mer rank of each local sequence against the local set;
///   3.  per rank: sort locally by rank;
///   4.  per rank: choose k sample sequences (k << N/p, default p-1);
///   5.  all-gather the k*p samples;
///   6.  per rank: re-rank every local sequence against the global sample
///       ("globalized k-mer rank", §2.3.1);
///   7.  per rank: re-sort by globalized rank;
///   8.  regular sampling: p-1 evenly spaced ranks per rank -> root;
///   9.  root: sort the p(p-1) candidates, pick p-1 pivots, broadcast;
///   10. all-to-all: every sequence moves to its rank-range bucket
///       (regular sampling bounds any bucket by 2N/p, §3);
///   11. per rank: align the bucket with the configured sequential MSA
///       system (MiniMuscle by default, as in the paper);
///   12. per rank: extract the local ancestor (consensus);
///   13. root: align the p local ancestors, derive the global ancestor,
///       broadcast it;
///   14. per rank: profile-profile align the local alignment against the
///       global-ancestor profile (the "tweak" of Fig. 2);
///   15. root: glue the tweaked bucket alignments on the shared
///       global-ancestor coordinate system and restore input row order.
///
/// The run executes as an explicit typed stage graph (core/stage): every
/// paper step above is a named stage whose output is a serializable,
/// content-hashed artifact. A stage's per-rank work runs concurrently (one
/// worker per simulated processor, drawn from the shared thread pool, as the
/// former in-process cluster runtime did), and rank-to-rank communication is
/// deterministic data movement at stage boundaries — serialized through the
/// same par:: codecs as before, so `PipelineStats` byte accounting is
/// unchanged and still reports both wall time and the modeled
/// dedicated-cluster makespan.
///
/// The stage graph is what makes runs resumable: with
/// SampleAlignDConfig::checkpoint.dir set, every completed stage is
/// persisted (artifact + manifest row keyed by a chain hash over the
/// pipeline identity), and a later run with checkpoint.resume loads
/// completed stages back instead of recomputing them. Because resumed
/// values decode through exactly the codec the fresh run encoded with, a
/// resumed run is bit-identical to a fresh one — for any thread count.
class SampleAlignD {
 public:
  explicit SampleAlignD(SampleAlignDConfig config = {});

  /// Aligns `seqs` (unique ids required) and returns a validated MSA whose
  /// rows degap to the inputs in input order. With num_procs == 1 the
  /// result is exactly the configured sequential aligner's output. Throws
  /// stage::StageAbort when the checkpoint fail_after test hook fires.
  [[nodiscard]] msa::Alignment align(std::span<const bio::Sequence> seqs,
                                     PipelineStats* stats = nullptr) const;

  [[nodiscard]] const SampleAlignDConfig& config() const { return config_; }

  /// The content hash identifying a run of this configuration over `seqs` —
  /// what checkpoint manifests are keyed by (`salign stages` recomputes it
  /// to verify a directory matches an input).
  [[nodiscard]] util::Digest128 pipeline_hash(
      std::span<const bio::Sequence> seqs) const;

 private:
  SampleAlignDConfig config_;
  /// Recorder behind the default aligner's phase stats when the caller did
  /// not supply one (SampleAlignDConfig::phase_stats).
  std::shared_ptr<msa::AlignerPhaseStats> owned_phase_stats_;
};

}  // namespace salign::core
