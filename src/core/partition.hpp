#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace salign::core {

/// Regular-sampling partition machinery (Shi & Schaeffer, JPDC 1992) — the
/// SampleSort-derived heart of Sample-Align-D. The pipeline keys sequences
/// by k-mer rank; a plain parallel sample sort over doubles (sample_sort.hpp)
/// reuses the same functions, which is how the tests validate the bucket
/// bound independently of the biology.

/// Chooses `count` evenly spaced samples from an ascending key list
/// (the paper's "choose p-1 evenly spaced samples from the locally sorted
/// list"). Returns fewer when keys.size() < count.
[[nodiscard]] std::vector<double> regular_samples(
    std::span<const double> sorted_keys, std::size_t count);

/// Selects the p-1 PSRS pivots from the gathered sample multiset: the
/// samples are sorted and elements at positions p/2 + i*p (i = 0..p-2) are
/// taken — the paper's "Y_{p/2}, Y_{p+p/2}, ..., Y_{(p-2)p+p/2}".
/// `samples` is consumed (sorted in place).
[[nodiscard]] std::vector<double> choose_pivots(std::vector<double> samples,
                                                int p);

/// Bucket of a key given ascending pivots: index of the first pivot >= key
/// (keys equal to a pivot land in the lower bucket, matching the paper's
/// "rank in the range of bucket i").
[[nodiscard]] std::size_t bucket_of(double key,
                                    std::span<const double> pivots);

/// Counts per bucket for a key set (diagnostics; the tests check the
/// regular-sampling guarantee that no bucket exceeds 2N/p for distinct
/// keys).
[[nodiscard]] std::vector<std::size_t> bucket_histogram(
    std::span<const double> keys, std::span<const double> pivots);

}  // namespace salign::core
