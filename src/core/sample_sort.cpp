#include "core/sample_sort.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "core/partition.hpp"
#include "par/cluster.hpp"

namespace salign::core {

std::vector<double> parallel_sample_sort(std::vector<double> data, int p) {
  if (p <= 0) throw std::invalid_argument("parallel_sample_sort: p must be > 0");
  if (p == 1 || data.size() <= static_cast<std::size_t>(p)) {
    std::sort(data.begin(), data.end());
    return data;
  }

  const std::size_t n = data.size();
  const std::size_t chunk = (n + static_cast<std::size_t>(p) - 1) /
                            static_cast<std::size_t>(p);
  std::vector<double> result;
  std::mutex result_mutex;
  std::vector<std::vector<double>> sorted_buckets(static_cast<std::size_t>(p));

  par::Cluster cluster(p);
  cluster.run([&](par::Communicator& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const std::size_t begin = std::min(n, r * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    std::vector<double> local(data.begin() + static_cast<long>(begin),
                              data.begin() + static_cast<long>(end));
    std::sort(local.begin(), local.end());

    // Phase 1: regular samples to the root; pivots back.
    const std::vector<double> samples =
        regular_samples(local, static_cast<std::size_t>(p - 1));
    par::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(samples.size()));
    for (double s : samples) w.f64(s);
    const std::vector<par::Bytes> gathered = comm.gather(0, w.take());

    par::Bytes pivot_msg;
    if (comm.rank() == 0) {
      std::vector<double> all;
      for (const auto& b : gathered) {
        par::ByteReader rd(b);
        const std::uint32_t k = rd.u32();
        for (std::uint32_t i = 0; i < k; ++i) all.push_back(rd.f64());
      }
      const std::vector<double> pivots = choose_pivots(std::move(all), p);
      par::ByteWriter pw;
      pw.u32(static_cast<std::uint32_t>(pivots.size()));
      for (double v : pivots) pw.f64(v);
      pivot_msg = pw.take();
    }
    pivot_msg = comm.broadcast(0, std::move(pivot_msg));
    std::vector<double> pivots;
    {
      par::ByteReader rd(pivot_msg);
      const std::uint32_t k = rd.u32();
      pivots.reserve(k);
      for (std::uint32_t i = 0; i < k; ++i) pivots.push_back(rd.f64());
    }

    // Phase 2: bucket exchange.
    std::vector<par::ByteWriter> writers(static_cast<std::size_t>(p));
    std::vector<std::uint32_t> counts(static_cast<std::size_t>(p), 0);
    for (double v : local) ++counts[bucket_of(v, pivots)];
    for (std::size_t d = 0; d < writers.size(); ++d) writers[d].u32(counts[d]);
    for (double v : local) writers[bucket_of(v, pivots)].f64(v);
    std::vector<par::Bytes> outgoing;
    outgoing.reserve(writers.size());
    for (auto& wr : writers) outgoing.push_back(wr.take());
    const std::vector<par::Bytes> incoming = comm.all_to_all(std::move(outgoing));

    std::vector<double> bucket;
    for (const auto& b : incoming) {
      par::ByteReader rd(b);
      const std::uint32_t k = rd.u32();
      for (std::uint32_t i = 0; i < k; ++i) bucket.push_back(rd.f64());
    }
    std::sort(bucket.begin(), bucket.end());

    {
      const std::lock_guard<std::mutex> lock(result_mutex);
      sorted_buckets[r] = std::move(bucket);
    }
  });

  result.reserve(n);
  for (const auto& b : sorted_buckets)
    result.insert(result.end(), b.begin(), b.end());
  return result;
}

}  // namespace salign::core
