#include "core/sample_align_d.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "bio/content_hash.hpp"
#include "core/partition.hpp"
#include "core/stage/artifacts.hpp"
#include "kmer/kmer_rank.hpp"
#include "msa/consensus.hpp"
#include "msa/muscle_like.hpp"
#include "msa/profile.hpp"
#include "msa/profile_align.hpp"
#include "par/cluster.hpp"
#include "util/artifact_cache.hpp"
#include "util/timer.hpp"

namespace salign::core {

namespace {

using align::EditOp;
using bio::Sequence;
using msa::Alignment;
using par::ByteReader;
using par::Bytes;
using par::ByteWriter;
using stage::RankedPartition;
using stage::RankedRef;

// ---- Stage catalogue ------------------------------------------------------

enum Stage : int {
  kLocalRank = 0,
  kLocalSort,
  kSampleSelect,
  kSampleExchange,
  kGlobalRank,
  kGlobalSort,
  kPivotGather,
  kPivotSelect,
  kPivotBcast,
  kBucketPartition,
  kRedistribute,
  kLocalAlign,
  kAncestorExtract,
  kAncestorGather,
  kAncestorAlign,
  kAncestorBcast,
  kTweak,
  kGlueGather,
  kGlue,
  kPolish,
  kNumStages,
};

struct StageInfo {
  const char* name;
  CommPattern pattern;
};

constexpr std::array<StageInfo, kNumStages> kStageInfo{{
    {"local k-mer rank", CommPattern::None},
    {"local sort", CommPattern::None},
    {"sample selection", CommPattern::None},
    {"sample exchange", CommPattern::AllGather},
    {"globalized k-mer rank", CommPattern::None},
    {"sort by global rank", CommPattern::None},
    {"pivot candidate gather", CommPattern::Gather},
    {"pivot selection (root)", CommPattern::None},
    {"pivot broadcast", CommPattern::Broadcast},
    {"bucket partition", CommPattern::None},
    {"sequence redistribution", CommPattern::AllToAll},
    {"local alignment", CommPattern::None},
    {"ancestor extraction", CommPattern::None},
    {"ancestor gather", CommPattern::Gather},
    {"global ancestor alignment (root)", CommPattern::None},
    {"global ancestor broadcast", CommPattern::Broadcast},
    {"ancestor profile tweak", CommPattern::None},
    {"glue gather", CommPattern::Gather},
    {"glue (root)", CommPattern::None},
    {"divergent polish (root)", CommPattern::None},
}};

/// Per-(stage, rank) accounting of the staged executor: CPU seconds of the
/// worker that ran the rank's segment (immune to host oversubscription, but
/// blind to shared-pool workers a threaded local aligner borrows), wall
/// seconds, and bytes the rank would send on a real cluster. Resumed stages
/// never execute their compute, so their slots stay zero — reflecting that
/// no work was done.
class RunStats {
 public:
  explicit RunStats(int p) {
    for (auto& v : cpu_) v.assign(static_cast<std::size_t>(p), 0.0);
    for (auto& v : wall_) v.assign(static_cast<std::size_t>(p), 0.0);
    for (auto& v : bytes_) v.assign(static_cast<std::size_t>(p), 0);
  }

  void add_time(int stage, int rank, double cpu, double wall) {
    cpu_[static_cast<std::size_t>(stage)][static_cast<std::size_t>(rank)] +=
        cpu;
    wall_[static_cast<std::size_t>(stage)][static_cast<std::size_t>(rank)] +=
        wall;
  }
  void add_bytes(int stage, int rank, std::uint64_t bytes) {
    bytes_[static_cast<std::size_t>(stage)][static_cast<std::size_t>(rank)] +=
        bytes;
  }

  /// Root-only segment (pivot selection, global-ancestor alignment, glue,
  /// polish) charged to rank 0.
  template <typename Fn>
  void timed_root(int stage, Fn&& fn) {
    util::ThreadCpuTimer cpu;
    util::Stopwatch watch;
    fn();
    add_time(stage, 0, cpu.seconds(), watch.seconds());
  }

  void export_to(PipelineStats& stats) const {
    for (int s = 0; s < kNumStages; ++s) {
      auto& st = stats.stages[static_cast<std::size_t>(s)];
      st.rank_seconds = cpu_[static_cast<std::size_t>(s)];
      st.rank_wall_seconds = wall_[static_cast<std::size_t>(s)];
      for (std::uint64_t b : bytes_[static_cast<std::size_t>(s)]) {
        st.total_bytes += b;
        st.max_bytes_per_rank = std::max(st.max_bytes_per_rank, b);
      }
    }
  }

 private:
  std::array<std::vector<double>, kNumStages> cpu_{};
  std::array<std::vector<double>, kNumStages> wall_{};
  std::array<std::vector<std::uint64_t>, kNumStages> bytes_{};
};

/// Runs fn(rank) for every rank concurrently — one deterministic chunk per
/// rank, the staged executor's stand-in for the former thread-per-rank
/// cluster — charging each rank's CPU and wall time to `stage`. fn must
/// write only to per-rank slots; chunk geometry never depends on
/// scheduling, so neither do outputs.
void for_each_rank(RunStats& rs, int stage, int p,
                   const std::function<void(int)>& fn) {
  par::parallel_for(
      static_cast<std::size_t>(p),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          util::ThreadCpuTimer cpu;
          util::Stopwatch watch;
          fn(static_cast<int>(r));
          rs.add_time(stage, static_cast<int>(r), cpu.seconds(),
                      watch.seconds());
        }
      },
      static_cast<unsigned>(p));
}

void sort_refs(std::vector<RankedRef>& refs) {
  std::sort(refs.begin(), refs.end(), [](const RankedRef& a,
                                         const RankedRef& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.index < b.index;  // deterministic tie-break
  });
}

Bytes encode_ops(std::span<const EditOp> ops) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(ops.size()));
  for (EditOp op : ops) w.u8(static_cast<std::uint8_t>(op));
  return w.take();
}

// ---- Glue on the global-ancestor coordinate system ------------------------

/// Places every bucket's (tweaked) alignment into a shared column space:
/// global-ancestor columns are common anchors; insertions relative to the
/// ancestor get per-position insertion blocks sized by the widest bucket.
Alignment glue_on_ancestor(std::span<const Alignment> locals,
                           std::span<const std::vector<EditOp>> paths,
                           std::size_t ga_len, bio::AlphabetKind kind) {
  const std::size_t p = locals.size();

  // ins[b][g]: columns bucket b inserts immediately before ancestor column
  // g (g == ga_len collects trailing insertions).
  std::vector<std::vector<std::size_t>> ins(
      p, std::vector<std::size_t>(ga_len + 1, 0));
  for (std::size_t b = 0; b < p; ++b) {
    std::size_t g = 0;
    for (EditOp op : paths[b]) {
      switch (op) {
        case EditOp::Match: ++g; break;
        case EditOp::GapInA: ++g; break;          // ancestor col, no local col
        case EditOp::GapInB: ++ins[b][g]; break;  // local-only column
      }
    }
  }
  std::vector<std::size_t> ins_max(ga_len + 1, 0);
  for (std::size_t g = 0; g <= ga_len; ++g)
    for (std::size_t b = 0; b < p; ++b)
      ins_max[g] = std::max(ins_max[g], ins[b][g]);

  // Column layout: [ins block 0] GA0 [ins block 1] GA1 ... [ins block G].
  std::vector<std::size_t> ga_pos(ga_len, 0);
  std::size_t total = 0;
  for (std::size_t g = 0; g < ga_len; ++g) {
    total += ins_max[g];
    ga_pos[g] = total;
    ++total;
  }
  total += ins_max[ga_len];

  std::vector<msa::AlignedRow> rows;
  for (std::size_t b = 0; b < p; ++b) {
    const Alignment& local = locals[b];
    if (local.empty()) continue;
    const std::size_t first_row = rows.size();
    for (std::size_t r = 0; r < local.num_rows(); ++r) {
      msa::AlignedRow row;
      row.id = local.row(r).id;
      row.cells.assign(total, Alignment::kGap);
      rows.push_back(std::move(row));
    }

    auto block_start = [&](std::size_t g) {
      return g < ga_len ? ga_pos[g] - ins_max[g] : total - ins_max[ga_len];
    };
    std::size_t lc = 0;
    std::size_t g = 0;
    std::size_t seen = 0;  // insertions placed before ancestor column g
    auto place = [&](std::size_t pos) {
      for (std::size_t r = 0; r < local.num_rows(); ++r)
        rows[first_row + r].cells[pos] = local.cell(r, lc);
      ++lc;
    };
    for (EditOp op : paths[b]) {
      switch (op) {
        case EditOp::Match:
          place(ga_pos[g]);
          ++g;
          seen = 0;
          break;
        case EditOp::GapInA:
          ++g;
          seen = 0;
          break;
        case EditOp::GapInB:
          place(block_start(g) + seen);
          ++seen;
          break;
      }
    }
  }

  Alignment glued(std::move(rows), kind);
  glued.strip_all_gap_columns();
  return glued;
}

/// Fallback glue without the ancestor constraint: block-diagonal
/// concatenation (each bucket keeps private columns). Used by the
/// ancestor-ablation configuration.
Alignment glue_block_diagonal(std::span<const Alignment> locals,
                              bio::AlphabetKind kind) {
  std::size_t total = 0;
  for (const Alignment& a : locals) total += a.num_cols();

  std::vector<msa::AlignedRow> rows;
  std::size_t offset = 0;
  for (const Alignment& local : locals) {
    for (std::size_t r = 0; r < local.num_rows(); ++r) {
      msa::AlignedRow row;
      row.id = local.row(r).id;
      row.cells.assign(total, Alignment::kGap);
      for (std::size_t c = 0; c < local.num_cols(); ++c)
        row.cells[offset + c] = local.cell(r, c);
      rows.push_back(std::move(row));
    }
    offset += local.num_cols();
  }
  return Alignment(std::move(rows), kind);
}

/// Restores input row order of a glued alignment.
Alignment reorder_rows(
    const Alignment& glued,
    const std::unordered_map<std::string, std::size_t>& pos_of_id) {
  std::vector<std::pair<std::size_t, std::size_t>> order;
  order.reserve(glued.num_rows());
  for (std::size_t row = 0; row < glued.num_rows(); ++row)
    order.emplace_back(pos_of_id.at(glued.row(row).id), row);
  std::sort(order.begin(), order.end());
  std::vector<std::size_t> rows;
  rows.reserve(order.size());
  for (const auto& [pos, row] : order) rows.push_back(row);
  return glued.subset(rows);
}

}  // namespace

SampleAlignD::SampleAlignD(SampleAlignDConfig config)
    : config_(std::move(config)) {
  if (config_.num_procs <= 0)
    throw std::invalid_argument("SampleAlignD: num_procs must be > 0");
  if (!config_.local_aligner) {
    if (config_.phase_stats == nullptr)
      owned_phase_stats_ = std::make_shared<msa::AlignerPhaseStats>();
    msa::MuscleOptions o;
    o.threads = config_.threads;
    o.use_artifact_cache = config_.use_artifact_cache;
    o.phase_stats = config_.phase_stats != nullptr ? config_.phase_stats
                                                   : owned_phase_stats_.get();
    // Graceful memory degradation: a --max-memory bound shrinks the
    // full-traceback budget (~3 bytes/cell of trace) so big merges switch
    // to the output-identical checkpointed-traceback path instead of the
    // process dying on an allocation. Not hashed — it never changes output.
    o.max_trace_cells = util::clamp_trace_cells(
        msa::detail::kDefaultProfileTraceCells,
        config_.budget.max_memory_bytes, 3);
    config_.local_aligner = std::make_shared<msa::MuscleAligner>(o);
  }
}

util::Digest128 SampleAlignD::pipeline_hash(
    std::span<const bio::Sequence> seqs) const {
  util::StableHash h;
  h.str("salign.pipeline");
  h.u32(stage::kCheckpointFormatVersion);
  h.u32(static_cast<std::uint32_t>(config_.num_procs));
  h.u32(static_cast<std::uint32_t>(config_.kmer.k));
  h.u8(config_.kmer.compressed ? 1 : 0);
  h.u32(static_cast<std::uint32_t>(config_.samples_per_proc));
  h.u8(config_.rank_mode == RankMode::Globalized ? 0 : 1);
  h.u8(config_.ancestor_refinement ? 1 : 0);
  h.u8(config_.polish_divergent ? 1 : 0);
  h.f64(config_.consensus.max_gap_fraction);
  h.f64(config_.polish.fraction);
  h.u64(config_.polish.max_rows);
  h.u32(static_cast<std::uint32_t>(config_.polish.passes));
  bio::hash_gaps(h, config_.polish.gaps);
  h.f64(static_cast<double>(config_.polish.min_gain));
  bio::hash_matrix(h, *config_.matrix);
  config_.local_aligner->hash_config(h);
  // threads is deliberately NOT hashed: any thread count is bit-identical,
  // so a checkpoint written with -t 8 must resume under -t 1 and vice versa.
  const util::Digest128 in = bio::sequence_set_hash(seqs);
  h.u64(in.hi);
  h.u64(in.lo);
  return h.digest128();
}

msa::Alignment SampleAlignD::align(std::span<const bio::Sequence> seqs,
                                   PipelineStats* stats) const {
  if (seqs.empty()) throw std::invalid_argument("SampleAlignD: no sequences");
  {
    std::unordered_map<std::string, int> ids;
    for (const auto& s : seqs) {
      if (s.empty())
        throw std::invalid_argument("SampleAlignD: empty sequence " + s.id());
      if (++ids[s.id()] > 1)
        throw std::invalid_argument("SampleAlignD: duplicate id " + s.id());
    }
  }

  const int p = config_.num_procs;
  const auto up = static_cast<std::size_t>(p);
  const auto n = seqs.size();
  util::Stopwatch wall;

  msa::AlignerPhaseStats* phase_rec = config_.phase_stats != nullptr
                                          ? config_.phase_stats
                                          : owned_phase_stats_.get();
  if (phase_rec != nullptr) phase_rec->reset();

  if (stats) {
    *stats = PipelineStats{};
    stats->num_procs = p;
    stats->threads = config_.threads;
    stats->num_sequences = n;
    stats->stages.resize(kNumStages);
    for (int s = 0; s < kNumStages; ++s) {
      stats->stages[static_cast<std::size_t>(s)].name =
          kStageInfo[static_cast<std::size_t>(s)].name;
      stats->stages[static_cast<std::size_t>(s)].pattern =
          kStageInfo[static_cast<std::size_t>(s)].pattern;
    }
  }

  // Deadline clock starts here; the budget is visible process-wide so
  // parallel_for chunks and guide-tree merges poll it without plumbing.
  util::Budget budget(config_.budget, config_.cancel);
  util::ScopedBudget scoped_budget(&budget);

  stage::StageContext ctx(config_.checkpoint, pipeline_hash(seqs));
  stage::StageRunner runner(ctx);

  // Checkpoint/cache provenance shared by both exits below.
  const auto finish_stats = [&](PipelineStats& st) {
    st.wall_seconds = wall.seconds();
    for (const auto& rec : runner.records()) {
      StageArtifactStats a;
      a.name = rec.name;
      a.paper_step = rec.paper_step;
      a.bytes = rec.bytes;
      a.resumed = rec.resumed;
      a.seconds = rec.seconds;
      st.artifacts.push_back(std::move(a));
    }
    st.resumed_stages = runner.resumed_stages();
    if (phase_rec != nullptr) {
      for (const auto& ph : phase_rec->snapshot()) {
        AlignerPhaseSummary s;
        s.name = ph.name;
        s.wall_seconds = ph.wall_seconds;
        s.runs = ph.runs;
        s.cache_hits = ph.cache_hits;
        st.aligner_phases.push_back(std::move(s));
      }
    }
    if (config_.use_artifact_cache) {
      const auto& cache = util::ArtifactCache::process_cache();
      st.cache_note = util::cache_summary(cache.stats(), cache.capacity());
    }
    st.quarantine_notes = ctx.quarantine_notes();
  };

  // p == 1: the pipeline degenerates to the sequential aligner (no
  // communication, no tweak — matching the paper's baseline column).
  if (p == 1) {
    // A single rank runs undisturbed on the host, so wall time *is* the
    // dedicated-node time (and avoids the coarse granularity some
    // containers give CLOCK_THREAD_CPUTIME_ID).
    double align_cpu = 0.0;
    Alignment aln = runner.run(
        "bucket-align", 11,
        [&] {
          util::Stopwatch cpu;
          Alignment a = config_.local_aligner->align(seqs);
          align_cpu = cpu.seconds();
          return a;
        },
        par::write_alignment, par::read_alignment);
    if (stats) {
      stats->stages[kLocalAlign].rank_seconds = {align_cpu};
      stats->stages[kLocalAlign].rank_wall_seconds = {align_cpu};
    }
    if (config_.polish_divergent && aln.num_rows() >= 3) {
      double polish_cpu = 0.0;
      aln = runner.run(
          "polish", 0,
          [&] {
            util::Stopwatch cpu;
            Alignment a = aln;
            (void)msa::polish_divergent_rows(a, *config_.matrix,
                                             config_.polish);
            polish_cpu = cpu.seconds();
            return a;
          },
          par::write_alignment, par::read_alignment);
      if (stats) {
        stats->stages[kPolish].rank_seconds = {polish_cpu};
        stats->stages[kPolish].rank_wall_seconds = {polish_cpu};
      }
    }
    if (stats) {
      stats->bucket_sizes = {n};
      finish_stats(*stats);
    }
    return aln;
  }

  // Index -> original position for the final row ordering.
  std::unordered_map<std::string, std::size_t> pos_of_id;
  for (std::size_t i = 0; i < n; ++i) pos_of_id.emplace(seqs[i].id(), i);

  const std::size_t samples_per_proc =
      config_.samples_per_proc > 0
          ? static_cast<std::size_t>(config_.samples_per_proc)
          : static_cast<std::size_t>(p - 1);

  RunStats rs(p);

  /// Materializes the sequences a partition references (the artifact form
  /// stores indices; the sequences always come back from the input span, so
  /// resumed and fresh runs read identical bytes).
  const auto seqs_of = [&](const std::vector<RankedRef>& part) {
    std::vector<Sequence> out;
    out.reserve(part.size());
    for (const RankedRef& ref : part) out.push_back(seqs[ref.index]);
    return out;
  };
  const auto seqs_of_indices = [&](const std::vector<std::uint64_t>& idx) {
    std::vector<Sequence> out;
    out.reserve(idx.size());
    for (std::uint64_t i : idx) out.push_back(seqs[i]);
    return out;
  };

  // Step 1: contiguous block distribution, w = N/p (last rank may be short;
  // the paper "divides the files into equal parts"). Deterministic dealing,
  // so it is not a checkpointed stage of its own.
  RankedPartition blocks(up);
  {
    const std::size_t chunk = (n + up - 1) / up;
    for (std::size_t r = 0; r < up; ++r) {
      const std::size_t begin = std::min(n, r * chunk);
      const std::size_t end = std::min(n, begin + chunk);
      blocks[r].reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i)
        blocks[r].push_back(RankedRef{i, 0.0});
    }
  }

  // Step 2: local k-mer rank (each sequence vs the local block).
  RankedPartition cur = runner.run(
      "local-rank", 2,
      [&] {
        RankedPartition out = blocks;
        for_each_rank(rs, kLocalRank, p, [&](int r) {
          auto& part = out[static_cast<std::size_t>(r)];
          const std::vector<double> ranks =
              kmer::centralized_ranks(seqs_of(part), config_.kmer);
          for (std::size_t i = 0; i < part.size(); ++i)
            part[i].rank = ranks[i];
        });
        return out;
      },
      stage::write_ranked_partition, stage::read_ranked_partition);

  // Step 3: local sort by rank.
  cur = runner.run(
      "local-sort", 3,
      [&] {
        RankedPartition out = cur;
        for_each_rank(rs, kLocalSort, p, [&](int r) {
          sort_refs(out[static_cast<std::size_t>(r)]);
        });
        return out;
      },
      stage::write_ranked_partition, stage::read_ranked_partition);

  // Steps 4-7 implement the globalized re-rank of §2.3.1; the predecessor
  // Sample-Align system [34] (RankMode::LocalOnly) skips them and pivots on
  // the local-block ranks — kept as the homogeneity-assumption ablation.
  if (config_.rank_mode == RankMode::Globalized) {
    // Step 4: choose k sample sequences, evenly spaced in rank order.
    const std::vector<std::vector<std::uint64_t>> sample_idx = runner.run(
        "sample-select", 4,
        [&] {
          std::vector<std::vector<std::uint64_t>> out(up);
          for_each_rank(rs, kSampleSelect, p, [&](int r) {
            const auto& items = cur[static_cast<std::size_t>(r)];
            const std::size_t k =
                std::min(samples_per_proc, items.empty() ? 0 : items.size());
            for (std::size_t i = 0; i < k; ++i) {
              const std::size_t pos =
                  std::min(items.size() - 1, (i + 1) * items.size() / (k + 1));
              out[static_cast<std::size_t>(r)].push_back(items[pos].index);
            }
          });
          return out;
        },
        stage::write_index_lists, stage::read_index_lists);

    // Step 5: exchange samples (k*p sequences known to every rank).
    const std::vector<std::uint64_t> sample_flat = runner.run(
        "sample-exchange", 5,
        [&] {
          // Send side: each rank serializes its contribution; the all-gather
          // charges own-payload × (p-1) per rank.
          std::vector<Bytes> msgs(up);
          for_each_rank(rs, kSampleExchange, p, [&](int r) {
            const auto ur = static_cast<std::size_t>(r);
            ByteWriter w;
            par::write_sequences(w, seqs_of_indices(sample_idx[ur]));
            msgs[ur] = w.take();
            rs.add_bytes(kSampleExchange, r, msgs[ur].size() * (up - 1));
          });
          // Receive side: every rank decodes all p payloads (identical
          // results; the work is charged per rank as on the cluster).
          for_each_rank(rs, kSampleExchange, p, [&](int) {
            std::vector<Sequence> all;
            for (const Bytes& b : msgs) {
              ByteReader rd(b);
              std::vector<Sequence> part = par::read_sequences(rd);
              all.insert(all.end(), std::make_move_iterator(part.begin()),
                         std::make_move_iterator(part.end()));
            }
          });
          std::vector<std::uint64_t> flat;
          for (const auto& list : sample_idx)
            flat.insert(flat.end(), list.begin(), list.end());
          return flat;
        },
        stage::write_indices, stage::read_indices);
    const std::vector<Sequence> samples = seqs_of_indices(sample_flat);

    // Step 6: globalized rank — every local sequence vs the global sample.
    cur = runner.run(
        "global-rank", 6,
        [&] {
          RankedPartition out = cur;
          for_each_rank(rs, kGlobalRank, p, [&](int r) {
            const std::vector<kmer::KmerProfile> ref =
                kmer::build_profiles(samples, config_.kmer);
            for (RankedRef& item : out[static_cast<std::size_t>(r)]) {
              const kmer::KmerProfile prof = kmer::KmerProfile::from_sequence(
                  seqs[item.index], config_.kmer);
              item.rank = kmer::rank_from_mean_similarity(
                  kmer::mean_similarity(prof, ref));
            }
          });
          return out;
        },
        stage::write_ranked_partition, stage::read_ranked_partition);

    // Step 7: re-sort by globalized rank.
    cur = runner.run(
        "global-sort", 7,
        [&] {
          RankedPartition out = cur;
          for_each_rank(rs, kGlobalSort, p, [&](int r) {
            sort_refs(out[static_cast<std::size_t>(r)]);
          });
          return out;
        },
        stage::write_ranked_partition, stage::read_ranked_partition);
  }

  // Steps 8-9: regular sampling of rank keys; root sorts the p(p-1)
  // candidates, picks p-1 pivots and broadcasts them.
  const std::vector<double> pivots = runner.run(
      "pivot-select", 8,
      [&] {
        std::vector<std::vector<double>> cands(up);
        for_each_rank(rs, kPivotGather, p, [&](int r) {
          const auto ur = static_cast<std::size_t>(r);
          std::vector<double> keys;
          keys.reserve(cur[ur].size());
          for (const RankedRef& item : cur[ur]) keys.push_back(item.rank);
          cands[ur] = regular_samples(keys, up - 1);
          ByteWriter w;
          w.u32(static_cast<std::uint32_t>(cands[ur].size()));
          for (double c : cands[ur]) w.f64(c);
          rs.add_bytes(kPivotGather, r, r == 0 ? 0 : w.size());
        });
        std::vector<double> chosen;
        Bytes pivot_msg;
        rs.timed_root(kPivotSelect, [&] {
          std::vector<double> all;
          for (const auto& c : cands) all.insert(all.end(), c.begin(), c.end());
          chosen = choose_pivots(std::move(all), p);
          ByteWriter pw;
          pw.u32(static_cast<std::uint32_t>(chosen.size()));
          for (double v : chosen) pw.f64(v);
          pivot_msg = pw.take();
          rs.add_bytes(kPivotBcast, 0, pivot_msg.size() * (up - 1));
        });
        // Receive side of the broadcast.
        for_each_rank(rs, kPivotBcast, p, [&](int) {
          ByteReader rd{std::span<const std::uint8_t>(pivot_msg)};
          const std::uint32_t k = rd.u32();
          std::vector<double> got;
          got.reserve(k);
          for (std::uint32_t i = 0; i < k; ++i) got.push_back(rd.f64());
        });
        return chosen;
      },
      stage::write_doubles, stage::read_doubles);

  // Step 10: bucket the local sequences and redistribute all-to-all.
  const RankedPartition buckets = runner.run(
      "redistribute", 10,
      [&] {
        // send[src][dst], in src-local order — the deterministic equivalent
        // of the personalized all-to-all's per-destination messages.
        std::vector<RankedPartition> send(up, RankedPartition(up));
        for_each_rank(rs, kBucketPartition, p, [&](int r) {
          const auto ur = static_cast<std::size_t>(r);
          std::vector<ByteWriter> writers(up);
          std::vector<std::uint32_t> counts(up, 0);
          for (const RankedRef& item : cur[ur])
            ++counts[bucket_of(item.rank, pivots)];
          for (std::size_t d = 0; d < up; ++d) writers[d].u32(counts[d]);
          for (const RankedRef& item : cur[ur]) {
            const std::size_t d = bucket_of(item.rank, pivots);
            writers[d].u64(item.index);
            writers[d].f64(item.rank);
            par::write_sequence(writers[d], seqs[item.index]);
            send[ur][d].push_back(item);
          }
          std::uint64_t sent = 0;
          for (std::size_t d = 0; d < up; ++d) {
            const Bytes b = writers[d].take();
            if (d != ur) sent += b.size();
          }
          rs.add_bytes(kRedistribute, r, sent);
        });
        RankedPartition out(up);
        for_each_rank(rs, kRedistribute, p, [&](int d) {
          const auto ud = static_cast<std::size_t>(d);
          for (std::size_t src = 0; src < up; ++src)
            out[ud].insert(out[ud].end(), send[src][ud].begin(),
                           send[src][ud].end());
          sort_refs(out[ud]);
        });
        return out;
      },
      stage::write_ranked_partition, stage::read_ranked_partition);

  // Step 11: sequential MSA on the bucket.
  const std::vector<Alignment> locals = runner.run(
      "bucket-align", 11,
      [&] {
        std::vector<Alignment> out(up);
        for_each_rank(rs, kLocalAlign, p, [&](int r) {
          const auto ur = static_cast<std::size_t>(r);
          const std::vector<Sequence> bucket_seqs = seqs_of(buckets[ur]);
          if (!bucket_seqs.empty())
            out[ur] = config_.local_aligner->align(bucket_seqs);
        });
        return out;
      },
      stage::write_alignments, stage::read_alignments);

  Alignment result;
  if (config_.ancestor_refinement) {
    // Steps 12-13: local ancestors; root aligns them into the global
    // ancestor and broadcasts it.
    const Sequence ga = runner.run(
        "ancestor", 12,
        [&] {
          std::vector<Sequence> ancestors(up);
          for_each_rank(rs, kAncestorExtract, p, [&](int r) {
            const auto ur = static_cast<std::size_t>(r);
            const Alignment& local_aln = locals[ur];
            ancestors[ur] =
                Sequence("ancestor_" + std::to_string(r),
                         std::vector<std::uint8_t>{},
                         local_aln.empty() ? bio::AlphabetKind::AminoAcid
                                           : local_aln.alphabet_kind());
            if (!local_aln.empty())
              ancestors[ur] = msa::consensus_sequence(
                  local_aln, "ancestor_" + std::to_string(r),
                  config_.consensus);
          });
          for_each_rank(rs, kAncestorGather, p, [&](int r) {
            ByteWriter w;
            par::write_sequence(w, ancestors[static_cast<std::size_t>(r)]);
            rs.add_bytes(kAncestorGather, r, r == 0 ? 0 : w.size());
          });
          Sequence global("global_ancestor", std::vector<std::uint8_t>{},
                          bio::AlphabetKind::AminoAcid);
          Bytes ga_msg;
          rs.timed_root(kAncestorAlign, [&] {
            std::vector<Sequence> present;
            for (const Sequence& a : ancestors)
              if (!a.empty()) present.push_back(a);
            if (present.size() == 1) {
              global = Sequence("global_ancestor",
                                std::vector<std::uint8_t>(
                                    present[0].codes().begin(),
                                    present[0].codes().end()),
                                present[0].alphabet_kind());
            } else if (!present.empty()) {
              const Alignment anc_aln = config_.local_aligner->align(present);
              global = msa::consensus_sequence(anc_aln, "global_ancestor",
                                               config_.consensus);
            }
            ByteWriter gw;
            par::write_sequence(gw, global);
            ga_msg = gw.take();
            rs.add_bytes(kAncestorBcast, 0, ga_msg.size() * (up - 1));
          });
          // Receive side of the broadcast.
          for_each_rank(rs, kAncestorBcast, p, [&](int) {
            ByteReader rd{std::span<const std::uint8_t>(ga_msg)};
            (void)par::read_sequence(rd);
          });
          return global;
        },
        par::write_sequence, par::read_sequence);

    // Step 14: tweak — profile-profile align the local alignment against
    // the global-ancestor profile.
    const std::vector<std::vector<EditOp>> paths = runner.run(
        "tweak", 14,
        [&] {
          std::vector<std::vector<EditOp>> out(up);
          for_each_rank(rs, kTweak, p, [&](int r) {
            const auto ur = static_cast<std::size_t>(r);
            const Alignment& local_aln = locals[ur];
            if (!local_aln.empty()) {
              const msa::Profile pl(local_aln, *config_.matrix);
              if (ga.empty()) {
                out[ur].assign(local_aln.num_cols(), EditOp::GapInB);
              } else {
                const msa::Profile pg(Alignment::from_sequence(ga),
                                      *config_.matrix);
                msa::ProfileAlignOptions po;
                po.gaps = config_.matrix->default_gaps();
                out[ur] = msa::align_profiles(pl, pg, po).ops;
              }
            } else if (!ga.empty()) {
              out[ur].assign(ga.size(), EditOp::GapInA);
            }
          });
          return out;
        },
        stage::write_paths, stage::read_paths);

    // Step 15: glue at the root on the shared ancestor coordinates.
    result = runner.run(
        "glue", 15,
        [&] {
          for_each_rank(rs, kGlueGather, p, [&](int r) {
            const auto ur = static_cast<std::size_t>(r);
            ByteWriter w;
            par::write_alignment(w, locals[ur]);
            const Bytes ops_bytes = encode_ops(paths[ur]);
            w.bytes(ops_bytes);
            rs.add_bytes(kGlueGather, r, r == 0 ? 0 : w.size());
          });
          Alignment reordered;
          rs.timed_root(kGlue, [&] {
            const Alignment glued = glue_on_ancestor(
                locals, paths, ga.size(), seqs[0].alphabet_kind());
            reordered = reorder_rows(glued, pos_of_id);
          });
          return reordered;
        },
        par::write_alignment, par::read_alignment);
  } else {
    // Ablation: no ancestor constraint — gather raw bucket alignments and
    // concatenate block-diagonally.
    result = runner.run(
        "glue", 15,
        [&] {
          for_each_rank(rs, kGlueGather, p, [&](int r) {
            ByteWriter w;
            par::write_alignment(w, locals[static_cast<std::size_t>(r)]);
            rs.add_bytes(kGlueGather, r, r == 0 ? 0 : w.size());
          });
          Alignment reordered;
          rs.timed_root(kGlue, [&] {
            const Alignment glued =
                glue_block_diagonal(locals, seqs[0].alphabet_kind());
            reordered = reorder_rows(glued, pos_of_id);
          });
          return reordered;
        },
        par::write_alignment, par::read_alignment);
  }

  // Future-work refinement (paper §5): root-side re-alignment of the most
  // divergent rows against the global profile.
  if (config_.polish_divergent && result.num_rows() >= 3) {
    result = runner.run(
        "polish", 0,
        [&] {
          Alignment a;
          rs.timed_root(kPolish, [&] {
            a = result;
            (void)msa::polish_divergent_rows(a, *config_.matrix,
                                             config_.polish);
          });
          return a;
        },
        par::write_alignment, par::read_alignment);
  }

  if (stats) {
    stats->bucket_sizes.resize(up);
    for (std::size_t d = 0; d < up; ++d)
      stats->bucket_sizes[d] = buckets[d].size();
    rs.export_to(*stats);
    finish_stats(*stats);
  }

  result.validate();
  return result;
}

}  // namespace salign::core
