#include "core/sample_align_d.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <unordered_map>

#include "core/partition.hpp"
#include "kmer/kmer_rank.hpp"
#include "msa/consensus.hpp"
#include "msa/muscle_like.hpp"
#include "msa/profile.hpp"
#include "msa/profile_align.hpp"
#include "par/cluster.hpp"
#include "util/timer.hpp"

namespace salign::core {

namespace {

using align::EditOp;
using bio::Sequence;
using msa::Alignment;
using par::ByteReader;
using par::Bytes;
using par::ByteWriter;
using par::Communicator;

// ---- Stage catalogue ------------------------------------------------------

enum Stage : int {
  kLocalRank = 0,
  kLocalSort,
  kSampleSelect,
  kSampleExchange,
  kGlobalRank,
  kGlobalSort,
  kPivotGather,
  kPivotSelect,
  kPivotBcast,
  kBucketPartition,
  kRedistribute,
  kLocalAlign,
  kAncestorExtract,
  kAncestorGather,
  kAncestorAlign,
  kAncestorBcast,
  kTweak,
  kGlueGather,
  kGlue,
  kPolish,
  kNumStages,
};

struct StageInfo {
  const char* name;
  CommPattern pattern;
};

constexpr std::array<StageInfo, kNumStages> kStageInfo{{
    {"local k-mer rank", CommPattern::None},
    {"local sort", CommPattern::None},
    {"sample selection", CommPattern::None},
    {"sample exchange", CommPattern::AllGather},
    {"globalized k-mer rank", CommPattern::None},
    {"sort by global rank", CommPattern::None},
    {"pivot candidate gather", CommPattern::Gather},
    {"pivot selection (root)", CommPattern::None},
    {"pivot broadcast", CommPattern::Broadcast},
    {"bucket partition", CommPattern::None},
    {"sequence redistribution", CommPattern::AllToAll},
    {"local alignment", CommPattern::None},
    {"ancestor extraction", CommPattern::None},
    {"ancestor gather", CommPattern::Gather},
    {"global ancestor alignment (root)", CommPattern::None},
    {"global ancestor broadcast", CommPattern::Broadcast},
    {"ancestor profile tweak", CommPattern::None},
    {"glue gather", CommPattern::Gather},
    {"glue (root)", CommPattern::None},
    {"divergent polish (root)", CommPattern::None},
}};

/// Per-rank stage accounting: CPU seconds of the rank's own thread (immune
/// to host oversubscription, but blind to shared-pool workers a threaded
/// stage borrows), wall seconds (what per-rank threading shrinks), and
/// bytes sent.
class StageRecorder {
 public:
  void begin(int stage) {
    flush();
    current_ = stage;
    timer_.restart();
    wall_.restart();
  }
  void end() { flush(); }
  void add_bytes(int stage, std::uint64_t bytes) {
    bytes_[static_cast<std::size_t>(stage)] += bytes;
  }

  [[nodiscard]] Bytes serialize(std::size_t bucket_size) const {
    ByteWriter w;
    w.u64(bucket_size);
    for (int s = 0; s < kNumStages; ++s) {
      w.f64(seconds_[static_cast<std::size_t>(s)]);
      w.f64(wall_seconds_[static_cast<std::size_t>(s)]);
      w.u64(bytes_[static_cast<std::size_t>(s)]);
    }
    return w.take();
  }

 private:
  void flush() {
    if (current_ >= 0) {
      seconds_[static_cast<std::size_t>(current_)] += timer_.restart();
      wall_seconds_[static_cast<std::size_t>(current_)] += wall_.restart();
    }
    current_ = -1;
  }
  std::array<double, kNumStages> seconds_{};
  std::array<double, kNumStages> wall_seconds_{};
  std::array<std::uint64_t, kNumStages> bytes_{};
  int current_ = -1;
  util::ThreadCpuTimer timer_;
  util::Stopwatch wall_;
};

// ---- Pipeline payloads ----------------------------------------------------

/// A sequence travelling through the pipeline with its original position
/// (for deterministic ties and final row order) and current rank key.
struct Item {
  std::uint64_t index = 0;
  double rank = 0.0;
  Sequence seq;
};

void write_item(ByteWriter& w, const Item& it) {
  w.u64(it.index);
  w.f64(it.rank);
  par::write_sequence(w, it.seq);
}

Item read_item(ByteReader& r) {
  Item it;
  it.index = r.u64();
  it.rank = r.f64();
  it.seq = par::read_sequence(r);
  return it;
}

void sort_items(std::vector<Item>& items) {
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.index < b.index;  // deterministic tie-break
  });
}

Bytes encode_ops(std::span<const EditOp> ops) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(ops.size()));
  for (EditOp op : ops) w.u8(static_cast<std::uint8_t>(op));
  return w.take();
}

std::vector<EditOp> decode_ops(ByteReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<EditOp> ops;
  ops.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    ops.push_back(static_cast<EditOp>(r.u8()));
  return ops;
}

// ---- Glue on the global-ancestor coordinate system ------------------------

/// Places every bucket's (tweaked) alignment into a shared column space:
/// global-ancestor columns are common anchors; insertions relative to the
/// ancestor get per-position insertion blocks sized by the widest bucket.
Alignment glue_on_ancestor(std::span<const Alignment> locals,
                           std::span<const std::vector<EditOp>> paths,
                           std::size_t ga_len, bio::AlphabetKind kind) {
  const std::size_t p = locals.size();

  // ins[b][g]: columns bucket b inserts immediately before ancestor column
  // g (g == ga_len collects trailing insertions).
  std::vector<std::vector<std::size_t>> ins(
      p, std::vector<std::size_t>(ga_len + 1, 0));
  for (std::size_t b = 0; b < p; ++b) {
    std::size_t g = 0;
    for (EditOp op : paths[b]) {
      switch (op) {
        case EditOp::Match: ++g; break;
        case EditOp::GapInA: ++g; break;          // ancestor col, no local col
        case EditOp::GapInB: ++ins[b][g]; break;  // local-only column
      }
    }
  }
  std::vector<std::size_t> ins_max(ga_len + 1, 0);
  for (std::size_t g = 0; g <= ga_len; ++g)
    for (std::size_t b = 0; b < p; ++b)
      ins_max[g] = std::max(ins_max[g], ins[b][g]);

  // Column layout: [ins block 0] GA0 [ins block 1] GA1 ... [ins block G].
  std::vector<std::size_t> ga_pos(ga_len, 0);
  std::size_t total = 0;
  for (std::size_t g = 0; g < ga_len; ++g) {
    total += ins_max[g];
    ga_pos[g] = total;
    ++total;
  }
  total += ins_max[ga_len];

  std::vector<msa::AlignedRow> rows;
  for (std::size_t b = 0; b < p; ++b) {
    const Alignment& local = locals[b];
    if (local.empty()) continue;
    const std::size_t first_row = rows.size();
    for (std::size_t r = 0; r < local.num_rows(); ++r) {
      msa::AlignedRow row;
      row.id = local.row(r).id;
      row.cells.assign(total, Alignment::kGap);
      rows.push_back(std::move(row));
    }

    auto block_start = [&](std::size_t g) {
      return g < ga_len ? ga_pos[g] - ins_max[g] : total - ins_max[ga_len];
    };
    std::size_t lc = 0;
    std::size_t g = 0;
    std::size_t seen = 0;  // insertions placed before ancestor column g
    auto place = [&](std::size_t pos) {
      for (std::size_t r = 0; r < local.num_rows(); ++r)
        rows[first_row + r].cells[pos] = local.cell(r, lc);
      ++lc;
    };
    for (EditOp op : paths[b]) {
      switch (op) {
        case EditOp::Match:
          place(ga_pos[g]);
          ++g;
          seen = 0;
          break;
        case EditOp::GapInA:
          ++g;
          seen = 0;
          break;
        case EditOp::GapInB:
          place(block_start(g) + seen);
          ++seen;
          break;
      }
    }
  }

  Alignment glued(std::move(rows), kind);
  glued.strip_all_gap_columns();
  return glued;
}

/// Fallback glue without the ancestor constraint: block-diagonal
/// concatenation (each bucket keeps private columns). Used by the
/// ancestor-ablation configuration.
Alignment glue_block_diagonal(std::span<const Alignment> locals,
                              bio::AlphabetKind kind) {
  std::size_t total = 0;
  for (const Alignment& a : locals) total += a.num_cols();

  std::vector<msa::AlignedRow> rows;
  std::size_t offset = 0;
  for (const Alignment& local : locals) {
    for (std::size_t r = 0; r < local.num_rows(); ++r) {
      msa::AlignedRow row;
      row.id = local.row(r).id;
      row.cells.assign(total, Alignment::kGap);
      for (std::size_t c = 0; c < local.num_cols(); ++c)
        row.cells[offset + c] = local.cell(r, c);
      rows.push_back(std::move(row));
    }
    offset += local.num_cols();
  }
  return Alignment(std::move(rows), kind);
}

}  // namespace

SampleAlignD::SampleAlignD(SampleAlignDConfig config)
    : config_(std::move(config)) {
  if (config_.num_procs <= 0)
    throw std::invalid_argument("SampleAlignD: num_procs must be > 0");
  if (!config_.local_aligner)
    config_.local_aligner = msa::make_default_aligner(config_.threads);
}

msa::Alignment SampleAlignD::align(std::span<const bio::Sequence> seqs,
                                   PipelineStats* stats) const {
  if (seqs.empty()) throw std::invalid_argument("SampleAlignD: no sequences");
  {
    std::unordered_map<std::string, int> ids;
    for (const auto& s : seqs) {
      if (s.empty())
        throw std::invalid_argument("SampleAlignD: empty sequence " + s.id());
      if (++ids[s.id()] > 1)
        throw std::invalid_argument("SampleAlignD: duplicate id " + s.id());
    }
  }

  const int p = config_.num_procs;
  const auto n = seqs.size();
  util::Stopwatch wall;

  if (stats) {
    *stats = PipelineStats{};
    stats->num_procs = p;
    stats->threads = config_.threads;
    stats->num_sequences = n;
    stats->stages.resize(kNumStages);
    for (int s = 0; s < kNumStages; ++s) {
      stats->stages[static_cast<std::size_t>(s)].name =
          kStageInfo[static_cast<std::size_t>(s)].name;
      stats->stages[static_cast<std::size_t>(s)].pattern =
          kStageInfo[static_cast<std::size_t>(s)].pattern;
    }
  }

  // p == 1: the pipeline degenerates to the sequential aligner (no
  // communication, no tweak — matching the paper's baseline column).
  if (p == 1) {
    // A single rank runs undisturbed on the host, so wall time *is* the
    // dedicated-node time (and avoids the coarse granularity some
    // containers give CLOCK_THREAD_CPUTIME_ID).
    util::Stopwatch cpu;
    Alignment aln = config_.local_aligner->align(seqs);
    if (stats) {
      stats->stages[kLocalAlign].rank_seconds = {cpu.seconds()};
      stats->stages[kLocalAlign].rank_wall_seconds = {cpu.seconds()};
    }
    if (config_.polish_divergent && aln.num_rows() >= 3) {
      util::Stopwatch polish_cpu;
      (void)msa::polish_divergent_rows(aln, *config_.matrix, config_.polish);
      if (stats) {
        stats->stages[kPolish].rank_seconds = {polish_cpu.seconds()};
        stats->stages[kPolish].rank_wall_seconds = {polish_cpu.seconds()};
      }
    }
    if (stats) {
      stats->bucket_sizes = {n};
      stats->wall_seconds = wall.seconds();
    }
    return aln;
  }

  // Index -> original position for the final row ordering.
  std::unordered_map<std::string, std::size_t> pos_of_id;
  for (std::size_t i = 0; i < n; ++i) pos_of_id.emplace(seqs[i].id(), i);

  const std::size_t samples_per_proc =
      config_.samples_per_proc > 0
          ? static_cast<std::size_t>(config_.samples_per_proc)
          : static_cast<std::size_t>(p - 1);

  Alignment result;
  std::vector<Bytes> stat_blobs;

  par::Cluster cluster(p);
  cluster.run([&](Communicator& comm) {
    const int r = comm.rank();
    const auto ur = static_cast<std::size_t>(r);
    StageRecorder rec;

    // Step 1: contiguous block distribution, w = N/p (last rank may be
    // short; the paper "divides the files into equal parts").
    const std::size_t chunk =
        (n + static_cast<std::size_t>(p) - 1) / static_cast<std::size_t>(p);
    const std::size_t begin = std::min(n, ur * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    std::vector<Item> items;
    items.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i)
      items.push_back(Item{i, 0.0, seqs[i]});

    // Step 2: local k-mer rank (each sequence vs the local block).
    rec.begin(kLocalRank);
    {
      std::vector<Sequence> local_seqs;
      local_seqs.reserve(items.size());
      for (const auto& it : items) local_seqs.push_back(it.seq);
      const std::vector<double> ranks =
          kmer::centralized_ranks(local_seqs, config_.kmer);
      for (std::size_t i = 0; i < items.size(); ++i) items[i].rank = ranks[i];
    }

    // Step 3: local sort by rank.
    rec.begin(kLocalSort);
    sort_items(items);

    // Steps 4-7 implement the globalized re-rank of §2.3.1; the predecessor
    // Sample-Align system [34] (RankMode::LocalOnly) skips them and pivots
    // on the local-block ranks — kept as the homogeneity-assumption
    // ablation.
    if (config_.rank_mode == RankMode::Globalized) {
      // Step 4: choose k sample sequences, evenly spaced in rank order.
      rec.begin(kSampleSelect);
      std::vector<Sequence> my_samples;
      {
        const std::size_t k = std::min(samples_per_proc,
                                       items.empty() ? 0 : items.size());
        for (std::size_t i = 0; i < k; ++i) {
          const std::size_t pos =
              std::min(items.size() - 1, (i + 1) * items.size() / (k + 1));
          my_samples.push_back(items[pos].seq);
        }
      }

      // Step 5: exchange samples (k*p sequences known to every rank).
      rec.begin(kSampleExchange);
      std::vector<Sequence> samples;
      {
        ByteWriter w;
        par::write_sequences(w, my_samples);
        Bytes payload = w.take();
        rec.add_bytes(kSampleExchange,
                      payload.size() * static_cast<std::size_t>(p - 1));
        const std::vector<Bytes> all = comm.all_gather(std::move(payload));
        for (const Bytes& b : all) {
          ByteReader rd(b);
          std::vector<Sequence> part = par::read_sequences(rd);
          samples.insert(samples.end(),
                         std::make_move_iterator(part.begin()),
                         std::make_move_iterator(part.end()));
        }
      }

      // Step 6: globalized rank — every local sequence vs the global
      // sample.
      rec.begin(kGlobalRank);
      {
        const std::vector<kmer::KmerProfile> ref =
            kmer::build_profiles(samples, config_.kmer);
        for (auto& it : items) {
          const kmer::KmerProfile prof =
              kmer::KmerProfile::from_sequence(it.seq, config_.kmer);
          it.rank = kmer::rank_from_mean_similarity(
              kmer::mean_similarity(prof, ref));
        }
      }

      // Step 7: re-sort by globalized rank.
      rec.begin(kGlobalSort);
      sort_items(items);
    }

    // Step 8: regular sampling of rank keys to the root.
    rec.begin(kPivotGather);
    std::vector<double> pivots;
    Bytes pivot_msg;
    {
      std::vector<double> keys;
      keys.reserve(items.size());
      for (const auto& it : items) keys.push_back(it.rank);
      const std::vector<double> cand =
          regular_samples(keys, static_cast<std::size_t>(p - 1));
      ByteWriter w;
      w.u32(static_cast<std::uint32_t>(cand.size()));
      for (double c : cand) w.f64(c);
      Bytes payload = w.take();
      rec.add_bytes(kPivotGather, r == 0 ? 0 : payload.size());
      const std::vector<Bytes> gathered = comm.gather(0, std::move(payload));

      // Step 9: root sorts the p(p-1) candidates and picks p-1 pivots.
      if (r == 0) {
        rec.begin(kPivotSelect);
        std::vector<double> all;
        for (const Bytes& b : gathered) {
          ByteReader rd(b);
          const std::uint32_t k = rd.u32();
          for (std::uint32_t i = 0; i < k; ++i) all.push_back(rd.f64());
        }
        pivots = choose_pivots(std::move(all), p);
        ByteWriter pw;
        pw.u32(static_cast<std::uint32_t>(pivots.size()));
        for (double v : pivots) pw.f64(v);
        pivot_msg = pw.take();
        rec.add_bytes(kPivotBcast,
                      pivot_msg.size() * static_cast<std::size_t>(p - 1));
      }
    }
    rec.begin(kPivotBcast);
    pivot_msg = comm.broadcast(0, std::move(pivot_msg));
    {
      ByteReader rd(pivot_msg);
      const std::uint32_t k = rd.u32();
      pivots.clear();
      pivots.reserve(k);
      for (std::uint32_t i = 0; i < k; ++i) pivots.push_back(rd.f64());
    }

    // Step 10: bucket the local sequences and redistribute all-to-all.
    rec.begin(kBucketPartition);
    std::vector<ByteWriter> writers(static_cast<std::size_t>(p));
    std::vector<std::uint32_t> counts(static_cast<std::size_t>(p), 0);
    for (const auto& it : items) ++counts[bucket_of(it.rank, pivots)];
    for (std::size_t d = 0; d < writers.size(); ++d) writers[d].u32(counts[d]);
    for (const auto& it : items)
      write_item(writers[bucket_of(it.rank, pivots)], it);
    items.clear();
    items.shrink_to_fit();

    rec.begin(kRedistribute);
    std::vector<Item> bucket;
    {
      std::vector<Bytes> outgoing;
      outgoing.reserve(writers.size());
      std::uint64_t sent = 0;
      for (std::size_t d = 0; d < writers.size(); ++d) {
        Bytes b = writers[d].take();
        if (d != ur) sent += b.size();
        outgoing.push_back(std::move(b));
      }
      rec.add_bytes(kRedistribute, sent);
      const std::vector<Bytes> incoming = comm.all_to_all(std::move(outgoing));
      for (const Bytes& b : incoming) {
        ByteReader rd(b);
        const std::uint32_t k = rd.u32();
        for (std::uint32_t i = 0; i < k; ++i) bucket.push_back(read_item(rd));
      }
      sort_items(bucket);
    }

    // Step 11: sequential MSA on the bucket.
    rec.begin(kLocalAlign);
    Alignment local_aln;
    {
      std::vector<Sequence> bucket_seqs;
      bucket_seqs.reserve(bucket.size());
      for (const auto& it : bucket) bucket_seqs.push_back(it.seq);
      if (!bucket_seqs.empty())
        local_aln = config_.local_aligner->align(bucket_seqs);
    }

    if (config_.ancestor_refinement) {
      // Step 12: local ancestor.
      rec.begin(kAncestorExtract);
      Sequence ancestor("ancestor_" + std::to_string(r),
                        std::vector<std::uint8_t>{},
                        local_aln.empty() ? bio::AlphabetKind::AminoAcid
                                          : local_aln.alphabet_kind());
      if (!local_aln.empty())
        ancestor = msa::consensus_sequence(
            local_aln, "ancestor_" + std::to_string(r), config_.consensus);

      // Step 13: gather ancestors; root aligns them into the global
      // ancestor and broadcasts it.
      rec.begin(kAncestorGather);
      Bytes ga_msg;
      {
        ByteWriter w;
        par::write_sequence(w, ancestor);
        Bytes payload = w.take();
        rec.add_bytes(kAncestorGather, r == 0 ? 0 : payload.size());
        const std::vector<Bytes> gathered = comm.gather(0, std::move(payload));
        if (r == 0) {
          rec.begin(kAncestorAlign);
          std::vector<Sequence> ancestors;
          for (const Bytes& b : gathered) {
            ByteReader rd(b);
            Sequence a = par::read_sequence(rd);
            if (!a.empty()) ancestors.push_back(std::move(a));
          }
          Sequence ga("global_ancestor", std::vector<std::uint8_t>{},
                      bio::AlphabetKind::AminoAcid);
          if (ancestors.size() == 1) {
            ga = Sequence("global_ancestor",
                          std::vector<std::uint8_t>(
                              ancestors[0].codes().begin(),
                              ancestors[0].codes().end()),
                          ancestors[0].alphabet_kind());
          } else if (!ancestors.empty()) {
            const Alignment anc_aln = config_.local_aligner->align(ancestors);
            ga = msa::consensus_sequence(anc_aln, "global_ancestor",
                                         config_.consensus);
          }
          ByteWriter gw;
          par::write_sequence(gw, ga);
          ga_msg = gw.take();
          rec.add_bytes(kAncestorBcast,
                        ga_msg.size() * static_cast<std::size_t>(p - 1));
        }
      }
      rec.begin(kAncestorBcast);
      ga_msg = comm.broadcast(0, std::move(ga_msg));
      Sequence ga = [&] {
        ByteReader rd(ga_msg);
        return par::read_sequence(rd);
      }();

      // Step 14: tweak — profile-profile align the local alignment against
      // the global-ancestor profile.
      rec.begin(kTweak);
      std::vector<EditOp> path;
      if (!local_aln.empty()) {
        const msa::Profile pl(local_aln, *config_.matrix);
        if (ga.empty()) {
          path.assign(local_aln.num_cols(), EditOp::GapInB);
        } else {
          const msa::Profile pg(Alignment::from_sequence(ga), *config_.matrix);
          msa::ProfileAlignOptions po;
          po.gaps = config_.matrix->default_gaps();
          path = msa::align_profiles(pl, pg, po).ops;
        }
      } else if (!ga.empty()) {
        path.assign(ga.size(), EditOp::GapInA);
      }

      // Step 15: glue at the root.
      rec.begin(kGlueGather);
      {
        ByteWriter w;
        par::write_alignment(w, local_aln);
        const Bytes ops_bytes = encode_ops(path);
        w.bytes(ops_bytes);
        Bytes payload = w.take();
        rec.add_bytes(kGlueGather, r == 0 ? 0 : payload.size());
        const std::vector<Bytes> gathered = comm.gather(0, std::move(payload));
        if (r == 0) {
          rec.begin(kGlue);
          std::vector<Alignment> locals;
          std::vector<std::vector<EditOp>> paths;
          for (const Bytes& b : gathered) {
            ByteReader rd(b);
            locals.push_back(par::read_alignment(rd));
            const Bytes ob = rd.bytes();
            ByteReader ord(ob);
            paths.push_back(decode_ops(ord));
          }
          Alignment glued = glue_on_ancestor(locals, paths, ga.size(),
                                             seqs[0].alphabet_kind());
          // Restore input order.
          std::vector<std::pair<std::size_t, std::size_t>> order;
          order.reserve(glued.num_rows());
          for (std::size_t row = 0; row < glued.num_rows(); ++row)
            order.emplace_back(pos_of_id.at(glued.row(row).id), row);
          std::sort(order.begin(), order.end());
          std::vector<std::size_t> rows;
          rows.reserve(order.size());
          for (const auto& [pos, row] : order) rows.push_back(row);
          result = glued.subset(rows);
        }
      }
    } else {
      // Ablation: no ancestor constraint — gather raw bucket alignments and
      // concatenate block-diagonally.
      rec.begin(kGlueGather);
      ByteWriter w;
      par::write_alignment(w, local_aln);
      Bytes payload = w.take();
      rec.add_bytes(kGlueGather, r == 0 ? 0 : payload.size());
      const std::vector<Bytes> gathered = comm.gather(0, std::move(payload));
      if (r == 0) {
        rec.begin(kGlue);
        std::vector<Alignment> locals;
        for (const Bytes& b : gathered) {
          ByteReader rd(b);
          locals.push_back(par::read_alignment(rd));
        }
        Alignment glued =
            glue_block_diagonal(locals, seqs[0].alphabet_kind());
        std::vector<std::pair<std::size_t, std::size_t>> order;
        for (std::size_t row = 0; row < glued.num_rows(); ++row)
          order.emplace_back(pos_of_id.at(glued.row(row).id), row);
        std::sort(order.begin(), order.end());
        std::vector<std::size_t> rows;
        rows.reserve(order.size());
        for (const auto& [pos, row] : order) rows.push_back(row);
        result = glued.subset(rows);
      }
    }

    // Future-work refinement (paper §5): root-side re-alignment of the most
    // divergent rows against the global profile.
    if (r == 0 && config_.polish_divergent && result.num_rows() >= 3) {
      rec.begin(kPolish);
      (void)msa::polish_divergent_rows(result, *config_.matrix,
                                       config_.polish);
    }
    rec.end();

    // Stats: every rank reports its stage record and bucket size.
    const std::vector<Bytes> blobs =
        comm.gather(0, rec.serialize(bucket.size()));
    if (r == 0) stat_blobs = blobs;
  });

  if (stats) {
    stats->bucket_sizes.resize(static_cast<std::size_t>(p));
    for (int s = 0; s < kNumStages; ++s) {
      stats->stages[static_cast<std::size_t>(s)].rank_seconds.assign(
          static_cast<std::size_t>(p), 0.0);
      stats->stages[static_cast<std::size_t>(s)].rank_wall_seconds.assign(
          static_cast<std::size_t>(p), 0.0);
    }
    for (std::size_t rank = 0; rank < stat_blobs.size(); ++rank) {
      ByteReader rd(stat_blobs[rank]);
      stats->bucket_sizes[rank] = rd.u64();
      for (int s = 0; s < kNumStages; ++s) {
        auto& stage = stats->stages[static_cast<std::size_t>(s)];
        stage.rank_seconds[rank] = rd.f64();
        stage.rank_wall_seconds[rank] = rd.f64();
        const std::uint64_t bytes = rd.u64();
        stage.total_bytes += bytes;
        stage.max_bytes_per_rank = std::max(stage.max_bytes_per_rank, bytes);
      }
    }
    stats->wall_seconds = wall.seconds();
  }

  result.validate();
  return result;
}

}  // namespace salign::core
