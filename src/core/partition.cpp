#include "core/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace salign::core {

std::vector<double> regular_samples(std::span<const double> sorted_keys,
                                    std::size_t count) {
  if (!std::is_sorted(sorted_keys.begin(), sorted_keys.end()))
    throw std::invalid_argument("regular_samples: keys not sorted");
  std::vector<double> out;
  if (sorted_keys.empty() || count == 0) return out;
  const std::size_t n = sorted_keys.size();
  const std::size_t take = std::min(count, n);
  out.reserve(take);
  // Evenly spaced: positions (i+1) * n / (count+1), the PSRS convention
  // that leaves room on both flanks.
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t pos =
        std::min(n - 1, (i + 1) * n / (take + 1));
    out.push_back(sorted_keys[pos]);
  }
  return out;
}

std::vector<double> choose_pivots(std::vector<double> samples, int p) {
  if (p <= 0) throw std::invalid_argument("choose_pivots: p must be > 0");
  std::sort(samples.begin(), samples.end());
  std::vector<double> pivots;
  if (p == 1 || samples.empty()) return pivots;
  pivots.reserve(static_cast<std::size_t>(p - 1));
  const auto up = static_cast<std::size_t>(p);
  for (std::size_t i = 0; i + 2 <= up; ++i) {
    // Position p/2 + i*p into the sorted sample multiset, clamped for
    // degenerate (short) sample lists.
    const std::size_t pos = std::min(samples.size() - 1, up / 2 + i * up);
    pivots.push_back(samples[pos]);
  }
  return pivots;
}

std::size_t bucket_of(double key, std::span<const double> pivots) {
  // First pivot >= key; keys above every pivot land in the last bucket.
  const auto it = std::lower_bound(pivots.begin(), pivots.end(), key);
  return static_cast<std::size_t>(it - pivots.begin());
}

std::vector<std::size_t> bucket_histogram(std::span<const double> keys,
                                          std::span<const double> pivots) {
  std::vector<std::size_t> counts(pivots.size() + 1, 0);
  for (double k : keys) ++counts[bucket_of(k, pivots)];
  return counts;
}

}  // namespace salign::core
