#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/pairwise.hpp"
#include "msa/alignment.hpp"
#include "par/serialize.hpp"

namespace salign::core::stage {

/// Typed payloads of the Sample-Align-D stage graph and their stable binary
/// codecs. Rank/sort/partition stages store compact (sequence index, rank
/// key) references — the sequences themselves are re-read from the input on
/// resume, which both shrinks checkpoints and guarantees a resumed run sees
/// exactly the bytes a fresh one would. Alignment-bearing stages store the
/// full alignments (they are the expensive artifacts resume exists to skip).

/// A sequence travelling through the pipeline: original input position (for
/// deterministic ties and final row order) and current rank key.
struct RankedRef {
  std::uint64_t index = 0;
  double rank = 0.0;

  friend bool operator==(const RankedRef&, const RankedRef&) = default;
};

/// Per-rank (or per-bucket) partition of the input, in pipeline order.
using RankedPartition = std::vector<std::vector<RankedRef>>;

void write_ranked_partition(par::ByteWriter& w, const RankedPartition& parts);
[[nodiscard]] RankedPartition read_ranked_partition(par::ByteReader& r);

void write_index_lists(par::ByteWriter& w,
                       const std::vector<std::vector<std::uint64_t>>& lists);
[[nodiscard]] std::vector<std::vector<std::uint64_t>> read_index_lists(
    par::ByteReader& r);

void write_indices(par::ByteWriter& w, const std::vector<std::uint64_t>& v);
[[nodiscard]] std::vector<std::uint64_t> read_indices(par::ByteReader& r);

void write_doubles(par::ByteWriter& w, const std::vector<double>& v);
[[nodiscard]] std::vector<double> read_doubles(par::ByteReader& r);

void write_alignments(par::ByteWriter& w,
                      std::span<const msa::Alignment> alns);
[[nodiscard]] std::vector<msa::Alignment> read_alignments(par::ByteReader& r);

void write_paths(par::ByteWriter& w,
                 const std::vector<std::vector<align::EditOp>>& paths);
[[nodiscard]] std::vector<std::vector<align::EditOp>> read_paths(
    par::ByteReader& r);

}  // namespace salign::core::stage
