#pragma once

#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "par/serialize.hpp"
#include "util/budget.hpp"
#include "util/stable_hash.hpp"
#include "util/timer.hpp"

namespace salign::core::stage {

/// Bumped whenever any stage artifact encoding (or the stage sequence
/// itself) changes shape; folded into every pipeline hash so stale on-disk
/// checkpoints from an older binary are ignored rather than misread.
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// Externalized-state knobs of one pipeline run (SampleAlignDConfig carries
/// one; `salign align --checkpoint-dir/--resume` sets it from the CLI).
struct CheckpointOptions {
  /// Directory for stage artifacts + manifest; empty disables checkpointing.
  /// Created (recursively) on first use.
  std::string dir;
  /// Load completed stages from `dir` instead of recomputing them. Stages
  /// whose identity (pipeline hash + stage chain) or payload digest does not
  /// match are recomputed — resuming is always safe, never wrong.
  bool resume = false;
  /// Test hook for kill/resume suites: abort the run (StageAbort) right
  /// after the N-th artifact (0-based) has been durably written, simulating
  /// a crash at that stage boundary. -1 = never.
  int fail_after = -1;
};

/// Thrown by the CheckpointOptions::fail_after test hook after the artifact
/// it names has been persisted — the checkpoint directory is left exactly as
/// a process kill at that boundary would.
class StageAbort : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Manifest row of one completed stage.
struct ArtifactRecord {
  int index = 0;                 ///< position in the stage sequence
  std::string name;              ///< stable stage name ("local-rank", ...)
  int paper_step = 0;            ///< first of the paper's steps 1-15 covered
                                 ///< (0 for extensions like polish)
  util::Digest128 chain;         ///< identity: H(prev chain, name, step)
  util::Digest128 payload;       ///< content digest of the serialized output
  std::uint64_t bytes = 0;       ///< serialized artifact size
  std::string file;              ///< artifact filename relative to dir
  bool resumed = false;          ///< loaded from checkpoint in this run
  double seconds = 0.0;          ///< wall time to compute (or load) it
};

/// A named, serialized stage output: manifest row + payload bytes.
struct StageArtifact {
  ArtifactRecord record;
  par::Bytes payload;
};

/// Identity and externalized-state I/O of one pipeline run.
///
/// The pipeline hash is H(code-version salt, full config, input sequence
/// set); every stage's chain hash extends it, so artifacts can only ever be
/// resumed into a run with the same inputs, same configuration and same
/// stage sequence — where determinism guarantees the recomputed value would
/// be bit-identical to the stored one.
class StageContext {
 public:
  StageContext(CheckpointOptions options, util::Digest128 pipeline_hash);

  [[nodiscard]] const CheckpointOptions& options() const { return options_; }
  [[nodiscard]] const util::Digest128& pipeline_hash() const {
    return pipeline_hash_;
  }
  [[nodiscard]] bool checkpointing() const { return !options_.dir.empty(); }

  /// Serialized payload for (chain) if resuming and a digest-verified
  /// artifact exists; nullopt otherwise (compute it). Corrupt payloads are
  /// quarantined (renamed to `<file>.corrupt`, noted) rather than silently
  /// ignored; transient read failures are retried with backoff first.
  [[nodiscard]] std::optional<par::Bytes> load(const util::Digest128& chain);

  /// Durably writes `artifact` (payload file fsynced before rename, then
  /// manifest rewrite the same way), riding out transient IO failures with
  /// bounded retry, and honors the fail_after hook. No-op when not
  /// checkpointing.
  void store(const StageArtifact& artifact);

  /// Re-registers a resumed stage in the manifest being rebuilt (its
  /// payload file is already on disk and verified).
  void keep(const ArtifactRecord& record);

  /// Human-readable notes on quarantined/ignored checkpoint state this run
  /// (surfaced through PipelineStats and --stats).
  [[nodiscard]] const std::vector<std::string>& quarantine_notes() const {
    return quarantine_notes_;
  }

 private:
  void flush_manifest() const;
  void quarantine_file(const std::string& file, const std::string& reason);

  CheckpointOptions options_;
  util::Digest128 pipeline_hash_;
  /// chain hex -> manifest row of the pre-existing checkpoint (resume).
  std::vector<ArtifactRecord> previous_;
  /// Rows of the manifest as this run rebuilds it, in stage order.
  std::vector<ArtifactRecord> current_;
  int stored_count_ = 0;
  std::vector<std::string> quarantine_notes_;
};

/// Sequential driver of the typed stage graph: each run() call is one named
/// stage; the value either comes from compute() (then is serialized, hashed
/// and optionally checkpointed) or — on resume — is deserialized from the
/// stage's stored artifact, skipping compute entirely. Deserialization goes
/// through exactly the codec compute()'s output was written with, so a
/// resumed value is bit-identical by construction.
class StageRunner {
 public:
  explicit StageRunner(StageContext& ctx) : ctx_(&ctx), chain_(ctx.pipeline_hash()) {}

  /// `compute` -> T; `write(ByteWriter&, const T&)`; `read(ByteReader&) -> T`.
  template <typename Compute, typename Write, typename Read>
  auto run(std::string_view name, int paper_step, Compute&& compute,
           Write&& write, Read&& read) -> decltype(compute()) {
    advance_chain(name, paper_step);
    ArtifactRecord rec;
    rec.index = next_index_++;
    rec.name = std::string(name);
    rec.paper_step = paper_step;
    rec.chain = chain_;
    util::Stopwatch watch;
    if (std::optional<par::Bytes> payload = ctx_->load(chain_)) {
      par::ByteReader r{std::span<const std::uint8_t>(*payload)};
      auto value = read(r);
      rec.payload = util::stable_hash128(*payload);
      rec.bytes = payload->size();
      rec.resumed = true;
      rec.seconds = watch.seconds();
      rec.file = artifact_filename(rec);
      ctx_->keep(rec);
      records_.push_back(rec);
      return value;
    }
    // Deadline/cancel lands here, between stages: loads above stay allowed
    // (they are cheap and only improve the checkpoint), computes do not.
    // The manifest written so far is valid, so --resume picks up exactly
    // where this throw stopped the run.
    util::poll_budget(name);
    auto value = compute();
    par::ByteWriter w;
    write(w, value);
    StageArtifact artifact;
    artifact.payload = w.take();
    rec.payload = util::stable_hash128(artifact.payload);
    rec.bytes = artifact.payload.size();
    rec.seconds = watch.seconds();
    rec.file = artifact_filename(rec);
    artifact.record = rec;
    records_.push_back(rec);
    ctx_->store(artifact);  // may throw StageAbort (fail_after hook)
    return value;
  }

  /// Stages completed so far (in order), with resume/compute provenance.
  [[nodiscard]] const std::vector<ArtifactRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t resumed_stages() const {
    std::uint64_t n = 0;
    for (const auto& r : records_) n += r.resumed ? 1 : 0;
    return n;
  }

  static std::string artifact_filename(const ArtifactRecord& rec);

 private:
  void advance_chain(std::string_view name, int paper_step);

  StageContext* ctx_;
  util::Digest128 chain_;
  int next_index_ = 0;
  std::vector<ArtifactRecord> records_;
};

// ---- Checkpoint-directory inspection (salign stages) ----------------------

/// Parsed manifest of a checkpoint directory.
struct Manifest {
  std::uint32_t format_version = 0;
  util::Digest128 pipeline_hash;
  std::vector<ArtifactRecord> records;
};

/// Reads `dir`/manifest.tsv; throws std::runtime_error when missing or
/// malformed.
[[nodiscard]] Manifest read_manifest(const std::string& dir);

/// Reads one artifact's payload and verifies it against the manifest digest.
/// Throws on missing file; returns false (payload cleared) on digest
/// mismatch.
bool read_artifact(const std::string& dir, const ArtifactRecord& rec,
                   par::Bytes& payload);

/// Outcome of repair_checkpoint(): what survived, what was set aside.
struct RepairReport {
  bool manifest_ok = false;           ///< manifest parsed (else quarantined)
  std::vector<ArtifactRecord> kept;   ///< rows whose payload verified
  std::vector<std::string> quarantined;  ///< "<file>: <reason>" set aside
  std::vector<std::string> dropped;   ///< rows removed (artifact missing)
};

/// `salign stages --repair`: verifies every artifact in `dir` against the
/// manifest, renames corrupt files to `<file>.corrupt`, drops rows whose
/// payload is missing or bad, and rewrites a manifest containing only the
/// rows that verify — leaving a directory `--verify` is clean on and
/// `--resume` can safely consume (dropped stages simply recompute).
RepairReport repair_checkpoint(const std::string& dir);

}  // namespace salign::core::stage
