#include "core/stage/stage.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/fault_injection.hpp"
#include "util/io.hpp"
#include "util/string_util.hpp"

namespace salign::core::stage {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "manifest.tsv";
constexpr const char* kManifestMagic = "salign-checkpoint";

std::string manifest_path(const std::string& dir) {
  return (fs::path(dir) / kManifestName).string();
}

/// Serializes + durably writes a manifest (fsync-before-rename, transient
/// failures retried). Shared by the per-stage flush and --repair.
void write_manifest(const std::string& dir, const util::Digest128& hash,
                    const std::vector<ArtifactRecord>& records) {
  std::string text;
  text += kManifestMagic;
  text += '\t';
  text += std::to_string(kCheckpointFormatVersion);
  text += '\t';
  text += hash.hex();
  text += '\n';
  for (const ArtifactRecord& rec : records) {
    text += std::to_string(rec.index);
    text += '\t';
    text += rec.name;
    text += '\t';
    text += std::to_string(rec.paper_step);
    text += '\t';
    text += rec.chain.hex();
    text += '\t';
    text += rec.payload.hex();
    text += '\t';
    text += std::to_string(rec.bytes);
    text += '\t';
    text += rec.file;
    text += '\n';
  }
  const fs::path target(manifest_path(dir));
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  util::retry_io("manifest.store", [&] {
    util::write_file_durable(target, bytes, "manifest.store");
  });
}

}  // namespace

std::string StageRunner::artifact_filename(const ArtifactRecord& rec) {
  std::string n = rec.index < 10 ? "0" : "";
  n += std::to_string(rec.index);
  n += '-';
  n += rec.name;
  n += ".bin";
  return n;
}

void StageRunner::advance_chain(std::string_view name, int paper_step) {
  util::StableHash h;
  h.u64(chain_.hi);
  h.u64(chain_.lo);
  h.str(name);
  h.u32(static_cast<std::uint32_t>(paper_step));
  chain_ = h.digest128();
}

StageContext::StageContext(CheckpointOptions options,
                           util::Digest128 pipeline_hash)
    : options_(std::move(options)), pipeline_hash_(pipeline_hash) {
  if (!checkpointing()) return;
  fs::create_directories(options_.dir);
  if (options_.resume && fs::exists(manifest_path(options_.dir))) {
    try {
      Manifest m = util::retry_io(
          "manifest.load", [&] { return read_manifest(options_.dir); });
      // A checkpoint written by a different binary version, configuration or
      // input cannot be resumed: every stage recomputes and the manifest is
      // rewritten — resume is an optimization, never a correctness input.
      if (m.format_version == kCheckpointFormatVersion &&
          m.pipeline_hash == pipeline_hash_) {
        previous_ = std::move(m.records);
        // Leave the existing manifest untouched until the first keep/store
        // rewrites it — flushing the (empty) rebuilt manifest here would
        // destroy the resume information a crash right now should preserve.
        return;
      }
      quarantine_notes_.push_back(
          "checkpoint ignored: pipeline identity mismatch in '" +
          options_.dir + "' (recomputing all stages)");
    } catch (const std::exception& e) {
      // Corrupt manifest: set it aside so the operator can inspect it,
      // instead of silently overwriting the evidence.
      quarantine_file(kManifestName, e.what());
    }
  }
  // Fresh (or unusable) checkpoint: flush the empty manifest now so the
  // directory is `stages --verify`-clean from the first instant — a run
  // killed before its first stage still leaves a valid checkpoint.
  flush_manifest();
}

std::optional<par::Bytes> StageContext::load(const util::Digest128& chain) {
  for (const ArtifactRecord& rec : previous_) {
    if (rec.chain != chain) continue;
    try {
      par::Bytes payload;
      const bool ok = util::retry_io("checkpoint.read", [&] {
        return read_artifact(options_.dir, rec, payload);
      });
      if (ok) return payload;
      quarantine_file(rec.file,
                      "stage '" + rec.name + "': payload digest mismatch");
    } catch (const std::exception& e) {
      if (fs::exists(fs::path(options_.dir) / rec.file))
        quarantine_file(rec.file, "stage '" + rec.name + "': " + e.what());
      else
        quarantine_notes_.push_back("stage '" + rec.name +
                                    "': artifact missing (recomputing)");
    }
    return std::nullopt;
  }
  return std::nullopt;
}

void StageContext::store(const StageArtifact& artifact) {
  if (!checkpointing()) return;
  fs::create_directories(options_.dir);
  const fs::path target = fs::path(options_.dir) / artifact.record.file;
  util::retry_io("checkpoint.write", [&] {
    util::write_file_durable(target, artifact.payload, "checkpoint.write");
  });
  current_.push_back(artifact.record);
  flush_manifest();
  const int written = stored_count_++;
  if (options_.fail_after >= 0 && written == options_.fail_after)
    throw StageAbort("checkpoint test hook: aborted after stage '" +
                     artifact.record.name + "'");
}

void StageContext::keep(const ArtifactRecord& record) {
  if (!checkpointing()) return;
  current_.push_back(record);
  flush_manifest();
}

void StageContext::flush_manifest() const {
  write_manifest(options_.dir, pipeline_hash_, current_);
}

void StageContext::quarantine_file(const std::string& file,
                                   const std::string& reason) {
  const fs::path path = fs::path(options_.dir) / file;
  std::error_code ec;
  // salign-lint: allow(durable-io) -- quarantine rename: best-effort
  // set-aside of a corrupt artifact; losing it on crash is acceptable.
  fs::rename(path, fs::path(path.string() + ".corrupt"), ec);  // salign-lint: allow(durable-io) -- see above
  quarantine_notes_.push_back(
      "quarantined " + file + " -> " + file + ".corrupt: " + reason +
      (ec ? " (rename failed: " + ec.message() + ")" : ""));
}

Manifest read_manifest(const std::string& dir) {
  util::FaultInjector::instance().maybe_fail("manifest.load");
  std::ifstream f(manifest_path(dir));
  if (!f)
    throw std::runtime_error("checkpoint: no manifest in '" + dir + "'");
  Manifest m;
  std::string line;
  if (!std::getline(f, line))
    throw std::runtime_error("checkpoint: empty manifest in '" + dir + "'");
  {
    const std::vector<std::string> head = util::split(line, '\t');
    if (head.size() != 3 || head[0] != kManifestMagic ||
        !util::Digest128::parse(head[2], m.pipeline_hash))
      throw std::runtime_error("checkpoint: malformed manifest header");
    try {
      m.format_version = static_cast<std::uint32_t>(std::stoul(head[1]));
    } catch (const std::exception&) {
      throw std::runtime_error("checkpoint: malformed manifest header");
    }
  }
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cols = util::split(line, '\t');
    if (cols.size() != 7)
      throw std::runtime_error("checkpoint: malformed manifest row");
    ArtifactRecord rec;
    // A bit-flipped numeric column must read as "malformed manifest", not
    // surface std::stoi's invalid_argument (which the CLI maps to the
    // invalid-*input* exit code).
    try {
      rec.index = std::stoi(cols[0]);
      rec.paper_step = std::stoi(cols[2]);
      rec.bytes = std::stoull(cols[5]);
    } catch (const std::exception&) {
      throw std::runtime_error("checkpoint: malformed manifest row");
    }
    rec.name = cols[1];
    if (!util::Digest128::parse(cols[3], rec.chain) ||
        !util::Digest128::parse(cols[4], rec.payload))
      throw std::runtime_error("checkpoint: malformed manifest digest");
    rec.file = cols[6];
    m.records.push_back(std::move(rec));
  }
  return m;
}

bool read_artifact(const std::string& dir, const ArtifactRecord& rec,
                   par::Bytes& payload) {
  util::FaultInjector::instance().maybe_fail("checkpoint.read");
  const fs::path path = fs::path(dir) / rec.file;
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw std::runtime_error("checkpoint: missing artifact " + path.string());
  payload.assign(std::istreambuf_iterator<char>(f),
                 std::istreambuf_iterator<char>());
  if (payload.size() != rec.bytes ||
      util::stable_hash128(payload) != rec.payload) {
    payload.clear();
    return false;
  }
  return true;
}

RepairReport repair_checkpoint(const std::string& dir) {
  RepairReport report;
  Manifest m;
  try {
    m = read_manifest(dir);
  } catch (const std::exception& e) {
    // Unreadable manifest: set it aside; with no trustworthy rows there is
    // nothing to keep, and the next checkpointed run starts clean.
    std::error_code ec;
    // salign-lint: allow(durable-io) -- quarantine rename of an unreadable
    // manifest; the next run starts clean either way.
    fs::rename(fs::path(manifest_path(dir)),  // salign-lint: allow(durable-io) -- see above
               fs::path(manifest_path(dir) + ".corrupt"), ec);
    report.quarantined.push_back(std::string(kManifestName) + ": " + e.what());
    return report;
  }
  report.manifest_ok = true;
  for (const ArtifactRecord& rec : m.records) {
    par::Bytes payload;
    try {
      if (read_artifact(dir, rec, payload)) {
        report.kept.push_back(rec);
        continue;
      }
      std::error_code ec;
      // salign-lint: allow(durable-io) -- quarantine rename of a
      // digest-mismatched artifact; best-effort set-aside.
      fs::rename(fs::path(dir) / rec.file,  // salign-lint: allow(durable-io) -- see above
                 fs::path(dir) / (rec.file + ".corrupt"), ec);
      report.quarantined.push_back(rec.file + ": payload digest mismatch");
    } catch (const std::exception& e) {
      report.dropped.push_back(rec.file + ": " + e.what());
    }
  }
  write_manifest(dir, m.pipeline_hash, report.kept);
  return report;
}

}  // namespace salign::core::stage
