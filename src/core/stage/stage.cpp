#include "core/stage/stage.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/string_util.hpp"

namespace salign::core::stage {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "manifest.tsv";
constexpr const char* kManifestMagic = "salign-checkpoint";

std::string manifest_path(const std::string& dir) {
  return (fs::path(dir) / kManifestName).string();
}

/// tmp+rename so a kill mid-write can never leave a half-written file under
/// the final name (the unit of durability the resume tests rely on).
void write_file_atomic(const fs::path& target, std::span<const std::uint8_t> bytes) {
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw std::runtime_error("checkpoint: cannot write " + tmp.string());
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!f) throw std::runtime_error("checkpoint: short write " + tmp.string());
  }
  fs::rename(tmp, target);
}

}  // namespace

std::string StageRunner::artifact_filename(const ArtifactRecord& rec) {
  std::string n = rec.index < 10 ? "0" : "";
  n += std::to_string(rec.index);
  n += '-';
  n += rec.name;
  n += ".bin";
  return n;
}

void StageRunner::advance_chain(std::string_view name, int paper_step) {
  util::StableHash h;
  h.u64(chain_.hi);
  h.u64(chain_.lo);
  h.str(name);
  h.u32(static_cast<std::uint32_t>(paper_step));
  chain_ = h.digest128();
}

StageContext::StageContext(CheckpointOptions options,
                           util::Digest128 pipeline_hash)
    : options_(std::move(options)), pipeline_hash_(pipeline_hash) {
  if (!options_.resume || options_.dir.empty()) return;
  try {
    Manifest m = read_manifest(options_.dir);
    // A checkpoint written by a different binary version, configuration or
    // input is silently ignored: every stage recomputes and the manifest is
    // rewritten — resume is an optimization, never a correctness input.
    if (m.format_version == kCheckpointFormatVersion &&
        m.pipeline_hash == pipeline_hash_)
      previous_ = std::move(m.records);
  } catch (const std::exception&) {
    // Missing/corrupt manifest: nothing to resume from.
  }
}

std::optional<par::Bytes> StageContext::load(
    const util::Digest128& chain) const {
  for (const ArtifactRecord& rec : previous_) {
    if (rec.chain != chain) continue;
    try {
      par::Bytes payload;
      if (read_artifact(options_.dir, rec, payload)) return payload;
    } catch (const std::exception&) {
      // fall through: recompute
    }
    return std::nullopt;
  }
  return std::nullopt;
}

void StageContext::store(const StageArtifact& artifact) {
  if (!checkpointing()) return;
  fs::create_directories(options_.dir);
  write_file_atomic(fs::path(options_.dir) / artifact.record.file,
                    artifact.payload);
  current_.push_back(artifact.record);
  flush_manifest();
  const int written = stored_count_++;
  if (options_.fail_after >= 0 && written == options_.fail_after)
    throw StageAbort("checkpoint test hook: aborted after stage '" +
                     artifact.record.name + "'");
}

void StageContext::keep(const ArtifactRecord& record) {
  if (!checkpointing()) return;
  current_.push_back(record);
  flush_manifest();
}

void StageContext::flush_manifest() const {
  std::string text;
  text += kManifestMagic;
  text += '\t';
  text += std::to_string(kCheckpointFormatVersion);
  text += '\t';
  text += pipeline_hash_.hex();
  text += '\n';
  for (const ArtifactRecord& rec : current_) {
    text += std::to_string(rec.index);
    text += '\t';
    text += rec.name;
    text += '\t';
    text += std::to_string(rec.paper_step);
    text += '\t';
    text += rec.chain.hex();
    text += '\t';
    text += rec.payload.hex();
    text += '\t';
    text += std::to_string(rec.bytes);
    text += '\t';
    text += rec.file;
    text += '\n';
  }
  write_file_atomic(
      fs::path(manifest_path(options_.dir)),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Manifest read_manifest(const std::string& dir) {
  std::ifstream f(manifest_path(dir));
  if (!f)
    throw std::runtime_error("checkpoint: no manifest in '" + dir + "'");
  Manifest m;
  std::string line;
  if (!std::getline(f, line))
    throw std::runtime_error("checkpoint: empty manifest in '" + dir + "'");
  {
    const std::vector<std::string> head = util::split(line, '\t');
    if (head.size() != 3 || head[0] != kManifestMagic ||
        !util::Digest128::parse(head[2], m.pipeline_hash))
      throw std::runtime_error("checkpoint: malformed manifest header");
    m.format_version = static_cast<std::uint32_t>(std::stoul(head[1]));
  }
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cols = util::split(line, '\t');
    if (cols.size() != 7)
      throw std::runtime_error("checkpoint: malformed manifest row");
    ArtifactRecord rec;
    rec.index = std::stoi(cols[0]);
    rec.name = cols[1];
    rec.paper_step = std::stoi(cols[2]);
    if (!util::Digest128::parse(cols[3], rec.chain) ||
        !util::Digest128::parse(cols[4], rec.payload))
      throw std::runtime_error("checkpoint: malformed manifest digest");
    rec.bytes = std::stoull(cols[5]);
    rec.file = cols[6];
    m.records.push_back(std::move(rec));
  }
  return m;
}

bool read_artifact(const std::string& dir, const ArtifactRecord& rec,
                   par::Bytes& payload) {
  const fs::path path = fs::path(dir) / rec.file;
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw std::runtime_error("checkpoint: missing artifact " + path.string());
  payload.assign(std::istreambuf_iterator<char>(f),
                 std::istreambuf_iterator<char>());
  if (payload.size() != rec.bytes ||
      util::stable_hash128(payload) != rec.payload) {
    payload.clear();
    return false;
  }
  return true;
}

}  // namespace salign::core::stage
