#include "core/stage/artifacts.hpp"

namespace salign::core::stage {

void write_ranked_partition(par::ByteWriter& w, const RankedPartition& parts) {
  w.u32(static_cast<std::uint32_t>(parts.size()));
  for (const auto& part : parts) {
    w.u32(static_cast<std::uint32_t>(part.size()));
    for (const RankedRef& ref : part) {
      w.u64(ref.index);
      w.f64(ref.rank);
    }
  }
}

RankedPartition read_ranked_partition(par::ByteReader& r) {
  RankedPartition parts(r.count(4));  // count(): corrupt sizes throw, never OOM
  for (auto& part : parts) {
    part.resize(r.count(16));  // 16 bytes per RankedRef
    for (RankedRef& ref : part) {
      ref.index = r.u64();
      ref.rank = r.f64();
    }
  }
  return parts;
}

void write_index_lists(par::ByteWriter& w,
                       const std::vector<std::vector<std::uint64_t>>& lists) {
  w.u32(static_cast<std::uint32_t>(lists.size()));
  for (const auto& list : lists) write_indices(w, list);
}

std::vector<std::vector<std::uint64_t>> read_index_lists(par::ByteReader& r) {
  std::vector<std::vector<std::uint64_t>> lists(r.count(4));
  for (auto& list : lists) list = read_indices(r);
  return lists;
}

void write_indices(par::ByteWriter& w, const std::vector<std::uint64_t>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (std::uint64_t x : v) w.u64(x);
}

std::vector<std::uint64_t> read_indices(par::ByteReader& r) {
  std::vector<std::uint64_t> v(r.count(8));
  for (std::uint64_t& x : v) x = r.u64();
  return v;
}

void write_doubles(par::ByteWriter& w, const std::vector<double>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) w.f64(x);
}

std::vector<double> read_doubles(par::ByteReader& r) {
  std::vector<double> v(r.count(8));
  for (double& x : v) x = r.f64();
  return v;
}

void write_alignments(par::ByteWriter& w,
                      std::span<const msa::Alignment> alns) {
  w.u32(static_cast<std::uint32_t>(alns.size()));
  for (const msa::Alignment& a : alns) par::write_alignment(w, a);
}

std::vector<msa::Alignment> read_alignments(par::ByteReader& r) {
  const std::uint32_t n = r.count(5);  // kind + row count per alignment
  std::vector<msa::Alignment> alns;
  alns.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    alns.push_back(par::read_alignment(r));
  return alns;
}

void write_paths(par::ByteWriter& w,
                 const std::vector<std::vector<align::EditOp>>& paths) {
  w.u32(static_cast<std::uint32_t>(paths.size()));
  for (const auto& path : paths) {
    w.u32(static_cast<std::uint32_t>(path.size()));
    for (align::EditOp op : path) w.u8(static_cast<std::uint8_t>(op));
  }
}

std::vector<std::vector<align::EditOp>> read_paths(par::ByteReader& r) {
  std::vector<std::vector<align::EditOp>> paths(r.count(4));
  for (auto& path : paths) {
    const std::uint32_t n = r.count(1);
    path.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
      path.push_back(static_cast<align::EditOp>(r.u8()));
  }
  return paths;
}

}  // namespace salign::core::stage
