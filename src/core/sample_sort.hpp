#pragma once

#include <vector>

namespace salign::core {

/// Parallel sorting by regular sampling (PSRS) over doubles, run on the
/// in-process cluster runtime with `p` ranks.
///
/// This is the SampleSort scheme the paper derives its sequence
/// redistribution from [13, 26]; it exists in the library both as a usable
/// utility and as the test oracle for the partitioning machinery (result
/// must equal std::sort, every bucket must respect the 2N/p bound for
/// distinct keys).
[[nodiscard]] std::vector<double> parallel_sample_sort(
    std::vector<double> data, int p);

}  // namespace salign::core
