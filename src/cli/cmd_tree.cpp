#include <memory>
#include <ostream>
#include <sstream>
#include <vector>

#include "align/distance.hpp"
#include "bio/fasta.hpp"
#include "bio/substitution_matrix.hpp"
#include "cli/arg_parser.hpp"
#include "cli/commands.hpp"
#include "kmer/kmer_rank.hpp"
#include "msa/guide_tree.hpp"
#include "util/io.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace salign::cli {

namespace {

ArgParser make_parser() {
  ArgParser p("tree",
              "Builds a phylogenetic/guide tree from unaligned sequences\n"
              "and prints it in Newick format. The paper uses exactly this\n"
              "construction (§2): k-mer distances give a rapid tree without\n"
              "aligning first; the ClustalW-style alternative derives\n"
              "Kimura distances from all-pairs global alignments.");
  p.option("in", "file", "", "input FASTA file");
  p.option("method", "name", "upgma",
           "tree construction: upgma (MUSCLE-style) or nj "
           "(neighbor-joining, CLUSTALW-style)");
  p.option("dist", "name", "kmer",
           "distance source: kmer (alignment-free, fast), kimura "
           "(all-pairs global alignments, O(N^2 L^2)), or score "
           "(striped-integer score-only alignments — kimura accuracy "
           "class without tracebacks)");
  p.option("k", "len", "0",
           "k-mer length for --dist kmer (0 = library default)");
  p.option("threads", "n", "1",
           "worker threads of the kimura/score distance pass "
           "(0 = auto: hardware concurrency, capped)");
  p.option("out", "file", "", "write the Newick string here instead of stdout");
  p.flag("weights", "also print CLUSTALW-style leaf weights");
  p.flag("stats",
         "print the distance pass's alignment-kernel tier breakdown "
         "(batched int8 lanes / striped int8 / int16 / float); only "
         "--dist kimura runs full alignments, so only it has one");
  return p;
}

}  // namespace

int run_tree(std::span<const std::string> args, std::ostream& out,
             std::ostream& err) {
  ArgParser p = make_parser();
  try {
    p.parse(args);
    if (p.help_requested()) {
      out << p.usage();
      return 0;
    }
    if (p.get("in").empty()) throw UsageError("--in is required");
    const std::string method = p.get("method");
    if (method != "upgma" && method != "nj")
      throw UsageError("--method must be upgma or nj");
    const std::string dist = p.get("dist");
    if (dist != "kmer" && dist != "kimura" && dist != "score")
      throw UsageError("--dist must be kmer, kimura or score");
    const auto threads_arg =
        static_cast<unsigned>(p.get_int("threads", 0, 1024));
    const unsigned threads =
        threads_arg == 0 ? util::default_threads() : threads_arg;

    const std::vector<bio::Sequence> seqs = bio::read_fasta_file(p.get("in"));
    if (seqs.size() < 2)
      throw bio::InvalidInput("need at least 2 sequences to build a tree");

    util::SymmetricMatrix<double> d(0);
    if (dist == "kmer") {
      kmer::KmerParams kp;
      const auto k = static_cast<std::size_t>(p.get_int("k", 0, 32));
      if (k > 0) kp.k = k;
      d = kmer::distance_matrix(seqs, kp);
    } else {
      const bio::SubstitutionMatrix& m = bio::SubstitutionMatrix::blosum62();
      const bio::GapPenalties gaps = m.default_gaps();
      if (dist == "score") {
        align::ScoreDistanceOptions sdo;
        sdo.threads = threads;
        d = align::score_distance_matrix(seqs, m, gaps, sdo);
      } else {
        align::PairDistanceOptions pdo;
        pdo.threads = threads;
        align::PairDistanceStats stats;
        pdo.stats = &stats;
        d = align::alignment_distance_matrix(seqs, m, gaps, pdo);
        if (p.get_flag("stats")) {
          util::Table t({"pairs", "batched int8", "batch retries",
                         "striped int8", "striped int16", "float",
                         "promotions"});
          t.add_row({std::to_string(stats.pairs),
                     std::to_string(stats.batched_int8),
                     std::to_string(stats.batch_retries),
                     std::to_string(stats.ladder.int8_runs),
                     std::to_string(stats.ladder.int16_runs),
                     std::to_string(stats.ladder.float_runs),
                     std::to_string(stats.ladder.promotions)});
          out << t.to_string();
        }
      }
    }

    const msa::GuideTree tree = method == "upgma"
                                    ? msa::GuideTree::upgma(d)
                                    : msa::GuideTree::neighbor_joining(d);
    std::vector<std::string> names;
    names.reserve(seqs.size());
    for (const auto& s : seqs) names.push_back(s.id());
    const std::string newick = tree.newick(names);

    const std::string out_path = p.get("out");
    if (out_path.empty()) {
      out << newick << "\n";
    } else {
      util::retry_io("file.write", [&] {
        util::write_text_file_durable(out_path, newick + "\n");
      });
      out << "wrote " << out_path << "\n";
    }

    if (p.get_flag("weights")) {
      const std::vector<double> w = tree.leaf_weights();
      util::Table t({"id", "weight"});
      for (std::size_t i = 0; i < seqs.size(); ++i)
        t.add_row({seqs[i].id(), util::fmt("%.4f", w[i])});
      out << t.to_string();
    }
    return 0;
  } catch (const UsageError& e) {
    err << "salign tree: " << e.what() << "\n\n" << p.usage();
    return kExitUsage;
  } catch (...) {
    return classify_error("tree", err);
  }
}

}  // namespace salign::cli
