#include "cli/arg_parser.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <utility>

namespace salign::cli {

namespace {

bool is_long_option(std::string_view token) {
  return token.size() > 2 && token.substr(0, 2) == "--";
}

}  // namespace

ArgParser::ArgParser(std::string command, std::string summary)
    : command_(std::move(command)), summary_(std::move(summary)) {}

ArgParser& ArgParser::flag(std::string name, std::string help) {
  flags_.push_back(Flag{std::move(name), std::move(help)});
  return *this;
}

ArgParser& ArgParser::option(std::string name, std::string value_name,
                             std::string default_value, std::string help) {
  options_.push_back(Option{std::move(name), std::move(value_name),
                            std::move(help), std::move(default_value)});
  return *this;
}

ArgParser& ArgParser::positional(std::string name, std::string help,
                                 bool required) {
  if (!positionals_decl_.empty() && !positionals_decl_.back().required &&
      required)
    throw std::logic_error(
        "ArgParser: required positional after optional one");
  positionals_decl_.push_back(
      Positional{std::move(name), std::move(help), required});
  return *this;
}

ArgParser::Flag* ArgParser::find_flag(std::string_view name) {
  const auto it = std::find_if(flags_.begin(), flags_.end(),
                               [&](const Flag& f) { return f.name == name; });
  return it == flags_.end() ? nullptr : &*it;
}

ArgParser::Option* ArgParser::find_option(std::string_view name) {
  const auto it =
      std::find_if(options_.begin(), options_.end(),
                   [&](const Option& o) { return o.name == name; });
  return it == options_.end() ? nullptr : &*it;
}

const ArgParser::Option& ArgParser::require_option(
    std::string_view name) const {
  const auto it =
      std::find_if(options_.begin(), options_.end(),
                   [&](const Option& o) { return o.name == name; });
  if (it == options_.end())
    throw std::logic_error("ArgParser: undeclared option queried: " +
                           std::string(name));
  return *it;
}

void ArgParser::parse(std::span<const std::string> args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& token = args[i];
    if (token == "--help" || token == "-h") {
      help_requested_ = true;
      return;
    }
    if (is_long_option(token)) {
      std::string_view body = std::string_view(token).substr(2);
      std::string_view value;
      bool has_inline_value = false;
      if (const auto eq = body.find('='); eq != std::string_view::npos) {
        value = body.substr(eq + 1);
        body = body.substr(0, eq);
        has_inline_value = true;
      }
      if (Flag* f = find_flag(body)) {
        if (has_inline_value)
          throw UsageError("flag --" + std::string(body) +
                           " does not take a value");
        f->set = true;
        continue;
      }
      if (Option* o = find_option(body)) {
        if (has_inline_value) {
          o->value = std::string(value);
        } else {
          if (i + 1 >= args.size())
            throw UsageError("option --" + std::string(body) +
                             " needs a value");
          o->value = args[++i];
        }
        continue;
      }
      throw UsageError("unknown option --" + std::string(body));
    }
    if (positionals_given_.size() >= positionals_decl_.size())
      throw UsageError("unexpected argument '" + token + "'");
    positionals_given_.push_back(token);
  }
  for (std::size_t i = positionals_given_.size();
       i < positionals_decl_.size(); ++i) {
    if (positionals_decl_[i].required)
      throw UsageError("missing required argument <" +
                       positionals_decl_[i].name + ">");
  }
}

bool ArgParser::get_flag(std::string_view name) const {
  const auto it = std::find_if(flags_.begin(), flags_.end(),
                               [&](const Flag& f) { return f.name == name; });
  if (it == flags_.end())
    throw std::logic_error("ArgParser: undeclared flag queried: " +
                           std::string(name));
  return it->set;
}

const std::string& ArgParser::get(std::string_view name) const {
  return require_option(name).value;
}

long ArgParser::get_int(std::string_view name, long min, long max) const {
  const std::string& v = require_option(name).value;
  long out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size())
    throw UsageError("--" + std::string(name) + ": '" + v +
                     "' is not an integer");
  if (out < min || out > max)
    throw UsageError("--" + std::string(name) + ": " + v +
                     " out of range [" + std::to_string(min) + ", " +
                     std::to_string(max) + "]");
  return out;
}

double ArgParser::get_double(std::string_view name, double min,
                             double max) const {
  const std::string& v = require_option(name).value;
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    if (out < min || out > max)
      throw UsageError("--" + std::string(name) + ": " + v +
                       " out of range");
    return out;
  } catch (const UsageError&) {
    throw;
  } catch (const std::exception&) {
    throw UsageError("--" + std::string(name) + ": '" + v +
                     "' is not a number");
  }
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "usage: salign " << command_;
  for (const Positional& p : positionals_decl_)
    os << (p.required ? " <" + p.name + ">" : " [" + p.name + "]");
  if (!options_.empty() || !flags_.empty()) os << " [options]";
  os << "\n\n" << summary_ << "\n";
  if (!positionals_decl_.empty()) {
    os << "\narguments:\n";
    for (const Positional& p : positionals_decl_)
      os << "  " << p.name << "  " << p.help << "\n";
  }
  if (!options_.empty() || !flags_.empty()) {
    os << "\noptions:\n";
    for (const Option& o : options_)
      os << "  --" << o.name << " <" << o.value_name << ">  " << o.help
         << " (default: " << (o.value.empty() ? "none" : o.value) << ")\n";
    for (const Flag& f : flags_) os << "  --" << f.name << "  " << f.help
                                    << "\n";
  }
  return os.str();
}

namespace {

/// Splits "<number><suffix>" at the end of the numeric part. Throws the
/// caller-supplied UsageError builder on non-numeric or negative input.
/// The number is parsed as a double so "1.5g" and "2.5s" work; whether a
/// fraction is acceptable without a suffix is the caller's call.
template <typename Bad>
std::pair<double, std::string> split_number_suffix(const std::string& text,
                                                  const Bad& bad) {
  // stod accepts leading whitespace, '+', '-', "inf", "nan" — the CLI
  // wants exactly [digits][.digits][suffix], so gate on the first byte.
  if (text.empty() || text[0] < '0' || text[0] > '9') throw bad();
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw bad();
  }
  if (!(value >= 0.0) || value > 1e18) throw bad();
  return {value, text.substr(pos)};
}

}  // namespace

std::uint64_t parse_byte_size(const std::string& text,
                              std::string_view flag) {
  const auto bad = [&] {
    return UsageError(std::string(flag) +
                      ": expected <number>[k|m|g] (fractions need a unit, "
                      "e.g. 1.5g), got '" +
                      text + "'");
  };
  const auto [value, suffix] = split_number_suffix(text, bad);
  std::uint64_t scale = 1;
  if (suffix == "k" || suffix == "K") {
    scale = std::uint64_t{1} << 10;
  } else if (suffix == "m" || suffix == "M") {
    scale = std::uint64_t{1} << 20;
  } else if (suffix == "g" || suffix == "G") {
    scale = std::uint64_t{1} << 30;
  } else if (!suffix.empty()) {
    throw bad();
  } else if (value != static_cast<double>(static_cast<std::uint64_t>(value))) {
    throw bad();  // "1.5" bytes: fractions below a whole unit are nonsense
  }
  const double bytes = value * static_cast<double>(scale);
  if (bytes > 9.2e18) throw bad();  // would overflow uint64
  return static_cast<std::uint64_t>(bytes);
}

double parse_duration_seconds(const std::string& text,
                              std::string_view flag) {
  const auto bad = [&] {
    return UsageError(std::string(flag) +
                      ": expected <number>[ms|s|m|h] (bare numbers are "
                      "seconds), got '" +
                      text + "'");
  };
  const auto [value, suffix] = split_number_suffix(text, bad);
  double scale = 1.0;
  if (suffix == "ms") {
    scale = 1e-3;
  } else if (suffix == "s" || suffix.empty()) {
    scale = 1.0;
  } else if (suffix == "m") {
    scale = 60.0;
  } else if (suffix == "h") {
    scale = 3600.0;
  } else {
    throw bad();
  }
  return value * scale;
}

}  // namespace salign::cli
