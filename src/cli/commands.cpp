#include "cli/commands.hpp"

#include <memory>
#include <ostream>
#include <stdexcept>

#include "bio/fasta.hpp"
#include "cli/arg_parser.hpp"
#include "msa/clustalw_like.hpp"
#include "msa/mafft_like.hpp"
#include "msa/muscle_like.hpp"
#include "msa/probcons_like.hpp"
#include "msa/tcoffee_like.hpp"
#include "serve/socket.hpp"
#include "util/budget.hpp"

namespace salign::cli {

int classify_error(const std::string& command, std::ostream& err) {
  const auto report = [&](const char* what) -> std::ostream& {
    return err << "salign " << command << ": " << what << "\n";
  };
  try {
    throw;  // reclassify the in-flight exception
  } catch (const util::DeadlineExceeded& e) {
    report(e.what())
        << "salign " << command
        << ": checkpoint (if any) is valid; rerun with --resume\n";
    return kExitDeadline;
  } catch (const util::CancelledError& e) {
    report(e.what());
    return kExitDeadline;
  } catch (const serve::ResourceError& e) {
    report(e.what());
    return kExitResource;
  } catch (const bio::InvalidInput& e) {
    report(e.what());
    return kExitInvalidInput;
  } catch (const std::invalid_argument& e) {
    report(e.what());
    return kExitInvalidInput;
  } catch (const std::exception& e) {
    report(e.what());
    return kExitRuntime;
  } catch (...) {
    report("unknown error");
    return kExitRuntime;
  }
}

std::shared_ptr<const msa::MsaAlgorithm> make_aligner(
    const std::string& name, unsigned threads) {
  if (name == "muscle" || name == "muscle-refine" || name == "muscle-fast") {
    msa::MuscleOptions o;
    o.threads = threads;
    if (name == "muscle-refine") o.refine_passes = 2;
    if (name == "muscle-fast")
      o.stage1_distance = msa::MuscleOptions::GuideTree::kScore;
    return std::make_shared<msa::MuscleAligner>(o);
  }
  if (name == "clustalw") {
    msa::ClustalWOptions o;
    o.threads = threads;
    return std::make_shared<msa::ClustalWAligner>(o);
  }
  if (name == "tcoffee") {
    msa::TCoffeeOptions o;
    o.threads = threads;
    return std::make_shared<msa::TCoffeeAligner>(o);
  }
  if (name == "nwnsi" || name == "fftnsi") {
    msa::MafftOptions o;
    o.use_fft = name == "fftnsi";
    o.threads = threads;
    return std::make_shared<msa::MafftAligner>(o);
  }
  if (name == "probcons") {
    msa::ProbConsOptions o;
    o.threads = threads;
    return std::make_shared<msa::ProbConsAligner>(o);
  }
  throw UsageError("unknown aligner '" + name + "' (expected one of " +
                   aligner_names() + ")");
}

std::string aligner_names() {
  return "muscle, muscle-refine, muscle-fast, clustalw, tcoffee, nwnsi, "
         "fftnsi, probcons";
}

int dispatch(std::span<const std::string> args, std::ostream& out,
             std::ostream& err) {
  const auto print_help = [&](std::ostream& os) {
    os << "salign — Sample-Align-D multiple sequence alignment toolkit\n"
          "(reproduction of Saeed & Khokhar, IPDPS 2008)\n\n"
          "usage: salign <command> [options]\n\n"
          "commands:\n"
          "  align     align FASTA sequences (Sample-Align-D pipeline or a\n"
          "            sequential aligner)\n"
          "  score     score an alignment against a trusted reference\n"
          "  rank      print k-mer ranks of sequences\n"
          "  tree      build a guide/phylogenetic tree (Newick)\n"
          "  generate  emit synthetic benchmark workloads\n"
          "  stages    inspect an 'align --checkpoint-dir' directory\n"
          "  serve     run the crash-tolerant alignment daemon\n"
          "  submit    submit an alignment job to a serving daemon\n"
          "  jobs      list (or cancel) a serving daemon's jobs\n"
          "  help      show this message\n\n"
          "run 'salign <command> --help' for per-command options.\n";
  };
  if (args.empty() || args[0] == "help" || args[0] == "--help" ||
      args[0] == "-h") {
    print_help(out);
    return 0;
  }
  const std::string& cmd = args[0];
  const std::span<const std::string> rest = args.subspan(1);
  if (cmd == "align") return run_align(rest, out, err);
  if (cmd == "score") return run_score(rest, out, err);
  if (cmd == "rank") return run_rank(rest, out, err);
  if (cmd == "tree") return run_tree(rest, out, err);
  if (cmd == "generate") return run_generate(rest, out, err);
  if (cmd == "stages") return run_stages(rest, out, err);
  if (cmd == "serve") return run_serve(rest, out, err);
  if (cmd == "submit") return run_submit(rest, out, err);
  if (cmd == "jobs") return run_jobs(rest, out, err);
  err << "salign: unknown command '" << cmd << "'\n\n";
  print_help(err);
  return kExitUsage;
}

}  // namespace salign::cli
