// Entry point of the `salign` command-line tool. All logic lives in
// cli::dispatch / cli::run_* so the test suite can exercise every command
// in-process; this file only adapts argv and arms the fault injector from
// the environment (SALIGN_FAULTS / SALIGN_FAULT_SEED — the fault-matrix CI
// smoke activates injection sites without rebuilding).

#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "util/fault_injection.hpp"

int main(int argc, char** argv) {
  try {
    salign::util::FaultInjector::instance().arm_from_env();
  } catch (const std::exception& e) {
    std::cerr << "salign: SALIGN_FAULTS: " << e.what() << "\n";
    return salign::cli::kExitUsage;
  }
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return salign::cli::dispatch(args, std::cout, std::cerr);
}
