// Entry point of the `salign` command-line tool. All logic lives in
// cli::dispatch / cli::run_* so the test suite can exercise every command
// in-process; this file only adapts argv.

#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return salign::cli::dispatch(args, std::cout, std::cerr);
}
