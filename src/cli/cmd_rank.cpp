#include <algorithm>
#include <ostream>

#include "bio/fasta.hpp"
#include "cli/arg_parser.hpp"
#include "cli/commands.hpp"
#include "kmer/kmer_rank.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace salign::cli {

namespace {

ArgParser make_parser() {
  ArgParser p("rank",
              "Prints the k-mer rank R = -ln(0.1 + D) of every sequence\n"
              "(D = mean k-mer similarity to the reference set). This is\n"
              "the similarity index Sample-Align-D buckets on, and the\n"
              "diagnostic behind the paper's Figs. 1/3 and Table 1.");
  p.option("in", "file", "", "input FASTA file");
  p.option("k", "len", "0", "k-mer length (0 = library default)");
  p.option("sample", "n", "0",
           "rank against n evenly spaced samples instead of the full set "
           "(the pipeline's globalized mode; 0 = centralized)");
  p.flag("hist", "print a 10-bin histogram instead of per-sequence rows");
  return p;
}

}  // namespace

int run_rank(std::span<const std::string> args, std::ostream& out,
             std::ostream& err) {
  ArgParser p = make_parser();
  try {
    p.parse(args);
    if (p.help_requested()) {
      out << p.usage();
      return 0;
    }
    if (p.get("in").empty()) throw UsageError("--in is required");

    const std::vector<bio::Sequence> seqs = bio::read_fasta_file(p.get("in"));
    if (seqs.empty()) throw std::runtime_error("no sequences in input");
    kmer::KmerParams kp;
    const auto k = static_cast<std::size_t>(p.get_int("k", 0, 32));
    if (k > 0) kp.k = k;

    const auto sample_n =
        static_cast<std::size_t>(p.get_int("sample", 0, 1 << 20));
    std::vector<double> ranks;
    if (sample_n == 0 || sample_n >= seqs.size()) {
      ranks = kmer::centralized_ranks(seqs, kp);
    } else {
      std::vector<bio::Sequence> samples;
      for (std::size_t i = 0; i < sample_n; ++i)
        samples.push_back(
            seqs[(i + 1) * seqs.size() / (sample_n + 1)]);
      ranks = kmer::globalized_ranks(seqs, samples, kp);
    }

    if (p.get_flag("hist")) {
      const auto [lo_it, hi_it] =
          std::minmax_element(ranks.begin(), ranks.end());
      util::Histogram h(*lo_it, *hi_it + 1e-9, 10);
      h.add_all(ranks);
      out << h.ascii();
    } else {
      util::Table t({"id", "rank"});
      for (std::size_t i = 0; i < seqs.size(); ++i)
        t.add_row({seqs[i].id(), util::fmt("%.5f", ranks[i])});
      out << t.to_string();
    }
    util::RunningStats stats;
    for (const double r : ranks) stats.add(r);
    out << "n=" << ranks.size() << " mean=" << util::fmt("%.5f", stats.mean())
        << " stddev=" << util::fmt("%.5f", stats.stddev())
        << " min=" << util::fmt("%.5f", stats.min())
        << " max=" << util::fmt("%.5f", stats.max()) << "\n";
    return 0;
  } catch (const UsageError& e) {
    err << "salign rank: " << e.what() << "\n\n" << p.usage();
    return kExitUsage;
  } catch (...) {
    return classify_error("rank", err);
  }
}

}  // namespace salign::cli
