#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>

#include "msa/msa_algorithm.hpp"

namespace salign::cli {

/// Exit-code taxonomy shared by every command. Scripts and the fault-matrix
/// harness branch on these, so they are part of the CLI contract:
///
///   0  success
///   1  runtime/IO failure — missing file, exhausted retries, corrupt
///      checkpoint the pipeline could not recover from, internal error
///   2  usage error — bad flags or arguments (usage text printed)
///   3  invalid input — the file was read fine but its *content* is
///      malformed (FASTA syntax, duplicate ids, control bytes, bad values)
///   4  deadline exceeded or cancelled — the run stopped cooperatively at a
///      stage/chunk boundary; any --checkpoint-dir it was writing is valid
///      and `--resume` completes the alignment bit-identically
///   5  resource/bind failure — a resource the command needs is unavailable
///      or contested: the serve socket path is already being served, the
///      journal directory cannot be created/written, a submit was shed by
///      an overloaded daemon. The fix is operational, not a bug or bad
///      input, so init systems and scripts can back off and retry
enum ExitCode : int {
  kExitOk = 0,
  kExitRuntime = 1,
  kExitUsage = 2,
  kExitInvalidInput = 3,
  kExitDeadline = 4,
  kExitResource = 5,
};

/// Maps the in-flight exception to the taxonomy above, printing
/// "salign <command>: <what>" to `err`. Call from a catch-all handler
/// (it rethrows internally); UsageError must be caught before it, where
/// the command's usage text is available.
[[nodiscard]] int classify_error(const std::string& command,
                                 std::ostream& err);

/// The `salign` command-line tool, exposed as callable functions so the
/// test suite drives every command in-process (no fork/exec). Each command
/// takes its argument list (program and command names stripped), writes
/// results to `out` and diagnostics to `err`, and returns the process exit
/// status from the taxonomy below.
///
/// Commands:
///   align     align a FASTA file with Sample-Align-D or a sequential
///             aligner;
///   score     score a test alignment against a trusted reference
///             (Q / TC / SP, optional core-block masking);
///   rank      print k-mer ranks (centralized or sample-globalized) —
///             the Fig. 1/3 diagnostic for arbitrary input;
///   tree      build a UPGMA / neighbor-joining tree from k-mer or
///             Kimura distances, emit Newick (the paper's §2 rapid
///             phylogeny construction);
///   generate  emit synthetic workloads (rose / genome / prefab /
///             balibase / sabmark) as FASTA (+ reference alignments);
///   stages    inspect a checkpoint directory written by
///             `align --checkpoint-dir` (manifest table, digest
///             verification);
///   serve     run the crash-tolerant alignment daemon (admission control,
///             durable job journal, kill -9 recovery — see
///             docs/serve_protocol.md);
///   submit    submit an alignment job to a serving daemon;
///   jobs      list (or cancel) a serving daemon's jobs.
int run_align(std::span<const std::string> args, std::ostream& out,
              std::ostream& err);
int run_score(std::span<const std::string> args, std::ostream& out,
              std::ostream& err);
int run_rank(std::span<const std::string> args, std::ostream& out,
             std::ostream& err);
int run_tree(std::span<const std::string> args, std::ostream& out,
             std::ostream& err);
int run_generate(std::span<const std::string> args, std::ostream& out,
                 std::ostream& err);
int run_stages(std::span<const std::string> args, std::ostream& out,
               std::ostream& err);
int run_serve(std::span<const std::string> args, std::ostream& out,
              std::ostream& err);
int run_submit(std::span<const std::string> args, std::ostream& out,
               std::ostream& err);
int run_jobs(std::span<const std::string> args, std::ostream& out,
             std::ostream& err);

/// Top-level dispatch: args[0] is the command name. Prints the tool help
/// on empty input, `help`, or an unknown command (the latter returns 2).
int dispatch(std::span<const std::string> args, std::ostream& out,
             std::ostream& err);

/// Shared aligner registry: maps a CLI name to an aligner instance with
/// `threads` workers for its parallel passes (thread counts never change
/// outputs). Names: muscle, muscle-refine, muscle-fast (score-distance
/// guide tree), clustalw, tcoffee, nwnsi, fftnsi, probcons. Throws
/// UsageError for unknown names.
[[nodiscard]] std::shared_ptr<const msa::MsaAlgorithm> make_aligner(
    const std::string& name, unsigned threads = 1);

/// All valid aligner names, for help/error text.
[[nodiscard]] std::string aligner_names();

}  // namespace salign::cli
