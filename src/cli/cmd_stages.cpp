#include <ostream>

#include "cli/arg_parser.hpp"
#include "cli/commands.hpp"
#include "core/stage/stage.hpp"
#include "util/table.hpp"

namespace salign::cli {

namespace {

ArgParser make_parser() {
  ArgParser p("stages",
              "Inspects a Sample-Align-D checkpoint directory written by\n"
              "'salign align --checkpoint-dir': prints the stage manifest\n"
              "(one row per completed pipeline stage, in execution order)\n"
              "and optionally re-reads every artifact to verify its content\n"
              "digest.");
  p.option("dir", "dir", "", "checkpoint directory (required)");
  p.flag("verify",
         "re-read every artifact file and check it against the manifest\n"
         "digest; exit 1 if any is missing or corrupt");
  p.flag("repair",
         "quarantine corrupt artifacts (renamed to <file>.corrupt), drop\n"
         "missing ones, and rewrite the manifest with only the verified\n"
         "rows, so 'align --resume' recomputes exactly what was lost");
  return p;
}

}  // namespace

int run_stages(std::span<const std::string> args, std::ostream& out,
               std::ostream& err) {
  ArgParser p = make_parser();
  try {
    p.parse(args);
    if (p.help_requested()) {
      out << p.usage();
      return 0;
    }
    if (p.get("dir").empty()) throw UsageError("--dir is required");

    if (p.get_flag("repair")) {
      const core::stage::RepairReport rep =
          core::stage::repair_checkpoint(p.get("dir"));
      if (!rep.manifest_ok) {
        out << "manifest unreadable; quarantined — resume will recompute "
               "all stages\n";
        return kExitOk;
      }
      out << "kept " << rep.kept.size() << ", quarantined "
          << rep.quarantined.size() << ", dropped " << rep.dropped.size()
          << "\n";
      for (const auto& f : rep.quarantined) out << "  quarantined " << f << "\n";
      for (const auto& f : rep.dropped) out << "  dropped " << f << "\n";
      return kExitOk;
    }

    const core::stage::Manifest m = core::stage::read_manifest(p.get("dir"));
    out << "checkpoint: format v" << m.format_version << ", pipeline "
        << m.pipeline_hash.hex() << ", " << m.records.size() << " stage"
        << (m.records.size() == 1 ? "" : "s") << "\n";

    const bool verify = p.get_flag("verify");
    bool all_ok = true;
    util::Table table(verify ? std::vector<std::string>{"#", "stage", "step",
                                                        "bytes", "file",
                                                        "artifact"}
                             : std::vector<std::string>{"#", "stage", "step",
                                                        "bytes", "file"});
    for (const auto& rec : m.records) {
      std::vector<std::string> row{
          std::to_string(rec.index), rec.name,
          rec.paper_step > 0 ? std::to_string(rec.paper_step) : "-",
          std::to_string(rec.bytes), rec.file};
      if (verify) {
        std::string status;
        try {
          par::Bytes payload;
          status = core::stage::read_artifact(p.get("dir"), rec, payload)
                       ? "ok"
                       : "CORRUPT";
        } catch (const std::exception&) {
          status = "MISSING";
        }
        if (status != "ok") all_ok = false;
        row.push_back(status);
      }
      table.add_row(std::move(row));
    }
    out << table.to_string();
    if (verify) {
      out << (all_ok ? "all artifacts verified\n"
                     : "verification FAILED\n");
      return all_ok ? kExitOk : kExitRuntime;
    }
    return kExitOk;
  } catch (const UsageError& e) {
    err << "salign stages: " << e.what() << "\n\n" << p.usage();
    return kExitUsage;
  } catch (...) {
    return classify_error("stages", err);
  }
}

}  // namespace salign::cli
