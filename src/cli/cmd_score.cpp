#include <fstream>
#include <ostream>

#include "cli/arg_parser.hpp"
#include "cli/commands.hpp"
#include "msa/alignment.hpp"
#include "msa/scoring.hpp"
#include "workload/balibase.hpp"

namespace salign::cli {

namespace {

ArgParser make_parser() {
  ArgParser p("score",
              "Scores a test alignment against a trusted reference:\n"
              "Q (correctly aligned residue pairs / reference pairs, the\n"
              "PREFAB measure of the paper's Table 2), TC (total columns)\n"
              "and SP (affine sum-of-pairs). Rows are matched by id.");
  p.option("test", "file", "", "test alignment (aligned FASTA)");
  p.option("ref", "file", "", "reference alignment (aligned FASTA)");
  p.option("core-min-run", "n", "0",
           "also score on core blocks: runs of >= n full-occupancy "
           "reference columns (0 = off; BAliBASE-style)");
  return p;
}

msa::Alignment read_alignment(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  return msa::read_aligned_fasta(f);
}

}  // namespace

int run_score(std::span<const std::string> args, std::ostream& out,
              std::ostream& err) {
  ArgParser p = make_parser();
  try {
    p.parse(args);
    if (p.help_requested()) {
      out << p.usage();
      return 0;
    }
    if (p.get("test").empty() || p.get("ref").empty())
      throw UsageError("--test and --ref are required");

    const msa::Alignment test = read_alignment(p.get("test"));
    const msa::Alignment ref = read_alignment(p.get("ref"));
    const auto core_run =
        static_cast<std::size_t>(p.get_int("core-min-run", 0, 1 << 20));

    const auto& matrix = bio::SubstitutionMatrix::blosum62();
    out << "rows:       " << ref.num_rows() << "\n";
    out << "Q:          " << msa::q_score(test, ref) << "\n";
    out << "TC:         " << msa::tc_score(test, ref) << "\n";
    out << "SP(test):   "
        << msa::sp_score(test, matrix, matrix.default_gaps()) << "\n";
    out << "SP(ref):    "
        << msa::sp_score(ref, matrix, matrix.default_gaps()) << "\n";
    if (core_run > 0) {
      const std::vector<bool> mask =
          workload::core_block_mask(ref, core_run);
      std::size_t cores = 0;
      for (const bool b : mask) cores += b ? 1 : 0;
      out << "core cols:  " << cores << " / " << ref.num_cols() << "\n";
      out << "Q(core):    " << msa::q_score(test, ref, mask) << "\n";
      out << "TC(core):   " << msa::tc_score(test, ref, mask) << "\n";
    }
    return 0;
  } catch (const UsageError& e) {
    err << "salign score: " << e.what() << "\n\n" << p.usage();
    return kExitUsage;
  } catch (...) {
    return classify_error("score", err);
  }
}

}  // namespace salign::cli
