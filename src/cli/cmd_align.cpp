#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>

#include "bio/fasta.hpp"
#include "cli/arg_parser.hpp"
#include "cli/commands.hpp"
#include "core/sample_align_d.hpp"
#include "msa/alignment.hpp"
#include "msa/clustal_format.hpp"
#include "msa/scoring.hpp"
#include "util/io.hpp"
#include "util/thread_pool.hpp"

namespace salign::cli {

namespace {

ArgParser make_parser() {
  ArgParser p("align",
              "Aligns the sequences of a FASTA file. With --procs 1 the\n"
              "configured sequential aligner runs directly; with more, the\n"
              "Sample-Align-D pipeline distributes the input over simulated\n"
              "cluster ranks (k-mer rank sample sort, per-bucket alignment,\n"
              "global-ancestor tweak, glue).");
  p.option("in", "file", "", "input FASTA file (unaligned)");
  p.option("out", "file", "-", "output alignment ('-' = stdout)");
  p.option("format", "name", "fasta",
           "output format: fasta (aligned FASTA) or clustal");
  p.option("procs", "p", "4", "simulated processors");
  p.option("threads", "t", "0",
           "worker threads per rank for the sequential aligner's parallel\n"
           "passes (distance matrices, progressive merges); 0 = auto:\n"
           "hardware concurrency capped at 16. Never changes the output");
  p.option("aligner", "name", "muscle",
           "per-bucket sequential aligner: " + aligner_names());
  p.option("rank-mode", "mode", "globalized",
           "'globalized' (paper) or 'local' (predecessor [34])");
  p.option("samples", "k", "0",
           "samples contributed per processor (0 = paper default p-1)");
  p.flag("polish", "re-align the most divergent rows after the glue (§5)");
  p.flag("no-ancestor",
         "skip the global-ancestor tweak (ablation; block-diagonal glue)");
  p.option("checkpoint-dir", "dir", "",
           "persist every completed pipeline stage to this directory\n"
           "(artifact files + manifest.tsv); inspect with 'salign stages'");
  p.flag("resume",
         "with --checkpoint-dir: load completed stages back instead of\n"
         "recomputing them. Bit-identical to a fresh run for any --threads");
  p.flag("cache",
         "serve repeated per-bucket aligner work (distance matrices,\n"
         "guide trees) from the process-wide artifact cache (muscle only;\n"
         "never changes output)");
  p.option("deadline", "dur", "0",
           "wall-clock budget, e.g. 30, 2.5s, 250ms, 1.5m (bare numbers are\n"
           "seconds; 0 = none). The pipeline stops\n"
           "cooperatively at the next stage/chunk boundary, leaves a valid\n"
           "checkpoint, and exits 4; --resume completes bit-identically");
  p.option("max-memory", "size", "0",
           "peak-memory bound, e.g. 512m or 1.5g (0 = none). Exceeding it is\n"
           "degraded gracefully — profile-merge trace budgets shrink (same\n"
           "output, checkpointed traceback) — never aborted");
  p.flag("stats", "print the per-stage pipeline report to stderr");
  p.flag("sp", "print the alignment's SP score to stderr");
  return p;
}

}  // namespace

int run_align(std::span<const std::string> args, std::ostream& out,
              std::ostream& err) {
  ArgParser p = make_parser();
  try {
    p.parse(args);
    if (p.help_requested()) {
      out << p.usage();
      return 0;
    }
    if (p.get("in").empty()) throw UsageError("--in is required");

    core::SampleAlignDConfig cfg;
    cfg.num_procs = static_cast<int>(p.get_int("procs", 1, 1024));
    const auto threads =
        static_cast<unsigned>(p.get_int("threads", 0, 1024));
    cfg.threads = threads == 0 ? util::default_threads() : threads;
    cfg.samples_per_proc = static_cast<int>(p.get_int("samples", 0, 1 << 20));
    // "muscle" (the default) is left null so the pipeline constructs it,
    // which routes phase stats and the artifact cache through it; the
    // options are identical to make_aligner("muscle", threads).
    if (p.get("aligner") != "muscle")
      cfg.local_aligner = make_aligner(p.get("aligner"), cfg.threads);
    cfg.checkpoint.dir = p.get("checkpoint-dir");
    cfg.checkpoint.resume = p.get_flag("resume");
    if (cfg.checkpoint.resume && cfg.checkpoint.dir.empty())
      throw UsageError("--resume requires --checkpoint-dir");
    cfg.use_artifact_cache = p.get_flag("cache");
    if (cfg.use_artifact_cache && p.get("aligner") != "muscle")
      throw UsageError("--cache applies to the default muscle aligner only");
    cfg.ancestor_refinement = !p.get_flag("no-ancestor");
    cfg.polish_divergent = p.get_flag("polish");
    const std::string& mode = p.get("rank-mode");
    if (mode == "globalized") {
      cfg.rank_mode = core::RankMode::Globalized;
    } else if (mode == "local") {
      cfg.rank_mode = core::RankMode::LocalOnly;
    } else {
      throw UsageError("--rank-mode must be 'globalized' or 'local'");
    }
    cfg.budget.deadline_seconds =
        parse_duration_seconds(p.get("deadline"), "--deadline");
    cfg.budget.max_memory_bytes =
        parse_byte_size(p.get("max-memory"), "--max-memory");

    const std::vector<bio::Sequence> seqs = bio::read_fasta_file(p.get("in"));
    core::PipelineStats stats;
    const msa::Alignment aln =
        core::SampleAlignD(cfg).align(seqs, &stats);

    const std::string format = p.get("format");
    if (format != "fasta" && format != "clustal")
      throw UsageError("--format must be fasta or clustal");
    const auto write_alignment_to = [&](std::ostream& os) {
      if (format == "clustal") {
        msa::write_clustal(os, aln);
      } else {
        msa::write_aligned_fasta(os, aln);
      }
    };
    if (p.get("out") == "-") {
      write_alignment_to(out);
    } else {
      std::ostringstream text;
      write_alignment_to(text);
      util::retry_io("file.write", [&] {
        util::write_text_file_durable(p.get("out"), text.str());
      });
    }
    if (p.get_flag("stats")) err << stats.summary();
    if (p.get_flag("sp")) {
      const auto& m = *cfg.matrix;
      err << "SP score: "
          << msa::sp_score(aln, m, m.default_gaps(),
                           aln.num_rows() > 256 ? 4096 : 0)
          << "\n";
    }
    return kExitOk;
  } catch (const UsageError& e) {
    err << "salign align: " << e.what() << "\n\n" << p.usage();
    return kExitUsage;
  } catch (...) {
    return classify_error("align", err);
  }
}

}  // namespace salign::cli
