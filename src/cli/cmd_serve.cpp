#include <csignal>
#include <chrono>
#include <filesystem>
#include <ostream>
#include <string>
#include <thread>

#include "cli/arg_parser.hpp"
#include "cli/commands.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "util/io.hpp"
#include "util/table.hpp"

namespace salign::cli {

namespace {

namespace fs = std::filesystem;

/// Set by the SIGTERM/SIGINT handler, polled by the daemon's accept loop.
/// File-static because signal handlers can't carry context; `salign serve`
/// runs one daemon per process so a single flag is the honest model.
volatile std::sig_atomic_t g_serve_stop = 0;

extern "C" void serve_stop_handler(int) { g_serve_stop = 1; }

ArgParser make_serve_parser() {
  ArgParser p("serve",
              "Runs the alignment daemon: accepts jobs over a Unix-domain\n"
              "socket (newline-delimited JSON, docs/serve_protocol.md),\n"
              "admission-controls them into a bounded queue, journals every\n"
              "state transition durably, and executes them one at a time\n"
              "with per-job deadlines/memory bounds and per-job checkpoint\n"
              "directories. Survives kill -9: on restart the journal is\n"
              "replayed and interrupted jobs resume bit-identically.\n"
              "SIGTERM/SIGINT drain gracefully under --drain-deadline.");
  p.option("socket", "path", "", "Unix-domain socket path to serve on");
  p.option("journal-dir", "dir", "",
           "job journal + per-job checkpoint directory (created if absent)");
  p.option("queue-limit", "n", "64",
           "admission bound: submits beyond this many queued jobs are shed\n"
           "with an 'overloaded' response and a retry_after_ms hint");
  p.option("drain-deadline", "dur", "10s",
           "on shutdown, how long the running job may finish before its\n"
           "cancel token is pulled (it checkpoints and resumes next start)");
  p.option("deadline", "dur", "0",
           "default per-job wall-clock budget for jobs that set none\n"
           "(e.g. 30, 2.5s, 1.5m; 0 = none)");
  p.option("max-memory", "size", "0",
           "default per-job memory bound for jobs that set none\n"
           "(e.g. 512m, 1.5g; 0 = none)");
  p.flag("no-cache",
         "disable the process-wide artifact cache (enabled by default in\n"
         "the daemon — repeated jobs share guide-tree/distance work)");
  p.flag("stop",
         "do not start a daemon: ask the one serving --socket to drain and\n"
         "exit, then return");
  return p;
}

ArgParser make_submit_parser() {
  ArgParser p("submit",
              "Submits an alignment job to a serving daemon and prints the\n"
              "job id. The daemon journals the job durably before the\n"
              "acknowledgment, so an accepted job survives kill -9. With\n"
              "--wait, polls until the job is terminal and mirrors its exit\n"
              "code.");
  p.option("socket", "path", "", "daemon socket path");
  p.option("in", "file", "", "input FASTA file (unaligned)");
  p.option("out", "file", "", "output alignment file (written durably)");
  p.option("format", "name", "fasta", "output format: fasta or clustal");
  p.option("aligner", "name", "muscle",
           "per-bucket sequential aligner: " + aligner_names());
  p.option("procs", "p", "4", "simulated processors");
  p.option("threads", "t", "0",
           "worker threads within the job (0 = daemon auto)");
  p.option("deadline", "dur", "0",
           "per-job wall-clock budget (e.g. 2.5s; 0 = daemon default). A\n"
           "blown deadline evicts the job, leaving a resumable checkpoint");
  p.option("max-memory", "size", "0",
           "per-job memory bound (e.g. 1.5g; 0 = daemon default)");
  p.flag("wait", "poll until the job is terminal; exit with its exit code");
  return p;
}

ArgParser make_jobs_parser() {
  ArgParser p("jobs",
              "Lists a serving daemon's jobs (queued, running and terminal)\n"
              "as a table, or cancels one with --cancel.");
  p.option("socket", "path", "", "daemon socket path");
  p.option("cancel", "id", "", "cancel this job instead of listing");
  return p;
}

/// Absolutizes a client-side path: the daemon's cwd is not the client's,
/// so relative paths are resolved before they cross the socket.
std::string absolutize(const std::string& path) {
  return fs::absolute(fs::path(path)).lexically_normal().string();
}

/// Maps a daemon error response to the CLI taxonomy. "overloaded" is a
/// resource condition (exit 5: back off and retry), bad specs are usage
/// (2), unknown ids invalid input (3), everything else runtime (1).
int response_exit_code(const serve::Json& resp) {
  const std::string code = resp.get_string("code");
  if (code == "overloaded" || code == "shutting_down") return kExitResource;
  if (code == "bad_request") return kExitUsage;
  if (code == "not_found" || code == "already_terminal")
    return kExitInvalidInput;
  return kExitRuntime;
}

}  // namespace

int run_serve(std::span<const std::string> args, std::ostream& out,
              std::ostream& err) {
  ArgParser p = make_serve_parser();
  try {
    p.parse(args);
    if (p.help_requested()) {
      out << p.usage();
      return 0;
    }
    if (p.get("socket").empty()) throw UsageError("--socket is required");

    if (p.get_flag("stop")) {
      serve::Json::Object req;
      req.emplace("v", serve::kWireVersion);
      req.emplace("op", "shutdown");
      const serve::Json resp =
          serve::request(p.get("socket"), serve::Json(std::move(req)));
      if (!resp.get_bool("ok"))
        throw std::runtime_error("daemon refused shutdown: " +
                                 resp.get_string("error", resp.dump()));
      out << "daemon draining\n";
      return kExitOk;
    }

    if (p.get("journal-dir").empty())
      throw UsageError("--journal-dir is required");
    serve::DaemonOptions opts;
    opts.socket_path = p.get("socket");
    opts.journal_dir = absolutize(p.get("journal-dir"));
    opts.queue_limit = static_cast<int>(p.get_int("queue-limit", 1, 100000));
    opts.drain_deadline_seconds =
        parse_duration_seconds(p.get("drain-deadline"), "--drain-deadline");
    opts.default_deadline_seconds =
        parse_duration_seconds(p.get("deadline"), "--deadline");
    opts.default_max_memory =
        parse_byte_size(p.get("max-memory"), "--max-memory");
    opts.use_artifact_cache = !p.get_flag("no-cache");
    opts.log = &err;
    opts.stop_flag = &g_serve_stop;

    g_serve_stop = 0;
    std::signal(SIGTERM, serve_stop_handler);
    std::signal(SIGINT, serve_stop_handler);
    serve::Daemon daemon(std::move(opts));
    daemon.run();
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    return kExitOk;
  } catch (const UsageError& e) {
    err << "salign serve: " << e.what() << "\n\n" << p.usage();
    return kExitUsage;
  } catch (...) {
    return classify_error("serve", err);
  }
}

int run_submit(std::span<const std::string> args, std::ostream& out,
               std::ostream& err) {
  ArgParser p = make_submit_parser();
  try {
    p.parse(args);
    if (p.help_requested()) {
      out << p.usage();
      return 0;
    }
    if (p.get("socket").empty()) throw UsageError("--socket is required");
    if (p.get("in").empty()) throw UsageError("--in is required");
    if (p.get("out").empty()) throw UsageError("--out is required");

    serve::Json::Object req;
    req.emplace("v", serve::kWireVersion);
    req.emplace("op", "submit");
    req.emplace("in", absolutize(p.get("in")));
    req.emplace("out", absolutize(p.get("out")));
    req.emplace("format", p.get("format"));
    req.emplace("aligner", p.get("aligner"));
    req.emplace("procs", p.get_int("procs", 1, 1024));
    req.emplace("threads", p.get_int("threads", 0, 1024));
    req.emplace("deadline",
                parse_duration_seconds(p.get("deadline"), "--deadline"));
    req.emplace("max_memory",
                parse_byte_size(p.get("max-memory"), "--max-memory"));

    const std::string socket = p.get("socket");
    const serve::Json resp =
        serve::request(socket, serve::Json(std::move(req)));
    if (!resp.get_bool("ok")) {
      err << "salign submit: daemon rejected the job ["
          << resp.get_string("code", "error")
          << "]: " << resp.get_string("error", resp.dump()) << "\n";
      const double retry_ms = resp.get_number("retry_after_ms", 0.0);
      if (retry_ms > 0)
        err << "salign submit: retry after " << retry_ms << " ms\n";
      return response_exit_code(resp);
    }
    const std::string id = resp.get_string("id");
    out << id << "\n";
    if (!p.get_flag("wait")) return kExitOk;

    // Client-side completion poll: the protocol is deliberately
    // notification-free (one request, one response), so waiting is the
    // client's loop, and a daemon crash mid-wait surfaces here as a
    // connect failure rather than a hang.
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      serve::Json::Object q;
      q.emplace("v", serve::kWireVersion);
      q.emplace("op", "status");
      q.emplace("id", id);
      const serve::Json st = serve::request(socket, serve::Json(std::move(q)));
      if (!st.get_bool("ok"))
        throw std::runtime_error("status of " + id + " failed: " +
                                 st.get_string("error", st.dump()));
      const serve::Json* job = st.find("job");
      if (job == nullptr) throw std::runtime_error("malformed status reply");
      const std::string state = job->get_string("state");
      if (!serve::is_terminal(serve::job_state_from_string(state))) continue;
      const int exit_code =
          static_cast<int>(job->get_number("exit_code", 0.0));
      const std::string error = job->get_string("error");
      err << "salign submit: " << id << " " << state
          << (error.empty() ? "" : (": " + error)) << "\n";
      return exit_code;
    }
  } catch (const UsageError& e) {
    err << "salign submit: " << e.what() << "\n\n" << p.usage();
    return kExitUsage;
  } catch (...) {
    return classify_error("submit", err);
  }
}

int run_jobs(std::span<const std::string> args, std::ostream& out,
             std::ostream& err) {
  ArgParser p = make_jobs_parser();
  try {
    p.parse(args);
    if (p.help_requested()) {
      out << p.usage();
      return 0;
    }
    if (p.get("socket").empty()) throw UsageError("--socket is required");

    if (!p.get("cancel").empty()) {
      serve::Json::Object req;
      req.emplace("v", serve::kWireVersion);
      req.emplace("op", "cancel");
      req.emplace("id", p.get("cancel"));
      const serve::Json resp =
          serve::request(p.get("socket"), serve::Json(std::move(req)));
      if (!resp.get_bool("ok")) {
        err << "salign jobs: cancel failed ["
            << resp.get_string("code", "error")
            << "]: " << resp.get_string("error", resp.dump()) << "\n";
        return response_exit_code(resp);
      }
      out << p.get("cancel") << " " << resp.get_string("state") << "\n";
      return kExitOk;
    }

    serve::Json::Object req;
    req.emplace("v", serve::kWireVersion);
    req.emplace("op", "jobs");
    const serve::Json resp =
        serve::request(p.get("socket"), serve::Json(std::move(req)));
    if (!resp.get_bool("ok"))
      throw std::runtime_error("jobs query failed: " +
                               resp.get_string("error", resp.dump()));
    const serve::Json* jobs = resp.find("jobs");
    if (jobs == nullptr) throw std::runtime_error("malformed jobs reply");
    util::Table table({"id", "state", "attempts", "exit", "in", "error"});
    for (const serve::Json& job : jobs->as_array()) {
      const serve::Json* spec = job.find("spec");
      table.add_row(
          {job.get_string("id"), job.get_string("state"),
           std::to_string(static_cast<int>(job.get_number("attempts", 0.0))),
           std::to_string(static_cast<int>(job.get_number("exit_code", 0.0))),
           spec != nullptr ? spec->get_string("in") : "",
           job.get_string("error")});
    }
    out << table.to_string();
    return kExitOk;
  } catch (const UsageError& e) {
    err << "salign jobs: " << e.what() << "\n\n" << p.usage();
    return kExitUsage;
  } catch (...) {
    return classify_error("jobs", err);
  }
}

}  // namespace salign::cli
