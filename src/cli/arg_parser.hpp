#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace salign::cli {

/// User-facing command-line error (unknown flag, missing value, bad
/// number). The dispatcher prints `what()` plus the command's usage text
/// and exits with status 2, keeping library exceptions (bad input files
/// etc.) distinct from usage mistakes.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Small declarative parser for `salign <command>` argument lists.
///
/// Supports GNU-style long options only (`--name value` or `--name=value`),
/// boolean flags, and ordered positionals. Every option carries help text
/// and a default so `usage()` is always complete; commands declare their
/// interface once and both --help and error paths reuse it.
class ArgParser {
 public:
  ArgParser(std::string command, std::string summary);

  /// Declares a boolean flag (`--name`). Returns *this for chaining.
  ArgParser& flag(std::string name, std::string help);

  /// Declares a value option (`--name <value_name>`, default shown in
  /// usage).
  ArgParser& option(std::string name, std::string value_name,
                    std::string default_value, std::string help);

  /// Declares the next positional argument.
  ArgParser& positional(std::string name, std::string help,
                        bool required = true);

  /// Parses the argument vector (already stripped of program and command
  /// tokens). Throws UsageError on any problem. `--help` sets help_requested
  /// and stops parsing.
  void parse(std::span<const std::string> args);

  [[nodiscard]] bool help_requested() const { return help_requested_; }

  [[nodiscard]] bool get_flag(std::string_view name) const;
  [[nodiscard]] const std::string& get(std::string_view name) const;
  /// Integer option with inclusive range validation.
  [[nodiscard]] long get_int(std::string_view name, long min, long max) const;
  /// Floating option with inclusive range validation.
  [[nodiscard]] double get_double(std::string_view name, double min,
                                  double max) const;
  [[nodiscard]] std::span<const std::string> positionals() const {
    return positionals_given_;
  }

  /// Full usage text (summary, positionals, options with defaults).
  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    bool set = false;
  };
  struct Option {
    std::string name;
    std::string value_name;
    std::string help;
    std::string value;  // default until parse() overwrites
  };
  struct Positional {
    std::string name;
    std::string help;
    bool required = true;
  };

  Flag* find_flag(std::string_view name);
  Option* find_option(std::string_view name);
  [[nodiscard]] const Option& require_option(std::string_view name) const;

  std::string command_;
  std::string summary_;
  std::vector<Flag> flags_;
  std::vector<Option> options_;
  std::vector<Positional> positionals_decl_;
  std::vector<std::string> positionals_given_;
  bool help_requested_ = false;
};

/// Parses a human byte size: "512m", "1.5g", "4096k", "1048576" -> bytes.
/// Suffixes k/m/g (case insensitive, binary multiples); a bare number is
/// bytes. Fractional values require a suffix ("1.5g" works, "1.5" alone
/// does not — half a byte is not a thing) and round down to whole bytes.
/// `flag` names the option in the UsageError diagnostic ("--max-memory").
[[nodiscard]] std::uint64_t parse_byte_size(const std::string& text,
                                            std::string_view flag);

/// Parses a human duration into seconds: "250ms", "2.5s", "90", "1.5m",
/// "2h" -> seconds. A bare number (integer or fractional) is seconds;
/// suffixes ms/s/m/h scale it. Negative values are rejected. `flag` names
/// the option in the UsageError diagnostic ("--deadline").
[[nodiscard]] double parse_duration_seconds(const std::string& text,
                                            std::string_view flag);

}  // namespace salign::cli
