#include <ostream>
#include <sstream>

#include "bio/fasta.hpp"
#include "cli/arg_parser.hpp"
#include "cli/commands.hpp"
#include "msa/alignment.hpp"
#include "util/io.hpp"
#include "workload/balibase.hpp"
#include "workload/genome.hpp"
#include "workload/prefab.hpp"
#include "workload/rose.hpp"
#include "workload/sabmark.hpp"

namespace salign::cli {

namespace {

ArgParser make_parser() {
  ArgParser p(
      "generate",
      "Emits the library's synthetic workloads as FASTA files so that any\n"
      "external tool can be run on the same inputs as the benches:\n"
      "  rose      one ROSE-style family (the paper's Fig. 4/5 input);\n"
      "  genome    a random sample from the simulated archaeal genome\n"
      "            protein pool (the paper's Fig. 6 input);\n"
      "  prefab    PREFAB-style cases with reference alignments (Table 2);\n"
      "  balibase  BAliBASE-like categories with references (§5);\n"
      "  sabmark   SABmark-like superfamily/twilight groups (§5).\n"
      "Suite kinds write <out><i>.fasta plus <out><i>.ref.afa per case.");
  p.option("kind", "name", "rose",
           "rose | genome | prefab | balibase | sabmark");
  p.option("out", "path", "",
           "output file (rose/genome) or path prefix (suites)");
  p.option("n", "count", "100",
           "sequences (rose/genome) or cases/groups per suite");
  p.option("length", "L", "300", "average sequence length (rose/genome)");
  p.option("relatedness", "r", "800", "ROSE relatedness knob (rose)");
  p.option("seed", "s", "42", "random seed");
  return p;
}

void write_case(const std::string& prefix, std::size_t index,
                std::span<const bio::Sequence> seqs,
                const msa::Alignment& reference) {
  const std::string base = prefix + std::to_string(index);
  bio::write_fasta_file(base + ".fasta", seqs);
  std::ostringstream ref;
  msa::write_aligned_fasta(ref, reference);
  util::retry_io("file.write", [&] {
    util::write_text_file_durable(base + ".ref.afa", ref.str());
  });
}

}  // namespace

int run_generate(std::span<const std::string> args, std::ostream& out,
                 std::ostream& err) {
  ArgParser p = make_parser();
  try {
    p.parse(args);
    if (p.help_requested()) {
      out << p.usage();
      return 0;
    }
    if (p.get("out").empty()) throw UsageError("--out is required");
    const std::string kind = p.get("kind");
    const auto n = static_cast<std::size_t>(p.get_int("n", 1, 1 << 22));
    const auto length =
        static_cast<std::size_t>(p.get_int("length", 4, 1 << 20));
    const auto seed =
        static_cast<std::uint64_t>(p.get_int("seed", 0, 1L << 62));

    if (kind == "rose") {
      const auto seqs = workload::rose_sequences(
          {.num_sequences = n,
           .average_length = length,
           .relatedness = p.get_double("relatedness", 1.0, 1e9),
           .seed = seed});
      bio::write_fasta_file(p.get("out"), seqs);
      out << "wrote " << seqs.size() << " sequences to " << p.get("out")
          << "\n";
      return 0;
    }
    if (kind == "genome") {
      workload::GenomeParams gp;
      gp.mean_length = length;
      gp.seed = seed;
      const workload::GenomeSimulator sim(gp);
      const auto seqs = sim.sample(n, seed + 1);
      bio::write_fasta_file(p.get("out"), seqs);
      out << "wrote " << seqs.size() << " genome proteins to "
          << p.get("out") << "\n";
      return 0;
    }
    if (kind == "prefab") {
      workload::PrefabParams pp;
      pp.num_cases = n;
      pp.seed = seed;
      const auto cases = workload::prefab_cases(pp);
      for (std::size_t i = 0; i < cases.size(); ++i)
        write_case(p.get("out"), i, cases[i].sequences, cases[i].reference);
      out << "wrote " << cases.size() << " PREFAB-style cases to "
          << p.get("out") << "*\n";
      return 0;
    }
    if (kind == "balibase") {
      workload::BalibaseParams bp;
      bp.cases_per_category = std::max<std::size_t>(1, n / 5);
      bp.seed = seed;
      const auto cases = workload::balibase_cases(bp);
      for (std::size_t i = 0; i < cases.size(); ++i)
        write_case(p.get("out"), i, cases[i].sequences, cases[i].reference);
      out << "wrote " << cases.size() << " BAliBASE-like cases to "
          << p.get("out") << "*\n";
      return 0;
    }
    if (kind == "sabmark") {
      workload::SabmarkParams sp;
      sp.groups_per_tier = std::max<std::size_t>(1, n / 2);
      sp.seed = seed;
      const auto groups = workload::sabmark_groups(sp);
      for (std::size_t i = 0; i < groups.size(); ++i)
        write_case(p.get("out"), i, groups[i].sequences, groups[i].reference);
      out << "wrote " << groups.size() << " SABmark-like groups to "
          << p.get("out") << "*\n";
      return 0;
    }
    throw UsageError("unknown kind '" + kind + "'");
  } catch (const UsageError& e) {
    err << "salign generate: " << e.what() << "\n\n" << p.usage();
    return kExitUsage;
  } catch (...) {
    return classify_error("generate", err);
  }
}

}  // namespace salign::cli
