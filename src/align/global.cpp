#include "align/global.hpp"

#include "align/engine/engine.hpp"

namespace salign::align {

PairwiseAlignment global_align(std::span<const std::uint8_t> a,
                               std::span<const std::uint8_t> b,
                               const bio::SubstitutionMatrix& matrix,
                               bio::GapPenalties gaps) {
  return engine::global_align(a, b, matrix, gaps, engine::default_backend());
}

}  // namespace salign::align
