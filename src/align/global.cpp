#include "align/global.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/matrix.hpp"

namespace salign::align {

namespace {

constexpr float kNegInf = -0.25F * std::numeric_limits<float>::max();

// Packed traceback nibbles: for each DP cell we remember, per state, which
// state it came from.
enum State : std::uint8_t { kM = 0, kX = 1, kY = 2 };  // X: gap in A, Y: gap in B

struct Cell {
  // came_from[s] = predecessor state of state s at this cell.
  std::uint8_t came_from[3] = {kM, kM, kM};
};

}  // namespace

PairwiseAlignment global_align(std::span<const std::uint8_t> a,
                               std::span<const std::uint8_t> b,
                               const bio::SubstitutionMatrix& matrix,
                               bio::GapPenalties gaps) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();

  PairwiseAlignment out;
  if (m == 0 && n == 0) return out;
  if (m == 0) {
    out.ops.assign(n, EditOp::GapInA);
    out.score = -(gaps.open + gaps.extend * static_cast<float>(n - 1));
    return out;
  }
  if (n == 0) {
    out.ops.assign(m, EditOp::GapInB);
    out.score = -(gaps.open + gaps.extend * static_cast<float>(m - 1));
    return out;
  }

  // Rolling score rows, full traceback.
  std::vector<float> prev_m(n + 1), prev_x(n + 1), prev_y(n + 1);
  std::vector<float> cur_m(n + 1), cur_x(n + 1), cur_y(n + 1);
  util::Matrix<Cell> trace(m + 1, n + 1);

  prev_m[0] = 0.0F;
  prev_x[0] = kNegInf;
  prev_y[0] = kNegInf;
  for (std::size_t j = 1; j <= n; ++j) {
    prev_m[j] = kNegInf;
    prev_x[j] = -(gaps.open + gaps.extend * static_cast<float>(j - 1));
    prev_y[j] = kNegInf;
    trace(0, j).came_from[kX] = kX;
  }

  for (std::size_t i = 1; i <= m; ++i) {
    cur_m[0] = kNegInf;
    cur_x[0] = kNegInf;
    cur_y[0] = -(gaps.open + gaps.extend * static_cast<float>(i - 1));
    trace(i, 0).came_from[kY] = kY;

    for (std::size_t j = 1; j <= n; ++j) {
      Cell& t = trace(i, j);

      // State M: consume a[i-1] and b[j-1].
      const float sub = matrix.score(a[i - 1], b[j - 1]);
      float best = prev_m[j - 1];
      std::uint8_t from = kM;
      if (prev_x[j - 1] > best) {
        best = prev_x[j - 1];
        from = kX;
      }
      if (prev_y[j - 1] > best) {
        best = prev_y[j - 1];
        from = kY;
      }
      cur_m[j] = best + sub;
      t.came_from[kM] = from;

      // State X: gap in A (consume b[j-1]); horizontal move.
      const float open_x = cur_m[j - 1] - gaps.open;
      const float ext_x = cur_x[j - 1] - gaps.extend;
      const float via_y = cur_y[j - 1] - gaps.open;
      if (ext_x >= open_x && ext_x >= via_y) {
        cur_x[j] = ext_x;
        t.came_from[kX] = kX;
      } else if (open_x >= via_y) {
        cur_x[j] = open_x;
        t.came_from[kX] = kM;
      } else {
        cur_x[j] = via_y;
        t.came_from[kX] = kY;
      }

      // State Y: gap in B (consume a[i-1]); vertical move.
      const float open_y = prev_m[j] - gaps.open;
      const float ext_y = prev_y[j] - gaps.extend;
      const float via_x = prev_x[j] - gaps.open;
      if (ext_y >= open_y && ext_y >= via_x) {
        cur_y[j] = ext_y;
        t.came_from[kY] = kY;
      } else if (open_y >= via_x) {
        cur_y[j] = open_y;
        t.came_from[kY] = kM;
      } else {
        cur_y[j] = via_x;
        t.came_from[kY] = kX;
      }
    }
    std::swap(prev_m, cur_m);
    std::swap(prev_x, cur_x);
    std::swap(prev_y, cur_y);
  }

  // Final state: best of the three at (m, n).
  std::uint8_t state = kM;
  float best = prev_m[n];
  if (prev_x[n] > best) {
    best = prev_x[n];
    state = kX;
  }
  if (prev_y[n] > best) {
    best = prev_y[n];
    state = kY;
  }
  out.score = best;

  // Traceback.
  std::size_t i = m;
  std::size_t j = n;
  while (i > 0 || j > 0) {
    const std::uint8_t from = trace(i, j).came_from[state];
    switch (state) {
      case kM:
        out.ops.push_back(EditOp::Match);
        --i;
        --j;
        break;
      case kX:
        out.ops.push_back(EditOp::GapInA);
        --j;
        break;
      case kY:
        out.ops.push_back(EditOp::GapInB);
        --i;
        break;
      default: break;
    }
    state = from;
  }
  std::reverse(out.ops.begin(), out.ops.end());
  return out;
}

}  // namespace salign::align
