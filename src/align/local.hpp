#pragma once

#include <span>

#include "align/pairwise.hpp"

namespace salign::align {

/// Local alignment with affine gaps (Smith–Waterman / Gotoh). Returns the
/// best-scoring local path and its start offsets; an empty path (score 0)
/// means no positive-scoring region exists.
///
/// Sample-Align-D itself aligns globally, but the divide-and-conquer
/// baselines the paper discusses ([22]) are Smith–Waterman based, and the
/// T-Coffee library uses local anchors; this kernel serves both.
[[nodiscard]] LocalAlignment local_align(std::span<const std::uint8_t> a,
                                         std::span<const std::uint8_t> b,
                                         const bio::SubstitutionMatrix& matrix,
                                         bio::GapPenalties gaps);

}  // namespace salign::align
