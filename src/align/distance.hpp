#pragma once

#include <span>

#include "align/pairwise.hpp"

namespace salign::align {

/// Fraction of alignment match columns whose residues are identical,
/// over the number of match columns (gap columns excluded). Returns 0 for
/// paths with no match column.
[[nodiscard]] double fractional_identity(std::span<const std::uint8_t> a,
                                         std::span<const std::uint8_t> b,
                                         std::span<const EditOp> ops);

/// Kimura's (1983) correction of fractional identity into an evolutionary
/// distance: D = 1 - identity, d = -ln(1 - D - D^2/5). CLUSTALW uses this
/// transform for its guide-tree distances; saturates (and is clamped) for
/// identity below ~25%.
[[nodiscard]] double kimura_distance(double fractional_identity);

/// Convenience: globally aligns and returns the Kimura distance. This is
/// the O(L^2) "accurate" distance of the CLUSTALW-style baseline.
[[nodiscard]] double alignment_distance(std::span<const std::uint8_t> a,
                                        std::span<const std::uint8_t> b,
                                        const bio::SubstitutionMatrix& matrix,
                                        bio::GapPenalties gaps);

}  // namespace salign::align
