#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <utility>

#include "align/engine/batch.hpp"
#include "align/engine/engine.hpp"
#include "align/pairwise.hpp"
#include "bio/sequence.hpp"
#include "util/matrix.hpp"

namespace salign::align {

/// Fraction of alignment match columns whose residues are identical,
/// over the number of match columns (gap columns excluded). Returns 0 for
/// paths with no match column.
[[nodiscard]] double fractional_identity(std::span<const std::uint8_t> a,
                                         std::span<const std::uint8_t> b,
                                         std::span<const EditOp> ops);

/// Saturation cap shared by every guide-tree distance source (Kimura and
/// score-normalized), so mixed-source distances live on comparable scales.
inline constexpr double kMaxGuideTreeDistance = 5.0;

/// Kimura's (1983) correction of fractional identity into an evolutionary
/// distance: D = 1 - identity, d = -ln(1 - D - D^2/5). CLUSTALW uses this
/// transform for its guide-tree distances; saturates (and is clamped to
/// kMaxGuideTreeDistance) once the log argument reaches
/// exp(-kMaxGuideTreeDistance), i.e. identity below ~15% (the argument's
/// root sits at D ~ 0.854). The clamp is a saturation, not a cliff: values
/// approach the cap continuously from below (pinned in
/// tests/align_traceback_test.cpp).
[[nodiscard]] double kimura_distance(double fractional_identity);

/// Convenience: globally aligns and returns the Kimura distance. This is
/// the O(L^2) "accurate" distance of the CLUSTALW-style baseline.
[[nodiscard]] double alignment_distance(std::span<const std::uint8_t> a,
                                        std::span<const std::uint8_t> b,
                                        const bio::SubstitutionMatrix& matrix,
                                        bio::GapPenalties gaps);

// ---------------------------------------------------------------------------
// Batched distance-matrix drivers
//
// Every O(N^2) guide-tree distance pass in the library routes through these
// so that (a) the pair enumeration, threading, and determinism rules live in
// one place, and (b) score-only passes reach the striped integer engine
// (engine::ScoreBatch) with one query profile per row instead of per pair.
// ---------------------------------------------------------------------------

/// Maps a linear index onto the strict-lower-triangle pair enumeration
/// (1,0), (2,0), (2,1), (3,0), ... — i ascending, then j < i ascending: the
/// exact order of the historical nested consumer loops, and the order in
/// which alignment_distance_matrix invokes its visitor.
[[nodiscard]] std::pair<std::size_t, std::size_t> pair_from_index(
    std::size_t p);

/// Deterministic threaded all-pairs driver: fills d(i, j) = fn(i, j) for
/// every j < i (diagonal stays 0) via par::parallel_for over the linear
/// pair index. `fn` must be thread-safe and independent per pair — it may
/// write per-pair side state (e.g. a preallocated posterior slot), but
/// nothing shared across pairs; each pair then has exactly one writer and
/// the result is bit-identical for every thread count.
[[nodiscard]] util::SymmetricMatrix<double> pairwise_distance_matrix(
    std::size_t n, unsigned threads,
    const std::function<double(std::size_t, std::size_t)>& fn);

/// Per-pair alignments handed to an alignment_distance_matrix visitor.
struct PairAlignments {
  PairwiseAlignment global;
  LocalAlignment local;  ///< filled iff PairDistanceOptions::with_local
};

/// Where the pairs of one alignment_distance_matrix call were computed.
/// Every route is bit-identical to the reference kernels; the split is the
/// perf story of the pass (CLI stats surface it).
struct PairDistanceStats {
  std::size_t pairs = 0;          ///< total pairs aligned
  std::size_t batched_int8 = 0;   ///< inter-pair int8 lanes (engine::PairBatch)
  std::size_t batch_retries = 0;  ///< batched lanes that saturated a rail
  engine::AlignBatch::Stats ladder;  ///< per-pair tier-ladder kernel runs

  PairDistanceStats& operator+=(const PairDistanceStats& o);
};

struct PairDistanceOptions {
  /// Band half-width of the pairwise DP (0 = full global alignment).
  std::size_t band = 0;
  /// par::parallel_for width of the pair loop (1 = serial). Results are
  /// bit-identical for any value.
  unsigned threads = 1;
  /// Also compute one local (Smith–Waterman) alignment per pair — the
  /// T-Coffee primary library wants both.
  bool with_local = false;
  engine::Backend backend = engine::default_backend();
  /// Where the per-pair full-alignment tier ladder starts (kAuto = batched
  /// int8 lanes for short pairs, striped int8/int16 traceback otherwise,
  /// float on promotion; kFloat pins the pre-integer-traceback behavior).
  /// Only band == 0 passes use the integer tiers — banded alignments keep
  /// the float banded kernel. Results are identical for every value.
  engine::ScoreTier first_tier = engine::ScoreTier::kAuto;
  /// When non-null, receives the pass's per-tier pair counts.
  PairDistanceStats* stats = nullptr;
};

/// Serial per-pair callback of alignment_distance_matrix, invoked in
/// pair_from_index order (i ascending, then j < i) AFTER the pair's
/// alignments were computed — possibly on another thread, but the visitor
/// itself always runs on the calling thread in deterministic order, so it
/// may mutate shared state freely (e.g. build a consistency library).
using PairVisitor = std::function<void(std::size_t i, std::size_t j,
                                       const PairAlignments& pair)>;

/// All-pairs Kimura guide-tree distances from full global (or banded)
/// pairwise alignments — the per-pair arithmetic of the historical consumer
/// loops (ClustalW stage 1, T-Coffee's library pass, `salign tree --dist
/// kimura`), unchanged, threaded over pairs. Output and visitor order are
/// bit-identical to the serial nested loops for every thread count. When a
/// visitor is given, pairs are processed in bounded blocks so per-pair
/// alignments are buffered only briefly.
[[nodiscard]] util::SymmetricMatrix<double> alignment_distance_matrix(
    std::span<const bio::Sequence> seqs, const bio::SubstitutionMatrix& matrix,
    bio::GapPenalties gaps, const PairDistanceOptions& options = {},
    const PairVisitor& visit = {});

struct ScoreDistanceOptions {
  /// par::parallel_for width over matrix rows (1 = serial; deterministic
  /// for any value).
  unsigned threads = 1;
  engine::Backend backend = engine::default_backend();
  /// Where the per-pair tier ladder starts (kAuto = int8 when viable).
  engine::ScoreTier first_tier = engine::ScoreTier::kAuto;
};

/// Upper clamp of score_distance_matrix distances — the shared guide-tree
/// saturation cap.
inline constexpr double kMaxScoreDistance = kMaxGuideTreeDistance;

/// All-pairs *score-only* distances through engine::ScoreBatch: one striped
/// integer query profile per row, scored against every earlier sequence —
/// no traceback anywhere, which is what makes this the fast guide-tree
/// path (the striped int8/int16 kernels are 3-4x the float kernel, and the
/// profile amortizes across the row).
///
///   d(i, j) = clamp(1 - S(i,j) / min(S(i,i), S(j,j)), 0, kMaxScoreDistance)
///
/// where S is the global alignment score. Self-scores <= 0 (empty or
/// pathological sequences) make the pair maximally distant. Deterministic
/// for every thread count.
[[nodiscard]] util::SymmetricMatrix<double> score_distance_matrix(
    std::span<const bio::Sequence> seqs, const bio::SubstitutionMatrix& matrix,
    bio::GapPenalties gaps, const ScoreDistanceOptions& options = {});

}  // namespace salign::align
