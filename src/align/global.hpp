#pragma once

#include <span>

#include "align/pairwise.hpp"

namespace salign::align {

/// Global alignment with affine gaps (Needleman–Wunsch with Gotoh's
/// three-state recurrence). Terminal gaps are penalized like internal ones.
///
/// Runs on the vectorized anti-diagonal engine (align/engine/) with
/// checkpointed traceback: time O(|a|·|b|), space O(sqrt(|a|)·|b|) — no full
/// traceback matrix. This is the workhorse under the CLUSTALW-style distance
/// pass and the T-Coffee primary library. Score-only callers should use
/// engine::global_score (O(|a| + |b|) space).
[[nodiscard]] PairwiseAlignment global_align(
    std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
    const bio::SubstitutionMatrix& matrix, bio::GapPenalties gaps);

}  // namespace salign::align
