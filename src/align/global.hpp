#pragma once

#include <span>

#include "align/pairwise.hpp"

namespace salign::align {

/// Global alignment with affine gaps (Needleman–Wunsch with Gotoh's
/// three-state recurrence). Terminal gaps are penalized like internal ones.
///
/// Time O(|a|·|b|), space O(|a|·|b|) for the packed traceback plus O(|b|)
/// rolling score rows. This is the workhorse under the CLUSTALW-style
/// distance pass and the T-Coffee primary library.
[[nodiscard]] PairwiseAlignment global_align(
    std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
    const bio::SubstitutionMatrix& matrix, bio::GapPenalties gaps);

}  // namespace salign::align
