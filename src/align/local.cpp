#include "align/local.hpp"

#include "align/engine/engine.hpp"

namespace salign::align {

LocalAlignment local_align(std::span<const std::uint8_t> a,
                           std::span<const std::uint8_t> b,
                           const bio::SubstitutionMatrix& matrix,
                           bio::GapPenalties gaps) {
  return engine::local_align(a, b, matrix, gaps, engine::default_backend());
}

}  // namespace salign::align
