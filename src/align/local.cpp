#include "align/local.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/matrix.hpp"

namespace salign::align {

namespace {
constexpr float kNegInf = -0.25F * std::numeric_limits<float>::max();
enum State : std::uint8_t { kM = 0, kX = 1, kY = 2, kStop = 3 };
struct Cell {
  std::uint8_t came_from[3] = {kStop, kStop, kStop};
};
}  // namespace

LocalAlignment local_align(std::span<const std::uint8_t> a,
                           std::span<const std::uint8_t> b,
                           const bio::SubstitutionMatrix& matrix,
                           bio::GapPenalties gaps) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  LocalAlignment out;
  if (m == 0 || n == 0) return out;

  std::vector<float> prev_m(n + 1, kNegInf), prev_x(n + 1, kNegInf),
      prev_y(n + 1, kNegInf);
  std::vector<float> cur_m(n + 1), cur_x(n + 1), cur_y(n + 1);
  util::Matrix<Cell> trace(m + 1, n + 1);

  float best = 0.0F;
  std::size_t best_i = 0;
  std::size_t best_j = 0;
  std::uint8_t best_state = kStop;

  for (std::size_t i = 1; i <= m; ++i) {
    cur_m[0] = kNegInf;
    cur_x[0] = kNegInf;
    cur_y[0] = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      Cell& t = trace(i, j);

      const float sub = matrix.score(a[i - 1], b[j - 1]);
      // M may also start fresh (score 0 predecessor).
      float bm = 0.0F;
      std::uint8_t from = kStop;
      if (prev_m[j - 1] > bm) {
        bm = prev_m[j - 1];
        from = kM;
      }
      if (prev_x[j - 1] > bm) {
        bm = prev_x[j - 1];
        from = kX;
      }
      if (prev_y[j - 1] > bm) {
        bm = prev_y[j - 1];
        from = kY;
      }
      cur_m[j] = bm + sub;
      t.came_from[kM] = from;

      const float open_x = cur_m[j - 1] - gaps.open;
      const float ext_x = cur_x[j - 1] - gaps.extend;
      if (ext_x >= open_x) {
        cur_x[j] = ext_x;
        t.came_from[kX] = kX;
      } else {
        cur_x[j] = open_x;
        t.came_from[kX] = kM;
      }

      const float open_y = prev_m[j] - gaps.open;
      const float ext_y = prev_y[j] - gaps.extend;
      if (ext_y >= open_y) {
        cur_y[j] = ext_y;
        t.came_from[kY] = kY;
      } else {
        cur_y[j] = open_y;
        t.came_from[kY] = kM;
      }

      if (cur_m[j] > best) {
        best = cur_m[j];
        best_i = i;
        best_j = j;
        best_state = kM;
      }
    }
    std::swap(prev_m, cur_m);
    std::swap(prev_x, cur_x);
    std::swap(prev_y, cur_y);
  }

  out.score = best;
  if (best_state == kStop) return out;  // empty alignment

  std::size_t i = best_i;
  std::size_t j = best_j;
  std::uint8_t state = best_state;
  while (state != kStop) {
    const std::uint8_t from = trace(i, j).came_from[state];
    switch (state) {
      case kM:
        out.ops.push_back(EditOp::Match);
        --i;
        --j;
        break;
      case kX:
        out.ops.push_back(EditOp::GapInA);
        --j;
        break;
      case kY:
        out.ops.push_back(EditOp::GapInB);
        --i;
        break;
      default: break;
    }
    state = from;
    if (i == 0 && j == 0) break;
  }
  std::reverse(out.ops.begin(), out.ops.end());
  out.a_begin = i;
  out.b_begin = j;
  return out;
}

}  // namespace salign::align
