#include "align/distance.hpp"

#include <algorithm>
#include <cmath>

#include "align/global.hpp"

namespace salign::align {

double fractional_identity(std::span<const std::uint8_t> a,
                           std::span<const std::uint8_t> b,
                           std::span<const EditOp> ops) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t matches = 0;
  std::size_t cols = 0;
  for (EditOp op : ops) {
    switch (op) {
      case EditOp::Match:
        ++cols;
        if (a[i] == b[j]) ++matches;
        ++i;
        ++j;
        break;
      case EditOp::GapInA: ++j; break;
      case EditOp::GapInB: ++i; break;
    }
  }
  return cols == 0 ? 0.0
                   : static_cast<double>(matches) / static_cast<double>(cols);
}

double kimura_distance(double fractional_identity) {
  const double d = std::clamp(1.0 - fractional_identity, 0.0, 1.0);
  const double arg = 1.0 - d - d * d / 5.0;
  // Saturation guard: identities below ~25% drive the log argument to 0.
  constexpr double kMaxDistance = 5.0;
  if (arg <= std::exp(-kMaxDistance)) return kMaxDistance;
  return -std::log(arg);
}

double alignment_distance(std::span<const std::uint8_t> a,
                          std::span<const std::uint8_t> b,
                          const bio::SubstitutionMatrix& matrix,
                          bio::GapPenalties gaps) {
  const PairwiseAlignment aln = global_align(a, b, matrix, gaps);
  return kimura_distance(fractional_identity(a, b, aln.ops));
}

}  // namespace salign::align
