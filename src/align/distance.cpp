#include "align/distance.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "align/engine/batch.hpp"
#include "align/global.hpp"
#include "par/cluster.hpp"

namespace salign::align {

double fractional_identity(std::span<const std::uint8_t> a,
                           std::span<const std::uint8_t> b,
                           std::span<const EditOp> ops) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t matches = 0;
  std::size_t cols = 0;
  for (EditOp op : ops) {
    switch (op) {
      case EditOp::Match:
        ++cols;
        if (a[i] == b[j]) ++matches;
        ++i;
        ++j;
        break;
      case EditOp::GapInA: ++j; break;
      case EditOp::GapInB: ++i; break;
    }
  }
  return cols == 0 ? 0.0
                   : static_cast<double>(matches) / static_cast<double>(cols);
}

double kimura_distance(double fractional_identity) {
  const double d = std::clamp(1.0 - fractional_identity, 0.0, 1.0);
  const double arg = 1.0 - d - d * d / 5.0;
  // Saturation guard: identities below ~25% drive the log argument to 0.
  if (arg <= std::exp(-kMaxGuideTreeDistance)) return kMaxGuideTreeDistance;
  return -std::log(arg);
}

double alignment_distance(std::span<const std::uint8_t> a,
                          std::span<const std::uint8_t> b,
                          const bio::SubstitutionMatrix& matrix,
                          bio::GapPenalties gaps) {
  const PairwiseAlignment aln = global_align(a, b, matrix, gaps);
  return kimura_distance(fractional_identity(a, b, aln.ops));
}

// ---------------------------------------------------------------------------
// Batched drivers
// ---------------------------------------------------------------------------

std::pair<std::size_t, std::size_t> pair_from_index(std::size_t p) {
  // Invert the triangular number: the float estimate is correct to +-1,
  // fixed up exactly by the adjustment loops.
  auto i = static_cast<std::size_t>(
      (std::sqrt(8.0 * static_cast<double>(p) + 1.0) + 1.0) / 2.0);
  while (i >= 1 && i * (i - 1) / 2 > p) --i;
  while ((i + 1) * i / 2 <= p) ++i;
  return {i, p - i * (i - 1) / 2};
}

util::SymmetricMatrix<double> pairwise_distance_matrix(
    std::size_t n, unsigned threads,
    const std::function<double(std::size_t, std::size_t)>& fn) {
  util::SymmetricMatrix<double> d(n, 0.0);
  const std::size_t pairs = n == 0 ? 0 : n * (n - 1) / 2;
  par::parallel_for(
      pairs,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t p = begin; p < end; ++p) {
          const auto [i, j] = pair_from_index(p);
          d(i, j) = fn(i, j);
        }
      },
      threads);
  return d;
}

namespace {

/// One pair of the alignment distance pass: the historical consumer-loop
/// arithmetic, verbatim.
void align_pair(std::span<const bio::Sequence> seqs,
                const bio::SubstitutionMatrix& matrix, bio::GapPenalties gaps,
                const PairDistanceOptions& options, std::size_t i,
                std::size_t j, PairAlignments& out) {
  out.global =
      options.band > 0
          ? engine::banded_global_align(seqs[i].codes(), seqs[j].codes(),
                                        matrix, gaps, options.band,
                                        options.backend)
          : engine::global_align(seqs[i].codes(), seqs[j].codes(), matrix,
                                 gaps, options.backend);
  if (options.with_local)
    out.local = engine::local_align(seqs[i].codes(), seqs[j].codes(), matrix,
                                    gaps, options.backend);
}

double pair_kimura(std::span<const bio::Sequence> seqs, std::size_t i,
                   std::size_t j, const PairAlignments& pair) {
  return kimura_distance(fractional_identity(
      seqs[i].codes(), seqs[j].codes(), pair.global.ops));
}

}  // namespace

util::SymmetricMatrix<double> alignment_distance_matrix(
    std::span<const bio::Sequence> seqs, const bio::SubstitutionMatrix& matrix,
    bio::GapPenalties gaps, const PairDistanceOptions& options,
    const PairVisitor& visit) {
  const std::size_t n = seqs.size();
  if (!visit) {
    return pairwise_distance_matrix(
        n, options.threads, [&](std::size_t i, std::size_t j) {
          PairAlignments pair;
          align_pair(seqs, matrix, gaps, options, i, j, pair);
          return pair_kimura(seqs, i, j, pair);
        });
  }

  // Visitor mode: compute pair alignments in parallel one bounded block at
  // a time, then hand them to the visitor serially in pair order — shared
  // visitor state needs no locking and the outcome is order-deterministic.
  constexpr std::size_t kBlock = 256;
  util::SymmetricMatrix<double> d(n, 0.0);
  const std::size_t pairs = n == 0 ? 0 : n * (n - 1) / 2;
  std::vector<PairAlignments> block(std::min<std::size_t>(kBlock, pairs));
  for (std::size_t base = 0; base < pairs; base += kBlock) {
    const std::size_t count = std::min(kBlock, pairs - base);
    par::parallel_for(
        count,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t p = begin; p < end; ++p) {
            const auto [i, j] = pair_from_index(base + p);
            align_pair(seqs, matrix, gaps, options, i, j, block[p]);
          }
        },
        options.threads);
    for (std::size_t p = 0; p < count; ++p) {
      const auto [i, j] = pair_from_index(base + p);
      d(i, j) = pair_kimura(seqs, i, j, block[p]);
      visit(i, j, block[p]);
    }
  }
  return d;
}

util::SymmetricMatrix<double> score_distance_matrix(
    std::span<const bio::Sequence> seqs, const bio::SubstitutionMatrix& matrix,
    bio::GapPenalties gaps, const ScoreDistanceOptions& options) {
  const std::size_t n = seqs.size();
  util::SymmetricMatrix<double> d(n, 0.0);
  if (n == 0) return d;

  // Phase 1: self-scores (the normalization scale), one batch per row.
  std::vector<float> self(n, 0.0F);
  par::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          engine::ScoreBatch batch(seqs[i].codes(), matrix, gaps,
                                   options.backend, options.first_tier);
          self[i] = batch.score(seqs[i].codes());
        }
      },
      options.threads);

  // Phase 2: one striped profile per row i, scored against every j < i.
  // Row i costs O(i) pairs, so contiguous row chunks would hand the last
  // worker ~half the triangle; interleaving cheap and expensive rows
  // (r -> r/2 from the bottom, n-1-r/2 from the top) balances every chunk
  // while each (i, j) cell still has exactly one writer.
  par::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const std::size_t i = (r % 2 == 0) ? r / 2 : n - 1 - r / 2;
          if (i == 0) continue;
          engine::ScoreBatch batch(seqs[i].codes(), matrix, gaps,
                                   options.backend, options.first_tier);
          for (std::size_t j = 0; j < i; ++j) {
            const double denom = std::min(self[i], self[j]);
            if (denom <= 0.0) {
              d(i, j) = kMaxScoreDistance;
              continue;
            }
            const double ratio =
                static_cast<double>(batch.score(seqs[j].codes())) / denom;
            d(i, j) = std::clamp(1.0 - ratio, 0.0, kMaxScoreDistance);
          }
        }
      },
      options.threads);
  return d;
}

}  // namespace salign::align
