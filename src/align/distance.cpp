#include "align/distance.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "align/engine/batch.hpp"
#include "align/engine/pair_batch.hpp"
#include "align/global.hpp"
#include "par/cluster.hpp"

namespace salign::align {

double fractional_identity(std::span<const std::uint8_t> a,
                           std::span<const std::uint8_t> b,
                           std::span<const EditOp> ops) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t matches = 0;
  std::size_t cols = 0;
  for (EditOp op : ops) {
    switch (op) {
      case EditOp::Match:
        ++cols;
        if (a[i] == b[j]) ++matches;
        ++i;
        ++j;
        break;
      case EditOp::GapInA: ++j; break;
      case EditOp::GapInB: ++i; break;
    }
  }
  return cols == 0 ? 0.0
                   : static_cast<double>(matches) / static_cast<double>(cols);
}

double kimura_distance(double fractional_identity) {
  const double d = std::clamp(1.0 - fractional_identity, 0.0, 1.0);
  const double arg = 1.0 - d - d * d / 5.0;
  // Saturation guard: identities below ~15% drive the log argument to 0
  // (its root is at D ~ 0.854); the cap keeps every guide-tree distance
  // source on one bounded scale.
  if (arg <= std::exp(-kMaxGuideTreeDistance)) return kMaxGuideTreeDistance;
  return -std::log(arg);
}

double alignment_distance(std::span<const std::uint8_t> a,
                          std::span<const std::uint8_t> b,
                          const bio::SubstitutionMatrix& matrix,
                          bio::GapPenalties gaps) {
  const PairwiseAlignment aln = global_align(a, b, matrix, gaps);
  return kimura_distance(fractional_identity(a, b, aln.ops));
}

// ---------------------------------------------------------------------------
// Batched drivers
// ---------------------------------------------------------------------------

std::pair<std::size_t, std::size_t> pair_from_index(std::size_t p) {
  // Invert the triangular number: the float estimate is correct to +-1,
  // fixed up exactly by the adjustment loops.
  auto i = static_cast<std::size_t>(
      (std::sqrt(8.0 * static_cast<double>(p) + 1.0) + 1.0) / 2.0);
  while (i >= 1 && i * (i - 1) / 2 > p) --i;
  while ((i + 1) * i / 2 <= p) ++i;
  return {i, p - i * (i - 1) / 2};
}

util::SymmetricMatrix<double> pairwise_distance_matrix(
    std::size_t n, unsigned threads,
    const std::function<double(std::size_t, std::size_t)>& fn) {
  util::SymmetricMatrix<double> d(n, 0.0);
  const std::size_t pairs = n == 0 ? 0 : n * (n - 1) / 2;
  par::parallel_for(
      pairs,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t p = begin; p < end; ++p) {
          const auto [i, j] = pair_from_index(p);
          d(i, j) = fn(i, j);
        }
      },
      threads);
  return d;
}

PairDistanceStats& PairDistanceStats::operator+=(const PairDistanceStats& o) {
  pairs += o.pairs;
  batched_int8 += o.batched_int8;
  batch_retries += o.batch_retries;
  ladder += o.ladder;
  return *this;
}

namespace {

double pair_kimura(std::span<const bio::Sequence> seqs, std::size_t i,
                   std::size_t j, const PairAlignments& pair) {
  return kimura_distance(fractional_identity(
      seqs[i].codes(), seqs[j].codes(), pair.global.ops));
}

/// One parallel unit of the blocked alignment pass. Either a PairBatch
/// group (up to one int8 lane set of short pairs, length-sorted by the
/// planner) or a run of same-query pairs sharing one AlignBatch row
/// profile. Each task writes only its own block slots, so the pass is
/// bit-identical for every thread count.
struct PairTask {
  bool batched = false;
  std::size_t row = 0;                 ///< query index (row tasks)
  std::vector<std::size_t> slots;      ///< block-local pair indices
};

/// Longest same-query run one row task may hold. A row of the pair
/// triangle can span a whole 256-pair block (any i >= 256), and one task
/// per row would serialize exactly the big-N workloads the pass targets;
/// capping the run keeps >= kBlock/kMaxRowRun parallel tasks per block
/// while still amortizing one AlignBatch profile across 16 alignments.
constexpr std::size_t kMaxRowRun = 16;

/// Plans one block of pairs into tasks: short pairs go to inter-pair int8
/// groups (sorted by longest member so groups are length-homogeneous and
/// the padded overhang stays small), the rest into per-row ladder runs of
/// at most kMaxRowRun pairs. Pure function of the block's pair set —
/// independent of thread count.
std::vector<PairTask> plan_block(std::span<const bio::Sequence> seqs,
                                 std::size_t base, std::size_t count,
                                 std::size_t batch_cap,
                                 std::size_t batch_lanes) {
  std::vector<std::size_t> batchable;
  std::vector<PairTask> tasks;
  for (std::size_t p = 0; p < count; ++p) {
    const auto [i, j] = pair_from_index(base + p);
    const std::size_t la = seqs[i].size();
    const std::size_t lb = seqs[j].size();
    if (la > 0 && lb > 0 && std::max(la, lb) <= batch_cap) {
      batchable.push_back(p);
      continue;
    }
    if (tasks.empty() || tasks.back().batched || tasks.back().row != i ||
        tasks.back().slots.size() >= kMaxRowRun) {
      tasks.push_back({.batched = false, .row = i, .slots = {}});
    }
    tasks.back().slots.push_back(p);
  }
  std::sort(batchable.begin(), batchable.end(),
            [&](std::size_t pa, std::size_t pb) {
              const auto [ia, ja] = pair_from_index(base + pa);
              const auto [ib, jb] = pair_from_index(base + pb);
              const std::size_t lena =
                  std::max(seqs[ia].size(), seqs[ja].size());
              const std::size_t lenb =
                  std::max(seqs[ib].size(), seqs[jb].size());
              return lena != lenb ? lena > lenb : pa < pb;
            });
  for (std::size_t at = 0; at < batchable.size(); at += batch_lanes) {
    PairTask t;
    t.batched = true;
    const std::size_t g = std::min(batch_lanes, batchable.size() - at);
    t.slots.assign(batchable.begin() + static_cast<std::ptrdiff_t>(at),
                   batchable.begin() + static_cast<std::ptrdiff_t>(at + g));
    tasks.push_back(std::move(t));
  }
  return tasks;
}

/// Runs one planned task, filling its block slots (and per-task stats).
/// `pb` is the worker's reusable inter-pair kernel (column store and score
/// table amortize across the worker's batched tasks); non-null whenever
/// the task is batched.
void run_pair_task(const PairTask& task, std::span<const bio::Sequence> seqs,
                   const bio::SubstitutionMatrix& matrix,
                   bio::GapPenalties gaps, const PairDistanceOptions& options,
                   std::size_t base, engine::PairBatch* pb,
                   std::vector<PairAlignments>& block,
                   PairDistanceStats& stats) {
  stats.pairs += task.slots.size();
  if (task.batched) {
    std::vector<engine::PairBatch::Pair> group(task.slots.size());
    std::vector<PairwiseAlignment> outs(task.slots.size());
    const std::unique_ptr<bool[]> ok(new bool[task.slots.size()]());
    for (std::size_t g = 0; g < task.slots.size(); ++g) {
      const auto [i, j] = pair_from_index(base + task.slots[g]);
      group[g] = {seqs[i].codes(), seqs[j].codes()};
    }
    pb->align(group, outs.data(), ok.get());
    for (std::size_t g = 0; g < task.slots.size(); ++g) {
      const std::size_t p = task.slots[g];
      if (ok[g]) {
        ++stats.batched_int8;
        block[p].global = std::move(outs[g]);
      } else {
        // The lane saturated an int8 rail: retake the ladder one tier up.
        ++stats.batch_retries;
        engine::AlignBatch batch(group[g].a, matrix, gaps, options.backend,
                                 engine::ScoreTier::kInt16);
        block[p].global = batch.align(group[g].b);
        stats.ladder += batch.stats();
      }
      if (options.with_local) {
        const auto [i, j] = pair_from_index(base + p);
        block[p].local = engine::local_align(seqs[i].codes(), seqs[j].codes(),
                                             matrix, gaps, options.backend);
      }
    }
    return;
  }

  // Row task: one ladder profile for the shared query, full alignments
  // against each counterpart (banded passes keep the float banded kernel —
  // the band changes the result set, and the reference semantics are the
  // banded kernel's).
  const std::size_t i = task.row;
  std::unique_ptr<engine::AlignBatch> batch;
  if (options.band == 0)
    batch = std::make_unique<engine::AlignBatch>(
        seqs[i].codes(), matrix, gaps, options.backend, options.first_tier);
  for (const std::size_t p : task.slots) {
    const auto [pi, j] = pair_from_index(base + p);
    if (batch)
      block[p].global = batch->align(seqs[j].codes());
    else
      block[p].global =
          engine::banded_global_align(seqs[pi].codes(), seqs[j].codes(),
                                      matrix, gaps, options.band,
                                      options.backend);
    if (options.with_local)
      block[p].local = engine::local_align(seqs[pi].codes(), seqs[j].codes(),
                                           matrix, gaps, options.backend);
  }
  if (batch) stats.ladder += batch->stats();
}

}  // namespace

util::SymmetricMatrix<double> alignment_distance_matrix(
    std::span<const bio::Sequence> seqs, const bio::SubstitutionMatrix& matrix,
    bio::GapPenalties gaps, const PairDistanceOptions& options,
    const PairVisitor& visit) {
  const std::size_t n = seqs.size();

  // The whole pass — visitor or not — runs in bounded blocks: pair
  // alignments compute in parallel over planned tasks (inter-pair int8
  // groups for the short-pair regime, per-row tier-ladder runs otherwise),
  // then the serial walk derives the Kimura distances and feeds the visitor
  // in exact pair order. Identical output for every thread count.
  constexpr std::size_t kBlock = 256;
  std::size_t batch_cap = 0;
  std::size_t batch_lanes = 1;
  if (options.band == 0 && options.first_tier <= engine::ScoreTier::kInt8) {
    const engine::PairBatch probe(matrix, gaps, options.backend);
    batch_cap = probe.max_len();
    batch_lanes = probe.lanes();
  }

  util::SymmetricMatrix<double> d(n, 0.0);
  PairDistanceStats total;
  const std::size_t pairs = n == 0 ? 0 : n * (n - 1) / 2;
  std::vector<PairAlignments> block(std::min<std::size_t>(kBlock, pairs));
  for (std::size_t base = 0; base < pairs; base += kBlock) {
    const std::size_t count = std::min(kBlock, pairs - base);
    const std::vector<PairTask> tasks =
        plan_block(seqs, base, count, batch_cap, batch_lanes);
    std::vector<PairDistanceStats> task_stats(tasks.size());
    par::parallel_for(
        tasks.size(),
        [&](std::size_t begin, std::size_t end) {
          // One inter-pair kernel per worker chunk: its score table and
          // column store amortize across the chunk's batched groups.
          std::unique_ptr<engine::PairBatch> pb;
          for (std::size_t t = begin; t < end; ++t) {
            if (tasks[t].batched && !pb)
              pb = std::make_unique<engine::PairBatch>(matrix, gaps,
                                                       options.backend);
            run_pair_task(tasks[t], seqs, matrix, gaps, options, base,
                          pb.get(), block, task_stats[t]);
          }
        },
        options.threads);
    for (const auto& ts : task_stats) total += ts;
    for (std::size_t p = 0; p < count; ++p) {
      const auto [i, j] = pair_from_index(base + p);
      d(i, j) = pair_kimura(seqs, i, j, block[p]);
      if (visit) visit(i, j, block[p]);
    }
  }
  if (options.stats != nullptr) *options.stats = total;
  return d;
}

util::SymmetricMatrix<double> score_distance_matrix(
    std::span<const bio::Sequence> seqs, const bio::SubstitutionMatrix& matrix,
    bio::GapPenalties gaps, const ScoreDistanceOptions& options) {
  const std::size_t n = seqs.size();
  util::SymmetricMatrix<double> d(n, 0.0);
  if (n == 0) return d;

  // Phase 1: self-scores (the normalization scale), one batch per row.
  std::vector<float> self(n, 0.0F);
  par::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          engine::ScoreBatch batch(seqs[i].codes(), matrix, gaps,
                                   options.backend, options.first_tier);
          self[i] = batch.score(seqs[i].codes());
        }
      },
      options.threads);

  // Phase 2: one striped profile per row i, scored against every j < i.
  // Row i costs O(i) pairs, so contiguous row chunks would hand the last
  // worker ~half the triangle; interleaving cheap and expensive rows
  // (r -> r/2 from the bottom, n-1-r/2 from the top) balances every chunk
  // while each (i, j) cell still has exactly one writer.
  par::parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const std::size_t i = (r % 2 == 0) ? r / 2 : n - 1 - r / 2;
          if (i == 0) continue;
          engine::ScoreBatch batch(seqs[i].codes(), matrix, gaps,
                                   options.backend, options.first_tier);
          for (std::size_t j = 0; j < i; ++j) {
            const double denom = std::min(self[i], self[j]);
            if (denom <= 0.0) {
              d(i, j) = kMaxScoreDistance;
              continue;
            }
            const double ratio =
                static_cast<double>(batch.score(seqs[j].codes())) / denom;
            d(i, j) = std::clamp(1.0 - ratio, 0.0, kMaxScoreDistance);
          }
        }
      },
      options.threads);
  return d;
}

}  // namespace salign::align
