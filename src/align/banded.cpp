#include "align/banded.hpp"

#include "align/engine/engine.hpp"

namespace salign::align {

PairwiseAlignment banded_global_align(std::span<const std::uint8_t> a,
                                      std::span<const std::uint8_t> b,
                                      const bio::SubstitutionMatrix& matrix,
                                      bio::GapPenalties gaps,
                                      std::size_t band) {
  return engine::banded_global_align(a, b, matrix, gaps, band,
                                     engine::default_backend());
}

}  // namespace salign::align
