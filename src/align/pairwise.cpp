#include "align/pairwise.hpp"

#include <stdexcept>

namespace salign::align {

std::size_t PairwiseAlignment::a_consumed() const {
  std::size_t n = 0;
  for (EditOp op : ops)
    if (op != EditOp::GapInA) ++n;
  return n;
}

std::size_t PairwiseAlignment::b_consumed() const {
  std::size_t n = 0;
  for (EditOp op : ops)
    if (op != EditOp::GapInB) ++n;
  return n;
}

float score_path(std::span<const std::uint8_t> a,
                 std::span<const std::uint8_t> b,
                 std::span<const EditOp> ops,
                 const bio::SubstitutionMatrix& matrix,
                 bio::GapPenalties gaps) {
  float score = 0.0F;
  std::size_t i = 0;
  std::size_t j = 0;
  EditOp prev = EditOp::Match;
  bool first = true;
  for (EditOp op : ops) {
    switch (op) {
      case EditOp::Match:
        if (i >= a.size() || j >= b.size())
          throw std::invalid_argument("score_path: path overruns inputs");
        score += matrix.score(a[i], b[j]);
        ++i;
        ++j;
        break;
      case EditOp::GapInA:
        if (j >= b.size())
          throw std::invalid_argument("score_path: path overruns input B");
        score -= (!first && prev == EditOp::GapInA) ? gaps.extend : gaps.open;
        ++j;
        break;
      case EditOp::GapInB:
        if (i >= a.size())
          throw std::invalid_argument("score_path: path overruns input A");
        score -= (!first && prev == EditOp::GapInB) ? gaps.extend : gaps.open;
        ++i;
        break;
    }
    prev = op;
    first = false;
  }
  return score;
}

std::pair<std::string, std::string> render_path(
    std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
    std::span<const EditOp> ops, const bio::Alphabet& alpha) {
  std::string ra;
  std::string rb;
  ra.reserve(ops.size());
  rb.reserve(ops.size());
  std::size_t i = 0;
  std::size_t j = 0;
  for (EditOp op : ops) {
    switch (op) {
      case EditOp::Match:
        ra.push_back(alpha.decode(a[i++]));
        rb.push_back(alpha.decode(b[j++]));
        break;
      case EditOp::GapInA:
        ra.push_back('-');
        rb.push_back(alpha.decode(b[j++]));
        break;
      case EditOp::GapInB:
        ra.push_back(alpha.decode(a[i++]));
        rb.push_back('-');
        break;
    }
  }
  return {std::move(ra), std::move(rb)};
}

void validate_global_path(std::span<const EditOp> ops, std::size_t a_len,
                          std::size_t b_len) {
  std::size_t i = 0;
  std::size_t j = 0;
  for (EditOp op : ops) {
    if (op != EditOp::GapInA) ++i;
    if (op != EditOp::GapInB) ++j;
  }
  if (i != a_len || j != b_len)
    throw std::invalid_argument("global path does not consume both inputs");
}

}  // namespace salign::align
