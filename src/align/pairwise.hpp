#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bio/substitution_matrix.hpp"

namespace salign::align {

/// One column of a pairwise alignment path.
enum class EditOp : std::uint8_t {
  Match,   ///< consumes one residue of A and one of B (match or mismatch)
  GapInA,  ///< consumes one residue of B; gap character in A
  GapInB,  ///< consumes one residue of A; gap character in B
};

/// A scored pairwise alignment path. `ops` runs from the first column to the
/// last; for global alignments it consumes both inputs completely.
struct PairwiseAlignment {
  float score = 0.0F;
  std::vector<EditOp> ops;

  [[nodiscard]] std::size_t columns() const { return ops.size(); }
  /// Number of residues of A / of B consumed by the path.
  [[nodiscard]] std::size_t a_consumed() const;
  [[nodiscard]] std::size_t b_consumed() const;
};

/// A local (Smith–Waterman) alignment adds the start offsets of the aligned
/// region in each input.
struct LocalAlignment : PairwiseAlignment {
  std::size_t a_begin = 0;
  std::size_t b_begin = 0;
};

/// Recomputes the affine-gap score of a path (validation / testing oracle).
[[nodiscard]] float score_path(std::span<const std::uint8_t> a,
                               std::span<const std::uint8_t> b,
                               std::span<const EditOp> ops,
                               const bio::SubstitutionMatrix& matrix,
                               bio::GapPenalties gaps);

/// Renders the two gapped rows of a path ('-' for gaps) for display/tests.
[[nodiscard]] std::pair<std::string, std::string> render_path(
    std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
    std::span<const EditOp> ops, const bio::Alphabet& alpha);

/// Validates that `ops` consumes exactly |a| and |b| residues; throws
/// std::invalid_argument otherwise.
void validate_global_path(std::span<const EditOp> ops, std::size_t a_len,
                          std::size_t b_len);

}  // namespace salign::align
