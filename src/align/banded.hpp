#pragma once

#include <span>

#include "align/pairwise.hpp"

namespace salign::align {

/// Global affine-gap alignment restricted to a diagonal band of half-width
/// `band` around the main diagonal (suitably sheared for unequal lengths).
/// Falls back to an exact result when the band covers the full table.
///
/// The MAFFT-style aligner uses this after FFT anchoring: once candidate
/// segment offsets are known, a narrow band suffices and the DP cost drops
/// from O(L^2) to O(L·band).
[[nodiscard]] PairwiseAlignment banded_global_align(
    std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
    const bio::SubstitutionMatrix& matrix, bio::GapPenalties gaps,
    std::size_t band);

}  // namespace salign::align
