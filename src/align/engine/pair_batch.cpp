// Inter-pair batched int8 global alignment (one pair per lane).
//
// Unlike the striped kernels there is no cross-lane dependency anywhere:
// lane l advances pair l's own Gotoh recurrence, so the DP is the textbook
// column-major walk with every state vectorized across pairs. The only
// scalar step is the substitution gather (each lane looks up its own
// residue pair in a pre-encoded int8 score table) — 16 L1 loads per cell
// vector against ~a dozen vector ops, which is exactly the trade the
// inter-sequence batching literature makes.
//
// Eligible pairs are short (max_len() bounds them by the int8 boundary
// rail), so the kernel stores every H/E/F column — O(M * N * lanes) bytes,
// a few hundred KB — and the per-lane traceback is a pure table walk
// through the shared integer walker (int_trace.hpp): X = E, Y = F,
// M(i,j) = H(i-1,j-1) + sub, reference came_from chains on exact values.
//
// Rails: per-lane vector min/max accumulators over the stored H (both
// rails) and E/F (floor; the traceback reads them, see striped.cpp's
// alignment-tier discussion). Group geometry runs to the longest member's
// (M, N); a lane's padded overhang can only add spurious flags — its real
// region [1, m_l] x [1, n_l] depends solely on real cells and boundaries —
// so saturated lanes are re-run by the caller and everything stays exact.

#include "align/engine/pair_batch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "align/engine/int_trace.hpp"
#include "align/engine/simd_int.hpp"
#include "align/engine/striped.hpp"
#include "bio/alphabet.hpp"

namespace salign::align::engine {

namespace {

/// Upper cap on eligible lengths regardless of the rails, bounding the
/// column store at 3 * 257 * 256 * lanes bytes.
constexpr std::size_t kLenCap = 256;

/// Row-0 boundary H(0, j) of the combined DP (same as striped.cpp).
std::int64_t pb_boundary(std::int64_t j, std::int64_t open,
                         std::int64_t ext) {
  return j == 0 ? 0 : -(open + ext * (j - 1));
}

}  // namespace

struct PairBatch::Impl {
  virtual ~Impl() = default;
  [[nodiscard]] virtual std::size_t lanes() const = 0;
  [[nodiscard]] virtual std::size_t max_len() const = 0;
  virtual void align(std::span<const Pair> pairs, PairwiseAlignment* out,
                     bool* ok) = 0;
  [[nodiscard]] virtual std::size_t bytes() const = 0;
};

namespace {

template <typename VI>
struct PairBatchImplT final : PairBatch::Impl {
  using Elem = typename VI::Elem;
  using Pair = PairBatch::Pair;
  static constexpr auto kW = static_cast<std::size_t>(VI::kLanes);

  detail::IntGate gate;
  int floor_l = 0, ceil_l = 0;
  std::size_t cap = 0;        // max eligible length
  std::size_t alpha = 0;      // alphabet size (score table stride alpha+1)
  std::vector<Elem> sub8;     // (alpha+1)^2 encoded deltas; padded row/col 0
  // Reusable per-call state.
  std::vector<Elem> h, e, f;  // (N+1) * M * kW column store
  std::vector<std::uint8_t> a_pack;  // M * kW interleaved query codes

  PairBatchImplT(const bio::SubstitutionMatrix& matrix,
                 bio::GapPenalties gaps) {
    gate = detail::scan_int_gate(matrix, gaps);
    if (!gate.integral) return;
    const detail::IntRails rails = detail::int_rails<VI>(gate);
    if (!rails.usable) return;
    floor_l = rails.floor_l;
    ceil_l = rails.ceil_l;
    // Eligibility cap: the largest L whose boundary_need (the shared
    // striped-tier bound, with max_len = L + 1 as viable_for uses) stays
    // inside the floor rail — closed-form inversion, then checked back
    // against the forward formula so the two can never disagree.
    const std::int64_t head = -static_cast<std::int64_t>(floor_l) - 1 -
                              gate.open -
                              std::max(gate.open, gate.max_neg);
    if (head <= gate.ext) return;
    cap = std::min<std::size_t>(
        kLenCap, static_cast<std::size_t>(head / gate.ext) - 1);
    while (cap > 0 &&
           detail::boundary_need(gate, cap + 1) >
               -static_cast<std::int64_t>(floor_l) - 1)
      --cap;
    if (cap < 2) {
      cap = 0;
      return;
    }

    alpha = static_cast<std::size_t>(
        bio::Alphabet::get(matrix.alphabet_kind()).size());
    sub8.assign((alpha + 1) * (alpha + 1), VI::encode_delta(0));
    for (std::size_t x = 0; x < alpha; ++x)
      for (std::size_t y = 0; y < alpha; ++y)
        sub8[x * (alpha + 1) + y] =
            VI::encode_delta(static_cast<int>(std::lround(
                matrix.score(static_cast<std::uint8_t>(x),
                             static_cast<std::uint8_t>(y)))));
  }

  [[nodiscard]] std::size_t lanes() const override { return kW; }
  [[nodiscard]] std::size_t max_len() const override { return cap; }
  [[nodiscard]] std::size_t bytes() const override {
    return (sub8.capacity() + h.capacity() + e.capacity() + f.capacity()) *
               sizeof(Elem) +
           a_pack.capacity();
  }

  [[nodiscard]] std::size_t at(std::size_t stride_m, std::size_t i,
                               std::size_t j) const {
    return (j * stride_m + (i - 1)) * kW;
  }

  void align(std::span<const Pair> pairs, PairwiseAlignment* out,
             bool* ok) override;
};

/// Values adapter of one ok lane: full column store, analytic boundaries.
template <typename VI>
struct PairTraceValues {
  using Elem = typename VI::Elem;
  static constexpr auto kW = static_cast<std::size_t>(VI::kLanes);

  const PairBatchImplT<VI>& impl;
  std::size_t lane, stride_m;
  std::span<const std::uint8_t> a, b;
  std::int64_t open, ext;

  [[nodiscard]] static bool ensure(std::size_t) { return true; }

  [[nodiscard]] std::int64_t cell(const std::vector<Elem>& cols,
                                  std::size_t i, std::size_t j) const {
    return VI::decode(cols[impl.at(stride_m, i, j) + lane]);
  }
  [[nodiscard]] std::int64_t h(std::size_t i, std::size_t j) const {
    if (i == 0) return pb_boundary(static_cast<std::int64_t>(j), open, ext);
    if (j == 0) return -(open + ext * (static_cast<std::int64_t>(i) - 1));
    return cell(impl.h, i, j);
  }
  [[nodiscard]] std::int64_t x(std::size_t i, std::size_t j) const {
    if (i == 0)
      return j == 0 ? detail::kNegI
                    : -(open + ext * (static_cast<std::int64_t>(j) - 1));
    if (j == 0) return detail::kNegI;
    return cell(impl.e, i, j);
  }
  [[nodiscard]] std::int64_t y(std::size_t i, std::size_t j) const {
    if (i == 0) return detail::kNegI;
    if (j == 0) return -(open + ext * (static_cast<std::int64_t>(i) - 1));
    return cell(impl.f, i, j);
  }
  [[nodiscard]] std::int64_t m(std::size_t i, std::size_t j) const {
    if (i == 0) return j == 0 ? 0 : detail::kNegI;
    if (j == 0) return detail::kNegI;
    const std::size_t stride = impl.alpha + 1;
    const int sub = VI::decode_delta(
        impl.sub8[static_cast<std::size_t>(a[i - 1]) * stride + b[j - 1]]);
    return h(i - 1, j - 1) + sub;
  }
};

template <typename VI>
void PairBatchImplT<VI>::align(std::span<const Pair> pairs,
                               PairwiseAlignment* out, bool* ok) {
  const std::size_t count = std::min<std::size_t>(pairs.size(), kW);
  std::size_t big_m = 0;
  std::size_t big_n = 0;
  for (std::size_t p = 0; p < count; ++p) {
    big_m = std::max(big_m, pairs[p].a.size());
    big_n = std::max(big_n, pairs[p].b.size());
  }
  const std::size_t slots = (big_n + 1) * big_m * kW;
  h.resize(slots);
  e.resize(slots);
  f.resize(slots);

  // Interleaved query codes: a_pack[(i-1)*kW + l] = pair l's residue i,
  // `alpha` (the zero row of the score table) past pair l's extent.
  a_pack.assign(big_m * kW, static_cast<std::uint8_t>(alpha));
  for (std::size_t p = 0; p < count; ++p)
    for (std::size_t i = 0; i < pairs[p].a.size(); ++i)
      a_pack[i * kW + p] = pairs[p].a[i];

  const auto open64 = static_cast<std::int64_t>(gate.open);
  const auto ext64 = static_cast<std::int64_t>(gate.ext);
  const Elem floor_enc = VI::encode(floor_l);
  const Elem ceil_enc = VI::encode(ceil_l);
  const VI v_floor = VI::splat(floor_enc);
  const VI v_ceil = VI::splat(ceil_enc);
  const VI v_open = VI::splat(VI::encode_delta(gate.open));
  const VI v_ext = VI::splat(VI::encode_delta(gate.ext));

  // Column 0: the global boundary (H the gap run, E/F the -inf sentinel).
  for (std::size_t i = 1; i <= big_m; ++i) {
    const Elem hb = VI::encode(static_cast<int>(
        -(open64 + ext64 * (static_cast<std::int64_t>(i) - 1))));
    const std::size_t base = at(big_m, i, 0);
    for (std::size_t l = 0; l < kW; ++l) {
      h[base + l] = hb;
      e[base + l] = floor_enc;
      f[base + l] = floor_enc;
    }
  }

  VI v_sat_max = v_floor;
  VI v_sat_min = v_ceil;
  VI v_ef_min = v_ceil;
  const std::size_t stride = alpha + 1;
  alignas(16) Elem sub_buf[kW];
  alignas(16) std::size_t brow[kW];

  const auto lane_dead = [&](std::size_t l) {
    return v_sat_max.lane(static_cast<int>(l)) >= ceil_enc ||
           v_sat_min.lane(static_cast<int>(l)) <= floor_enc ||
           v_ef_min.lane(static_cast<int>(l)) <= floor_enc;
  };

  for (std::size_t j = 1; j <= big_n; ++j) {
    // Saturation is sticky: once every live lane has touched a rail the
    // rest of the pass cannot produce a usable lane — bail and let the
    // caller's per-pair ladder take the whole group (high-identity groups
    // hit the int8 ceiling early and would otherwise waste the full DP).
    if ((j & 7U) == 0) {
      bool any_live = false;
      for (std::size_t p = 0; p < count && !any_live; ++p)
        any_live = !lane_dead(p);
      if (!any_live) {
        for (std::size_t p = 0; p < count; ++p) ok[p] = false;
        return;
      }
    }
    for (std::size_t l = 0; l < kW; ++l)
      brow[l] = (l < count && j - 1 < pairs[l].b.size())
                    ? static_cast<std::size_t>(pairs[l].b[j - 1])
                    : alpha;
    const VI v_h0j = VI::splat(
        VI::encode(static_cast<int>(pb_boundary(
            static_cast<std::int64_t>(j), open64, ext64))));
    VI v_hdiag = VI::splat(VI::encode(static_cast<int>(pb_boundary(
        static_cast<std::int64_t>(j) - 1, open64, ext64))));
    VI v_hrow = v_h0j;  // H(i-1, j), seeded with the row-0 boundary
    VI v_f = v_floor;
    const std::uint8_t* ap = a_pack.data();

    for (std::size_t i = 1; i <= big_m; ++i, ap += kW) {
      for (std::size_t l = 0; l < kW; ++l)
        sub_buf[l] = sub8[static_cast<std::size_t>(ap[l]) * stride + brow[l]];
      const VI v_sub = VI::load(sub_buf);
      const std::size_t prev = at(big_m, i, j - 1);
      const std::size_t cur = at(big_m, i, j);
      const VI v_hup = VI::load(h.data() + prev);

      VI v_e = VI::max(VI::load(e.data() + prev) - v_ext, v_floor);
      v_e = VI::max(v_e, v_hup - v_open);
      v_f = VI::max(v_f - v_ext, v_floor);
      v_f = VI::max(v_f, v_hrow - v_open);
      VI v_h = v_hdiag + v_sub;
      v_h = VI::max(v_h, v_e);
      v_h = VI::max(v_h, v_f);
      v_h = VI::min(v_h, v_ceil);

      v_h.store(h.data() + cur);
      v_e.store(e.data() + cur);
      v_f.store(f.data() + cur);
      v_sat_max = VI::max(v_sat_max, v_h);
      v_sat_min = VI::min(v_sat_min, v_h);
      v_ef_min = VI::min(v_ef_min, VI::min(v_e, v_f));

      v_hdiag = v_hup;
      v_hrow = v_h;
    }
  }

  for (std::size_t p = 0; p < count; ++p) {
    const bool lane_ok = !lane_dead(p);
    ok[p] = lane_ok;
    if (!lane_ok) continue;
    PairTraceValues<VI> vals{*this,  p,      big_m, pairs[p].a,
                             pairs[p].b, open64, ext64};
    const bool traced = detail::integer_global_traceback(
        pairs[p].a.size(), pairs[p].b.size(), vals, &out[p]);
    (void)traced;  // ensure() never fails: the store is complete
  }
}

}  // namespace

PairBatch::PairBatch(const bio::SubstitutionMatrix& matrix,
                     bio::GapPenalties gaps, Backend backend) {
  if (backend == Backend::kScalar)
    impl_ = std::make_unique<PairBatchImplT<ScalarI8>>(matrix, gaps);
  else
    impl_ = std::make_unique<PairBatchImplT<VecI8>>(matrix, gaps);
}

PairBatch::~PairBatch() = default;
PairBatch::PairBatch(PairBatch&&) noexcept = default;
PairBatch& PairBatch::operator=(PairBatch&&) noexcept = default;

std::size_t PairBatch::lanes() const { return impl_->lanes(); }
std::size_t PairBatch::max_len() const { return impl_->max_len(); }

void PairBatch::align(std::span<const Pair> pairs, PairwiseAlignment* out,
                      bool* ok) {
  impl_->align(pairs, out, ok);
}

std::size_t PairBatch::workspace_bytes() const { return impl_->bytes(); }

}  // namespace salign::align::engine
