#pragma once

// Internal striped (Farrar) integer score kernels of the alignment engine.
// Only batch.cpp and the tests should include this; everything else goes
// through align/engine/batch.hpp or align/engine/engine.hpp.
//
// Layout: the query (the profile-side sequence, length m) is split into
// VI::kLanes segments of length t = ceil(m / lanes); lane l of stripe
// vector k holds query row l*t + k + 1. The DP then walks the other
// sequence column by column with the three Gotoh states in combined form
//   H = max(M, X, Y),  E = X (gap in query's partner),  F = Y,
// which is exactly equal to the engine's 3-state reference recurrence
// whenever open >= extend (see striped.cpp for the proof sketch). All
// arithmetic is integer and therefore exact; whenever a cell would leave
// the representable "rail" range the run is flagged as saturated and the
// caller promotes to the next wider tier.

#include <cstdint>
#include <span>
#include <vector>

#include "align/engine/simd_int.hpp"
#include "bio/substitution_matrix.hpp"

namespace salign::align::engine::detail {

/// Facts about one (matrix, gaps) pair that decide whether the integer
/// tiers are usable at all, scanned once per profile build.
struct IntGate {
  bool integral = false;  ///< every sub score and both penalties are ints,
                          ///< with open >= extend >= 1
  int open = 0;
  int ext = 0;
  int max_pos = 1;  ///< largest positive substitution score (>= 1)
  int max_neg = 1;  ///< largest |negative| substitution score (>= 1)
};

[[nodiscard]] IntGate scan_int_gate(const bio::SubstitutionMatrix& matrix,
                                    bio::GapPenalties gaps);

/// Lane-interleaved (striped) integer query profile plus the tier's rail
/// bounds. `viable()` is false when the (query, matrix, gaps) combination
/// cannot run in this element type at all; `viable_for(n)` additionally
/// checks the counterpart-length-dependent boundary range.
template <typename VI>
class StripedProfile {
 public:
  using Elem = typename VI::Elem;

  StripedProfile() = default;
  StripedProfile(std::span<const std::uint8_t> query,
                 const bio::SubstitutionMatrix& matrix, const IntGate& gate);

  [[nodiscard]] bool viable() const { return viable_; }
  [[nodiscard]] bool viable_for(std::size_t other_len) const;

  [[nodiscard]] std::size_t query_len() const { return m_; }
  [[nodiscard]] std::size_t segs() const { return segs_; }
  [[nodiscard]] const Elem* row(std::uint8_t c) const {
    return data_.data() +
           static_cast<std::size_t>(c) * segs_ *
               static_cast<std::size_t>(VI::kLanes);
  }
  [[nodiscard]] const IntGate& gate() const { return gate_; }
  /// Rail bounds in LOGICAL values (the trait's bias maps them onto the
  /// storage range).
  [[nodiscard]] int floor_rail() const { return floor_; }
  [[nodiscard]] int ceil_rail() const { return ceil_; }

  /// Bytes held by the striped score table (workspace accounting).
  [[nodiscard]] std::size_t bytes() const {
    return data_.capacity() * sizeof(Elem);
  }

 private:
  static bool viable_for_impl(std::size_t max_len, const IntGate& gate,
                              std::int64_t floor64);

  std::size_t m_ = 0;
  std::size_t segs_ = 0;
  IntGate gate_;
  int floor_ = 0;
  int ceil_ = 0;
  bool viable_ = false;
  std::vector<Elem> data_;
};

/// Reusable per-thread DP state of the striped kernels: two H columns and
/// the E column, all in striped slot order.
template <typename VI>
struct StripedWorkspace {
  std::vector<typename VI::Elem> h_a, h_b, e;

  void ensure(std::size_t slots) {
    if (h_a.size() < slots) {
      h_a.resize(slots);
      h_b.resize(slots);
      e.resize(slots);
    }
  }
  [[nodiscard]] std::size_t bytes() const {
    return (h_a.capacity() + h_b.capacity() + e.capacity()) *
           sizeof(typename VI::Elem);
  }
};

/// Score-only striped Gotoh pass of `profile`'s query against `other`.
/// Returns false when any cell touched a rail (the score is then invalid
/// and the caller must promote); on true, *score is bit-identical to the
/// float reference kernel's global score. Preconditions: profile.viable(),
/// profile.viable_for(other.size()), both sequences non-empty.
template <typename VI>
[[nodiscard]] bool striped_score(const StripedProfile<VI>& profile,
                                 std::span<const std::uint8_t> other,
                                 StripedWorkspace<VI>& ws, float* score);

extern template class StripedProfile<ScalarI8>;
extern template class StripedProfile<ScalarI16>;
extern template bool striped_score<ScalarI8>(const StripedProfile<ScalarI8>&,
                                             std::span<const std::uint8_t>,
                                             StripedWorkspace<ScalarI8>&,
                                             float*);
extern template bool striped_score<ScalarI16>(const StripedProfile<ScalarI16>&,
                                              std::span<const std::uint8_t>,
                                              StripedWorkspace<ScalarI16>&,
                                              float*);

#ifdef SALIGN_HAVE_VECTOR_EXT
extern template class StripedProfile<VecI8>;
extern template class StripedProfile<VecI16>;
extern template bool striped_score<VecI8>(const StripedProfile<VecI8>&,
                                          std::span<const std::uint8_t>,
                                          StripedWorkspace<VecI8>&, float*);
extern template bool striped_score<VecI16>(const StripedProfile<VecI16>&,
                                           std::span<const std::uint8_t>,
                                           StripedWorkspace<VecI16>&, float*);
#endif

}  // namespace salign::align::engine::detail
