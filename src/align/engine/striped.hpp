#pragma once

// Internal striped (Farrar) integer score kernels of the alignment engine.
// Only batch.cpp and the tests should include this; everything else goes
// through align/engine/batch.hpp or align/engine/engine.hpp.
//
// Layout: the query (the profile-side sequence, length m) is split into
// VI::kLanes segments of length t = ceil(m / lanes); lane l of stripe
// vector k holds query row l*t + k + 1. The DP then walks the other
// sequence column by column with the three Gotoh states in combined form
//   H = max(M, X, Y),  E = X (gap in query's partner),  F = Y,
// which is exactly equal to the engine's 3-state reference recurrence
// whenever open >= extend (see striped.cpp for the proof sketch). All
// arithmetic is integer and therefore exact; whenever a cell would leave
// the representable "rail" range the run is flagged as saturated and the
// caller promotes to the next wider tier.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "align/engine/simd_int.hpp"
#include "align/pairwise.hpp"
#include "bio/substitution_matrix.hpp"

namespace salign::align::engine::detail {

/// Facts about one (matrix, gaps) pair that decide whether the integer
/// tiers are usable at all, scanned once per profile build.
struct IntGate {
  bool integral = false;  ///< every sub score and both penalties are ints,
                          ///< with open >= extend >= 1
  int open = 0;
  int ext = 0;
  int max_pos = 1;  ///< largest positive substitution score (>= 1)
  int max_neg = 1;  ///< largest |negative| substitution score (>= 1)
};

[[nodiscard]] IntGate scan_int_gate(const bio::SubstitutionMatrix& matrix,
                                    bio::GapPenalties gaps);

/// Logical saturation rails of one integer element type under a gate: the
/// storage limits pulled in by the largest single-step delta, so no
/// arithmetic op can leave the storage range (see striped.cpp). The ONE
/// definition of the rails — StripedProfile and PairBatch both derive
/// from here, so the bound can never drift between the per-pair and
/// inter-pair kernels.
struct IntRails {
  int floor_l = 0;  ///< floor rail; doubles as the -inf sentinel
  int ceil_l = 0;
  bool usable = false;  ///< rails leave an operating range around 0
};

template <typename VI>
[[nodiscard]] inline IntRails int_rails(const IntGate& gate) {
  using Lim = std::numeric_limits<typename VI::Elem>;
  IntRails r;
  if (!gate.integral) return r;
  const int max_neg_step = std::max({gate.open + 1, gate.ext, gate.max_neg});
  const int lo = static_cast<int>(Lim::min()) - VI::kBias;
  const int hi = static_cast<int>(Lim::max()) - VI::kBias;
  r.floor_l = lo + max_neg_step;
  r.ceil_l = hi - gate.max_pos;
  r.usable = r.floor_l < -1 && r.ceil_l > 1;
  return r;
}

/// Deepest boundary-adjacent magnitude a pass with counterpart lengths up
/// to `max_len` materializes exactly: a boundary gap run of max_len
/// extends, re-opened once (the E / lazy-F seed), with one worst-case
/// substitution of slack so near-boundary interior cells do not routinely
/// brush the rail. Viable iff <= -floor_l - 1.
[[nodiscard]] inline std::int64_t boundary_need(const IntGate& gate,
                                                std::size_t max_len) {
  return static_cast<std::int64_t>(gate.open) +
         std::max<std::int64_t>(gate.open, gate.max_neg) +
         static_cast<std::int64_t>(gate.ext) *
             static_cast<std::int64_t>(max_len);
}

/// Lane-interleaved (striped) integer query profile plus the tier's rail
/// bounds. `viable()` is false when the (query, matrix, gaps) combination
/// cannot run in this element type at all; `viable_for(n)` additionally
/// checks the counterpart-length-dependent boundary range.
template <typename VI>
class StripedProfile {
 public:
  using Elem = typename VI::Elem;

  StripedProfile() = default;
  StripedProfile(std::span<const std::uint8_t> query,
                 const bio::SubstitutionMatrix& matrix, const IntGate& gate);

  [[nodiscard]] bool viable() const { return viable_; }
  [[nodiscard]] bool viable_for(std::size_t other_len) const;

  [[nodiscard]] std::size_t query_len() const { return m_; }
  [[nodiscard]] std::size_t segs() const { return segs_; }
  [[nodiscard]] const Elem* row(std::uint8_t c) const {
    return data_.data() +
           static_cast<std::size_t>(c) * segs_ *
               static_cast<std::size_t>(VI::kLanes);
  }
  [[nodiscard]] const IntGate& gate() const { return gate_; }
  /// Rail bounds in LOGICAL values (the trait's bias maps them onto the
  /// storage range).
  [[nodiscard]] int floor_rail() const { return floor_; }
  [[nodiscard]] int ceil_rail() const { return ceil_; }

  /// Bytes held by the striped score table (workspace accounting).
  [[nodiscard]] std::size_t bytes() const {
    return data_.capacity() * sizeof(Elem);
  }

 private:
  static bool viable_for_impl(std::size_t max_len, const IntGate& gate,
                              std::int64_t floor64);

  std::size_t m_ = 0;
  std::size_t segs_ = 0;
  IntGate gate_;
  int floor_ = 0;
  int ceil_ = 0;
  bool viable_ = false;
  std::vector<Elem> data_;
};

/// Reusable per-thread DP state of the striped kernels: two H columns and
/// the E column, all in striped slot order.
template <typename VI>
struct StripedWorkspace {
  std::vector<typename VI::Elem> h_a, h_b, e;

  void ensure(std::size_t slots) {
    if (h_a.size() < slots) {
      h_a.resize(slots);
      h_b.resize(slots);
      e.resize(slots);
    }
  }
  [[nodiscard]] std::size_t bytes() const {
    return (h_a.capacity() + h_b.capacity() + e.capacity()) *
           sizeof(typename VI::Elem);
  }
};

/// Score-only striped Gotoh pass of `profile`'s query against `other`.
/// Returns false when any cell touched a rail (the score is then invalid
/// and the caller must promote); on true, *score is bit-identical to the
/// float reference kernel's global score. Preconditions: profile.viable(),
/// profile.viable_for(other.size()), both sequences non-empty.
template <typename VI>
[[nodiscard]] bool striped_score(const StripedProfile<VI>& profile,
                                 std::span<const std::uint8_t> other,
                                 StripedWorkspace<VI>& ws, float* score);

/// Reusable state of the striped full-alignment kernel: the score kernel's
/// DP columns plus column checkpoints (every ~sqrt(n)-th column of final H
/// and raw E), the traceback block store (final H/E/F of one checkpoint-
/// wide column range), and the padded-lane guard of the E/F rail checks.
/// Like StripedWorkspace: one per thread, grown on demand, never shrunk.
template <typename VI>
struct StripedAlignWorkspace {
  using Elem = typename VI::Elem;

  StripedWorkspace<VI> cols;
  /// Per-slot rail-check guard: encode(floor) in slots holding real query
  /// rows, encode(floor + 1) in padded slots — max()ing a tracked value
  /// with it hides the padded lanes' habitual floor values from the E/F
  /// exactness checks without masking real clamps.
  std::vector<Elem> pad_guard;
  std::size_t guard_m = 0, guard_t = 0;
  std::vector<Elem> ckpt_h, ckpt_e;          ///< checkpoint columns
  std::vector<Elem> blk_h0;                  ///< block's left-edge H column
  std::vector<Elem> blk_h, blk_e, blk_f;     ///< block: final H/E/F columns

  [[nodiscard]] std::size_t bytes() const {
    return cols.bytes() +
           (pad_guard.capacity() + ckpt_h.capacity() + ckpt_e.capacity() +
            blk_h0.capacity() + blk_h.capacity() + blk_e.capacity() +
            blk_f.capacity()) *
               sizeof(Elem);
  }
};

/// Full global alignment through the striped integer kernel: a score-pass
/// forward sweep that checkpoints every ~sqrt(n)-th column, then a
/// traceback that recomputes one checkpoint-wide block of final H/E/F
/// columns at a time and re-derives the reference kernel's came_from
/// decisions from the exact cell values (int_trace.hpp) — no O(m·n) state,
/// O((m + n) * sqrt(n)) like the float engine's checkpointed traceback.
///
/// Returns false when the run must promote to the next tier: any H cell
/// touched a rail (as in striped_score), or any E/F cell of a recomputed
/// block sat on the floor rail. The latter is the ALIGNMENT-tier rail: a
/// floor-clamped E/F can only change a score by winning a cell (which drags
/// H onto the rail and is caught by the H check), but the traceback READS
/// E/F values directly, so a clamp that never won a cell still invalidates
/// the path re-derivation. Score-only passes deliberately skip that check;
/// full alignments cannot. On true, *out (score, ops, tie-breaks) is
/// bit-identical to engine::reference::global_align. Preconditions as
/// striped_score.
template <typename VI>
[[nodiscard]] bool striped_align(const StripedProfile<VI>& profile,
                                 std::span<const std::uint8_t> other,
                                 StripedAlignWorkspace<VI>& ws,
                                 PairwiseAlignment* out,
                                 bool* trace_promoted = nullptr);

extern template class StripedProfile<ScalarI8>;
extern template class StripedProfile<ScalarI16>;
extern template bool striped_score<ScalarI8>(const StripedProfile<ScalarI8>&,
                                             std::span<const std::uint8_t>,
                                             StripedWorkspace<ScalarI8>&,
                                             float*);
extern template bool striped_score<ScalarI16>(const StripedProfile<ScalarI16>&,
                                              std::span<const std::uint8_t>,
                                              StripedWorkspace<ScalarI16>&,
                                              float*);
extern template bool striped_align<ScalarI8>(const StripedProfile<ScalarI8>&,
                                             std::span<const std::uint8_t>,
                                             StripedAlignWorkspace<ScalarI8>&,
                                             PairwiseAlignment*, bool*);
extern template bool striped_align<ScalarI16>(
    const StripedProfile<ScalarI16>&, std::span<const std::uint8_t>,
    StripedAlignWorkspace<ScalarI16>&, PairwiseAlignment*, bool*);

#ifdef SALIGN_HAVE_VECTOR_EXT
extern template class StripedProfile<VecI8>;
extern template class StripedProfile<VecI16>;
extern template bool striped_score<VecI8>(const StripedProfile<VecI8>&,
                                          std::span<const std::uint8_t>,
                                          StripedWorkspace<VecI8>&, float*);
extern template bool striped_score<VecI16>(const StripedProfile<VecI16>&,
                                           std::span<const std::uint8_t>,
                                           StripedWorkspace<VecI16>&, float*);
extern template bool striped_align<VecI8>(const StripedProfile<VecI8>&,
                                          std::span<const std::uint8_t>,
                                          StripedAlignWorkspace<VecI8>&,
                                          PairwiseAlignment*, bool*);
extern template bool striped_align<VecI16>(const StripedProfile<VecI16>&,
                                           std::span<const std::uint8_t>,
                                           StripedAlignWorkspace<VecI16>&,
                                           PairwiseAlignment*, bool*);
#endif

}  // namespace salign::align::engine::detail
