// Retained scalar reference kernels.
//
// These are the pre-engine row-major Gotoh implementations, kept verbatim
// (full O(m·n) traceback matrix and all). They are NOT on any production
// path: src/align/*.cpp routes through the checkpointed anti-diagonal engine
// kernels. They exist because the engine promises *exact* score and
// traceback equality with them, and the randomized differential tests in
// tests/align_engine_test.cpp enforce that promise on every build.

#include <algorithm>
#include <vector>

#include "align/engine/engine.hpp"
#include "util/matrix.hpp"

namespace salign::align::engine::reference {

namespace {

enum State : std::uint8_t { kM = 0, kX = 1, kY = 2, kStop = 3 };

struct Cell {
  // came_from[s] = predecessor state of state s at this cell.
  std::uint8_t came_from[3] = {kM, kM, kM};
};

struct LocalCell {
  std::uint8_t came_from[3] = {kStop, kStop, kStop};
};

}  // namespace

PairwiseAlignment global_align(std::span<const std::uint8_t> a,
                               std::span<const std::uint8_t> b,
                               const bio::SubstitutionMatrix& matrix,
                               bio::GapPenalties gaps) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();

  PairwiseAlignment out;
  if (m == 0 && n == 0) return out;
  if (m == 0) {
    out.ops.assign(n, EditOp::GapInA);
    out.score = -(gaps.open + gaps.extend * static_cast<float>(n - 1));
    return out;
  }
  if (n == 0) {
    out.ops.assign(m, EditOp::GapInB);
    out.score = -(gaps.open + gaps.extend * static_cast<float>(m - 1));
    return out;
  }

  // Rolling score rows, full traceback.
  std::vector<float> prev_m(n + 1), prev_x(n + 1), prev_y(n + 1);
  std::vector<float> cur_m(n + 1), cur_x(n + 1), cur_y(n + 1);
  util::Matrix<Cell> trace(m + 1, n + 1);

  prev_m[0] = 0.0F;
  prev_x[0] = kNegInf;
  prev_y[0] = kNegInf;
  for (std::size_t j = 1; j <= n; ++j) {
    prev_m[j] = kNegInf;
    prev_x[j] = -(gaps.open + gaps.extend * static_cast<float>(j - 1));
    prev_y[j] = kNegInf;
    trace(0, j).came_from[kX] = kX;
  }

  for (std::size_t i = 1; i <= m; ++i) {
    cur_m[0] = kNegInf;
    cur_x[0] = kNegInf;
    cur_y[0] = -(gaps.open + gaps.extend * static_cast<float>(i - 1));
    trace(i, 0).came_from[kY] = kY;

    for (std::size_t j = 1; j <= n; ++j) {
      Cell& t = trace(i, j);

      // State M: consume a[i-1] and b[j-1].
      const float sub = matrix.score(a[i - 1], b[j - 1]);
      float best = prev_m[j - 1];
      std::uint8_t from = kM;
      if (prev_x[j - 1] > best) {
        best = prev_x[j - 1];
        from = kX;
      }
      if (prev_y[j - 1] > best) {
        best = prev_y[j - 1];
        from = kY;
      }
      cur_m[j] = best + sub;
      t.came_from[kM] = from;

      // State X: gap in A (consume b[j-1]); horizontal move.
      const float open_x = cur_m[j - 1] - gaps.open;
      const float ext_x = cur_x[j - 1] - gaps.extend;
      const float via_y = cur_y[j - 1] - gaps.open;
      if (ext_x >= open_x && ext_x >= via_y) {
        cur_x[j] = ext_x;
        t.came_from[kX] = kX;
      } else if (open_x >= via_y) {
        cur_x[j] = open_x;
        t.came_from[kX] = kM;
      } else {
        cur_x[j] = via_y;
        t.came_from[kX] = kY;
      }

      // State Y: gap in B (consume a[i-1]); vertical move.
      const float open_y = prev_m[j] - gaps.open;
      const float ext_y = prev_y[j] - gaps.extend;
      const float via_x = prev_x[j] - gaps.open;
      if (ext_y >= open_y && ext_y >= via_x) {
        cur_y[j] = ext_y;
        t.came_from[kY] = kY;
      } else if (open_y >= via_x) {
        cur_y[j] = open_y;
        t.came_from[kY] = kM;
      } else {
        cur_y[j] = via_x;
        t.came_from[kY] = kX;
      }
    }
    std::swap(prev_m, cur_m);
    std::swap(prev_x, cur_x);
    std::swap(prev_y, cur_y);
  }

  // Final state: best of the three at (m, n).
  std::uint8_t state = kM;
  float best = prev_m[n];
  if (prev_x[n] > best) {
    best = prev_x[n];
    state = kX;
  }
  if (prev_y[n] > best) {
    best = prev_y[n];
    state = kY;
  }
  out.score = best;

  // Traceback.
  std::size_t i = m;
  std::size_t j = n;
  while (i > 0 || j > 0) {
    const std::uint8_t from = trace(i, j).came_from[state];
    switch (state) {
      case kM:
        out.ops.push_back(EditOp::Match);
        --i;
        --j;
        break;
      case kX:
        out.ops.push_back(EditOp::GapInA);
        --j;
        break;
      case kY:
        out.ops.push_back(EditOp::GapInB);
        --i;
        break;
      default: break;
    }
    state = from;
  }
  std::reverse(out.ops.begin(), out.ops.end());
  return out;
}

PairwiseAlignment banded_global_align(std::span<const std::uint8_t> a,
                                      std::span<const std::uint8_t> b,
                                      const bio::SubstitutionMatrix& matrix,
                                      bio::GapPenalties gaps,
                                      std::size_t band) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();

  PairwiseAlignment out;
  if (m == 0 || n == 0) {
    out.ops.assign(std::max(m, n), m == 0 ? EditOp::GapInA : EditOp::GapInB);
    if (!out.ops.empty())
      out.score = -(gaps.open +
                    gaps.extend * static_cast<float>(out.ops.size() - 1));
    return out;
  }

  // Widen the band by the length difference so the (m, n) corner is always
  // inside it regardless of shear.
  const std::size_t diff = m > n ? m - n : n - m;
  const std::size_t eff_band = std::max<std::size_t>(band, 1) + diff;

  auto j_lo = [&](std::size_t i) -> std::size_t {
    const auto center = static_cast<std::size_t>(
        static_cast<double>(i) * static_cast<double>(n) /
        static_cast<double>(m));
    return center > eff_band ? center - eff_band : 0;
  };
  auto j_hi = [&](std::size_t i) -> std::size_t {
    const auto center = static_cast<std::size_t>(
        static_cast<double>(i) * static_cast<double>(n) /
        static_cast<double>(m));
    return std::min(n, center + eff_band);
  };

  std::vector<float> prev_m(n + 1, kNegInf), prev_x(n + 1, kNegInf),
      prev_y(n + 1, kNegInf);
  std::vector<float> cur_m(n + 1, kNegInf), cur_x(n + 1, kNegInf),
      cur_y(n + 1, kNegInf);
  util::Matrix<Cell> trace(m + 1, n + 1);

  prev_m[0] = 0.0F;
  for (std::size_t j = 1; j <= j_hi(0); ++j) {
    prev_x[j] = -(gaps.open + gaps.extend * static_cast<float>(j - 1));
    trace(0, j).came_from[kX] = kX;
  }

  for (std::size_t i = 1; i <= m; ++i) {
    const std::size_t lo = j_lo(i);
    const std::size_t hi = j_hi(i);
    std::fill(cur_m.begin(), cur_m.end(), kNegInf);
    std::fill(cur_x.begin(), cur_x.end(), kNegInf);
    std::fill(cur_y.begin(), cur_y.end(), kNegInf);
    if (lo == 0) {
      cur_y[0] = -(gaps.open + gaps.extend * static_cast<float>(i - 1));
      trace(i, 0).came_from[kY] = kY;
    }

    for (std::size_t j = std::max<std::size_t>(lo, 1); j <= hi; ++j) {
      Cell& t = trace(i, j);

      const float sub = matrix.score(a[i - 1], b[j - 1]);
      float best = prev_m[j - 1];
      std::uint8_t from = kM;
      if (prev_x[j - 1] > best) {
        best = prev_x[j - 1];
        from = kX;
      }
      if (prev_y[j - 1] > best) {
        best = prev_y[j - 1];
        from = kY;
      }
      cur_m[j] = best > kNegInf / 2 ? best + sub : kNegInf;
      t.came_from[kM] = from;

      const float open_x = cur_m[j - 1] - gaps.open;
      const float ext_x = cur_x[j - 1] - gaps.extend;
      const float via_y = cur_y[j - 1] - gaps.open;
      if (ext_x >= open_x && ext_x >= via_y) {
        cur_x[j] = ext_x;
        t.came_from[kX] = kX;
      } else if (open_x >= via_y) {
        cur_x[j] = open_x;
        t.came_from[kX] = kM;
      } else {
        cur_x[j] = via_y;
        t.came_from[kX] = kY;
      }

      const float open_y = prev_m[j] - gaps.open;
      const float ext_y = prev_y[j] - gaps.extend;
      const float via_x = prev_x[j] - gaps.open;
      if (ext_y >= open_y && ext_y >= via_x) {
        cur_y[j] = ext_y;
        t.came_from[kY] = kY;
      } else if (open_y >= via_x) {
        cur_y[j] = open_y;
        t.came_from[kY] = kM;
      } else {
        cur_y[j] = via_x;
        t.came_from[kY] = kX;
      }
    }
    std::swap(prev_m, cur_m);
    std::swap(prev_x, cur_x);
    std::swap(prev_y, cur_y);
  }

  std::uint8_t state = kM;
  float best = prev_m[n];
  if (prev_x[n] > best) {
    best = prev_x[n];
    state = kX;
  }
  if (prev_y[n] > best) {
    best = prev_y[n];
    state = kY;
  }
  out.score = best;

  std::size_t i = m;
  std::size_t j = n;
  while (i > 0 || j > 0) {
    const std::uint8_t from = trace(i, j).came_from[state];
    switch (state) {
      case kM:
        out.ops.push_back(EditOp::Match);
        --i;
        --j;
        break;
      case kX:
        out.ops.push_back(EditOp::GapInA);
        --j;
        break;
      case kY:
        out.ops.push_back(EditOp::GapInB);
        --i;
        break;
      default: break;
    }
    state = from;
  }
  std::reverse(out.ops.begin(), out.ops.end());
  return out;
}

LocalAlignment local_align(std::span<const std::uint8_t> a,
                           std::span<const std::uint8_t> b,
                           const bio::SubstitutionMatrix& matrix,
                           bio::GapPenalties gaps) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  LocalAlignment out;
  if (m == 0 || n == 0) return out;

  std::vector<float> prev_m(n + 1, kNegInf), prev_x(n + 1, kNegInf),
      prev_y(n + 1, kNegInf);
  std::vector<float> cur_m(n + 1), cur_x(n + 1), cur_y(n + 1);
  util::Matrix<LocalCell> trace(m + 1, n + 1);

  float best = 0.0F;
  std::size_t best_i = 0;
  std::size_t best_j = 0;
  std::uint8_t best_state = kStop;

  for (std::size_t i = 1; i <= m; ++i) {
    cur_m[0] = kNegInf;
    cur_x[0] = kNegInf;
    cur_y[0] = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      LocalCell& t = trace(i, j);

      const float sub = matrix.score(a[i - 1], b[j - 1]);
      // M may also start fresh (score 0 predecessor).
      float bm = 0.0F;
      std::uint8_t from = kStop;
      if (prev_m[j - 1] > bm) {
        bm = prev_m[j - 1];
        from = kM;
      }
      if (prev_x[j - 1] > bm) {
        bm = prev_x[j - 1];
        from = kX;
      }
      if (prev_y[j - 1] > bm) {
        bm = prev_y[j - 1];
        from = kY;
      }
      cur_m[j] = bm + sub;
      t.came_from[kM] = from;

      const float open_x = cur_m[j - 1] - gaps.open;
      const float ext_x = cur_x[j - 1] - gaps.extend;
      if (ext_x >= open_x) {
        cur_x[j] = ext_x;
        t.came_from[kX] = kX;
      } else {
        cur_x[j] = open_x;
        t.came_from[kX] = kM;
      }

      const float open_y = prev_m[j] - gaps.open;
      const float ext_y = prev_y[j] - gaps.extend;
      if (ext_y >= open_y) {
        cur_y[j] = ext_y;
        t.came_from[kY] = kY;
      } else {
        cur_y[j] = open_y;
        t.came_from[kY] = kM;
      }

      if (cur_m[j] > best) {
        best = cur_m[j];
        best_i = i;
        best_j = j;
        best_state = kM;
      }
    }
    std::swap(prev_m, cur_m);
    std::swap(prev_x, cur_x);
    std::swap(prev_y, cur_y);
  }

  out.score = best;
  if (best_state == kStop) return out;  // empty alignment

  std::size_t i = best_i;
  std::size_t j = best_j;
  std::uint8_t state = best_state;
  while (state != kStop) {
    const std::uint8_t from = trace(i, j).came_from[state];
    switch (state) {
      case kM:
        out.ops.push_back(EditOp::Match);
        --i;
        --j;
        break;
      case kX:
        out.ops.push_back(EditOp::GapInA);
        --j;
        break;
      case kY:
        out.ops.push_back(EditOp::GapInB);
        --i;
        break;
      default: break;
    }
    state = from;
    if (i == 0 && j == 0) break;
  }
  std::reverse(out.ops.begin(), out.ops.end());
  out.a_begin = i;
  out.b_begin = j;
  return out;
}

}  // namespace salign::align::engine::reference
