#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "align/engine/simd.hpp"

// Portable fixed-width *integer* SIMD wrappers for the striped score
// kernels, mirroring the float wrappers in simd.hpp:
//
//   * VecI8 / VecI16 — GCC/Clang vector extensions, 16 bytes (the native
//     SSE/NEON register width; wider vectors measured slower here).
//   * ScalarI8 / ScalarI16 — 1 lane. Compile-time fallback and the
//     instantiation behind Backend::kScalar, so the striped path is
//     exercised by the release-scalar preset too.
//
// Domains: each trait carries a logical<->storage bias. The int8 tier
// stores logical values v as unsigned bytes v + 128 (Farrar's biased
// representation): unsigned byte max/min are single instructions on
// baseline SSE2 (pmaxub/pminub), where signed byte max would be emulated
// with a 4-op compare/blend chain. The int16 tier stores values unbiased
// (pmaxsw is native). The bias is order-preserving and additive deltas
// (substitution scores, gap penalties) wrap identically in both domains,
// so the kernels are written once against the logical interface:
// encode()/decode() convert values at the edges, encode_delta() reinterprets
// a signed delta as a storage-type bit pattern.
//
// The striped kernels never rely on hardware saturating instructions:
// values are kept inside "rail" bounds by explicit max/min clamps sized so
// that no add or subtract can leave the storage range (see striped.cpp).

namespace salign::align::engine {

template <typename S, int kBiasV>
struct ScalarIntT {
  using Elem = S;
  static constexpr int kLanes = 1;
  static constexpr int kBias = kBiasV;
  S v;

  static Elem encode(int logical) { return static_cast<Elem>(logical + kBias); }
  static int decode(Elem e) { return static_cast<int>(e) - kBias; }
  static Elem encode_delta(int d) { return static_cast<Elem>(d); }
  static int decode_delta(Elem e) {
    return static_cast<int>(static_cast<std::make_signed_t<Elem>>(e));
  }

  static ScalarIntT splat(Elem x) { return {x}; }
  static ScalarIntT load(const Elem* p) { return {*p}; }
  void store(Elem* p) const { *p = v; }

  friend ScalarIntT operator+(ScalarIntT a, ScalarIntT b) {
    return {static_cast<Elem>(a.v + b.v)};
  }
  friend ScalarIntT operator-(ScalarIntT a, ScalarIntT b) {
    return {static_cast<Elem>(a.v - b.v)};
  }
  static ScalarIntT max(ScalarIntT a, ScalarIntT b) {
    return {a.v > b.v ? a.v : b.v};
  }
  static ScalarIntT min(ScalarIntT a, ScalarIntT b) {
    return {a.v < b.v ? a.v : b.v};
  }
  Elem lane(int) const { return v; }
};

using ScalarI8 = ScalarIntT<std::uint8_t, 128>;
using ScalarI16 = ScalarIntT<std::int16_t, 0>;

#ifdef SALIGN_HAVE_VECTOR_EXT

template <typename S, int kBiasV>
struct VecIntT {
  using Elem = S;
  static constexpr int kLanes = 16 / static_cast<int>(sizeof(S));
  static constexpr int kBias = kBiasV;
  typedef S Native __attribute__((vector_size(16), aligned(alignof(S))));
  Native v;

  static Elem encode(int logical) { return static_cast<Elem>(logical + kBias); }
  static int decode(Elem e) { return static_cast<int>(e) - kBias; }
  static Elem encode_delta(int d) { return static_cast<Elem>(d); }
  static int decode_delta(Elem e) {
    return static_cast<int>(static_cast<std::make_signed_t<Elem>>(e));
  }

  static VecIntT splat(Elem x) {
    return {static_cast<Elem>(x) - Native{}};
  }
  static VecIntT load(const Elem* p) {
    VecIntT r;
    __builtin_memcpy(&r.v, p, sizeof(Native));  // unaligned load
    return r;
  }
  void store(Elem* p) const { __builtin_memcpy(p, &v, sizeof(Native)); }

  friend VecIntT operator+(VecIntT a, VecIntT b) { return {a.v + b.v}; }
  friend VecIntT operator-(VecIntT a, VecIntT b) { return {a.v - b.v}; }
  static VecIntT max(VecIntT a, VecIntT b) { return {a.v > b.v ? a.v : b.v}; }
  static VecIntT min(VecIntT a, VecIntT b) { return {a.v < b.v ? a.v : b.v}; }

  Elem lane(int i) const { return v[i]; }
};

using VecI8 = VecIntT<std::uint8_t, 128>;
using VecI16 = VecIntT<std::int16_t, 0>;

#else

// No vector extension: alias the scalar lanes, exactly as simd.hpp does for
// floats, so every striped instantiation still compiles.
using VecI8 = ScalarI8;
using VecI16 = ScalarI16;

#endif  // SALIGN_HAVE_VECTOR_EXT

}  // namespace salign::align::engine
