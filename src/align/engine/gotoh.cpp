// Blocked anti-diagonal Gotoh kernels.
//
// Layout: the three affine states (M = match, X = gap in A, Y = gap in B)
// are held per anti-diagonal d = i + j as arrays indexed by the row i. On a
// diagonal every cell depends only on diagonals d-1 (X from the left cell,
// Y from the cell above) and d-2 (M from the diagonal cell), so the whole
// diagonal updates with element-wise vector max/add — no in-loop dependency
// and no branches. Substitution scores come from a QueryProfile row gather
// into a scratch diagonal, the only scalar step per cell.
//
// Exactness: each cell performs the same IEEE single-precision operations in
// the same operand order as the retained reference kernels
// (engine/reference.cpp), so scores are bit-identical and traceback
// decisions — re-derived from stored state values with the reference's
// comparison chains — are identical too. Unreachable cells use the
// align::kNegInf sentinel; adding or subtracting any realistic score is
// absorbed by float rounding (see engine.hpp), which is what makes the
// reference's banded clamp (`best > kNegInf/2`) a no-op we can drop.
//
// Memory: score-only passes keep three diagonals (O(m + n)). Full
// alignments store every ~sqrt(m)-th row of state values during the forward
// pass and recompute one block of rows at a time during traceback, so no
// O(m·n) traceback matrix is ever allocated.

#include "align/engine/gotoh.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "align/engine/engine.hpp"
#include "align/engine/query_profile.hpp"

namespace salign::align::engine::detail {

namespace {

enum State : std::uint8_t { kM = 0, kX = 1, kY = 2, kStop = 3 };

// ---- band geometry ---------------------------------------------------------

/// Per-row DP column intervals [lo[i], hi[i]], identical to the historical
/// banded_global_align geometry (band half-width widened by the length
/// difference so the (m, n) corner stays inside). `banded == false` yields
/// the full rectangle.
struct RowBounds {
  std::vector<std::size_t> lo, hi;  // indexed by row 0..m

  [[nodiscard]] std::size_t bytes() const {
    return (lo.capacity() + hi.capacity()) * sizeof(std::size_t);
  }
};

RowBounds make_bounds(std::size_t m, std::size_t n, std::size_t band,
                      bool banded) {
  RowBounds rb;
  rb.lo.assign(m + 1, 0);
  rb.hi.assign(m + 1, n);
  if (!banded) return rb;
  const std::size_t diff = m > n ? m - n : n - m;
  const std::size_t eff_band = std::max<std::size_t>(band, 1) + diff;
  for (std::size_t i = 0; i <= m; ++i) {
    const auto center = static_cast<std::size_t>(
        static_cast<double>(i) * static_cast<double>(n) /
        static_cast<double>(m));
    rb.lo[i] = center > eff_band ? center - eff_band : 0;
    rb.hi[i] = std::min(n, center + eff_band);
  }
  return rb;
}

// ---- forward-pass sinks ----------------------------------------------------

/// Row-state checkpoints captured during the forward pass: full (M, X, Y)
/// rows every K-th row, kNegInf elsewhere.
struct Checkpoints {
  std::size_t interval = 0;  // K
  std::size_t stride = 0;    // n + 1
  std::vector<float> m, x, y;

  void init(std::size_t k, std::size_t rows, std::size_t cols) {
    interval = k;
    stride = cols;
    const std::size_t count = rows / k + 1;
    m.assign(count * stride, kNegInf);
    x.assign(count * stride, kNegInf);
    y.assign(count * stride, kNegInf);
  }
  [[nodiscard]] const float* row_m(std::size_t row) const {
    return m.data() + row / interval * stride;
  }
  [[nodiscard]] const float* row_x(std::size_t row) const {
    return x.data() + row / interval * stride;
  }
  [[nodiscard]] const float* row_y(std::size_t row) const {
    return y.data() + row / interval * stride;
  }
};

/// All three state values of a contiguous row block [r0, r0 + rows), used by
/// the traceback to re-derive the reference kernels' came_from decisions.
/// Values are stored diagonal-major — cell (local diag d, local row r) lives
/// at slot d * rows + r — so the kernel's per-diagonal output arrays land
/// with three contiguous copies instead of a per-cell scatter.
struct Block {
  std::size_t r0 = 0;
  std::size_t rows = 0;    // includes the seed row r0
  std::size_t stride = 0;  // == rows: slots per diagonal
  std::vector<float> m, x, y;

  /// `fill` preloads every slot with kNegInf; required for banded runs,
  /// where out-of-band cells are never written but are read as neighbors
  /// during the walk. Full-rectangle runs write every slot that is ever
  /// read, so they skip it.
  void init(std::size_t seed_row, std::size_t row_count, std::size_t jcap,
            bool fill) {
    r0 = seed_row;
    rows = row_count;
    stride = row_count;
    const std::size_t need = (row_count + jcap) * stride;
    if (fill) {
      m.assign(need, kNegInf);
      x.assign(need, kNegInf);
      y.assign(need, kNegInf);
    } else {
      m.resize(need);
      x.resize(need);
      y.resize(need);
    }
  }
  [[nodiscard]] std::size_t at(std::size_t i, std::size_t j) const {
    const std::size_t r = i - r0;
    return (r + j) * stride + r;
  }
  [[nodiscard]] float M(std::size_t i, std::size_t j) const { return m[at(i, j)]; }
  [[nodiscard]] float X(std::size_t i, std::size_t j) const { return x[at(i, j)]; }
  [[nodiscard]] float Y(std::size_t i, std::size_t j) const { return y[at(i, j)]; }
};

struct NullSink {
  void diagonal(std::size_t, bool, std::size_t, std::size_t, bool,
                std::size_t, const float*, const float*, const float*) {}
};

struct CheckpointSink {
  Checkpoints* cp;
  // Rows here are absolute (the forward pass runs with r0 == 0).
  void diagonal(std::size_t d, bool has_b0, std::size_t ilo, std::size_t ihi,
                bool has_bd, std::size_t /*r0*/, const float* m0,
                const float* x0, const float* y0) {
    const std::size_t k = cp->interval;
    auto capture = [&](std::size_t r) {
      const std::size_t j = d - r;
      const std::size_t at = r / k * cp->stride + j;
      cp->m[at] = m0[r];
      cp->x[at] = x0[r];
      cp->y[at] = y0[r];
    };
    if (has_b0) capture(0);
    if (ilo <= ihi)
      for (std::size_t r = (ilo + k - 1) / k * k; r <= ihi; r += k)
        capture(r);
    if (has_bd && d % k == 0 && d > 0) capture(d);
  }
};

/// Short inline copy: block diagonals are a few dozen floats, where an
/// out-of-line memmove call costs more than the copy itself.
inline void copy_floats(const float* src, float* dst, std::size_t len) {
  for (std::size_t t = 0; t < len; ++t) dst[t] = src[t];
}

struct BlockSink {
  Block* blk;
  // Rows handed to diagonal() are block-local (0 = seed row); the seed row
  // itself is filled by the caller, so has_b0 cells are skipped. The block's
  // diagonal-major layout makes each capture a contiguous copy.
  void diagonal(std::size_t d, bool /*has_b0*/, std::size_t ilo,
                std::size_t ihi, bool has_bd, std::size_t /*r0*/,
                const float* m0, const float* x0, const float* y0) {
    const std::size_t base = d * blk->stride;
    if (ilo <= ihi) {
      const std::size_t len = ihi - ilo + 1;
      copy_floats(m0 + ilo, blk->m.data() + base + ilo, len);
      copy_floats(x0 + ilo, blk->x.data() + base + ilo, len);
      copy_floats(y0 + ilo, blk->y.data() + base + ilo, len);
    }
    if (has_bd) {  // column-0 cell; always above the interior range
      blk->m[base + d] = m0[d];
      blk->x[base + d] = x0[d];
      blk->y[base + d] = y0[d];
    }
  }
};

/// Running best M cell for local alignment, with the reference's row-major
/// first-winner tie rule (scan order there: i ascending, then j ascending,
/// strict >).
struct LocalBest {
  float value = 0.0F;
  std::size_t i = 0, j = 0;
  bool found = false;

  void offer(float v, std::size_t ci, std::size_t cj) {
    if (!found) {
      if (v > value) {
        value = v;
        i = ci;
        j = cj;
        found = true;
      }
      return;
    }
    if (v > value || (v == value && (ci < i || (ci == i && cj < j)))) {
      value = v;
      i = ci;
      j = cj;
      found = true;
    }
  }
};

// ---- the anti-diagonal kernel ----------------------------------------------

/// Shared problem description for one run of the kernel.
struct Problem {
  const float* const* score_rows = nullptr;   // per absolute row: QP row
  std::size_t m = 0, n = 0;                   // full DP extents
  float open = 0.0F, ext = 0.0F;
  const std::size_t* jlo = nullptr;           // per absolute row 0..m
  const std::size_t* jhi = nullptr;
};

/// Reusable diagonal workspace: 9 state diagonals + score scratch, padded so
/// vector loads/stores at the range ends stay inside the allocation.
struct DiagWorkspace {
  std::vector<float> buf;
  std::size_t padded = 0;

  void init(std::size_t rows, int lanes) {
    padded = rows + 2 + static_cast<std::size_t>(lanes);
    buf.assign(10 * padded, kNegInf);
    std::fill_n(buf.begin() + static_cast<std::ptrdiff_t>(9 * padded), padded,
                0.0F);
  }
  [[nodiscard]] float* lane(std::size_t idx) { return buf.data() + idx * padded; }
  [[nodiscard]] std::size_t bytes() const {
    return buf.capacity() * sizeof(float);
  }
};

/// Runs rows [r0+1, r0+rows] x cols [0, jcap] of the DP over anti-diagonals,
/// seeded with row r0's state values (seed_* index by column). Invokes
/// `sink.diagonal()` after every diagonal; tracks the local best-M cell when
/// `best` is non-null; writes the (r0+rows, jcap) corner state values into
/// `corner[3]` when non-null.
template <typename V, bool kLocal, typename Sink>
void run_diagonals(const Problem& pb, std::size_t r0, std::size_t rows,
                   std::size_t jcap, const float* seed_m, const float* seed_x,
                   const float* seed_y, DiagWorkspace& ws, Sink&& sink,
                   [[maybe_unused]] LocalBest* best, float* corner) {
  constexpr std::size_t W = static_cast<std::size_t>(V::kLanes);
  ws.init(rows, V::kLanes);
  float* m2 = ws.lane(0);
  float* x2 = ws.lane(1);
  float* y2 = ws.lane(2);
  float* m1 = ws.lane(3);
  float* x1 = ws.lane(4);
  float* y1 = ws.lane(5);
  float* m0 = ws.lane(6);
  float* x0 = ws.lane(7);
  float* y0 = ws.lane(8);
  float* sub = ws.lane(9);

  const V vopen = V::splat(pb.open);
  const V vext = V::splat(pb.ext);
  const V vneg = V::splat(kNegInf);
  [[maybe_unused]] const V vzero = V::splat(0.0F);

  // Monotone band pointers over block-local rows i' (absolute row r0 + i').
  std::size_t pmin = 1;
  std::size_t pmax = 0;
  auto eff_hi = [&](std::size_t i) {
    return std::min(pb.jhi[r0 + i], jcap);
  };

  const std::size_t last = rows + jcap;
  for (std::size_t d = 0; d <= last; ++d) {
    // Interior cells: i' in [1, rows], j = d - i' in [1, jcap], inside band.
    std::size_t ilo = 1;
    std::size_t ihi = 0;
    if (d >= 2) {
      ilo = d > jcap ? d - jcap : 1;
      ihi = std::min(rows, d - 1);
      while (pmin <= rows && pmin + eff_hi(pmin) < d) ++pmin;
      while (pmax + 1 <= rows && (pmax + 1) + pb.jlo[r0 + pmax + 1] <= d)
        ++pmax;
      ilo = std::max(ilo, pmin);
      ihi = std::min(ihi, pmax);
    }

    if (ilo <= ihi) {
      for (std::size_t i = ilo; i <= ihi; ++i)
        sub[i] = pb.score_rows[r0 + i][d - i - 1];
      for (std::size_t i = ilo; i <= ihi; i += W) {
        V mm = max3(V::load(m2 + i - 1), V::load(x2 + i - 1),
                    V::load(y2 + i - 1));
        if constexpr (kLocal) mm = V::max(mm, vzero);
        const V mv = mm + V::load(sub + i);
        V xv, yv;
        if constexpr (kLocal) {
          xv = V::max(V::load(m1 + i) - vopen, V::load(x1 + i) - vext);
          yv = V::max(V::load(m1 + i - 1) - vopen, V::load(y1 + i - 1) - vext);
        } else {
          xv = max3(V::load(m1 + i) - vopen, V::load(x1 + i) - vext,
                    V::load(y1 + i) - vopen);
          yv = max3(V::load(m1 + i - 1) - vopen, V::load(y1 + i - 1) - vext,
                    V::load(x1 + i - 1) - vopen);
        }
        mv.store(m0 + i);
        xv.store(x0 + i);
        yv.store(y0 + i);
      }
      // Neutralize tail-lane overrun and mark the range edge for the next
      // two diagonals (ranges shift by at most one per diagonal).
      vneg.store(m0 + ihi + 1);
      vneg.store(x0 + ihi + 1);
      vneg.store(y0 + ihi + 1);
      if (ilo >= 1) {
        m0[ilo - 1] = kNegInf;
        x0[ilo - 1] = kNegInf;
        y0[ilo - 1] = kNegInf;
      }

      if constexpr (kLocal) {
        if (best != nullptr) {
          float diag_max = kNegInf;
          std::size_t i = ilo;
          if (ihi - ilo + 1 >= W) {
            V acc = V::load(m0 + i);
            for (i += W; i + W - 1 <= ihi; i += W)
              acc = V::max(acc, V::load(m0 + i));
            for (std::size_t l = 0; l < W; ++l)
              diag_max = std::max(diag_max, acc.lane(static_cast<int>(l)));
          }
          for (; i <= ihi; ++i) diag_max = std::max(diag_max, m0[i]);
          if (diag_max > best->value ||
              (best->found && diag_max == best->value)) {
            for (std::size_t c = ilo; c <= ihi; ++c)
              if (m0[c] == diag_max) {
                best->offer(diag_max, r0 + c, d - c);
                break;
              }
          }
        }
      }
    }

    // Border cells. Row r0 (i' == 0) comes from the seed row; column 0 uses
    // the standard origin-anchored gap run (global) or stays unreachable
    // (local), exactly as in the reference kernels.
    const bool has_b0 = d <= jcap;
    if (has_b0) {
      m0[0] = seed_m[d];
      x0[0] = seed_x[d];
      y0[0] = seed_y[d];
    }
    const bool has_bd = d >= 1 && d <= rows;
    if (has_bd) {
      m0[d] = kNegInf;
      x0[d] = kNegInf;
      const std::size_t abs_row = r0 + d;
      y0[d] = (!kLocal && pb.jlo[abs_row] == 0)
                  ? -(pb.open + pb.ext * static_cast<float>(abs_row - 1))
                  : kNegInf;
    }

    sink.diagonal(d, has_b0, ilo, ihi, has_bd, r0, m0, x0, y0);

    if (corner != nullptr && d == last) {
      corner[kM] = m0[rows];
      corner[kX] = x0[rows];
      corner[kY] = y0[rows];
    }

    // Rotate: current becomes d-1, d-1 becomes d-2, d-2 is recycled.
    std::swap(m2, m1);
    std::swap(x2, x1);
    std::swap(y2, y1);
    std::swap(m1, m0);
    std::swap(x1, x0);
    std::swap(y1, y0);
  }
}

// ---- shared setup ----------------------------------------------------------

/// Standard first-row boundary values (cols 0..n): the seed of the top-level
/// forward pass.
void make_row0_seed(std::size_t n, float open, float ext, std::size_t hi0,
                    bool local, std::vector<float>& sm, std::vector<float>& sx,
                    std::vector<float>& sy) {
  sm.assign(n + 1, kNegInf);
  sx.assign(n + 1, kNegInf);
  sy.assign(n + 1, kNegInf);
  if (local) return;
  sm[0] = 0.0F;
  for (std::size_t j = 1; j <= hi0; ++j)
    sx[j] = -(open + ext * static_cast<float>(j - 1));
}

/// Checkpoint interval: ~sqrt(m), floored so tiny problems use one block.
std::size_t checkpoint_interval(std::size_t m) {
  const auto root = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(m))));
  return std::clamp<std::size_t>(root, 32, 4096);
}

struct ForwardState {
  QueryProfile qp;
  std::vector<const float*> score_rows;  // per absolute row 1..m
  RowBounds bounds;
  std::vector<float> seed_m, seed_x, seed_y;
  Problem pb;
  bool banded = false;

  ForwardState(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
               const bio::SubstitutionMatrix& matrix, bio::GapPenalties gaps,
               std::size_t band, bool banded, bool local)
      : qp(b, matrix), banded(banded) {
    const std::size_t m = a.size();
    const std::size_t n = b.size();
    score_rows.assign(m + 1, nullptr);
    for (std::size_t i = 1; i <= m; ++i) score_rows[i] = qp.row(a[i - 1]);
    bounds = make_bounds(m, n, band, banded);
    make_row0_seed(n, gaps.open, gaps.extend, bounds.hi[0], local, seed_m,
                   seed_x, seed_y);
    pb = Problem{score_rows.data(), m,           n,
                 gaps.open,         gaps.extend, bounds.lo.data(),
                 bounds.hi.data()};
  }

  [[nodiscard]] std::size_t bytes() const {
    return qp.bytes() + score_rows.capacity() * sizeof(const float*) +
           bounds.bytes() + (seed_m.capacity() + seed_x.capacity() +
                             seed_y.capacity()) * sizeof(float);
  }
};

std::uint8_t pick_final_state(const float corner[3]) {
  std::uint8_t state = kM;
  float best = corner[kM];
  if (corner[kX] > best) {
    best = corner[kX];
    state = kX;
  }
  if (corner[kY] > best) state = kY;
  return state;
}

// ---- traceback: came_from re-derivation ------------------------------------

/// Reference global chains, applied to the stored state values. Must stay in
/// lock-step with engine/reference.cpp.
std::uint8_t came_from_global(const Block& blk, std::size_t i, std::size_t j,
                              std::uint8_t state, float open, float ext) {
  switch (state) {
    case kM: {
      const float pm = blk.M(i - 1, j - 1);
      const float px = blk.X(i - 1, j - 1);
      const float py = blk.Y(i - 1, j - 1);
      float best = pm;
      std::uint8_t from = kM;
      if (px > best) {
        best = px;
        from = kX;
      }
      if (py > best) from = kY;
      return from;
    }
    case kX: {
      const float open_x = blk.M(i, j - 1) - open;
      const float ext_x = blk.X(i, j - 1) - ext;
      const float via_y = blk.Y(i, j - 1) - open;
      if (ext_x >= open_x && ext_x >= via_y) return kX;
      return open_x >= via_y ? kM : kY;
    }
    default: {
      const float open_y = blk.M(i - 1, j) - open;
      const float ext_y = blk.Y(i - 1, j) - ext;
      const float via_x = blk.X(i - 1, j) - open;
      if (ext_y >= open_y && ext_y >= via_x) return kY;
      return open_y >= via_x ? kM : kX;
    }
  }
}

/// Reference local chains (no X<->Y cross moves; M may start fresh).
std::uint8_t came_from_local(const Block& blk, std::size_t i, std::size_t j,
                             std::uint8_t state, float open, float ext) {
  switch (state) {
    case kM: {
      float best = 0.0F;
      std::uint8_t from = kStop;
      if (blk.M(i - 1, j - 1) > best) {
        best = blk.M(i - 1, j - 1);
        from = kM;
      }
      if (blk.X(i - 1, j - 1) > best) {
        best = blk.X(i - 1, j - 1);
        from = kX;
      }
      if (blk.Y(i - 1, j - 1) > best) from = kY;
      return from;
    }
    case kX:
      return blk.X(i, j - 1) - ext >= blk.M(i, j - 1) - open ? kX : kM;
    default:
      return blk.Y(i - 1, j) - ext >= blk.M(i - 1, j) - open ? kY : kM;
  }
}

/// Recomputes block rows [r0+1, top] x cols [0, jcap] from the checkpoint at
/// r0, storing all state values for the traceback walk.
template <typename V, bool kLocal>
void load_block(const ForwardState& fs, const Checkpoints& cp, std::size_t top,
                std::size_t jcap, DiagWorkspace& ws, Block& blk) {
  const std::size_t k = cp.interval;
  const std::size_t r0 = (top - 1) / k * k;
  blk.init(r0, top - r0 + 1, jcap, fs.banded);
  const float* sm = cp.row_m(r0);
  const float* sx = cp.row_x(r0);
  const float* sy = cp.row_y(r0);
  for (std::size_t j = 0; j <= jcap; ++j) {
    const std::size_t at = j * blk.stride;  // seed row: local row 0, diag j
    blk.m[at] = sm[j];
    blk.x[at] = sx[j];
    blk.y[at] = sy[j];
  }
  run_diagonals<V, kLocal>(fs.pb, r0, top - r0, jcap, sm, sx, sy, ws,
                           BlockSink{&blk}, nullptr, nullptr);
}

}  // namespace

// ---- entry points ----------------------------------------------------------

template <typename V>
float global_score_impl(std::span<const std::uint8_t> a,
                        std::span<const std::uint8_t> b,
                        const bio::SubstitutionMatrix& matrix,
                        bio::GapPenalties gaps, std::size_t band, bool banded,
                        std::size_t* workspace_bytes) {
  const ForwardState fs(a, b, matrix, gaps, band, banded, /*local=*/false);
  DiagWorkspace ws;
  float corner[3] = {kNegInf, kNegInf, kNegInf};
  run_diagonals<V, false>(fs.pb, 0, a.size(), b.size(), fs.seed_m.data(),
                          fs.seed_x.data(), fs.seed_y.data(), ws, NullSink{},
                          nullptr, corner);
  if (workspace_bytes != nullptr) *workspace_bytes = fs.bytes() + ws.bytes();
  return std::max({corner[kM], corner[kX], corner[kY]});
}

template <typename V>
PairwiseAlignment global_align_impl(std::span<const std::uint8_t> a,
                                    std::span<const std::uint8_t> b,
                                    const bio::SubstitutionMatrix& matrix,
                                    bio::GapPenalties gaps, std::size_t band,
                                    bool banded) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const ForwardState fs(a, b, matrix, gaps, band, banded, /*local=*/false);

  Checkpoints cp;
  cp.init(checkpoint_interval(m), m, n + 1);
  DiagWorkspace ws;
  float corner[3] = {kNegInf, kNegInf, kNegInf};
  run_diagonals<V, false>(fs.pb, 0, m, n, fs.seed_m.data(), fs.seed_x.data(),
                          fs.seed_y.data(), ws, CheckpointSink{&cp}, nullptr,
                          corner);

  PairwiseAlignment out;
  std::uint8_t state = pick_final_state(corner);
  out.score = corner[state];

  Block blk;
  std::size_t i = m;
  std::size_t j = n;
  while (i > 0 || j > 0) {
    if (i == 0) {
      out.ops.push_back(EditOp::GapInA);
      --j;
      continue;
    }
    if (j == 0) {
      out.ops.push_back(EditOp::GapInB);
      --i;
      continue;
    }
    if (blk.rows == 0 || i <= blk.r0)
      load_block<V, false>(fs, cp, i, j, ws, blk);
    const std::uint8_t from =
        came_from_global(blk, i, j, state, gaps.open, gaps.extend);
    switch (state) {
      case kM:
        out.ops.push_back(EditOp::Match);
        --i;
        --j;
        break;
      case kX:
        out.ops.push_back(EditOp::GapInA);
        --j;
        break;
      default:
        out.ops.push_back(EditOp::GapInB);
        --i;
        break;
    }
    state = from;
  }
  std::reverse(out.ops.begin(), out.ops.end());
  return out;
}

template <typename V>
LocalAlignment local_align_impl(std::span<const std::uint8_t> a,
                                std::span<const std::uint8_t> b,
                                const bio::SubstitutionMatrix& matrix,
                                bio::GapPenalties gaps) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const ForwardState fs(a, b, matrix, gaps, 0, /*banded=*/false,
                        /*local=*/true);

  Checkpoints cp;
  cp.init(checkpoint_interval(m), m, n + 1);
  DiagWorkspace ws;
  LocalBest best;
  run_diagonals<V, true>(fs.pb, 0, m, n, fs.seed_m.data(), fs.seed_x.data(),
                         fs.seed_y.data(), ws, CheckpointSink{&cp}, &best,
                         nullptr);

  LocalAlignment out;
  out.score = best.found ? best.value : 0.0F;
  if (!best.found) return out;  // empty alignment

  Block blk;
  std::size_t i = best.i;
  std::size_t j = best.j;
  std::uint8_t state = kM;
  while (state != kStop) {
    if (blk.rows == 0 || i <= blk.r0)
      load_block<V, true>(fs, cp, i, j, ws, blk);
    const std::uint8_t from =
        came_from_local(blk, i, j, state, gaps.open, gaps.extend);
    switch (state) {
      case kM:
        out.ops.push_back(EditOp::Match);
        --i;
        --j;
        break;
      case kX:
        out.ops.push_back(EditOp::GapInA);
        --j;
        break;
      default:
        out.ops.push_back(EditOp::GapInB);
        --i;
        break;
    }
    state = from;
    if (i == 0 && j == 0) break;
  }
  std::reverse(out.ops.begin(), out.ops.end());
  out.a_begin = i;
  out.b_begin = j;
  return out;
}

template float global_score_impl<ScalarF>(std::span<const std::uint8_t>,
                                          std::span<const std::uint8_t>,
                                          const bio::SubstitutionMatrix&,
                                          bio::GapPenalties, std::size_t, bool,
                                          std::size_t*);
template PairwiseAlignment global_align_impl<ScalarF>(
    std::span<const std::uint8_t>, std::span<const std::uint8_t>,
    const bio::SubstitutionMatrix&, bio::GapPenalties, std::size_t, bool);
template LocalAlignment local_align_impl<ScalarF>(
    std::span<const std::uint8_t>, std::span<const std::uint8_t>,
    const bio::SubstitutionMatrix&, bio::GapPenalties);

#ifdef SALIGN_HAVE_VECTOR_EXT
template float global_score_impl<VecF>(std::span<const std::uint8_t>,
                                       std::span<const std::uint8_t>,
                                       const bio::SubstitutionMatrix&,
                                       bio::GapPenalties, std::size_t, bool,
                                       std::size_t*);
template PairwiseAlignment global_align_impl<VecF>(
    std::span<const std::uint8_t>, std::span<const std::uint8_t>,
    const bio::SubstitutionMatrix&, bio::GapPenalties, std::size_t, bool);
template LocalAlignment local_align_impl<VecF>(
    std::span<const std::uint8_t>, std::span<const std::uint8_t>,
    const bio::SubstitutionMatrix&, bio::GapPenalties);
#endif

}  // namespace salign::align::engine::detail
