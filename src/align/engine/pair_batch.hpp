#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "align/engine/engine.hpp"

namespace salign::align::engine {

/// Inter-pair batched int8 global aligner: one PAIR per SIMD lane.
///
/// The striped per-pair tiers lay ONE query across the lanes, which starves
/// the vector unit when sequences are short (a 60-residue query fills 4 of
/// 16 int8 lanes' worth of stripe depth and pays the cross-lane carry scan
/// regardless). In the short-read regime of the distance stage — thousands
/// of tiny pairwise alignments, the workload Pyro-Align batches — the
/// classic alternative wins: 16 independent pairwise DPs advance in
/// lock-step, lane l holding pair l's cell (i, j). There is no cross-lane
/// dependency at all, and because eligible pairs are short, the kernel
/// simply stores EVERY H/E/F column (a few hundred KB), making the
/// traceback a pure table walk with no recompute.
///
/// Exactness contract: same as the striped tiers. Lanes whose H touched a
/// rail, or whose stored E/F sat on the floor (traceback reads them), are
/// reported not-ok and must retake the per-pair ladder; ok lanes are
/// bit-identical to engine::reference::global_align in score, ops and
/// tie-breaks. Group geometry runs to the longest member's (M, N), so
/// callers should length-sort before grouping — the padded overhang only
/// costs spurious saturation flags, never wrong results.
class PairBatch {
 public:
  struct Pair {
    std::span<const std::uint8_t> a, b;
  };

  PairBatch(const bio::SubstitutionMatrix& matrix, bio::GapPenalties gaps,
            Backend backend = default_backend());
  ~PairBatch();
  PairBatch(PairBatch&&) noexcept;
  PairBatch& operator=(PairBatch&&) noexcept;
  PairBatch(const PairBatch&) = delete;
  PairBatch& operator=(const PairBatch&) = delete;

  /// Pairs per kernel pass (the int8 lane count of the backend; 1 on the
  /// scalar backend, which still exercises the full code path).
  [[nodiscard]] std::size_t lanes() const;

  /// Largest length (either side) of a batch-eligible pair: the int8
  /// boundary-rail bound of the (matrix, gaps) combination, capped so the
  /// full column store stays small. 0 when the matrix/gaps fail the integer
  /// gate entirely — batching is then unavailable.
  [[nodiscard]] std::size_t max_len() const;

  /// Aligns pairs[0 .. min(lanes(), pairs.size())) in one pass. For each
  /// pair i: ok[i] == true and out[i] holds the reference-identical
  /// alignment, or ok[i] == false (lane saturated a rail) and out[i] is
  /// untouched. Both sides of every pair must be non-empty and no longer
  /// than max_len(). Not thread-safe (reuses the column store).
  void align(std::span<const Pair> pairs, PairwiseAlignment* out, bool* ok);

  /// Bytes of the reusable column store (workspace accounting).
  [[nodiscard]] std::size_t workspace_bytes() const;

  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace salign::align::engine
