#pragma once

#include <cstddef>

// Portable fixed-width float SIMD wrappers for the alignment engine.
//
// Two backends share one interface so every kernel is written once and
// instantiated twice:
//
//   * VecF  — GCC/Clang vector extensions, 8 lanes (the compiler lowers a
//             32-byte vector to whatever the target ISA provides: 2x SSE,
//             1x AVX, NEON pairs, ...).
//   * ScalarF — 1 lane, plain float. This is the compile-time fallback for
//             compilers without the extension and the path the differential
//             tests pin the vector path against.
//
// Both backends perform IEEE single-precision adds/subs/maxes in the same
// per-cell operand order, so kernel results are bit-identical across lanes
// widths — the property the exact-match differential tests rely on.
//
// SALIGN_HAVE_VECTOR_EXT is defined when the vector backend is compiled in;
// the engine's *default* backend additionally honours the
// SALIGN_ENGINE_FORCE_SCALAR build option (see engine.cpp).

#if defined(__GNUC__) && !defined(__clang_analyzer__)
#define SALIGN_HAVE_VECTOR_EXT 1
#endif

namespace salign::align::engine {

/// 1-lane backend: the scalar reference semantics.
struct ScalarF {
  static constexpr int kLanes = 1;
  float v;

  static ScalarF splat(float x) { return {x}; }
  static ScalarF load(const float* p) { return {*p}; }
  void store(float* p) const { *p = v; }

  friend ScalarF operator+(ScalarF a, ScalarF b) { return {a.v + b.v}; }
  friend ScalarF operator-(ScalarF a, ScalarF b) { return {a.v - b.v}; }

  static ScalarF max(ScalarF a, ScalarF b) { return {a.v > b.v ? a.v : b.v}; }

  float lane(int) const { return v; }
};

#ifdef SALIGN_HAVE_VECTOR_EXT

// Lane count follows what the target ISA can blend in one instruction: GCC
// lowers the vector compare-select to a single maxps/vmaxps only at (or
// below) the native register width — oversized vectors get scalarized, which
// is far slower than not vectorizing at all.
#if defined(__AVX__)
#define SALIGN_ENGINE_LANES 8
#else
#define SALIGN_ENGINE_LANES 4
#endif

/// Fixed-width float vector over GCC/Clang vector extensions.
struct VecF {
  static constexpr int kLanes = SALIGN_ENGINE_LANES;
  typedef float Native __attribute__((vector_size(kLanes * sizeof(float)),
                                      aligned(alignof(float))));
  typedef int Mask __attribute__((vector_size(kLanes * sizeof(int)),
                                  aligned(alignof(float))));
  Native v;

  static VecF splat(float x) { return {x - Native{}}; }
  static VecF load(const float* p) {
    VecF r;
    __builtin_memcpy(&r.v, p, sizeof(Native));  // unaligned load
    return r;
  }
  void store(float* p) const { __builtin_memcpy(p, &v, sizeof(Native)); }

  friend VecF operator+(VecF a, VecF b) { return {a.v + b.v}; }
  friend VecF operator-(VecF a, VecF b) { return {a.v - b.v}; }

  static VecF max(VecF a, VecF b) {
    const Mask m = a.v > b.v;
    return {m ? a.v : b.v};
  }

  float lane(int i) const { return v[i]; }
};

#else

// No vector extension: alias the scalar backend so kernel instantiations
// over VecF still compile (and the engine degrades to one lane everywhere).
using VecF = ScalarF;

#endif  // SALIGN_HAVE_VECTOR_EXT

template <typename V>
inline V max3(V a, V b, V c) {
  return V::max(V::max(a, b), c);
}

}  // namespace salign::align::engine
