#pragma once

// Internal kernel entry points of the alignment engine. Only engine.cpp and
// the tests should include this; everything else goes through
// align/engine/engine.hpp.

#include <cstddef>
#include <cstdint>
#include <span>

#include "align/engine/simd.hpp"
#include "align/pairwise.hpp"

namespace salign::align::engine::detail {

/// Score-only affine-gap global alignment over anti-diagonals. O(m + n)
/// workspace; `banded` selects the sheared-band cell set of
/// banded_global_align. `workspace_bytes` (optional) receives the total DP
/// workspace allocated.
template <typename V>
float global_score_impl(std::span<const std::uint8_t> a,
                        std::span<const std::uint8_t> b,
                        const bio::SubstitutionMatrix& matrix,
                        bio::GapPenalties gaps, std::size_t band, bool banded,
                        std::size_t* workspace_bytes);

/// Full global alignment: anti-diagonal forward pass with row checkpoints
/// every ~sqrt(m) rows, then block-wise recompute during traceback. Exact
/// score/op/tie-break parity with the reference kernels.
template <typename V>
PairwiseAlignment global_align_impl(std::span<const std::uint8_t> a,
                                    std::span<const std::uint8_t> b,
                                    const bio::SubstitutionMatrix& matrix,
                                    bio::GapPenalties gaps, std::size_t band,
                                    bool banded);

/// Full local (Smith–Waterman) alignment with the same checkpointed
/// traceback machinery.
template <typename V>
LocalAlignment local_align_impl(std::span<const std::uint8_t> a,
                                std::span<const std::uint8_t> b,
                                const bio::SubstitutionMatrix& matrix,
                                bio::GapPenalties gaps);

extern template float global_score_impl<ScalarF>(
    std::span<const std::uint8_t>, std::span<const std::uint8_t>,
    const bio::SubstitutionMatrix&, bio::GapPenalties, std::size_t, bool,
    std::size_t*);
extern template PairwiseAlignment global_align_impl<ScalarF>(
    std::span<const std::uint8_t>, std::span<const std::uint8_t>,
    const bio::SubstitutionMatrix&, bio::GapPenalties, std::size_t, bool);
extern template LocalAlignment local_align_impl<ScalarF>(
    std::span<const std::uint8_t>, std::span<const std::uint8_t>,
    const bio::SubstitutionMatrix&, bio::GapPenalties);

#ifdef SALIGN_HAVE_VECTOR_EXT
extern template float global_score_impl<VecF>(
    std::span<const std::uint8_t>, std::span<const std::uint8_t>,
    const bio::SubstitutionMatrix&, bio::GapPenalties, std::size_t, bool,
    std::size_t*);
extern template PairwiseAlignment global_align_impl<VecF>(
    std::span<const std::uint8_t>, std::span<const std::uint8_t>,
    const bio::SubstitutionMatrix&, bio::GapPenalties, std::size_t, bool);
extern template LocalAlignment local_align_impl<VecF>(
    std::span<const std::uint8_t>, std::span<const std::uint8_t>,
    const bio::SubstitutionMatrix&, bio::GapPenalties);
#endif

}  // namespace salign::align::engine::detail
