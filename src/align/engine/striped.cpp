// Striped (Farrar-layout) saturating integer score kernels.
//
// Equivalence with the 3-state reference recurrence: the reference keeps
//   M(i,j) = max(M,X,Y)(i-1,j-1) + sub(i,j)
//   X(i,j) = max(M(i,j-1) - open, X(i,j-1) - ext, Y(i,j-1) - open)
//   Y(i,j) = max(M(i-1,j) - open, Y(i-1,j) - ext, X(i-1,j) - open)
// and scores the corner as max(M,X,Y)(m,n). With H = max(M,X,Y) the
// combined recurrence
//   H = max(H(i-1,j-1) + sub, E, F)
//   E(i,j) = max(H(i,j-1) - open, E(i,j-1) - ext)
//   F(i,j) = max(H(i-1,j) - open, F(i-1,j) - ext)
// expands E to max(M-open, X-open, Y-open, X-ext); when open >= ext the
// X-open term is dominated by X-ext, leaving exactly X(i,j) (same for F
// and Y), and H(m,n) is exactly the reference's corner max. The integer
// kernels therefore gate on open >= ext >= 1 and integral scores; every
// value they compute is then the exact DP integer, which a float
// represents exactly — hence bit-identical scores.
//
// Saturation: values are clamped into [floor_rail, ceil_rail], with the
// rails pulled in from the tier's limits by the largest single-step delta,
// so no arithmetic op can ever leave the storage range. floor_rail doubles
// as the -inf sentinel (it is sticky under "subtract then clamp"). Any
// inexact value is clamped to exactly a rail, and becomes visible the
// moment it wins a cell: the kernel tracks the running min/max of every
// stored H and reports saturation when either touched a rail, at which
// point the caller discards the score and promotes to the next tier
// (int8 -> int16 -> float).
//
// Lazy-F in closed form: the main pass handles every within-lane F chain;
// what is missing is the carry entering each lane's first row. Reopening
// from a carry-corrected cell (H - open) is always dominated by plain carry
// decay (H - ext, as open >= ext), so lane l's incoming carry depends only
// on lane l-1's main-pass outgoing F and lane l-1's own incoming carry
// decayed across its t rows:
//   g[0] = H(0,j) - open,   g[l] = max(F_out[l-1], g[l-1] - ext*t).
// That max-plus recurrence is a weighted prefix max, computed with
// log2(lanes) shift-decay-max steps, followed by ONE corrected sweep that
// applies the per-lane carries (decaying ext per row) and re-maxes the E
// row (E feeds the next column from H). No iterative re-walking, no
// per-iteration mask reductions.

#include "align/engine/striped.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "bio/alphabet.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace salign::align::engine::detail {

namespace {

constexpr int kMaxMagnitude = 4096;  // sanity cap for scores and penalties

/// Row-0 boundary of the combined DP: H(0,0) = 0, H(0,j) = X(0,j).
std::int64_t boundary_h0(std::int64_t j, std::int64_t open, std::int64_t ext) {
  return j == 0 ? 0 : -(open + ext * (j - 1));
}

/// Lane shift toward higher indices by the compile-time count, with the
/// vacated low lanes taken from `low_fill` (a vector that is zero outside
/// its low `kCount` lanes). Real query rows occupy the LOW lanes, so
/// padded-lane garbage can never flow into a real lane through this shift.
/// On SSE2 this is one byte-shift plus one OR; elsewhere a small staging
/// buffer (also the ScalarInt path, where the shift degenerates to the
/// fill itself).
template <std::size_t kCount, typename VI>
VI shift_up(VI v, VI low_fill) {
  using Elem = typename VI::Elem;
  constexpr auto kW = static_cast<std::size_t>(VI::kLanes);
  if constexpr (kCount >= kW) {
    (void)v;
    return low_fill;
  }
#if defined(__SSE2__) && defined(SALIGN_HAVE_VECTOR_EXT)
  else if constexpr (sizeof(typename VI::Native) == 16) {
    __m128i x;
    __builtin_memcpy(&x, &v.v, 16);
    x = _mm_slli_si128(x, kCount * sizeof(Elem));
    __m128i f;
    __builtin_memcpy(&f, &low_fill.v, 16);
    x = _mm_or_si128(x, f);
    VI r;
    __builtin_memcpy(&r.v, &x, 16);
    return r;
  }
#endif
  else {
    Elem buf[2 * kW];
    low_fill.store(buf);
    v.store(buf + kCount);
    return VI::load(buf);
  }
}

/// Builds the `low_fill` companion of shift_up: value `x` in the low
/// `count` lanes, zero elsewhere.
template <typename VI>
VI low_lanes(typename VI::Elem x, std::size_t count) {
  using Elem = typename VI::Elem;
  constexpr auto kW = static_cast<std::size_t>(VI::kLanes);
  Elem buf[kW] = {};
  for (std::size_t i = 0; i < count && i < kW; ++i) buf[i] = x;
  return VI::load(buf);
}

}  // namespace

IntGate scan_int_gate(const bio::SubstitutionMatrix& matrix,
                      bio::GapPenalties gaps) {
  IntGate g;
  const float open_r = std::nearbyint(gaps.open);
  const float ext_r = std::nearbyint(gaps.extend);
  if (open_r != gaps.open || ext_r != gaps.extend) return g;
  g.open = static_cast<int>(open_r);
  g.ext = static_cast<int>(ext_r);
  if (g.ext < 1 || g.open < g.ext || g.open > kMaxMagnitude) return g;

  const int alpha = bio::Alphabet::get(matrix.alphabet_kind()).size();
  for (int a = 0; a < alpha; ++a) {
    for (int b = 0; b < alpha; ++b) {
      const float s = matrix.score(static_cast<std::uint8_t>(a),
                                   static_cast<std::uint8_t>(b));
      const float r = std::nearbyint(s);
      if (r != s || std::abs(r) > kMaxMagnitude) return g;
      const int si = static_cast<int>(r);
      g.max_pos = std::max(g.max_pos, si);
      g.max_neg = std::max(g.max_neg, -si);
    }
  }
  g.integral = true;
  return g;
}

template <typename VI>
StripedProfile<VI>::StripedProfile(std::span<const std::uint8_t> query,
                                   const bio::SubstitutionMatrix& matrix,
                                   const IntGate& gate)
    : m_(query.size()), gate_(gate) {
  using Lim = std::numeric_limits<Elem>;
  if (!gate.integral || m_ == 0) return;

  const int max_neg_step =
      std::max({gate.open + 1, gate.ext, gate.max_neg});
  const int max_pos_step = gate.max_pos;
  // Rails in LOGICAL values; the trait's bias maps logical [min, max] onto
  // its storage range.
  const int lo = static_cast<int>(Lim::min()) - VI::kBias;
  const int hi = static_cast<int>(Lim::max()) - VI::kBias;
  const int floor_l = lo + max_neg_step;
  const int ceil_l = hi - max_pos_step;
  // The rails must leave a usable operating range around 0 (H(0,0) = 0).
  if (floor_l >= -1 || ceil_l <= 1) return;
  floor_ = floor_l;
  ceil_ = ceil_l;

  constexpr auto kW = static_cast<std::size_t>(VI::kLanes);
  segs_ = (m_ + kW - 1) / kW;
  // Query-side boundary viability: the column-0 values of the REAL rows and
  // their derived E seeds must sit strictly above the floor rail (padded
  // rows clamp — they are inert); viable_for() re-checks with the
  // counterpart's length.
  if (!StripedProfile::viable_for_impl(m_ + 1, gate_, floor_l)) return;

  const auto alpha = static_cast<std::size_t>(
      bio::Alphabet::get(matrix.alphabet_kind()).size());
  data_.assign(alpha * segs_ * kW, VI::encode_delta(0));
  for (std::size_t c = 0; c < alpha; ++c) {
    Elem* out = data_.data() + c * segs_ * kW;
    for (std::size_t l = 0; l < kW; ++l) {
      for (std::size_t k = 0; k < segs_; ++k) {
        const std::size_t s = l * segs_ + k;
        if (s < m_)
          out[k * kW + l] = VI::encode_delta(static_cast<int>(std::lround(
              matrix.score(query[s], static_cast<std::uint8_t>(c)))));
      }
    }
  }
  viable_ = true;
}

template <typename VI>
bool StripedProfile<VI>::viable_for(std::size_t other_len) const {
  if (!viable_) return false;
  return viable_for_impl(std::max(other_len, m_) + 1, gate_, floor_);
}

template <typename VI>
bool StripedProfile<VI>::viable_for_impl(std::size_t max_len,
                                         const IntGate& gate,
                                         std::int64_t floor64) {
  // Deepest boundary-adjacent value the kernel materializes exactly: a
  // boundary gap run of max_len extends, re-opened once (the E seed /
  // lazy-F seed), with one worst-case substitution of slack so that
  // near-boundary interior cells do not routinely brush the rail.
  const std::int64_t need =
      static_cast<std::int64_t>(gate.open) +
      std::max<std::int64_t>(gate.open, gate.max_neg) +
      static_cast<std::int64_t>(gate.ext) *
          static_cast<std::int64_t>(max_len);
  return need <= -floor64 - 1;
}

template <typename VI>
bool striped_score(const StripedProfile<VI>& profile,
                   std::span<const std::uint8_t> other,
                   StripedWorkspace<VI>& ws, float* score) {
  using Elem = typename VI::Elem;
  constexpr auto kW = static_cast<std::size_t>(VI::kLanes);
  const std::size_t t = profile.segs();
  const std::size_t m = profile.query_len();
  const std::size_t n = other.size();
  const auto open64 = static_cast<std::int64_t>(profile.gate().open);
  const auto ext64 = static_cast<std::int64_t>(profile.gate().ext);
  const int floor_l = profile.floor_rail();
  const int ceil_l = profile.ceil_rail();
  const Elem floor_enc = VI::encode(floor_l);
  const Elem ceil_enc = VI::encode(ceil_l);

  ws.ensure(t * kW);
  Elem* h_cur = ws.h_a.data();
  Elem* h_prev = ws.h_b.data();
  Elem* e = ws.e.data();

  // Column 0: H(i,0) = -(open + ext*(i-1)) and the first-column E seed
  // E(i,1) = H(i,0) - open (E(i,0) = -inf never survives the max). Real
  // rows are rail-safe by viable_for(); padded rows (i > m) clamp to just
  // above the floor — lane shifts only move values toward HIGHER lanes and
  // real rows occupy the low lanes, so padded values are inert and merely
  // must not raise spurious saturation flags.
  const auto floor64 = static_cast<std::int64_t>(floor_l);
  for (std::size_t l = 0; l < kW; ++l) {
    for (std::size_t k = 0; k < t; ++k) {
      const auto i = static_cast<std::int64_t>(l * t + k) + 1;
      const std::int64_t h =
          std::max(-(open64 + ext64 * (i - 1)), floor64 + 1);
      h_cur[k * kW + l] = VI::encode(static_cast<int>(h));
      e[k * kW + l] =
          VI::encode(static_cast<int>(std::max(h - open64, floor64)));
    }
  }

  const VI v_floor = VI::splat(floor_enc);
  const VI v_ceil = VI::splat(ceil_enc);
  const VI v_open = VI::splat(VI::encode_delta(static_cast<int>(open64)));
  const VI v_ext = VI::splat(VI::encode_delta(static_cast<int>(ext64)));
  VI v_sat_max = v_floor;
  VI v_sat_min = v_ceil;

  // Per-pair constants of the scan: at shift distance `step` lanes the
  // carry has decayed ext*t*step. Decays beyond the live value range floor
  // out; the max-with-guard before subtracting keeps the subtraction inside
  // the storage range (deltas wider than the element type wrap — harmless,
  // the guarded operand makes the result exact). Shifted-in lanes carry the
  // floor sentinel.
  const std::int64_t ext_lane = ext64 * static_cast<std::int64_t>(t);
  const int range = ceil_l - floor_l;
  VI g_decay[6], g_guard[6], g_fill[6];
  {
    std::size_t s = 0;
    for (std::size_t step = 1; step < kW; step *= 2, ++s) {
      const int d = static_cast<int>(std::min<std::int64_t>(
          ext_lane * static_cast<std::int64_t>(step), range));
      g_decay[s] = VI::splat(VI::encode_delta(d));
      g_guard[s] = VI::splat(VI::encode(floor_l + d));
      g_fill[s] = low_lanes<VI>(floor_enc, step);
    }
  }

  // The carry of a column is applied lazily while the NEXT column reads it
  // (and by one final sweep after the last column): v_g holds the pending
  // per-lane carries, v_last the carry-corrected last stripe vector of the
  // previous column (the diagonal feed). Column 0 is exact by construction,
  // so it starts with no pending carry.
  VI v_g = v_floor;
  VI v_last = VI::load(h_cur + (t - 1) * kW);
  // Decay of a carry across t-1 rows, for correcting the last stripe right
  // after its column's scan (same guarded-subtract scheme as the scan).
  const int d_last = static_cast<int>(std::min<std::int64_t>(
      ext64 * static_cast<std::int64_t>(t - 1), range));
  const VI v_last_decay = VI::splat(VI::encode_delta(d_last));
  const VI v_last_guard = VI::splat(VI::encode(floor_l + d_last));

  for (std::size_t j = 1; j <= n; ++j) {
    const Elem* prof = profile.row(other[j - 1]);
    std::swap(h_cur, h_prev);

    // Diagonal feed: previous column's (corrected) H shifted down one query
    // row, with the row-0 boundary H(0, j-1) entering lane 0.
    VI v_h = shift_up<1>(
        v_last,
        low_lanes<VI>(VI::encode(static_cast<int>(boundary_h0(
                          static_cast<std::int64_t>(j) - 1, open64, ext64))),
                      1));
    VI v_f = v_floor;

    for (std::size_t k = 0; k < t; ++k) {
      // Apply the previous column's pending carry to the stripe being read
      // (this is the deferred correction sweep, fused into the reload), fix
      // the E row it feeds, and rail-check the now-final value.
      const VI v_hp = VI::max(VI::load(h_prev + k * kW), v_g);
      v_g = VI::max(v_g - v_ext, v_floor);
      v_sat_max = VI::max(v_sat_max, v_hp);
      v_sat_min = VI::min(v_sat_min, v_hp);
      const VI v_e = VI::max(VI::load(e + k * kW), v_hp - v_open);
      v_h = v_h + VI::load(prof + k * kW);
      v_h = VI::max(v_h, v_e);
      v_h = VI::max(v_h, v_f);
      v_h = VI::min(v_h, v_ceil);
      v_h.store(h_cur + k * kW);
      const VI v_h_open = v_h - v_open;
      VI v_e_next = VI::max(v_e - v_ext, v_h_open);
      v_e_next = VI::max(v_e_next, v_floor);
      v_e_next.store(e + k * kW);
      v_f = VI::max(v_f - v_ext, v_h_open);
      v_f = VI::max(v_f, v_floor);
      v_h = v_hp;
    }

    // Cross-lane carry scan (see file comment): seed with H(0,j) - open,
    // then log-step weighted prefix max over the lanes.
    v_g = shift_up<1>(
        v_f, low_lanes<VI>(
                 VI::encode(static_cast<int>(std::max(
                     boundary_h0(static_cast<std::int64_t>(j), open64,
                                 ext64) -
                         open64,
                     floor64))),
                 1));
    if constexpr (kW > 1)
      v_g = VI::max(v_g,
                    VI::max(shift_up<1>(v_g, g_fill[0]), g_guard[0]) -
                        g_decay[0]);
    if constexpr (kW > 2)
      v_g = VI::max(v_g,
                    VI::max(shift_up<2>(v_g, g_fill[1]), g_guard[1]) -
                        g_decay[1]);
    if constexpr (kW > 4)
      v_g = VI::max(v_g,
                    VI::max(shift_up<4>(v_g, g_fill[2]), g_guard[2]) -
                        g_decay[2]);
    if constexpr (kW > 8)
      v_g = VI::max(v_g,
                    VI::max(shift_up<8>(v_g, g_fill[3]), g_guard[3]) -
                        g_decay[3]);
    if constexpr (kW > 16)
      v_g = VI::max(v_g,
                    VI::max(shift_up<16>(v_g, g_fill[4]), g_guard[4]) -
                        g_decay[4]);

    // v_g is now the pending carry of column j, applied while column j+1
    // reads the stripes back. Only the next diagonal feed needs a corrected
    // value right away: the last stripe, with the carry decayed t-1 rows.
    v_last = VI::max(VI::load(h_cur + (t - 1) * kW),
                     VI::max(v_g, v_last_guard) - v_last_decay);
  }

  // Final sweep: the last column still has its carry pending; apply it so
  // the corner is final and its values are rail-checked.
  for (std::size_t k = 0; k < t; ++k) {
    VI v_h2 = VI::max(VI::load(h_cur + k * kW), v_g);
    v_h2.store(h_cur + k * kW);
    v_sat_max = VI::max(v_sat_max, v_h2);
    v_sat_min = VI::min(v_sat_min, v_h2);
    v_g = VI::max(v_g - v_ext, v_floor);
  }

  // Saturation: any stored H on a rail invalidates the run (legitimate
  // rail-valued cells promote too — conservative, never wrong).
  Elem seen_max = floor_enc;
  Elem seen_min = ceil_enc;
  for (int l = 0; l < VI::kLanes; ++l) {
    seen_max = std::max(seen_max, v_sat_max.lane(l));
    seen_min = std::min(seen_min, v_sat_min.lane(l));
  }
  if (seen_max >= ceil_enc || seen_min <= floor_enc) return false;

  const std::size_t corner = m - 1;
  *score = static_cast<float>(
      VI::decode(h_cur[(corner % t) * kW + corner / t]));
  return true;
}

template class StripedProfile<ScalarI8>;
template class StripedProfile<ScalarI16>;
template bool striped_score<ScalarI8>(const StripedProfile<ScalarI8>&,
                                      std::span<const std::uint8_t>,
                                      StripedWorkspace<ScalarI8>&, float*);
template bool striped_score<ScalarI16>(const StripedProfile<ScalarI16>&,
                                       std::span<const std::uint8_t>,
                                       StripedWorkspace<ScalarI16>&, float*);

#ifdef SALIGN_HAVE_VECTOR_EXT
template class StripedProfile<VecI8>;
template class StripedProfile<VecI16>;
template bool striped_score<VecI8>(const StripedProfile<VecI8>&,
                                   std::span<const std::uint8_t>,
                                   StripedWorkspace<VecI8>&, float*);
template bool striped_score<VecI16>(const StripedProfile<VecI16>&,
                                    std::span<const std::uint8_t>,
                                    StripedWorkspace<VecI16>&, float*);
#endif

}  // namespace salign::align::engine::detail
