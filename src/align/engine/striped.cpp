// Striped (Farrar-layout) saturating integer score kernels.
//
// Equivalence with the 3-state reference recurrence: the reference keeps
//   M(i,j) = max(M,X,Y)(i-1,j-1) + sub(i,j)
//   X(i,j) = max(M(i,j-1) - open, X(i,j-1) - ext, Y(i,j-1) - open)
//   Y(i,j) = max(M(i-1,j) - open, Y(i-1,j) - ext, X(i-1,j) - open)
// and scores the corner as max(M,X,Y)(m,n). With H = max(M,X,Y) the
// combined recurrence
//   H = max(H(i-1,j-1) + sub, E, F)
//   E(i,j) = max(H(i,j-1) - open, E(i,j-1) - ext)
//   F(i,j) = max(H(i-1,j) - open, F(i-1,j) - ext)
// expands E to max(M-open, X-open, Y-open, X-ext); when open >= ext the
// X-open term is dominated by X-ext, leaving exactly X(i,j) (same for F
// and Y), and H(m,n) is exactly the reference's corner max. The integer
// kernels therefore gate on open >= ext >= 1 and integral scores; every
// value they compute is then the exact DP integer, which a float
// represents exactly — hence bit-identical scores.
//
// Saturation: values are clamped into [floor_rail, ceil_rail], with the
// rails pulled in from the tier's limits by the largest single-step delta,
// so no arithmetic op can ever leave the storage range. floor_rail doubles
// as the -inf sentinel (it is sticky under "subtract then clamp"). Any
// inexact value is clamped to exactly a rail, and becomes visible the
// moment it wins a cell: the kernel tracks the running min/max of every
// stored H and reports saturation when either touched a rail, at which
// point the caller discards the score and promotes to the next tier
// (int8 -> int16 -> float).
//
// Lazy-F in closed form: the main pass handles every within-lane F chain;
// what is missing is the carry entering each lane's first row. Reopening
// from a carry-corrected cell (H - open) is always dominated by plain carry
// decay (H - ext, as open >= ext), so lane l's incoming carry depends only
// on lane l-1's main-pass outgoing F and lane l-1's own incoming carry
// decayed across its t rows:
//   g[0] = H(0,j) - open,   g[l] = max(F_out[l-1], g[l-1] - ext*t).
// That max-plus recurrence is a weighted prefix max, computed with
// log2(lanes) shift-decay-max steps, followed by ONE corrected sweep that
// applies the per-lane carries (decaying ext per row) and re-maxes the E
// row (E feeds the next column from H). No iterative re-walking, no
// per-iteration mask reductions.

#include "align/engine/striped.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "align/engine/int_trace.hpp"
#include "bio/alphabet.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace salign::align::engine::detail {

namespace {

constexpr int kMaxMagnitude = 4096;  // sanity cap for scores and penalties

/// Row-0 boundary of the combined DP: H(0,0) = 0, H(0,j) = X(0,j).
std::int64_t boundary_h0(std::int64_t j, std::int64_t open, std::int64_t ext) {
  return j == 0 ? 0 : -(open + ext * (j - 1));
}

/// Lane shift toward higher indices by the compile-time count, with the
/// vacated low lanes taken from `low_fill` (a vector that is zero outside
/// its low `kCount` lanes). Real query rows occupy the LOW lanes, so
/// padded-lane garbage can never flow into a real lane through this shift.
/// On SSE2 this is one byte-shift plus one OR; elsewhere a small staging
/// buffer (also the ScalarInt path, where the shift degenerates to the
/// fill itself).
template <std::size_t kCount, typename VI>
VI shift_up(VI v, VI low_fill) {
  using Elem = typename VI::Elem;
  constexpr auto kW = static_cast<std::size_t>(VI::kLanes);
  if constexpr (kCount >= kW) {
    (void)v;
    return low_fill;
  }
#if defined(__SSE2__) && defined(SALIGN_HAVE_VECTOR_EXT)
  else if constexpr (sizeof(typename VI::Native) == 16) {
    __m128i x;
    __builtin_memcpy(&x, &v.v, 16);
    x = _mm_slli_si128(x, kCount * sizeof(Elem));
    __m128i f;
    __builtin_memcpy(&f, &low_fill.v, 16);
    x = _mm_or_si128(x, f);
    VI r;
    __builtin_memcpy(&r.v, &x, 16);
    return r;
  }
#endif
  else {
    Elem buf[2 * kW];
    low_fill.store(buf);
    v.store(buf + kCount);
    return VI::load(buf);
  }
}

/// Builds the `low_fill` companion of shift_up: value `x` in the low
/// `count` lanes, zero elsewhere.
template <typename VI>
VI low_lanes(typename VI::Elem x, std::size_t count) {
  using Elem = typename VI::Elem;
  constexpr auto kW = static_cast<std::size_t>(VI::kLanes);
  Elem buf[kW] = {};
  for (std::size_t i = 0; i < count && i < kW; ++i) buf[i] = x;
  return VI::load(buf);
}

}  // namespace

IntGate scan_int_gate(const bio::SubstitutionMatrix& matrix,
                      bio::GapPenalties gaps) {
  IntGate g;
  const float open_r = std::nearbyint(gaps.open);
  const float ext_r = std::nearbyint(gaps.extend);
  if (open_r != gaps.open || ext_r != gaps.extend) return g;
  g.open = static_cast<int>(open_r);
  g.ext = static_cast<int>(ext_r);
  if (g.ext < 1 || g.open < g.ext || g.open > kMaxMagnitude) return g;

  const int alpha = bio::Alphabet::get(matrix.alphabet_kind()).size();
  for (int a = 0; a < alpha; ++a) {
    for (int b = 0; b < alpha; ++b) {
      const float s = matrix.score(static_cast<std::uint8_t>(a),
                                   static_cast<std::uint8_t>(b));
      const float r = std::nearbyint(s);
      if (r != s || std::abs(r) > kMaxMagnitude) return g;
      const int si = static_cast<int>(r);
      g.max_pos = std::max(g.max_pos, si);
      g.max_neg = std::max(g.max_neg, -si);
    }
  }
  g.integral = true;
  return g;
}

template <typename VI>
StripedProfile<VI>::StripedProfile(std::span<const std::uint8_t> query,
                                   const bio::SubstitutionMatrix& matrix,
                                   const IntGate& gate)
    : m_(query.size()), gate_(gate) {
  if (!gate.integral || m_ == 0) return;

  // Rails in LOGICAL values (int_rails is the single shared definition;
  // the trait's bias maps logical [min, max] onto its storage range). The
  // rails must leave a usable operating range around 0 (H(0,0) = 0).
  const IntRails rails = int_rails<VI>(gate);
  if (!rails.usable) return;
  floor_ = rails.floor_l;
  ceil_ = rails.ceil_l;

  constexpr auto kW = static_cast<std::size_t>(VI::kLanes);
  segs_ = (m_ + kW - 1) / kW;
  // Query-side boundary viability: the column-0 values of the REAL rows and
  // their derived E seeds must sit strictly above the floor rail (padded
  // rows clamp — they are inert); viable_for() re-checks with the
  // counterpart's length.
  if (!StripedProfile::viable_for_impl(m_ + 1, gate_, floor_)) return;

  const auto alpha = static_cast<std::size_t>(
      bio::Alphabet::get(matrix.alphabet_kind()).size());
  data_.assign(alpha * segs_ * kW, VI::encode_delta(0));
  for (std::size_t c = 0; c < alpha; ++c) {
    Elem* out = data_.data() + c * segs_ * kW;
    for (std::size_t l = 0; l < kW; ++l) {
      for (std::size_t k = 0; k < segs_; ++k) {
        const std::size_t s = l * segs_ + k;
        if (s < m_)
          out[k * kW + l] = VI::encode_delta(static_cast<int>(std::lround(
              matrix.score(query[s], static_cast<std::uint8_t>(c)))));
      }
    }
  }
  viable_ = true;
}

template <typename VI>
bool StripedProfile<VI>::viable_for(std::size_t other_len) const {
  if (!viable_) return false;
  return viable_for_impl(std::max(other_len, m_) + 1, gate_, floor_);
}

template <typename VI>
bool StripedProfile<VI>::viable_for_impl(std::size_t max_len,
                                         const IntGate& gate,
                                         std::int64_t floor64) {
  // boundary_need (striped.hpp) is the shared deepest-boundary-value
  // formula; PairBatch inverts the same bound for its eligibility cap.
  return boundary_need(gate, max_len) <= -floor64 - 1;
}

// striped_score is defined below, after AlignPass: both the score pass and
// the alignment passes run AlignPass::run_column, so the score/alignment
// tier agreement is structural, not by parallel maintenance.

// ---------------------------------------------------------------------------
// Striped full alignment (column-checkpointed traceback)
//
// The forward pass is the score kernel's column walk with two additions:
// every ~sqrt(n)-th column it captures a checkpoint (the column's FINAL H —
// the pending carry applied to a copy — plus the raw E array, whose
// read-time re-max against final-H-minus-open regenerates the exact E of
// the next column), and the walk is factored through AlignPass::run_column
// so the traceback's block recompute runs the exact same operations.
//
// The traceback walks the reference kernel's came_from chains
// (int_trace.hpp) over exact cell values. A block recompute restarts at the
// nearest checkpoint c0 <= j-2 with no pending carry (the checkpoint is
// final by construction) and stores, for each recomputed column, the final
// H, E and F:
//   * E(i,j) is the carry-corrected value the kernel computes when it reads
//     the E array back — captured for free in the main loop;
//   * F(i,j) = max(F_main, g[l] - ext*k): the main pass's within-lane chain,
//     re-maxed with the column's cross-lane carry decayed ext per row — the
//     same correction the deferred H sweep applies, so both are produced by
//     one fused post-scan sweep per column.
// The reference states then are X = E, Y = F, M(i,j) = H(i-1,j-1) + sub.
//
// Alignment-tier rails: score-only passes may let E/F clamp at the floor
// (a clamp only matters if it wins a cell, which pins H to the rail and is
// caught), but the traceback reads E/F values directly, so any recomputed
// block whose E or F sat on the floor in a REAL lane aborts the traceback
// and promotes. Padded lanes sit at the floor by construction; the
// workspace's pad_guard masks them out of the check.
// ---------------------------------------------------------------------------

namespace {

/// Column-checkpoint spacing: ~sqrt(n), clamped like the float engine's row
/// interval so tiny problems run as one block.
std::size_t column_interval(std::size_t n) {
  const auto root =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  return std::clamp<std::size_t>(root, 32, 4096);
}

/// Per-stripe sink of AlignPass::run_column: the forward pass stores
/// nothing, the block pass captures the final E and the pre-carry F.
struct NoCells {
  template <typename VI>
  void cell(std::size_t, VI, VI) {}
};

template <typename VI>
struct StoreCells {
  using Elem = typename VI::Elem;
  Elem* e_col;
  Elem* f_col;
  const Elem* guard;  // per-slot pad guard (see StripedAlignWorkspace)
  VI* e_track;        // running min of guarded E

  void cell(std::size_t k, VI v_e, VI v_f_main) {
    constexpr auto kW = static_cast<std::size_t>(VI::kLanes);
    v_e.store(e_col + k * kW);
    v_f_main.store(f_col + k * kW);
    *e_track = VI::min(*e_track, VI::max(v_e, VI::load(guard + k * kW)));
  }
};

/// Shared constants + the column body of the striped alignment kernel. The
/// forward and block passes both run run_column, so the recomputed block
/// values are bit-identical to the forward pass by construction.
template <typename VI>
struct AlignPass {
  using Elem = typename VI::Elem;
  static constexpr auto kW = static_cast<std::size_t>(VI::kLanes);

  const StripedProfile<VI>& profile;
  std::span<const std::uint8_t> other;
  std::size_t t, m, n, slots;
  std::int64_t open64, ext64;
  int floor_l, ceil_l;
  Elem floor_enc, ceil_enc;
  VI v_floor, v_ceil, v_open, v_ext;
  VI g_decay[6], g_guard[6], g_fill[6];
  VI v_last_decay, v_last_guard;

  AlignPass(const StripedProfile<VI>& p, std::span<const std::uint8_t> o)
      : profile(p),
        other(o),
        t(p.segs()),
        m(p.query_len()),
        n(o.size()),
        slots(t * kW),
        open64(p.gate().open),
        ext64(p.gate().ext),
        floor_l(p.floor_rail()),
        ceil_l(p.ceil_rail()),
        floor_enc(VI::encode(floor_l)),
        ceil_enc(VI::encode(ceil_l)),
        v_floor(VI::splat(floor_enc)),
        v_ceil(VI::splat(ceil_enc)),
        v_open(VI::splat(VI::encode_delta(static_cast<int>(open64)))),
        v_ext(VI::splat(VI::encode_delta(static_cast<int>(ext64)))) {
    const std::int64_t ext_lane = ext64 * static_cast<std::int64_t>(t);
    const int range = ceil_l - floor_l;
    std::size_t s = 0;
    for (std::size_t step = 1; step < kW; step *= 2, ++s) {
      const int d = static_cast<int>(std::min<std::int64_t>(
          ext_lane * static_cast<std::int64_t>(step), range));
      g_decay[s] = VI::splat(VI::encode_delta(d));
      g_guard[s] = VI::splat(VI::encode(floor_l + d));
      g_fill[s] = low_lanes<VI>(floor_enc, step);
    }
    const int d_last = static_cast<int>(std::min<std::int64_t>(
        ext64 * static_cast<std::int64_t>(t - 1), range));
    v_last_decay = VI::splat(VI::encode_delta(d_last));
    v_last_guard = VI::splat(VI::encode(floor_l + d_last));
  }

  /// Column-0 boundary state, identical to striped_score's init.
  void init_column0(Elem* h, Elem* e) const {
    const auto floor64 = static_cast<std::int64_t>(floor_l);
    for (std::size_t l = 0; l < kW; ++l) {
      for (std::size_t k = 0; k < t; ++k) {
        const auto i = static_cast<std::int64_t>(l * t + k) + 1;
        const std::int64_t hv =
            std::max(-(open64 + ext64 * (i - 1)), floor64 + 1);
        h[k * kW + l] = VI::encode(static_cast<int>(hv));
        e[k * kW + l] =
            VI::encode(static_cast<int>(std::max(hv - open64, floor64)));
      }
    }
  }

  /// One column of the kernel: identical operations to striped_score's
  /// inner loop + carry scan + last-stripe correction, with `sink.cell()`
  /// observing the final E and the pre-carry F of each stripe.
  template <typename Sink>
  void run_column(std::size_t j, Elem* h_cur, const Elem* h_prev, Elem* e,
                  VI& v_g, VI& v_last, VI& v_sat_max, VI& v_sat_min,
                  Sink&& sink) const {
    const auto floor64 = static_cast<std::int64_t>(floor_l);
    const Elem* prof = profile.row(other[j - 1]);

    VI v_h = shift_up<1>(
        v_last,
        low_lanes<VI>(VI::encode(static_cast<int>(boundary_h0(
                          static_cast<std::int64_t>(j) - 1, open64, ext64))),
                      1));
    VI v_f = v_floor;

    for (std::size_t k = 0; k < t; ++k) {
      const VI v_hp = VI::max(VI::load(h_prev + k * kW), v_g);
      v_g = VI::max(v_g - v_ext, v_floor);
      v_sat_max = VI::max(v_sat_max, v_hp);
      v_sat_min = VI::min(v_sat_min, v_hp);
      const VI v_e = VI::max(VI::load(e + k * kW), v_hp - v_open);
      sink.cell(k, v_e, v_f);
      v_h = v_h + VI::load(prof + k * kW);
      v_h = VI::max(v_h, v_e);
      v_h = VI::max(v_h, v_f);
      v_h = VI::min(v_h, v_ceil);
      v_h.store(h_cur + k * kW);
      const VI v_h_open = v_h - v_open;
      VI v_e_next = VI::max(v_e - v_ext, v_h_open);
      v_e_next = VI::max(v_e_next, v_floor);
      v_e_next.store(e + k * kW);
      v_f = VI::max(v_f - v_ext, v_h_open);
      v_f = VI::max(v_f, v_floor);
      v_h = v_hp;
    }

    v_g = shift_up<1>(
        v_f, low_lanes<VI>(
                 VI::encode(static_cast<int>(std::max(
                     boundary_h0(static_cast<std::int64_t>(j), open64,
                                 ext64) -
                         open64,
                     floor64))),
                 1));
    if constexpr (kW > 1)
      v_g = VI::max(v_g,
                    VI::max(shift_up<1>(v_g, g_fill[0]), g_guard[0]) -
                        g_decay[0]);
    if constexpr (kW > 2)
      v_g = VI::max(v_g,
                    VI::max(shift_up<2>(v_g, g_fill[1]), g_guard[1]) -
                        g_decay[1]);
    if constexpr (kW > 4)
      v_g = VI::max(v_g,
                    VI::max(shift_up<4>(v_g, g_fill[2]), g_guard[2]) -
                        g_decay[2]);
    if constexpr (kW > 8)
      v_g = VI::max(v_g,
                    VI::max(shift_up<8>(v_g, g_fill[3]), g_guard[3]) -
                        g_decay[3]);
    if constexpr (kW > 16)
      v_g = VI::max(v_g,
                    VI::max(shift_up<16>(v_g, g_fill[4]), g_guard[4]) -
                        g_decay[4]);

    v_last = VI::max(VI::load(h_cur + (t - 1) * kW),
                     VI::max(v_g, v_last_guard) - v_last_decay);
  }

  /// Corrected copy: out_h[k] = max(h[k], carry decayed), the same deferred
  /// sweep the next column's reads would apply. Leaves `h` and the live
  /// carry untouched.
  void corrected_h(const Elem* h, VI v_g, Elem* out_h) const {
    for (std::size_t k = 0; k < t; ++k) {
      const VI vh = VI::max(VI::load(h + k * kW), v_g);
      vh.store(out_h + k * kW);
      v_g = VI::max(v_g - v_ext, v_floor);
    }
  }
};

/// Values adapter of the shared integer traceback walker: analytic
/// boundaries, block-stored interior, M derived from H and the profile's
/// substitution deltas. ensure() recomputes the block whose stored columns
/// [c0+1, top] (plus the seed column c0) cover j and j-1.
template <typename VI>
struct StripedTraceValues {
  using Elem = typename VI::Elem;
  static constexpr auto kW = static_cast<std::size_t>(VI::kLanes);

  const AlignPass<VI>& ap;
  StripedAlignWorkspace<VI>& ws;
  std::size_t interval;
  std::int64_t open, ext;
  std::size_t c0 = 0, top = 0;
  bool loaded = false;

  StripedTraceValues(const AlignPass<VI>& pass, StripedAlignWorkspace<VI>& w,
                     std::size_t k)
      : ap(pass), ws(w), interval(k), open(pass.open64), ext(pass.ext64) {}

  [[nodiscard]] std::size_t slot(std::size_t i) const {
    return ((i - 1) % ap.t) * kW + (i - 1) / ap.t;
  }
  [[nodiscard]] std::int64_t stored(const std::vector<Elem>& cols,
                                    std::size_t i, std::size_t j) const {
    return VI::decode(cols[(j - c0 - 1) * ap.slots + slot(i)]);
  }

  [[nodiscard]] std::int64_t h(std::size_t i, std::size_t j) const {
    if (i == 0) return boundary_h0(static_cast<std::int64_t>(j), open, ext);
    if (j == 0) return -(open + ext * (static_cast<std::int64_t>(i) - 1));
    if (j == c0) return VI::decode(ws.blk_h0[slot(i)]);
    return stored(ws.blk_h, i, j);
  }
  [[nodiscard]] std::int64_t x(std::size_t i, std::size_t j) const {
    if (i == 0)
      return j == 0 ? kNegI
                    : -(open + ext * (static_cast<std::int64_t>(j) - 1));
    if (j == 0) return kNegI;
    return stored(ws.blk_e, i, j);
  }
  [[nodiscard]] std::int64_t y(std::size_t i, std::size_t j) const {
    if (i == 0) return kNegI;
    if (j == 0) return -(open + ext * (static_cast<std::int64_t>(i) - 1));
    return stored(ws.blk_f, i, j);
  }
  [[nodiscard]] std::int64_t m(std::size_t i, std::size_t j) const {
    if (i == 0) return j == 0 ? 0 : kNegI;
    if (j == 0) return kNegI;
    const int sub =
        VI::decode_delta(ap.profile.row(ap.other[j - 1])[slot(i)]);
    return h(i - 1, j - 1) + sub;
  }

  /// came_from(i, j) reads columns j and j-1; stored X/Y need j-1 >= c0+1
  /// (or the analytic column 0), so a block answers j in [c0+2, top] —
  /// plus all j >= 1 when c0 == 0.
  [[nodiscard]] bool ensure(std::size_t j) {
    if (loaded && j <= top && (c0 == 0 || j >= c0 + 2)) return true;
    return load_block(j);
  }

  [[nodiscard]] bool load_block(std::size_t j) {
    c0 = j >= interval + 2 ? (j - 2) / interval * interval : 0;
    top = j;
    const std::size_t span_cols = top - c0;
    ws.blk_h.resize(span_cols * ap.slots);
    ws.blk_e.resize(span_cols * ap.slots);
    ws.blk_f.resize(span_cols * ap.slots);

    Elem* h_cur = ws.cols.h_a.data();
    Elem* h_prev = ws.cols.h_b.data();
    Elem* e = ws.cols.e.data();
    if (c0 == 0) {
      ap.init_column0(h_cur, e);
    } else {
      const std::size_t at = (c0 / interval - 1) * ap.slots;
      std::copy_n(ws.ckpt_h.data() + at, ap.slots, h_cur);
      std::copy_n(ws.ckpt_e.data() + at, ap.slots, e);
    }
    ws.blk_h0.assign(h_cur, h_cur + ap.slots);

    // The seed column is final: no pending carry, diagonal feed straight
    // from its last stripe — exactly the forward pass's column-0 state.
    VI v_g = ap.v_floor;
    VI v_last = VI::load(h_cur + (ap.t - 1) * kW);
    VI v_sat_max = ap.v_floor;
    VI v_sat_min = ap.v_ceil;
    VI e_track = ap.v_ceil;
    VI f_track = ap.v_ceil;
    const Elem* guard = ws.pad_guard.data();

    for (std::size_t jj = c0 + 1; jj <= top; ++jj) {
      std::swap(h_cur, h_prev);
      const std::size_t col = (jj - c0 - 1) * ap.slots;
      StoreCells<VI> sink{ws.blk_e.data() + col, ws.blk_f.data() + col,
                          guard, &e_track};
      ap.run_column(jj, h_cur, h_prev, e, v_g, v_last, v_sat_max, v_sat_min,
                    sink);
      // Fused post-scan sweep: final H into the block, the same carry
      // re-maxed into the captured pre-carry F (identical decay schedule).
      VI g2 = v_g;
      Elem* bh = ws.blk_h.data() + col;
      Elem* bf = ws.blk_f.data() + col;
      for (std::size_t k = 0; k < ap.t; ++k) {
        const VI vh = VI::max(VI::load(h_cur + k * kW), g2);
        vh.store(bh + k * kW);
        const VI vf = VI::max(VI::load(bf + k * kW), g2);
        vf.store(bf + k * kW);
        f_track =
            VI::min(f_track, VI::max(vf, VI::load(guard + k * kW)));
        g2 = VI::max(g2 - ap.v_ext, ap.v_floor);
      }
    }

    // Alignment-tier rail check: a floor-seated E or F in a real lane means
    // the stored value may be a clamp, not the exact cell — promote.
    Elem seen = ap.ceil_enc;
    for (int l = 0; l < VI::kLanes; ++l) {
      seen = std::min(seen, e_track.lane(l));
      seen = std::min(seen, f_track.lane(l));
    }
    if (seen <= ap.floor_enc) return false;
    loaded = true;
    return true;
  }
};

}  // namespace

template <typename VI>
bool striped_score(const StripedProfile<VI>& profile,
                   std::span<const std::uint8_t> other,
                   StripedWorkspace<VI>& ws, float* score) {
  using Elem = typename VI::Elem;
  constexpr auto kW = static_cast<std::size_t>(VI::kLanes);
  const AlignPass<VI> ap(profile, other);

  ws.ensure(ap.slots);
  Elem* h_cur = ws.h_a.data();
  Elem* h_prev = ws.h_b.data();
  Elem* e = ws.e.data();
  ap.init_column0(h_cur, e);

  // Column 0 is exact by construction, so the pass starts with no pending
  // carry and the diagonal feed comes straight from the last stripe.
  VI v_g = ap.v_floor;
  VI v_last = VI::load(h_cur + (ap.t - 1) * kW);
  VI v_sat_max = ap.v_floor;
  VI v_sat_min = ap.v_ceil;

  for (std::size_t j = 1; j <= ap.n; ++j) {
    std::swap(h_cur, h_prev);
    ap.run_column(j, h_cur, h_prev, e, v_g, v_last, v_sat_max, v_sat_min,
                  NoCells{});
  }

  // Final sweep: the last column still has its carry pending; apply it so
  // the corner is final and its values are rail-checked.
  for (std::size_t k = 0; k < ap.t; ++k) {
    VI v_h2 = VI::max(VI::load(h_cur + k * kW), v_g);
    v_h2.store(h_cur + k * kW);
    v_sat_max = VI::max(v_sat_max, v_h2);
    v_sat_min = VI::min(v_sat_min, v_h2);
    v_g = VI::max(v_g - ap.v_ext, ap.v_floor);
  }

  // Saturation: any stored H on a rail invalidates the run (legitimate
  // rail-valued cells promote too — conservative, never wrong).
  Elem seen_max = ap.floor_enc;
  Elem seen_min = ap.ceil_enc;
  for (int l = 0; l < VI::kLanes; ++l) {
    seen_max = std::max(seen_max, v_sat_max.lane(l));
    seen_min = std::min(seen_min, v_sat_min.lane(l));
  }
  if (seen_max >= ap.ceil_enc || seen_min <= ap.floor_enc) return false;

  const std::size_t corner = ap.m - 1;
  *score = static_cast<float>(
      VI::decode(h_cur[(corner % ap.t) * kW + corner / ap.t]));
  return true;
}

template <typename VI>
bool striped_align(const StripedProfile<VI>& profile,
                   std::span<const std::uint8_t> other,
                   StripedAlignWorkspace<VI>& ws, PairwiseAlignment* out,
                   bool* trace_promoted) {
  using Elem = typename VI::Elem;
  if (trace_promoted != nullptr) *trace_promoted = false;
  constexpr auto kW = static_cast<std::size_t>(VI::kLanes);
  const AlignPass<VI> ap(profile, other);
  const std::size_t n = ap.n;
  const std::size_t interval = column_interval(n);

  ws.cols.ensure(ap.slots);
  if (ws.guard_m != ap.m || ws.guard_t != ap.t) {
    ws.pad_guard.assign(ap.slots, static_cast<Elem>(ap.floor_enc + 1));
    for (std::size_t l = 0; l < kW; ++l)
      for (std::size_t k = 0; k < ap.t; ++k)
        if (l * ap.t + k < ap.m) ws.pad_guard[k * kW + l] = ap.floor_enc;
    ws.guard_m = ap.m;
    ws.guard_t = ap.t;
  }
  const std::size_t num_ckpt = n >= interval + 2 ? (n - 2) / interval : 0;
  ws.ckpt_h.resize(num_ckpt * ap.slots);
  ws.ckpt_e.resize(num_ckpt * ap.slots);

  Elem* h_cur = ws.cols.h_a.data();
  Elem* h_prev = ws.cols.h_b.data();
  Elem* e = ws.cols.e.data();
  ap.init_column0(h_cur, e);

  VI v_g = ap.v_floor;
  VI v_last = VI::load(h_cur + (ap.t - 1) * kW);
  VI v_sat_max = ap.v_floor;
  VI v_sat_min = ap.v_ceil;

  const auto rails_hit = [&](VI sat_max, VI sat_min) {
    Elem seen_max = ap.floor_enc;
    Elem seen_min = ap.ceil_enc;
    for (int l = 0; l < VI::kLanes; ++l) {
      seen_max = std::max(seen_max, sat_max.lane(l));
      seen_min = std::min(seen_min, sat_min.lane(l));
    }
    return seen_max >= ap.ceil_enc || seen_min <= ap.floor_enc;
  };

  for (std::size_t j = 1; j <= n; ++j) {
    std::swap(h_cur, h_prev);
    ap.run_column(j, h_cur, h_prev, e, v_g, v_last, v_sat_max, v_sat_min,
                  NoCells{});
    // Saturation is sticky, so bail as soon as a rail is touched instead of
    // finishing a doomed pass — high-identity pairs hit the int8 ceiling
    // within a few dozen columns and would otherwise pay the full matrix
    // before promoting.
    if ((j & 15U) == 0 && rails_hit(v_sat_max, v_sat_min)) return false;
    if (j % interval == 0 && j / interval <= num_ckpt) {
      const std::size_t at = (j / interval - 1) * ap.slots;
      ap.corrected_h(h_cur, v_g, ws.ckpt_h.data() + at);
      std::copy_n(e, ap.slots, ws.ckpt_e.data() + at);
    }
  }

  // Final sweep (rail-checks the last column; the traceback recomputes its
  // values from the nearest checkpoint, so h_cur itself is not kept).
  for (std::size_t k = 0; k < ap.t; ++k) {
    const VI v_h2 = VI::max(VI::load(h_cur + k * kW), v_g);
    v_sat_max = VI::max(v_sat_max, v_h2);
    v_sat_min = VI::min(v_sat_min, v_h2);
    v_g = VI::max(v_g - ap.v_ext, ap.v_floor);
  }
  if (rails_hit(v_sat_max, v_sat_min)) return false;

  StripedTraceValues<VI> vals(ap, ws, interval);
  PairwiseAlignment result;
  if (!integer_global_traceback(ap.m, n, vals, &result)) {
    if (trace_promoted != nullptr) *trace_promoted = true;
    return false;
  }
  *out = std::move(result);
  return true;
}

template class StripedProfile<ScalarI8>;
template class StripedProfile<ScalarI16>;
template bool striped_score<ScalarI8>(const StripedProfile<ScalarI8>&,
                                      std::span<const std::uint8_t>,
                                      StripedWorkspace<ScalarI8>&, float*);
template bool striped_score<ScalarI16>(const StripedProfile<ScalarI16>&,
                                       std::span<const std::uint8_t>,
                                       StripedWorkspace<ScalarI16>&, float*);
template bool striped_align<ScalarI8>(const StripedProfile<ScalarI8>&,
                                      std::span<const std::uint8_t>,
                                      StripedAlignWorkspace<ScalarI8>&,
                                      PairwiseAlignment*, bool*);
template bool striped_align<ScalarI16>(const StripedProfile<ScalarI16>&,
                                       std::span<const std::uint8_t>,
                                       StripedAlignWorkspace<ScalarI16>&,
                                       PairwiseAlignment*, bool*);

#ifdef SALIGN_HAVE_VECTOR_EXT
template class StripedProfile<VecI8>;
template class StripedProfile<VecI16>;
template bool striped_score<VecI8>(const StripedProfile<VecI8>&,
                                   std::span<const std::uint8_t>,
                                   StripedWorkspace<VecI8>&, float*);
template bool striped_score<VecI16>(const StripedProfile<VecI16>&,
                                    std::span<const std::uint8_t>,
                                    StripedWorkspace<VecI16>&, float*);
template bool striped_align<VecI8>(const StripedProfile<VecI8>&,
                                   std::span<const std::uint8_t>,
                                   StripedAlignWorkspace<VecI8>&,
                                   PairwiseAlignment*, bool*);
template bool striped_align<VecI16>(const StripedProfile<VecI16>&,
                                    std::span<const std::uint8_t>,
                                    StripedAlignWorkspace<VecI16>&,
                                    PairwiseAlignment*, bool*);
#endif

}  // namespace salign::align::engine::detail
