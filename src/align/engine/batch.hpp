#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "align/engine/engine.hpp"

namespace salign::align::engine {

/// One query sequence profiled once (striped int8 + int16 tables plus the
/// float fallback), scored against many counterparts — the unit of work of
/// a distance-matrix row. Building the profile is O(alphabet * m); each
/// score() is then a pure kernel pass, so the profile cost amortizes over
/// the whole row instead of being paid per pair as in global_score().
///
/// Scores are bit-identical to engine::reference::global_align on every
/// input: each call runs the adaptive tier ladder (see ScoreTier) and
/// promotes on saturation. Profiles and DP scratch are built lazily per
/// tier and reused across calls, which also makes score() NOT thread-safe —
/// use one ScoreBatch per thread (the align/distance.cpp drivers do).
class ScoreBatch {
 public:
  struct Stats {
    std::size_t int8_runs = 0;    ///< int8 kernel passes (incl. saturated)
    std::size_t int16_runs = 0;   ///< int16 kernel passes (incl. saturated)
    std::size_t float_runs = 0;   ///< float kernel passes
    std::size_t promotions = 0;   ///< runs that saturated and retried wider
  };

  ScoreBatch(std::span<const std::uint8_t> query,
             const bio::SubstitutionMatrix& matrix, bio::GapPenalties gaps,
             Backend backend = default_backend(),
             ScoreTier first_tier = ScoreTier::kAuto);
  ~ScoreBatch();
  ScoreBatch(ScoreBatch&&) noexcept;
  ScoreBatch& operator=(ScoreBatch&&) noexcept;
  ScoreBatch(const ScoreBatch&) = delete;
  ScoreBatch& operator=(const ScoreBatch&) = delete;

  /// Global-alignment score of the query vs `other`, bit-identical to the
  /// reference kernels. Not thread-safe (mutates the reusable workspace).
  [[nodiscard]] float score(std::span<const std::uint8_t> other);

  [[nodiscard]] std::size_t query_length() const;
  [[nodiscard]] const Stats& stats() const;

  /// Bytes currently held: striped profiles, striped DP columns, and the
  /// float tier's most recent per-call workspace. Linear in the query
  /// length and the longest counterpart — never O(m * n). Feeds the
  /// workspace accounting that the linear-memory tests pin.
  [[nodiscard]] std::size_t workspace_bytes() const;

  struct Impl;  // defined in batch.cpp (tier profiles + ladder state)

 private:
  std::unique_ptr<Impl> impl_;
};

/// One query sequence profiled once, FULL-aligned (score + traceback)
/// against many counterparts — the unit of work of an identity/Kimura
/// distance-matrix row. The full-alignment sibling of ScoreBatch: each
/// align() runs the striped integer tiers with the column-checkpointed
/// integer traceback (striped_align) through the same promotion ladder,
/// falling back to the float engine's checkpointed kernel.
///
/// Results (score, ops, tie-breaks) are bit-identical to
/// engine::reference::global_align on every input. The alignment tiers
/// promote on a stricter rail than the score tiers — the traceback reads
/// E/F cell values directly, so a floor-clamped E/F promotes even when the
/// score would have been exact (see striped.hpp); Stats::trace_promotions
/// counts those late promotions separately. Like ScoreBatch, align() is NOT
/// thread-safe — one AlignBatch per thread.
class AlignBatch {
 public:
  struct Stats {
    std::size_t int8_runs = 0;   ///< int8 kernel passes (incl. saturated)
    std::size_t int16_runs = 0;  ///< int16 kernel passes (incl. saturated)
    std::size_t float_runs = 0;  ///< float kernel passes
    std::size_t promotions = 0;  ///< runs that saturated and retried wider
    /// Promotions raised during the traceback (a recomputed block found a
    /// floor-clamped E/F cell) rather than by the forward pass's H rails.
    std::size_t trace_promotions = 0;

    Stats& operator+=(const Stats& o);
  };

  AlignBatch(std::span<const std::uint8_t> query,
             const bio::SubstitutionMatrix& matrix, bio::GapPenalties gaps,
             Backend backend = default_backend(),
             ScoreTier first_tier = ScoreTier::kAuto);
  ~AlignBatch();
  AlignBatch(AlignBatch&&) noexcept;
  AlignBatch& operator=(AlignBatch&&) noexcept;
  AlignBatch(const AlignBatch&) = delete;
  AlignBatch& operator=(const AlignBatch&) = delete;

  /// Full global alignment of the query vs `other`, bit-identical to the
  /// reference kernels. Not thread-safe (mutates the reusable workspace).
  [[nodiscard]] PairwiseAlignment align(std::span<const std::uint8_t> other);

  [[nodiscard]] std::size_t query_length() const;
  [[nodiscard]] const Stats& stats() const;

  /// Bytes currently held: striped profiles, DP columns, checkpoint and
  /// block stores. O((m + n) * sqrt(n)) — never O(m * n).
  [[nodiscard]] std::size_t workspace_bytes() const;

  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace salign::align::engine
