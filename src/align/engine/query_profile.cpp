#include "align/engine/query_profile.hpp"

#include "bio/alphabet.hpp"

namespace salign::align::engine {

QueryProfile::QueryProfile(std::span<const std::uint8_t> b,
                           const bio::SubstitutionMatrix& matrix) {
  const auto alpha = static_cast<std::size_t>(
      bio::Alphabet::get(matrix.alphabet_kind()).size());
  n_ = b.size();
  stride_ = (n_ + 8) & ~std::size_t{7};  // >= n_ + 1, multiple of 8
  scores_.assign(alpha * stride_, 0.0F);
  for (std::size_t c = 0; c < alpha; ++c) {
    float* out = scores_.data() + c * stride_;
    for (std::size_t j = 0; j < n_; ++j)
      out[j] = matrix.score(static_cast<std::uint8_t>(c), b[j]);
  }
}

}  // namespace salign::align::engine
