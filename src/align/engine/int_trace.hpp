#pragma once

// Shared traceback walker of the integer full-alignment kernels (the
// striped per-pair tier in striped.cpp and the inter-pair batch kernel in
// pair_batch.cpp). Only those two and the tests should include this.
//
// Both kernels run the combined Gotoh form H = max(M, X, Y), E = X, F = Y
// (exact under the IntGate open >= ext >= 1 condition, see striped.cpp) and
// retain exact integer H/E/F cell values. The walker re-derives the float
// reference kernel's came_from decisions from those values:
//
//   X(i,j) = E(i,j),  Y(i,j) = F(i,j),  M(i,j) = H(i-1,j-1) + sub(i,j),
//
// with the comparison chains copied verbatim from engine/reference.cpp.
// Every stored value is an exact integer a float represents exactly, so the
// integer comparisons reproduce the reference's float comparisons — same
// path, same tie-breaks. Cells the reference marks unreachable (kNegInf)
// appear here as the kNegI sentinel; the chains only ever compare two
// sentinel-derived values where the penalty offsets cannot flip the
// reference outcome (offsets enter as -open vs -ext with open >= ext, which
// orders the operands exactly as the reference's "ties prefer extend" >=
// does on equal kNegInf values).

#include <algorithm>
#include <cstdint>
#include <limits>

#include "align/pairwise.hpp"

namespace salign::align::engine::detail {

/// Unreachable-cell sentinel of the integer traceback. A quarter of the
/// int64 range: subtracting a gap penalty can never wrap, and no reachable
/// cell value (bounded by kMaxMagnitude * length) comes anywhere near it.
inline constexpr std::int64_t kNegI =
    std::numeric_limits<std::int64_t>::min() / 4;

enum IntState : std::uint8_t { kIM = 0, kIX = 1, kIY = 2 };

/// `Values` supplies exact cell values (boundaries included) as int64:
///   m(i,j), x(i,j), y(i,j)  — the three reference states;
///   open, ext               — integer gap penalties (data members);
///   ensure(j)               — make columns j and j-1 readable (the striped
///                             tier recomputes a checkpoint block here;
///                             returns false when the block discovers a
///                             clamped E/F cell and the tier must promote).
///
/// Walks rows [0,m] x cols [0,n] from the corner exactly like the reference
/// kernel; returns false only if ensure() fails (out is then invalid).
template <typename Values>
[[nodiscard]] bool integer_global_traceback(std::size_t m, std::size_t n,
                                            Values& vals,
                                            PairwiseAlignment* out) {
  if (!vals.ensure(n)) return false;

  // Final state: best of the three at (m, n), strict > displaces (M > X > Y).
  std::uint8_t state = kIM;
  std::int64_t best = vals.m(m, n);
  if (vals.x(m, n) > best) {
    best = vals.x(m, n);
    state = kIX;
  }
  if (vals.y(m, n) > best) {
    best = vals.y(m, n);
    state = kIY;
  }
  out->score = static_cast<float>(best);
  out->ops.clear();

  const std::int64_t open = vals.open;
  const std::int64_t ext = vals.ext;
  std::size_t i = m;
  std::size_t j = n;
  while (i > 0 || j > 0) {
    if (i == 0) {
      out->ops.push_back(EditOp::GapInA);
      --j;
      continue;
    }
    if (j == 0) {
      out->ops.push_back(EditOp::GapInB);
      --i;
      continue;
    }
    if (!vals.ensure(j)) return false;

    // Reference came_from chains (engine/reference.cpp), on exact values.
    std::uint8_t from = kIM;
    switch (state) {
      case kIM: {
        const std::int64_t pm = vals.m(i - 1, j - 1);
        const std::int64_t px = vals.x(i - 1, j - 1);
        const std::int64_t py = vals.y(i - 1, j - 1);
        std::int64_t b = pm;
        if (px > b) {
          b = px;
          from = kIX;
        }
        if (py > b) from = kIY;
        break;
      }
      case kIX: {
        const std::int64_t open_x = vals.m(i, j - 1) - open;
        const std::int64_t ext_x = vals.x(i, j - 1) - ext;
        const std::int64_t via_y = vals.y(i, j - 1) - open;
        if (ext_x >= open_x && ext_x >= via_y)
          from = kIX;
        else
          from = open_x >= via_y ? kIM : kIY;
        break;
      }
      default: {
        const std::int64_t open_y = vals.m(i - 1, j) - open;
        const std::int64_t ext_y = vals.y(i - 1, j) - ext;
        const std::int64_t via_x = vals.x(i - 1, j) - open;
        if (ext_y >= open_y && ext_y >= via_x)
          from = kIY;
        else
          from = open_y >= via_x ? kIM : kIX;
        break;
      }
    }
    switch (state) {
      case kIM:
        out->ops.push_back(EditOp::Match);
        --i;
        --j;
        break;
      case kIX:
        out->ops.push_back(EditOp::GapInA);
        --j;
        break;
      default:
        out->ops.push_back(EditOp::GapInB);
        --i;
        break;
    }
    state = from;
  }
  std::reverse(out->ops.begin(), out->ops.end());
  return true;
}

}  // namespace salign::align::engine::detail
