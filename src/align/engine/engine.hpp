#pragma once

#include <cstddef>
#include <limits>
#include <span>

#include "align/pairwise.hpp"

namespace salign::align {

/// Shared "effectively minus infinity" sentinel for float DP cells.
///
/// A quarter of FLT_MAX leaves headroom so that the affine recurrences can
/// keep subtracting gap penalties from unreachable cells without ever
/// overflowing to -inf or producing NaN: the sentinel's magnitude (~8.5e37)
/// is so large that subtracting any realistic penalty (or even millions of
/// accumulated extends) is absorbed by float rounding — kNegInf - x == kNegInf
/// for every |x| < 2^-1 ULP(kNegInf) ≈ 2e30. Reachable cells always win
/// comparisons against it by ~1e37, so it never perturbs an optimal path.
/// Covered by EngineNegInf.* in tests/align_engine_test.cpp.
inline constexpr float kNegInf = -0.25F * std::numeric_limits<float>::max();

namespace engine {

/// Which kernel instantiation to run. Both are compiled into the library;
/// the vector backend aliases the scalar one on compilers without
/// GCC/Clang vector extensions.
enum class Backend : std::uint8_t {
  kScalar,  ///< 1-lane retained reference semantics
  kVector,  ///< multi-lane anti-diagonal kernel (ISA-dependent width:
            ///< 8 lanes under AVX, 4 under SSE/NEON; backend_lanes() tells)
};

/// Default dispatch: kVector unless the library was configured with
/// -DSALIGN_ENGINE_FORCE_SCALAR=ON or the compiler lacks vector extensions.
[[nodiscard]] Backend default_backend();
[[nodiscard]] const char* backend_name(Backend backend);
[[nodiscard]] int backend_lanes(Backend backend);

/// Numeric tier of a score-only pass.
///
/// kAuto runs the adaptive promotion ladder: start at the narrowest tier
/// that is statically viable for the input (integral scores, open >= extend
/// >= 1, boundary gap runs inside the rails), detect saturation at run time,
/// and retry one tier wider — int8 -> int16 -> float. Results are
/// bit-identical to the float reference kernels on EVERY input; forcing a
/// tier only changes where the ladder starts, never the result (a forced
/// tier that saturates or is statically non-viable still promotes).
/// Striped int8 runs VecI8 lanes at a time, int16 half that
/// (see simd_int.hpp); kFloat is PR 2's anti-diagonal float kernel.
enum class ScoreTier : std::uint8_t { kAuto = 0, kInt8, kInt16, kFloat };

[[nodiscard]] const char* tier_name(ScoreTier tier);

/// Score-only global (Needleman–Wunsch/Gotoh) alignment through the tier
/// ladder. Allocates O(m + n) DP workspace plus the striped query profile
/// (O(alphabet * m) integers) — no traceback state of any kind.
/// `workspace_bytes`, when non-null, receives the number of bytes of DP
/// workspace the call allocated, striped profiles included (tests pin the
/// linear-memory guarantee through it). To score one sequence against many,
/// build an engine::ScoreBatch (batch.hpp) instead — it amortizes the
/// profile across counterparts.
[[nodiscard]] float global_score(std::span<const std::uint8_t> a,
                                 std::span<const std::uint8_t> b,
                                 const bio::SubstitutionMatrix& matrix,
                                 bio::GapPenalties gaps,
                                 Backend backend,
                                 std::size_t* workspace_bytes = nullptr,
                                 ScoreTier first_tier = ScoreTier::kAuto);

/// Full global alignment with checkpointed traceback, through the same
/// tier ladder as global_score: striped int8/int16 kernels with the
/// column-checkpointed integer traceback where the rails allow, the float
/// anti-diagonal kernel (row checkpoints + block recompute) otherwise. No
/// O(m·n) traceback matrix is ever materialized on any tier. Results
/// (score, ops, tie-breaks) are identical to the retained scalar reference
/// kernel for every `first_tier` value. To align one query against many,
/// build an engine::AlignBatch (batch.hpp) — it amortizes the striped
/// profile across counterparts.
[[nodiscard]] PairwiseAlignment global_align(std::span<const std::uint8_t> a,
                                             std::span<const std::uint8_t> b,
                                             const bio::SubstitutionMatrix& matrix,
                                             bio::GapPenalties gaps,
                                             Backend backend,
                                             ScoreTier first_tier = ScoreTier::kAuto);

/// Banded global alignment (same band geometry as the historical
/// banded_global_align: band half-width widened by the length difference).
[[nodiscard]] PairwiseAlignment banded_global_align(
    std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
    const bio::SubstitutionMatrix& matrix, bio::GapPenalties gaps,
    std::size_t band, Backend backend);

/// Local (Smith–Waterman) alignment, checkpointed traceback.
[[nodiscard]] LocalAlignment local_align(std::span<const std::uint8_t> a,
                                         std::span<const std::uint8_t> b,
                                         const bio::SubstitutionMatrix& matrix,
                                         bio::GapPenalties gaps,
                                         Backend backend);

/// Retained scalar reference kernels: the pre-engine row-major
/// implementations with a full traceback matrix. They define the exact
/// score/traceback semantics the engine must reproduce and exist solely as
/// the oracle for the randomized differential tests (and as readable
/// documentation of the recurrences).
namespace reference {

[[nodiscard]] PairwiseAlignment global_align(std::span<const std::uint8_t> a,
                                             std::span<const std::uint8_t> b,
                                             const bio::SubstitutionMatrix& matrix,
                                             bio::GapPenalties gaps);

[[nodiscard]] PairwiseAlignment banded_global_align(
    std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
    const bio::SubstitutionMatrix& matrix, bio::GapPenalties gaps,
    std::size_t band);

[[nodiscard]] LocalAlignment local_align(std::span<const std::uint8_t> a,
                                         std::span<const std::uint8_t> b,
                                         const bio::SubstitutionMatrix& matrix,
                                         bio::GapPenalties gaps);

}  // namespace reference

}  // namespace engine
}  // namespace salign::align
