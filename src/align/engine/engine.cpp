#include "align/engine/engine.hpp"

#include <algorithm>

#include "align/engine/batch.hpp"
#include "align/engine/gotoh.hpp"
#include "align/engine/simd.hpp"

namespace salign::align::engine {

namespace {

/// Shared degenerate-input handling for the global aligners (hoisted from the
/// historical global.cpp / banded.cpp duplicates): aligning against an empty
/// sequence is a single gap run.
bool empty_edge_global(std::size_t m, std::size_t n, bio::GapPenalties gaps,
                       PairwiseAlignment& out) {
  if (m != 0 && n != 0) return false;
  out.ops.assign(std::max(m, n), m == 0 ? EditOp::GapInA : EditOp::GapInB);
  if (!out.ops.empty())
    out.score =
        -(gaps.open + gaps.extend * static_cast<float>(out.ops.size() - 1));
  return true;
}

}  // namespace

Backend default_backend() {
#if defined(SALIGN_ENGINE_FORCE_SCALAR) || !defined(SALIGN_HAVE_VECTOR_EXT)
  return Backend::kScalar;
#else
  return Backend::kVector;
#endif
}

const char* backend_name(Backend backend) {
  if (backend == Backend::kScalar) return "scalar";
#ifdef SALIGN_HAVE_VECTOR_EXT
  return "vector";
#else
  return "scalar";  // vector requests degrade to the scalar kernel
#endif
}

int backend_lanes(Backend backend) {
  return backend == Backend::kScalar ? ScalarF::kLanes : VecF::kLanes;
}

const char* tier_name(ScoreTier tier) {
  switch (tier) {
    case ScoreTier::kAuto: return "auto";
    case ScoreTier::kInt8: return "int8";
    case ScoreTier::kInt16: return "int16";
    default: return "float";
  }
}

float global_score(std::span<const std::uint8_t> a,
                   std::span<const std::uint8_t> b,
                   const bio::SubstitutionMatrix& matrix,
                   bio::GapPenalties gaps, Backend backend,
                   std::size_t* workspace_bytes, ScoreTier first_tier) {
  PairwiseAlignment edge;
  if (empty_edge_global(a.size(), b.size(), gaps, edge)) {
    if (workspace_bytes != nullptr) *workspace_bytes = 0;
    return edge.score;
  }
  ScoreBatch batch(a, matrix, gaps, backend, first_tier);
  const float score = batch.score(b);
  if (workspace_bytes != nullptr) *workspace_bytes = batch.workspace_bytes();
  return score;
}

PairwiseAlignment global_align(std::span<const std::uint8_t> a,
                               std::span<const std::uint8_t> b,
                               const bio::SubstitutionMatrix& matrix,
                               bio::GapPenalties gaps, Backend backend,
                               ScoreTier first_tier) {
  // One-shot calls run the full AlignBatch tier ladder too: the striped
  // integer traceback tiers are bit-identical to the float kernels, and the
  // O(alphabet * m) profile build is amortized by the O(m * n) DP. Callers
  // aligning one query against many should build the AlignBatch themselves.
  PairwiseAlignment out;
  if (empty_edge_global(a.size(), b.size(), gaps, out)) return out;
  AlignBatch batch(a, matrix, gaps, backend, first_tier);
  return batch.align(b);
}

PairwiseAlignment banded_global_align(std::span<const std::uint8_t> a,
                                      std::span<const std::uint8_t> b,
                                      const bio::SubstitutionMatrix& matrix,
                                      bio::GapPenalties gaps, std::size_t band,
                                      Backend backend) {
  PairwiseAlignment out;
  if (empty_edge_global(a.size(), b.size(), gaps, out)) return out;
  if (backend == Backend::kScalar)
    return detail::global_align_impl<ScalarF>(a, b, matrix, gaps, band, true);
  return detail::global_align_impl<VecF>(a, b, matrix, gaps, band, true);
}

LocalAlignment local_align(std::span<const std::uint8_t> a,
                           std::span<const std::uint8_t> b,
                           const bio::SubstitutionMatrix& matrix,
                           bio::GapPenalties gaps, Backend backend) {
  if (a.empty() || b.empty()) return {};
  if (backend == Backend::kScalar)
    return detail::local_align_impl<ScalarF>(a, b, matrix, gaps);
  return detail::local_align_impl<VecF>(a, b, matrix, gaps);
}

}  // namespace salign::align::engine
