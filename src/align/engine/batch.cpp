#include "align/engine/batch.hpp"

#include <algorithm>
#include <vector>

#include "align/engine/gotoh.hpp"
#include "align/engine/simd.hpp"
#include "align/engine/simd_int.hpp"
#include "align/engine/striped.hpp"

namespace salign::align::engine {

namespace {

/// Degenerate pairs short-circuit before any tier: aligning against an
/// empty sequence is a single gap run (same formula as engine.cpp's
/// empty_edge_global).
float empty_edge_score(std::size_t m, std::size_t n, bio::GapPenalties gaps) {
  const std::size_t len = std::max(m, n);
  if (len == 0) return 0.0F;
  return -(gaps.open + gaps.extend * static_cast<float>(len - 1));
}

}  // namespace

struct ScoreBatch::Impl {
  virtual ~Impl() = default;
  virtual void build() = 0;
  virtual float score(std::span<const std::uint8_t> other) = 0;
  [[nodiscard]] virtual std::size_t bytes() const = 0;

  std::vector<std::uint8_t> query;
  const bio::SubstitutionMatrix* matrix = nullptr;
  bio::GapPenalties gaps;
  ScoreTier first_tier = ScoreTier::kAuto;
  detail::IntGate gate;
  Stats stats;
};

namespace {

template <typename V8, typename V16, typename VF>
struct ImplT final : ScoreBatch::Impl {
  detail::StripedProfile<V8> p8;
  detail::StripedProfile<V16> p16;
  bool p16_built = false;
  detail::StripedWorkspace<V8> ws8;
  detail::StripedWorkspace<V16> ws16;
  std::size_t float_ws = 0;

  void build() override {
    if (first_tier == ScoreTier::kFloat) return;  // gate never consulted
    gate = detail::scan_int_gate(*matrix, gaps);
    if (first_tier == ScoreTier::kAuto || first_tier == ScoreTier::kInt8)
      p8 = detail::StripedProfile<V8>(query, *matrix, gate);
  }

  float score(std::span<const std::uint8_t> other) override {
    if (query.empty() || other.empty())
      return empty_edge_score(query.size(), other.size(), gaps);
    float s = 0.0F;
    if (first_tier <= ScoreTier::kInt8 && p8.viable() &&
        p8.viable_for(other.size())) {
      ++stats.int8_runs;
      if (detail::striped_score(p8, other, ws8, &s)) return s;
      ++stats.promotions;
    }
    if (first_tier <= ScoreTier::kInt16) {
      if (!p16_built) {
        p16 = detail::StripedProfile<V16>(query, *matrix, gate);
        p16_built = true;
      }
      if (p16.viable() && p16.viable_for(other.size())) {
        ++stats.int16_runs;
        if (detail::striped_score(p16, other, ws16, &s)) return s;
        ++stats.promotions;
      }
    }
    ++stats.float_runs;
    return detail::global_score_impl<VF>(query, other, *matrix, gaps, 0,
                                         false, &float_ws);
  }

  [[nodiscard]] std::size_t bytes() const override {
    return p8.bytes() + p16.bytes() + ws8.bytes() + ws16.bytes() + float_ws +
           query.capacity();
  }
};

}  // namespace

ScoreBatch::ScoreBatch(std::span<const std::uint8_t> query,
                       const bio::SubstitutionMatrix& matrix,
                       bio::GapPenalties gaps, Backend backend,
                       ScoreTier first_tier) {
  if (backend == Backend::kScalar)
    impl_ = std::make_unique<ImplT<ScalarI8, ScalarI16, ScalarF>>();
  else
    impl_ = std::make_unique<ImplT<VecI8, VecI16, VecF>>();
  impl_->query.assign(query.begin(), query.end());
  impl_->matrix = &matrix;
  impl_->gaps = gaps;
  impl_->first_tier = first_tier;
  impl_->build();
}

ScoreBatch::~ScoreBatch() = default;
ScoreBatch::ScoreBatch(ScoreBatch&&) noexcept = default;
ScoreBatch& ScoreBatch::operator=(ScoreBatch&&) noexcept = default;

float ScoreBatch::score(std::span<const std::uint8_t> other) {
  return impl_->score(other);
}

std::size_t ScoreBatch::query_length() const { return impl_->query.size(); }

const ScoreBatch::Stats& ScoreBatch::stats() const { return impl_->stats; }

std::size_t ScoreBatch::workspace_bytes() const { return impl_->bytes(); }

}  // namespace salign::align::engine
