#include "align/engine/batch.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "align/engine/gotoh.hpp"
#include "align/engine/simd.hpp"
#include "align/engine/simd_int.hpp"
#include "align/engine/striped.hpp"

namespace salign::align::engine {

namespace {

/// Degenerate pairs short-circuit before any tier: aligning against an
/// empty sequence is a single gap run (same formula as engine.cpp's
/// empty_edge_global).
float empty_edge_score(std::size_t m, std::size_t n, bio::GapPenalties gaps) {
  const std::size_t len = std::max(m, n);
  if (len == 0) return 0.0F;
  return -(gaps.open + gaps.extend * static_cast<float>(len - 1));
}

}  // namespace

struct ScoreBatch::Impl {
  virtual ~Impl() = default;
  virtual void build() = 0;
  virtual float score(std::span<const std::uint8_t> other) = 0;
  [[nodiscard]] virtual std::size_t bytes() const = 0;

  std::vector<std::uint8_t> query;
  const bio::SubstitutionMatrix* matrix = nullptr;
  bio::GapPenalties gaps;
  ScoreTier first_tier = ScoreTier::kAuto;
  detail::IntGate gate;
  Stats stats;
};

namespace {

template <typename V8, typename V16, typename VF>
struct ImplT final : ScoreBatch::Impl {
  detail::StripedProfile<V8> p8;
  detail::StripedProfile<V16> p16;
  bool p16_built = false;
  detail::StripedWorkspace<V8> ws8;
  detail::StripedWorkspace<V16> ws16;
  std::size_t float_ws = 0;

  void build() override {
    if (first_tier == ScoreTier::kFloat) return;  // gate never consulted
    gate = detail::scan_int_gate(*matrix, gaps);
    if (first_tier == ScoreTier::kAuto || first_tier == ScoreTier::kInt8)
      p8 = detail::StripedProfile<V8>(query, *matrix, gate);
  }

  float score(std::span<const std::uint8_t> other) override {
    if (query.empty() || other.empty())
      return empty_edge_score(query.size(), other.size(), gaps);
    float s = 0.0F;
    if (first_tier <= ScoreTier::kInt8 && p8.viable() &&
        p8.viable_for(other.size())) {
      ++stats.int8_runs;
      if (detail::striped_score(p8, other, ws8, &s)) return s;
      ++stats.promotions;
    }
    if (first_tier <= ScoreTier::kInt16) {
      if (!p16_built) {
        p16 = detail::StripedProfile<V16>(query, *matrix, gate);
        p16_built = true;
      }
      if (p16.viable() && p16.viable_for(other.size())) {
        ++stats.int16_runs;
        if (detail::striped_score(p16, other, ws16, &s)) return s;
        ++stats.promotions;
      }
    }
    ++stats.float_runs;
    return detail::global_score_impl<VF>(query, other, *matrix, gaps, 0,
                                         false, &float_ws);
  }

  [[nodiscard]] std::size_t bytes() const override {
    return p8.bytes() + p16.bytes() + ws8.bytes() + ws16.bytes() + float_ws +
           query.capacity();
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// AlignBatch: full alignments through the same ladder
// ---------------------------------------------------------------------------

AlignBatch::Stats& AlignBatch::Stats::operator+=(const Stats& o) {
  int8_runs += o.int8_runs;
  int16_runs += o.int16_runs;
  float_runs += o.float_runs;
  promotions += o.promotions;
  trace_promotions += o.trace_promotions;
  return *this;
}

struct AlignBatch::Impl {
  virtual ~Impl() = default;
  virtual void build() = 0;
  virtual PairwiseAlignment align(std::span<const std::uint8_t> other) = 0;
  [[nodiscard]] virtual std::size_t bytes() const = 0;

  std::vector<std::uint8_t> query;
  const bio::SubstitutionMatrix* matrix = nullptr;
  bio::GapPenalties gaps;
  ScoreTier first_tier = ScoreTier::kAuto;
  detail::IntGate gate;
  Stats stats;
};

namespace {

/// Aligning against an empty sequence is a single gap run; reproduce the
/// reference kernels' degenerate outputs exactly (engine.cpp does the same
/// for the float path).
PairwiseAlignment empty_edge_align(std::size_t m, std::size_t n,
                                   bio::GapPenalties gaps) {
  PairwiseAlignment out;
  out.ops.assign(std::max(m, n), m == 0 ? EditOp::GapInA : EditOp::GapInB);
  if (!out.ops.empty())
    out.score =
        -(gaps.open + gaps.extend * static_cast<float>(out.ops.size() - 1));
  return out;
}

template <typename V8, typename V16, typename VF>
struct AlignImplT final : AlignBatch::Impl {
  detail::StripedProfile<V8> p8;
  detail::StripedProfile<V16> p16;
  bool p16_built = false;
  detail::StripedAlignWorkspace<V8> ws8;
  detail::StripedAlignWorkspace<V16> ws16;

  void build() override {
    if (first_tier == ScoreTier::kFloat) return;  // gate never consulted
    gate = detail::scan_int_gate(*matrix, gaps);
    if (first_tier == ScoreTier::kAuto || first_tier == ScoreTier::kInt8)
      p8 = detail::StripedProfile<V8>(query, *matrix, gate);
  }

  PairwiseAlignment align(std::span<const std::uint8_t> other) override {
    if (query.empty() || other.empty())
      return empty_edge_align(query.size(), other.size(), gaps);
    PairwiseAlignment out;
    bool trace = false;
    if (first_tier <= ScoreTier::kInt8 && p8.viable() &&
        p8.viable_for(other.size())) {
      ++stats.int8_runs;
      if (detail::striped_align(p8, other, ws8, &out, &trace)) return out;
      ++stats.promotions;
      if (trace) ++stats.trace_promotions;
    }
    if (first_tier <= ScoreTier::kInt16) {
      if (!p16_built) {
        p16 = detail::StripedProfile<V16>(query, *matrix, gate);
        p16_built = true;
      }
      if (p16.viable() && p16.viable_for(other.size())) {
        ++stats.int16_runs;
        if (detail::striped_align(p16, other, ws16, &out, &trace)) return out;
        ++stats.promotions;
        if (trace) ++stats.trace_promotions;
      }
    }
    ++stats.float_runs;
    return detail::global_align_impl<VF>(query, other, *matrix, gaps, 0,
                                         false);
  }

  [[nodiscard]] std::size_t bytes() const override {
    return p8.bytes() + p16.bytes() + ws8.bytes() + ws16.bytes() +
           query.capacity();
  }
};

}  // namespace

AlignBatch::AlignBatch(std::span<const std::uint8_t> query,
                       const bio::SubstitutionMatrix& matrix,
                       bio::GapPenalties gaps, Backend backend,
                       ScoreTier first_tier) {
  if (backend == Backend::kScalar)
    impl_ = std::make_unique<AlignImplT<ScalarI8, ScalarI16, ScalarF>>();
  else
    impl_ = std::make_unique<AlignImplT<VecI8, VecI16, VecF>>();
  impl_->query.assign(query.begin(), query.end());
  impl_->matrix = &matrix;
  impl_->gaps = gaps;
  impl_->first_tier = first_tier;
  impl_->build();
}

AlignBatch::~AlignBatch() = default;
AlignBatch::AlignBatch(AlignBatch&&) noexcept = default;
AlignBatch& AlignBatch::operator=(AlignBatch&&) noexcept = default;

PairwiseAlignment AlignBatch::align(std::span<const std::uint8_t> other) {
  return impl_->align(other);
}

std::size_t AlignBatch::query_length() const { return impl_->query.size(); }

const AlignBatch::Stats& AlignBatch::stats() const { return impl_->stats; }

std::size_t AlignBatch::workspace_bytes() const { return impl_->bytes(); }

ScoreBatch::ScoreBatch(std::span<const std::uint8_t> query,
                       const bio::SubstitutionMatrix& matrix,
                       bio::GapPenalties gaps, Backend backend,
                       ScoreTier first_tier) {
  if (backend == Backend::kScalar)
    impl_ = std::make_unique<ImplT<ScalarI8, ScalarI16, ScalarF>>();
  else
    impl_ = std::make_unique<ImplT<VecI8, VecI16, VecF>>();
  impl_->query.assign(query.begin(), query.end());
  impl_->matrix = &matrix;
  impl_->gaps = gaps;
  impl_->first_tier = first_tier;
  impl_->build();
}

ScoreBatch::~ScoreBatch() = default;
ScoreBatch::ScoreBatch(ScoreBatch&&) noexcept = default;
ScoreBatch& ScoreBatch::operator=(ScoreBatch&&) noexcept = default;

float ScoreBatch::score(std::span<const std::uint8_t> other) {
  return impl_->score(other);
}

std::size_t ScoreBatch::query_length() const { return impl_->query.size(); }

const ScoreBatch::Stats& ScoreBatch::stats() const { return impl_->stats; }

std::size_t ScoreBatch::workspace_bytes() const { return impl_->bytes(); }

}  // namespace salign::align::engine
