#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/substitution_matrix.hpp"

namespace salign::align::engine {

/// Pre-expanded substitution scores of one sequence against the whole
/// alphabet: row(c)[j] == matrix.score(c, b[j]).
///
/// The DP inner loop then replaces the two-level `matrix.score(a[i], b[j])`
/// gather (code -> row pointer -> element) with a single contiguous read from
/// the row of the current residue of A. Rows are padded to a multiple of 8
/// floats (zero-filled) so vector loads near the end of a diagonal never
/// leave the allocation.
class QueryProfile {
 public:
  QueryProfile(std::span<const std::uint8_t> b,
               const bio::SubstitutionMatrix& matrix);

  [[nodiscard]] std::size_t length() const { return n_; }

  /// Contiguous score row for residue code `c`; valid indices [0, length).
  [[nodiscard]] const float* row(std::uint8_t c) const {
    return scores_.data() + static_cast<std::size_t>(c) * stride_;
  }

  /// Bytes held by the score table (workspace accounting).
  [[nodiscard]] std::size_t bytes() const {
    return scores_.size() * sizeof(float);
  }

 private:
  std::size_t n_ = 0;
  std::size_t stride_ = 0;
  std::vector<float> scores_;
};

}  // namespace salign::align::engine
