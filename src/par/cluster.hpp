#pragma once

#include <functional>

#include "par/comm.hpp"

namespace salign::par {

/// Executes an SPMD function on `num_ranks` logical processors, each a host
/// thread with its own Communicator over a shared MessageBoard.
///
/// This is the library's stand-in for `mpirun -np p`: the paper ran on a
/// 16-node Beowulf cluster with MPI; we reproduce the message-passing
/// semantics in-process (separate per-rank state, explicit serialization,
/// collective synchronization) and charge wire costs through the
/// ClusterCostModel instead of a physical interconnect. See DESIGN.md §2.
class Cluster {
 public:
  explicit Cluster(int num_ranks);

  /// Runs `fn(comm)` once per rank on its own thread and joins them all.
  ///
  /// Fault model: if any rank exits with an exception the group is aborted —
  /// peers blocked in recv/barrier/collectives wake with ClusterAborted and
  /// unwind — and the root-cause exception is rethrown here after every
  /// thread has been joined (collateral ClusterAborted unwinds are
  /// suppressed). May be called repeatedly, even after an aborted run
  /// (undelivered messages from the dead run are dropped); traffic
  /// accumulates across runs.
  void run(const std::function<void(Communicator&)>& fn);

  [[nodiscard]] int num_ranks() const { return board_.size(); }
  [[nodiscard]] TrafficStats traffic() const { return board_.traffic(); }

 private:
  MessageBoard board_;
};

/// Static-partition parallel map over [0, n): OpenMP-style worksharing for
/// intra-rank loops (distance matrices, per-sequence ranking). Runs inline
/// when threads <= 1 or n is tiny; otherwise draws workers from the shared
/// util::ThreadPool (no per-call thread spawns), with the calling thread
/// always participating. Chunk boundaries depend only on (n, threads), so
/// outputs are deterministic for any pool load. `fn(begin, end)` must be
/// thread-safe on disjoint ranges.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  unsigned threads);

}  // namespace salign::par
