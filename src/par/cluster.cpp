#include "par/cluster.hpp"

#include <atomic>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/budget.hpp"
#include "util/thread_pool.hpp"

namespace salign::par {

Cluster::Cluster(int num_ranks) : board_(num_ranks) {}

namespace {

bool is_cluster_aborted(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const ClusterAborted&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

void Cluster::run(const std::function<void(Communicator&)>& fn) {
  if (board_.aborted()) board_.reset_after_abort();
  const int p = board_.size();
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([this, &fn, &errors, r] {
      try {
        Communicator comm(board_, r);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Take the whole group down: peers blocked on a message or barrier
        // this rank will never complete must wake and unwind, as mpirun
        // would kill the job on an uncaught exception.
        board_.abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Rethrow the root cause, not the collateral ClusterAborted unwinds.
  for (const auto& e : errors)
    if (e && !is_cluster_aborted(e)) std::rethrow_exception(e);
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  unsigned threads) {
  if (n == 0) return;
  const unsigned workers =
      std::min<unsigned>(threads == 0 ? 1 : threads,
                         static_cast<unsigned>(n));
  if (workers <= 1) {
    util::poll_budget("parallel_for");
    fn(0, n);
    return;
  }
  // Chunk geometry is a pure function of (n, workers) — never of how many
  // pool threads actually show up — so callers that rely on deterministic
  // chunk boundaries get the same ranges for any pool load. Chunks are
  // claimed from a shared counter by the caller plus up to workers-1 shared
  // pool threads; the caller alone finishes the loop when the pool is busy.
  const std::size_t chunk = (n + workers - 1) / workers;
  std::atomic<unsigned> next{0};
  util::ThreadPool::shared().run(workers - 1, [&] {
    for (unsigned w = next.fetch_add(1, std::memory_order_relaxed);
         w < workers; w = next.fetch_add(1, std::memory_order_relaxed)) {
      const std::size_t begin = static_cast<std::size_t>(w) * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      // Cooperative cancellation boundary: a deadline/cancel stops workers
      // before their next chunk; the exception unwinds through the pool's
      // rethrow path like any worker failure.
      util::poll_budget("parallel_for chunk");
      fn(begin, end);
    }
  });
}

}  // namespace salign::par
