#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "par/serialize.hpp"

namespace salign::par {

/// Thrown by blocking operations (recv, barrier, collectives) on every
/// surviving rank once the group has been aborted — i.e. after another rank
/// exited with an exception. Mirrors MPI's error-handler teardown: a dead
/// rank must take the group down rather than leave peers blocked forever.
class ClusterAborted : public std::runtime_error {
 public:
  ClusterAborted() : std::runtime_error("cluster aborted: a peer rank died") {}
};

/// Per-run communication accounting (drives the cluster cost model and the
/// paper's communication-cost analysis benches).
struct TrafficStats {
  std::vector<std::uint64_t> bytes_sent_per_rank;
  std::vector<std::uint64_t> messages_sent_per_rank;

  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t t = 0;
    for (auto b : bytes_sent_per_rank) t += b;
    return t;
  }
  [[nodiscard]] std::uint64_t total_messages() const {
    std::uint64_t t = 0;
    for (auto m : messages_sent_per_rank) t += m;
    return t;
  }
};

/// Shared mailbox state of one communicator group. Internal to the runtime;
/// user code sees only Communicator handles.
class MessageBoard {
 public:
  explicit MessageBoard(int size);

  MessageBoard(const MessageBoard&) = delete;
  MessageBoard& operator=(const MessageBoard&) = delete;

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] TrafficStats traffic() const;

  /// Marks the group dead and wakes every thread blocked in take()/barrier();
  /// they throw ClusterAborted. Safe to call from any thread, idempotent.
  void abort() noexcept;
  [[nodiscard]] bool aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }
  /// Restores a fresh group after an aborted run: clears the abort flag,
  /// drains undelivered messages, and resets the barrier counter. Must only
  /// be called while no rank thread is running.
  void reset_after_abort();

 private:
  friend class Communicator;

  struct Message {
    int src;
    std::int64_t tag;
    Bytes payload;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  void post(int src, int dest, std::int64_t tag, Bytes payload);
  [[nodiscard]] Bytes take(int dest, int src, std::int64_t tag);
  [[nodiscard]] std::optional<Bytes> try_take(int dest, int src,
                                              std::int64_t tag);
  [[nodiscard]] std::pair<int, Bytes> take_any(int dest, std::int64_t tag);
  [[nodiscard]] std::size_t peek(int dest, int src, std::int64_t tag);
  [[nodiscard]] std::optional<std::size_t> try_peek(int dest, int src,
                                                    std::int64_t tag);

  int size_;
  std::atomic<bool> aborted_{false};
  std::vector<std::unique_ptr<Mailbox>> boxes_;

  // Barrier (central counter, generation-stamped).
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Traffic counters (relaxed: read after join only).
  std::vector<std::atomic<std::uint64_t>> bytes_sent_;
  std::vector<std::atomic<std::uint64_t>> messages_sent_;
};

/// Rank-local handle to the message-passing runtime, with MPI-shaped
/// point-to-point and collective operations.
///
/// Semantics follow MPI: sends are buffered (non-blocking), recv blocks
/// until a matching (src, tag) message arrives, messages between a fixed
/// (src, dest, tag) triple are FIFO, and collectives must be called by every
/// rank in the same order (SPMD). Tags must be non-negative; negative tags
/// are reserved for collective sequencing. Once the group is aborted (a peer
/// rank died), every blocking operation throws ClusterAborted instead of
/// waiting on a message that will never come.
class Communicator {
 public:
  Communicator(MessageBoard& board, int rank)
      : board_(&board), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return board_->size(); }

  /// Buffered point-to-point send (self-sends allowed).
  void send(int dest, int tag, Bytes payload);
  /// Blocking receive matching (src, tag).
  [[nodiscard]] Bytes recv(int src, int tag);
  /// Nonblocking receive: the oldest queued (src, tag) message, or nullopt
  /// if none has arrived yet. The MPI_Iprobe+MPI_Recv polling idiom.
  [[nodiscard]] std::optional<Bytes> try_recv(int src, int tag);
  /// Blocking receive from whichever source delivers first (MPI_ANY_SOURCE):
  /// returns {source rank, payload}. Messages from the same source stay FIFO.
  [[nodiscard]] std::pair<int, Bytes> recv_any(int tag);
  /// Blocking probe (MPI_Probe): waits until a (src, tag) message is queued
  /// and returns its payload size without consuming it.
  [[nodiscard]] std::size_t probe(int src, int tag);
  /// Nonblocking probe (MPI_Iprobe): payload size of the oldest queued
  /// (src, tag) message, or nullopt.
  [[nodiscard]] std::optional<std::size_t> iprobe(int src, int tag);

  /// Blocks until every rank has entered.
  void barrier();

  /// Root's payload is returned on every rank (root included).
  [[nodiscard]] Bytes broadcast(int root, Bytes payload = {});

  /// Root receives all contributions indexed by rank; other ranks get {}.
  [[nodiscard]] std::vector<Bytes> gather(int root, Bytes contribution);

  /// Inverse of gather: root supplies one payload per rank (`per_dest`,
  /// size p, ignored elsewhere) and every rank receives its element. The
  /// paper's initial N/p distribution of sequences from a root reader.
  [[nodiscard]] Bytes scatter(int root, std::vector<Bytes> per_dest = {});

  /// Every rank receives all contributions indexed by rank.
  [[nodiscard]] std::vector<Bytes> all_gather(Bytes contribution);

  /// Personalized all-to-all: element d of the input goes to rank d; the
  /// result's element s came from rank s. This is the redistribution
  /// primitive of the pipeline's bucket exchange.
  [[nodiscard]] std::vector<Bytes> all_to_all(std::vector<Bytes> per_dest);

  /// Sum-reduction to root (others get 0), and to all ranks.
  [[nodiscard]] double reduce_sum(int root, double value);
  [[nodiscard]] double all_reduce_sum(double value);

 private:
  [[nodiscard]] std::int64_t next_collective_tag(int op);

  MessageBoard* board_;
  int rank_;
  std::uint64_t collective_seq_ = 0;
};

}  // namespace salign::par
