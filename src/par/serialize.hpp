#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bio/sequence.hpp"
#include "msa/alignment.hpp"

namespace salign::par {

/// Message payload: a flat byte vector. All inter-rank data crosses this
/// boundary — ranks never share pointers, mirroring MPI's separate address
/// spaces (and making the byte counts the cost model charges for exact).
using Bytes = std::vector<std::uint8_t>;

/// Little-endian append-only writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }

  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  // resize+memcpy instead of insert(end, b, b+n): GCC 12 at -O2 expands the
  // iterator-range insert into a copy whose pointer args it flags with a
  // -Wnonnull false positive, fatal under -Werror.
  void raw(const void* p, std::size_t n) {
    if (n == 0) return;
    const std::size_t old = buf_.size();
    buf_.resize(old + n);
    std::memcpy(buf_.data() + old, p, n);
  }
  Bytes buf_;
};

/// Bounds-checked reader over a received payload.
class ByteReader {
 public:
  /// Non-owning view; the caller keeps `data` alive for the reader's
  /// lifetime.
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Owning overload: adopts the payload so that readers constructed
  /// straight from a temporary — `ByteReader r(comm.recv(...))` — are safe.
  /// Without this, the span constructor would bind to the destroyed
  /// temporary (C++20 span's range constructor does not reject rvalues).
  explicit ByteReader(Bytes&& payload)
      : owned_(std::move(payload)), data_(owned_) {}

  ByteReader(const ByteReader&) = delete;
  ByteReader& operator=(const ByteReader&) = delete;

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    std::uint32_t v;
    copy(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    copy(&v, sizeof v);
    return v;
  }
  double f64() {
    double v;
    copy(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    need(n);
    std::vector<std::uint8_t> b(data_.begin() + static_cast<long>(pos_),
                                data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return b;
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

  /// Bytes left unread. Codec readers size their pre-allocations against
  /// this so a bit-flipped count throws instead of allocating.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  /// Reads an element count whose elements occupy at least
  /// `min_bytes_each` payload bytes apiece, validating it against the bytes
  /// actually remaining. This is the codec-hardening primitive: a corrupt
  /// count (truncation, bit flip) becomes a clean "payload underrun" throw
  /// rather than a multi-gigabyte vector resize the OOM killer answers.
  std::uint64_t count64(std::uint64_t min_bytes_each) {
    const std::uint64_t n = u64();
    check_count(n, min_bytes_each);
    return n;
  }
  std::uint32_t count(std::uint32_t min_bytes_each) {
    const std::uint32_t n = u32();
    check_count(n, min_bytes_each);
    return n;
  }

 private:
  void check_count(std::uint64_t n, std::uint64_t min_bytes_each) const {
    const std::uint64_t floor = min_bytes_each == 0 ? 1 : min_bytes_each;
    if (n > remaining() / floor)
      throw std::runtime_error("ByteReader: payload underrun");
  }
  void need(std::size_t n) const {
    if (pos_ + n > data_.size())
      throw std::runtime_error("ByteReader: payload underrun");
  }
  void copy(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }
  Bytes owned_;  // declared before data_: the span may view into it
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// ---- Domain-type codecs -------------------------------------------------

void write_sequence(ByteWriter& w, const bio::Sequence& s);
[[nodiscard]] bio::Sequence read_sequence(ByteReader& r);

void write_sequences(ByteWriter& w, std::span<const bio::Sequence> seqs);
[[nodiscard]] std::vector<bio::Sequence> read_sequences(ByteReader& r);

void write_alignment(ByteWriter& w, const msa::Alignment& a);
[[nodiscard]] msa::Alignment read_alignment(ByteReader& r);

}  // namespace salign::par
