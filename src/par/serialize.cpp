#include "par/serialize.hpp"

namespace salign::par {

void write_sequence(ByteWriter& w, const bio::Sequence& s) {
  w.u8(static_cast<std::uint8_t>(s.alphabet_kind()));
  w.str(s.id());
  w.bytes(s.codes());
}

bio::Sequence read_sequence(ByteReader& r) {
  const auto kind = static_cast<bio::AlphabetKind>(r.u8());
  std::string id = r.str();
  std::vector<std::uint8_t> codes = r.bytes();
  return bio::Sequence(std::move(id), std::move(codes), kind);
}

void write_sequences(ByteWriter& w, std::span<const bio::Sequence> seqs) {
  w.u32(static_cast<std::uint32_t>(seqs.size()));
  for (const auto& s : seqs) write_sequence(w, s);
}

std::vector<bio::Sequence> read_sequences(ByteReader& r) {
  // count(): a corrupt length throws before the reserve below allocates.
  const std::uint32_t n = r.count(9);  // kind + two length prefixes
  std::vector<bio::Sequence> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(read_sequence(r));
  return out;
}

void write_alignment(ByteWriter& w, const msa::Alignment& a) {
  w.u8(static_cast<std::uint8_t>(a.alphabet_kind()));
  w.u32(static_cast<std::uint32_t>(a.num_rows()));
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    w.str(a.row(r).id);
    w.bytes(a.row(r).cells);
  }
}

msa::Alignment read_alignment(ByteReader& r) {
  const auto kind = static_cast<bio::AlphabetKind>(r.u8());
  const std::uint32_t rows = r.count(8);  // two length prefixes per row
  std::vector<msa::AlignedRow> out(rows);
  for (std::uint32_t i = 0; i < rows; ++i) {
    out[i].id = r.str();
    out[i].cells = r.bytes();
  }
  return msa::Alignment(std::move(out), kind);
}

}  // namespace salign::par
