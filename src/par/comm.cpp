#include "par/comm.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace salign::par {

MessageBoard::MessageBoard(int size)
    : size_(size),
      bytes_sent_(static_cast<std::size_t>(size)),
      messages_sent_(static_cast<std::size_t>(size)) {
  if (size <= 0) throw std::invalid_argument("MessageBoard: size must be > 0");
  boxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) boxes_.push_back(std::make_unique<Mailbox>());
  for (auto& b : bytes_sent_) b.store(0, std::memory_order_relaxed);
  for (auto& m : messages_sent_) m.store(0, std::memory_order_relaxed);
}

TrafficStats MessageBoard::traffic() const {
  TrafficStats t;
  t.bytes_sent_per_rank.resize(static_cast<std::size_t>(size_));
  t.messages_sent_per_rank.resize(static_cast<std::size_t>(size_));
  for (int i = 0; i < size_; ++i) {
    t.bytes_sent_per_rank[static_cast<std::size_t>(i)] =
        bytes_sent_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
    t.messages_sent_per_rank[static_cast<std::size_t>(i)] =
        messages_sent_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
  }
  return t;
}

void MessageBoard::post(int src, int dest, std::int64_t tag, Bytes payload) {
  if (dest < 0 || dest >= size_)
    throw std::out_of_range("send: destination rank out of range");
  bytes_sent_[static_cast<std::size_t>(src)].fetch_add(
      payload.size(), std::memory_order_relaxed);
  messages_sent_[static_cast<std::size_t>(src)].fetch_add(
      1, std::memory_order_relaxed);
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  {
    const std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(Message{src, tag, std::move(payload)});
  }
  box.cv.notify_all();
}

Bytes MessageBoard::take(int dest, int src, std::int64_t tag) {
  if (src < 0 || src >= size_)
    throw std::out_of_range("recv: source rank out of range");
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    if (aborted_.load(std::memory_order_acquire)) throw ClusterAborted();
    const auto it = std::find_if(
        box.queue.begin(), box.queue.end(), [&](const Message& m) {
          return m.src == src && m.tag == tag;
        });
    if (it != box.queue.end()) {
      Bytes payload = std::move(it->payload);
      box.queue.erase(it);
      return payload;
    }
    box.cv.wait(lock);
  }
}

std::optional<Bytes> MessageBoard::try_take(int dest, int src,
                                            std::int64_t tag) {
  if (src < 0 || src >= size_)
    throw std::out_of_range("recv: source rank out of range");
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  const std::lock_guard<std::mutex> lock(box.mutex);
  if (aborted_.load(std::memory_order_acquire)) throw ClusterAborted();
  const auto it = std::find_if(
      box.queue.begin(), box.queue.end(),
      [&](const Message& m) { return m.src == src && m.tag == tag; });
  if (it == box.queue.end()) return std::nullopt;
  Bytes payload = std::move(it->payload);
  box.queue.erase(it);
  return payload;
}

std::pair<int, Bytes> MessageBoard::take_any(int dest, std::int64_t tag) {
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    if (aborted_.load(std::memory_order_acquire)) throw ClusterAborted();
    const auto it =
        std::find_if(box.queue.begin(), box.queue.end(),
                     [&](const Message& m) { return m.tag == tag; });
    if (it != box.queue.end()) {
      std::pair<int, Bytes> out{it->src, std::move(it->payload)};
      box.queue.erase(it);
      return out;
    }
    box.cv.wait(lock);
  }
}

std::size_t MessageBoard::peek(int dest, int src, std::int64_t tag) {
  if (src < 0 || src >= size_)
    throw std::out_of_range("probe: source rank out of range");
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    if (aborted_.load(std::memory_order_acquire)) throw ClusterAborted();
    const auto it = std::find_if(
        box.queue.begin(), box.queue.end(),
        [&](const Message& m) { return m.src == src && m.tag == tag; });
    if (it != box.queue.end()) return it->payload.size();
    box.cv.wait(lock);
  }
}

std::optional<std::size_t> MessageBoard::try_peek(int dest, int src,
                                                  std::int64_t tag) {
  if (src < 0 || src >= size_)
    throw std::out_of_range("probe: source rank out of range");
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  const std::lock_guard<std::mutex> lock(box.mutex);
  if (aborted_.load(std::memory_order_acquire)) throw ClusterAborted();
  const auto it = std::find_if(
      box.queue.begin(), box.queue.end(),
      [&](const Message& m) { return m.src == src && m.tag == tag; });
  if (it == box.queue.end()) return std::nullopt;
  return it->payload.size();
}

void MessageBoard::abort() noexcept {
  aborted_.store(true, std::memory_order_release);
  // Lock each waiter's mutex before notifying so a thread that checked the
  // flag just before wait() cannot miss the wakeup.
  for (auto& box : boxes_) {
    const std::lock_guard<std::mutex> lock(box->mutex);
    box->cv.notify_all();
  }
  {
    const std::lock_guard<std::mutex> lock(barrier_mutex_);
    barrier_cv_.notify_all();
  }
}

void MessageBoard::reset_after_abort() {
  for (auto& box : boxes_) {
    const std::lock_guard<std::mutex> lock(box->mutex);
    box->queue.clear();
  }
  {
    const std::lock_guard<std::mutex> lock(barrier_mutex_);
    barrier_count_ = 0;
    ++barrier_generation_;
  }
  aborted_.store(false, std::memory_order_release);
}

void Communicator::send(int dest, int tag, Bytes payload) {
  if (tag < 0) throw std::invalid_argument("send: tags must be >= 0");
  board_->post(rank_, dest, tag, std::move(payload));
}

Bytes Communicator::recv(int src, int tag) {
  if (tag < 0) throw std::invalid_argument("recv: tags must be >= 0");
  return board_->take(rank_, src, tag);
}

std::optional<Bytes> Communicator::try_recv(int src, int tag) {
  if (tag < 0) throw std::invalid_argument("recv: tags must be >= 0");
  return board_->try_take(rank_, src, tag);
}

std::pair<int, Bytes> Communicator::recv_any(int tag) {
  if (tag < 0) throw std::invalid_argument("recv: tags must be >= 0");
  return board_->take_any(rank_, tag);
}

std::size_t Communicator::probe(int src, int tag) {
  if (tag < 0) throw std::invalid_argument("probe: tags must be >= 0");
  return board_->peek(rank_, src, tag);
}

std::optional<std::size_t> Communicator::iprobe(int src, int tag) {
  if (tag < 0) throw std::invalid_argument("probe: tags must be >= 0");
  return board_->try_peek(rank_, src, tag);
}

void Communicator::barrier() {
  std::unique_lock<std::mutex> lock(board_->barrier_mutex_);
  if (board_->aborted()) throw ClusterAborted();
  const std::uint64_t generation = board_->barrier_generation_;
  if (++board_->barrier_count_ == board_->size_) {
    board_->barrier_count_ = 0;
    ++board_->barrier_generation_;
    board_->barrier_cv_.notify_all();
    return;
  }
  board_->barrier_cv_.wait(lock, [&] {
    return board_->aborted() ||
           board_->barrier_generation_ != generation;
  });
  if (board_->barrier_generation_ == generation) throw ClusterAborted();
}

std::int64_t Communicator::next_collective_tag(int op) {
  // Collectives advance in lockstep on every rank (SPMD), so a per-rank
  // sequence number yields identical tags group-wide. Negative space keeps
  // them disjoint from user tags.
  const std::uint64_t seq = collective_seq_++;
  return -static_cast<std::int64_t>(seq * 8 + static_cast<std::uint64_t>(op) +
                                    1);
}

Bytes Communicator::broadcast(int root, Bytes payload) {
  const std::int64_t tag = next_collective_tag(0);
  if (rank_ == root) {
    for (int d = 0; d < size(); ++d)
      if (d != root) board_->post(rank_, d, tag, payload);
    return payload;
  }
  return board_->take(rank_, root, tag);
}

std::vector<Bytes> Communicator::gather(int root, Bytes contribution) {
  const std::int64_t tag = next_collective_tag(1);
  if (rank_ == root) {
    std::vector<Bytes> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = std::move(contribution);
    for (int s = 0; s < size(); ++s)
      if (s != root)
        out[static_cast<std::size_t>(s)] = board_->take(rank_, s, tag);
    return out;
  }
  board_->post(rank_, root, tag, std::move(contribution));
  return {};
}

Bytes Communicator::scatter(int root, std::vector<Bytes> per_dest) {
  const std::int64_t tag = next_collective_tag(4);
  if (rank_ == root) {
    if (per_dest.size() != static_cast<std::size_t>(size()))
      throw std::invalid_argument("scatter: need one payload per rank");
    for (int d = 0; d < size(); ++d)
      if (d != root)
        board_->post(rank_, d, tag,
                     std::move(per_dest[static_cast<std::size_t>(d)]));
    return std::move(per_dest[static_cast<std::size_t>(root)]);
  }
  return board_->take(rank_, root, tag);
}

std::vector<Bytes> Communicator::all_gather(Bytes contribution) {
  const std::int64_t tag = next_collective_tag(2);
  for (int d = 0; d < size(); ++d)
    if (d != rank_) board_->post(rank_, d, tag, contribution);
  std::vector<Bytes> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(rank_)] = std::move(contribution);
  for (int s = 0; s < size(); ++s)
    if (s != rank_)
      out[static_cast<std::size_t>(s)] = board_->take(rank_, s, tag);
  return out;
}

std::vector<Bytes> Communicator::all_to_all(std::vector<Bytes> per_dest) {
  if (per_dest.size() != static_cast<std::size_t>(size()))
    throw std::invalid_argument("all_to_all: need one payload per rank");
  const std::int64_t tag = next_collective_tag(3);
  for (int d = 0; d < size(); ++d)
    if (d != rank_)
      board_->post(rank_, d, tag,
                   std::move(per_dest[static_cast<std::size_t>(d)]));
  std::vector<Bytes> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(rank_)] =
      std::move(per_dest[static_cast<std::size_t>(rank_)]);
  for (int s = 0; s < size(); ++s)
    if (s != rank_)
      out[static_cast<std::size_t>(s)] = board_->take(rank_, s, tag);
  return out;
}

double Communicator::reduce_sum(int root, double value) {
  ByteWriter w;
  w.f64(value);
  const std::vector<Bytes> all = gather(root, w.take());
  if (rank_ != root) return 0.0;
  double sum = 0.0;
  for (const Bytes& b : all) {
    ByteReader r(b);
    sum += r.f64();
  }
  return sum;
}

double Communicator::all_reduce_sum(double value) {
  ByteWriter w;
  w.f64(value);
  const std::vector<Bytes> all = all_gather(w.take());
  double sum = 0.0;
  for (const Bytes& b : all) {
    ByteReader r(b);
    sum += r.f64();
  }
  return sum;
}

}  // namespace salign::par
