#pragma once

#include <cstdint>

namespace salign::par {

/// Analytic interconnect model of the paper's testbed: a Beowulf cluster of
/// Pentium III nodes on gigabit Ethernet. The paper's own analysis (its §3)
/// uses the coarse-grained model of [20, 16, 2] — per-message start-up cost
/// plus unit time per byte — and that is exactly what this struct encodes.
///
/// The model turns the runtime's measured byte counts into wire seconds so
/// that the scalability figures can be reproduced on a machine with fewer
/// cores than the paper had nodes (see DESIGN.md §2): modeled time =
/// max over ranks of measured per-rank compute + modeled communication.
struct ClusterCostModel {
  /// Per-message start-up (software + switch latency). ~50 us is typical
  /// for TCP-over-GigE of that era.
  double latency_seconds = 50e-6;
  /// Effective bandwidth. 1 Gbit/s line rate; ~80% achievable -> 100 MB/s.
  double bytes_per_second = 100e6;

  /// Point-to-point time for one message of `bytes`.
  [[nodiscard]] double p2p(std::uint64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / bytes_per_second;
  }

  /// Flat-tree broadcast of `bytes` from one root to p-1 destinations
  /// (the runtime's broadcast posts p-1 messages; we charge them serially
  /// at the root's NIC, which is the conservative coarse-grained choice).
  [[nodiscard]] double broadcast(std::uint64_t bytes, int p) const {
    return static_cast<double>(p - 1) * p2p(bytes);
  }

  /// Gather of per-rank payloads of `bytes` each into the root.
  [[nodiscard]] double gather(std::uint64_t bytes, int p) const {
    return static_cast<double>(p - 1) * p2p(bytes);
  }

  /// Personalized all-to-all where every rank sends at most
  /// `max_bytes_per_rank` in total; charged as p-1 rounds of the largest
  /// per-destination message (synchronous rounds, as in [16]).
  [[nodiscard]] double all_to_all(std::uint64_t max_bytes_per_rank,
                                  int p) const {
    if (p <= 1) return 0.0;
    const std::uint64_t per_msg =
        max_bytes_per_rank / static_cast<std::uint64_t>(p - 1);
    return static_cast<double>(p - 1) * p2p(per_msg);
  }
};

}  // namespace salign::par
