// salign_lint — repo-specific invariant checker (docs/lint_rules.md).
//
// Enforces cross-cutting invariants that no generic static analyzer knows
// about, because they span code, docs, and tests:
//
//   fault-site-registry  every fault-injection site string wired in src/
//                        appears in the fault_injection.hpp site list, the
//                        README fault-site list, and at least one test or
//                        smoke script (tests/ or cmake/)
//   exit-code-taxonomy   no nonzero integer-literal returns in src/cli/
//                        (error paths must use cli::ExitCode), and no
//                        std::exit/abort anywhere in src/
//   durable-io           no naked std::ofstream / fopen / rename file
//                        writes in src/ outside util/io.cpp — writes go
//                        through util::write_file_durable / retry_io
//   codec-coverage       every write_X/read_X artifact codec pair declared
//                        in core/stage/artifacts.hpp and msa/msa_serialize.hpp
//                        is exercised at least twice in tests/ (round-trip
//                        + malformed corpus), and the serve JSON codecs
//                        (JobSpec/JobRecord from_json) are test-referenced
//   include-hygiene      files using a pinned set of concurrency/vocabulary
//                        types (<mutex>, <atomic>, <thread>, ...) include
//                        the owning header directly, never transitively
//
// Suppression policy (docs/lint_rules.md): a finding on a line carrying
//   // salign-lint: allow(<rule-id>) -- <reason>
// is suppressed; a file containing
//   // salign-lint-file: allow(<rule-id>) -- <reason>
// suppresses the rule for that file. Suppressions without a rule id are
// invalid and themselves reported.
//
// Usage: salign_lint <repo-root>   (exit 0 clean, 1 violations, 2 bad usage)

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string path;          // repo-relative, forward slashes
  std::string raw;           // file bytes as read
  std::string code;          // comments stripped, string literals kept
  std::string code_no_str;   // comments stripped, string contents blanked
  std::vector<std::string> raw_lines;
  std::set<std::string> file_allows;  // rules allowed file-wide
};

std::string read_whole(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + p.string());
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

/// Strips // and /* */ comments. Keeps newlines (line numbers survive).
/// When `blank_strings` is set, the *contents* of string/char literals are
/// replaced with spaces (quotes kept) so token scans never match inside
/// literals; otherwise literals pass through for site-string extraction.
std::string strip_comments(const std::string& in, bool blank_strings) {
  std::string out;
  out.reserve(in.size());
  enum class St { kCode, kLine, kBlock, kStr, kChar };
  St st = St::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          ++i;
        } else if (c == '"') {
          st = St::kStr;
          out.push_back(c);
        } else if (c == '\'') {
          st = St::kChar;
          out.push_back(c);
        } else {
          out.push_back(c);
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
          out.push_back(c);
        }
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          st = St::kCode;
          ++i;
        } else if (c == '\n') {
          out.push_back(c);
        }
        break;
      case St::kStr:
        if (c == '\\' && next != '\0') {
          out.append(blank_strings ? "  " : in.substr(i, 2));
          ++i;
        } else if (c == '"') {
          st = St::kCode;
          out.push_back(c);
        } else {
          out.push_back(blank_strings ? (c == '\n' ? '\n' : ' ') : c);
        }
        break;
      case St::kChar:
        if (c == '\\' && next != '\0') {
          out.append(blank_strings ? "  " : in.substr(i, 2));
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          out.push_back(c);
        } else {
          out.push_back(blank_strings ? ' ' : c);
        }
        break;
    }
  }
  return out;
}

std::size_t line_of_offset(const std::string& text, std::size_t offset) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(
                                                             offset),
                            '\n'));
}

bool ident_boundary_before(const std::string& s, std::size_t pos) {
  if (pos == 0) return true;
  const char c = s[pos - 1];
  return !(std::isalnum(static_cast<unsigned char>(c)) || c == '_');
}

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  int run() {
    load_tree();
    check_fault_sites();
    check_exit_codes();
    check_durable_io();
    check_codec_coverage();
    check_include_hygiene();
    report();
    return violations_.empty() ? 0 : 1;
  }

 private:
  static constexpr const char* kRuleFaultSite = "fault-site-registry";
  static constexpr const char* kRuleExitCode = "exit-code-taxonomy";
  static constexpr const char* kRuleDurableIo = "durable-io";
  static constexpr const char* kRuleCodec = "codec-coverage";
  static constexpr const char* kRuleInclude = "include-hygiene";

  void load_tree() {
    for (const char* dir : {"src", "tests"}) {
      const fs::path base = root_ / dir;
      if (!fs::exists(base))
        throw std::runtime_error("missing directory " + base.string());
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
        SourceFile f;
        f.path = fs::relative(entry.path(), root_).generic_string();
        f.raw = read_whole(entry.path());
        f.code = strip_comments(f.raw, /*blank_strings=*/false);
        f.code_no_str = strip_comments(f.raw, /*blank_strings=*/true);
        f.raw_lines = split_lines(f.raw);
        static const std::regex file_allow(
            R"(salign-lint-file:\s*allow\(([a-z-]+)\))");
        for (std::sregex_iterator it(f.raw.begin(), f.raw.end(), file_allow),
             end;
             it != end; ++it)
          f.file_allows.insert((*it)[1].str());
        files_.push_back(std::move(f));
      }
    }
    for (const char* aux : {"README.md", "src/util/fault_injection.hpp"}) {
      if (!fs::exists(root_ / aux))
        throw std::runtime_error(std::string("missing ") + aux);
    }
    readme_ = read_whole(root_ / "README.md");
    if (fs::exists(root_ / "cmake"))
      for (const auto& entry : fs::directory_iterator(root_ / "cmake"))
        if (entry.is_regular_file())
          cmake_text_ += read_whole(entry.path());
  }

  const SourceFile* find(const std::string& rel) const {
    for (const auto& f : files_)
      if (f.path == rel) return &f;
    return nullptr;
  }

  bool suppressed(const SourceFile& f, std::size_t line,
                  const char* rule) const {
    if (f.file_allows.count(rule)) return true;
    if (line == 0 || line > f.raw_lines.size()) return false;
    const std::string& text = f.raw_lines[line - 1];
    const std::string marker = "salign-lint: allow(" + std::string(rule) + ")";
    return text.find(marker) != std::string::npos;
  }

  void add(const SourceFile& f, std::size_t line, const char* rule,
           std::string message) {
    if (suppressed(f, line, rule)) return;
    violations_.push_back({f.path, line, rule, std::move(message)});
  }

  // -- fault-site-registry ---------------------------------------------------

  /// Site strings look like "cache.insert" / "serve.journal.write": two or
  /// more lowercase dotted segments.
  static bool is_site_shaped(const std::string& s) {
    static const std::regex grammar(R"([a-z]+(\.[a-z]+)+)");
    return std::regex_match(s, grammar);
  }

  /// Collects string literals inside the parenthesized argument list
  /// starting at `open_paren` (matching-paren scan over `code`, which has
  /// comments stripped but literals intact).
  static std::vector<std::string> literals_in_call(const std::string& code,
                                                   std::size_t open_paren) {
    std::vector<std::string> literals;
    int depth = 0;
    bool in_str = false;
    std::string cur;
    for (std::size_t i = open_paren; i < code.size(); ++i) {
      const char c = code[i];
      if (in_str) {
        if (c == '\\' && i + 1 < code.size()) {
          cur.push_back(code[++i]);
        } else if (c == '"') {
          literals.push_back(cur);
          cur.clear();
          in_str = false;
        } else {
          cur.push_back(c);
        }
        continue;
      }
      if (c == '"') {
        in_str = true;
      } else if (c == '(') {
        ++depth;
      } else if (c == ')') {
        if (--depth == 0) break;
      }
    }
    return literals;
  }

  void check_fault_sites() {
    // Wired sites: first string literal of maybe_fail()/retry_io() calls
    // plus any site-shaped literal in write_file_durable()/read_file()
    // argument lists (covers explicit site args and the declared defaults).
    std::map<std::string, std::pair<std::string, std::size_t>> sites;
    for (const auto& f : files_) {
      if (f.path.rfind("src/", 0) != 0) continue;
      for (const char* fn : {"maybe_fail", "retry_io", "write_file_durable",
                             "read_file"}) {
        const std::string needle = fn;
        std::size_t pos = 0;
        while ((pos = f.code.find(needle, pos)) != std::string::npos) {
          const std::size_t at = pos;
          pos += needle.size();
          if (!ident_boundary_before(f.code, at)) continue;
          std::size_t paren = pos;
          while (paren < f.code.size() &&
                 std::isspace(static_cast<unsigned char>(f.code[paren])))
            ++paren;
          if (paren >= f.code.size() || f.code[paren] != '(') continue;
          for (const std::string& lit : literals_in_call(f.code, paren)) {
            if (!is_site_shaped(lit)) continue;
            sites.emplace(lit,
                          std::make_pair(f.path, line_of_offset(f.code, at)));
            break;  // the site is the first site-shaped literal of the call
          }
        }
      }
    }

    const SourceFile* registry = find("src/util/fault_injection.hpp");
    const std::string registry_text =
        registry != nullptr ? registry->raw : std::string();
    for (const auto& [site, where] : sites) {
      const SourceFile* f = find(where.first);
      if (f == nullptr) continue;
      if (registry_text.find(site) == std::string::npos)
        add(*f, where.second, kRuleFaultSite,
            "fault site \"" + site +
                "\" is not listed in src/util/fault_injection.hpp");
      if (readme_.find(site) == std::string::npos)
        add(*f, where.second, kRuleFaultSite,
            "fault site \"" + site + "\" is not documented in README.md");
      bool tested = cmake_text_.find(site) != std::string::npos;
      for (const auto& t : files_) {
        if (tested) break;
        if (t.path.rfind("tests/", 0) == 0 &&
            t.raw.find(site) != std::string::npos)
          tested = true;
      }
      if (!tested)
        add(*f, where.second, kRuleFaultSite,
            "fault site \"" + site +
                "\" is not exercised by any tests/ suite or cmake/ smoke "
                "script");
    }
  }

  // -- exit-code-taxonomy ----------------------------------------------------

  void check_exit_codes() {
    static const std::regex nonzero_return(R"(\breturn\s+([1-9][0-9]*)\s*;)");
    // Qualified forms only: a bare `abort(` is usually a member function
    // (par::MessageBoard::abort), and this codebase std::-qualifies libc
    // calls everywhere.
    static const std::regex raw_exit(
        R"(std::(exit|abort|_Exit|quick_exit)\s*\()");
    for (const auto& f : files_) {
      if (f.path.rfind("src/", 0) != 0) continue;
      const bool is_cli = f.path.rfind("src/cli/", 0) == 0;
      if (is_cli) {
        for (std::sregex_iterator it(f.code_no_str.begin(),
                                     f.code_no_str.end(), nonzero_return),
             end;
             it != end; ++it)
          add(f,
              line_of_offset(f.code_no_str,
                             static_cast<std::size_t>(it->position())),
              kRuleExitCode,
              "nonzero integer-literal return in src/cli/ — use the "
              "cli::ExitCode taxonomy (kExitRuntime, kExitUsage, ...)");
      }
      for (std::sregex_iterator it(f.code_no_str.begin(), f.code_no_str.end(),
                                   raw_exit),
           end;
           it != end; ++it)
        add(f,
            line_of_offset(f.code_no_str,
                           static_cast<std::size_t>(it->position())),
            kRuleExitCode,
            "std::exit/abort in src/ — propagate an exception so "
            "cli::classify_error maps it into the exit-code taxonomy");
    }
  }

  // -- durable-io ------------------------------------------------------------

  void check_durable_io() {
    static const std::regex naked_write(
        R"((std::ofstream|\bofstream\s*\(|std::fopen|\bfopen\s*\(|(std|fs|::std::filesystem)::rename\s*\())");
    for (const auto& f : files_) {
      if (f.path.rfind("src/", 0) != 0) continue;
      if (f.path == "src/util/io.cpp" || f.path == "src/util/io.hpp")
        continue;  // the durability layer itself
      for (std::sregex_iterator it(f.code_no_str.begin(), f.code_no_str.end(),
                                   naked_write),
           end;
           it != end; ++it)
        add(f,
            line_of_offset(f.code_no_str,
                           static_cast<std::size_t>(it->position())),
            kRuleDurableIo,
            "naked file write/rename (" + it->str() +
                "...) bypasses util::write_file_durable/retry_io — crash "
                "here can tear the file");
    }
  }

  // -- codec-coverage --------------------------------------------------------

  void check_codec_coverage() {
    const auto require_tested = [&](const SourceFile& header,
                                    const std::string& token,
                                    std::size_t line, int min_hits,
                                    const char* why) {
      int hits = 0;
      for (const auto& t : files_) {
        if (t.path.rfind("tests/", 0) != 0) continue;
        std::size_t pos = 0;
        while ((pos = t.raw.find(token, pos)) != std::string::npos) {
          ++hits;
          pos += token.size();
        }
      }
      if (hits < min_hits)
        add(header, line, kRuleCodec,
            "codec '" + token + "' referenced only " + std::to_string(hits) +
                "x in tests/ (need >= " + std::to_string(min_hits) + ": " +
                why + ")");
    };

    static const std::regex decl(R"(\b(read_[a-z_]+)\s*\()");
    for (const char* rel :
         {"src/core/stage/artifacts.hpp", "src/msa/msa_serialize.hpp"}) {
      const SourceFile* header = find(rel);
      if (header == nullptr) continue;
      std::set<std::string> seen;
      for (std::sregex_iterator it(header->code_no_str.begin(),
                                   header->code_no_str.end(), decl),
           end;
           it != end; ++it) {
        const std::string name = (*it)[1].str();
        if (!seen.insert(name).second) continue;
        // Only write/read pairs are codecs.
        if (header->code_no_str.find("write_" + name.substr(5)) ==
            std::string::npos)
          continue;
        require_tested(*header, name,
                       line_of_offset(header->code_no_str,
                                      static_cast<std::size_t>(it->position())),
                       2, "one round-trip + one malformed-corpus reference");
      }
    }

    // Serve JSON codecs: JobSpec/JobRecord must round-trip in tests too.
    if (const SourceFile* journal = find("src/serve/journal.hpp")) {
      if (journal->code_no_str.find("from_json") != std::string::npos) {
        for (const char* type : {"JobSpec", "JobRecord"})
          require_tested(*journal, std::string(type) + "::from_json", 1, 1,
                         "JSON codec round-trip");
      }
    }
  }

  // -- include-hygiene -------------------------------------------------------

  void check_include_hygiene() {
    // The pinned header set: concurrency vocabulary (where a transitive
    // include that silently vanishes turns into a build break or, worse, an
    // ODR/portability surprise) plus the ownership vocabulary.
    static const std::vector<std::pair<std::regex, std::string>> pinned = {
        {std::regex(R"(std::(mutex|lock_guard|unique_lock|scoped_lock)\b)"),
         "mutex"},
        {std::regex(R"(std::atomic\b|std::memory_order)"), "atomic"},
        {std::regex(R"(std::(thread\b|this_thread|jthread))"), "thread"},
        {std::regex(R"(std::condition_variable)"), "condition_variable"},
        {std::regex(R"(std::(shared_ptr|unique_ptr|weak_ptr|make_shared|make_unique)\b)"),
         "memory"},
        {std::regex(R"(std::function\b)"), "functional"},
    };
    for (const auto& f : files_) {
      if (f.path.rfind("src/", 0) != 0) continue;
      for (const auto& [token, header] : pinned) {
        std::smatch m;
        if (!std::regex_search(f.code_no_str, m, token)) continue;
        const std::string direct = "#include <" + header + ">";
        if (f.code_no_str.find(direct) != std::string::npos) continue;
        add(f,
            line_of_offset(f.code_no_str,
                           static_cast<std::size_t>(m.position())),
            kRuleInclude,
            "uses " + m.str() + " without a direct " + direct +
                " (pinned header set — no transitive-include reliance)");
      }
    }
  }

  void report() const {
    for (const auto& v : violations_)
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                   v.rule.c_str(), v.message.c_str());
    if (violations_.empty()) {
      std::fprintf(stdout, "salign-lint: clean (%zu files)\n", files_.size());
    } else {
      std::fprintf(stderr, "salign-lint: %zu violation(s)\n",
                   violations_.size());
    }
  }

  fs::path root_;
  std::vector<SourceFile> files_;
  std::string readme_;
  std::string cmake_text_;
  std::vector<Violation> violations_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: salign_lint <repo-root>\n");
    return 2;
  }
  try {
    return Linter(fs::path(argv[1])).run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "salign_lint: %s\n", e.what());
    return 2;
  }
}
