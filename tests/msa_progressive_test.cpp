#include <gtest/gtest.h>

#include <vector>

#include "kmer/kmer_rank.hpp"
#include "msa/consensus.hpp"
#include "msa/guide_tree.hpp"
#include "msa/progressive.hpp"
#include "msa/refinement.hpp"
#include "msa/scoring.hpp"
#include "util/string_util.hpp"
#include "workload/evolver.hpp"
#include "workload/rose.hpp"

namespace salign::msa {
namespace {

using bio::Sequence;
using bio::SubstitutionMatrix;

const SubstitutionMatrix& B62() { return SubstitutionMatrix::blosum62(); }

std::vector<Sequence> family(std::size_t n, std::size_t len, double rel,
                             std::uint64_t seed) {
  return workload::rose_sequences(
      {.num_sequences = n, .average_length = len, .relatedness = rel,
       .seed = seed});
}

GuideTree tree_for(std::span<const Sequence> seqs) {
  return GuideTree::upgma(kmer::distance_matrix(seqs, {}));
}

// ---- progressive_align -----------------------------------------------------------

TEST(Progressive, SingleSequence) {
  const auto seqs = family(1, 30, 300, 1);
  const Alignment a = progressive_align(seqs, tree_for(seqs), B62());
  EXPECT_EQ(a.num_rows(), 1u);
  EXPECT_EQ(a.degapped(0), seqs[0]);
}

TEST(Progressive, AllRowsEqualLength) {
  const auto seqs = family(12, 50, 600, 2);
  const Alignment a = progressive_align(seqs, tree_for(seqs), B62());
  EXPECT_EQ(a.num_rows(), 12u);
  a.validate();
  EXPECT_GE(a.num_cols(), 50u);
}

TEST(Progressive, DegapRestoresEveryInput) {
  const auto seqs = family(10, 40, 700, 3);
  const Alignment a = progressive_align(seqs, tree_for(seqs), B62());
  // Rows are in tree leaf order; match them back by id.
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    const Sequence d = a.degapped(r);
    bool found = false;
    for (const auto& s : seqs)
      if (s.id() == d.id()) {
        EXPECT_EQ(d, s);
        found = true;
      }
    EXPECT_TRUE(found) << d.id();
  }
}

TEST(Progressive, IdenticalSequencesAlignWithoutGaps) {
  std::vector<Sequence> seqs;
  for (std::size_t i = 0; i < 5; ++i)
    seqs.emplace_back(util::indexed_name("s", i), "MKVLATTWYGGSDERK");
  const Alignment a = progressive_align(seqs, tree_for(seqs), B62());
  EXPECT_EQ(a.num_cols(), 16u);
  for (std::size_t r = 0; r < a.num_rows(); ++r)
    EXPECT_EQ(a.residue_count(r), 16u);
}

TEST(Progressive, MismatchedTreeThrows) {
  const auto seqs = family(5, 30, 300, 4);
  const auto small = family(3, 30, 300, 5);
  EXPECT_THROW(
      (void)progressive_align(seqs, tree_for(small), B62()),
      std::invalid_argument);
}

TEST(Progressive, WeightsAreAccepted) {
  const auto seqs = family(6, 40, 500, 6);
  const GuideTree t = tree_for(seqs);
  ProgressiveOptions po;
  po.weights = t.leaf_weights();
  const Alignment a = progressive_align(seqs, t, B62(), po);
  a.validate();
  EXPECT_EQ(a.num_rows(), 6u);
}

TEST(Progressive, BandProviderIsCalled) {
  const auto seqs = family(4, 40, 300, 7);
  ProgressiveOptions po;
  int calls = 0;
  po.band_provider = [&calls](const Alignment&, const Alignment&) {
    ++calls;
    return std::size_t{0};
  };
  (void)progressive_align(seqs, tree_for(seqs), B62(), po);
  EXPECT_EQ(calls, 3);  // n-1 merges
}

// ---- consensus ---------------------------------------------------------------------

TEST(Consensus, MajorityResidues) {
  const Alignment a = Alignment::from_texts(
      std::vector<std::pair<std::string, std::string>>{
          {"a", "AC"}, {"b", "AC"}, {"c", "AD"}});
  const Sequence c = consensus_sequence(a, "anc");
  EXPECT_EQ(c.text(), "AC");
  EXPECT_EQ(c.id(), "anc");
}

TEST(Consensus, GappyColumnsDropped) {
  const Alignment a = Alignment::from_texts(
      std::vector<std::pair<std::string, std::string>>{
          {"a", "A-C"}, {"b", "A-C"}, {"c", "AWC"}});
  const Sequence c = consensus_sequence(a, "anc");
  EXPECT_EQ(c.text(), "AC");  // middle column is 2/3 gaps
}

TEST(Consensus, ThresholdConfigurable) {
  const Alignment a = Alignment::from_texts(
      std::vector<std::pair<std::string, std::string>>{
          {"a", "A-"}, {"b", "AW"}});
  ConsensusOptions keep_all;
  keep_all.max_gap_fraction = 0.6;
  EXPECT_EQ(consensus_sequence(a, "anc", keep_all).text(), "AW");
  ConsensusOptions strict;
  strict.max_gap_fraction = 0.3;
  EXPECT_EQ(consensus_sequence(a, "anc", strict).text(), "A");
}

TEST(Consensus, TieBreaksTowardLowerCode) {
  // Two A's vs two C's: A (code 0) wins deterministically.
  const Alignment a = Alignment::from_texts(
      std::vector<std::pair<std::string, std::string>>{
          {"a", "A"}, {"b", "A"}, {"c", "C"}, {"d", "C"}});
  EXPECT_EQ(consensus_sequence(a, "anc").text(), "A");
}

TEST(Consensus, EmptyAlignmentThrows) {
  EXPECT_THROW((void)consensus_sequence(Alignment{}, "anc"),
               std::invalid_argument);
}

TEST(Consensus, ConsensusOfIdenticalRowsIsTheSequence) {
  std::vector<Sequence> seqs;
  for (std::size_t i = 0; i < 4; ++i)
    seqs.emplace_back(util::indexed_name("s", i), "MKWVLT");
  const Alignment a = progressive_align(seqs, tree_for(seqs), B62());
  EXPECT_EQ(consensus_sequence(a, "anc").text(), "MKWVLT");
}

// ---- refinement ------------------------------------------------------------------

TEST(Refine, NeverDegradesObjective) {
  const auto seqs = family(8, 40, 800, 8);
  const GuideTree t = tree_for(seqs);
  Alignment a = progressive_align(seqs, t, B62());
  const double before = sp_score(a, B62(), B62().default_gaps());

  // Rows are in tree leaf order; build row_of_leaf accordingly.
  std::vector<std::size_t> row_of_leaf(seqs.size());
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    for (std::size_t s = 0; s < seqs.size(); ++s)
      if (seqs[s].id() == a.row(r).id) row_of_leaf[s] = r;
  }
  RefineOptions ro;
  ro.passes = 2;
  ro.gaps = B62().default_gaps();
  refine(a, t, row_of_leaf, B62(), ro);
  a.validate();
  const double after = sp_score(a, B62(), B62().default_gaps());
  // The PSP objective is not identical to SP, but refinement should not
  // collapse the alignment; allow slack but catch catastrophic regressions.
  EXPECT_GT(after, before - std::abs(before) * 0.2 - 50.0);
  // Degap invariant survives refinement.
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    const Sequence d = a.degapped(r);
    bool found = false;
    for (const auto& s : seqs)
      if (s == d) found = true;
    EXPECT_TRUE(found);
  }
}

TEST(Refine, ReportsAcceptedCount) {
  const auto seqs = family(6, 30, 900, 9);
  const GuideTree t = tree_for(seqs);
  Alignment a = progressive_align(seqs, t, B62());
  std::vector<std::size_t> row_of_leaf(seqs.size());
  for (std::size_t r = 0; r < a.num_rows(); ++r)
    for (std::size_t s = 0; s < seqs.size(); ++s)
      if (seqs[s].id() == a.row(r).id) row_of_leaf[s] = r;
  RefineOptions ro;
  ro.passes = 1;
  const std::size_t accepted = refine(a, t, row_of_leaf, B62(), ro);
  // Progressive output is already PSP-locally-optimal at the root edge, so
  // few acceptances are expected — just require the call to be well-formed.
  EXPECT_LE(accepted, 2 * seqs.size());
}

TEST(Refine, TwoRowAlignmentIsStable) {
  const auto seqs = family(2, 30, 400, 10);
  const GuideTree t = tree_for(seqs);
  Alignment a = progressive_align(seqs, t, B62());
  const std::string before = a.row_text(0) + "/" + a.row_text(1);
  std::vector<std::size_t> row_of_leaf{0, 1};
  if (a.row(0).id != seqs[0].id()) row_of_leaf = {1, 0};
  RefineOptions ro;
  ro.passes = 3;
  refine(a, t, row_of_leaf, B62(), ro);
  // A 2-row alignment re-aligned by the same objective must stay optimal.
  EXPECT_EQ(a.row_text(0) + "/" + a.row_text(1), before);
}

TEST(Refine, BadRowMapThrows) {
  const auto seqs = family(3, 20, 400, 11);
  const GuideTree t = tree_for(seqs);
  Alignment a = progressive_align(seqs, t, B62());
  const std::vector<std::size_t> wrong_size{0, 1};
  EXPECT_THROW(refine(a, t, wrong_size, B62(), {}), std::invalid_argument);
}

}  // namespace
}  // namespace salign::msa
